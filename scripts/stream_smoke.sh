#!/usr/bin/env bash
# stream_smoke.sh — end-to-end smoke test of /v1/stream frame sessions.
#
# Leg A (bit-identity): one snnserve, one seeded random-walk frame
# schedule, replayed three ways — one-shot /v1/infer, streamed NDJSON
# sessions, streamed binary sessions. Every frame must produce exactly
# one event (N in = N out, zero errors, zero failures) and the three
# per-frame prediction files must be bit-identical. The server must
# then drain cleanly on SIGTERM.
#
# Leg B (chaos): two snnserve replicas behind snngate, streaming
# sessions driven through the gateway while one backend is kill -9'd
# mid-run. Clients must finish every frame with zero client-visible
# failures, resuming via in-band retry events (stream_retries >= 1
# proves the kill landed mid-session).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${STREAM_SMOKE_PORT:-18113}"       # leg A server
GPORT="${STREAM_SMOKE_GATE_PORT:-18114}" # leg B gateway
B1PORT=$((GPORT + 1))
B2PORT=$((GPORT + 2))
BIN="$(mktemp -d)"
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snnload ./cmd/snngate

N=600
SEED=11

# --- leg A: streamed predictions must be bit-identical to one-shot ---
"$BIN/snnserve" -addr "127.0.0.1:$PORT" -dataset mnist -scale tiny -cache models -batch 16 &
SRV=$!
PIDS+=("$SRV")

run_load() { # run_load <tag> <preds-file> <extra flags...>
    local tag="$1" preds="$2"; shift 2
    local out
    out="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset mnist \
        -walk -seed "$SEED" -n "$N" -c 3 -preds "$preds" "$@")"
    echo "$out"
    local result
    result="$(echo "$out" | grep '^RESULT ')"
    echo "$result" | grep -q " ok=$N err=0 failed=0 " \
        || { echo "stream-smoke: FAIL ($tag: not every frame answered cleanly)"; exit 1; }
    RESULT="$result"
}

run_load oneshot "$BIN/oneshot.preds"
run_load stream-json "$BIN/stream_json.preds" -stream
echo "$RESULT" | grep -q " frames=$N " \
    || { echo "stream-smoke: FAIL (stream-json: frames != $N)"; exit 1; }
JSON_P50="$(echo "$RESULT" | sed 's/.* p50_ms=\([0-9.]*\).*/\1/')"
JSON_P99="$(echo "$RESULT" | sed 's/.* p99_ms=\([0-9.]*\).*/\1/')"
run_load stream-binary "$BIN/stream_bin.preds" -stream -wire binary

diff "$BIN/oneshot.preds" "$BIN/stream_json.preds" > /dev/null \
    || { echo "stream-smoke: FAIL (streamed NDJSON predictions differ from one-shot)"; exit 1; }
diff "$BIN/oneshot.preds" "$BIN/stream_bin.preds" > /dev/null \
    || { echo "stream-smoke: FAIL (streamed binary predictions differ from one-shot)"; exit 1; }

kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "stream-smoke: FAIL (leg A: server exited non-zero on SIGTERM)"
    exit 1
fi
PIDS=()

# --- leg B: backend killed mid-session behind the gateway ---
"$BIN/snnserve" -addr "127.0.0.1:$B1PORT" -dataset mnist -scale tiny -cache models -batch 16 &
B1=$!
PIDS+=("$B1")
"$BIN/snnserve" -addr "127.0.0.1:$B2PORT" -dataset mnist -scale tiny -cache models -batch 16 &
B2=$!
PIDS+=("$B2")
sleep 0.7
"$BIN/snngate" -addr "127.0.0.1:$GPORT" \
    -backend "http://127.0.0.1:$B1PORT" -backend "http://127.0.0.1:$B2PORT" \
    -probe-interval 200ms &
GATE=$!
PIDS+=("$GATE")
sleep 0.5

( sleep 1; kill -9 "$B2" 2>/dev/null ) &
KILLER=$!

CHAOS_N=1500
CHAOS="$("$BIN/snnload" -addr "http://127.0.0.1:$GPORT" -dataset mnist \
    -walk -seed "$SEED" -stream -n "$CHAOS_N" -c 3 -retries 10)"
echo "$CHAOS"
wait "$KILLER" 2>/dev/null || true

CHAOS_RESULT="$(echo "$CHAOS" | grep '^RESULT ')"
echo "$CHAOS_RESULT" | grep -q " ok=$CHAOS_N err=0 failed=0 " \
    || { echo "stream-smoke: FAIL (chaos: client-visible failures across backend kill)"; exit 1; }
RETRIES="$(echo "$CHAOS_RESULT" | sed 's/.* stream_retries=\([0-9]*\).*/\1/')"
[ -n "$RETRIES" ] && [ "$RETRIES" -gt 0 ] \
    || { echo "stream-smoke: FAIL (chaos: no retry events — the kill missed every session)"; exit 1; }

kill -TERM "$GATE"
if ! wait "$GATE"; then
    echo "stream-smoke: FAIL (chaos: gateway exited non-zero on SIGTERM with sessions served)"
    exit 1
fi
kill -TERM "$B1" && wait "$B1" || { echo "stream-smoke: FAIL (chaos: surviving backend exited non-zero)"; exit 1; }
PIDS=()

echo "stream-smoke: ok ($N frames x3 lanes bit-identical at p50=${JSON_P50}ms p99=${JSON_P99}ms per frame; chaos leg $CHAOS_N frames, $RETRIES session retries, zero failures)"
