#!/usr/bin/env bash
# bench.sh — run the inference hot-path benchmarks and emit a
# machine-readable JSON record (ns/op, allocs/op, B/op per benchmark).
#
#   scripts/bench.sh             full run, writes BENCH_<date>.json
#   scripts/bench.sh --smoke     1-iteration sanity pass (wired into
#                                `make check`): verifies the benchmarks
#                                still build and run; numbers are noise.
#
# Output JSON shape (one entry per benchmark):
#   { "date": "...", "go": "...", "gomaxprocs": N, "smoke": false,
#     "benchmarks": [ {"name": ..., "workers": N, "ns_per_op": ...,
#                      "bytes_per_op": ..., "allocs_per_op": ...}, ... ] }
# gomaxprocs (record level) and workers (parsed from the /workersN
# sub-benchmark name, 1 otherwise) let benchdiff.sh refuse comparisons
# across core counts. Each benchmark runs BENCHCOUNT (default 3) times
# and the record keeps the per-benchmark minimum — the least
# interference-sensitive estimator, so benchdiff's 10% regression gate
# measures the code, not co-tenant VM load.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi
GMP="${GOMAXPROCS:-$(nproc)}"

# The hot-path benchmarks the zero-allocation work is gated on.
# BenchmarkServeE2E (internal/serve) covers the HTTP request path:
# mux + negotiation + decode + direct inference + encode, JSON vs
# binary wire formats.
PATTERN='BenchmarkInfer$|BenchmarkInferBatch$|BenchmarkInferBatchScratch$|BenchmarkInferBatchParallel$|BenchmarkInferEventEarlyExit$|BenchmarkInferQuant$|BenchmarkServeE2E$'
PKG="./internal/core/ ./internal/serve/"

if [[ $SMOKE -eq 1 ]]; then
  BENCHTIME=1x
  BENCHCOUNT=1
  OUT=$(mktemp)
  trap 'rm -f "$OUT"' EXIT
else
  BENCHTIME=${BENCHTIME:-2s}
  BENCHCOUNT=${BENCHCOUNT:-3}
  # BENCH_OUT overrides the date-derived name so a same-day rerun can't
  # silently clobber the committed baseline benchdiff compares against.
  OUT="${BENCH_OUT:-BENCH_$(date +%F).json}"
fi

# shellcheck disable=SC2086  # PKG is a deliberate package list
RAW=$("$GO" test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" $PKG)
echo "$RAW"

echo "$RAW" | awk -v smoke="$SMOKE" -v goversion="$("$GO" env GOVERSION)" -v gmp="$GMP" '
BEGIN {
  printf "{\n  \"date\": \"%s\",\n", strftime("%Y-%m-%dT%H:%M:%S%z")
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"gomaxprocs\": %d,\n", gmp
  printf "  \"smoke\": %s,\n  \"benchmarks\": [", smoke ? "true" : "false"
  n = 0
}
/^Benchmark/ {
  name = $1; ns = ""; bytes = ""; allocs = ""
  for (i = 2; i <= NF; i++) {
    if ($(i) == "ns/op")     ns = $(i-1)
    if ($(i) == "B/op")      bytes = $(i-1)
    if ($(i) == "allocs/op") allocs = $(i-1)
  }
  if (ns == "") next
  if (!(name in minNs)) {
    order[++n] = name
    minNs[name] = ns + 0; minBy[name] = bytes; minAl[name] = allocs
    next
  }
  # repeated -count runs: keep the minimum of every metric
  if (ns + 0 < minNs[name]) minNs[name] = ns + 0
  if (bytes != "" && (minBy[name] == "" || bytes + 0 < minBy[name] + 0)) minBy[name] = bytes
  if (allocs != "" && (minAl[name] == "" || allocs + 0 < minAl[name] + 0)) minAl[name] = allocs
}
END {
  for (i = 1; i <= n; i++) {
    name = order[i]
    workers = 1
    if (match(name, /\/workers[0-9]+/))
      workers = substr(name, RSTART + 8, RLENGTH - 8) + 0
    if (i > 1) printf ","
    printf "\n    {\"name\": \"%s\", \"workers\": %d, \"ns_per_op\": %d", name, workers, minNs[name]
    if (minBy[name] != "")  printf ", \"bytes_per_op\": %s", minBy[name]
    if (minAl[name] != "") printf ", \"allocs_per_op\": %s", minAl[name]
    printf "}"
  }
  printf "\n  ]\n}\n"
}
' > "$OUT"

if [[ $SMOKE -eq 1 ]]; then
  # sanity: the JSON must hold at least one parsed benchmark
  grep -q '"ns_per_op"' "$OUT" || { echo "bench.sh: no benchmarks parsed" >&2; exit 1; }
  echo "bench smoke OK"
else
  echo "wrote $OUT"
fi
