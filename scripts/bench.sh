#!/usr/bin/env bash
# bench.sh — run the inference hot-path benchmarks and emit a
# machine-readable JSON record (ns/op, allocs/op, B/op per benchmark).
#
#   scripts/bench.sh             full run, writes BENCH_<date>.json
#   scripts/bench.sh --smoke     1-iteration sanity pass (wired into
#                                `make check`): verifies the benchmarks
#                                still build and run; numbers are noise.
#
# Output JSON shape (one entry per benchmark):
#   { "date": "...", "go": "...", "smoke": false,
#     "benchmarks": [ {"name": ..., "ns_per_op": ...,
#                      "bytes_per_op": ..., "allocs_per_op": ...}, ... ] }
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

# The hot-path benchmarks the zero-allocation work is gated on.
PATTERN='BenchmarkInfer$|BenchmarkInferBatch$|BenchmarkInferBatchScratch$'
PKG=./internal/core/

if [[ $SMOKE -eq 1 ]]; then
  BENCHTIME=1x
  OUT=$(mktemp)
  trap 'rm -f "$OUT"' EXIT
else
  BENCHTIME=${BENCHTIME:-2s}
  OUT="BENCH_$(date +%F).json"
fi

RAW=$("$GO" test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" "$PKG")
echo "$RAW"

echo "$RAW" | awk -v smoke="$SMOKE" -v goversion="$("$GO" env GOVERSION)" '
BEGIN {
  printf "{\n  \"date\": \"%s\",\n", strftime("%Y-%m-%dT%H:%M:%S%z")
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"smoke\": %s,\n  \"benchmarks\": [", smoke ? "true" : "false"
  n = 0
}
/^Benchmark/ {
  name = $1; ns = ""; bytes = ""; allocs = ""
  for (i = 2; i <= NF; i++) {
    if ($(i) == "ns/op")     ns = $(i-1)
    if ($(i) == "B/op")      bytes = $(i-1)
    if ($(i) == "allocs/op") allocs = $(i-1)
  }
  if (ns == "") next
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$OUT"

if [[ $SMOKE -eq 1 ]]; then
  # sanity: the JSON must hold at least one parsed benchmark
  grep -q '"ns_per_op"' "$OUT" || { echo "bench.sh: no benchmarks parsed" >&2; exit 1; }
  echo "bench smoke OK"
else
  echo "wrote $OUT"
fi
