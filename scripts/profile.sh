#!/usr/bin/env bash
# profile.sh — capture a CPU profile of the serving hot path: boot
# cmd/snnserve with -pprof, drive sustained load with cmd/snnload, pull
# /debug/pprof/profile while the load runs, and write the result to
# profile_serve.pb.gz (inspect with `go tool pprof profile_serve.pb.gz`).
#
# Knobs (env):
#   PROFILE_SECONDS  CPU sampling window (default 5)
#   PROFILE_ARGS     extra snnload flags, e.g. '-wire binary'
#   PROFILE_SERVER   extra snnserve flags, e.g. '-engine quant'
#   PROFILE_PORT     serving port   (default 18097)
#   PPROF_PORT       pprof listener (default 16060)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PROFILE_PORT:-18097}"
PPORT="${PPROF_PORT:-16060}"
SECS="${PROFILE_SECONDS:-5}"
OUT=profile_serve.pb.gz

BIN="$(mktemp -d)"
SRV=""
LOADPID=""
cleanup() {
    [ -n "$LOADPID" ] && kill "$LOADPID" 2>/dev/null || true
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snnload

# shellcheck disable=SC2086  # PROFILE_SERVER is a deliberate flag list
"$BIN/snnserve" -addr "127.0.0.1:$PORT" -pprof "127.0.0.1:$PPORT" \
    -dataset mnist -scale tiny -cache models -batch 16 ${PROFILE_SERVER:-} &
SRV=$!

# A huge -n keeps load flowing for the whole sampling window; the
# generator is killed once the profile is captured.
# shellcheck disable=SC2086  # PROFILE_ARGS is a deliberate flag list
"$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset mnist \
    -n 2000000 -c 12 ${PROFILE_ARGS:-} > /dev/null 2>&1 &
LOADPID=$!

sleep 1 # let the load ramp before sampling
curl -fsS -o "$OUT" "http://127.0.0.1:$PPORT/debug/pprof/profile?seconds=$SECS"

kill "$LOADPID" 2>/dev/null || true
wait "$LOADPID" 2>/dev/null || true
LOADPID=""
kill -TERM "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
SRV=""

echo "wrote $OUT (${SECS}s CPU sample under load${PROFILE_ARGS:+, snnload $PROFILE_ARGS})"
go tool pprof -top -nodecount 12 "$OUT" | sed -n '1,20p'
