#!/usr/bin/env bash
# gate_smoke.sh — chaos smoke test of the routing gateway: build
# snnserve + snngate + snnload, start two replica backends behind a
# gateway, and prove the robustness story end to end:
#
#   leg 1 (baseline)  — load through the gateway is error-free, its
#                       accuracy matches a direct-to-backend run, and
#                       /metrics shows both backends healthy.
#   leg 2 (chaos)     — kill -9 one backend mid-load: the client still
#                       sees zero errors and zero failed requests, the
#                       gateway evicts the corpse, and after a restart
#                       the probe ladder readmits it.
#   leg 3 (hot-swap)  — roll a golden-checked model swap across the
#                       fleet while load is running: the swap succeeds,
#                       the load stays error-free, and post-swap
#                       accuracy is unchanged.
#
# Finally both backends and the gateway must drain cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

GPORT="${GATE_PORT:-18200}"
B1_PORT=$((GPORT + 1))
B2_PORT=$((GPORT + 2))
BIN="$(mktemp -d)"
B1=""; B2=""; GW=""
cleanup() {
    for p in "$B1" "$B2" "$GW"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snngate ./cmd/snnload

start_backend() { # start_backend <port>; pid in $BACKEND_PID
    "$BIN/snnserve" -addr "127.0.0.1:$1" -cache models -batch 16 \
        -model main=mnist/tiny >>"$BIN/backend_$1.log" 2>&1 &
    BACKEND_PID=$!
}

start_backend "$B1_PORT"; B1="$BACKEND_PID"
start_backend "$B2_PORT"; B2="$BACKEND_PID"

"$BIN/snngate" -addr "127.0.0.1:$GPORT" \
    -backend "http://127.0.0.1:$B1_PORT" -backend "http://127.0.0.1:$B2_PORT" \
    -probe-interval 250ms -fail-threshold 3 -hedge-delay 25ms 2>>"$BIN/gate.log" &
GW=$!

GATE="http://127.0.0.1:$GPORT"
METRICS() { curl -sf "$GATE/metrics"; }
healthy_count() { METRICS | grep -o '"state":"healthy"' | wc -l | tr -d ' '; }

# wait_healthy <n> <what>: poll until n backends are healthy.
wait_healthy() {
    local want="$1" what="$2" i
    for i in $(seq 1 240); do
        [ "$(healthy_count || echo 0)" = "$want" ] && return 0
        sleep 0.25
    done
    echo "gate-smoke: FAIL ($what: healthy backends never reached $want)"
    METRICS || true
    exit 1
}

# result_field <result-line> <key>
result_field() { echo "$1" | sed "s/.* $2=\([0-9.]*\).*/\1/"; }

# assert_clean <result-line> <tag>: zero errors, zero failed requests.
assert_clean() {
    echo "$1" | grep -q ' err=0 '    || { echo "gate-smoke: FAIL ($2: request errors)"; exit 1; }
    echo "$1" | grep -q ' failed=0 ' || { echo "gate-smoke: FAIL ($2: failed requests)"; exit 1; }
}

# --- leg 1: baseline through the gateway, accuracy vs direct ---------
wait_healthy 2 baseline

DIRECT="$("$BIN/snnload" -addr "http://127.0.0.1:$B1_PORT" -model main -dataset mnist -n 120 -c 8)"
DIRECT_RESULT="$(echo "$DIRECT" | grep '^RESULT ')"
assert_clean "$DIRECT_RESULT" direct
BASE_ACC="$(result_field "$DIRECT_RESULT" acc)"

LOAD="$("$BIN/snnload" -addr "$GATE" -model main -dataset mnist -n 120 -c 8)"
echo "$LOAD"
RESULT="$(echo "$LOAD" | grep '^RESULT ')"
assert_clean "$RESULT" baseline
GATE_ACC="$(result_field "$RESULT" acc)"
[ "$GATE_ACC" = "$BASE_ACC" ] || { echo "gate-smoke: FAIL (baseline: gateway acc $GATE_ACC != direct acc $BASE_ACC)"; exit 1; }

# --- leg 2: kill a backend mid-load, zero client-visible failures ----
"$BIN/snnload" -addr "$GATE" -model main -dataset mnist -n 600 -c 8 > "$BIN/chaos_load.txt" 2>&1 &
CHAOS=$!
sleep 0.6
kill -9 "$B2" 2>/dev/null || true
wait "$B2" 2>/dev/null || true
B2=""
if ! wait "$CHAOS"; then
    cat "$BIN/chaos_load.txt"
    echo "gate-smoke: FAIL (chaos: load saw client-visible failures after backend kill)"
    exit 1
fi
CHAOS_RESULT="$(grep '^RESULT ' "$BIN/chaos_load.txt")"
echo "$CHAOS_RESULT"
assert_clean "$CHAOS_RESULT" chaos

# The corpse must be evicted (the probe loop notices within its
# interval even without traffic) and counted.
EVICTED=0
for i in $(seq 1 40); do
    if METRICS | grep -q '"state":"evicted"'; then EVICTED=1; break; fi
    sleep 0.25
done
[ "$EVICTED" = 1 ] || { echo "gate-smoke: FAIL (chaos: dead backend never evicted)"; METRICS; exit 1; }
EV_TOTAL="$(METRICS | sed 's/.*"evictions_total":\([0-9]*\).*/\1/')"
[ -n "$EV_TOTAL" ] && [ "$EV_TOTAL" -ge 1 ] || { echo "gate-smoke: FAIL (chaos: evictions_total=$EV_TOTAL)"; exit 1; }

# Restart the backend: the probe ladder must readmit it.
start_backend "$B2_PORT"; B2="$BACKEND_PID"
wait_healthy 2 readmission

# --- leg 3: golden-checked rolling hot-swap under load ---------------
"$BIN/snnload" -addr "$GATE" -model main -dataset mnist -n 300 -c 8 > "$BIN/swap_load.txt" 2>&1 &
SWAP_LOAD=$!
sleep 0.3
SWAP="$(curl -sf -X POST "$GATE/v1/models/main/swap" \
    -H 'Content-Type: application/json' \
    -d '{"source":"mnist/tiny","golden_check":true}')" \
    || { echo "gate-smoke: FAIL (swap: request failed)"; cat "$BIN/gate.log"; exit 1; }
echo "$SWAP"
echo "$SWAP" | grep -q '"swapped":2' || { echo "gate-smoke: FAIL (swap: not every backend swapped: $SWAP)"; exit 1; }
if ! wait "$SWAP_LOAD"; then
    cat "$BIN/swap_load.txt"
    echo "gate-smoke: FAIL (swap: load errored during the roll)"
    exit 1
fi
SWAP_RESULT="$(grep '^RESULT ' "$BIN/swap_load.txt")"
echo "$SWAP_RESULT"
assert_clean "$SWAP_RESULT" swap-load

POST="$("$BIN/snnload" -addr "$GATE" -model main -dataset mnist -n 120 -c 8)"
POST_RESULT="$(echo "$POST" | grep '^RESULT ')"
assert_clean "$POST_RESULT" post-swap
POST_ACC="$(result_field "$POST_RESULT" acc)"
[ "$POST_ACC" = "$BASE_ACC" ] || { echo "gate-smoke: FAIL (swap: post-swap acc $POST_ACC != baseline $BASE_ACC)"; exit 1; }

# --- clean drain -----------------------------------------------------
for p in "$GW" "$B1" "$B2"; do
    kill -TERM "$p"
    if ! wait "$p"; then
        echo "gate-smoke: FAIL (drain: pid $p exited non-zero on SIGTERM)"
        exit 1
    fi
done
GW=""; B1=""; B2=""

echo "gate-smoke: ok (baseline acc $BASE_ACC; chaos leg survived kill -9 with 0 failures, $EV_TOTAL eviction(s); hot-swap under load kept acc $POST_ACC)"
