#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serving layer: build
# snnserve + snnload, start a tiny-scale server (cached weights make
# this fast), replay a short load, assert zero errors and non-zero
# throughput, and verify the server drains cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18099}"
BIN="$(mktemp -d)"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snnload

"$BIN/snnserve" -addr "127.0.0.1:$PORT" -dataset mnist -scale tiny -cache models -batch 16 &
SRV=$!

OUT="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset mnist -n 120 -c 12)"
echo "$OUT"
RESULT="$(echo "$OUT" | grep '^RESULT ')"

echo "$RESULT" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL (request errors)"; exit 1; }
THR="$(echo "$RESULT" | sed 's/.*throughput=\([0-9.]*\).*/\1/')"
awk -v t="$THR" 'BEGIN { exit !(t > 0) }' || { echo "serve-smoke: FAIL (zero throughput)"; exit 1; }

kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "serve-smoke: FAIL (server exited non-zero on SIGTERM)"
    exit 1
fi
SRV=""
echo "serve-smoke: ok ($THR samples/s)"
