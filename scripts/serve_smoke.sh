#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serving layer: build
# snnserve + snnload, start a tiny-scale server (cached weights make
# this fast), replay a short load, assert zero errors and non-zero
# throughput, and verify the server drains cleanly on SIGTERM. A second
# leg repeats the exercise with -parallel 2 (data-parallel batch
# execution) and asserts the parallel_chunks metric moved. A third leg
# hosts two models in one process (TTFS + rate-coded), routes load to
# both, asserts their metrics are tracked separately, and proves
# deadline-headroom admission: a burst with a hopeless deadline against
# the slow model is shed with 429 + Retry-After while the fast model's
# concurrent traffic finishes error-free.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18099}"
BIN="$(mktemp -d)"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snnload ./cmd/snnc

# one_leg <tag> <extra snnserve flags...>: boot, load, assert, drain.
# Sets LOAD to snnload's full output.
one_leg() {
    local tag="$1"; shift
    "$BIN/snnserve" -addr "127.0.0.1:$PORT" -dataset mnist -scale tiny -cache models -batch 16 "$@" &
    SRV=$!

    LOAD="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset mnist -n 120 -c 12)"
    echo "$LOAD"
    local result
    result="$(echo "$LOAD" | grep '^RESULT ')"

    echo "$result" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL ($tag: request errors)"; exit 1; }
    THR="$(echo "$result" | sed 's/.*throughput=\([0-9.]*\).*/\1/')"
    awk -v t="$THR" 'BEGIN { exit !(t > 0) }' || { echo "serve-smoke: FAIL ($tag: zero throughput)"; exit 1; }

    kill -TERM "$SRV"
    if ! wait "$SRV"; then
        echo "serve-smoke: FAIL ($tag: server exited non-zero on SIGTERM)"
        exit 1
    fi
    SRV=""
}

one_leg sequential
SEQ_THR="$THR"
SEQ_ACC="$(echo "$LOAD" | grep '^RESULT ' | sed 's/.* acc=\([0-9.]*\).*/\1/')"

one_leg parallel -parallel 2
CHUNKS="$(echo "$LOAD" | sed -n 's/.*parallel chunks \([0-9]*\).*/\1/p')"
[ -n "$CHUNKS" ] && [ "$CHUNKS" -gt 0 ] || { echo "serve-smoke: FAIL (parallel: parallel_chunks stayed 0)"; exit 1; }
PAR_THR="$THR"

# --- latency leg: event engine, batch 1, single-sample direct path.
# Early exits must actually fire, and the early-exit argmax contract
# means accuracy must equal the clocked sequential leg's exactly.
one_leg latency -engine event -batch 1 -mode latency
LAT_RESULT="$(echo "$LOAD" | grep '^RESULT ')"
EE="$(echo "$LAT_RESULT" | sed 's/.* early_exit=\([0-9]*\).*/\1/')"
EVS="$(echo "$LAT_RESULT" | sed 's/.* events_saved=\([0-9]*\).*/\1/')"
[ -n "$EE" ] && [ "$EE" -gt 0 ] || { echo "serve-smoke: FAIL (latency: early_exit stayed 0)"; exit 1; }
LAT_ACC="$(echo "$LAT_RESULT" | sed 's/.* acc=\([0-9.]*\).*/\1/')"
[ "$LAT_ACC" = "$SEQ_ACC" ] || { echo "serve-smoke: FAIL (latency: acc $LAT_ACC != clocked $SEQ_ACC)"; exit 1; }

# --- multi-model leg: one process, two models, admission control ---
"$BIN/snnserve" -addr "127.0.0.1:$PORT" -cache models -batch 16 \
    -model main=mnist/tiny -model slow=mnist/tiny:rate:100 &
SRV=$!

# Prime the slow model's batch-latency window (and prove it serves).
PRIME="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -model slow -dataset mnist -n 8 -c 2)"
echo "$PRIME"
echo "$PRIME" | grep '^RESULT ' | grep -q ' err=0 ' || { echo "serve-smoke: FAIL (multi: slow-model prime errored)"; exit 1; }
echo "$PRIME" | grep -q '^  server: ' || { echo "serve-smoke: FAIL (multi: no per-model metrics for slow)"; exit 1; }

# Concurrently: clean load on the fast model, and a burst with a
# hopeless 5ms deadline on the slow model (rate @100 steps is far
# slower than that per batch) that must be shed with 429 + Retry-After.
"$BIN/snnload" -addr "http://127.0.0.1:$PORT" -model main -dataset mnist -n 120 -c 12 > "$BIN/main_load.txt" 2>&1 &
MAIN_LOAD=$!
SHED="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -model slow -dataset mnist \
    -n 40 -c 8 -timeout-ms 5 -retries 0 -tolerate-shed)"
echo "$SHED"
if ! wait "$MAIN_LOAD"; then
    cat "$BIN/main_load.txt"
    echo "serve-smoke: FAIL (multi: fast-model load errored while slow model was shedding)"
    exit 1
fi
MAIN="$(cat "$BIN/main_load.txt")"
echo "$MAIN"

SHED_RESULT="$(echo "$SHED" | grep '^RESULT ')"
SHED_CT="$(echo "$SHED_RESULT" | sed 's/.* shed=\([0-9]*\).*/\1/')"
RA_CT="$(echo "$SHED_RESULT" | sed 's/.* retry_after=\([0-9]*\).*/\1/')"
[ -n "$SHED_CT" ] && [ "$SHED_CT" -gt 0 ] || { echo "serve-smoke: FAIL (multi: no deadline-headroom 429s)"; exit 1; }
[ -n "$RA_CT" ] && [ "$RA_CT" -gt 0 ] || { echo "serve-smoke: FAIL (multi: 429s without Retry-After)"; exit 1; }

MAIN_RESULT="$(echo "$MAIN" | grep '^RESULT ')"
echo "$MAIN_RESULT" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL (multi: fast-model errors)"; exit 1; }
echo "$MAIN_RESULT" | grep -q ' shed=0 ' || { echo "serve-smoke: FAIL (multi: fast-model traffic was shed)"; exit 1; }
# Separate metrics: each model's /metrics entry reflects only its own
# completions (slow saw just the 8 prime requests; main saw its 120).
MAIN_DONE="$(echo "$MAIN" | sed -n 's/^  server: .*completed \([0-9]*\),.*/\1/p')"
SLOW_DONE="$(echo "$SHED" | sed -n 's/^  server: .*completed \([0-9]*\),.*/\1/p')"
[ "$MAIN_DONE" = "120" ] || { echo "serve-smoke: FAIL (multi: main completed=$MAIN_DONE, want 120)"; exit 1; }
[ "$SLOW_DONE" = "8" ] || { echo "serve-smoke: FAIL (multi: slow completed=$SLOW_DONE, want 8)"; exit 1; }

kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "serve-smoke: FAIL (multi: server exited non-zero on SIGTERM)"
    exit 1
fi
SRV=""

# --- wire leg: binary protocol vs JSON on a transport-bound model ---
# A -micro model (3072 inputs, one dense stage) makes request decode the
# dominant per-request cost, so this leg measures the wire path itself:
# the binary format must deliver >= 2x JSON's throughput, and the two
# formats must produce bit-identical predictions sample by sample.
"$BIN/snnc" -micro 3072 -o "$BIN/micro.t2f"
"$BIN/snnserve" -addr "127.0.0.1:$PORT" -model micro="$BIN/micro.t2f" -batch 16 &
SRV=$!

WIRE_JSON="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset cifar10 -n 400 -c 12 -preds "$BIN/wire_json.preds")"
echo "$WIRE_JSON"
WIRE_JSON_RESULT="$(echo "$WIRE_JSON" | grep '^RESULT ')"
echo "$WIRE_JSON_RESULT" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL (wire: JSON leg errors)"; exit 1; }

WIRE_BIN="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset cifar10 -n 400 -c 12 -wire binary -preds "$BIN/wire_bin.preds")"
echo "$WIRE_BIN"
WIRE_BIN_RESULT="$(echo "$WIRE_BIN" | grep '^RESULT ')"
echo "$WIRE_BIN_RESULT" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL (wire: binary leg errors)"; exit 1; }

diff "$BIN/wire_json.preds" "$BIN/wire_bin.preds" > /dev/null \
    || { echo "serve-smoke: FAIL (wire: predictions differ between JSON and binary)"; exit 1; }

JSON_THR="$(echo "$WIRE_JSON_RESULT" | sed 's/.*throughput=\([0-9.]*\).*/\1/')"
BIN_THR="$(echo "$WIRE_BIN_RESULT" | sed 's/.*throughput=\([0-9.]*\).*/\1/')"
awk -v j="$JSON_THR" -v b="$BIN_THR" 'BEGIN { exit !(b >= 2 * j) }' \
    || { echo "serve-smoke: FAIL (wire: binary $BIN_THR req/s < 2x JSON $JSON_THR req/s)"; exit 1; }

kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "serve-smoke: FAIL (wire: server exited non-zero on SIGTERM)"
    exit 1
fi
SRV=""

echo "serve-smoke: ok (sequential $SEQ_THR samples/s, parallel $PAR_THR samples/s, $CHUNKS chunks, latency leg $EE/120 early exits saving $EVS events at acc=$LAT_ACC, multi-model shed $SHED_CT/40 with Retry-After, wire binary $BIN_THR vs JSON $JSON_THR req/s)"
