#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serving layer: build
# snnserve + snnload, start a tiny-scale server (cached weights make
# this fast), replay a short load, assert zero errors and non-zero
# throughput, and verify the server drains cleanly on SIGTERM. A second
# leg repeats the exercise with -parallel 2 (data-parallel batch
# execution) and asserts the parallel_chunks metric moved.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18099}"
BIN="$(mktemp -d)"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/snnserve ./cmd/snnload

# one_leg <tag> <extra snnserve flags...>: boot, load, assert, drain.
# Sets LOAD to snnload's full output.
one_leg() {
    local tag="$1"; shift
    "$BIN/snnserve" -addr "127.0.0.1:$PORT" -dataset mnist -scale tiny -cache models -batch 16 "$@" &
    SRV=$!

    LOAD="$("$BIN/snnload" -addr "http://127.0.0.1:$PORT" -dataset mnist -n 120 -c 12)"
    echo "$LOAD"
    local result
    result="$(echo "$LOAD" | grep '^RESULT ')"

    echo "$result" | grep -q ' err=0 ' || { echo "serve-smoke: FAIL ($tag: request errors)"; exit 1; }
    THR="$(echo "$result" | sed 's/.*throughput=\([0-9.]*\).*/\1/')"
    awk -v t="$THR" 'BEGIN { exit !(t > 0) }' || { echo "serve-smoke: FAIL ($tag: zero throughput)"; exit 1; }

    kill -TERM "$SRV"
    if ! wait "$SRV"; then
        echo "serve-smoke: FAIL ($tag: server exited non-zero on SIGTERM)"
        exit 1
    fi
    SRV=""
}

one_leg sequential
SEQ_THR="$THR"

one_leg parallel -parallel 2
CHUNKS="$(echo "$LOAD" | sed -n 's/.*parallel chunks \([0-9]*\).*/\1/p')"
[ -n "$CHUNKS" ] && [ "$CHUNKS" -gt 0 ] || { echo "serve-smoke: FAIL (parallel: parallel_chunks stayed 0)"; exit 1; }

echo "serve-smoke: ok (sequential $SEQ_THR samples/s, parallel $THR samples/s, $CHUNKS chunks)"
