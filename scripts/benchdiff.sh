#!/usr/bin/env bash
# benchdiff.sh — compare two bench.sh JSON records and fail on
# regression: any shared benchmark whose ns/op grew by more than 10% or
# whose allocs/op increased at all.
#
#   scripts/benchdiff.sh OLD.json NEW.json
#   scripts/benchdiff.sh                 # the two newest BENCH_*.json
#                                        # (newest = "new", runner-up = "old")
#   scripts/benchdiff.sh --if-baseline   # soft mode for make check: exit 0
#                                        # with a note when no comparable
#                                        # baseline pair exists yet
#
# Records are comparable only when both carry a "gomaxprocs" field and
# the values match — a 4-core baseline against a 1-core run measures the
# machine, not the code. Smoke records ("smoke": true, 1-iteration noise)
# are refused outright. Incomparability is an error (exit 2) except in
# soft mode; real regressions fail (exit 1) in every mode.
set -euo pipefail
cd "$(dirname "$0")/.."

SOFT=0
ARGS=()
for a in "$@"; do
  case "$a" in
    --if-baseline) SOFT=1 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) ARGS+=("$a") ;;
  esac
done

skip() {
  if [[ $SOFT -eq 1 ]]; then
    echo "benchdiff: skipped ($1)"
    exit 0
  fi
  echo "benchdiff: $1" >&2
  exit 2
}

if [[ ${#ARGS[@]} -eq 2 ]]; then
  OLD="${ARGS[0]}"
  NEW="${ARGS[1]}"
  [[ -r "$OLD" && -r "$NEW" ]] || skip "cannot read $OLD / $NEW"
elif [[ ${#ARGS[@]} -eq 0 ]]; then
  FILES=()
  while IFS= read -r f; do FILES+=("$f"); done < <(ls -1t BENCH_*.json 2>/dev/null)
  [[ ${#FILES[@]} -ge 2 ]] || skip "need two BENCH_*.json records, have ${#FILES[@]}"
  NEW="${FILES[0]}"
  OLD="${FILES[1]}"
else
  echo "usage: benchdiff.sh [--if-baseline] [old.json new.json]" >&2
  exit 2
fi

echo "benchdiff: $OLD -> $NEW"
awk -v soft="$SOFT" '
# bench.sh emits one benchmark object per line and scalar fields on
# their own lines, so line-wise extraction is exact for our own records.
function num(key,   s) {
  if (match($0, "\"" key "\": *-?[0-9.]+")) {
    s = substr($0, RSTART, RLENGTH)
    sub(/.*: */, "", s)
    return s
  }
  return "?"
}
FNR == 1 { fi++ }
/"smoke": *true/ { smoke[fi] = 1 }
/"gomaxprocs":/ { gmp[fi] = num("gomaxprocs") }
/"name":/ {
  match($0, /"name": *"[^"]+"/)
  name = substr($0, RSTART, RLENGTH)
  sub(/.*: *"/, "", name); sub(/"$/, "", name)
  ns[fi, name] = num("ns_per_op")
  al[fi, name] = num("allocs_per_op")
  if (fi == 1) names[name] = 1
}
END {
  if (smoke[1] || smoke[2]) fatal = "refusing smoke records (1-iteration noise)"
  else if (!(1 in gmp) || !(2 in gmp)) fatal = "record lacks gomaxprocs (pre-parallel format); not comparable"
  else if (gmp[1] != gmp[2]) fatal = "gomaxprocs differ (" gmp[1] " vs " gmp[2] "); runs not comparable"
  if (fatal != "") {
    if (soft) { print "benchdiff: skipped (" fatal ")"; exit 0 }
    print "benchdiff: " fatal > "/dev/stderr"
    exit 2
  }
  bad = 0; compared = 0
  for (name in names) {
    if (!((2, name) in ns)) continue
    compared++
    o = ns[1, name] + 0; n = ns[2, name] + 0
    delta = (o > 0) ? 100 * (n - o) / o : 0
    verdict = "ok"
    if (n > o * 1.10) { verdict = "REGRESSION ns/op"; bad++ }
    if (al[1, name] != "?" && al[2, name] != "?" && al[2, name] + 0 > al[1, name] + 0) {
      verdict = (verdict == "ok") ? "REGRESSION allocs/op" : verdict " + allocs/op"
      bad++
    }
    printf "  %-60s %12.0f -> %12.0f ns/op  %+6.1f%%  allocs %s -> %s  %s\n",
      name, o, n, delta, al[1, name], al[2, name], verdict
  }
  if (compared == 0) {
    msg = "no shared benchmarks between records"
    if (soft) { print "benchdiff: skipped (" msg ")"; exit 0 }
    print "benchdiff: " msg > "/dev/stderr"
    exit 2
  }
  if (bad) {
    printf "benchdiff: FAIL (%d regression(s) across %d shared benchmarks)\n", bad, compared
    exit 1
  }
  printf "benchdiff: ok (%d shared benchmarks within bounds)\n", compared
}
' "$OLD" "$NEW"
