package core

import (
	"repro/internal/kernel"
)

// InferScratch is the reusable working set of one inference engine: the
// per-stage potential, fired and refractory (spike-offset) buffers, the
// decode LUT, the spike-offset buckets, and the arenas that back the
// returned Result slices. TTFS coding fires each neuron at most once, so
// the working set is a fixed function of the model geometry — allocate a
// scratch once, reuse it per call, and the steady-state hot path
// allocates nothing (pinned by TestInferWithZeroAllocs).
//
// A scratch is NOT safe for concurrent use; give each worker its own
// (internal/serve pools them per engine). Results returned by InferWith
// and InferBatchWith alias scratch memory: they are valid until the next
// call that reuses the same scratch. Callers that retain results across
// calls must copy Spikes and Potentials first — or pass a nil scratch,
// which falls back to a fresh single-use arena.
type InferScratch struct {
	// sized-for dimensions (grown on demand, never shrunk)
	maxLen int // max of InLen and every stage OutLen
	window int // decode-LUT horizon (model T)
	chunk  int // per-chunk sample capacity of the batch buffers

	// single-sample working state
	timesA, timesB []int     // ping-pong spike-offset buffers
	pot            []float64 // hidden-stage membrane potentials
	dec            []float64 // ε(t) decode LUT, rebuilt per stage
	buckets        [][]int   // spike indices grouped by window offset

	// event-engine working state (EngineEvent), allocated lazily by
	// ensureEvent so clocked-only scratches never pay for it
	evMaxLen int       // event-buffer neuron capacity
	evWindow int       // event-buffer window capacity
	evQ      [][]int32 // candidate bucket queue, one bucket of neurons per fire step
	evNext   []int32   // per-neuron latest scheduled candidate step (T = none)
	evStamp  []uint64  // per-epoch touched dedup stamps (see evEpoch)
	evEpoch  uint64    // monotonic epoch counter; a stamp from any earlier
	// phase or call compares unequal, so stamps need no per-stage clear
	evTouched []int32   // neurons touched by this step's arrivals
	evThr     []float64 // θ(f) threshold LUT, rebuilt per stage
	// evGain/evLoss back the early-exit suffix bounds over the output
	// window: the largest total rise/fall any single potential can see
	// from arrivals at offset ≥ off (window+1 entries)
	evGain, evLoss []float64

	// fixed-point engine working state (EngineQuant), allocated lazily
	// by ensureQuant so float-only scratches never pay for it
	qMaxLen int     // quant accumulator capacity
	qWindow int     // quant LUT capacity
	qacc    []int32 // int32 membrane accumulators (stage-scaled units)
	qdec    []int32 // quantized decode LUT, rebuilt per stage
	qthr    []int32 // quantized threshold LUT, rebuilt per stage

	// batched working state (chunk ≤ maxChunk samples)
	bTimes     [2][][]int // ping-pong banks of per-sample offset buffers
	bTimesBack [2][]int
	pots       [][]float64 // per-sample hidden-stage potentials
	potsBack   []float64
	fired      []int         // per-sample fired counters
	perOff     [][]fireEntry // chunk spikes grouped by window offset

	// result arenas (reset per top-level call)
	ints    intArena   // Result.Spikes
	floats  floatArena // Result.Potentials (output-stage membranes)
	results []Result   // InferBatchWith return backing
}

// NewInferScratch allocates a scratch pre-sized for single-sample
// inference on m; the batched buffers are sized on first batched use.
func NewInferScratch(m *Model) *InferScratch {
	sc := &InferScratch{}
	sc.ensure(m)
	return sc
}

// ensure grows the single-sample buffers to fit m.
func (sc *InferScratch) ensure(m *Model) {
	maxLen := m.Net.InLen
	for i := range m.Net.Stages {
		if n := m.Net.Stages[i].OutLen; n > maxLen {
			maxLen = n
		}
	}
	if maxLen > sc.maxLen {
		sc.maxLen = maxLen
		sc.timesA = make([]int, maxLen)
		sc.timesB = make([]int, maxLen)
		sc.pot = make([]float64, maxLen)
		sc.chunk = 0 // batch backings are sized from maxLen; rebuild them
	}
	if m.T > sc.window {
		sc.window = m.T
		sc.dec = make([]float64, m.T)
		old := sc.buckets
		sc.buckets = make([][]int, m.T)
		copy(sc.buckets, old) // keep grown bucket capacity
		oldOff := sc.perOff
		sc.perOff = make([][]fireEntry, m.T)
		copy(sc.perOff, oldOff)
	}
}

// ensureEvent grows the event-engine buffers; only the event pipeline
// calls it, so clocked inference on a fresh scratch allocates nothing
// extra. ensure must have run first (it sets maxLen and window).
func (sc *InferScratch) ensureEvent() {
	if sc.maxLen > sc.evMaxLen {
		sc.evMaxLen = sc.maxLen
		sc.evNext = make([]int32, sc.maxLen)
		sc.evStamp = make([]uint64, sc.maxLen)
		sc.evEpoch = 0
		sc.evTouched = make([]int32, 0, sc.maxLen)
	}
	if sc.window > sc.evWindow {
		sc.evWindow = sc.window
		sc.evThr = make([]float64, sc.window)
		sc.evGain = make([]float64, sc.window+1)
		sc.evLoss = make([]float64, sc.window+1)
		oldQ := sc.evQ
		sc.evQ = make([][]int32, sc.window)
		copy(sc.evQ, oldQ) // keep grown candidate-bucket capacity
	}
}

// ensureQuant grows the fixed-point engine buffers; only the quant
// pipeline calls it, so float-only scratches never allocate them.
// ensure must have run first (it sets maxLen and window).
func (sc *InferScratch) ensureQuant() {
	if sc.maxLen > sc.qMaxLen {
		sc.qMaxLen = sc.maxLen
		sc.qacc = make([]int32, sc.maxLen)
	}
	if sc.window > sc.qWindow {
		sc.qWindow = sc.window
		sc.qdec = make([]int32, sc.window)
		sc.qthr = make([]int32, sc.window)
	}
}

// ensureBatch grows the batched buffers to fit a chunk of b samples.
func (sc *InferScratch) ensureBatch(b int) {
	if b <= sc.chunk {
		return
	}
	sc.chunk = b
	for bank := 0; bank < 2; bank++ {
		sc.bTimesBack[bank] = make([]int, b*sc.maxLen)
		sc.bTimes[bank] = make([][]int, b)
	}
	sc.potsBack = make([]float64, b*sc.maxLen)
	sc.pots = make([][]float64, b)
	sc.fired = make([]int, b)
}

// reset rewinds the result arenas; called once per top-level inference.
func (sc *InferScratch) reset() {
	sc.ints.reset()
	sc.floats.reset()
}

// decode fills the scratch LUT with ε(t) at every window offset — the
// zero-allocation twin of decodeTable.
func (sc *InferScratch) decode(k kernel.Kernel, t int) []float64 {
	dec := sc.dec[:t]
	for i := range dec {
		dec[i] = k.Decode(i)
	}
	return dec
}

// thresholds tabulates θ(f) for every step of the fire window — the
// same values the clocked sweep computes one step at a time, so a
// table compare and a sweep compare agree bit for bit.
func (sc *InferScratch) thresholds(k kernel.Kernel, t int) []float64 {
	thr := sc.evThr[:t]
	for i := range thr {
		thr[i] = k.Threshold(float64(i))
	}
	return thr
}

// bucketizeInto groups spike indices by their time offset into the
// scratch buckets, reusing each bucket's capacity.
func (sc *InferScratch) bucketizeInto(times []int, t int) [][]int {
	buckets := sc.buckets[:t]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for idx, off := range times {
		if off >= 0 && off < t {
			buckets[off] = append(buckets[off], idx)
		}
	}
	return buckets
}

// bankTimes returns the b per-sample offset buffers of one ping-pong
// bank, each resliced to n entries.
func (sc *InferScratch) bankTimes(bank, b, n int) [][]int {
	ts := sc.bTimes[bank][:b]
	back := sc.bTimesBack[bank]
	for s := 0; s < b; s++ {
		ts[s] = back[s*sc.maxLen : s*sc.maxLen+n : (s+1)*sc.maxLen]
	}
	return ts
}

// batchPots returns b zeroed per-sample potential buffers of n neurons.
func (sc *InferScratch) batchPots(b, n int) [][]float64 {
	ps := sc.pots[:b]
	for s := 0; s < b; s++ {
		p := sc.potsBack[s*sc.maxLen : s*sc.maxLen+n : (s+1)*sc.maxLen]
		for i := range p {
			p[i] = 0
		}
		ps[s] = p
	}
	return ps
}

// takeResults returns a zeroed result slice backed by the scratch.
func (sc *InferScratch) takeResults(n int) []Result {
	if cap(sc.results) < n {
		sc.results = make([]Result, n)
	}
	res := sc.results[:n]
	for i := range res {
		res[i] = Result{}
	}
	return res
}

// intArena hands out zeroed []int blocks from a reusable backing array.
// Blocks stay valid after a mid-call grow (they keep referencing the old
// backing); reset only rewinds the cursor, so previously returned blocks
// are overwritten by the next call — the scratch aliasing contract.
type intArena struct {
	buf []int
	off int
}

func (a *intArena) reset() { a.off = 0 }

func (a *intArena) take(n int) []int {
	if a.off+n > len(a.buf) {
		a.buf = make([]int, 2*(a.off+n))
		a.off = 0
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// floatArena is intArena for float64 blocks.
type floatArena struct {
	buf []float64
	off int
}

func (a *floatArena) reset() { a.off = 0 }

func (a *floatArena) take(n int) []float64 {
	if a.off+n > len(a.buf) {
		a.buf = make([]float64, 2*(a.off+n))
		a.off = 0
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}
