package core

import (
	"math"
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// twoPixelNet is a minimal 2 -> 1 -> 1 network used to pin down the
// early-firing semantics exactly: one hidden neuron summing both inputs
// with weight 1, and a unit-weight output reading it.
func twoPixelNet() *snn.Net {
	return &snn.Net{
		Name: "2px", InShape: []int{2}, InLen: 2,
		Stages: []snn.Stage{
			{Name: "h", Kind: snn.DenseStage,
				W: tensor.FromSlice([]float64{1, 1}, 2, 1), B: tensor.New(1),
				InLen: 2, OutLen: 1},
			{Name: "o", Kind: snn.DenseStage,
				W: tensor.FromSlice([]float64{1}, 1, 1), B: tensor.New(1),
				InLen: 1, OutLen: 1, Output: true},
		},
	}
}

// With τ=2, T=20, t_d=0 and both pixels at 0.4 (each encoding to t=2,
// decoding to e^-1 ≈ 0.368), the baseline hidden neuron integrates both
// (u ≈ 0.736) and the analytic encode fires at local offset
// ceil(−2·ln u) = 1 — global step T+1 = 21. Under early firing the
// whole fire window shifts forward: the arrivals at input offset 2 land
// at local fire step 2−EFStart = 1, where the threshold has already
// decayed to θ(1) < u, so the spike leaves at global step EFStart+1 = 2.
// Same local offset, ~T earlier in wall-clock — exactly the latency
// mechanism of Fig. 3-b.
func TestEarlyFireShiftsSpikesEarlierGlobally(t *testing.T) {
	m, err := NewModel(twoPixelNet(), 20, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.4, 0.4}

	base := m.Infer(in, RunConfig{CollectSpikeTimes: true})
	ef := m.Infer(in, RunConfig{EarlyFire: true, EFStart: 1, CollectSpikeTimes: true})

	if len(base.SpikeTimes[1]) != 1 || len(ef.SpikeTimes[1]) != 1 {
		t.Fatalf("hidden spike counts: base %d, ef %d", len(base.SpikeTimes[1]), len(ef.SpikeTimes[1]))
	}
	if got := base.SpikeTimes[1][0]; got != 21 {
		t.Fatalf("baseline hidden spike at global %d, want 21", got)
	}
	if got := ef.SpikeTimes[1][0]; got != 2 {
		t.Fatalf("EF hidden spike at global %d, want 2", got)
	}
	if ef.Latency >= base.Latency {
		t.Fatalf("EF latency %d not below baseline %d", ef.Latency, base.Latency)
	}
}

// A late input arriving after the hidden neuron has fired must be
// dropped (non-guaranteed integration). Weights [1.3, 6] with τ=2,
// T=20: pixel0 = 0.8 spikes at input offset 1 (PSP 1.3·e^-0.5 ≈ 0.79)
// and pixel1 = 0.05 at offset 6 (PSP 6·e^-3 ≈ 0.30).
//   - baseline: u ≈ 1.09 ≥ θ(0) = 1 ⇒ hidden spike at local 0,
//     decoding to ε(0) = 1 at the output;
//   - EF(start=1): at fire step 0 only pixel0 has arrived (0.79 < 1);
//     at step 1 the threshold has fallen to 0.61 ⇒ the neuron fires
//     before pixel1 ever arrives, and the output sees ε(1) ≈ 0.61.
//
// The dropped arrival is visible as a strictly lower output potential.
func TestEarlyFireDropsLateArrivals(t *testing.T) {
	net := twoPixelNet()
	net.Stages[0].W = tensor.FromSlice([]float64{1.3, 6}, 2, 1)
	m, err := NewModel(net, 20, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.8, 0.05}

	base := m.Infer(in, RunConfig{})
	ef := m.Infer(in, RunConfig{EarlyFire: true, EFStart: 1})

	if math.Abs(base.Potentials[0]-1.0) > 1e-9 {
		t.Fatalf("baseline output potential = %v, want 1 (spike at local 0)", base.Potentials[0])
	}
	wantEF := math.Exp(-0.5)
	if math.Abs(ef.Potentials[0]-wantEF) > 1e-9 {
		t.Fatalf("EF output potential = %v, want ε(1) = %v", ef.Potentials[0], wantEF)
	}
}

// Spike accounting: EF never emits more spikes than neurons, and
// dropping late inputs can only reduce (never increase) hidden firing.
func TestEarlyFireSpikeBound(t *testing.T) {
	m, err := NewModel(twoPixelNet(), 20, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		in := []float64{r.Float64(), r.Float64()}
		base := m.Infer(in, RunConfig{})
		ef := m.Infer(in, RunConfig{EarlyFire: true, EFStart: 1 + r.Intn(20)})
		if ef.Spikes[1] > base.Spikes[1] {
			t.Fatalf("EF fired more hidden spikes (%d) than baseline (%d) on %v",
				ef.Spikes[1], base.Spikes[1], in)
		}
	}
}
