package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// minParChunk is the smallest chunk the parallel planner will cut. Below
// this the per-chunk fixed costs (decode LUT fill, per-offset spike
// grouping) and the lost scatter-row amortization outweigh what another
// core can win back.
const minParChunk = 8

// ParallelOpts tunes the data-parallel batch path (NewPool).
type ParallelOpts struct {
	// Workers is the number of pool workers; 0 or negative means one per
	// GOMAXPROCS.
	Workers int
	// MinChunksPerWorker is how many chunks each engaged worker should
	// get before the planner cuts chunks smaller than the 64-sample mask
	// width (default 1). Larger values trade scatter-row amortization for
	// finer work-stealing granularity.
	MinChunksPerWorker int
}

// poolCall is one parallel invocation: either a generic index-range
// function (fn != nil) or a batched inference (m != nil). It is owned by
// the pool and reused across calls so the steady-state parallel hot path
// allocates nothing.
type poolCall struct {
	// generic mode
	fn func(lo, hi, worker int)

	// batch mode
	m      *Model
	inputs [][]float64
	cfg    RunConfig
	faults []*fault.Stream
	res    []Result

	n       int // total items
	chunk   int // items per claimed chunk
	nChunks int
	next    atomic.Int64 // next chunk index to claim

	panicMu  sync.Mutex
	panicVal any // first worker panic, re-raised on the caller

	wg sync.WaitGroup
}

// Pool is a bounded worker pool for data-parallel execution: batched
// inference sharded at chunk granularity (InferBatchParallel) and
// generic index-range fan-out (Each, used by Evaluate and the coding
// sweeps). Each worker owns one InferScratch, so the batched hot path
// stays at zero steady-state allocations per worker; the shared
// scatter plan on the model is read lock-free by every worker.
//
// Calls are serialized internally (one parallel call runs at a time),
// so concurrent Each calls are safe: their results flow through fn.
// Concurrent InferBatchParallel callers need one extra rule — returned
// results alias pool memory and are overwritten by the next call, so
// callers sharing a pool must consume (copy out of) results under their
// own lock before another call can start; internal/serve's TTFSEngine
// does exactly that. Calls must not be nested: fn passed to Each must
// never call back into the same pool.
//
// A nil *Pool is accepted everywhere and means "run sequentially".
type Pool struct {
	workers   int
	minChunks int

	mu      sync.Mutex // serializes calls, guards state below
	started bool
	closed  bool
	calls   chan *poolCall
	scr     []*InferScratch
	results []Result
	call    poolCall

	chunks atomic.Uint64 // cumulative chunks dispatched (all modes)
}

// NewPool builds a pool. Worker goroutines start lazily on the first
// parallel call; Close releases them.
func NewPool(opts ParallelOpts) *Pool {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	mc := opts.MinChunksPerWorker
	if mc <= 0 {
		mc = 1
	}
	p := &Pool{workers: w, minChunks: mc}
	p.scr = make([]*InferScratch, w)
	for i := range p.scr {
		p.scr[i] = &InferScratch{}
	}
	return p
}

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Chunks returns the cumulative number of work chunks the pool has
// dispatched (0 for a nil pool) — the parallel_chunks serving metric.
func (p *Pool) Chunks() uint64 {
	if p == nil {
		return 0
	}
	return p.chunks.Load()
}

// Close stops the worker goroutines. The pool runs sequentially (on the
// caller's goroutine) afterwards; Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if p.started {
			close(p.calls)
		}
	}
	p.mu.Unlock()
}

// start launches the workers once. Caller holds p.mu.
func (p *Pool) start() {
	if p.started {
		return
	}
	p.started = true
	p.calls = make(chan *poolCall, p.workers)
	for w := 0; w < p.workers; w++ {
		go p.worker(w)
	}
}

func (p *Pool) worker(wid int) {
	for c := range p.calls {
		p.serve(c, wid)
		c.wg.Done()
	}
}

// serve claims chunks off one call until none remain. A panic in a
// chunk is recorded (first wins), further claims are cancelled, and the
// call's initiator re-raises it — matching the sequential path's panic
// semantics without killing the worker.
func (p *Pool) serve(c *poolCall, wid int) {
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			if c.panicVal == nil {
				c.panicVal = r
			}
			c.panicMu.Unlock()
			c.next.Store(int64(c.nChunks)) // cancel remaining chunks
		}
	}()
	if c.fn == nil {
		// Batched mode: prepare this worker's scratch once per call. The
		// arena rewinds exactly once, so every chunk this worker claims
		// lands in fresh arena space.
		sc := p.scr[wid]
		sc.ensure(c.m)
		sc.reset()
	}
	for {
		i := int(c.next.Add(1)) - 1
		if i >= c.nChunks {
			return
		}
		lo := i * c.chunk
		hi := lo + c.chunk
		if hi > c.n {
			hi = c.n
		}
		if c.fn != nil {
			c.fn(lo, hi, wid)
			continue
		}
		sc := p.scr[wid]
		sc.ensureBatch(hi - lo)
		var fs []*fault.Stream
		if c.faults != nil {
			fs = c.faults[lo:hi]
		}
		c.m.inferChunk(sc, c.inputs[lo:hi], c.cfg, fs, c.res[lo:hi])
	}
}

// run engages w workers on the prepared p.call and waits. Caller holds
// p.mu and has filled the call descriptor.
func (p *Pool) run(w int) {
	p.start()
	c := &p.call
	c.wg.Add(w)
	for i := 0; i < w; i++ {
		p.calls <- c
	}
	c.wg.Wait()
	// drop caller references so the pool doesn't pin inputs between calls
	pv := c.panicVal
	c.fn, c.m, c.inputs, c.faults, c.res, c.panicVal = nil, nil, nil, nil, nil, nil
	if pv != nil {
		panic(pv)
	}
}

// planBatch picks the chunk size and worker count for an n-sample batch.
// Chunks default to the 64-sample mask width (maximal scatter-row
// amortization); when that would leave workers idle the planner cuts
// smaller chunks — chunking is result-invariant (pinned by
// TestInferBatchChunksLargeBatches), so this only trades amortization
// for parallelism — with a floor of minParChunk samples.
func (p *Pool) planBatch(n int) (chunk, workers int) {
	chunk = maxChunk
	nChunks := (n + chunk - 1) / chunk
	w := p.workers
	if w > 1 && nChunks < w*p.minChunks {
		chunk = (n + w*p.minChunks - 1) / (w * p.minChunks)
		if chunk < minParChunk {
			chunk = minParChunk
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
		nChunks = (n + chunk - 1) / chunk
	}
	if w > nChunks {
		w = nChunks
	}
	return chunk, w
}

// Warm primes every worker's scratch for the given model and batch by
// running the batch sequentially on each, plus the pool's result
// backing. A sequential pass covers the buffer needs of any parallel
// sub-chunk of the same samples (per-offset spike groups over a chunk
// contain those of its sub-chunks), so after Warm, parallel calls on
// same-shaped batches start at zero steady-state allocations no matter
// which worker claims which chunk. snnserve calls this at startup.
func (p *Pool) Warm(m *Model, inputs [][]float64, cfg RunConfig) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sc := range p.scr {
		m.inferBatch(sc, inputs, cfg, nil)
	}
	p.takeResults(len(inputs))
}

// takeResults returns a zeroed pool-owned result slice.
func (p *Pool) takeResults(n int) []Result {
	if cap(p.results) < n {
		p.results = make([]Result, n)
	}
	res := p.results[:n]
	for i := range res {
		res[i] = Result{}
	}
	return res
}

// Each runs fn over [0, n) split into chunks of the given size, claimed
// across the pool's workers (work stealing: a fast worker takes more
// chunks). fn receives the half-open range [lo, hi) and the worker
// index in [0, Workers()) — per-worker state indexed by it is never
// touched concurrently. fn must be safe for concurrent invocation on
// disjoint ranges; a panic in fn propagates to the caller after all
// workers stop claiming. A nil or closed pool runs fn sequentially on
// the caller's goroutine with worker index 0.
func (p *Pool) Each(n, chunk int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	if p != nil {
		p.chunks.Add(uint64(nChunks))
	}
	w := p.Workers()
	if w > nChunks {
		w = nChunks
	}
	if p == nil || w <= 1 {
		eachSeq(n, chunk, fn)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		eachSeq(n, chunk, fn)
		return
	}
	c := &p.call
	c.fn = fn
	c.m, c.inputs, c.faults, c.res = nil, nil, nil, nil
	c.n, c.chunk, c.nChunks = n, chunk, nChunks
	c.next.Store(0)
	p.run(w)
}

// evalChunk sizes per-sample work-stealing chunks for evaluation-style
// fan-out: about four chunks per worker keeps stealing effective when
// per-sample cost varies (early firing, faults), capped at the batch
// mask width.
func evalChunk(n, workers int) int {
	c := n / (workers * 4)
	if c < 1 {
		c = 1
	}
	if c > maxChunk {
		c = maxChunk
	}
	return c
}

func eachSeq(n, chunk int, fn func(lo, hi, worker int)) {
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi, 0)
	}
}

// InferBatchParallel is InferBatch sharded across p's workers: the batch
// is split into chunks (64-sample mask width, cut smaller when needed to
// engage every worker), each claimed by a worker running the standard
// chunk pipeline on its own scratch. Results are bit-identical to the
// sequential path at any worker count: chunking is result-invariant,
// scratch reuse is bit-exact, and fault streams are pure functions of
// (seed, sample, …) — no decision depends on execution order. Per-worker
// scratches make the steady-state call allocation-free.
//
// The returned results alias pool memory: they are valid until the next
// call on the same pool (copy Spikes/Potentials to retain them). A nil
// pool falls back to the sequential InferBatch, whose results are
// freshly allocated.
//
// Deprecated: use InferMany with InferOpts{Pool: p, Faults: faults}.
func (m *Model) InferBatchParallel(p *Pool, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	return m.InferMany(inputs, cfg, InferOpts{Pool: p, Faults: faults})
}

// inferParallel shards the batch across p's workers (nil p runs it
// sequentially on a fresh scratch). Validation happened in InferMany.
func (m *Model) inferParallel(p *Pool, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	if p == nil {
		return m.inferBatch(nil, inputs, cfg, faults)
	}
	n := len(inputs)
	p.mu.Lock()
	defer p.mu.Unlock()
	chunk, w := p.planBatch(n)
	nChunks := 0
	if chunk > 0 {
		nChunks = (n + chunk - 1) / chunk
	}
	p.chunks.Add(uint64(nChunks))
	if w <= 1 || p.closed || n == 0 {
		// Sequential fallback on worker 0's scratch: same zero-alloc
		// steady state, same aliasing contract.
		return m.inferBatch(p.scr[0], inputs, cfg, faults)
	}
	res := p.takeResults(n)
	c := &p.call
	c.fn = nil
	c.m, c.inputs, c.cfg, c.faults, c.res = m, inputs, cfg, faults, res
	c.n, c.chunk, c.nChunks = n, chunk, nChunks
	c.next.Store(0)
	p.run(w)
	return res
}
