package core

import (
	"bytes"
	"testing"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	// perturb kernels so the round trip carries non-default values
	_, err := src.ApplyGO(fixture.inputs, fixture.res.Activations, kernel.OptimizeConfig{
		BatchSize: 512, Epochs: 1, RNG: tensor.NewRNG(91)})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if dst.T != src.T || len(dst.K) != len(src.K) {
		t.Fatalf("shape mismatch after load: T=%d kernels=%d", dst.T, len(dst.K))
	}
	for i := range src.K {
		if src.K[i] != dst.K[i] {
			t.Fatalf("kernel %d differs: %+v vs %+v", i, src.K[i], dst.K[i])
		}
	}
	// inference must be bit-identical
	for i := 0; i < 10; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		a := src.Infer(in, RunConfig{EarlyFire: true})
		b := dst.Infer(in, RunConfig{EarlyFire: true})
		if a.Pred != b.Pred || a.TotalSpikes != b.TotalSpikes {
			t.Fatalf("sample %d: loaded model diverges (pred %d/%d spikes %d/%d)",
				i, a.Pred, b.Pred, a.TotalSpikes, b.TotalSpikes)
		}
		for j := range a.Potentials {
			if a.Potentials[j] != b.Potentials[j] {
				t.Fatalf("sample %d: potentials differ at %d", i, j)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadModelRejectsWrongVersion(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// corrupt: re-encode with a bumped version by round-tripping through
	// the wire struct is overkill; instead check the validation path by
	// truncating the stream
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadModel(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestSaveLoadPreservesPools(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	foundPool := false
	for i := range dst.Net.Stages {
		if dst.Net.Stages[i].PrePool != nil {
			foundPool = true
			if *dst.Net.Stages[i].PrePool != *src.Net.Stages[i].PrePool {
				t.Fatal("pool spec changed in round trip")
			}
		}
	}
	if !foundPool {
		t.Fatal("fixture should carry pooled stages")
	}
}
