package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	// perturb kernels so the round trip carries non-default values
	_, err := src.ApplyGO(fixture.inputs, fixture.res.Activations, kernel.OptimizeConfig{
		BatchSize: 512, Epochs: 1, RNG: tensor.NewRNG(91)})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if dst.T != src.T || len(dst.K) != len(src.K) {
		t.Fatalf("shape mismatch after load: T=%d kernels=%d", dst.T, len(dst.K))
	}
	for i := range src.K {
		if src.K[i] != dst.K[i] {
			t.Fatalf("kernel %d differs: %+v vs %+v", i, src.K[i], dst.K[i])
		}
	}
	// inference must be bit-identical
	for i := 0; i < 10; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		a := src.Infer(in, RunConfig{EarlyFire: true})
		b := dst.Infer(in, RunConfig{EarlyFire: true})
		if a.Pred != b.Pred || a.TotalSpikes != b.TotalSpikes {
			t.Fatalf("sample %d: loaded model diverges (pred %d/%d spikes %d/%d)",
				i, a.Pred, b.Pred, a.TotalSpikes, b.TotalSpikes)
		}
		for j := range a.Potentials {
			if a.Potentials[j] != b.Potentials[j] {
				t.Fatalf("sample %d: potentials differ at %d", i, j)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// saveWire serializes a tinyNet model and decodes it back into the wire
// struct so corruption tests can mutate individual fields.
func saveWire(t *testing.T) wireModel {
	t.Helper()
	m, err := NewModel(tinyNet(), 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var wm wireModel
	if err := gob.NewDecoder(&buf).Decode(&wm); err != nil {
		t.Fatal(err)
	}
	return wm
}

// TestLoadModelRejectsCorruptFiles feeds LoadModel systematically
// corrupted wire models; every case must produce a descriptive error,
// never a gob or index panic.
func TestLoadModelRejectsCorruptFiles(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(wm *wireModel)
		errHint string
	}{
		{"wrong version", func(wm *wireModel) { wm.Version = wireVersion + 7 }, "version"},
		{"no stages", func(wm *wireModel) { wm.Stages = nil; wm.Tau = nil; wm.Td = nil }, "no stages"},
		{"kernel count mismatch", func(wm *wireModel) { wm.Tau = wm.Tau[:1] }, "kernels"},
		{"td count mismatch", func(wm *wireModel) { wm.Td = append(wm.Td, 1) }, "kernels"},
		{"non-positive input length", func(wm *wireModel) { wm.InLen = 0 }, "input length"},
		{"non-positive window", func(wm *wireModel) { wm.T = -3 }, "time window"},
		{"invalid kernel tau", func(wm *wireModel) { wm.Tau[0] = -1 }, "kernel"},
		{"unknown stage kind", func(wm *wireModel) { wm.Stages[0].Kind = 9 }, "kind"},
		{"truncated weights", func(wm *wireModel) { wm.Stages[0].W = wm.Stages[0].W[:5] }, "weights"},
		{"empty weight shape", func(wm *wireModel) { wm.Stages[0].WShape = nil }, "weights"},
		{"negative weight dim", func(wm *wireModel) { wm.Stages[0].WShape = []int{-3, -4} }, "dimension"},
		{"dense shape rank", func(wm *wireModel) {
			wm.Stages[0].WShape = []int{2, 2, 3, 1}
		}, "dense"},
		{"bias length mismatch", func(wm *wireModel) { wm.Stages[1].B = wm.Stages[1].B[:1] }, "biases"},
		{"zero neuron counts", func(wm *wireModel) { wm.Stages[0].OutLen = 0 }, "neuron counts"},
		{"invalid pool spec", func(wm *wireModel) {
			wm.Stages[0].HasPool = true
			wm.Stages[0].PoolK = 0
		}, "pool"},
		{"inconsistent stage chain", func(wm *wireModel) { wm.Stages[1].InLen = 7; wm.Stages[1].WShape = []int{7, 2}; wm.Stages[1].W = make([]float64, 14) }, "stage"},
		{"output flag missing", func(wm *wireModel) { wm.Stages[1].Output = false }, "Output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wm := saveWire(t)
			tc.corrupt(&wm)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
				t.Fatal(err)
			}
			m, err := LoadModel(&buf)
			if err == nil {
				t.Fatalf("corrupt model accepted: %+v", m)
			}
			if !strings.Contains(err.Error(), tc.errHint) {
				t.Fatalf("error %q does not mention %q", err, tc.errHint)
			}
		})
	}
}

// TestLoadModelRejectsTruncatedStreams checks every byte-level prefix
// class of a valid stream errors cleanly.
func TestLoadModelRejectsTruncatedStreams(t *testing.T) {
	m, err := NewModel(tinyNet(), 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []int{0, 1, 4, 10, 25, 50, 75, 90, 99} {
		n := len(full) * frac / 100
		if _, err := LoadModel(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("stream truncated to %d%% (%d bytes) accepted", frac, n)
		}
	}
}

func TestLoadModelRejectsWrongVersion(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// corrupt: re-encode with a bumped version by round-tripping through
	// the wire struct is overkill; instead check the validation path by
	// truncating the stream
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadModel(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestSaveLoadPreservesPools(t *testing.T) {
	loadFixture(t)
	src := fixture.model()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	foundPool := false
	for i := range dst.Net.Stages {
		if dst.Net.Stages[i].PrePool != nil {
			foundPool = true
			if *dst.Net.Stages[i].PrePool != *src.Net.Stages[i].PrePool {
				t.Fatal("pool spec changed in round trip")
			}
		}
	}
	if !foundPool {
		t.Fatal("fixture should carry pooled stages")
	}
}
