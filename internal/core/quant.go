package core

import (
	"math"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/quant"
	"repro/internal/snn"
)

// The fixed-point engine (EngineQuant) runs the clocked T2FSNN pipeline
// on int8 weights and int32 membrane accumulators.
//
// Per stage, weights are quantized once to the stage's 8-bit dynamic
// fixed-point format (quant.FormatFor): wq = FixedRound(w/step), stored
// in a structure-of-arrays scatter plan (snn.SoAPlan) that drops
// zero-quantized synapses at build time. At inference time potentials
// live in integer "accumulator units" of size step·2^−sf, where sf is a
// per-stage left shift chosen so the worst-case accumulator magnitude
// stays below accCap (int32 with 2× headroom): the decode LUT, the
// threshold LUT, and the bias are each rounded onto that grid once per
// stage, the scatter inner loop is pure int32 multiply-accumulate, and
// the only rescale back to float happens at the output stage boundary.
//
// All rounding goes through snn.FixedRound — the same half-away-from-
// zero convention as quant.Format.Quantize — so the engine's int8 grid
// is bit-identical to QuantizeNet's.

// weightBits is the fixed-point weight width: sign + 7 = int8, the
// narrowest format internal/quant's ablation shows preserves accuracy
// ordering on the fixture nets.
const weightBits = 8

// accCap bounds the worst-case |accumulator| (and quantized threshold)
// a stage may produce: 2^30 leaves a factor-2 headroom below int32
// overflow for LUT rounding slop and fault-injected threshold noise.
const accCap = float64(1 << 30)

// quantStage is the per-stage weight-grid state of the fixed-point
// engine, cached for the model's lifetime (weights are frozen; see
// snn.ScatterPlan). Kernel-dependent values — decode, threshold, and
// the stage shift sf — are requantized per call into scratch LUTs, so
// ApplyGO needs no invalidation.
type quantStage struct {
	plan *snn.SoAPlan
	// bias is the per-neuron bias expanded to OutLen (conv stages store
	// one bias per channel; the accumulators want one per neuron).
	bias       []float64
	biasMaxAbs float64
	div        float64 // pool divisor shared by every row of the stage
	step       float64 // weight grid step 2^−FracBits
	maxQ       int32   // weight grid saturation bound
}

// quantStages builds (once) the per-stage SoA plans and grid constants.
func (m *Model) quantStages() []quantStage {
	m.quantOnce.Do(func() {
		m.qstages = make([]quantStage, len(m.Net.Stages))
		for i := range m.Net.Stages {
			st := &m.Net.Stages[i]
			f, err := quant.FormatFor(maxAbsSlice(st.W.Data), weightBits)
			if err != nil {
				panic("core: " + err.Error()) // unreachable: weightBits ≥ 2
			}
			qs := &m.qstages[i]
			qs.step, qs.maxQ = f.Step(), f.MaxQ()
			qs.plan = snn.NewSoAPlan(st, qs.step, qs.maxQ)
			_, qs.div = st.RowKey(0)
			qs.bias = expandBias(st)
			for _, b := range qs.bias {
				if a := math.Abs(b); a > qs.biasMaxAbs {
					qs.biasMaxAbs = a
				}
			}
		}
	})
	return m.qstages
}

// expandBias returns the stage bias as one float64 per output neuron.
func expandBias(st *snn.Stage) []float64 {
	out := make([]float64, st.OutLen)
	st.AddBias(out)
	return out
}

// maxAbsSlice returns max |v| over the slice.
func maxAbsSlice(data []float64) float64 {
	m := 0.0
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// stageShift picks the per-stage accumulator shift sf: the largest
// sf ≥ 0 keeping both the worst-case accumulator magnitude (bias plus
// MaxInDegree saturated arrivals at the peak decode value) and the
// peak quantized threshold below accCap. ok=false means even sf=0
// overflows int32 — the caller falls back to the float engine.
func stageShift(qs *quantStage, decMax, thetaMax float64) (sf int, ok bool) {
	need := qs.biasMaxAbs + float64(qs.plan.MaxInDegree)*float64(qs.maxQ)*qs.step*(decMax/qs.div)
	if thetaMax > need {
		need = thetaMax
	}
	for sf = 30; sf >= 0; sf-- {
		if need*math.Exp2(float64(sf))/qs.step < accCap {
			return sf, true
		}
	}
	return 0, false
}

// clampQ rounds to the accumulator grid with int32 saturation, via the
// repo-wide snn.FixedRound convention.
func clampQ(x float64) int32 {
	q := snn.FixedRound(x)
	if q >= math.MaxInt32 {
		return math.MaxInt32
	}
	if q <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(q)
}

// scatterQuant replays one SoA row into the int32 accumulators:
// acc[j] += s·wq for every kept synapse of the row, where s is the
// stage-scaled quantized decode value of the arrival offset (the pool
// divisor is already folded into s).
func scatterQuant(plan *snn.SoAPlan, st *snn.Stage, idx int, s int32, acc []int32) {
	key, _ := st.RowKey(idx)
	a, b := plan.Off[key], plan.Off[key+1]
	ix := plan.Idx[a:b]
	ws := plan.Wq[a:b]
	ws = ws[:len(ix)] // bounds-check hint: rows are parallel by construction
	for i, j := range ix {
		acc[j] += s * int32(ws[i])
	}
}

// quantDecode fills the scratch quantized-decode LUT for one stage:
// qdec[off] = round(ε(off)/div · 2^sf), i.e. the per-arrival scale in
// accumulator units per weight grid step.
func (sc *InferScratch) quantDecode(dec []float64, div float64, sf int) []int32 {
	scale := math.Exp2(float64(sf)) / div
	qdec := sc.qdec[:len(dec)]
	for i, d := range dec {
		qdec[i] = clampQ(d * scale)
	}
	return qdec
}

// quantThresholds fills the scratch quantized-threshold LUT:
// qthr[f] = round(θ(f)/unit) with unit = step·2^−sf.
func (sc *InferScratch) quantThresholds(k kernel.Kernel, t int, step float64, sf int) []int32 {
	scale := math.Exp2(float64(sf)) / step
	qthr := sc.qthr[:t]
	for f := range qthr {
		qthr[f] = clampQ(k.Threshold(float64(f)) * scale)
	}
	return qthr
}

// inferQuant is the fixed-point engine's entry: scratch setup, then the
// int8 pipeline.
func (m *Model) inferQuant(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	return m.inferQuantBody(sc, input, cfg)
}

// inferManyQuant is the fixed-point engine's batch loop: one scratch,
// one arena rewind, then per-sample runs whose Results all stay valid
// until the next top-level call on the scratch (mirrors inferManyEvent).
func (m *Model) inferManyQuant(sc *InferScratch, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	res := sc.takeResults(len(inputs))
	for i, input := range inputs {
		c := cfg
		if faults != nil {
			c.Faults = faults[i]
		}
		res[i] = m.inferQuantBody(sc, input, c)
	}
	return res
}

// inferQuantBody runs the int8 clocked pipeline on a prepared scratch
// without rewinding its arenas. It mirrors inferClockedBody step for
// step — same encode, same bucketing, same fire sweep, same fault
// hooks — with potentials held in int32 accumulator units. A model
// whose headroom analysis cannot fit int32 at sf=0 falls back to the
// float clocked engine for the whole call.
func (m *Model) inferQuantBody(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if len(input) != m.Net.InLen {
		panic("core: input length mismatch")
	}
	qstages := m.quantStages()
	sc.ensureQuant()

	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  sc.ints.take(nStages),
		Latency: (nStages-1)*adv + m.T,
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes = make([][]int, nStages)
	}
	if cfg.CollectEvents {
		res.Events = make([][]SpikeEvent, nStages)
	}

	// Encode the input image with K[0] — identical to the float engines:
	// encoding is analytic and produces integer spike offsets either way.
	times := sc.timesA[:m.Net.InLen]
	next := sc.timesB
	fired := 0
	for i, u := range input {
		t, ok := m.K[0].Encode(u)
		if ok {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	if cfg.Faults != nil {
		fired = cfg.Faults.ApplyTTFS(0, times, m.T)
	}
	res.Spikes[0] = fired
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[0] = collectGlobal(times, 0)
	}
	if cfg.CollectEvents {
		res.Events[0] = collectEvents(times, 0)
	}

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		qs := &qstages[si]
		inK := m.K[si]
		windowStart := si * adv

		// Per-stage headroom: requantize the kernel-dependent scale. If
		// even sf=0 overflows int32, rerun the whole sample on the float
		// engine — fault streams are pure functions of their keys, so the
		// restart injects exactly what a pure clocked run would. The
		// Spikes block taken above is simply abandoned to the arena.
		dec := sc.decode(inK, m.T)
		decMax := 0.0
		for _, d := range dec {
			if d > decMax {
				decMax = d
			}
		}
		thetaMax := 0.0
		if !st.Output {
			thetaMax = m.K[si+1].Threshold(0) // θ(f) = θ₀·ε(f) peaks at f=0
		}
		sf, ok := stageShift(qs, decMax, thetaMax)
		if !ok {
			return m.inferClockedBody(sc, input, cfg)
		}

		if st.Output {
			m.runOutputStageQuant(sc, qs, st, dec, times, windowStart, cfg, &res, sf)
			return res
		}

		outK := m.K[si+1]
		out := next[:st.OutLen]
		next = times[:cap(times)]
		m.runHiddenStageQuant(sc, qs, st, outK, dec, times, out, adv, &res, si, cfg, sf)
		times = out
	}
	return res // unreachable: Validate guarantees an output stage
}

// runHiddenStageQuant is runHiddenStage on int32 accumulators: arrivals
// scatter quantized decode × int8 weight products, and neurons fire
// when acc ≥ quantized θ(f).
func (m *Model) runHiddenStageQuant(sc *InferScratch, qs *quantStage, st *snn.Stage, outK kernel.Kernel, dec []float64, inTimes, outTimes []int, adv int, res *Result, si int, cfg RunConfig, sf int) {
	unitInv := math.Exp2(float64(sf)) / qs.step
	acc := sc.qacc[:st.OutLen]
	for j := range acc {
		acc[j] = clampQ(qs.bias[j] * unitInv)
	}
	qdec := sc.quantDecode(dec, qs.div, sf)
	qthr := sc.quantThresholds(outK, m.T, qs.step, sf)
	plan := qs.plan

	buckets := sc.bucketizeInto(inTimes, m.T)

	// Phase 1 — guaranteed integration.
	for off := 0; off < adv && off < m.T; off++ {
		if s := qdec[off]; s != 0 {
			for _, idx := range buckets[off] {
				scatterQuant(plan, st, idx, s, acc)
			}
		}
	}

	for i := range outTimes {
		outTimes[i] = -1
	}
	firedCount := 0

	// Phase 2 — fire sweep against the quantized dynamic threshold.
	//
	// θ(f) = θ₀·ε(f) decays monotonically, so qthr is nonincreasing and
	// the fault-free sweep can walk arrival-free runs of steps in one
	// pass: accumulators are constant within such a run, and a neuron's
	// fire step — the first f with acc ≥ qthr[f] — falls out of a binary
	// search over the LUT instead of per-step scans. In the baseline
	// pipeline (adv = T) every arrival lands in phase 1 and the whole
	// T-step window collapses to a single pass over the neurons; this is
	// the quant engine's main win over the float clocked sweep, and the
	// per-step naive reference in quant_test pins its exactness.
	// Threshold noise destroys the monotonicity, so that fault path
	// keeps the literal per-step sweep.
	if cfg.Faults != nil && cfg.Faults.HasThresholdNoise() {
		for f := 0; f < m.T; f++ {
			inOff := adv + f
			if inOff < m.T {
				if s := qdec[inOff]; s != 0 {
					for _, idx := range buckets[inOff] {
						scatterQuant(plan, st, idx, s, acc)
					}
				}
			}
			// Noise is injected in real units, then requantized onto the
			// stage grid — hardware perturbs the comparator's reference,
			// not the stored integer.
			thr := clampQ(cfg.Faults.Threshold(si+1, f, outK.Threshold(float64(f))) * unitInv)
			for j, u := range acc {
				if outTimes[j] < 0 && u >= thr {
					outTimes[j] = f
					firedCount++
				}
			}
		}
	} else {
		for f := 0; f < m.T; {
			if inOff := adv + f; inOff < m.T {
				if s := qdec[inOff]; s != 0 {
					for _, idx := range buckets[inOff] {
						scatterQuant(plan, st, idx, s, acc)
					}
				}
			}
			// Extend the arrival-free run (f, f1): empty and zero-decode
			// buckets deliver nothing and cannot change an accumulator.
			f1 := f + 1
			for f1 < m.T {
				io := adv + f1
				if io >= m.T {
					f1 = m.T
					break
				}
				if len(buckets[io]) > 0 && qdec[io] != 0 {
					break
				}
				f1++
			}
			minThr := qthr[f1-1] // smallest threshold of the run
			for j, u := range acc {
				if outTimes[j] < 0 && u >= minThr {
					lo, hi := f, f1-1
					for lo < hi {
						mid := int(uint(lo+hi) >> 1)
						if u >= qthr[mid] {
							hi = mid
						} else {
							lo = mid + 1
						}
					}
					outTimes[j] = lo
					firedCount++
				}
			}
			f = f1
		}
	}
	if cfg.Faults != nil {
		firedCount = cfg.Faults.ApplyTTFS(si+1, outTimes, m.T)
	}
	res.Spikes[si+1] = firedCount
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[si+1] = collectGlobal(outTimes, (si+1)*adv)
	}
	if cfg.CollectEvents {
		res.Events[si+1] = collectEvents(outTimes, (si+1)*adv)
	}
}

// runOutputStageQuant integrates the last hidden layer's spikes into
// int32 output accumulators and performs the engine's single rescale:
// res.Potentials = acc · step·2^−sf, dequantized once at the stage
// boundary. The argmax is taken in integer units (monotone in the
// dequantized value, lowest-index ties either way).
func (m *Model) runOutputStageQuant(sc *InferScratch, qs *quantStage, st *snn.Stage, dec []float64, inTimes []int, windowStart int, cfg RunConfig, res *Result, sf int) {
	unitInv := math.Exp2(float64(sf)) / qs.step
	acc := sc.qacc[:st.OutLen]
	for j := range acc {
		acc[j] = clampQ(qs.bias[j] * unitInv)
	}
	qdec := sc.quantDecode(dec, qs.div, sf)
	plan := qs.plan
	buckets := sc.bucketizeInto(inTimes, m.T)

	for off := 0; off < m.T; off++ {
		if len(buckets[off]) > 0 {
			if s := qdec[off]; s != 0 {
				for _, idx := range buckets[off] {
					scatterQuant(plan, st, idx, s, acc)
				}
			}
			if cfg.CollectTimeline {
				res.recordPred(windowStart+off, argmaxI32(acc))
			}
		}
	}
	res.Pred = argmaxI32(acc)
	pot := sc.floats.take(st.OutLen)
	unit := 1 / unitInv
	for j, u := range acc {
		pot[j] = float64(u) * unit
	}
	res.Potentials = pot
	if cfg.CollectTimeline {
		res.recordPred(res.Latency, res.Pred)
	}
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
}

// argmaxI32 is argmax for int32 slices (lowest index wins ties).
func argmaxI32(v []int32) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
