package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// A minimal hand-built spiking network run through the T2FSNN pipeline:
// two inputs feed one hidden neuron which drives one output neuron.
// Early firing halves the pipeline advance and therefore the latency.
func ExampleModel_Infer() {
	net := &snn.Net{
		Name: "demo", InShape: []int{2}, InLen: 2,
		Stages: []snn.Stage{
			{Name: "hidden", Kind: snn.DenseStage,
				W: tensor.FromSlice([]float64{0.6, 0.6}, 2, 1), B: tensor.New(1),
				InLen: 2, OutLen: 1},
			{Name: "out", Kind: snn.DenseStage,
				W: tensor.FromSlice([]float64{1}, 1, 1), B: tensor.New(1),
				InLen: 1, OutLen: 1, Output: true},
		},
	}
	m, err := core.NewModel(net, 20, 5, 0) // T=20, τ=5
	if err != nil {
		panic(err)
	}
	in := []float64{0.8, 0.4}
	base := m.Infer(in, core.RunConfig{})
	ef := m.Infer(in, core.RunConfig{EarlyFire: true})
	fmt.Printf("baseline: latency=%d spikes=%d\n", base.Latency, base.TotalSpikes)
	fmt.Printf("early-firing: latency=%d spikes=%d\n", ef.Latency, ef.TotalSpikes)
	// Output:
	// baseline: latency=40 spikes=3
	// early-firing: latency=30 spikes=3
}
