package core

import "fmt"

// InferAnalytic runs the baseline (guaranteed-integration) pipeline in
// closed form: because every input spike of a layer has arrived before
// its fire phase opens, the fire time of each neuron is exactly the
// analytic encode (Eq. 7) of its fully integrated potential, so no
// per-step threshold clock is needed. It is bit-equivalent to
// Infer(..., RunConfig{}) — the equivalence is enforced by tests and the
// engine ablation bench — and serves as the fast path for baseline
// sweeps.
//
// Early firing has no analytic form (firing depends on arrival order
// within the overlapped window); use Infer for EF runs.
func (m *Model) InferAnalytic(input []float64) Result {
	if len(input) != m.Net.InLen {
		panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
	}
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  make([]int, nStages),
		Latency: nStages * m.T, // (L-1)·T advance + final T window
	}

	// encode input pixels
	decoded := make([]float64, m.Net.InLen)
	fired := 0
	for i, u := range input {
		if t, ok := m.K[0].Encode(u); ok {
			decoded[i] = m.K[0].Decode(t)
			fired++
		}
	}
	res.Spikes[0] = fired

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		pot := st.Forward(decoded)
		if st.Output {
			res.Pred = argmax(pot)
			res.Potentials = pot
			break
		}
		outK := m.K[si+1]
		next := make([]float64, st.OutLen)
		count := 0
		for j, u := range pot {
			if t, ok := outK.Encode(u); ok {
				next[j] = outK.Decode(t)
				count++
			}
		}
		res.Spikes[si+1] = count
		decoded = next
	}
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	return res
}

// VerifyEngines runs both the clocked and the analytic baseline engines
// on the same input and reports any divergence; the ablation bench uses
// it as a self-check, and it is handy when modifying either engine.
func (m *Model) VerifyEngines(input []float64) error {
	clocked := m.Infer(input, RunConfig{})
	analytic := m.InferAnalytic(input)
	if clocked.Pred != analytic.Pred {
		return fmt.Errorf("core: engines disagree on prediction: clocked %d, analytic %d", clocked.Pred, analytic.Pred)
	}
	if clocked.TotalSpikes != analytic.TotalSpikes {
		return fmt.Errorf("core: engines disagree on spikes: clocked %d, analytic %d", clocked.TotalSpikes, analytic.TotalSpikes)
	}
	for b := range clocked.Spikes {
		if clocked.Spikes[b] != analytic.Spikes[b] {
			return fmt.Errorf("core: boundary %d spikes differ: clocked %d, analytic %d", b, clocked.Spikes[b], analytic.Spikes[b])
		}
	}
	for j := range clocked.Potentials {
		d := clocked.Potentials[j] - analytic.Potentials[j]
		if d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("core: output potential %d differs: clocked %v, analytic %v", j, clocked.Potentials[j], analytic.Potentials[j])
		}
	}
	return nil
}
