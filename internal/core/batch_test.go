package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fault"
)

// sameResult pins bit-identity between a batched and a per-sample
// result: predictions, spike counts, potentials, timelines, spike
// times, and events must all match exactly.
func sameResult(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Pred != want.Pred || got.Latency != want.Latency || got.TotalSpikes != want.TotalSpikes {
		t.Fatalf("%s: pred/latency/spikes (%d,%d,%d) != (%d,%d,%d)",
			tag, got.Pred, got.Latency, got.TotalSpikes, want.Pred, want.Latency, want.TotalSpikes)
	}
	if len(got.Spikes) != len(want.Spikes) {
		t.Fatalf("%s: spike boundaries %d != %d", tag, len(got.Spikes), len(want.Spikes))
	}
	for b := range got.Spikes {
		if got.Spikes[b] != want.Spikes[b] {
			t.Fatalf("%s: boundary %d spikes %d != %d", tag, b, got.Spikes[b], want.Spikes[b])
		}
	}
	if len(got.Potentials) != len(want.Potentials) {
		t.Fatalf("%s: potentials %d != %d", tag, len(got.Potentials), len(want.Potentials))
	}
	for j := range got.Potentials {
		if math.Float64bits(got.Potentials[j]) != math.Float64bits(want.Potentials[j]) {
			t.Fatalf("%s: potential %d not bit-identical: %v != %v",
				tag, j, got.Potentials[j], want.Potentials[j])
		}
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("%s: timeline %d != %d entries", tag, len(got.Timeline), len(want.Timeline))
	}
	for i := range got.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Fatalf("%s: timeline[%d] %+v != %+v", tag, i, got.Timeline[i], want.Timeline[i])
		}
	}
	if len(got.SpikeTimes) != len(want.SpikeTimes) {
		t.Fatalf("%s: spike-time boundaries differ", tag)
	}
	for b := range got.SpikeTimes {
		if len(got.SpikeTimes[b]) != len(want.SpikeTimes[b]) {
			t.Fatalf("%s: boundary %d spike times %d != %d", tag, b, len(got.SpikeTimes[b]), len(want.SpikeTimes[b]))
		}
		for i := range got.SpikeTimes[b] {
			if got.SpikeTimes[b][i] != want.SpikeTimes[b][i] {
				t.Fatalf("%s: boundary %d spike time %d differs", tag, b, i)
			}
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%s: event boundaries differ", tag)
	}
	for b := range got.Events {
		if len(got.Events[b]) != len(want.Events[b]) {
			t.Fatalf("%s: boundary %d events %d != %d", tag, b, len(got.Events[b]), len(want.Events[b]))
		}
		for i := range got.Events[b] {
			if got.Events[b][i] != want.Events[b][i] {
				t.Fatalf("%s: boundary %d event %d differs", tag, b, i)
			}
		}
	}
}

// TestInferBatchMatchesInfer pins the serving-layer contract: batched
// execution is bit-identical to the per-sample reference path, under
// every pipeline variant and collection flag.
func TestInferBatchMatchesInfer(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	const n = 24
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
	}
	configs := []RunConfig{
		{},
		{EarlyFire: true},
		{EarlyFire: true, EFStart: 13},
		{CollectTimeline: true, CollectSpikeTimes: true, CollectEvents: true},
		{EarlyFire: true, CollectTimeline: true},
	}
	for ci, cfg := range configs {
		batch := m.InferBatch(inputs, cfg, nil)
		if len(batch) != n {
			t.Fatalf("cfg %d: %d results for %d inputs", ci, len(batch), n)
		}
		for i, input := range inputs {
			sameResult(t, fmt.Sprintf("cfg %d sample %d", ci, i), batch[i], m.Infer(input, cfg))
		}
	}
}

// Batched execution must route each sample's own fault stream exactly as
// the per-sample path does.
func TestInferBatchMatchesInferUnderFaults(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 7, Drop: 0.2, Jitter: 2, StuckSilent: 0.05, ThresholdNoise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	inputs := make([][]float64, n)
	streams := make([]*fault.Stream, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		streams[i] = inj.Sample(i)
	}
	streams[3] = nil // mixed batch: one sample without injection
	cfg := RunConfig{EarlyFire: true, CollectTimeline: true}
	batch := m.InferBatch(inputs, cfg, streams)
	for i, input := range inputs {
		ref := cfg
		ref.Faults = streams[i]
		sameResult(t, fmt.Sprintf("faulted sample %d", i), batch[i], m.Infer(input, ref))
	}
}

// Chunking must be invisible: a batch larger than the 64-sample mask
// width produces the same results as the per-sample path.
func TestInferBatchChunksLargeBatches(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	const n = 70
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
	}
	batch := m.InferBatch(inputs, RunConfig{EarlyFire: true}, nil)
	for _, i := range []int{0, 63, 64, 69} {
		sameResult(t, fmt.Sprintf("chunked sample %d", i), batch[i], m.Infer(inputs[i], RunConfig{EarlyFire: true}))
	}
}

func TestInferBatchEmptyAndValidation(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	if got := m.InferBatch(nil, RunConfig{}, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched fault slice accepted")
		}
	}()
	m.InferBatch(make([][]float64, 2), RunConfig{}, make([]*fault.Stream, 3))
}

// BenchmarkInferBatch measures the serial batch path in its serving
// configuration: scratch and the model's scatter plan warmed before the
// timer, so allocs/op pins 0 and benchdiff can gate regressions on this
// path the same way it gates the parallel and event benchmarks.
func BenchmarkInferBatch(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	cfg := RunConfig{EarlyFire: true}
	for _, size := range []int{1, 8, 32} {
		inputs := make([][]float64, size)
		for i := range inputs {
			inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		}
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			sc := NewInferScratch(m)
			m.InferMany(inputs, cfg, InferOpts{Scratch: sc})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InferMany(inputs, cfg, InferOpts{Scratch: sc})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
		})
	}
	b.Run("referenceInfer", func(b *testing.B) {
		in := fixture.x.Data[:256]
		sc := NewInferScratch(m)
		m.InferOne(in, cfg, InferOpts{Scratch: sc})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.InferOne(in, cfg, InferOpts{Scratch: sc})
		}
	})
}
