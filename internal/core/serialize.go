package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// The wire format is a flat gob structure independent of the in-memory
// types, so the on-disk representation stays stable if internals move.

type wireStage struct {
	Name    string
	Kind    int
	HasPool bool
	PoolC   int
	PoolH   int
	PoolW   int
	PoolK   int
	Geom    tensor.ConvGeom
	OutC    int
	WShape  []int
	W       []float64
	B       []float64
	InLen   int
	OutLen  int
	Output  bool
}

type wireModel struct {
	Version int
	Name    string
	InShape []int
	InLen   int
	T       int
	Tau     []float64
	Td      []float64
	Stages  []wireStage
}

// wireVersion guards against loading incompatible files.
const wireVersion = 1

// Save serializes the converted network and its kernels. The format is
// self-contained: a loaded model runs inference without the original
// DNN, datasets, or conversion statistics.
func (m *Model) Save(w io.Writer) error {
	wm := wireModel{
		Version: wireVersion,
		Name:    m.Net.Name,
		InShape: m.Net.InShape,
		InLen:   m.Net.InLen,
		T:       m.T,
	}
	for _, k := range m.K {
		wm.Tau = append(wm.Tau, k.Tau)
		wm.Td = append(wm.Td, k.Td)
	}
	for i := range m.Net.Stages {
		st := &m.Net.Stages[i]
		ws := wireStage{
			Name: st.Name, Kind: int(st.Kind), Geom: st.Geom, OutC: st.OutC,
			WShape: st.W.Shape, W: st.W.Data, B: st.B.Data,
			InLen: st.InLen, OutLen: st.OutLen, Output: st.Output,
		}
		if st.PrePool != nil {
			ws.HasPool = true
			ws.PoolC, ws.PoolH, ws.PoolW, ws.PoolK = st.PrePool.C, st.PrePool.InH, st.PrePool.InW, st.PrePool.K
		}
		wm.Stages = append(wm.Stages, ws)
	}
	return gob.NewEncoder(w).Encode(wm)
}

// validate defensively checks one decoded wire stage before any slice
// is wrapped in a tensor or indexed: a truncated or corrupted gob
// stream must surface as an error here, never as a panic downstream.
func (ws *wireStage) validate(i int) error {
	if ws.Kind != int(snn.ConvStage) && ws.Kind != int(snn.DenseStage) {
		return fmt.Errorf("core: stage %d (%q): unknown stage kind %d", i, ws.Name, ws.Kind)
	}
	if ws.InLen <= 0 || ws.OutLen <= 0 {
		return fmt.Errorf("core: stage %d (%q): non-positive neuron counts (in %d, out %d)", i, ws.Name, ws.InLen, ws.OutLen)
	}
	wantW := 1
	for _, d := range ws.WShape {
		if d <= 0 {
			return fmt.Errorf("core: stage %d (%q): non-positive weight dimension in %v", i, ws.Name, ws.WShape)
		}
		wantW *= d
	}
	if len(ws.WShape) == 0 || wantW != len(ws.W) {
		return fmt.Errorf("core: stage %d (%q): %d weights do not fill shape %v", i, ws.Name, len(ws.W), ws.WShape)
	}
	switch snn.StageKind(ws.Kind) {
	case snn.ConvStage:
		if len(ws.WShape) != 4 {
			return fmt.Errorf("core: stage %d (%q): conv weights need 4 dimensions, have %v", i, ws.Name, ws.WShape)
		}
		if len(ws.B) != ws.OutC {
			return fmt.Errorf("core: stage %d (%q): %d biases for %d output channels", i, ws.Name, len(ws.B), ws.OutC)
		}
	case snn.DenseStage:
		if len(ws.WShape) != 2 {
			return fmt.Errorf("core: stage %d (%q): dense weights need 2 dimensions, have %v", i, ws.Name, ws.WShape)
		}
		if len(ws.B) != ws.OutLen {
			return fmt.Errorf("core: stage %d (%q): %d biases for %d outputs", i, ws.Name, len(ws.B), ws.OutLen)
		}
	}
	if ws.HasPool && (ws.PoolC <= 0 || ws.PoolH <= 0 || ws.PoolW <= 0 || ws.PoolK <= 0) {
		return fmt.Errorf("core: stage %d (%q): invalid pool spec %dx%dx%d/%d", i, ws.Name, ws.PoolC, ws.PoolH, ws.PoolW, ws.PoolK)
	}
	return nil
}

// LoadModel deserializes a model written by Save and validates it. It
// returns a descriptive error — never panics — on truncated, corrupt,
// version-mismatched, or internally inconsistent model files.
func LoadModel(r io.Reader) (*Model, error) {
	var wm wireModel
	if err := gob.NewDecoder(r).Decode(&wm); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if wm.Version != wireVersion {
		return nil, fmt.Errorf("core: model file version %d, this build reads %d", wm.Version, wireVersion)
	}
	if len(wm.Stages) == 0 {
		return nil, fmt.Errorf("core: model file has no stages")
	}
	if len(wm.Tau) != len(wm.Stages) || len(wm.Td) != len(wm.Stages) {
		return nil, fmt.Errorf("core: %d kernels for %d stages in model file", len(wm.Tau), len(wm.Stages))
	}
	if wm.InLen <= 0 {
		return nil, fmt.Errorf("core: non-positive input length %d in model file", wm.InLen)
	}
	if wm.T <= 0 {
		return nil, fmt.Errorf("core: non-positive time window %d in model file", wm.T)
	}
	for i := range wm.Stages {
		if err := wm.Stages[i].validate(i); err != nil {
			return nil, err
		}
	}
	net := &snn.Net{Name: wm.Name, InShape: wm.InShape, InLen: wm.InLen}
	for _, ws := range wm.Stages {
		st := snn.Stage{
			Name: ws.Name, Kind: snn.StageKind(ws.Kind), Geom: ws.Geom, OutC: ws.OutC,
			W: tensor.FromSlice(ws.W, ws.WShape...), B: tensor.FromSlice(ws.B, len(ws.B)),
			InLen: ws.InLen, OutLen: ws.OutLen, Output: ws.Output,
		}
		if ws.HasPool {
			st.PrePool = &snn.PoolSpec{C: ws.PoolC, InH: ws.PoolH, InW: ws.PoolW, K: ws.PoolK}
		}
		net.Stages = append(net.Stages, st)
	}
	m := &Model{Net: net, T: wm.T}
	for i := range wm.Tau {
		k, err := kernel.New(wm.Tau[i], wm.Td[i], wm.T)
		if err != nil {
			return nil, fmt.Errorf("core: kernel %d in model file: %w", i, err)
		}
		m.K = append(m.K, k)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded model invalid: %w", err)
	}
	return m, nil
}
