package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/tensor"
)

// TestEarlyExitArgmaxMatchesFixture pins the tentpole contract over the
// whole trained fixture set: the early-exit event engine's argmax is
// identical to the clocked engine's on every sample, its latency never
// exceeds the clocked latency, and — so the feature demonstrably does
// something — at least some samples actually exit early with steps and
// events saved.
func TestEarlyExitArgmaxMatchesFixture(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	n := fixture.x.Shape[0]
	for _, base := range []RunConfig{{}, {EarlyFire: true}} {
		exits, stepsSaved, eventsSaved := 0, 0, 0
		for i := 0; i < n; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			clocked := m.InferOne(in, base, InferOpts{})
			cfg := base
			cfg.EarlyExit = true
			ev := m.InferOne(in, cfg, InferOpts{Scratch: sc, Engine: EngineEvent})
			if ev.Pred != clocked.Pred {
				t.Fatalf("ef=%v sample %d: early exit changed prediction: %d vs clocked %d",
					base.EarlyFire, i, ev.Pred, clocked.Pred)
			}
			if ev.Latency > clocked.Latency {
				t.Fatalf("ef=%v sample %d: early-exit latency %d exceeds clocked %d",
					base.EarlyFire, i, ev.Latency, clocked.Latency)
			}
			if !ev.EarlyExit && (ev.StepsSaved != 0 || ev.EventsSaved != 0) {
				t.Fatalf("ef=%v sample %d: savings %d/%d reported without an exit",
					base.EarlyFire, i, ev.StepsSaved, ev.EventsSaved)
			}
			if ev.EarlyExit {
				exits++
				stepsSaved += ev.StepsSaved
				eventsSaved += ev.EventsSaved
			}
		}
		if exits == 0 {
			t.Fatalf("ef=%v: no sample exited early across %d samples", base.EarlyFire, n)
		}
		if stepsSaved == 0 {
			t.Fatalf("ef=%v: %d exits saved zero steps", base.EarlyFire, exits)
		}
		t.Logf("ef=%v: %d/%d early exits, %d steps and %d events saved",
			base.EarlyFire, exits, n, stepsSaved, eventsSaved)
	}
}

// Property: the argmax contract holds across random kernels, horizons,
// inputs, and EF start times on the handcrafted inhibitory network —
// the same surface the engine-equivalence property covers, with early
// exit armed.
func TestEarlyExitProperty(t *testing.T) {
	net := tinyNet()
	net.Stages[0].W.Data[5] = -0.7
	net.Stages[0].W.Data[9] = -0.4
	// inhibition on the output stage too, so remLoss is exercised
	net.Stages[1].W.Data[1] = -0.5
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, err := NewModel(net, 10+r.Intn(50), r.Range(1, 12), r.Range(0, 2))
		if err != nil {
			return true
		}
		in := []float64{r.Float64(), r.Float64(), r.Float64()}
		cfg := RunConfig{}
		if r.Intn(2) == 0 {
			cfg = RunConfig{EarlyFire: true, EFStart: 1 + r.Intn(m.T)}
		}
		return m.VerifyEarlyExit(in, cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyExitUnderFaults pins the fault half of the correctness bar:
// with per-sample drop/jitter/stuck streams — and separately with
// threshold noise, which routes the event engine onto its clocked
// fallback — the early-exit prediction still matches the clocked
// engine's under the same stream.
func TestEarlyExitUnderFaults(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	injectors := map[string]fault.Config{
		"spike-faults":    {Seed: 11, Drop: 0.2, Jitter: 2, StuckSilent: 0.05},
		"threshold-noise": {Seed: 5, ThresholdNoise: 0.1},
		"everything":      {Seed: 17, Drop: 0.15, Jitter: 1, StuckSilent: 0.03, ThresholdNoise: 0.05},
	}
	for name, fc := range injectors {
		inj, err := fault.New(fc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			cfg := RunConfig{EarlyFire: true, Faults: inj.Sample(i)}
			if err := m.VerifyEarlyExit(in, cfg); err != nil {
				t.Fatalf("%s sample %d: %v", name, i, err)
			}
		}
	}
}

// TestEarlyExitZeroAllocs gates the serving claim: the early-exit event
// path on a warm scratch allocates nothing per call.
func TestEarlyExitZeroAllocs(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	in := fixture.x.Data[:256]
	for _, cfg := range []RunConfig{{EarlyExit: true}, {EarlyFire: true, EarlyExit: true}} {
		cfg := cfg
		opts := InferOpts{Scratch: sc, Engine: EngineEvent}
		m.InferOne(in, cfg, opts) // warm plan + arenas + bound tables
		if n := testing.AllocsPerRun(20, func() { m.InferOne(in, cfg, opts) }); n != 0 {
			t.Errorf("event early exit (earlyFire=%v) allocates %.1f/op, want 0", cfg.EarlyFire, n)
		}
	}
}

// TestInferManyEventMatchesInferOne pins the event engine's batch loop:
// one scratch across the whole batch, every Result still valid at the
// end (the arena is rewound once per call, not per sample), each equal
// to its per-sample InferOne — including per-sample fault streams.
func TestInferManyEventMatchesInferOne(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 3, Drop: 0.1, Jitter: 1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	n := 12
	inputs := make([][]float64, n)
	streams := make([]*fault.Stream, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		if i%2 == 0 {
			streams[i] = inj.Sample(i)
		}
	}
	cfg := RunConfig{EarlyFire: true, EarlyExit: true}
	got := m.InferMany(inputs, cfg, InferOpts{Engine: EngineEvent, Faults: streams})
	for i := range inputs {
		c := cfg
		c.Faults = streams[i]
		want := m.InferOne(inputs[i], c, InferOpts{Engine: EngineEvent})
		if got[i].Pred != want.Pred || got[i].Latency != want.Latency ||
			got[i].TotalSpikes != want.TotalSpikes || got[i].EarlyExit != want.EarlyExit ||
			got[i].StepsSaved != want.StepsSaved || got[i].EventsSaved != want.EventsSaved {
			t.Fatalf("sample %d: batch %+v != single %+v", i, got[i], want)
		}
	}
}

// The options API rejects fault streams passed through the wrong field:
// the single-sample entry takes cfg.Faults, the batch entry opts.Faults.
func TestInferOptsFaultFieldValidation(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	in := fixture.x.Data[:256]
	mustPanic(t, "InferOne with opts.Faults", func() {
		m.InferOne(in, RunConfig{}, InferOpts{Faults: []*fault.Stream{nil}})
	})
	mustPanic(t, "InferMany with cfg.Faults", func() {
		inj, _ := fault.New(fault.Config{Seed: 1, Drop: 0.1})
		m.InferMany([][]float64{in}, RunConfig{Faults: inj.Sample(0)}, InferOpts{})
	})
	mustPanic(t, "InferMany with mismatched stream count", func() {
		m.InferMany([][]float64{in}, RunConfig{}, InferOpts{Faults: make([]*fault.Stream, 2)})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

// BenchmarkInferEventEarlyExit is the PR's headline number: batch-1
// latency of the early-exit event path against the plain event engine
// and the clocked engine in the default serving configuration, all on
// warm scratches. Argmax agreement over the full fixture set is
// asserted before timing (in both baseline and early-fire modes), so a
// regression cannot buy speed with wrong answers. The -ef sub-benches
// cover the early-fire pipeline, whose denser fire-phase arrival
// interleaving is the event engine's worst case.
func BenchmarkInferEventEarlyExit(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	sc := NewInferScratch(m)
	n := fixture.x.Shape[0]
	saved := 0
	for _, base := range []RunConfig{{}, {EarlyFire: true}} {
		exit := base
		exit.EarlyExit = true
		for i := 0; i < n; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			clocked := m.InferOne(in, base, InferOpts{Scratch: sc})
			ev := m.InferOne(in, exit, InferOpts{Scratch: sc, Engine: EngineEvent})
			if ev.Pred != clocked.Pred {
				b.Fatalf("ef=%v sample %d: argmax disagreement %d vs %d",
					base.EarlyFire, i, ev.Pred, clocked.Pred)
			}
			if !base.EarlyFire {
				saved += ev.EventsSaved
			}
		}
	}
	in := fixture.x.Data[:256]
	run := func(name string, cfg RunConfig, opts InferOpts) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.InferOne(in, cfg, opts)
			}
			if cfg.EarlyExit && !cfg.EarlyFire {
				b.ReportMetric(float64(saved)/float64(n), "events_saved/sample")
			}
		})
	}
	ev := InferOpts{Scratch: sc, Engine: EngineEvent}
	ck := InferOpts{Scratch: sc}
	run("event-earlyexit", RunConfig{EarlyExit: true}, ev)
	run("event", RunConfig{}, ev)
	run("clocked", RunConfig{}, ck)
	run("event-earlyexit-ef", RunConfig{EarlyFire: true, EarlyExit: true}, ev)
	run("clocked-ef", RunConfig{EarlyFire: true}, ck)
}
