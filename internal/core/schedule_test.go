package core

import (
	"strings"
	"testing"
)

func TestScheduleBaselineFig3a(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	s := m.BuildSchedule(RunConfig{})
	if s.Advance != 20 || s.Overlap() != 0 {
		t.Fatalf("baseline schedule: advance=%d overlap=%d", s.Advance, s.Overlap())
	}
	// layer 1 integrates [0,20), fires [20,40); layer 2 integrates [20,40)
	if s.Integration[0] != (PhaseWindow{Layer: 1, Start: 0, End: 20}) {
		t.Fatalf("L1 integration = %+v", s.Integration[0])
	}
	if s.Fire[0] != (PhaseWindow{Layer: 1, Start: 20, End: 40}) {
		t.Fatalf("L1 fire = %+v", s.Fire[0])
	}
	if s.Integration[1].Start != 20 {
		t.Fatalf("L2 integration start = %d", s.Integration[1].Start)
	}
	// fire phase of layer k aligns with integration of layer k+1 (Fig. 3-a)
	if s.Fire[0].Start != s.Integration[1].Start {
		t.Fatal("fire/integration pipeline misaligned")
	}
	if s.Latency != 40 {
		t.Fatalf("latency = %d", s.Latency)
	}
}

func TestScheduleEarlyFiringFig3b(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	s := m.BuildSchedule(RunConfig{EarlyFire: true})
	if s.Advance != 10 {
		t.Fatalf("EF advance = %d, want T/2", s.Advance)
	}
	// EF overlap: the fire phase intrudes T−advance steps into the
	// layer's own integration (non-guaranteed integration)
	if s.Overlap() != 10 {
		t.Fatalf("overlap = %d, want 10", s.Overlap())
	}
	if s.Latency != 30 {
		t.Fatalf("EF latency = %d, want 30", s.Latency)
	}
	// fire window must start inside the integration window
	if s.Fire[0].Start >= s.Integration[0].End {
		t.Fatal("EF fire phase does not overlap integration")
	}
}

// The schedule's latency must match the simulator's reported latency for
// any configuration — the figure and the engine share one timing model.
func TestScheduleMatchesInferLatency(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	in := fixture.x.Data[:256]
	for _, cfg := range []RunConfig{
		{}, {EarlyFire: true}, {EarlyFire: true, EFStart: 13}, {EarlyFire: true, EFStart: m.T},
	} {
		s := m.BuildSchedule(cfg)
		r := m.Infer(in, cfg)
		if s.Latency != r.Latency {
			t.Fatalf("cfg %+v: schedule latency %d != inference %d", cfg, s.Latency, r.Latency)
		}
	}
}

func TestScheduleRender(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	base := m.BuildSchedule(RunConfig{}).Render(1)
	if !strings.Contains(base, "L1") || !strings.Contains(base, "i") || !strings.Contains(base, "f") {
		t.Fatalf("render missing elements:\n%s", base)
	}
	// baseline has no overlapped cells; early firing must show some
	if strings.Contains(base, "x") {
		t.Fatalf("baseline render shows overlap:\n%s", base)
	}
	ef := m.BuildSchedule(RunConfig{EarlyFire: true}).Render(1)
	if !strings.Contains(ef, "x") {
		t.Fatalf("EF render shows no overlap:\n%s", ef)
	}
}
