package core

import (
	"fmt"

	"repro/internal/fault"
)

// EngineKind selects the execution engine behind InferOne/InferMany.
type EngineKind int

const (
	// EngineClocked sweeps every neuron against the threshold at every
	// step — the reference engine, and the fastest at batch ≥ 2 where
	// the scatter-row amortization of the batched pipeline applies.
	EngineClocked EngineKind = iota
	// EngineEvent processes analytically predicted fire events instead
	// of sweeping steps. Results are bit-identical to EngineClocked
	// (pinned by property tests); with RunConfig.EarlyExit it
	// additionally stops the output window early once the winner is
	// provably undominated, which only guarantees the argmax. It is the
	// latency-optimal single-sample path.
	EngineEvent
	// EngineQuant runs the clocked pipeline on int8 structure-of-arrays
	// scatter plans with int32 accumulators (internal/core/quant.go):
	// weights are quantized to each stage's 8-bit dynamic fixed-point
	// format, zero-quantized synapses are dropped from the plan, and
	// potentials stay in integer units until the output stage's single
	// rescale. Predictions agree with EngineClocked up to quantization
	// (the agreement rate is pinned by TestQuantEngineFixtureParity);
	// a model whose integer headroom cannot fit int32 accumulators
	// falls back to EngineClocked. RunConfig.EarlyExit is ignored.
	EngineQuant
)

// InferOpts carries the execution options shared by every inference
// entry point: the scratch arena, per-sample fault streams, the worker
// pool, and the engine choice. The zero value means "fresh scratch, no
// faults, sequential, clocked" and reproduces Infer/InferBatch exactly.
type InferOpts struct {
	// Scratch is the reusable working set; results alias it (see
	// InferScratch). Nil allocates a fresh single-use scratch.
	Scratch *InferScratch
	// Faults holds one per-sample fault stream per input for InferMany
	// (nil entries inject nothing); nil injects nothing. InferOne takes
	// its single stream in RunConfig.Faults instead and panics when
	// this field is set, mirroring the historical InferBatch contract.
	Faults []*fault.Stream
	// Pool runs InferMany's batch data-parallel (one chunk per claimed
	// worker, bit-identical at any worker count). Nil or single-worker
	// pools run sequentially. Ignored by EngineEvent, whose per-sample
	// loop exists for verification rather than throughput, and by
	// InferOne.
	Pool *Pool
	// Engine selects the execution engine (default EngineClocked).
	Engine EngineKind
}

// InferOne runs one input (flattened [C,H,W], values in [0,1]) through
// the T2FSNN pipeline on the selected engine. It is the canonical
// single-sample entry point; Infer, InferWith, InferEvent, and
// InferEventWith are thin wrappers over it.
//
// The sample's fault stream travels in cfg.Faults; opts.Faults (the
// per-sample slice of the batch path) must be nil.
func (m *Model) InferOne(input []float64, cfg RunConfig, opts InferOpts) Result {
	if opts.Faults != nil {
		panic("core: InferOne takes the sample's fault stream in cfg.Faults, not opts.Faults")
	}
	switch opts.Engine {
	case EngineEvent:
		return m.inferEvent(opts.Scratch, input, cfg)
	case EngineQuant:
		return m.inferQuant(opts.Scratch, input, cfg)
	}
	return m.inferClocked(opts.Scratch, input, cfg)
}

// InferMany runs a batch of inputs and returns one Result per input,
// each bit-identical to InferOne(inputs[i], cfg with Faults=faults[i])
// on the same engine. It is the canonical batch entry point; InferBatch,
// InferBatchWith, and InferBatchParallel are thin wrappers over it.
//
// Per-sample fault streams travel in opts.Faults (nil, or one entry per
// input); cfg.Faults must be nil. With EngineClocked a multi-worker
// opts.Pool shards the batch across workers; EngineEvent and
// EngineQuant run the samples sequentially on one scratch (per-sample
// loops — their value is single-sample latency, not pooled batch
// throughput), ignoring opts.Pool.
// Results alias the scratch (or pool) arenas per the usual contract.
func (m *Model) InferMany(inputs [][]float64, cfg RunConfig, opts InferOpts) []Result {
	if cfg.Faults != nil {
		panic("core: InferMany takes per-sample fault streams in opts.Faults, not cfg.Faults")
	}
	if opts.Faults != nil && len(opts.Faults) != len(inputs) {
		panic(fmt.Sprintf("core: %d fault streams for %d inputs", len(opts.Faults), len(inputs)))
	}
	if opts.Engine == EngineEvent {
		return m.inferManyEvent(opts.Scratch, inputs, cfg, opts.Faults)
	}
	if opts.Engine == EngineQuant {
		return m.inferManyQuant(opts.Scratch, inputs, cfg, opts.Faults)
	}
	if opts.Pool != nil {
		return m.inferParallel(opts.Pool, inputs, cfg, opts.Faults)
	}
	return m.inferBatch(opts.Scratch, inputs, cfg, opts.Faults)
}

// inferManyEvent is the event engine's batch loop: one scratch, one
// arena rewind, then per-sample event runs whose Results all stay valid
// until the next top-level call on the scratch.
func (m *Model) inferManyEvent(sc *InferScratch, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	res := sc.takeResults(len(inputs))
	for i, input := range inputs {
		c := cfg
		if faults != nil {
			c.Faults = faults[i]
		}
		res[i] = m.inferEventBody(sc, input, c)
	}
	return res
}
