package core

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/snn"
)

// InferEvent runs the same pipeline as Infer with an event-driven
// engine: instead of sweeping every neuron against the threshold at
// every time step (O(T·N) per layer), it keeps a bucket queue of
// candidate fire times that is re-validated only for neurons an arrival
// actually touched. Semantics are identical to
// the clocked engine — including arrival-before-threshold ordering
// within a step and non-guaranteed integration under early firing — and
// the equivalence is enforced by property tests and VerifyEnginesEvent.
//
// The event engine wins when spikes are sparse relative to T·N (the
// regime TTFS coding creates by construction); the clocked engine wins
// on dense traffic. BenchmarkEngineEvent quantifies the trade.
//
// Deprecated: use InferOne with InferOpts{Engine: EngineEvent}.
func (m *Model) InferEvent(input []float64, cfg RunConfig) Result {
	return m.InferOne(input, cfg, InferOpts{Engine: EngineEvent})
}

// InferEventWith is InferEvent against an explicit scratch arena: the
// candidate queue, version/touched bookkeeping, potentials, and the
// returned Result's Spikes/Potentials all come from sc, so the
// steady-state call allocates nothing (pinned by
// TestInferEventWithZeroAllocs). A nil sc falls back to a fresh
// single-use scratch; results are bit-identical either way (commits
// depend only on candidate steps and versions, never on queue order
// among distinct neurons). The usual scratch aliasing contract applies.
//
// Deprecated: use InferOne with InferOpts{Scratch: sc, Engine: EngineEvent}.
func (m *Model) InferEventWith(sc *InferScratch, input []float64, cfg RunConfig) Result {
	return m.InferOne(input, cfg, InferOpts{Scratch: sc, Engine: EngineEvent})
}

// inferEvent is the event engine's entry: scratch setup, then the
// event-driven pipeline.
func (m *Model) inferEvent(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	return m.inferEventBody(sc, input, cfg)
}

// inferEventBody runs the event-driven pipeline on a prepared scratch
// without rewinding its arenas (see inferClockedBody).
func (m *Model) inferEventBody(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if len(input) != m.Net.InLen {
		panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
	}
	if cfg.Faults.HasThresholdNoise() {
		// Per-step threshold noise invalidates the analytic candidate
		// inverse (a candidate computed against θ(f) says nothing about
		// a perturbed θ'(f)), so the whole sample runs on the clocked
		// sweep instead — bit-identical to what the clocked engine
		// produces under the same stream, with no early exit.
		return m.inferClockedBody(sc, input, cfg)
	}
	sc.ensureEvent()
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  sc.ints.take(nStages),
		Latency: (nStages-1)*adv + m.T,
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes = make([][]int, nStages)
	}
	if cfg.CollectEvents {
		res.Events = make([][]SpikeEvent, nStages)
	}

	times := sc.timesA[:m.Net.InLen]
	next := sc.timesB
	fired := 0
	for i, u := range input {
		if t, ok := m.K[0].Encode(u); ok {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	if cfg.Faults != nil {
		fired = cfg.Faults.ApplyTTFS(0, times, m.T)
	}
	res.Spikes[0] = fired
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[0] = collectGlobal(times, 0)
	}
	if cfg.CollectEvents {
		res.Events[0] = collectEvents(times, 0)
	}

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		inK := m.K[si]
		if st.Output {
			m.runOutputStageEvent(sc, st, si, inK, times, si*adv, adv, cfg, &res)
			return res
		}
		outK := m.K[si+1]
		out := next[:st.OutLen]
		next = times[:cap(times)]
		m.runHiddenStageEvent(sc, st, inK, outK, times, out, adv, &res, si, cfg)
		times = out
	}
	return res
}

// candidateTab returns the earliest fire step ≥ from at which potential
// u crosses the falling threshold table thr (strictly decreasing over
// the window), or t (= never) when it cannot. The compare is the clocked
// sweep's u ≥ θ(f) verbatim, so the two engines cannot disagree on a
// fire step even at the rounding boundary of the analytic inverse; the
// two range checks resolve the common never-fires / fires-now cases
// without entering the O(log T) search.
func candidateTab(thr []float64, u float64, from, t int) int {
	if from >= t || u < thr[t-1] {
		return t
	}
	if u >= thr[from] {
		return from
	}
	// invariant: thr[lo] > u ≥ thr[hi]
	lo, hi := from, t-1
	for hi-lo > 1 {
		if mid := (lo + hi) / 2; u >= thr[mid] {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// outputBounds returns the output stage's per-RowKey single-synapse
// weight bounds: one arrival on a row with per-spike scale s moves any
// single output potential up by at most s·gain[key] and down by at most
// s·loss[key] (both stored non-negative). Cached model-lifetime; forces
// every output row to build, which Warm absorbs in serving.
func (m *Model) outputBounds(si int) (gain, loss []float64) {
	m.boundsOnce.Do(func() {
		st := &m.Net.Stages[si]
		plan := m.stagePlan(si)
		n := st.NumRowKeys()
		m.outGain = make([]float64, n)
		m.outLoss = make([]float64, n)
		for key := 0; key < n; key++ {
			var g, l float64
			for _, c := range plan.Row(key) {
				if c.W > g {
					g = c.W
				}
				if -c.W > l {
					l = -c.W
				}
			}
			m.outGain[key] = g
			m.outLoss[key] = l
		}
	})
	return m.outGain, m.outLoss
}

// runHiddenStageEvent is the event-driven counterpart of runHiddenStage,
// writing spike-time offsets into outTimes (len st.OutLen). Candidates
// live in a bucket queue indexed by fire step — pushes are appends and
// the commit sweep is a cursor walk, with none of a binary heap's
// sifting — seeded by a single potential scan after guaranteed
// integration. Entries are verified against the live potential when
// their bucket is reached, so a potential that *fell* after scheduling
// needs no eager fix-up; only a touch that moves the crossing earlier
// than the scheduled step pays for a (range-narrowed) search. The
// correctness invariant is that an unfired neuron whose potential
// crosses the threshold always has a live entry at or before its true
// crossing step; a too-early entry is rescheduled exactly at pop time.
func (m *Model) runHiddenStageEvent(sc *InferScratch, st *snn.Stage, inK, outK kernel.Kernel, inTimes, outTimes []int, adv int, res *Result, si int, cfg RunConfig) {
	pot := sc.pot[:st.OutLen]
	for i := range pot {
		pot[i] = 0
	}
	st.AddBias(pot)
	plan := m.stagePlan(si)
	buckets := sc.bucketizeInto(inTimes, m.T)
	dec := sc.decode(inK, m.T)
	thr := sc.thresholds(outK, m.T)

	stamp := sc.evStamp[:st.OutLen]
	// Reserve this stage's epoch range: base+f stamps the arrivals at
	// fire-phase step f. Stamps from earlier stages or calls are below
	// base and compare unequal, so no O(N) clearing per stage.
	base := sc.evEpoch + 1
	sc.evEpoch = base + uint64(m.T)

	// guaranteed integration: the same scatter the clocked engine runs,
	// with no per-synapse bookkeeping
	for off := 0; off < adv && off < m.T; off++ {
		for _, idx := range buckets[off] {
			scatterPlanned(plan, st, idx, dec[off], pot)
		}
	}

	for i := range outTimes {
		outTimes[i] = -1
	}
	firedCount := 0

	// Candidate bucket queue: q[c] holds the neurons scheduled for a
	// threshold check at step c. A stage always drains its queue (the
	// final fireUpTo clears every bucket through m.T), so the buckets
	// start empty here. nf[j] tracks j's earliest live entry (m.T =
	// none); it both dedups pushes and narrows candidate searches.
	q := sc.evQ[:m.T]
	nf := sc.evNext[:st.OutLen]
	nT := int32(m.T)

	// Seed from one scan of the potentials: a neuron can fire before
	// any further arrival touches it only if its potential is already
	// positive (an untouched neuron's potential is exactly its bias),
	// and commits depend only on scheduled steps and the live potential
	// — never on push order — so the scan is equivalent to the clocked
	// sweep.
	for j, u := range pot {
		nf[j] = nT
		if u > 0 {
			if c := candidateTab(thr, u, 0, m.T); c < m.T {
				q[c] = append(q[c], int32(j))
				nf[j] = int32(c)
			}
		}
	}

	cur := 0
	fireUpTo := func(limit int) {
		for ; cur < limit; cur++ {
			b := q[cur]
			for _, j32 := range b {
				j := int(j32)
				if outTimes[j] >= 0 {
					continue // already fired
				}
				// The same compare the clocked sweep makes at step cur.
				// Arrivals at steps ≤ cur have all been applied (the
				// stage loop integrates step f's arrivals only after
				// fireUpTo(f)), so pot is exactly the clocked value.
				if pot[j] >= thr[cur] {
					outTimes[j] = cur
					firedCount++
					continue
				}
				// Scheduled too early (the potential fell since the
				// push): reschedule at the exact crossing for the
				// current potential. Steps in (cur, next touch) see
				// this same potential, so the new entry is exact until
				// a touch supersedes it.
				if c := candidateTab(thr, pot[j], cur+1, m.T); c < m.T {
					q[c] = append(q[c], j32)
					nf[j] = int32(c)
				} else {
					nf[j] = nT
				}
			}
			q[cur] = b[:0] // keep grown capacity
		}
	}

	// arrivals during the fire phase land at local steps 0..T-1-adv
	lastArrival := m.T - adv
	for f := 0; f < lastArrival; f++ {
		inOff := adv + f
		bs := buckets[inOff]
		if len(bs) == 0 {
			continue
		}
		// all fires strictly before this step are settled
		fireUpTo(f)
		// Arrivals precede the threshold check at step f: integrate
		// them, stamping each touched neuron once (conv rows overlap
		// heavily, so deduping inside the scatter beats revisiting the
		// rows), then restore the scheduling invariant per touched,
		// unfired neuron.
		epoch := base + uint64(f)
		touched := sc.evTouched[:0]
		for _, idx := range bs {
			key, div := st.RowKey(idx)
			s := dec[inOff] / div
			for _, c := range plan.Row(key) {
				pot[c.J] += s * c.W
				if stamp[c.J] != epoch {
					stamp[c.J] = epoch
					touched = append(touched, c.J)
				}
			}
		}
		thf := thr[f]
		f32 := int32(f)
		for _, j32 := range touched {
			j := int(j32)
			if outTimes[j] >= 0 {
				continue
			}
			u := pot[j]
			if u >= thf {
				// crosses at this very step
				if nf[j] != f32 {
					q[f] = append(q[f], j32)
					nf[j] = f32
				}
				continue
			}
			hi := int(nf[j])
			if hi >= m.T {
				hi = m.T - 1 // no live entry: the window end bounds the search
			}
			if u < thr[hi] {
				// The crossing (if any) is beyond hi. With a live entry
				// at hi the invariant already holds (pop-time
				// verification reschedules it exactly); without one the
				// potential cannot cross even the window's lowest
				// threshold, so no entry is needed.
				continue
			}
			// The crossing moved to (f, hi]: binary search the narrowed
			// range (thr[f] > u ≥ thr[hi]), then schedule unless that
			// exact entry is already live.
			lo := f
			for hi-lo > 1 {
				if mid := (lo + hi) / 2; u >= thr[mid] {
					hi = mid
				} else {
					lo = mid
				}
			}
			if nf[j] != int32(hi) {
				q[hi] = append(q[hi], j32)
				nf[j] = int32(hi)
			}
		}
		sc.evTouched = touched[:0] // keep grown capacity
	}
	fireUpTo(m.T)

	if cfg.Faults != nil {
		// The stage's spikes traverse a faulty boundary on the way to
		// the next layer, exactly as in the clocked engine.
		firedCount = cfg.Faults.ApplyTTFS(si+1, outTimes, m.T)
	}
	res.Spikes[si+1] = firedCount
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[si+1] = collectGlobal(outTimes, (si+1)*adv)
	}
	if cfg.CollectEvents {
		res.Events[si+1] = collectEvents(outTimes, (si+1)*adv)
	}
}

// eeRelSlack/eeAbsSlack pad the undominated-winner comparison against
// floating-point drift: the suffix bounds are exact in real arithmetic
// but the potentials accumulate rounding, so the margin must clear the
// bound by a sliver proportional to the operand magnitudes before the
// exit is taken. Making the check conservative can only delay an exit,
// never corrupt a prediction.
const (
	eeRelSlack = 1e-9
	eeAbsSlack = 1e-12
)

// runOutputStageEvent integrates the output window with the early-exit
// undominated-winner rule: the output stage never fires, so "the winner
// has fired" never triggers; instead the integration stops at the first
// arrival offset where no sequence of remaining arrivals can change the
// argmax. The proof obligation per offset is
//
//	final[best]  ≥ pot[best]  − remLoss   (potentials can only fall so far)
//	final[j≠best] ≤ pot[j] + remGain ≤ second + remGain
//
// with remGain/remLoss the suffix sums of the per-arrival row bounds
// (outputBounds) — so pot[best] − second > remGain + remLoss (padded
// for FP drift) proves best stays the strict argmax, preserving the
// lowest-index tie-break. Without EarlyExit (or with CollectTimeline,
// which needs the full window) it defers to the clocked runOutputStage.
func (m *Model) runOutputStageEvent(sc *InferScratch, st *snn.Stage, si int, inK kernel.Kernel, inTimes []int, windowStart, adv int, cfg RunConfig, res *Result) {
	if !cfg.EarlyExit || cfg.CollectTimeline {
		m.runOutputStage(sc, st, si, inK, inTimes, windowStart, adv, cfg, res)
		return
	}
	pot := sc.floats.take(st.OutLen)
	st.AddBias(pot)
	plan := m.stagePlan(si)
	buckets := sc.bucketizeInto(inTimes, m.T)
	dec := sc.decode(inK, m.T)
	gain, loss := m.outputBounds(si)

	// Suffix bounds over the window, built tail-first by pure
	// accumulation (no subtraction drift can understate a bound):
	// remGain[off] is the most any single potential can still rise from
	// arrivals at offsets ≥ off, remLoss[off] the most it can fall.
	remGain := sc.evGain[:m.T+1]
	remLoss := sc.evLoss[:m.T+1]
	remGain[m.T], remLoss[m.T] = 0, 0
	events := 0
	for off := m.T - 1; off >= 0; off-- {
		var g, l float64
		for _, idx := range buckets[off] {
			key, div := st.RowKey(idx)
			g += gain[key] / div
			l += loss[key] / div
		}
		remGain[off] = remGain[off+1] + dec[off]*g
		remLoss[off] = remLoss[off+1] + dec[off]*l
		events += len(buckets[off])
	}

	finish := func() {
		res.Potentials = pot
		res.TotalSpikes = 0
		for _, s := range res.Spikes {
			res.TotalSpikes += s
		}
	}
	// exitAt applies the undominated check after the arrivals at offset
	// off (off = -1: before any) and fills the result when it proves
	// out. res.Latency becomes the decision step — the step at which a
	// hardware readout could stop.
	exitAt := func(off int) bool {
		best, second, bi := bestTwo(pot)
		bound := remGain[off+1] + remLoss[off+1]
		if best-second <= bound+eeRelSlack*(math.Abs(best)+math.Abs(second)+bound)+eeAbsSlack {
			return false
		}
		res.Pred = bi
		res.EarlyExit = true
		res.StepsSaved = m.T - 1 - off
		for o := off + 1; o < m.T; o++ {
			res.EventsSaved += len(buckets[o])
		}
		if lat := windowStart + off + 1; lat < res.Latency {
			res.Latency = lat
		}
		finish()
		return true
	}

	// With no arrivals at all the bias alone decides and there is
	// nothing to save; otherwise the bias may already dominate every
	// possible arrival sequence.
	if events > 0 && exitAt(-1) {
		return
	}
	for off := 0; off < m.T; off++ {
		if len(buckets[off]) == 0 {
			continue
		}
		for _, idx := range buckets[off] {
			scatterPlanned(plan, st, idx, dec[off], pot)
		}
		if exitAt(off) {
			return
		}
	}
	res.Pred = argmax(pot)
	finish()
}

// bestTwo returns the largest and second-largest entries of v and the
// index of the largest, replicating argmax's lowest-index tie-break. A
// single-entry v has second = -Inf (any margin dominates).
func bestTwo(v []float64) (best, second float64, bi int) {
	best, bi = v[0], 0
	second = math.Inf(-1)
	for i := 1; i < len(v); i++ {
		if x := v[i]; x > best {
			second, best, bi = best, x, i
		} else if x > second {
			second = x
		}
	}
	return best, second, bi
}

// VerifyEnginesEvent checks the clocked and event-driven engines agree
// on one input under the given pipeline configuration.
func (m *Model) VerifyEnginesEvent(input []float64, cfg RunConfig) error {
	cfg.CollectSpikeTimes = true
	// Full-equivalence check: early exit intentionally leaves the
	// output potentials partial, so it is disabled here. VerifyEarlyExit
	// covers the argmax-only early-exit contract.
	cfg.EarlyExit = false
	clocked := m.InferOne(input, cfg, InferOpts{})
	event := m.InferOne(input, cfg, InferOpts{Engine: EngineEvent})
	if clocked.Pred != event.Pred {
		return fmt.Errorf("core: engines disagree on prediction: clocked %d, event %d", clocked.Pred, event.Pred)
	}
	if clocked.TotalSpikes != event.TotalSpikes {
		return fmt.Errorf("core: engines disagree on spikes: clocked %d, event %d", clocked.TotalSpikes, event.TotalSpikes)
	}
	for b := range clocked.SpikeTimes {
		a, e := clocked.SpikeTimes[b], event.SpikeTimes[b]
		if len(a) != len(e) {
			return fmt.Errorf("core: boundary %d spike counts differ: %d vs %d", b, len(a), len(e))
		}
		for i := range a {
			if a[i] != e[i] {
				return fmt.Errorf("core: boundary %d spike %d differs: %d vs %d", b, i, a[i], e[i])
			}
		}
	}
	for j := range clocked.Potentials {
		d := clocked.Potentials[j] - event.Potentials[j]
		if d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("core: output potential %d differs: %v vs %v", j, clocked.Potentials[j], event.Potentials[j])
		}
	}
	return nil
}

// VerifyEarlyExit checks the early-exit event engine's argmax contract
// against the clocked engine on one input: identical predictions, with
// the event run free to stop the output window early.
func (m *Model) VerifyEarlyExit(input []float64, cfg RunConfig) error {
	clocked := m.InferOne(input, cfg, InferOpts{})
	cfg.EarlyExit = true
	event := m.InferOne(input, cfg, InferOpts{Engine: EngineEvent})
	if clocked.Pred != event.Pred {
		return fmt.Errorf("core: early exit changed the prediction: clocked %d, event %d (exit=%v, steps saved %d)",
			clocked.Pred, event.Pred, event.EarlyExit, event.StepsSaved)
	}
	if event.Latency > clocked.Latency {
		return fmt.Errorf("core: early-exit latency %d exceeds clocked %d", event.Latency, clocked.Latency)
	}
	return nil
}
