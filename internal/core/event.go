package core

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/snn"
)

// InferEvent runs the same pipeline as Infer with an event-driven
// engine: instead of sweeping every neuron against the threshold at
// every time step (O(T·N) per layer), it keeps a priority queue of
// analytically computed candidate fire times that is re-validated only
// for neurons an arrival actually touched. Semantics are identical to
// the clocked engine — including arrival-before-threshold ordering
// within a step and non-guaranteed integration under early firing — and
// the equivalence is enforced by property tests and VerifyEnginesEvent.
//
// The event engine wins when spikes are sparse relative to T·N (the
// regime TTFS coding creates by construction); the clocked engine wins
// on dense traffic. BenchmarkEngineEvent quantifies the trade.
func (m *Model) InferEvent(input []float64, cfg RunConfig) Result {
	return m.InferEventWith(nil, input, cfg)
}

// InferEventWith is InferEvent against an explicit scratch arena: the
// candidate heap, version/touched bookkeeping, potentials, and the
// returned Result's Spikes/Potentials all come from sc, so the
// steady-state call allocates nothing (pinned by
// TestInferEventWithZeroAllocs). A nil sc falls back to a fresh
// single-use scratch; results are bit-identical either way (the heap's
// internal layout varies with buffer history, but commits depend only
// on candidate steps and versions, never on heap order among distinct
// neurons). The usual scratch aliasing contract applies.
func (m *Model) InferEventWith(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if len(input) != m.Net.InLen {
		panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
	}
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  sc.ints.take(nStages),
		Latency: (nStages-1)*adv + m.T,
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes = make([][]int, nStages)
	}

	times := sc.timesA[:m.Net.InLen]
	next := sc.timesB
	fired := 0
	for i, u := range input {
		if t, ok := m.K[0].Encode(u); ok {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	res.Spikes[0] = fired
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[0] = collectGlobal(times, 0)
	}

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		inK := m.K[si]
		if st.Output {
			m.runOutputStage(sc, st, si, inK, times, si*adv, adv, cfg, &res)
			return res
		}
		outK := m.K[si+1]
		out := next[:st.OutLen]
		next = times[:cap(times)]
		m.runHiddenStageEvent(sc, st, inK, outK, times, out, adv, &res, si, cfg)
		times = out
	}
	return res
}

// fireEvent is a heap entry: neuron j predicted to fire at step.
type fireEvent struct {
	step    int
	neuron  int
	version uint32
}

// evUp/evDown are the sift primitives of a slice min-heap ordered by
// step. container/heap would box every fireEvent into an interface on
// Push/Pop; the manual heap keeps the event path allocation-free.
func evUp(h []fireEvent, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].step <= h[i].step {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func evDown(h []fireEvent, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h[r].step < h[l].step {
			min = r
		}
		if h[i].step <= h[min].step {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// candidate returns the earliest fire step ≥ from at which potential u
// crosses the falling threshold, or T (= never) when it cannot within
// the window. It is the analytic inverse of θ(f) = θ₀·ε(f).
func candidate(k kernel.Kernel, u float64, from, t int) int {
	if u <= 0 {
		return t
	}
	raw := math.Ceil(-k.Tau*math.Log(u/Theta0E) + k.Td)
	c := from
	if raw > float64(from) {
		if raw >= float64(t) {
			return t
		}
		c = int(raw)
	}
	return c
}

// Theta0E mirrors kernel.Theta0 for the candidate computation.
const Theta0E = kernel.Theta0

// runHiddenStageEvent is the event-driven counterpart of runHiddenStage,
// writing spike-time offsets into outTimes (len st.OutLen).
func (m *Model) runHiddenStageEvent(sc *InferScratch, st *snn.Stage, inK, outK kernel.Kernel, inTimes, outTimes []int, adv int, res *Result, si int, cfg RunConfig) {
	pot := sc.pot[:st.OutLen]
	for i := range pot {
		pot[i] = 0
	}
	st.AddBias(pot)
	plan := m.stagePlan(si)
	buckets := sc.bucketizeInto(inTimes, m.T)
	dec := sc.decode(inK, m.T)

	// guaranteed integration
	for off := 0; off < adv && off < m.T; off++ {
		for _, idx := range buckets[off] {
			scatterPlanned(plan, st, idx, dec[off], pot)
		}
	}

	for i := range outTimes {
		outTimes[i] = -1
	}
	version := sc.evVersion[:st.OutLen]
	stamp := sc.evStamp[:st.OutLen]
	for i := range version {
		version[i] = 0
		stamp[i] = 0
	}
	firedCount := 0

	// seed candidates from the guaranteed-phase potentials
	h := sc.evHeap[:0]
	for j, u := range pot {
		if c := candidate(outK, u, 0, m.T); c < m.T {
			h = append(h, fireEvent{step: c, neuron: j})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		evDown(h, i)
	}

	fireUpTo := func(limit int) {
		// pop and commit every valid candidate strictly before limit
		for len(h) > 0 && h[0].step < limit {
			ev := h[0]
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
			evDown(h, 0)
			j := ev.neuron
			if outTimes[j] >= 0 || ev.version != version[j] {
				continue // already fired or stale
			}
			outTimes[j] = ev.step
			firedCount++
		}
	}

	// arrivals during the fire phase land at local steps 0..T-1-adv
	lastArrival := m.T - adv
	for f := 0; f < lastArrival; f++ {
		inOff := adv + f
		if len(buckets[inOff]) == 0 {
			continue
		}
		// all fires strictly before this step are settled
		fireUpTo(f)
		epoch := uint32(f + 1)
		touched := sc.evTouched[:0]
		for _, idx := range buckets[inOff] {
			key, div := st.RowKey(idx)
			s := dec[inOff] / div
			for _, c := range plan.Row(key) {
				pot[c.J] += s * c.W
				if stamp[c.J] != epoch {
					stamp[c.J] = epoch
					touched = append(touched, c.J)
				}
			}
		}
		// arrivals precede the threshold check at step f: recompute
		// candidates (from f) for every touched, unfired neuron
		for _, j32 := range touched {
			j := int(j32)
			if outTimes[j] >= 0 {
				continue
			}
			version[j]++
			if c := candidate(outK, pot[j], f, m.T); c < m.T {
				h = append(h, fireEvent{step: c, neuron: j, version: version[j]})
				evUp(h, len(h)-1)
			}
		}
		sc.evTouched = touched[:0] // keep grown capacity
	}
	fireUpTo(m.T)
	sc.evHeap = h[:0]

	res.Spikes[si+1] = firedCount
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[si+1] = collectGlobal(outTimes, (si+1)*adv)
	}
}

// VerifyEnginesEvent checks the clocked and event-driven engines agree
// on one input under the given pipeline configuration.
func (m *Model) VerifyEnginesEvent(input []float64, cfg RunConfig) error {
	cfg.CollectSpikeTimes = true
	clocked := m.Infer(input, cfg)
	event := m.InferEvent(input, cfg)
	if clocked.Pred != event.Pred {
		return fmt.Errorf("core: engines disagree on prediction: clocked %d, event %d", clocked.Pred, event.Pred)
	}
	if clocked.TotalSpikes != event.TotalSpikes {
		return fmt.Errorf("core: engines disagree on spikes: clocked %d, event %d", clocked.TotalSpikes, event.TotalSpikes)
	}
	for b := range clocked.SpikeTimes {
		a, e := clocked.SpikeTimes[b], event.SpikeTimes[b]
		if len(a) != len(e) {
			return fmt.Errorf("core: boundary %d spike counts differ: %d vs %d", b, len(a), len(e))
		}
		for i := range a {
			if a[i] != e[i] {
				return fmt.Errorf("core: boundary %d spike %d differs: %d vs %d", b, i, a[i], e[i])
			}
		}
	}
	for j := range clocked.Potentials {
		d := clocked.Potentials[j] - event.Potentials[j]
		if d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("core: output potential %d differs: %v vs %v", j, clocked.Potentials[j], event.Potentials[j])
		}
	}
	return nil
}
