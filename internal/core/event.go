package core

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/snn"
)

// InferEvent runs the same pipeline as Infer with an event-driven
// engine: instead of sweeping every neuron against the threshold at
// every time step (O(T·N) per layer), it keeps a priority queue of
// analytically computed candidate fire times that is re-validated only
// for neurons an arrival actually touched. Semantics are identical to
// the clocked engine — including arrival-before-threshold ordering
// within a step and non-guaranteed integration under early firing — and
// the equivalence is enforced by property tests and VerifyEnginesEvent.
//
// The event engine wins when spikes are sparse relative to T·N (the
// regime TTFS coding creates by construction); the clocked engine wins
// on dense traffic. BenchmarkEngineEvent quantifies the trade.
func (m *Model) InferEvent(input []float64, cfg RunConfig) Result {
	if len(input) != m.Net.InLen {
		panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
	}
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  make([]int, nStages),
		Latency: (nStages-1)*adv + m.T,
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes = make([][]int, nStages)
	}

	times := make([]int, m.Net.InLen)
	fired := 0
	for i, u := range input {
		if t, ok := m.K[0].Encode(u); ok {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	res.Spikes[0] = fired
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[0] = collectGlobal(times, 0)
	}

	sc := NewInferScratch(m) // single-use arena for the shared output stage
	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		inK := m.K[si]
		if st.Output {
			m.runOutputStage(sc, st, si, inK, times, si*adv, adv, cfg, &res)
			return res
		}
		outK := m.K[si+1]
		times = m.runHiddenStageEvent(st, inK, outK, times, adv, &res, si, cfg)
	}
	return res
}

// fireEvent is a heap entry: neuron j predicted to fire at step.
type fireEvent struct {
	step    int
	neuron  int
	version uint32
}

type fireHeap []fireEvent

func (h fireHeap) Len() int            { return len(h) }
func (h fireHeap) Less(i, j int) bool  { return h[i].step < h[j].step }
func (h fireHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fireHeap) Push(x interface{}) { *h = append(*h, x.(fireEvent)) }
func (h *fireHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// candidate returns the earliest fire step ≥ from at which potential u
// crosses the falling threshold, or T (= never) when it cannot within
// the window. It is the analytic inverse of θ(f) = θ₀·ε(f).
func candidate(k kernel.Kernel, u float64, from, t int) int {
	if u <= 0 {
		return t
	}
	raw := math.Ceil(-k.Tau*math.Log(u/Theta0E) + k.Td)
	c := from
	if raw > float64(from) {
		if raw >= float64(t) {
			return t
		}
		c = int(raw)
	}
	return c
}

// Theta0E mirrors kernel.Theta0 for the candidate computation.
const Theta0E = kernel.Theta0

// runHiddenStageEvent is the event-driven counterpart of runHiddenStage.
func (m *Model) runHiddenStageEvent(st *snn.Stage, inK, outK kernel.Kernel, inTimes []int, adv int, res *Result, si int, cfg RunConfig) []int {
	pot := make([]float64, st.OutLen)
	st.AddBias(pot)
	buckets := bucketize(inTimes, m.T)
	dec := decodeTable(inK, m.T)

	// guaranteed integration
	for off := 0; off < adv && off < m.T; off++ {
		for _, idx := range buckets[off] {
			st.Scatter(idx, dec[off], pot)
		}
	}

	outTimes := make([]int, st.OutLen)
	version := make([]uint32, st.OutLen)
	for i := range outTimes {
		outTimes[i] = -1
	}
	firedCount := 0

	// seed candidates from the guaranteed-phase potentials
	h := make(fireHeap, 0, st.OutLen)
	for j, u := range pot {
		if c := candidate(outK, u, 0, m.T); c < m.T {
			h = append(h, fireEvent{step: c, neuron: j})
		}
	}
	heap.Init(&h)

	fireUpTo := func(limit int) {
		// pop and commit every valid candidate strictly before limit
		for len(h) > 0 && h[0].step < limit {
			ev := heap.Pop(&h).(fireEvent)
			j := ev.neuron
			if outTimes[j] >= 0 || ev.version != version[j] {
				continue // already fired or stale
			}
			outTimes[j] = ev.step
			firedCount++
		}
	}

	// arrivals during the fire phase land at local steps 0..T-1-adv
	lastArrival := m.T - adv
	for f := 0; f < lastArrival; f++ {
		inOff := adv + f
		if len(buckets[inOff]) == 0 {
			continue
		}
		// all fires strictly before this step are settled
		fireUpTo(f)
		touched := map[int]struct{}{}
		for _, idx := range buckets[inOff] {
			st.ScatterVisit(idx, dec[inOff], func(j int, contrib float64) {
				pot[j] += contrib
				touched[j] = struct{}{}
			})
		}
		// arrivals precede the threshold check at step f: recompute
		// candidates (from f) for every touched, unfired neuron
		for j := range touched {
			if outTimes[j] >= 0 {
				continue
			}
			version[j]++
			if c := candidate(outK, pot[j], f, m.T); c < m.T {
				heap.Push(&h, fireEvent{step: c, neuron: j, version: version[j]})
			}
		}
	}
	fireUpTo(m.T)

	res.Spikes[si+1] = firedCount
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[si+1] = collectGlobal(outTimes, (si+1)*adv)
	}
	return outTimes
}

// VerifyEnginesEvent checks the clocked and event-driven engines agree
// on one input under the given pipeline configuration.
func (m *Model) VerifyEnginesEvent(input []float64, cfg RunConfig) error {
	cfg.CollectSpikeTimes = true
	clocked := m.Infer(input, cfg)
	event := m.InferEvent(input, cfg)
	if clocked.Pred != event.Pred {
		return fmt.Errorf("core: engines disagree on prediction: clocked %d, event %d", clocked.Pred, event.Pred)
	}
	if clocked.TotalSpikes != event.TotalSpikes {
		return fmt.Errorf("core: engines disagree on spikes: clocked %d, event %d", clocked.TotalSpikes, event.TotalSpikes)
	}
	for b := range clocked.SpikeTimes {
		a, e := clocked.SpikeTimes[b], event.SpikeTimes[b]
		if len(a) != len(e) {
			return fmt.Errorf("core: boundary %d spike counts differ: %d vs %d", b, len(a), len(e))
		}
		for i := range a {
			if a[i] != e[i] {
				return fmt.Errorf("core: boundary %d spike %d differs: %d vs %d", b, i, a[i], e[i])
			}
		}
	}
	for j := range clocked.Potentials {
		d := clocked.Potentials[j] - event.Potentials[j]
		if d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("core: output potential %d differs: %v vs %v", j, clocked.Potentials[j], event.Potentials[j])
		}
	}
	return nil
}
