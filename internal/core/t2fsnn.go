// Package core implements the paper's primary contribution: the T2FSNN
// model — a deep spiking network with time-to-first-spike coding driven
// by kernel-based dynamic thresholds (encoding, Eq. 6/7) and dendrites
// (decoding, Eq. 8) — together with the layer-pipelined execution of
// Fig. 3, the early-firing overlap of §III-C, and the spike/latency
// accounting reported in Tables I–II and Figs. 5–6.
package core

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/snn"
)

// Model is a converted spiking network equipped with one kernel per
// "fire boundary": K[0] encodes the input image into spikes, and K[i]
// (i ≥ 1) is shared between the fire phase of stage i−1 and the
// integration phase of stage i (the paper ties the integration kernel of
// layer l to the fire kernel of layer l−1).
type Model struct {
	Net *snn.Net
	K   []kernel.Kernel
	T   int // time window per layer, in steps

	// plans cache per-stage scatter rows (snn.ScatterPlan) so inference
	// stops re-deriving per-spike addresses; built lazily because models
	// are also constructed by composite literal. Kernels only shape
	// thresholds and decode scales, never the rows, so ApplyGO needs no
	// invalidation; stage weights are frozen after construction (see
	// snn.ScatterPlan).
	planOnce sync.Once
	plans    []*snn.ScatterPlan

	// outGain/outLoss cache, per output-stage RowKey, the largest
	// positive (outGain) and largest-magnitude negative (outLoss, stored
	// positive) single-synapse weight of the row. One arrival with unit
	// kernel scale can raise any single output potential by at most
	// outGain[key]/div and lower it by at most outLoss[key]/div — the
	// per-event bound behind the early-exit undominated-winner rule.
	boundsOnce       sync.Once
	outGain, outLoss []float64

	// qstages cache the fixed-point engine's per-stage int8 SoA scatter
	// plans plus the weight-grid constants (internal/core/quant.go).
	// Like plans, they depend only on the frozen stage weights — kernel
	// retuning (ApplyGO) shifts the decode/threshold LUTs, which the
	// quant engine requantizes per call — so no invalidation is needed.
	quantOnce sync.Once
	qstages   []quantStage
}

// stagePlan returns the cached scatter plan of stage si.
func (m *Model) stagePlan(si int) *snn.ScatterPlan {
	m.planOnce.Do(func() {
		m.plans = make([]*snn.ScatterPlan, len(m.Net.Stages))
		for i := range m.Net.Stages {
			m.plans[i] = snn.NewScatterPlan(&m.Net.Stages[i])
		}
	})
	return m.plans[si]
}

// scatterPlanned replays a cached scatter row into pot: bit-identical to
// st.Scatter(idx, scale, pot) (same division, same visit order) with the
// address arithmetic paid once per row per model lifetime.
func scatterPlanned(plan *snn.ScatterPlan, st *snn.Stage, idx int, scale float64, pot []float64) {
	key, div := st.RowKey(idx)
	s := scale / div
	for _, c := range plan.Row(key) {
		pot[c.J] += s * c.W
	}
}

// NewModel equips a converted network with uniform initial kernels
// (τ, t_d) over a T-step window, the "empirically set initial stage" of
// the paper's §IV.
func NewModel(net *snn.Net, t int, tau, td float64) (*Model, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Net: net, T: t}
	for range net.Stages {
		k, err := kernel.New(tau, td, t)
		if err != nil {
			return nil, err
		}
		m.K = append(m.K, k)
	}
	return m, nil
}

// Validate checks model consistency.
func (m *Model) Validate() error {
	if len(m.K) != len(m.Net.Stages) {
		return fmt.Errorf("core: %d kernels for %d stages", len(m.K), len(m.Net.Stages))
	}
	for i, k := range m.K {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("core: kernel %d: %w", i, err)
		}
		if k.T != m.T {
			return fmt.Errorf("core: kernel %d window %d != model window %d", i, k.T, m.T)
		}
	}
	return m.Net.Validate()
}

// ApplyGO runs the paper's gradient-based optimization (§III-B) on every
// kernel: K[0] is fit to the input pixel distribution and K[i] to the
// normalized ground-truth activations z̄ of stage i−1 recorded at
// conversion time. It returns the per-kernel optimization traces
// (consumed by the Fig. 4 experiment).
func (m *Model) ApplyGO(inputSamples []float64, activations [][]float64, cfg kernel.OptimizeConfig) ([]kernel.OptimizeResult, error) {
	if len(activations) < len(m.K)-1 {
		return nil, fmt.Errorf("core: need activations for %d stages, have %d", len(m.K)-1, len(activations))
	}
	results := make([]kernel.OptimizeResult, len(m.K))
	for i := range m.K {
		var zbar []float64
		if i == 0 {
			zbar = inputSamples
		} else {
			zbar = activations[i-1]
		}
		res, err := kernel.Optimize(m.K[i], zbar, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: optimizing kernel %d: %w", i, err)
		}
		m.K[i] = res.Kernel
		results[i] = res
	}
	return results, nil
}

// RunConfig selects the pipeline variant for one inference.
type RunConfig struct {
	// EarlyFire enables the §III-C overlap: each layer's fire phase
	// starts EFStart steps into its integration window instead of after
	// it completes.
	EarlyFire bool
	// EFStart is the early-firing start offset; 0 means T/2, the
	// paper's experimentally chosen value.
	EFStart int
	// CollectSpikeTimes retains per-stage spike time offsets for the
	// Fig. 5 histograms (costs memory; off by default).
	CollectSpikeTimes bool
	// CollectTimeline retains the output-potential argmax after every
	// integration step for the Fig. 6 inference curves.
	CollectTimeline bool
	// CollectEvents retains (neuron, global time) spike pairs per fire
	// boundary for waveform export (internal/trace).
	CollectEvents bool
	// EarlyExit lets the event engine (InferOpts.Engine == EngineEvent)
	// stop integrating the output window the moment the leading class is
	// provably undominated — no sequence of remaining arrivals can
	// change the argmax (see runOutputStageEvent). The prediction is
	// guaranteed to match the full run's argmax; Result.Potentials are
	// partial and Result.Latency reports the (earlier) decision step.
	// Ignored by the clocked engine, and disabled when CollectTimeline
	// is set (the timeline needs the full window).
	EarlyExit bool
	// Faults is this sample's fault-injection stream (internal/fault).
	// Nil injects nothing and adds no work to the inference path.
	Faults *fault.Stream
}

// advance returns the pipeline advance per layer: T for the baseline
// (Fig. 3-a) and EFStart for early firing (Fig. 3-b).
func (c RunConfig) advance(t int) int {
	if !c.EarlyFire {
		return t
	}
	if c.EFStart <= 0 {
		return t / 2
	}
	if c.EFStart > t {
		return t
	}
	return c.EFStart
}

// TimedPred is one point of the output-decision timeline.
type TimedPred struct {
	Step int // global time step at which this prediction became current
	Pred int
}

// Result summarizes one inference.
type Result struct {
	Pred    int
	Latency int // global steps until the final decision
	// Spikes counts every spike: index 0 is the input encoding, index
	// i ≥ 1 is the fire phase of stage i−1. The output stage never
	// fires (its potentials are read directly).
	Spikes []int
	// TotalSpikes is the sum of Spikes.
	TotalSpikes int
	// SpikeTimes[i] holds the global spike times of fire boundary i
	// (same indexing as Spikes) when CollectSpikeTimes is set.
	SpikeTimes [][]int
	// Timeline is the output argmax trajectory when CollectTimeline is
	// set; predictions before the first entry are undefined (chance).
	Timeline []TimedPred
	// Events holds per-boundary (neuron, global time) spikes when
	// CollectEvents is set; same indexing as Spikes.
	Events [][]SpikeEvent
	// Potentials are the final output-stage membrane potentials. Under
	// an early exit they are partial: correct up to the decision step,
	// with the remaining arrivals never integrated.
	Potentials []float64
	// EarlyExit reports that the event engine stopped before the end of
	// the output window because the winner was provably undominated
	// (RunConfig.EarlyExit). Pred still matches the full run's argmax.
	EarlyExit bool
	// StepsSaved counts output-window steps skipped by the early exit.
	StepsSaved int
	// EventsSaved counts output-stage arrival spikes that were never
	// integrated because of the early exit.
	EventsSaved int
}

// PredAt returns the model's decision if it were read out at the given
// global step: the latest timeline entry at or before the step, or -1
// when no information has reached the output yet.
func (r *Result) PredAt(step int) int {
	pred := -1
	for _, tp := range r.Timeline {
		if tp.Step > step {
			break
		}
		pred = tp.Pred
	}
	return pred
}

// Infer runs one input (flattened [C,H,W], values in [0,1]) through the
// T2FSNN pipeline.
//
// Layer k's fire window starts at global step k·advance and lasts T
// steps. In the baseline pipeline (advance = T) every input spike has
// arrived before a layer starts firing — guaranteed integration. With
// early firing (advance = EFStart < T) the fire phase overlaps the
// integration phase; inputs arriving after a neuron's own spike no
// longer influence it (non-guaranteed integration, §III-C).
func (m *Model) Infer(input []float64, cfg RunConfig) Result {
	return m.InferOne(input, cfg, InferOpts{})
}

// InferWith is Infer against an explicit scratch arena: all working
// buffers and the returned Result's Spikes/Potentials slices come from
// sc, so the steady-state call allocates nothing (see InferScratch for
// the aliasing contract). A nil sc falls back to a fresh single-use
// scratch, making it exactly Infer. Results are bit-identical either
// way: reused buffers are reset to the same state fresh allocations
// start in, and no floating-point operation changes order.
//
// Deprecated: use InferOne with InferOpts{Scratch: sc}.
func (m *Model) InferWith(sc *InferScratch, input []float64, cfg RunConfig) Result {
	return m.InferOne(input, cfg, InferOpts{Scratch: sc})
}

// inferClocked is the clocked engine's entry: scratch setup, then the
// step-swept pipeline.
func (m *Model) inferClocked(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	return m.inferClockedBody(sc, input, cfg)
}

// inferClockedBody runs the clocked pipeline on a prepared scratch
// without rewinding its arenas, so multi-sample drivers (and the event
// engine's threshold-noise fallback) can run several samples against
// one scratch with every Result staying valid.
func (m *Model) inferClockedBody(sc *InferScratch, input []float64, cfg RunConfig) Result {
	if len(input) != m.Net.InLen {
		panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
	}
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res := Result{
		Spikes:  sc.ints.take(nStages), // boundary 0..nStages-1 (output stage does not fire)
		Latency: (nStages-1)*adv + m.T,
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes = make([][]int, nStages)
	}
	if cfg.CollectEvents {
		res.Events = make([][]SpikeEvent, nStages)
	}

	// Encode the input image with K[0]. All pixel information is
	// available at step 0, so encoding is analytic in both pipelines.
	times := sc.timesA[:m.Net.InLen] // spike offset within the window, -1 = none
	next := sc.timesB
	fired := 0
	for i, u := range input {
		t, ok := m.K[0].Encode(u)
		if ok {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	if cfg.Faults != nil {
		// Boundary 0 faults model a defective sensor/encoder front-end:
		// stuck pixels, lost or jittered encoding spikes.
		fired = cfg.Faults.ApplyTTFS(0, times, m.T)
	}
	res.Spikes[0] = fired
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[0] = collectGlobal(times, 0)
	}
	if cfg.CollectEvents {
		res.Events[0] = collectEvents(times, 0)
	}

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		inK := m.K[si] // integration kernel = previous fire kernel
		windowStart := si * adv

		if st.Output {
			m.runOutputStage(sc, st, si, inK, times, windowStart, adv, cfg, &res)
			return res
		}

		outK := m.K[si+1]
		out := next[:st.OutLen]
		next = times[:cap(times)] // the consumed buffer becomes the next stage's output
		m.runHiddenStage(sc, st, inK, outK, times, out, adv, &res, si, cfg)
		times = out
	}
	return res // unreachable: Validate guarantees an output stage
}

// runHiddenStage integrates the previous layer's spikes into stage st
// and fires its neurons against the dynamic threshold, writing the new
// spike-time offsets into outTimes (len st.OutLen). The fire window of
// this stage opens `adv` steps after its input's fire window opened.
func (m *Model) runHiddenStage(sc *InferScratch, st *snn.Stage, inK, outK kernel.Kernel, inTimes, outTimes []int, adv int, res *Result, si int, cfg RunConfig) {
	pot := sc.pot[:st.OutLen]
	for i := range pot {
		pot[i] = 0
	}
	st.AddBias(pot)
	plan := m.stagePlan(si)

	// Bucket input spikes by arrival offset within the input window and
	// tabulate the integration kernel once (the LUT replacement of §V).
	buckets := sc.bucketizeInto(inTimes, m.T)
	dec := sc.decode(inK, m.T)

	// Phase 1 — guaranteed integration: arrivals before the fire phase
	// opens (input offsets < adv).
	for off := 0; off < adv && off < m.T; off++ {
		for _, idx := range buckets[off] {
			scatterPlanned(plan, st, idx, dec[off], pot)
		}
	}

	for i := range outTimes {
		outTimes[i] = -1
	}
	firedCount := 0

	// Phase 2 — fire phase: local steps f = 0..T-1 at input offsets
	// adv+f. Arrivals land first, then unfired neurons are tested
	// against θ(f) = θ₀·ε(f). A neuron that has already fired ignores
	// later arrivals (refractory; non-guaranteed integration).
	for f := 0; f < m.T; f++ {
		inOff := adv + f
		if inOff < m.T {
			for _, idx := range buckets[inOff] {
				scatterPlanned(plan, st, idx, dec[inOff], pot)
			}
		}
		theta := outK.Threshold(float64(f))
		if cfg.Faults != nil {
			theta = cfg.Faults.Threshold(si+1, f, theta)
		}
		for j, u := range pot {
			if outTimes[j] < 0 && u >= theta {
				outTimes[j] = f
				firedCount++
			}
		}
	}
	if cfg.Faults != nil {
		// The stage's spikes traverse a faulty boundary on the way to the
		// next layer: stuck neurons override, survivors may drop or jitter.
		firedCount = cfg.Faults.ApplyTTFS(si+1, outTimes, m.T)
	}
	res.Spikes[si+1] = firedCount
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
	if cfg.CollectSpikeTimes {
		res.SpikeTimes[si+1] = collectGlobal(outTimes, (si+1)*adv)
	}
	if cfg.CollectEvents {
		res.Events[si+1] = collectEvents(outTimes, (si+1)*adv)
	}
}

// runOutputStage integrates the last hidden layer's spikes into the
// output potentials, recording the decision timeline. The output stage
// never fires; it is read at the end of its integration window. The
// potential buffer comes from the scratch float arena and is returned as
// res.Potentials.
func (m *Model) runOutputStage(sc *InferScratch, st *snn.Stage, si int, inK kernel.Kernel, inTimes []int, windowStart, adv int, cfg RunConfig, res *Result) {
	pot := sc.floats.take(st.OutLen)
	st.AddBias(pot)
	plan := m.stagePlan(si)
	buckets := sc.bucketizeInto(inTimes, m.T)
	dec := sc.decode(inK, m.T)

	for off := 0; off < m.T; off++ {
		if len(buckets[off]) > 0 {
			for _, idx := range buckets[off] {
				scatterPlanned(plan, st, idx, dec[off], pot)
			}
			if cfg.CollectTimeline {
				res.record(windowStart+off, pot)
			}
		}
	}
	res.Pred = argmax(pot)
	res.Potentials = pot
	if cfg.CollectTimeline {
		res.record(res.Latency, pot)
	}
	res.TotalSpikes = 0
	for _, s := range res.Spikes {
		res.TotalSpikes += s
	}
}

// record appends a timeline entry when the output argmax changed.
func (r *Result) record(step int, pot []float64) {
	r.recordPred(step, argmax(pot))
}

// recordPred appends a timeline entry when the prediction changed — the
// engine-agnostic core of record, shared with the fixed-point engine
// whose potentials live in int32 accumulators.
func (r *Result) recordPred(step, pred int) {
	n := len(r.Timeline)
	if n == 0 || r.Timeline[n-1].Pred != pred {
		r.Timeline = append(r.Timeline, TimedPred{Step: step, Pred: pred})
	}
}

// decodeTable tabulates ε(t) at every window offset, replacing the
// per-spike exponential with a table read (the LUT of the paper's §V).
func decodeTable(k kernel.Kernel, t int) []float64 {
	dec := make([]float64, t)
	for i := range dec {
		dec[i] = k.Decode(i)
	}
	return dec
}

// bucketize groups spike indices by their time offset.
func bucketize(times []int, t int) [][]int {
	buckets := make([][]int, t)
	for idx, off := range times {
		if off >= 0 && off < t {
			buckets[off] = append(buckets[off], idx)
		}
	}
	return buckets
}

// SpikeEvent is one (neuron, global time) spike for waveform export.
type SpikeEvent struct {
	Neuron int
	Time   int
}

// collectEvents converts per-neuron local offsets into spike events.
func collectEvents(times []int, base int) []SpikeEvent {
	out := make([]SpikeEvent, 0, len(times))
	for j, t := range times {
		if t >= 0 {
			out = append(out, SpikeEvent{Neuron: j, Time: base + t})
		}
	}
	return out
}

// collectGlobal converts local spike offsets to global times, skipping
// silent neurons.
func collectGlobal(times []int, base int) []int {
	out := make([]int, 0, len(times))
	for _, t := range times {
		if t >= 0 {
			out = append(out, base+t)
		}
	}
	return out
}

func argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
