//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; alloc
// gates on multi-goroutine paths skip under -race because the detector
// itself allocates.
const raceEnabled = false
