package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// quantParityMin is the pinned int8-vs-float argmax agreement over the
// trained fixture set (both pipeline modes). The make-check parity leg
// runs TestQuantEngineFixtureParity, so a change that degrades the
// fixed-point engine below this baseline fails CI.
const quantParityMin = 0.99

// referenceQuant is an independent naive re-implementation of the
// fixed-point semantics: int64 accumulators (so an int32 overflow in
// the engine shows up as a mismatch), rows re-derived from
// Stage.AppendContribs with weights re-quantized inline (so an SoA
// build bug shows up too), no buckets, no scratch. ok=false reports the
// engine's documented fallback case (headroom infeasible at sf=0).
func referenceQuant(m *Model, input []float64, cfg RunConfig) (res Result, ok bool) {
	qstages := m.quantStages()
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	res = Result{Spikes: make([]int, nStages), Latency: (nStages-1)*adv + m.T}

	times := make([]int, m.Net.InLen)
	fired := 0
	for i, u := range input {
		t, f := m.K[0].Encode(u)
		if f {
			times[i] = t
			fired++
		} else {
			times[i] = -1
		}
	}
	if cfg.Faults != nil {
		fired = cfg.Faults.ApplyTTFS(0, times, m.T)
	}
	res.Spikes[0] = fired

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		qs := &qstages[si]
		dec := decodeTable(m.K[si], m.T)
		decMax := 0.0
		for _, d := range dec {
			if d > decMax {
				decMax = d
			}
		}
		thetaMax := 0.0
		if !st.Output {
			thetaMax = m.K[si+1].Threshold(0)
		}
		sf, shiftOK := stageShift(qs, decMax, thetaMax)
		if !shiftOK {
			return Result{}, false
		}
		unitInv := math.Exp2(float64(sf)) / qs.step

		acc := make([]int64, st.OutLen)
		for j := range acc {
			acc[j] = int64(clampQ(qs.bias[j] * unitInv))
		}
		deliver := func(off int) {
			s := int64(clampQ(dec[off] / qs.div * math.Exp2(float64(sf))))
			if s == 0 {
				return
			}
			for idx, tOff := range times {
				if tOff != off {
					continue
				}
				key, _ := st.RowKey(idx)
				for _, c := range st.AppendContribs(key, nil) {
					q := snn.FixedRound(c.W / qs.step)
					if q > float64(qs.maxQ) {
						q = float64(qs.maxQ)
					} else if q < -float64(qs.maxQ) {
						q = -float64(qs.maxQ)
					}
					acc[c.J] += s * int64(q)
				}
			}
		}

		if st.Output {
			for off := 0; off < m.T; off++ {
				deliver(off)
			}
			best, bi := acc[0], 0
			for j, v := range acc {
				if v > best {
					best, bi = v, j
				}
			}
			res.Pred = bi
			res.Potentials = make([]float64, st.OutLen)
			for j, v := range acc {
				res.Potentials[j] = float64(v) / unitInv
			}
			res.TotalSpikes = 0
			for _, s := range res.Spikes {
				res.TotalSpikes += s
			}
			return res, true
		}

		for off := 0; off < adv && off < m.T; off++ {
			deliver(off)
		}
		out := make([]int, st.OutLen)
		for j := range out {
			out[j] = -1
		}
		fired = 0
		for f := 0; f < m.T; f++ {
			if inOff := adv + f; inOff < m.T {
				deliver(inOff)
			}
			theta := m.K[si+1].Threshold(float64(f))
			if cfg.Faults != nil {
				theta = cfg.Faults.Threshold(si+1, f, theta)
			}
			thr := int64(clampQ(theta * unitInv))
			for j, v := range acc {
				if out[j] < 0 && v >= thr {
					out[j] = f
					fired++
				}
			}
		}
		if cfg.Faults != nil {
			fired = cfg.Faults.ApplyTTFS(si+1, out, m.T)
		}
		res.Spikes[si+1] = fired
		times = out
	}
	return res, true // unreachable
}

// quantConvNet is a small conv → pooled-dense net exercising every
// stage shape the fixed-point plans must handle.
func quantConvNet(r *tensor.RNG) *snn.Net {
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	w1 := tensor.New(2, 1, 3, 3)
	r.FillNormal(w1, 0, 0.5)
	b1 := tensor.New(2)
	r.FillNormal(b1, 0, 0.1)
	w2 := tensor.New(8, 3)
	r.FillNormal(w2, 0, 0.5)
	b2 := tensor.New(3)
	r.FillNormal(b2, 0, 0.1)
	return &snn.Net{
		Name: "qconv", InShape: []int{1, 4, 4}, InLen: 16,
		Stages: []snn.Stage{
			{Name: "c1", Kind: snn.ConvStage, Geom: g, OutC: 2, W: w1, B: b1, InLen: 16, OutLen: 32},
			{Name: "fc", Kind: snn.DenseStage, PrePool: &snn.PoolSpec{C: 2, InH: 4, InW: 4, K: 2},
				W: w2, B: b2, InLen: 32, OutLen: 3, Output: true},
		},
	}
}

// quantDenseNet is a random dense net with occasional large weights so
// per-stage formats vary.
func quantDenseNet(r *tensor.RNG) *snn.Net {
	in, hid, out := 3+r.Intn(4), 4+r.Intn(5), 2+r.Intn(3)
	w1 := tensor.New(in, hid)
	w2 := tensor.New(hid, out)
	for _, w := range []*tensor.Tensor{w1, w2} {
		for i := range w.Data {
			if r.Intn(5) == 0 {
				w.Data[i] = r.Range(-8, 8)
			} else {
				w.Data[i] = r.Range(-1, 1)
			}
		}
	}
	b1, b2 := tensor.New(hid), tensor.New(out)
	for i := range b1.Data {
		b1.Data[i] = r.Range(-0.3, 0.3)
	}
	for i := range b2.Data {
		b2.Data[i] = r.Range(-0.3, 0.3)
	}
	return &snn.Net{
		Name: "qdense", InShape: []int{in}, InLen: in,
		Stages: []snn.Stage{
			{Name: "h", Kind: snn.DenseStage, W: w1, B: b1, InLen: in, OutLen: hid},
			{Name: "out", Kind: snn.DenseStage, W: w2, B: b2, InLen: hid, OutLen: out, Output: true},
		},
	}
}

// Property (PR 8): the engine's int32 SoA pipeline is bit-exact with
// the naive int64 reference across random nets (dense and conv/pooled),
// kernels, pipeline modes, and injected fault streams — drop, jitter,
// stuck neurons, and threshold noise included.
func TestQuantEngineMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		var net *snn.Net
		if r.Intn(3) == 0 {
			net = quantConvNet(r)
		} else {
			net = quantDenseNet(r)
		}
		m, err := NewModel(net, 8+r.Intn(30), r.Range(1, 12), r.Range(0, 2))
		if err != nil {
			return true
		}
		in := make([]float64, net.InLen)
		for i := range in {
			in[i] = r.Float64()
		}
		cfg := RunConfig{}
		if r.Intn(2) == 0 {
			cfg = RunConfig{EarlyFire: true, EFStart: 1 + r.Intn(m.T)}
		}
		if r.Intn(2) == 0 {
			inj, err := fault.New(fault.Config{
				Seed:           seed,
				Drop:           r.Range(0, 0.3),
				Jitter:         r.Intn(3),
				StuckSilent:    r.Range(0, 0.1),
				StuckFire:      r.Range(0, 0.05),
				ThresholdNoise: r.Range(0, 0.1),
			})
			if err != nil {
				return true
			}
			cfg.Faults = inj.Sample(r.Intn(50))
		}
		want, ok := referenceQuant(m, in, cfg)
		got := m.InferOne(in, cfg, InferOpts{Engine: EngineQuant})
		if !ok {
			// Engine documented fallback: must equal the clocked engine.
			clocked := m.InferOne(in, cfg, InferOpts{})
			return got.Pred == clocked.Pred && got.TotalSpikes == clocked.TotalSpikes
		}
		if got.Pred != want.Pred || got.Latency != want.Latency || got.TotalSpikes != want.TotalSpikes {
			return false
		}
		for i := range want.Spikes {
			if got.Spikes[i] != want.Spikes[i] {
				return false
			}
		}
		for j := range want.Potentials {
			if got.Potentials[j] != want.Potentials[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (PR 8): quant vs float argmax agreement. A one-LSB
// difference near a threshold crossing can legitimately move a spike
// time, so exact agreement is only asserted when it is provable: every
// fire boundary produced identical spikes on both engines AND the float
// margin between the top two outputs exceeds the worst-case output-
// stage quantization error. Everything else is vacuously true — the
// real-world agreement rate is pinned by TestQuantEngineFixtureParity.
func TestQuantEngineVsClockedArgmax(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		net := quantDenseNet(r)
		m, err := NewModel(net, 8+r.Intn(30), r.Range(1, 12), r.Range(0, 2))
		if err != nil {
			return true
		}
		in := make([]float64, net.InLen)
		for i := range in {
			in[i] = r.Float64()
		}
		cfg := RunConfig{CollectEvents: true}
		if r.Intn(2) == 0 {
			cfg.EarlyFire, cfg.EFStart = true, 1+r.Intn(m.T)
		}
		fl := m.InferOne(in, cfg, InferOpts{})
		flPots := append([]float64(nil), fl.Potentials...)
		qt := m.InferOne(in, cfg, InferOpts{Engine: EngineQuant})
		for b := range fl.Events {
			if len(fl.Events[b]) != len(qt.Events[b]) {
				return true // spike trains diverged: agreement not provable
			}
			for i := range fl.Events[b] {
				if fl.Events[b][i] != qt.Events[b][i] {
					return true
				}
			}
		}
		// Identical spike trains: the engines differ only by output-stage
		// LUT/bias rounding. Bound that error and demand agreement when
		// the float margin clears twice the bound.
		osi := len(net.Stages) - 1
		qs := &m.quantStages()[osi]
		dec := decodeTable(m.K[osi], m.T)
		decMax := 0.0
		for _, d := range dec {
			if d > decMax {
				decMax = d
			}
		}
		sf, ok := stageShift(qs, decMax, 0)
		if !ok {
			return true
		}
		unit := qs.step / math.Exp2(float64(sf))
		bound := 0.5*unit +
			float64(qs.plan.MaxInDegree)*(decMax/qs.div*0.5*qs.step+float64(qs.maxQ)*0.5*unit)
		best, second := math.Inf(-1), math.Inf(-1)
		for _, v := range flPots {
			if v > best {
				best, second = v, best
			} else if v > second {
				second = v
			}
		}
		if best-second <= 2*bound {
			return true // decision genuinely within quantization noise
		}
		return qt.Pred == fl.Pred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantEngineFixtureParity pins the serving claim on the trained
// fixture: int8 argmax agreement with the float clocked engine stays at
// or above quantParityMin in both pipeline modes. This is the make
// check parity leg.
func TestQuantEngineFixtureParity(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	n := fixture.x.Shape[0]
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		agree := 0
		for i := 0; i < n; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			clocked := m.InferOne(in, cfg, InferOpts{})
			q := m.InferOne(in, cfg, InferOpts{Scratch: sc, Engine: EngineQuant})
			if q.Pred == clocked.Pred {
				agree++
			}
		}
		rate := float64(agree) / float64(n)
		t.Logf("ef=%v: quant/clocked argmax agreement %d/%d (%.4f)", cfg.EarlyFire, agree, n, rate)
		if rate < quantParityMin {
			t.Fatalf("ef=%v: agreement %.4f below pinned baseline %v", cfg.EarlyFire, rate, quantParityMin)
		}
	}
}

// TestQuantEngineZeroAllocs gates the scratch-arena claim: the warm
// fixed-point path allocates nothing per call.
func TestQuantEngineZeroAllocs(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	in := fixture.x.Data[:256]
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		cfg := cfg
		opts := InferOpts{Scratch: sc, Engine: EngineQuant}
		m.InferOne(in, cfg, opts) // warm plans + arenas
		if n := testing.AllocsPerRun(20, func() { m.InferOne(in, cfg, opts) }); n != 0 {
			t.Errorf("quant engine (earlyFire=%v) allocates %.1f/op, want 0", cfg.EarlyFire, n)
		}
	}
}

// TestInferManyQuantMatchesInferOne pins the batch loop: one scratch
// across the batch, every Result valid at the end, each equal to its
// per-sample InferOne — including per-sample fault streams.
func TestInferManyQuantMatchesInferOne(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 3, Drop: 0.1, Jitter: 1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	n := 12
	inputs := make([][]float64, n)
	streams := make([]*fault.Stream, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		if i%2 == 0 {
			streams[i] = inj.Sample(i)
		}
	}
	cfg := RunConfig{EarlyFire: true}
	got := m.InferMany(inputs, cfg, InferOpts{Engine: EngineQuant, Faults: streams})
	for i := range inputs {
		c := cfg
		c.Faults = streams[i]
		want := m.InferOne(inputs[i], c, InferOpts{Engine: EngineQuant})
		if got[i].Pred != want.Pred || got[i].Latency != want.Latency ||
			got[i].TotalSpikes != want.TotalSpikes {
			t.Fatalf("sample %d: batch %+v != single %+v", i, got[i], want)
		}
		for j := range want.Potentials {
			if got[i].Potentials[j] != want.Potentials[j] {
				t.Fatalf("sample %d potential %d: %v != %v", i, j, got[i].Potentials[j], want.Potentials[j])
			}
		}
	}
}

// A model whose integer headroom cannot fit int32 even at shift 0 must
// fall back to the float clocked engine, bit for bit.
func TestQuantEngineOverflowFallback(t *testing.T) {
	net := tinyNet()
	net.Stages[0].B.Data[0] = 3e8 // bias alone exceeds accCap at sf=0
	m, err := NewModel(net, 20, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.8, 0.5, 0.3}
	want := m.InferOne(in, RunConfig{}, InferOpts{})
	wantPots := append([]float64(nil), want.Potentials...)
	got := m.InferOne(in, RunConfig{}, InferOpts{Engine: EngineQuant})
	if got.Pred != want.Pred || got.Latency != want.Latency || got.TotalSpikes != want.TotalSpikes {
		t.Fatalf("fallback diverged: %+v != %+v", got, want)
	}
	for j := range wantPots {
		if got.Potentials[j] != wantPots[j] {
			t.Fatalf("fallback potential %d: %v != %v", j, got.Potentials[j], wantPots[j])
		}
	}
}

// The quant timeline must follow the same dedup contract as the float
// engines: entries only on argmax changes, closed at the final latency.
func TestQuantEngineTimeline(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	in := fixture.x.Data[:256]
	res := m.InferOne(in, RunConfig{CollectTimeline: true}, InferOpts{Engine: EngineQuant})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline collected")
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Pred == res.Timeline[i-1].Pred {
			t.Fatalf("timeline entries %d and %d share a prediction", i-1, i)
		}
		if res.Timeline[i].Step <= res.Timeline[i-1].Step {
			t.Fatalf("timeline steps not increasing at %d", i)
		}
	}
	if got := res.PredAt(res.Latency); got != res.Pred {
		t.Fatalf("PredAt(latency) = %d, want %d", got, res.Pred)
	}
}

// BenchmarkInferQuant is the PR's headline number: batch-1 latency of
// the int8 SoA engine against the float64 clocked engine on warm
// scratches. Argmax agreement at the pinned fixture baseline is
// asserted before timing, so the speedup cannot come from wrong
// answers.
func BenchmarkInferQuant(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	sc := NewInferScratch(m)
	n := fixture.x.Shape[0]
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		agree := 0
		for i := 0; i < n; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			clocked := m.InferOne(in, cfg, InferOpts{Scratch: sc})
			q := m.InferOne(in, cfg, InferOpts{Scratch: sc, Engine: EngineQuant})
			if q.Pred == clocked.Pred {
				agree++
			}
		}
		if rate := float64(agree) / float64(n); rate < quantParityMin {
			b.Fatalf("ef=%v: agreement %.4f below pinned baseline %v", cfg.EarlyFire, rate, quantParityMin)
		}
	}
	in := fixture.x.Data[:256]
	run := func(name string, cfg RunConfig, opts InferOpts) {
		opts.Scratch = sc
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.InferOne(in, cfg, opts)
			}
		})
	}
	run("quant", RunConfig{}, InferOpts{Engine: EngineQuant})
	run("clocked", RunConfig{}, InferOpts{})
	run("quant-ef", RunConfig{EarlyFire: true}, InferOpts{Engine: EngineQuant})
	run("clocked-ef", RunConfig{EarlyFire: true}, InferOpts{})
}
