package core

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// scratchConfigs are the pipeline variants every scratch differential
// test sweeps: collection flags change which Result fields are built,
// early firing changes the integration schedule.
var scratchConfigs = []RunConfig{
	{},
	{EarlyFire: true},
	{EarlyFire: true, EFStart: 13},
	{CollectTimeline: true, CollectSpikeTimes: true, CollectEvents: true},
	{EarlyFire: true, CollectTimeline: true},
}

// TestInferWithMatchesInfer pins the scratch contract: a reused scratch
// produces results bit-identical to fresh-allocation Infer, across every
// pipeline variant, with the same scratch carried across samples and
// configs so buffer-reset bugs cannot hide.
func TestInferWithMatchesInfer(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	for ci, cfg := range scratchConfigs {
		for i := 0; i < 8; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			got := m.InferWith(sc, in, cfg)
			sameResult(t, fmt.Sprintf("cfg %d sample %d", ci, i), got, m.Infer(in, cfg))
		}
	}
}

// TestInferWithMatchesInferUnderFaults runs the same differential with
// active fault injection (drop, jitter, stuck neurons, threshold noise)
// routed per sample.
func TestInferWithMatchesInferUnderFaults(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 11, Drop: 0.2, Jitter: 2, StuckSilent: 0.05, ThresholdNoise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewInferScratch(m)
	cfg := RunConfig{EarlyFire: true, CollectTimeline: true, CollectSpikeTimes: true}
	for i := 0; i < 8; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		run := cfg
		if i%2 == 1 { // faults on odd samples: mixed reuse of one scratch
			run.Faults = inj.Sample(i)
		}
		got := m.InferWith(sc, in, run)
		sameResult(t, fmt.Sprintf("faulted sample %d", i), got, m.Infer(in, run))
	}
}

// TestInferBatchWithMatchesFresh pins batched scratch reuse: one scratch
// across successive batches (including a >64-sample batch that spans
// chunks) is bit-identical to nil-scratch InferBatch.
func TestInferBatchWithMatchesFresh(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 3, Drop: 0.15, Jitter: 1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewInferScratch(m)
	for _, n := range []int{1, 8, 70} { // 70 spans the 64-sample chunk mask
		inputs := make([][]float64, n)
		streams := make([]*fault.Stream, n)
		for i := range inputs {
			inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
			if i%2 == 1 {
				streams[i] = inj.Sample(i)
			}
		}
		for ci, cfg := range scratchConfigs {
			got := m.InferBatchWith(sc, inputs, cfg, streams)
			// build the reference with per-call streams: Stream state is
			// deterministic per (sample, boundary), so reuse is safe
			want := m.InferBatch(inputs, cfg, streams)
			if len(got) != len(want) {
				t.Fatalf("n=%d cfg %d: %d results, want %d", n, ci, len(got), len(want))
			}
			for i := range got {
				sameResult(t, fmt.Sprintf("n=%d cfg %d sample %d", n, ci, i), got[i], want[i])
			}
		}
	}
}

// TestScratchSharedAcrossModels reuses one scratch across models of
// different geometry — the serving pool does exactly this after a model
// swap — and checks results stay bit-identical to fresh allocation.
func TestScratchSharedAcrossModels(t *testing.T) {
	loadFixture(t)
	big := fixture.model()
	small, err := NewModel(tinyNet(), 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewInferScratch(small) // sized small, must grow for big
	tinyIn := []float64{0.9, 0.5, 0.2}
	cfg := RunConfig{EarlyFire: true}
	got := small.InferWith(sc, tinyIn, cfg)
	sameResult(t, "small before grow", got, small.Infer(tinyIn, cfg))
	bigIn := fixture.x.Data[:256]
	got = big.InferWith(sc, bigIn, cfg)
	sameResult(t, "big after grow", got, big.Infer(bigIn, cfg))
	got = small.InferWith(sc, tinyIn, cfg)
	sameResult(t, "small after big", got, small.Infer(tinyIn, cfg))

	batch := small.InferBatchWith(sc, [][]float64{tinyIn, {0.1, 0.8, 0.4}}, cfg, nil)
	want := small.InferBatch([][]float64{tinyIn, {0.1, 0.8, 0.4}}, cfg, nil)
	for i := range batch {
		sameResult(t, fmt.Sprintf("tiny batch %d", i), batch[i], want[i])
	}
}

// randomDenseNet builds a dense net with rng-drawn geometry and weights.
func randomDenseNet(rng *tensor.RNG, depth int) *snn.Net {
	dims := make([]int, depth+1)
	for i := range dims {
		dims[i] = 3 + int(rng.Float64()*10)
	}
	stages := make([]snn.Stage, depth)
	for si := 0; si < depth; si++ {
		in, out := dims[si], dims[si+1]
		w := tensor.New(in, out)
		for i := range w.Data {
			w.Data[i] = 0.8 * rng.Norm() / float64(in)
		}
		b := tensor.New(out)
		for i := range b.Data {
			b.Data[i] = 0.1 * rng.Norm()
		}
		stages[si] = snn.Stage{
			Name: fmt.Sprintf("d%d", si), Kind: snn.DenseStage,
			W: w, B: b, InLen: in, OutLen: out, Output: si == depth-1,
		}
	}
	return &snn.Net{Name: "rand", InShape: []int{dims[0]}, InLen: dims[0], Stages: stages}
}

// TestInferWithRandomNets fuzzes the scratch path over random dense nets
// of varying depth and width, single and batched, one scratch throughout.
func TestInferWithRandomNets(t *testing.T) {
	rng := tensor.NewRNG(99)
	sc := NewInferScratch(nil2model(t, randomDenseNet(rng, 2)))
	for trial := 0; trial < 12; trial++ {
		depth := 2 + trial%3
		m := nil2model(t, randomDenseNet(rng, depth))
		cfg := scratchConfigs[trial%len(scratchConfigs)]
		inputs := make([][]float64, 5)
		for i := range inputs {
			in := make([]float64, m.Net.InLen)
			for j := range in {
				in[j] = rng.Float64()
			}
			inputs[i] = in
			got := m.InferWith(sc, in, cfg)
			sameResult(t, fmt.Sprintf("trial %d sample %d", trial, i), got, m.Infer(in, cfg))
		}
		batch := m.InferBatchWith(sc, inputs, cfg, nil)
		want := m.InferBatch(inputs, cfg, nil)
		for i := range batch {
			sameResult(t, fmt.Sprintf("trial %d batch %d", trial, i), batch[i], want[i])
		}
	}
}

func nil2model(t *testing.T, net *snn.Net) *Model {
	t.Helper()
	m, err := NewModel(net, 24, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInferWithZeroAllocs gates the tentpole claim: once the scratch and
// the model's scatter plan are warm, the single-sample hot path performs
// zero heap allocations.
func TestInferWithZeroAllocs(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	in := fixture.x.Data[:256]
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		cfg := cfg
		m.InferWith(sc, in, cfg) // warm plan + arenas
		if n := testing.AllocsPerRun(20, func() { m.InferWith(sc, in, cfg) }); n != 0 {
			t.Errorf("InferWith(earlyFire=%v) allocates %.1f/op, want 0", cfg.EarlyFire, n)
		}
	}
}

// TestInferBatchWithZeroAllocs is the batched gate: steady-state batches
// reuse every buffer, including the result slice itself.
func TestInferBatchWithZeroAllocs(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	inputs := make([][]float64, 8)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
	}
	cfg := RunConfig{EarlyFire: true}
	for i := 0; i < 3; i++ { // warm: plan, arenas, perOff lists
		m.InferBatchWith(sc, inputs, cfg, nil)
	}
	if n := testing.AllocsPerRun(20, func() { m.InferBatchWith(sc, inputs, cfg, nil) }); n != 0 {
		t.Errorf("InferBatchWith allocates %.1f/op, want 0", n)
	}
}

// BenchmarkInfer reports the single-sample hot path with and without a
// reused scratch (ns/op and allocs/op feed scripts/bench.sh).
func BenchmarkInfer(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	cfg := RunConfig{EarlyFire: true}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Infer(in, cfg)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := NewInferScratch(m)
		m.InferWith(sc, in, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.InferWith(sc, in, cfg)
		}
	})
}

// BenchmarkInferBatchScratch is BenchmarkInferBatch with a reused
// scratch — the serving layer's steady state.
func BenchmarkInferBatchScratch(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	for _, size := range []int{1, 8, 32} {
		inputs := make([][]float64, size)
		for i := range inputs {
			inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		}
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			sc := NewInferScratch(m)
			m.InferBatchWith(sc, inputs, RunConfig{EarlyFire: true}, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InferBatchWith(sc, inputs, RunConfig{EarlyFire: true}, nil)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
		})
	}
}
