package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// The event-driven and clocked engines must agree spike-for-spike on
// the trained fixture, for both pipelines.
func TestEventEngineAgreesOnFixture(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	for i := 0; i < 20; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		if err := m.VerifyEnginesEvent(in, RunConfig{}); err != nil {
			t.Fatalf("baseline sample %d: %v", i, err)
		}
		if err := m.VerifyEnginesEvent(in, RunConfig{EarlyFire: true}); err != nil {
			t.Fatalf("EF sample %d: %v", i, err)
		}
	}
}

// Property: equivalence holds across random kernels, inputs, and EF
// start times on the handcrafted network (which carries negative
// weights through its trained stages, exercising candidate
// invalidation on inhibitory arrivals).
func TestEventEngineAgreesProperty(t *testing.T) {
	net := tinyNet()
	// introduce inhibition so arrivals can push potentials back below
	// the threshold after a candidate was queued
	net.Stages[0].W.Data[5] = -0.7
	net.Stages[0].W.Data[9] = -0.4
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, err := NewModel(net, 10+r.Intn(50), r.Range(1, 12), r.Range(0, 2))
		if err != nil {
			return true
		}
		in := []float64{r.Float64(), r.Float64(), r.Float64()}
		cfg := RunConfig{}
		if r.Intn(2) == 0 {
			cfg = RunConfig{EarlyFire: true, EFStart: 1 + r.Intn(m.T)}
		}
		return m.VerifyEnginesEvent(in, cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// An inhibitory arrival landing exactly at a queued candidate step must
// cancel the fire (arrival-before-threshold ordering).
func TestEventEngineInhibitoryCancellation(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	// run many EF inferences; the fixture's conv weights include
	// negatives, so cancellations occur naturally — equivalence over
	// the whole eval set is the assertion
	for i := 20; i < 60; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		if err := m.VerifyEnginesEvent(in, RunConfig{EarlyFire: true, EFStart: m.T / 4}); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
}

// TestInferEventWithMatchesFresh pins scratch reuse on the event
// engine: one scratch carried across samples and configs (interleaved
// with clocked InferWith calls on the same scratch) stays bit-identical
// to nil-scratch InferEvent.
func TestInferEventWithMatchesFresh(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	for ci, cfg := range []RunConfig{{}, {EarlyFire: true}, {EarlyFire: true, EFStart: 13}, {CollectSpikeTimes: true}} {
		for i := 0; i < 6; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			got := m.InferEventWith(sc, in, cfg)
			sameResult(t, fmt.Sprintf("cfg %d sample %d", ci, i), got, m.InferEvent(in, cfg))
			// the clocked engine shares the scratch without interference
			clocked := m.InferWith(sc, in, cfg)
			sameResult(t, fmt.Sprintf("cfg %d sample %d clocked", ci, i), clocked, m.Infer(in, cfg))
		}
	}
}

// TestInferEventWithZeroAllocs gates the ROADMAP item: the event engine
// with a warm scratch allocates nothing per call.
func TestInferEventWithZeroAllocs(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sc := NewInferScratch(m)
	in := fixture.x.Data[:256]
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		cfg := cfg
		m.InferEventWith(sc, in, cfg) // warm plan + arenas + heap
		if n := testing.AllocsPerRun(20, func() { m.InferEventWith(sc, in, cfg) }); n != 0 {
			t.Errorf("InferEventWith(earlyFire=%v) allocates %.1f/op, want 0", cfg.EarlyFire, n)
		}
	}
}

func BenchmarkEngineEventBaseline(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InferEvent(in, RunConfig{})
	}
}

func BenchmarkEngineEventEF(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InferEvent(in, RunConfig{EarlyFire: true})
	}
}

func BenchmarkEngineClockedEF(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Infer(in, RunConfig{EarlyFire: true})
	}
}
