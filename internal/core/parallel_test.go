package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
)

// parallelInputs slices n fixture samples and attaches fault streams to
// the odd ones (mixed nil/faulted, like a real serving batch).
func parallelInputs(t testing.TB, n int, inj *fault.Injector) ([][]float64, []*fault.Stream) {
	t.Helper()
	loadFixture(t)
	inputs := make([][]float64, n)
	streams := make([]*fault.Stream, n)
	for i := range inputs {
		inputs[i] = fixture.x.Data[i*256 : (i+1)*256]
		if inj != nil && i%2 == 1 {
			streams[i] = inj.Sample(i)
		}
	}
	return inputs, streams
}

// TestInferBatchParallelMatchesSequential is the tentpole differential:
// the parallel path must be bit-identical to sequential InferBatch at
// every worker count — including counts above the chunk count and
// batches small enough to force sub-64 chunks — across pipeline
// variants, with per-sample fault streams active.
func TestInferBatchParallelMatchesSequential(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 7, Drop: 0.15, Jitter: 2, StuckSilent: 0.03, ThresholdNoise: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(ParallelOpts{Workers: workers})
		for _, n := range []int{1, 10, 32, 70, 130} {
			inputs, streams := parallelInputs(t, n, inj)
			for ci, cfg := range scratchConfigs {
				got := m.InferBatchParallel(p, inputs, cfg, streams)
				want := m.InferBatch(inputs, cfg, streams)
				if len(got) != len(want) {
					t.Fatalf("w=%d n=%d cfg %d: %d results, want %d", workers, n, ci, len(got), len(want))
				}
				for i := range got {
					sameResult(t, fmt.Sprintf("w=%d n=%d cfg %d sample %d", workers, n, ci, i), got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// TestInferBatchParallelMinChunksPerWorker checks the tuning knob cuts
// finer chunks without changing results.
func TestInferBatchParallelMinChunksPerWorker(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inputs, _ := parallelInputs(t, 96, nil)
	cfg := RunConfig{EarlyFire: true}
	want := m.InferBatch(inputs, cfg, nil)
	for _, mc := range []int{1, 2, 4} {
		p := NewPool(ParallelOpts{Workers: 3, MinChunksPerWorker: mc})
		got := m.InferBatchParallel(p, inputs, cfg, nil)
		for i := range got {
			sameResult(t, fmt.Sprintf("minChunks=%d sample %d", mc, i), got[i], want[i])
		}
		p.Close()
	}
}

// TestInferBatchParallelNilPool pins the nil-pool fallback to plain
// InferBatch (freshly allocated results).
func TestInferBatchParallelNilPool(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inputs, _ := parallelInputs(t, 5, nil)
	cfg := RunConfig{}
	got := m.InferBatchParallel(nil, inputs, cfg, nil)
	want := m.InferBatch(inputs, cfg, nil)
	for i := range got {
		sameResult(t, fmt.Sprintf("sample %d", i), got[i], want[i])
	}
}

// TestInferBatchParallelZeroAllocs gates the per-worker arena claim:
// once every worker's scratch is warm, a steady-state parallel batch —
// including the fan-out machinery itself — allocates nothing.
func TestInferBatchParallelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on multi-goroutine paths")
	}
	loadFixture(t)
	m := fixture.model()
	p := NewPool(ParallelOpts{Workers: 4})
	defer p.Close()
	inputs, _ := parallelInputs(t, 32, nil)
	cfg := RunConfig{EarlyFire: true}
	p.Warm(m, inputs, cfg) // deterministic: any worker can take any chunk
	for i := 0; i < 2; i++ {
		m.InferBatchParallel(p, inputs, cfg, nil)
	}
	if n := testing.AllocsPerRun(20, func() { m.InferBatchParallel(p, inputs, cfg, nil) }); n != 0 {
		t.Errorf("InferBatchParallel allocates %.1f/op, want 0", n)
	}
}

// TestPoolEach checks coverage, worker-index bounds, the chunk counter,
// and the nil/closed-pool sequential fallbacks.
func TestPoolEach(t *testing.T) {
	p := NewPool(ParallelOpts{Workers: 3})
	defer p.Close()
	out := make([]int, 25)
	var hits sync.Map
	p.Each(len(out), 4, func(lo, hi, w int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker index %d out of range", w)
		}
		hits.Store(lo, hi)
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("index %d not covered: %d", i, v)
		}
	}
	if got := p.Chunks(); got != 7 { // ceil(25/4)
		t.Errorf("Chunks() = %d, want 7", got)
	}

	var nilPool *Pool
	n := 0
	nilPool.Each(5, 2, func(lo, hi, w int) {
		if w != 0 {
			t.Errorf("nil pool worker = %d", w)
		}
		n += hi - lo
	})
	if n != 5 {
		t.Errorf("nil pool covered %d of 5", n)
	}

	closed := NewPool(ParallelOpts{Workers: 2})
	closed.Close()
	n = 0
	closed.Each(5, 2, func(lo, hi, w int) { n += hi - lo })
	if n != 5 {
		t.Errorf("closed pool covered %d of 5", n)
	}
}

// TestPoolPanicPropagates: a panic in one chunk cancels the call,
// reaches the caller, and leaves the pool usable.
func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(ParallelOpts{Workers: 2})
	defer p.Close()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic did not propagate")
			} else if fmt.Sprint(r) != "boom" {
				t.Errorf("unexpected panic value %v", r)
			}
		}()
		p.Each(10, 1, func(lo, hi, w int) {
			if lo == 3 {
				panic("boom")
			}
		})
	}()
	// pool still works after a panicked call
	n := 0
	var mu sync.Mutex
	p.Each(8, 2, func(lo, hi, w int) {
		mu.Lock()
		n += hi - lo
		mu.Unlock()
	})
	if n != 8 {
		t.Errorf("post-panic Each covered %d of 8", n)
	}
}

// TestInferBatchParallelStress is the -race stress: more workers than
// chunks, a single worker, and concurrent Each traffic on a shared pool
// interleaved with batch calls consumed under a caller lock (the serve
// engine pattern).
func TestInferBatchParallelStress(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	cfg := RunConfig{EarlyFire: true}
	inputs, _ := parallelInputs(t, 20, nil)
	want := m.InferBatch(inputs, cfg, nil)

	// Workers far above the chunk count: only some claim work.
	p8 := NewPool(ParallelOpts{Workers: 8})
	for trial := 0; trial < 20; trial++ {
		got := m.InferBatchParallel(p8, inputs, cfg, nil)
		for i := range got {
			sameResult(t, fmt.Sprintf("w8 trial %d sample %d", trial, i), got[i], want[i])
		}
	}
	p8.Close()

	// Workers = 1 runs on the caller's goroutine.
	p1 := NewPool(ParallelOpts{Workers: 1})
	got := m.InferBatchParallel(p1, inputs, cfg, nil)
	for i := range got {
		sameResult(t, fmt.Sprintf("w1 sample %d", i), got[i], want[i])
	}
	p1.Close()

	// Shared pool under concurrent callers: batch results consumed under
	// an external lock, Each results through disjoint slices.
	shared := NewPool(ParallelOpts{Workers: 4})
	defer shared.Close()
	var batchMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for trial := 0; trial < 5; trial++ {
				if g%2 == 0 {
					batchMu.Lock()
					rs := m.InferBatchParallel(shared, inputs, cfg, nil)
					for i := range rs {
						if rs[i].Pred != want[i].Pred {
							t.Errorf("g%d trial %d sample %d: pred %d, want %d", g, trial, i, rs[i].Pred, want[i].Pred)
						}
					}
					batchMu.Unlock()
				} else {
					sum := make([]int, 40)
					shared.Each(len(sum), 3, func(lo, hi, w int) {
						for i := lo; i < hi; i++ {
							sum[i] = i + g
						}
					})
					for i := range sum {
						if sum[i] != i+g {
							t.Errorf("g%d trial %d: Each index %d = %d", g, trial, i, sum[i])
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if shared.Chunks() == 0 {
		t.Error("shared pool dispatched no chunks")
	}
}

// TestEvaluatePoolMatchesSequential pins Evaluate's pool path against
// the sequential sweep, faults included.
func TestEvaluatePoolMatchesSequential(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	x, labels := fixture.x, fixture.labels
	inj, err := fault.New(fault.Config{Seed: 5, Drop: 0.1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	opts := EvalOptions{Run: RunConfig{EarlyFire: true}, CurveStride: 10, Faults: inj}
	want, err := Evaluate(m, x, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ParallelOpts{Workers: 4})
	defer pool.Close()
	opts.Pool = pool
	got, err := Evaluate(m, x, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Accuracy != want.Accuracy || got.Latency != want.Latency || got.AvgSpikes != want.AvgSpikes {
		t.Fatalf("pool sweep diverged: acc %v/%v latency %d/%d spikes %v/%v",
			got.Accuracy, want.Accuracy, got.Latency, want.Latency, got.AvgSpikes, want.AvgSpikes)
	}
	if len(got.Curve) != len(want.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(got.Curve), len(want.Curve))
	}
	for i := range got.Curve {
		if got.Curve[i] != want.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, got.Curve[i], want.Curve[i])
		}
	}
}

// BenchmarkInferBatchParallel sweeps worker counts over serving-sized
// batches; ns/sample at workers=1 vs N quantifies the parallel win
// (bounded by GOMAXPROCS — on a single-core host the counts tie).
func BenchmarkInferBatchParallel(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	cfg := RunConfig{EarlyFire: true}
	for _, workers := range []int{1, 2, 4} {
		for _, size := range []int{32, 128} {
			inputs, _ := parallelInputs(b, size, nil)
			b.Run(fmt.Sprintf("batch%d/workers%d", size, workers), func(b *testing.B) {
				p := NewPool(ParallelOpts{Workers: workers})
				defer p.Close()
				// Warm sizes every worker's arena for the whole batch (a
				// worker may claim any subset of chunks on a given call),
				// then one live call starts the goroutines.
				p.Warm(m, inputs, cfg)
				m.InferBatchParallel(p, inputs, cfg, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.InferBatchParallel(p, inputs, cfg, nil)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			})
		}
	}
}
