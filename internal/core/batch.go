package core

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/snn"
)

// maxChunk is the largest number of samples one batched pass handles:
// per-(offset, neuron) firing sets are tracked as 64-bit masks. Larger
// batches are processed in chunks; the amortization win saturates well
// below this.
const maxChunk = 64

// InferBatch runs a batch of inputs through the T2FSNN pipeline and
// returns one Result per input, each bit-identical to what
// Infer(inputs[i], cfg) with Faults=faults[i] would produce (pinned by
// TestInferBatchMatchesInfer).
//
// The win over per-sample Infer on the same core count is amortization,
// not parallelism: per-spike scatter address generation (the conv
// kernel index arithmetic that dominates Infer's profile) is computed
// once per fired neuron per model lifetime (the snn.ScatterPlan cached
// on the model) and replayed as a flat contribution-list sweep for
// every sample in which that neuron fired. Samples of the same class
// fire heavily overlapping neuron sets, so the address-generation cost
// — roughly half of a single inference — amortizes away entirely. This
// is what makes server-side micro-batching (internal/serve) pay on a
// single core.
//
// faults must be nil (no injection) or hold one per-sample stream entry
// (nil entries inject nothing); cfg.Faults must be nil — the batch
// variant takes per-sample streams explicitly.
//
// Deprecated: use InferMany with InferOpts{Faults: faults}.
func (m *Model) InferBatch(inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	return m.InferMany(inputs, cfg, InferOpts{Faults: faults})
}

// InferBatchWith is InferBatch against an explicit scratch arena: the
// working set and the returned results' Spikes/Potentials (and the
// result slice itself) come from sc, so the steady-state call allocates
// nothing (see InferScratch for the aliasing contract — results are
// valid until the next call reusing sc). A nil sc falls back to a fresh
// single-use scratch, making it exactly InferBatch.
//
// Deprecated: use InferMany with InferOpts{Scratch: sc, Faults: faults}.
func (m *Model) InferBatchWith(sc *InferScratch, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	return m.InferMany(inputs, cfg, InferOpts{Scratch: sc, Faults: faults})
}

// inferBatch is the sequential batched pipeline behind InferMany: chunk
// the inputs at the 64-sample mask width and run each chunk batched.
// Fault-stream and cfg.Faults validation already happened in InferMany.
func (m *Model) inferBatch(sc *InferScratch, inputs [][]float64, cfg RunConfig, faults []*fault.Stream) []Result {
	if sc == nil {
		sc = NewInferScratch(m)
	} else {
		sc.ensure(m)
	}
	sc.reset()
	res := sc.takeResults(len(inputs))
	for lo := 0; lo < len(inputs); lo += maxChunk {
		hi := lo + maxChunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		var fs []*fault.Stream
		if faults != nil {
			fs = faults[lo:hi]
		}
		sc.ensureBatch(hi - lo)
		m.inferChunk(sc, inputs[lo:hi], cfg, fs, res[lo:hi])
	}
	return res
}

// fireEntry records that input neuron Idx fired at some offset in the
// samples whose bits are set in Mask.
type fireEntry struct {
	Idx  int32
	Mask uint64
}

// inferChunk is the batched pipeline over at most maxChunk samples.
// Every per-sample floating-point operation happens in exactly the
// order Infer performs it, so results are bit-identical; only the
// bookkeeping around them is shared.
func (m *Model) inferChunk(sc *InferScratch, inputs [][]float64, cfg RunConfig, faults []*fault.Stream, res []Result) {
	b := len(inputs)
	if b == 0 {
		return
	}
	adv := cfg.advance(m.T)
	nStages := len(m.Net.Stages)
	stream := func(s int) *fault.Stream {
		if faults == nil {
			return nil
		}
		return faults[s]
	}

	// per-sample spike offsets at the current boundary (ping-pong bank 0)
	bank := 0
	times := sc.bankTimes(bank, b, m.Net.InLen)
	for s, input := range inputs {
		if len(input) != m.Net.InLen {
			panic(fmt.Sprintf("core: input length %d, want %d", len(input), m.Net.InLen))
		}
		res[s] = Result{
			Spikes:  sc.ints.take(nStages),
			Latency: (nStages-1)*adv + m.T,
		}
		if cfg.CollectSpikeTimes {
			res[s].SpikeTimes = make([][]int, nStages)
		}
		if cfg.CollectEvents {
			res[s].Events = make([][]SpikeEvent, nStages)
		}

		// input encoding: analytic per sample, exactly as in Infer
		ts := times[s]
		fired := 0
		for i, u := range input {
			t, ok := m.K[0].Encode(u)
			if ok {
				ts[i] = t
				fired++
			} else {
				ts[i] = -1
			}
		}
		if fs := stream(s); fs != nil {
			fired = fs.ApplyTTFS(0, ts, m.T)
		}
		res[s].Spikes[0] = fired
		if cfg.CollectSpikeTimes {
			res[s].SpikeTimes[0] = collectGlobal(ts, 0)
		}
		if cfg.CollectEvents {
			res[s].Events[0] = collectEvents(ts, 0)
		}
	}

	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		inK := m.K[si]
		windowStart := si * adv

		if st.Output {
			// The output stage is cheap (few neurons, no firing); reuse
			// the reference implementation per sample.
			for s := range inputs {
				m.runOutputStage(sc, st, si, inK, times[s], windowStart, adv, cfg, &res[s])
			}
			return
		}
		bank = 1 - bank
		outTimes := sc.bankTimes(bank, b, st.OutLen)
		m.runHiddenStageBatch(sc, st, inK, m.K[si+1], times, outTimes, adv, si, cfg, faults, res)
		times = outTimes
	}
}

// runHiddenStageBatch is the batched counterpart of runHiddenStage,
// writing each sample's new spike offsets into outTimes.
func (m *Model) runHiddenStageBatch(sc *InferScratch, st *snn.Stage, inK, outK kernel.Kernel, inTimes, outTimes [][]int, adv, si int, cfg RunConfig, faults []*fault.Stream, res []Result) {
	b := len(inTimes)
	dec := sc.decode(inK, m.T)
	plan := m.stagePlan(si)

	pots := sc.batchPots(b, st.OutLen)
	for s := 0; s < b; s++ {
		st.AddBias(pots[s])
	}

	// Group the chunk's spikes by offset. Iterating neurons in the outer
	// loop keeps every offset's entry list sorted by neuron index, so
	// each sample sees its arrivals in exactly bucketize order.
	perOff := sc.perOff[:m.T]
	for off := range perOff {
		perOff[off] = perOff[off][:0]
	}
	for idx := 0; idx < st.InLen; idx++ {
		for s := 0; s < b; s++ {
			t := inTimes[s][idx]
			if t < 0 || t >= m.T {
				continue
			}
			lst := perOff[t]
			if n := len(lst); n > 0 && lst[n-1].Idx == int32(idx) {
				lst[n-1].Mask |= 1 << uint(s)
			} else {
				perOff[t] = append(lst, fireEntry{Idx: int32(idx), Mask: 1 << uint(s)})
			}
		}
	}

	// Replay the model's cached scatter rows per sample; the plan is
	// built once per model lifetime, not per batch.
	apply := func(off int) {
		scale := dec[off]
		for _, e := range perOff[off] {
			key, div := st.RowKey(int(e.Idx))
			row := plan.Row(key)
			scl := scale / div
			for mask := e.Mask; mask != 0; mask &= mask - 1 {
				pot := pots[bits.TrailingZeros64(mask)]
				for _, c := range row {
					pot[c.J] += scl * c.W
				}
			}
		}
	}

	// Phase 1 — guaranteed integration (arrivals before the fire phase).
	for off := 0; off < adv && off < m.T; off++ {
		apply(off)
	}

	firedCount := sc.fired[:b]
	for s := 0; s < b; s++ {
		firedCount[s] = 0
		ot := outTimes[s]
		for i := range ot {
			ot[i] = -1
		}
	}

	// Phase 2 — fire phase with overlapping arrivals.
	for f := 0; f < m.T; f++ {
		if inOff := adv + f; inOff < m.T {
			apply(inOff)
		}
		thetaBase := outK.Threshold(float64(f))
		for s := 0; s < b; s++ {
			theta := thetaBase
			if faults != nil && faults[s] != nil {
				theta = faults[s].Threshold(si+1, f, theta)
			}
			ot := outTimes[s]
			for j, u := range pots[s] {
				if ot[j] < 0 && u >= theta {
					ot[j] = f
					firedCount[s]++
				}
			}
		}
	}

	for s := 0; s < b; s++ {
		if faults != nil && faults[s] != nil {
			firedCount[s] = faults[s].ApplyTTFS(si+1, outTimes[s], m.T)
		}
		r := &res[s]
		r.Spikes[si+1] = firedCount[s]
		r.TotalSpikes = 0
		for _, c := range r.Spikes {
			r.TotalSpikes += c
		}
		if cfg.CollectSpikeTimes {
			r.SpikeTimes[si+1] = collectGlobal(outTimes[s], (si+1)*adv)
		}
		if cfg.CollectEvents {
			r.Events[si+1] = collectEvents(outTimes[s], (si+1)*adv)
		}
	}
}
