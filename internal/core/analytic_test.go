package core

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// The analytic and clocked baseline engines must agree exactly: this is
// the central equivalence between Eq. 7's closed form and the dynamic-
// threshold clock of Eq. 6.
func TestEnginesAgreeOnFixture(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	for i := 0; i < 25; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		if err := m.VerifyEngines(in); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
}

// Property: engine equivalence holds for random kernels and inputs on
// the handcrafted network.
func TestEnginesAgreeProperty(t *testing.T) {
	net := tinyNet()
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, err := NewModel(net, 10+r.Intn(60), r.Range(0.8, 20), r.Range(0, 3))
		if err != nil {
			return true
		}
		in := []float64{r.Float64(), r.Float64(), r.Float64()}
		return m.VerifyEngines(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticLatencyMatchesClocked(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	in := []float64{0.5, 0.2, 0.9}
	if got, want := m.InferAnalytic(in).Latency, m.Infer(in, RunConfig{}).Latency; got != want {
		t.Fatalf("latency %d != clocked %d", got, want)
	}
}

func TestVerifyEnginesDetectsCorruption(t *testing.T) {
	// sanity: VerifyEngines must actually fail when the engines are fed
	// different models — emulate by perturbing a kernel between runs
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	in := []float64{0.5, 0.2, 0.9}
	clocked := m.Infer(in, RunConfig{})
	m.K[1].Tau *= 3
	analytic := m.InferAnalytic(in)
	same := clocked.TotalSpikes == analytic.TotalSpikes
	if same {
		// potentials must then differ; either way corruption is visible
		for j := range clocked.Potentials {
			if clocked.Potentials[j] != analytic.Potentials[j] {
				return
			}
		}
		t.Fatal("kernel perturbation invisible to both spike counts and potentials")
	}
}

func BenchmarkEngineClocked(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Infer(in, RunConfig{})
	}
}

func BenchmarkEngineAnalytic(b *testing.B) {
	loadFixture(b)
	m := fixture.model()
	in := fixture.x.Data[:256]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InferAnalytic(in)
	}
}

// Parallel evaluation must agree exactly with sequential evaluation —
// the model is read-only during inference.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	batch := tensor.FromSlice(fixture.x.Data[:60*256], 60, 256)
	seq, err := Evaluate(m, batch, fixture.labels[:60], EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(m, batch, fixture.labels[:60], EvalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Accuracy != par.Accuracy || seq.AvgSpikes != par.AvgSpikes {
		t.Fatalf("parallel eval diverged: acc %v/%v spikes %v/%v",
			seq.Accuracy, par.Accuracy, seq.AvgSpikes, par.AvgSpikes)
	}
	for b := range seq.SpikesPerStage {
		if seq.SpikesPerStage[b] != par.SpikesPerStage[b] {
			t.Fatalf("boundary %d differs", b)
		}
	}
}
