package core

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/tensor"
)

// With faults disabled the injection hooks must be invisible: a nil
// stream and a zero-config stream both reproduce the seed inference
// bit for bit (predictions, spike counts, spike times, potentials).
func TestInferFaultHooksAreNoOpWhenDisabled(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 123}) // all intensities zero
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []RunConfig{{}, {EarlyFire: true}} {
		cfg.CollectSpikeTimes = true
		for i := 0; i < 10; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			plain := m.Infer(in, cfg)
			faulted := cfg
			faulted.Faults = inj.Sample(i)
			if faulted.Faults == nil {
				t.Fatal("zero-config injector must still produce a stream (the hooks run)")
			}
			hooked := m.Infer(in, faulted)
			if plain.Pred != hooked.Pred || plain.TotalSpikes != hooked.TotalSpikes || plain.Latency != hooked.Latency {
				t.Fatalf("sample %d: zero-fault stream changed the result: pred %d/%d spikes %d/%d",
					i, plain.Pred, hooked.Pred, plain.TotalSpikes, hooked.TotalSpikes)
			}
			for j := range plain.Potentials {
				if plain.Potentials[j] != hooked.Potentials[j] {
					t.Fatalf("sample %d: potential %d differs: %v vs %v", i, j, plain.Potentials[j], hooked.Potentials[j])
				}
			}
			for b := range plain.SpikeTimes {
				if len(plain.SpikeTimes[b]) != len(hooked.SpikeTimes[b]) {
					t.Fatalf("sample %d boundary %d: spike count differs", i, b)
				}
				for k := range plain.SpikeTimes[b] {
					if plain.SpikeTimes[b][k] != hooked.SpikeTimes[b][k] {
						t.Fatalf("sample %d boundary %d: spike time %d differs", i, b, k)
					}
				}
			}
		}
	}
}

func evalSubset(t *testing.T, m *Model, n int, opts EvalOptions) EvalResult {
	t.Helper()
	x := tensor.FromSlice(fixture.x.Data[:n*256], n, 256)
	res, err := Evaluate(m, x, fixture.labels[:n], opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Fault streams are pure functions of (seed, sample), so a faulted
// evaluation must not depend on the worker count.
func TestEvaluateFaultedIndependentOfWorkers(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 7, Drop: 0.15, Jitter: 2, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	seq := evalSubset(t, m, 40, EvalOptions{Faults: inj})
	par := evalSubset(t, m, 40, EvalOptions{Faults: inj, Workers: 4})
	neg := evalSubset(t, m, 40, EvalOptions{Faults: inj, Workers: -1}) // default to GOMAXPROCS
	if seq.Accuracy != par.Accuracy || seq.AvgSpikes != par.AvgSpikes {
		t.Fatalf("worker count changed faulted result: %.4f/%.0f vs %.4f/%.0f",
			seq.Accuracy, seq.AvgSpikes, par.Accuracy, par.AvgSpikes)
	}
	if seq.Accuracy != neg.Accuracy || seq.AvgSpikes != neg.AvgSpikes {
		t.Fatalf("negative Workers changed faulted result")
	}
	// repeat run is bit-identical (seeded determinism)
	again := evalSubset(t, m, 40, EvalOptions{Faults: inj, Workers: 3})
	if seq.Accuracy != again.Accuracy || seq.AvgSpikes != again.AvgSpikes {
		t.Fatal("faulted evaluation not reproducible")
	}
}

// Dropping every spike must collapse TTFS to silence, not crash.
func TestEvaluateTotalDropCollapses(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	inj, err := fault.New(fault.Config{Seed: 1, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := evalSubset(t, m, 20, EvalOptions{Faults: inj})
	if res.AvgSpikes != 0 {
		t.Fatalf("drop=1 left %.1f spikes per sample", res.AvgSpikes)
	}
	clean := evalSubset(t, m, 20, EvalOptions{})
	if res.Accuracy >= clean.Accuracy {
		t.Fatalf("drop=1 accuracy %.2f not below clean %.2f", res.Accuracy, clean.Accuracy)
	}
}

// A panicking sample becomes an error record; the sweep survives and
// the sample counts as misclassified.
func TestEvaluateRecoversPanickingSamples(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	// sabotage a hidden stage's weights so Scatter indexes out of range
	broken := &Model{Net: fault.PerturbWeights(m.Net, 0.0001, 1), K: m.K, T: m.T} // deep-enough copy of stages
	st := &broken.Net.Stages[len(broken.Net.Stages)-1]
	st.W = tensor.FromSlice(append([]float64(nil), st.W.Data[:4]...), 4)
	res, err := Evaluate(broken, tensor.FromSlice(fixture.x.Data[:10*256], 10, 256),
		fixture.labels[:10], EvalOptions{Workers: 2})
	if err != nil {
		t.Fatalf("sweep died instead of recording sample errors: %v", err)
	}
	if len(res.Errors) != 10 {
		t.Fatalf("%d error records, want 10", len(res.Errors))
	}
	if res.Accuracy != 0 {
		t.Fatalf("failed samples counted as correct: accuracy %.2f", res.Accuracy)
	}
	if res.Errors[0].Index != 0 || res.Errors[0].Err == "" {
		t.Fatalf("malformed error record: %+v", res.Errors[0])
	}
}

func TestEvaluateContextCancellation(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	x := tensor.FromSlice(fixture.x.Data[:10*256], 10, 256)
	if _, err := EvaluateContext(ctx, m, x, fixture.labels[:10], EvalOptions{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if _, err := EvaluateContext(ctx, m, x, fixture.labels[:10], EvalOptions{Workers: 4}); err == nil {
		t.Fatal("cancelled context accepted (parallel path)")
	}
}

// Workers larger than the sample count must clamp, not leak goroutines
// or misbehave.
func TestEvaluateWorkerClamp(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	res := evalSubset(t, m, 3, EvalOptions{Workers: 64})
	if res.N != 3 {
		t.Fatalf("N = %d, want 3", res.N)
	}
	seq := evalSubset(t, m, 3, EvalOptions{})
	if res.Accuracy != seq.Accuracy {
		t.Fatal("clamped parallel run differs from sequential")
	}
}
