package core

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// CurvePoint is one point of an accuracy-versus-time-step inference
// curve (paper Fig. 6). It is the shared metrics.CurvePoint: the TTFS
// core and the baseline codings produce the same curve type, so
// experiment code can mix them without copy-conversion.
type CurvePoint = metrics.CurvePoint

// StageSpikeStats aggregates the spike timing of one fire boundary
// across an evaluation set (paper Fig. 5).
type StageSpikeStats struct {
	Name       string
	Times      []int // global spike times of every spike observed
	FirstSpike int   // earliest global spike time (-1 if silent)
	Count      int
}

// Histogram bins the stage's spike times into nbins bins over
// [lo, hi] and returns counts and edges.
func (s *StageSpikeStats) Histogram(lo, hi, nbins int) (counts []int, edges []float64) {
	vals := make([]float64, len(s.Times))
	for i, t := range s.Times {
		vals[i] = float64(t)
	}
	if len(vals) == 0 {
		return make([]int, nbins), nil
	}
	return tensor.Histogram(vals, float64(lo), float64(hi), nbins)
}

// SampleError records one sample whose inference panicked. The sweep
// survives; the sample counts as misclassified.
type SampleError struct {
	Index int
	Err   string
}

// EvalResult aggregates an evaluation run over a labelled set.
type EvalResult struct {
	Accuracy float64
	// Latency is the maximum per-sample latency observed.
	Latency        int
	AvgSpikes      float64 // mean spikes per sample, all boundaries
	SpikesPerStage []float64
	Curve          []CurvePoint
	StageStats     []StageSpikeStats
	// Confusion breaks the accuracy down per class.
	Confusion *metrics.Confusion
	N         int
	// Errors lists samples whose inference panicked (recovered); they
	// are excluded from spike/latency aggregates and counted as
	// misclassified.
	Errors []SampleError
}

// EvalOptions controls Evaluate.
type EvalOptions struct {
	Run RunConfig
	// CurveStride samples the accuracy curve every CurveStride global
	// steps (0 disables the curve).
	CurveStride int
	// CollectStats enables the per-stage spike-time statistics.
	CollectStats bool
	// Workers runs samples concurrently (Infer only reads the model,
	// so a Model is safe to share). 0 or 1 = sequential; negative =
	// one worker per GOMAXPROCS; values above the sample count clamp.
	// Ignored when Pool is set.
	Workers int
	// Pool runs the sweep on a shared worker pool with chunk-granularity
	// work stealing instead of spinning up per-call goroutines. Results
	// are identical either way: samples are aggregated in order after
	// all inferences finish. Overrides Workers when non-nil.
	Pool *Pool
	// Faults evaluates under fault injection: sample i runs with the
	// stream Faults.Sample(i). Streams are pure functions of
	// (seed, sample), so the result is identical at any worker count.
	Faults *fault.Injector
	// Engine selects the inference kernel per sample (clocked, event, or
	// fixed-point quant) — every engine produces the same Result shape,
	// so aggregation is engine-agnostic.
	Engine EngineKind
}

// Evaluate runs the model over a batch X of shape [N, ...] with labels,
// aggregating accuracy, spikes, latency, the inference curve, and
// per-stage spike statistics.
func Evaluate(m *Model, x *tensor.Tensor, labels []int, opts EvalOptions) (EvalResult, error) {
	return EvaluateContext(context.Background(), m, x, labels, opts)
}

// EvaluateContext is Evaluate with cancellation: it stops dispatching
// samples once ctx is done (in-flight inferences finish first) and
// returns ctx.Err(). Long sweeps — large horizons, fault grids — use it
// to respect deadlines instead of running to completion.
func EvaluateContext(ctx context.Context, m *Model, x *tensor.Tensor, labels []int, opts EvalOptions) (EvalResult, error) {
	n := x.Shape[0]
	if n != len(labels) {
		return EvalResult{}, fmt.Errorf("core: %d samples with %d labels", n, len(labels))
	}
	sampleLen := x.Len() / n
	if sampleLen != m.Net.InLen {
		return EvalResult{}, fmt.Errorf("core: sample length %d, model expects %d", sampleLen, m.Net.InLen)
	}
	run := opts.Run
	run.CollectTimeline = run.CollectTimeline || opts.CurveStride > 0
	run.CollectSpikeTimes = run.CollectSpikeTimes || opts.CollectStats

	nB := len(m.Net.Stages) // fire boundaries
	res := EvalResult{N: n, SpikesPerStage: make([]float64, nB)}
	if opts.CollectStats {
		res.StageStats = make([]StageSpikeStats, nB)
		for i := range res.StageStats {
			res.StageStats[i].FirstSpike = -1
			if i == 0 {
				res.StageStats[i].Name = "Input"
			} else {
				res.StageStats[i].Name = m.Net.Stages[i-1].Name
			}
		}
	}

	classes := m.Net.Stages[len(m.Net.Stages)-1].OutLen
	conf, err := metrics.NewConfusion(classes)
	if err != nil {
		return EvalResult{}, fmt.Errorf("core: %w", err)
	}
	res.Confusion = conf

	// run all inferences (optionally across workers; Infer only reads
	// the shared model), then aggregate deterministically in order
	results := make([]Result, n)
	errs := make([]error, n)
	inferOne := func(i int) {
		defer func() {
			// a faulted or malformed sample becomes an error record, not
			// a crashed sweep
			if p := recover(); p != nil {
				errs[i] = fmt.Errorf("core: sample %d: panic: %v", i, p)
			}
		}()
		cfg := run
		cfg.Faults = opts.Faults.Sample(i)
		results[i] = m.InferOne(x.Data[i*sampleLen:(i+1)*sampleLen], cfg, InferOpts{Engine: opts.Engine})
	}
	pool := opts.Pool
	if pool == nil {
		workers := opts.Workers
		if workers < 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > n {
			workers = n
		}
		if workers > 1 {
			// ad-hoc pool for this call; chunk claiming replaces the old
			// per-sample channel feed
			tmp := NewPool(ParallelOpts{Workers: workers})
			defer tmp.Close()
			pool = tmp
		}
	}
	if pool.Workers() > 1 {
		pool.Each(n, evalChunk(n, pool.Workers()), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				inferOne(i)
			}
		})
	} else {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			inferOne(i)
		}
	}
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}

	correct := 0
	ok := 0
	totalSpikes := 0.0
	var timelines [][]TimedPred
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			res.Errors = append(res.Errors, SampleError{Index: i, Err: errs[i].Error()})
			res.Confusion.Add(labels[i], -1)
			if opts.CurveStride > 0 {
				timelines = append(timelines, nil)
			}
			continue
		}
		ok++
		r := results[i]
		if r.Latency > res.Latency {
			res.Latency = r.Latency
		}
		res.Confusion.Add(labels[i], r.Pred)
		if r.Pred == labels[i] {
			correct++
		}
		totalSpikes += float64(r.TotalSpikes)
		for b, s := range r.Spikes {
			res.SpikesPerStage[b] += float64(s)
		}
		if opts.CollectStats {
			for b, ts := range r.SpikeTimes {
				st := &res.StageStats[b]
				st.Times = append(st.Times, ts...)
				st.Count += len(ts)
				for _, t := range ts {
					if st.FirstSpike < 0 || t < st.FirstSpike {
						st.FirstSpike = t
					}
				}
			}
		}
		if opts.CurveStride > 0 {
			timelines = append(timelines, r.Timeline)
		}
	}
	res.Accuracy = float64(correct) / float64(n)
	if ok > 0 {
		res.AvgSpikes = totalSpikes / float64(ok)
		for b := range res.SpikesPerStage {
			res.SpikesPerStage[b] /= float64(ok)
		}
	}

	if opts.CurveStride > 0 {
		for step := 0; step <= res.Latency; step += opts.CurveStride {
			hit := 0
			for i, tl := range timelines {
				if tl != nil && predAt(tl, step) == labels[i] {
					hit++
				}
			}
			res.Curve = append(res.Curve, CurvePoint{Step: step, Accuracy: float64(hit) / float64(n)})
		}
	}
	return res, nil
}

func predAt(tl []TimedPred, step int) int {
	pred := -1
	for _, tp := range tl {
		if tp.Step > step {
			break
		}
		pred = tp.Pred
	}
	return pred
}

// MeanAbsDiff is a helper reporting the mean absolute difference between
// the model's final output potentials and a reference logit vector; the
// equivalence tests use it to bound TTFS transmission error.
func MeanAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("core: MeanAbsDiff length mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}
