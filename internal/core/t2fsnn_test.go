package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/convert"
	"repro/internal/dnn"
	"repro/internal/kernel"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// tinyNet builds a handcrafted 2-stage dense network (3 -> 4 -> 2) with
// fixed weights for exact-value tests.
func tinyNet() *snn.Net {
	w1 := tensor.FromSlice([]float64{
		0.5, 0.2, 0.1, 0.3,
		0.1, 0.4, 0.2, 0.1,
		0.2, 0.1, 0.5, 0.2,
	}, 3, 4)
	b1 := tensor.New(4)
	w2 := tensor.FromSlice([]float64{
		0.6, 0.1,
		0.2, 0.5,
		0.1, 0.4,
		0.3, 0.2,
	}, 4, 2)
	b2 := tensor.FromSlice([]float64{0.05, -0.05}, 2)
	return &snn.Net{
		Name: "tiny", InShape: []int{3}, InLen: 3,
		Stages: []snn.Stage{
			{Name: "h", Kind: snn.DenseStage, W: w1, B: b1, InLen: 3, OutLen: 4},
			{Name: "out", Kind: snn.DenseStage, W: w2, B: b2, InLen: 4, OutLen: 2, Output: true},
		},
	}
}

// trainedFixture converts a small trained LeNet once and shares it.
var fixture struct {
	once   sync.Once
	model  func() *Model // fresh model over the shared net
	res    *convert.Result
	x      *tensor.Tensor
	labels []int
	inputs []float64 // calibration pixels for GO
}

func loadFixture(t testing.TB) {
	t.Helper()
	fixture.once.Do(func() {
		rng := tensor.NewRNG(21)
		cfg := dnn.ArchConfig{InC: 1, InH: 16, InW: 16, Classes: 10, FCWidth: 32, BatchNorm: true, Pool: dnn.AvgPool}
		net := dnn.BuildLeNet(cfg, rng)
		n := 300
		x := tensor.New(n, 1, 16, 16)
		labels := make([]int, n)
		r := tensor.NewRNG(22)
		for i := 0; i < n; i++ {
			cls := i % 10
			labels[i] = cls
			cx, cy := 2+(cls%5)*3, 2+(cls/5)*8
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					x.Data[i*256+(cy+dy)*16+cx+dx] = tensor.Clamp(0.8+0.2*r.Norm(), 0, 1)
				}
			}
			for j := 0; j < 256; j++ {
				x.Data[i*256+j] = tensor.Clamp(x.Data[i*256+j]+0.05*r.Norm(), 0, 1)
			}
		}
		dnn.Train(net, x, labels, dnn.TrainConfig{
			Epochs: 3, BatchSize: 25, Optimizer: dnn.NewAdam(2e-3, 0), RNG: tensor.NewRNG(23)})
		res, err := convert.Convert(net, convert.Options{Calibration: x})
		if err != nil {
			panic(err)
		}
		fixture.res = res
		fixture.x = x
		fixture.labels = labels
		fixture.inputs = x.Data[:256*100]
		fixture.model = func() *Model {
			m, err := NewModel(res.Net, 80, 20, 0)
			if err != nil {
				panic(err)
			}
			return m
		}
	})
}

func TestNewModelValidation(t *testing.T) {
	net := tinyNet()
	if _, err := NewModel(net, 20, -1, 0); err == nil {
		t.Fatal("negative τ accepted")
	}
	m, err := NewModel(net, 20, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.K) != 2 {
		t.Fatalf("kernel count = %d, want 2", len(m.K))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.K[1].T = 10
	if err := m.Validate(); err == nil {
		t.Fatal("mismatched kernel window accepted")
	}
}

func TestBaselineLatency(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	r := m.Infer([]float64{0.5, 0.5, 0.5}, RunConfig{})
	// 2 stages: latency = L·T = 40
	if r.Latency != 40 {
		t.Fatalf("baseline latency = %d, want 40", r.Latency)
	}
}

func TestEarlyFiringLatency(t *testing.T) {
	m, _ := NewModel(tinyNet(), 20, 5, 0)
	r := m.Infer([]float64{0.5, 0.5, 0.5}, RunConfig{EarlyFire: true})
	// (L-1)·T/2 + T = 10 + 20 = 30
	if r.Latency != 30 {
		t.Fatalf("EF latency = %d, want 30", r.Latency)
	}
	r2 := m.Infer([]float64{0.5, 0.5, 0.5}, RunConfig{EarlyFire: true, EFStart: 5})
	if r2.Latency != 25 {
		t.Fatalf("EF(5) latency = %d, want 25", r2.Latency)
	}
}

// Paper VGG-16 sanity: 16 stages, T=80 -> 1280 baseline, 680 with EF.
func TestPaperLatencyNumbers(t *testing.T) {
	cfg := RunConfig{}
	if got := (16-1)*cfg.advance(80) + 80; got != 1280 {
		t.Fatalf("baseline VGG-16 latency = %d, want 1280", got)
	}
	ef := RunConfig{EarlyFire: true}
	if got := (16-1)*ef.advance(80) + 80; got != 680 {
		t.Fatalf("EF VGG-16 latency = %d, want 680", got)
	}
}

// The baseline clocked fire phase must agree exactly with the analytic
// encode of the fully integrated potential (guaranteed integration).
func TestBaselineMatchesAnalyticEncode(t *testing.T) {
	net := tinyNet()
	m, _ := NewModel(net, 40, 8, 0)
	in := []float64{0.9, 0.3, 0.6}
	r := m.Infer(in, RunConfig{CollectSpikeTimes: true})

	// decode input spikes analytically
	decoded := make([]float64, 3)
	for i, u := range in {
		if tt, ok := m.K[0].Encode(u); ok {
			decoded[i] = m.K[0].Decode(tt)
		}
	}
	pot := net.Stages[0].Forward(decoded)
	wantSpikes := 0
	for _, u := range pot {
		if _, ok := m.K[1].Encode(u); ok {
			wantSpikes++
		}
	}
	if r.Spikes[1] != wantSpikes {
		t.Fatalf("hidden spikes = %d, analytic %d", r.Spikes[1], wantSpikes)
	}
	// spike times must match the analytic encode, offset by the window base T
	want := map[int]bool{}
	for _, u := range pot {
		if tt, ok := m.K[1].Encode(u); ok {
			want[40+tt] = true
		}
	}
	for _, gt := range r.SpikeTimes[1] {
		if !want[gt] {
			t.Fatalf("unexpected spike time %d (want one of %v)", gt, want)
		}
	}
}

// EF with EFStart = T must be identical to the baseline pipeline.
func TestEFWithFullWindowEqualsBaseline(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	for i := 0; i < 10; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		a := m.Infer(in, RunConfig{})
		b := m.Infer(in, RunConfig{EarlyFire: true, EFStart: m.T})
		if a.Pred != b.Pred || a.TotalSpikes != b.TotalSpikes {
			t.Fatalf("sample %d: EF(T) differs from baseline: pred %d/%d spikes %d/%d",
				i, a.Pred, b.Pred, a.TotalSpikes, b.TotalSpikes)
		}
	}
}

// Invariant: at most one spike per neuron, for any pipeline variant.
func TestAtMostOneSpikePerNeuronProperty(t *testing.T) {
	net := tinyNet()
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, err := NewModel(net, 10+r.Intn(40), r.Range(1, 15), r.Range(0, 2))
		if err != nil {
			return true
		}
		in := []float64{r.Float64(), r.Float64(), r.Float64()}
		cfg := RunConfig{EarlyFire: r.Intn(2) == 0, EFStart: 1 + r.Intn(m.T), CollectSpikeTimes: true}
		res := m.Infer(in, cfg)
		if res.Spikes[0] > 3 || res.Spikes[1] > 4 {
			return false // more spikes than neurons
		}
		return len(res.SpikeTimes[0]) == res.Spikes[0] && len(res.SpikeTimes[1]) == res.Spikes[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The T2FSNN potentials at the output must approximate the converted
// ANN's clipped reference logits within the kernels' precision error.
func TestOutputPotentialsApproximateReference(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	worst := 0.0
	for i := 0; i < 20; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		r := m.Infer(in, RunConfig{})
		ref := convert.ReferenceForward(fixture.res.Net, append([]float64(nil), in...), true)
		if d := MeanAbsDiff(r.Potentials, ref); d > worst {
			worst = d
		}
	}
	// τ=20 -> per-hop relative error ≈ 5%; allow accumulated slack
	if worst > 0.25 {
		t.Fatalf("output potentials deviate from reference by %v", worst)
	}
}

// Baseline T2FSNN classification must be close to the converted ANN.
func TestBaselineAccuracyNearReference(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	n := 100
	agree := 0
	for i := 0; i < n; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		r := m.Infer(in, RunConfig{})
		ref := convert.ReferenceForward(fixture.res.Net, append([]float64(nil), in...), true)
		if r.Pred == argmax(ref) {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.85 {
		t.Fatalf("T2FSNN agrees with reference on only %.0f%%", 100*frac)
	}
}

func TestEarlyFiringKeepsAccuracy(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	n := 100
	base, ef := 0, 0
	for i := 0; i < n; i++ {
		in := fixture.x.Data[i*256 : (i+1)*256]
		if m.Infer(in, RunConfig{}).Pred == fixture.labels[i] {
			base++
		}
		if m.Infer(in, RunConfig{EarlyFire: true}).Pred == fixture.labels[i] {
			ef++
		}
	}
	if float64(ef) < 0.85*float64(base) {
		t.Fatalf("early firing degraded accuracy too much: %d vs %d", ef, base)
	}
}

func TestApplyGOShiftsSpikesEarlier(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	in := fixture.x.Data[:256]
	before := m.Infer(in, RunConfig{CollectSpikeTimes: true})

	_, err := m.ApplyGO(fixture.inputs, fixture.res.Activations, kernel.OptimizeConfig{
		LRTau: 2, LRTd: 0.5, BatchSize: 512, Epochs: 2, RNG: tensor.NewRNG(31)})
	if err != nil {
		t.Fatal(err)
	}
	after := m.Infer(in, RunConfig{CollectSpikeTimes: true})

	// Fig. 5 behaviour: GO shortens (or at worst barely moves) the first
	// spike time of hidden layers while not inflating the spike count.
	// On this small fixture the exact shift depends on the activation
	// distribution, so the assertion bounds the movement rather than
	// demanding strict improvement.
	firstBefore := minOf(before.SpikeTimes[1])
	firstAfter := minOf(after.SpikeTimes[1])
	if firstAfter > firstBefore+m.T/16 {
		t.Fatalf("GO delayed the first spike: %d -> %d", firstBefore, firstAfter)
	}
	if float64(after.TotalSpikes) > 1.05*float64(before.TotalSpikes) {
		t.Fatalf("GO inflated spikes: %d -> %d", before.TotalSpikes, after.TotalSpikes)
	}
}

func TestApplyGOPreservesAccuracy(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	n := 100
	acc := func() int {
		hit := 0
		for i := 0; i < n; i++ {
			in := fixture.x.Data[i*256 : (i+1)*256]
			if m.Infer(in, RunConfig{}).Pred == fixture.labels[i] {
				hit++
			}
		}
		return hit
	}
	before := acc()
	if _, err := m.ApplyGO(fixture.inputs, fixture.res.Activations, kernel.OptimizeConfig{
		LRTau: 1, LRTd: 0.2, BatchSize: 512, Epochs: 1, RNG: tensor.NewRNG(32)}); err != nil {
		t.Fatal(err)
	}
	after := acc()
	if after < before-10 {
		t.Fatalf("GO collapsed accuracy: %d -> %d of %d", before, after, n)
	}
}

func TestTimelineAndPredAt(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	in := fixture.x.Data[:256]
	r := m.Infer(in, RunConfig{CollectTimeline: true})
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	if r.PredAt(-1) != -1 {
		t.Fatal("PredAt before any information should be -1")
	}
	if got := r.PredAt(r.Latency); got != r.Pred {
		t.Fatalf("PredAt(latency) = %d, final pred = %d", got, r.Pred)
	}
	// timeline steps must be within the output window
	for _, tp := range r.Timeline {
		if tp.Step < 0 || tp.Step > r.Latency {
			t.Fatalf("timeline step %d outside [0,%d]", tp.Step, r.Latency)
		}
	}
}

func TestEvaluateAggregates(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	sub := fixture.x.Reshape(300, 256)
	x50 := tensor.FromSlice(sub.Data[:50*256], 50, 256)
	res, err := Evaluate(m, x50, fixture.labels[:50], EvalOptions{
		Run: RunConfig{}, CurveStride: 40, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 50 || res.Accuracy < 0.3 {
		t.Fatalf("Evaluate: N=%d acc=%.2f", res.N, res.Accuracy)
	}
	if res.AvgSpikes <= 0 || res.AvgSpikes > float64(m.Net.InLen+m.Net.NumNeurons()) {
		t.Fatalf("implausible spike count %v", res.AvgSpikes)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve points")
	}
	// curve must end at final accuracy
	if last := res.Curve[len(res.Curve)-1]; last.Accuracy != res.Accuracy {
		t.Fatalf("curve end %.3f != accuracy %.3f", last.Accuracy, res.Accuracy)
	}
	// curve accuracy is (weakly) increasing overall: end >= start
	if res.Curve[0].Accuracy > res.Accuracy {
		t.Fatal("curve starts above final accuracy")
	}
	if len(res.StageStats) != 4 {
		t.Fatalf("stage stats = %d, want 4", len(res.StageStats))
	}
	if res.StageStats[0].Name != "Input" {
		t.Fatalf("boundary 0 name = %s", res.StageStats[0].Name)
	}
}

func TestEvaluateErrors(t *testing.T) {
	loadFixture(t)
	m := fixture.model()
	x := tensor.New(2, 256)
	if _, err := Evaluate(m, x, []int{0}, EvalOptions{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	bad := tensor.New(2, 100)
	if _, err := Evaluate(m, bad, []int{0, 1}, EvalOptions{}); err == nil {
		t.Fatal("wrong sample length accepted")
	}
}

func minOf(xs []int) int {
	if len(xs) == 0 {
		return 1 << 30
	}
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}
