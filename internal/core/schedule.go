package core

import (
	"fmt"
	"strings"
)

// PhaseWindow is one layer's integration or fire phase in global time.
type PhaseWindow struct {
	Layer      int // 1-based layer index (weight stages)
	Start, End int // [Start, End) in global steps
}

// Schedule is the pipeline timing of Fig. 3: per layer, when it
// integrates and when it fires, for the baseline (advance = T) or
// early-firing (advance = EFStart) pipeline.
type Schedule struct {
	Layers      int
	T           int
	Advance     int
	Integration []PhaseWindow
	Fire        []PhaseWindow
	Latency     int
}

// BuildSchedule computes the paper's Fig. 3 timing for a model under a
// pipeline configuration. Layer k's integration window opens when its
// input starts firing (global step (k−1)·advance) and spans T steps;
// its own fire window opens advance steps later. The output layer
// integrates but never fires.
func (m *Model) BuildSchedule(cfg RunConfig) Schedule {
	adv := cfg.advance(m.T)
	L := len(m.Net.Stages)
	s := Schedule{Layers: L, T: m.T, Advance: adv, Latency: (L-1)*adv + m.T}
	for k := 1; k <= L; k++ {
		intStart := (k - 1) * adv
		s.Integration = append(s.Integration, PhaseWindow{Layer: k, Start: intStart, End: intStart + m.T})
		if k < L {
			s.Fire = append(s.Fire, PhaseWindow{Layer: k, Start: intStart + adv, End: intStart + adv + m.T})
		}
	}
	return s
}

// Overlap reports how many steps of layer k's fire phase overlap its
// own integration phase (0 in the baseline pipeline; T−advance with
// early firing — the non-guaranteed integration region of §III-C).
func (s Schedule) Overlap() int {
	o := s.T - s.Advance
	if o < 0 {
		return 0
	}
	return o
}

// Render draws the schedule as a text Gantt chart in the style of the
// paper's Fig. 3, one row per layer ('i' integration, 'f' fire, 'x'
// overlapped integration+fire).
func (s Schedule) Render(colsPerStep float64) string {
	if colsPerStep <= 0 {
		colsPerStep = 0.5
	}
	width := int(float64(s.Latency)*colsPerStep) + 1
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %d layers, T=%d, advance=%d, latency=%d (overlap %d)\n",
		s.Layers, s.T, s.Advance, s.Latency, s.Overlap())
	for k := 1; k <= s.Layers; k++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		mark := func(w PhaseWindow, ch byte) {
			for t := w.Start; t < w.End; t++ {
				c := int(float64(t) * colsPerStep)
				if c >= width {
					break
				}
				if row[c] != '.' && row[c] != ch {
					row[c] = 'x'
				} else {
					row[c] = ch
				}
			}
		}
		mark(s.Integration[k-1], 'i')
		if k < s.Layers {
			mark(s.Fire[k-1], 'f')
		}
		fmt.Fprintf(&b, "L%-3d %s\n", k, row)
	}
	return b.String()
}
