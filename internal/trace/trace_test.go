package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

func TestAddGrowsHorizon(t *testing.T) {
	var tr Trace
	tr.Add("a", 0, 5)
	if tr.Horizon != 6 {
		t.Fatalf("horizon = %d, want 6", tr.Horizon)
	}
	tr.Add("a", 1, 2)
	if tr.Horizon != 6 {
		t.Fatal("horizon must not shrink")
	}
}

func TestGroupsDeterministicOrder(t *testing.T) {
	var tr Trace
	tr.Add("zeta", 0, 0)
	tr.Add("alpha", 0, 0)
	g := tr.Groups()
	if len(g) != 2 || g[0] != "alpha" || g[1] != "zeta" {
		t.Fatalf("groups = %v", g)
	}
}

func TestCountAndSize(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"a": 10}}
	tr.Add("a", 3, 1)
	tr.Add("a", 4, 2)
	tr.Add("b", 7, 1)
	if tr.Count("a") != 2 || tr.Count("b") != 1 {
		t.Fatal("counts wrong")
	}
	if tr.size("a") != 10 {
		t.Fatal("explicit size ignored")
	}
	if tr.size("b") != 8 { // inferred: max index 7 + 1
		t.Fatalf("inferred size = %d, want 8", tr.size("b"))
	}
}

func TestRasterRendering(t *testing.T) {
	var tr Trace
	tr.Add("layer", 0, 0)
	tr.Add("layer", 2, 4)
	out := tr.Raster("layer", 10, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 neuron rows
		t.Fatalf("raster rows = %d:\n%s", len(lines), out)
	}
	if lines[1][0] != '|' {
		t.Fatalf("neuron 0 spike missing:\n%s", out)
	}
	if lines[3][4] != '|' {
		t.Fatalf("neuron 2 spike at t=4 missing:\n%s", out)
	}
	if !strings.Contains(lines[0], "2 spikes") {
		t.Fatalf("header wrong: %s", lines[0])
	}
}

func TestRasterSubsampling(t *testing.T) {
	var tr Trace
	for i := 0; i < 100; i++ {
		tr.Add("big", i, i)
	}
	out := tr.Raster("big", 10, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines)-1 > 10 {
		t.Fatalf("raster not row-subsampled: %d rows", len(lines)-1)
	}
	if len(lines[1]) > 20 {
		t.Fatalf("raster not column-binned: %d cols", len(lines[1]))
	}
}

func TestRasterEmptyGroup(t *testing.T) {
	var tr Trace
	if !strings.Contains(tr.Raster("none", 5, 5), "no spikes") {
		t.Fatal("empty raster should say so")
	}
}

func TestWriteVCDStructure(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"conv-1": 3}}
	tr.Add("conv-1", 1, 2)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "1ns", 16); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module conv_1 $end", // sanitized name
		"$var wire 1",
		"$enddefinitions $end",
		"#0",
		"#2", // spike time
		"#3", // pulse low
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// one high and one low transition for the spike
	if strings.Count(out, "\n1") != 1 {
		t.Fatalf("expected exactly one rising edge:\n%s", out)
	}
}

func TestWriteVCDTruncatesWires(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"huge": 1000}}
	tr.Add("huge", 999, 1) // beyond the wire cap: silently dropped
	tr.Add("huge", 1, 1)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "$var wire"); got != 8 {
		t.Fatalf("wire count = %d, want capped 8", got)
	}
	if strings.Count(out, "\n1") != 1 {
		t.Fatal("truncated neuron's spike should be dropped")
	}
}

func TestVCDUniqueIdentifiers(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"a": 200}}
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 200); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "$var wire 1 ") {
			parts := strings.Fields(line)
			id := parts[3]
			if ids[id] {
				t.Fatalf("duplicate VCD identifier %q", id)
			}
			ids[id] = true
		}
	}
	if len(ids) != 200 {
		t.Fatalf("got %d identifiers", len(ids))
	}
}

func TestFromResultEndToEnd(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Infer(fx.X.Data[:256], core.RunConfig{EarlyFire: true, CollectEvents: true})
	tr := FromResult(m, r)
	if tr.Count("Input") != r.Spikes[0] {
		t.Fatalf("input events %d != spikes %d", tr.Count("Input"), r.Spikes[0])
	}
	total := 0
	for _, g := range tr.Groups() {
		total += tr.Count(g)
	}
	if total != r.TotalSpikes {
		t.Fatalf("trace has %d events, inference reported %d spikes", total, r.TotalSpikes)
	}
	if tr.Horizon < r.Latency {
		t.Fatalf("horizon %d below latency %d", tr.Horizon, r.Latency)
	}
	// VCD export of a real trace must succeed
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "1us", 32); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty VCD")
	}
	// raster of the first conv layer shows activity
	if !strings.Contains(tr.Raster("Conv1", 20, 60), "|") {
		t.Fatal("raster shows no spikes for an active layer")
	}
}

// Distinct group names must never share one VCD module identifier:
// "conv.1" and "conv_1" both sanitize to "conv_1", which silently merges
// two scopes in the dump. The writer must disambiguate on collision.
func TestWriteVCDScopeCollision(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"conv.1": 1, "conv_1": 1}}
	tr.Add("conv.1", 0, 1)
	tr.Add("conv_1", 0, 2)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 4); err != nil {
		t.Fatal(err)
	}
	scopes := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "$scope module ") {
			name := strings.Fields(line)[2]
			if scopes[name] {
				t.Fatalf("duplicate $scope name %q:\n%s", name, buf.String())
			}
			scopes[name] = true
		}
	}
	if len(scopes) != 2 {
		t.Fatalf("want 2 distinct scopes, got %d", len(scopes))
	}
}

// VCD identifiers must not start with a digit; a group like "3x3" needs
// a prefix, not a verbatim copy.
func TestWriteVCDLeadingDigit(t *testing.T) {
	var tr Trace
	tr.Add("3x3", 0, 1)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 4); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "$scope module ") {
			name := strings.Fields(line)[2]
			if name[0] >= '0' && name[0] <= '9' {
				t.Fatalf("scope %q starts with a digit", name)
			}
		}
	}
}

// A negative event time must not surface as a "#-1" timestamp (VCD
// viewers reject negative times); Add clamps it to step 0.
func TestAddNegativeTimeClamped(t *testing.T) {
	var tr Trace
	tr.Add("g", 0, -1)
	if tr.Horizon < 1 {
		t.Fatalf("horizon = %d, want clamped event to grow it", tr.Horizon)
	}
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 4); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#-") {
		t.Fatalf("negative timestamp leaked into VCD:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "\n1") {
		t.Fatal("clamped spike should still appear")
	}
}

// Back-to-back spikes on one wire put a fall (closing the first pulse)
// and a rise (opening the second) at the same timestamp; the fall must
// be emitted first or a viewer, keeping the last value per timestamp,
// erases the second pulse. Events are added out of time order to ensure
// the ordering comes from the sort, not from insertion order.
func TestWriteVCDBackToBackSpikes(t *testing.T) {
	tr := Trace{GroupSizes: map[string]int{"g": 1}}
	tr.Add("g", 0, 5) // second spike added first
	tr.Add("g", 0, 4)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "", 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// locate the #5 timestamp block: it must read fall then rise
	at5 := strings.Index(out, "\n#5\n")
	if at5 < 0 {
		t.Fatalf("no #5 timestamp:\n%s", out)
	}
	block := out[at5+4:]
	if end := strings.Index(block, "#"); end >= 0 {
		block = block[:end]
	}
	lines := strings.Split(strings.TrimSpace(block), "\n")
	if len(lines) != 2 || lines[0][0] != '0' || lines[1][0] != '1' {
		t.Fatalf("at #5 want fall then rise, got %q", lines)
	}
	if strings.Count(out, "\n1") != 2 {
		t.Fatalf("want both pulses to survive:\n%s", out)
	}
}
