// Package trace records spike activity as hardware-style waveforms: a
// Recorder captures per-neuron spike events from a T2FSNN inference, a
// Raster renders them as terminal art, and WriteVCD emits an IEEE 1364
// Value Change Dump viewable in GTKWave — the natural debug format for
// a DAC-paper spiking accelerator model.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one spike: neuron Neuron of signal group Group fired at Time.
type Event struct {
	Group  string
	Neuron int
	Time   int
}

// Trace is an ordered collection of spike events plus the horizon they
// were observed over.
type Trace struct {
	Events  []Event
	Horizon int
	// GroupSizes maps each group to its neuron count (for raster and
	// VCD scoping); optional, inferred from events when absent.
	GroupSizes map[string]int
}

// Add appends an event, growing the horizon as needed. Negative times
// are clamped to step 0: VCD has no notion of time before zero, and a
// "#-1" timestamp makes viewers reject the whole dump.
func (t *Trace) Add(group string, neuron, time int) {
	if time < 0 {
		time = 0
	}
	t.Events = append(t.Events, Event{Group: group, Neuron: neuron, Time: time})
	if time >= t.Horizon {
		t.Horizon = time + 1
	}
}

// Groups returns the group names in deterministic order.
func (t *Trace) Groups() []string {
	seen := map[string]bool{}
	for _, e := range t.Events {
		seen[e.Group] = true
	}
	for g := range t.GroupSizes {
		seen[g] = true
	}
	var out []string
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// size returns the neuron count of a group.
func (t *Trace) size(group string) int {
	if n, ok := t.GroupSizes[group]; ok {
		return n
	}
	maxIdx := -1
	for _, e := range t.Events {
		if e.Group == group && e.Neuron > maxIdx {
			maxIdx = e.Neuron
		}
	}
	return maxIdx + 1
}

// Count returns the number of events in a group.
func (t *Trace) Count(group string) int {
	n := 0
	for _, e := range t.Events {
		if e.Group == group {
			n++
		}
	}
	return n
}

// Raster renders one group as a neuron×time spike raster (rows =
// neurons, columns = time bins). Large groups subsample rows; time is
// binned to fit width columns.
func (t *Trace) Raster(group string, maxRows, width int) string {
	n := t.size(group)
	if n == 0 || t.Horizon == 0 {
		return fmt.Sprintf("%s: no spikes\n", group)
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	if width <= 0 {
		width = 80
	}
	rows := n
	rowStep := 1
	if rows > maxRows {
		rowStep = (n + maxRows - 1) / maxRows
		rows = (n + rowStep - 1) / rowStep
	}
	colStep := 1
	cols := t.Horizon
	if cols > width {
		colStep = (t.Horizon + width - 1) / width
		cols = (t.Horizon + colStep - 1) / colStep
	}
	grid := make([][]bool, rows)
	for i := range grid {
		grid[i] = make([]bool, cols)
	}
	for _, e := range t.Events {
		if e.Group != group {
			continue
		}
		r, c := e.Neuron/rowStep, e.Time/colStep
		if r < rows && c < cols {
			grid[r][c] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d neurons × %d steps (%d spikes)\n", group, n, t.Horizon, t.Count(group))
	for _, row := range grid {
		for _, v := range row {
			if v {
				b.WriteByte('|')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteVCD emits the trace as a Value Change Dump. Each group becomes a
// scope; each neuron a 1-bit wire that pulses high for one timestep per
// spike. Groups larger than maxWires per group are truncated (hardware
// viewers choke on tens of thousands of signals); a summary wire count
// is chosen per group.
func (t *Trace) WriteVCD(w io.Writer, timescale string, maxWires int) error {
	if timescale == "" {
		timescale = "1us"
	}
	if maxWires <= 0 {
		maxWires = 64
	}
	if _, err := fmt.Fprintf(w, "$date\n  t2fsnn trace\n$end\n$timescale %s $end\n", timescale); err != nil {
		return err
	}
	// identifier allocation: VCD id chars from '!' (33) to '~' (126)
	nextID := 0
	idFor := func(n int) string {
		var sb strings.Builder
		n++
		for n > 0 {
			n--
			sb.WriteByte(byte(33 + n%94))
			n /= 94
		}
		return sb.String()
	}
	type wire struct {
		id     string
		group  string
		neuron int
	}
	var wires []wire
	index := map[string]map[int]string{}
	scopeNames := scopeNames(t.Groups())
	for _, g := range t.Groups() {
		if _, err := fmt.Fprintf(w, "$scope module %s $end\n", scopeNames[g]); err != nil {
			return err
		}
		index[g] = map[int]string{}
		count := t.size(g)
		if count > maxWires {
			count = maxWires
		}
		for i := 0; i < count; i++ {
			id := idFor(nextID)
			nextID++
			wires = append(wires, wire{id: id, group: g, neuron: i})
			index[g][i] = id
			if _, err := fmt.Fprintf(w, "$var wire 1 %s n%d $end\n", id, i); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "$upscope $end"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "$enddefinitions $end"); err != nil {
		return err
	}
	// initial values
	if _, err := fmt.Fprintln(w, "#0"); err != nil {
		return err
	}
	for _, wi := range wires {
		if _, err := fmt.Fprintf(w, "0%s\n", wi.id); err != nil {
			return err
		}
	}
	// changes: each spike pulses high at its step and low at step+1
	type change struct {
		time int
		val  byte
		id   string
	}
	var changes []change
	for _, e := range t.Events {
		id, ok := index[e.Group][e.Neuron]
		if !ok {
			continue // truncated wire
		}
		changes = append(changes, change{e.Time, '1', id}, change{e.Time + 1, '0', id})
	}
	// At equal timestamps, falls ('0') must precede rises ('1'):
	// back-to-back spikes on one wire emit a fall (from step t) and a
	// rise (at step t+1) at the same timestamp, and a viewer keeps only
	// the last value per wire per timestamp — rise-then-fall would erase
	// the second pulse. Sorting by time alone left the order at the mercy
	// of Events ordering.
	sort.SliceStable(changes, func(i, j int) bool {
		if changes[i].time != changes[j].time {
			return changes[i].time < changes[j].time
		}
		return changes[i].val < changes[j].val
	})
	last := -1
	for _, c := range changes {
		if c.time != last {
			if _, err := fmt.Fprintf(w, "#%d\n", c.time); err != nil {
				return err
			}
			last = c.time
		}
		if _, err := fmt.Fprintf(w, "%c%s\n", c.val, c.id); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", t.Horizon+1)
	return err
}

// sanitize makes a group name a legal VCD module identifier: illegal
// runes become '_', a leading digit gets a '_' prefix (VCD identifiers
// may not start with a digit), and an empty name becomes "_".
func sanitize(s string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "_" + out
	}
	return out
}

// scopeNames assigns each group a unique sanitized module name.
// Sanitizing is lossy ("conv.1" and "conv_1" both map to "conv_1"), so
// collisions get a deterministic "_2", "_3", ... suffix in the given
// group order.
func scopeNames(groups []string) map[string]string {
	names := make(map[string]string, len(groups))
	taken := make(map[string]bool, len(groups))
	for _, g := range groups {
		name := sanitize(g)
		if taken[name] {
			for i := 2; ; i++ {
				cand := fmt.Sprintf("%s_%d", name, i)
				if !taken[cand] {
					name = cand
					break
				}
			}
		}
		taken[name] = true
		names[g] = name
	}
	return names
}
