package trace

import (
	"repro/internal/core"
)

// FromResult builds a Trace from a T2FSNN inference run with
// CollectEvents enabled: boundary 0 becomes group "Input" and boundary
// i the name of stage i−1, with group sizes taken from the network so
// silent neurons still appear in rasters and VCD scopes.
func FromResult(m *core.Model, r core.Result) *Trace {
	t := &Trace{GroupSizes: map[string]int{}, Horizon: r.Latency}
	t.GroupSizes["Input"] = m.Net.InLen
	for i := range m.Net.Stages {
		if !m.Net.Stages[i].Output {
			t.GroupSizes[m.Net.Stages[i].Name] = m.Net.Stages[i].OutLen
		}
	}
	for b, events := range r.Events {
		group := "Input"
		if b > 0 {
			group = m.Net.Stages[b-1].Name
		}
		for _, e := range events {
			t.Add(group, e.Neuron, e.Time)
		}
	}
	if r.Latency > t.Horizon {
		t.Horizon = r.Latency
	}
	return t
}
