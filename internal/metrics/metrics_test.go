package metrics

import (
	"strings"
	"testing"
)

func TestConfusionAccuracy(t *testing.T) {
	c := mustConfusion(t, 3)
	c.AddAll([]int{0, 1, 2, 0}, []int{0, 1, 1, 0})
	if got := c.Accuracy(); got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if c.Total != 4 {
		t.Fatalf("Total = %d", c.Total)
	}
}

func TestConfusionNoDecisionCountsAsError(t *testing.T) {
	c := mustConfusion(t, 2)
	c.Add(1, -1) // no decision
	if c.Accuracy() != 0 {
		t.Fatal("no-decision must not count as correct")
	}
	if c.Total != 1 {
		t.Fatal("no-decision must count toward the total")
	}
}

func TestConfusionRecallPrecision(t *testing.T) {
	c := mustConfusion(t, 2)
	// class 0: 3 examples, 2 recalled; class 1: 1 example, predicted 0
	c.AddAll([]int{0, 0, 0, 1}, []int{0, 0, 1, 0})
	if got := c.Recall(0); got != 2.0/3.0 {
		t.Fatalf("Recall(0) = %v", got)
	}
	if got := c.Precision(0); got != 2.0/3.0 {
		t.Fatalf("Precision(0) = %v", got)
	}
	if got := c.Recall(1); got != 0 {
		t.Fatalf("Recall(1) = %v", got)
	}
	// empty class behaviour
	e := mustConfusion(t, 3)
	if e.Recall(2) != 0 || e.Precision(2) != 0 || e.Accuracy() != 0 {
		t.Fatal("empty confusion should report zeros")
	}
}

func TestMostConfused(t *testing.T) {
	c := mustConfusion(t, 3)
	for i := 0; i < 5; i++ {
		c.Add(2, 0)
	}
	c.Add(1, 2)
	ti, pj, n := c.MostConfused()
	if ti != 2 || pj != 0 || n != 5 {
		t.Fatalf("MostConfused = (%d,%d,%d)", ti, pj, n)
	}
}

func TestConfusionStringSmallAndLarge(t *testing.T) {
	small := mustConfusion(t, 2)
	small.Add(0, 0)
	if !strings.Contains(small.String(), "true\\pred") {
		t.Fatal("small matrix should render full grid")
	}
	big := mustConfusion(t, 100)
	big.Add(3, 7)
	if !strings.Contains(big.String(), "worst confusion 3->7") {
		t.Fatalf("large matrix summary wrong: %s", big.String())
	}
}

func TestNewConfusionRejectsBadCounts(t *testing.T) {
	for _, classes := range []int{0, -1} {
		if c, err := NewConfusion(classes); err == nil || c != nil {
			t.Fatalf("NewConfusion(%d) = (%v, %v), want error", classes, c, err)
		}
	}
}

func TestConfusionPanics(t *testing.T) {
	func() {
		defer expectPanic(t)
		mustConfusion(t, 2).Add(5, 0)
	}()
	func() {
		defer expectPanic(t)
		mustConfusion(t, 2).AddAll([]int{0}, []int{0, 1})
	}()
}

func TestTopK(t *testing.T) {
	scores := [][]float64{
		{0.1, 0.9, 0.0}, // label 1: rank 0
		{0.5, 0.4, 0.3}, // label 2: rank 2
	}
	labels := []int{1, 2}
	if got := TopK(scores, labels, 1); got != 0.5 {
		t.Fatalf("Top1 = %v", got)
	}
	if got := TopK(scores, labels, 3); got != 1 {
		t.Fatalf("Top3 = %v", got)
	}
	// tie at a lower index outranks the label
	tie := [][]float64{{0.5, 0.5}}
	if got := TopK(tie, []int{1}, 1); got != 0 {
		t.Fatalf("tie-break Top1 = %v, want 0 (lower index wins)", got)
	}
	if TopK(nil, nil, 1) != 0 {
		t.Fatal("empty TopK should be 0")
	}
}

func mustConfusion(t *testing.T, classes int) *Confusion {
	t.Helper()
	c, err := NewConfusion(classes)
	if err != nil {
		t.Fatalf("NewConfusion(%d): %v", classes, err)
	}
	return c
}

func expectPanic(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Fatal("expected panic")
	}
}
