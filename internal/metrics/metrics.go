// Package metrics provides classification quality measures shared by
// the DNN and SNN evaluation paths: confusion matrices, per-class
// accuracy/precision/recall, and top-k accuracy. The experiment reports
// use it to break down where conversion and TTFS transmission lose
// accuracy.
package metrics

import (
	"fmt"
	"strings"
)

// CurvePoint is one point of an accuracy-versus-time-step inference
// curve (paper Fig. 6). It is the shared curve representation of the
// TTFS core (internal/core) and the baseline codings (internal/coding).
type CurvePoint struct {
	Step     int
	Accuracy float64
}

// Confusion is a square confusion matrix: Counts[true][pred].
type Confusion struct {
	Classes int
	Counts  [][]int
	Total   int
}

// NewConfusion allocates a matrix for the given class count. A
// non-positive class count is a caller bug, but it typically arrives
// from config or a loaded model, so it is reported as an error rather
// than a panic.
func NewConfusion(classes int) (*Confusion, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("metrics: non-positive class count %d", classes)
	}
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c, nil
}

// Add records one (true label, prediction) pair. Out-of-range
// predictions (e.g. -1 for "no decision yet") count as errors against
// no predicted class.
func (c *Confusion) Add(label, pred int) {
	if label < 0 || label >= c.Classes {
		panic(fmt.Sprintf("metrics: label %d out of range [0,%d)", label, c.Classes))
	}
	c.Total++
	if pred >= 0 && pred < c.Classes {
		c.Counts[label][pred]++
	}
}

// AddAll records aligned label/prediction slices.
func (c *Confusion) AddAll(labels, preds []int) {
	if len(labels) != len(preds) {
		panic(fmt.Sprintf("metrics: %d labels vs %d predictions", len(labels), len(preds)))
	}
	for i := range labels {
		c.Add(labels[i], preds[i])
	}
}

// Accuracy returns the overall fraction correct.
func (c *Confusion) Accuracy() float64 {
	if c.Total == 0 {
		return 0
	}
	hit := 0
	for i := 0; i < c.Classes; i++ {
		hit += c.Counts[i][i]
	}
	return float64(hit) / float64(c.Total)
}

// Recall returns the per-class recall (diagonal over row sum); classes
// with no examples report 0.
func (c *Confusion) Recall(class int) float64 {
	row := c.Counts[class]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[class]) / float64(total)
}

// Precision returns the per-class precision (diagonal over column sum);
// classes never predicted report 0.
func (c *Confusion) Precision(class int) float64 {
	total := 0
	for i := 0; i < c.Classes; i++ {
		total += c.Counts[i][class]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// MostConfused returns the off-diagonal cell with the highest count, as
// (true, predicted, count); ties resolve to the first encountered.
func (c *Confusion) MostConfused() (trueClass, predClass, count int) {
	trueClass, predClass = -1, -1
	for i := 0; i < c.Classes; i++ {
		for j := 0; j < c.Classes; j++ {
			if i != j && c.Counts[i][j] > count {
				trueClass, predClass, count = i, j, c.Counts[i][j]
			}
		}
	}
	return trueClass, predClass, count
}

// String renders the matrix with row/column headers (capped at 20
// classes to stay terminal-friendly; larger matrices render a summary).
func (c *Confusion) String() string {
	var b strings.Builder
	if c.Classes > 20 {
		ti, pj, n := c.MostConfused()
		fmt.Fprintf(&b, "confusion %dx%d: accuracy %.2f%%, worst confusion %d->%d (%d times)\n",
			c.Classes, c.Classes, 100*c.Accuracy(), ti, pj, n)
		return b.String()
	}
	b.WriteString("true\\pred")
	for j := 0; j < c.Classes; j++ {
		fmt.Fprintf(&b, "%5d", j)
	}
	b.WriteString("\n")
	for i := 0; i < c.Classes; i++ {
		fmt.Fprintf(&b, "%9d", i)
		for j := 0; j < c.Classes; j++ {
			fmt.Fprintf(&b, "%5d", c.Counts[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TopK returns the fraction of rows whose label appears in the k
// largest entries of the corresponding score row (ties broken by lower
// index first, matching ArgMax semantics).
func TopK(scores [][]float64, labels []int, k int) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d score rows vs %d labels", len(scores), len(labels)))
	}
	if len(scores) == 0 {
		return 0
	}
	hit := 0
	for r, row := range scores {
		if k >= len(row) {
			hit++
			continue
		}
		label := labels[r]
		// count entries strictly greater than the label's score, and
		// ties at lower indices
		ls := row[label]
		rank := 0
		for j, v := range row {
			if v > ls || (v == ls && j < label) {
				rank++
			}
		}
		if rank < k {
			hit++
		}
	}
	return float64(hit) / float64(len(scores))
}
