package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubEngine is a controllable Engine for scheduler tests: entry can be
// observed, execution can be gated, and every batch is recorded.
type stubEngine struct {
	inLen   int
	classes int
	enter   chan struct{} // when non-nil, receives one token per InferBatch entry
	release chan struct{} // when non-nil, InferBatch blocks until a token arrives

	mu         sync.Mutex
	batchSizes []int
	seen       []float64 // input[0] of every sample executed
}

func newStubEngine() *stubEngine { return &stubEngine{inLen: 4, classes: 3} }

func (e *stubEngine) InLen() int   { return e.inLen }
func (e *stubEngine) Classes() int { return e.classes }

func (e *stubEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	if e.enter != nil {
		e.enter <- struct{}{}
	}
	if e.release != nil {
		<-e.release
	}
	e.mu.Lock()
	e.batchSizes = append(e.batchSizes, len(inputs))
	for _, in := range inputs {
		e.seen = append(e.seen, in[0])
	}
	e.mu.Unlock()
	preds := make([]Prediction, len(inputs))
	for i, in := range inputs {
		preds[i] = Prediction{
			Pred:        int(in[0]) % e.classes,
			Latency:     5,
			TotalSpikes: 10,
			Potentials:  []float64{in[0], 0, 0},
		}
	}
	return preds
}

func (e *stubEngine) sawInput(v float64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.seen {
		if s == v {
			return true
		}
	}
	return false
}

func input(v float64) []float64 { return []float64{v, 0, 0, 0} }

// The dispatcher must coalesce queued requests into one engine call up
// to MaxBatch while a worker is busy.
func TestSchedulerFormsBatches(t *testing.T) {
	eng := newStubEngine()
	eng.enter = make(chan struct{}, 4)
	eng.release = make(chan struct{}, 4)
	s := New(eng, Options{MaxBatch: 8, MaxWait: time.Second, Workers: 1})
	defer s.Close()

	var wg sync.WaitGroup
	infer := func(v float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer(context.Background(), input(v), -1, -1); err != nil {
				t.Errorf("Infer(%v): %v", v, err)
			}
		}()
	}
	// First request occupies the only worker...
	infer(0)
	<-eng.enter
	// ...so the next eight coalesce in the dispatcher into one batch.
	for i := 1; i <= 8; i++ {
		infer(float64(i))
	}
	eng.release <- struct{}{} // finish batch 1
	eng.release <- struct{}{} // run batch 2
	<-eng.enter
	wg.Wait()

	eng.mu.Lock()
	sizes := append([]int(nil), eng.batchSizes...)
	eng.mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 8 {
		t.Fatalf("batch sizes = %v, want [1 8]", sizes)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != 9 || snap.BatchSizeHist[8] != 1 {
		t.Fatalf("metrics: completed %d, hist[8] %d", snap.Completed, snap.BatchSizeHist[8])
	}
}

// A full queue must reject fast with ErrOverloaded, and every accepted
// request must still complete once the engine unblocks.
func TestBackpressure(t *testing.T) {
	eng := newStubEngine()
	eng.release = make(chan struct{})
	s := New(eng, Options{MaxBatch: 1, MaxWait: time.Millisecond, QueueSize: 2, Workers: 1})

	const n = 10
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Infer(context.Background(), input(float64(i)), -1, -1)
			errs <- err
		}(i)
	}
	// Wait until the scheduler has absorbed all it can (1 in the engine,
	// 1 parked in the dispatcher, QueueSize queued), then let everything
	// finish.
	deadline := time.After(5 * time.Second)
	for {
		snap := s.Metrics().Snapshot()
		if snap.Accepted+snap.Rejected == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("requests did not settle: %+v", snap)
		case <-time.After(time.Millisecond):
		}
	}
	close(eng.release)
	wg.Wait()
	close(errs)

	ok, overloaded := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if overloaded == 0 {
		t.Fatal("no request was rejected by the bounded queue")
	}
	if ok+overloaded != n {
		t.Fatalf("ok %d + overloaded %d != %d", ok, overloaded, n)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != uint64(ok) || snap.Rejected != uint64(overloaded) {
		t.Fatalf("metrics disagree: %+v vs ok=%d overloaded=%d", snap, ok, overloaded)
	}
	s.Close()
}

// A request whose deadline expires while its batch is still queued (or
// executing) must return context.DeadlineExceeded without waiting for
// the batch; a request already expired at dispatch must not cost engine
// time.
func TestDeadlineExpiry(t *testing.T) {
	eng := newStubEngine()
	eng.enter = make(chan struct{}, 4)
	eng.release = make(chan struct{}, 4)
	s := New(eng, Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 1})
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Infer(context.Background(), input(1), -1, -1); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-eng.enter // engine now busy; the worker is occupied

	// Expires while queued behind the running batch.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Infer(ctx, input(2), -1, -1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request: err = %v, want DeadlineExceeded", err)
	}

	// Already canceled when its batch reaches the worker: dropped before
	// the engine call.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Infer(canceled, input(99), -1, -1); !errors.Is(err, context.Canceled) {
			t.Errorf("canceled request: err = %v, want Canceled", err)
		}
	}()

	eng.release <- struct{}{} // finish the blocker
	eng.release <- struct{}{} // run whatever was queued behind it
	eng.release <- struct{}{}
	wg.Wait()
	s.Close()
	if eng.sawInput(99) {
		t.Fatal("engine executed a request that was canceled before dispatch")
	}
	if snap := s.Metrics().Snapshot(); snap.Expired < 2 {
		t.Fatalf("expired = %d, want >= 2", snap.Expired)
	}
}

// Close must drain: every accepted request gets its result, and
// requests submitted after Close fail with ErrClosed.
func TestShutdownDrain(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 4, MaxWait: 5 * time.Millisecond, Workers: 2})

	const n = 20
	results := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Infer(context.Background(), input(float64(i)), -1, -1)
			results <- err
		}(i)
	}
	// Wait for every request to be accepted or rejected, then close.
	deadline := time.After(5 * time.Second)
	for {
		snap := s.Metrics().Snapshot()
		if snap.Accepted+snap.Rejected == n {
			break
		}
		select {
		case <-deadline:
			t.Fatal("requests did not settle before Close")
		case <-time.After(time.Millisecond):
		}
	}
	s.Close()
	wg.Wait()
	close(results)

	for err := range results {
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("drained request failed: %v", err)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed+snap.Rejected != n {
		t.Fatalf("completed %d + rejected %d != %d", snap.Completed, snap.Rejected, n)
	}
	if _, err := s.Infer(context.Background(), input(0), -1, -1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Infer: err = %v, want ErrClosed", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() false after Close")
	}
}

func TestInferValidatesInputLength(t *testing.T) {
	s := New(newStubEngine(), Options{})
	defer s.Close()
	if _, err := s.Infer(context.Background(), []float64{1}, -1, -1); err == nil {
		t.Fatal("short input accepted")
	}
}

// The HTTP layer under concurrent clients: correct codes, correct
// payloads, coherent metrics. Run with -race this doubles as the
// concurrency soak.
func TestHTTPConcurrentClients(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 8, MaxWait: time.Millisecond, Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients, perClient = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				v := c*perClient + r
				label := v % 3
				body, _ := json.Marshal(InferRequest{Input: input(float64(v)), Label: &label})
				resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var out InferResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d, err %v", c, resp.StatusCode, err)
					return
				}
				if out.Pred != v%3 {
					t.Errorf("pred %d, want %d", out.Pred, v%3)
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Completed != clients*perClient {
		t.Fatalf("completed %d, want %d", snap.Completed, clients*perClient)
	}
	// Every stub prediction is input%3 and every label was set to the
	// same value, so the live confusion matrix must report 100%.
	if snap.LabeledTotal != clients*perClient || snap.Accuracy != 1 {
		t.Fatalf("labeled %d acc %v, want %d and 1", snap.LabeledTotal, snap.Accuracy, clients*perClient)
	}
	if snap.TotalSpikes != clients*perClient*10 {
		t.Fatalf("spikes %d", snap.TotalSpikes)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := get("/v1/infer"); got != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer = %d", got)
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Fatalf("bad json = %d", got)
	}
	if got := post(`{"input":[1,2]}`); got != http.StatusBadRequest {
		t.Fatalf("short input = %d", got)
	}
	if got := post(`{"input":[1,2,3,4]}`); got != http.StatusOK {
		t.Fatalf("good input = %d", got)
	}

	s.Close()
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d", got)
	}
	if got := post(`{"input":[1,2,3,4]}`); got != http.StatusServiceUnavailable {
		t.Fatalf("infer after Close = %d", got)
	}
}

// Defaults must be filled in and visible through Options().
func TestOptionDefaults(t *testing.T) {
	s := New(newStubEngine(), Options{})
	defer s.Close()
	o := s.Options()
	if o.MaxBatch != 16 || o.MaxWait != 2*time.Millisecond || o.QueueSize != 128 || o.Workers < 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

// An engine panic must fail the batch's requests, not the process.
func TestEnginePanicIsContained(t *testing.T) {
	s := New(panicEngine{}, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	_, err := s.Infer(context.Background(), []float64{1, 2, 3, 4}, -1, -1)
	if err == nil || !strings.Contains(err.Error(), "engine panic") {
		t.Fatalf("err = %v, want engine panic error", err)
	}
	// The server must still serve afterwards.
	snap := s.Metrics().Snapshot()
	if snap.Failed != 1 {
		t.Fatalf("failed = %d, want 1", snap.Failed)
	}
}

type panicEngine struct{}

func (panicEngine) InLen() int   { return 4 }
func (panicEngine) Classes() int { return 2 }
func (panicEngine) InferBatch([][]float64, []int) []Prediction {
	panic("boom")
}

// slowEngine answers correctly but takes a fixed wall time per batch —
// long enough that tight deadlines reliably expire mid-flight.
type slowEngine struct {
	stubEngine
	delay time.Duration
}

func (e *slowEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	time.Sleep(e.delay)
	return e.stubEngine.InferBatch(inputs, samples)
}

// The accounting identity accepted = completed + expired + failed must
// hold *exactly* under a storm of mixed deadlines — including requests
// dead on arrival, expired in the queue, expired mid-batch, and the
// race where a result is delivered in the same instant the deadline
// fires (the old code could count one request as both completed and
// expired).
func TestMetricsAccountingIdentity(t *testing.T) {
	eng := &slowEngine{stubEngine: stubEngine{inLen: 4, classes: 3}, delay: 2 * time.Millisecond}
	s := New(eng, Options{MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 8, Workers: 2})

	const n = 300
	var wg sync.WaitGroup
	var attempts, rejected atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 4 {
			case 1: // deadline close to the engine's batch time: races
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 2*time.Millisecond)
				defer cancel()
			case 2: // hopeless deadline: expires queued or mid-batch
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
				defer cancel()
			case 3: // dead on arrival
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			}
			attempts.Add(1)
			_, err := s.Infer(ctx, input(float64(i)), -1, -1)
			if errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("identity broken: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
	if snap.Accepted+snap.Rejected != uint64(attempts.Load()) {
		t.Fatalf("accepted %d + rejected %d != attempts %d",
			snap.Accepted, snap.Rejected, attempts.Load())
	}
	if snap.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected metric %d != observed %d", snap.Rejected, rejected.Load())
	}
}

// When the worker's result and the context deadline are ready in the
// same select, Infer must prefer the delivered result (it is real,
// already-counted work) instead of discarding it and double-counting
// the request as expired. Engineered by firing the cancel and the
// engine release together, many times.
func TestInferPrefersDeliveredResultOnDeadlineRace(t *testing.T) {
	eng := newStubEngine()
	eng.enter = make(chan struct{}, 1)
	eng.release = make(chan struct{}, 1)
	s := New(eng, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1})

	const rounds = 60
	completions := 0
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := s.Infer(ctx, input(float64(i)), -1, -1)
			done <- err
		}()
		<-eng.enter // the batch is in the engine
		// Fire both: the result lands on req.done at the same time the
		// context dies. Either outcome is legal; double counting is not.
		eng.release <- struct{}{}
		cancel()
		if err := <-done; err == nil {
			completions++
		}
	}
	s.Close()

	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("identity broken after %d raced rounds: accepted %d != completed %d + expired %d + failed %d",
			rounds, snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
	// Whoever won the settle race decided the category: a client that
	// got a prediction is a completion, a client that got ctx.Err() is
	// an expiry — and the two partitions exactly cover the rounds.
	if snap.Completed != uint64(completions) {
		t.Fatalf("completed %d != successful returns %d", snap.Completed, completions)
	}
	if snap.Completed+snap.Expired != rounds {
		t.Fatalf("completed %d + expired %d != rounds %d", snap.Completed, snap.Expired, rounds)
	}
}

// Drain under load: Infer storms racing Close must neither deadlock,
// drop an accepted request without an answer, nor corrupt the
// accounting. Run under -race this is the shutdown soak.
func TestConcurrentInferClose(t *testing.T) {
	eng := &slowEngine{stubEngine: stubEngine{inLen: 4, classes: 3}, delay: 500 * time.Microsecond}
	s := New(eng, Options{MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 16, Workers: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted, answered atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				submitted.Add(1)
				_, err := s.Infer(context.Background(), input(float64(w*1000+i)), -1, -1)
				answered.Add(1)
				switch {
				case err == nil:
				case errors.Is(err, ErrOverloaded):
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("unexpected error during drain race: %v", err)
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	s.Close() // races live Infer calls
	close(stop)
	wg.Wait()

	if submitted.Load() != answered.Load() {
		t.Fatalf("submitted %d != answered %d: an Infer never returned", submitted.Load(), answered.Load())
	}
	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("identity broken across Close: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
}

// Options.MaxTimeout must clamp client-supplied deadlines — both
// oversized timeout_ms values and requests that omit the field
// entirely — so a client cannot hold a queue slot indefinitely or
// dodge deadline-based admission.
func TestHTTPMaxTimeoutClamp(t *testing.T) {
	eng := newStubEngine()
	eng.enter = make(chan struct{}, 4)
	eng.release = make(chan struct{}, 4)
	s := New(eng, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, MaxTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker so clamped requests expire in the queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Infer(context.Background(), input(0), -1, -1)
	}()
	<-eng.enter

	for _, body := range []string{
		`{"input":[1,0,0,0],"timeout_ms":3600000}`, // absurd deadline: clamped
		`{"input":[1,0,0,0]}`,                      // no deadline at all: clamped
	} {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("clamped request %s: status %d, want 504", body, resp.StatusCode)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("clamped request took %v — MaxTimeout not applied", elapsed)
		}
	}

	eng.release <- struct{}{}
	wg.Wait()
	// Drain whatever the dispatcher still holds, then shut down.
	close(eng.release)
	s.Close()
}

// Trailing garbage after the JSON body means the request was framed
// wrong; it must be rejected, not silently half-read.
func TestHTTPTrailingGarbageRejected(t *testing.T) {
	s := New(newStubEngine(), Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"input":[1,2,3,4]}{"input":[1,2,3,4]}`,
		`{"input":[1,2,3,4]} garbage`,
		`{"input":[1,2,3,4]} 17`,
	} {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trailing garbage %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Trailing whitespace is fine.
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		bytes.NewReader([]byte(`{"input":[1,2,3,4]}`+"\n  \n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trailing whitespace: status %d, want 200", resp.StatusCode)
	}
}

// Every 429 must carry Retry-After so well-behaved clients know when
// to come back.
func TestHTTPRetryAfterOnOverload(t *testing.T) {
	eng := newStubEngine()
	eng.enter = make(chan struct{}, 8)
	eng.release = make(chan struct{}, 8)
	s := New(eng, Options{MaxBatch: 1, MaxWait: time.Millisecond, QueueSize: 1, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate: the blocked worker, the dispatcher's hand, and the queue
	// slot only ever fill (no request carries a deadline and the engine
	// never releases), so the first observed rejection proves — and
	// preserves — fullness.
	var wg sync.WaitGroup
	saturated := false
	for i := 0; i < 20 && !saturated; i++ {
		errc := make(chan error, 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Infer(context.Background(), input(float64(i)), -1, -1)
			errc <- err
		}(i)
		select {
		case err := <-errc:
			if errors.Is(err, ErrOverloaded) {
				saturated = true
			}
		case <-time.After(20 * time.Millisecond):
			// accepted and blocked: one more slot consumed
		}
	}
	if !saturated {
		t.Fatal("queue never saturated")
	}

	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		bytes.NewReader([]byte(`{"input":[9,0,0,0]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(eng.release)
	wg.Wait()
	s.Close()
}
