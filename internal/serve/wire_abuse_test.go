package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/wire"
)

// goodWireFrame encodes a valid binary request for the 4-input stub
// engine.
func goodWireFrame() []byte {
	return wire.AppendRequest(nil, wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1},
		[]float64{1, 2, 3, 4})
}

// mangle returns a copy of frame with one byte overwritten.
func mangle(frame []byte, off int, v byte) []byte {
	out := append([]byte(nil), frame...)
	out[off] = v
	return out
}

// TestWireAbuseDirect feeds the serve layer every malformed-frame shape
// an untrusted client can produce and pins two things: the exact status
// code for each (400 for malformed, 413 for oversized), and that the
// admission ledger never drifts — rejected frames are turned away
// before acceptance, so accepted = completed + expired + failed holds
// exactly with only the good requests counted.
func TestWireAbuseDirect(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := goodWireFrame()
	shortPayload := wire.AppendRequest(nil, wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1},
		[]float64{1, 2}) // announces n=2; the model expects 4

	post := func(contentType string, body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/infer", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"good frame", good, http.StatusOK},
		{"empty body", nil, http.StatusBadRequest},
		{"truncated header", good[:10], http.StatusBadRequest},
		{"truncated payload", good[:len(good)-4], http.StatusBadRequest},
		{"trailing garbage", append(append([]byte(nil), good...), 0xff), http.StatusBadRequest},
		{"bad magic", mangle(good, 0, 'X'), http.StatusBadRequest},
		{"bad version", mangle(good, 2, 99), http.StatusBadRequest},
		{"bad lane", mangle(good, 3, 7), http.StatusBadRequest},
		{"bad mode", mangle(good, 16, 9), http.StatusBadRequest},
		{"length mismatch", shortPayload, http.StatusBadRequest},
		{"oversized", make([]byte, maxBodyBytes+1), http.StatusRequestEntityTooLarge},
		{"good frame again", good, http.StatusOK},
	}
	goodCt := 0
	for _, tc := range cases {
		if got := post(wire.ContentType, tc.body); got != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, got, tc.want)
		}
		if tc.want == http.StatusOK {
			goodCt++
		}
	}

	// Oversized JSON must hit the same bound as oversized binary.
	if got := post("application/json", make([]byte, maxBodyBytes+1)); got != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized json: status %d, want 413", got)
	}

	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("ledger drift: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
	if snap.Accepted != uint64(goodCt) || snap.Completed != uint64(goodCt) {
		t.Fatalf("accepted/completed = %d/%d, want %d (rejected frames must not be admitted)",
			snap.Accepted, snap.Completed, goodCt)
	}
}

// TestWireAbuseMidBodyDisconnect opens raw connections that promise a
// full frame via Content-Length, send only part of it, and vanish. The
// server must survive (no hang, no crash), keep serving, and admit
// nothing from the aborted requests.
func TestWireAbuseMidBodyDisconnect(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := goodWireFrame()
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
			wire.ContentType, len(good))
		conn.Write(good[:wire.ReqHeaderLen+2]) // header + 2 payload bytes, then gone
		conn.Close()
	}

	// The server still answers a well-formed request afterwards…
	resp, err := http.Post(ts.URL+"/v1/infer", wire.ContentType, bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect status %d", resp.StatusCode)
	}
	// …and the aborted uploads never entered the ledger.
	snap := s.Metrics().Snapshot()
	if snap.Accepted != 1 || snap.Completed != 1 {
		t.Fatalf("accepted/completed = %d/%d, want 1/1", snap.Accepted, snap.Completed)
	}
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("ledger drift: %+v", snap)
	}
}

// TestWireAbuseSlowPartialBody sends a frame in two spaced chunks over
// one connection: a slow-but-honest client must not be confused with an
// aborted one, and the request must complete.
func TestWireAbuseSlowPartialBody(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := goodWireFrame()
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		wire.ContentType, len(good))
	conn.Write(good[:11])
	time.Sleep(20 * time.Millisecond)
	conn.Write(good[11:])
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunked-arrival status %d", resp.StatusCode)
	}
}
