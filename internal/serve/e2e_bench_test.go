package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/wire"
)

// benchEngine is a minimal Engine+SingleEngine that does a fixed, tiny
// amount of work and records nothing: BenchmarkServeE2E measures the
// serving layer (routing, decode, pooling, encode), so the engine must
// not contribute allocations or lock traffic of its own.
type benchEngine struct {
	inLen, classes int
}

func (e *benchEngine) InLen() int   { return e.inLen }
func (e *benchEngine) Classes() int { return e.classes }

func (e *benchEngine) InferOne(input []float64, sample int) Prediction {
	best, bestV := 0, input[0]
	for c := 1; c < e.classes; c++ {
		if input[c] > bestV {
			best, bestV = c, input[c]
		}
	}
	return Prediction{Pred: best, Latency: 3, TotalSpikes: 42}
}

func (e *benchEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	preds := make([]Prediction, len(inputs))
	for i, in := range inputs {
		preds[i] = e.InferOne(in, samples[i])
	}
	return preds
}

// replayBody is a resettable request body: one bytes.Reader reused for
// every iteration, so the benchmark's loop allocates nothing of its own
// and allocs/op is the handler's true per-request cost.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// benchResponseWriter is a reusable ResponseWriter: the header map and
// the body buffer persist across iterations like a kept-alive
// connection's write buffers would.
type benchResponseWriter struct {
	hdr  http.Header
	buf  []byte
	code int
}

func (w *benchResponseWriter) Header() http.Header { return w.hdr }
func (w *benchResponseWriter) WriteHeader(c int)   { w.code = c }
func (w *benchResponseWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// BenchmarkServeE2E drives the full HTTP handler in-process (mux
// routing, content negotiation, body decode, direct inference, response
// encode) without real sockets, comparing the JSON and binary wire
// formats. The request/response plumbing is reused across iterations so
// allocs/op isolates the per-request cost of the handler itself.
func BenchmarkServeE2E(b *testing.B) {
	const inLen = 256
	eng := &benchEngine{inLen: inLen, classes: 10}
	srv := New(eng, Options{MaxBatch: 1}) // batching off: requests route direct
	defer srv.Close()
	h := srv.Handler()

	input := make([]float64, inLen)
	for i := range input {
		input[i] = float64(i%17) / 17
	}
	jsonBody, err := json.Marshal(InferRequest{Input: input})
	if err != nil {
		b.Fatal(err)
	}
	binBody := wire.AppendRequest(nil, wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1}, input)

	run := func(b *testing.B, body []byte, contentType string) {
		rd := bytes.NewReader(body)
		req, err := http.NewRequest(http.MethodPost, "/v1/infer", nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		req.Body = replayBody{rd}
		w := &benchResponseWriter{hdr: make(http.Header)}
		// One warm pass primes every pool before the timer.
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d: %s", w.code, w.buf)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(body)
			w.buf = w.buf[:0]
			w.code = 0
			h.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				b.Fatalf("status %d: %s", w.code, w.buf)
			}
		}
	}

	b.Run(fmt.Sprintf("json/in%d", inLen), func(b *testing.B) { run(b, jsonBody, "application/json") })
	b.Run(fmt.Sprintf("binary/in%d", inLen), func(b *testing.B) { run(b, binBody, wire.ContentType) })
}
