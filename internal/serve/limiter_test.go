package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                { return c.t }
func (c *fakeClock) advance(d time.Duration)       { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                     { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(l *rateLimiter, c *fakeClock) *rateLimiter {
	l.now = c.now
	return l
}

// Token-bucket semantics: burst tokens up front, refill at rate, and a
// denial reports how long until the next token accrues.
func TestRateLimiterBucket(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}

	// Other clients have their own buckets.
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("independent client denied")
	}

	// One second refills one token — exactly one more request.
	clock.advance(time.Second)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("second request after single-token refill allowed")
	}

	// Refill caps at burst no matter how long the client is idle.
	clock.advance(time.Hour)
	allowed := 0
	for i := 0; i < 5; i++ {
		if ok, _ := l.allow("a"); ok {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d after long idle, want burst (2)", allowed)
	}
}

// The bucket table must not grow without bound: once it reaches
// maxBuckets, inserting a new client evicts buckets idle long enough
// to have fully refilled.
func TestRateLimiterEviction(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for i := 0; i < maxBuckets; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("buckets = %d, want %d", len(l.buckets), maxBuckets)
	}
	// Everyone idle past the 2s refill horizon: the next new client
	// triggers a sweep.
	clock.advance(10 * time.Second)
	l.allow("fresh")
	if len(l.buckets) != 1 {
		t.Fatalf("buckets after eviction = %d, want 1", len(l.buckets))
	}
	if _, ok := l.buckets["fresh"]; !ok {
		t.Fatal("fresh client evicted with the stale ones")
	}
}
