package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                { return c.t }
func (c *fakeClock) advance(d time.Duration)       { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                     { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(l *rateLimiter, c *fakeClock) *rateLimiter {
	l.now = c.now
	return l
}

// Token-bucket semantics: burst tokens up front, refill at rate, and a
// denial reports how long until the next token accrues.
func TestRateLimiterBucket(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}

	// Other clients have their own buckets.
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("independent client denied")
	}

	// One second refills one token — exactly one more request.
	clock.advance(time.Second)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("second request after single-token refill allowed")
	}

	// Refill caps at burst no matter how long the client is idle.
	clock.advance(time.Hour)
	allowed := 0
	for i := 0; i < 5; i++ {
		if ok, _ := l.allow("a"); ok {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d after long idle, want burst (2)", allowed)
	}
}

// The bucket table must not grow without bound: once it reaches
// maxBuckets, inserting a new client evicts buckets idle long enough
// to have fully refilled.
func TestRateLimiterEviction(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for i := 0; i < maxBuckets; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("buckets = %d, want %d", len(l.buckets), maxBuckets)
	}
	// Everyone idle past the 2s refill horizon: the next new client
	// triggers a sweep.
	clock.advance(10 * time.Second)
	l.allow("fresh")
	if len(l.buckets) != 1 {
		t.Fatalf("buckets after eviction = %d, want 1", len(l.buckets))
	}
	if _, ok := l.buckets["fresh"]; !ok {
		t.Fatal("fresh client evicted with the stale ones")
	}
}

// An eviction sweep must never forget live debt: a client that spent
// its burst recently survives a full-table churn of new clients, and
// its Retry-After stays exact — the sweep drops only buckets idle past
// the refill horizon, whose loss cannot grant extra requests.
func TestRateLimiterEvictionKeepsHotBuckets(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock) // refill horizon 2s

	// Fill the table, then let everyone refill fully.
	for i := 0; i < maxBuckets; i++ {
		l.allow(fmt.Sprintf("old-%d", i))
	}
	clock.advance(3 * time.Second)

	// "hot" spends its whole burst now, going into debt...
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("hot"); !ok {
			t.Fatalf("hot burst request %d denied", i)
		}
	}
	// ...then half a second later a wave of new clients churns the
	// table: every insert is over maxBuckets, so each sweeps.
	clock.advance(500 * time.Millisecond)
	for i := 0; i < maxBuckets; i++ {
		l.allow(fmt.Sprintf("new-%d", i))
	}
	if _, ok := l.buckets["hot"]; !ok {
		t.Fatal("hot bucket evicted 0.5s after activity (horizon is 2s)")
	}
	// The stale cohort is gone — the table did not double.
	if len(l.buckets) > maxBuckets+1 {
		t.Fatalf("buckets = %d after churn, want <= %d", len(l.buckets), maxBuckets+1)
	}

	// Retry-After must still be exact: 0.5s of refill at 1 token/s
	// leaves 0.5 tokens, so the next token is exactly 500ms away.
	ok, retry := l.allow("hot")
	if ok {
		t.Fatal("hot client allowed while still in debt")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry = %v after churn, want exactly 500ms", retry)
	}
}

// A legitimately evicted client comes back as a stranger: full burst
// again, and once that is spent the denial math restarts exactly.
func TestRateLimiterEvictedClientReturns(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for i := 0; i < 2; i++ {
		l.allow("comeback")
	}
	// Idle past the horizon, then a full-table insert wave evicts it.
	clock.advance(5 * time.Second)
	for i := 0; i < maxBuckets; i++ {
		l.allow(fmt.Sprintf("filler-%d", i))
	}
	l.allow("trigger") // over maxBuckets: sweeps the idle comeback bucket
	if _, ok := l.buckets["comeback"]; ok {
		t.Fatal("idle bucket survived a sweep it should have been evicted by")
	}

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("comeback"); !ok {
			t.Fatalf("returning client denied burst request %d", i)
		}
	}
	ok, retry := l.allow("comeback")
	if ok {
		t.Fatal("returning client allowed beyond burst")
	}
	if retry != time.Second {
		t.Fatalf("retry = %v for fully spent bucket, want exactly 1s", retry)
	}
}

// Rounds of client churn separated by idle gaps must keep the table
// bounded: each round's cohort refills during the gap and is swept
// when the next round's inserts hit the cap.
func TestRateLimiterChurnStaysBounded(t *testing.T) {
	clock := newFakeClock()
	l := withClock(newRateLimiter(1, 2), clock)

	for round := 0; round < 4; round++ {
		for i := 0; i < maxBuckets; i++ {
			l.allow(fmt.Sprintf("r%d-c%d", round, i))
		}
		if len(l.buckets) > maxBuckets {
			t.Fatalf("round %d: buckets = %d, want <= %d", round, len(l.buckets), maxBuckets)
		}
		clock.advance(3 * time.Second) // past the 2s refill horizon
	}
}
