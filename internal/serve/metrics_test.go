package serve

import (
	"context"
	"testing"
	"time"
)

// TestSnapshotPercentilesNearestRank pins the nearest-rank definition
// (rank ⌈p·n⌉) on a known 10-element window. The old truncating index
// int(p·(n−1)) read p50 from window[4] (45ms) and p99 from window[8]
// (90ms) — both one sample low.
func TestSnapshotPercentilesNearestRank(t *testing.T) {
	m := newMetrics(4, 3)
	for i := 1; i <= 10; i++ {
		m.complete(time.Duration(i*10)*time.Millisecond, Prediction{}, -1)
	}
	s := m.Snapshot()
	if s.LatencyP50Ms != 50 {
		t.Errorf("p50 = %vms, want 50 (5th of 10 samples)", s.LatencyP50Ms)
	}
	if s.LatencyP90Ms != 90 {
		t.Errorf("p90 = %vms, want 90 (9th of 10 samples)", s.LatencyP90Ms)
	}
	if s.LatencyP99Ms != 100 {
		t.Errorf("p99 = %vms, want 100 (⌈9.9⌉ = 10th of 10 samples)", s.LatencyP99Ms)
	}
	if s.LatencyMaxMs != 100 {
		t.Errorf("max = %vms, want 100", s.LatencyMaxMs)
	}
}

// TestSnapshotPercentileSingleSample: with one sample every percentile
// is that sample (rank clamps to 1).
func TestSnapshotPercentileSingleSample(t *testing.T) {
	m := newMetrics(4, 3)
	m.complete(7*time.Millisecond, Prediction{}, -1)
	s := m.Snapshot()
	if s.LatencyP50Ms != 7 || s.LatencyP99Ms != 7 {
		t.Errorf("p50/p99 = %v/%v ms, want 7/7", s.LatencyP50Ms, s.LatencyP99Ms)
	}
}

// TestExpiredContextRejectedAtEnqueue: a request whose context is
// already dead must not occupy a queue slot — it is answered
// immediately and counted as accepted + expired in the same breath, so
// the accounting identity accepted = completed + expired + failed
// holds without the request ever touching the queue or the engine.
func TestExpiredContextRejectedAtEnqueue(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Infer(ctx, input(1), -1, -1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Expired != 1 {
		t.Errorf("expired = %d, want 1", snap.Expired)
	}
	if snap.Accepted != 1 {
		t.Errorf("accepted = %d, want 1 (identity: accepted = completed+expired+failed)", snap.Accepted)
	}
	if eng.sawInput(1) {
		t.Error("dead request reached the engine")
	}

	// A live request on the same server still flows.
	if _, err := s.Infer(context.Background(), input(2), -1, -1); err != nil {
		t.Fatalf("live request failed: %v", err)
	}
}
