package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/wire"
)

// stubFrameEngine adds the streaming capability to stubEngine:
// deterministic per-frame results with stage spikes and an optional
// timeline, plus a poison input (input[0] == 13) that panics mid-frame
// to exercise the per-frame error path.
type stubFrameEngine struct {
	*stubEngine
}

func (e *stubFrameEngine) InferFrame(input []float64, sample int, timeline bool) FrameResult {
	if input[0] == 13 {
		panic("poison frame")
	}
	fr := FrameResult{
		Prediction: Prediction{
			Pred:        int(input[0]) % e.classes,
			Latency:     5,
			TotalSpikes: 10,
			Potentials:  []float64{input[0], 0, 0},
		},
		StageSpikes: []int{3, 7},
	}
	if timeline {
		fr.Timeline = []core.TimedPred{{Step: 1, Pred: 0}, {Step: 5, Pred: fr.Pred}}
	}
	return fr
}

func newStreamServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(&stubFrameEngine{newStubEngine()}, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// streamClient is a lockstep test session: frames go out on a pipe, and
// Do has already returned with the committed 200 + event stream.
type streamClient struct {
	pw   *io.PipeWriter
	resp *http.Response
	dec  stream.EventDecoder
	buf  []byte
}

// openStream starts a session. binary selects the x-t2f lane both ways;
// query is appended verbatim (e.g. "?timeline=1").
func openStream(t *testing.T, url, query string, binary bool) *streamClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/stream"+query, pr)
	if err != nil {
		t.Fatal(err)
	}
	if binary {
		req.Header.Set("Content-Type", wire.ContentType)
		req.Header.Set("Accept", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		pw.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close(); pw.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream admission: status %d", resp.StatusCode)
	}
	dec, err := stream.NewEventDecoder(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	return &streamClient{pw: pw, resp: resp, dec: dec}
}

func (c *streamClient) send(t *testing.T, binary bool, input []float64) {
	t.Helper()
	var err error
	if binary {
		c.buf = wire.AppendRequest(c.buf[:0], wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1}, input)
		_, err = c.pw.Write(c.buf)
	} else {
		err = json.NewEncoder(c.pw).Encode(map[string]any{"input": input})
	}
	if err != nil {
		t.Fatalf("send frame: %v", err)
	}
}

func (c *streamClient) next(t *testing.T) stream.Event {
	t.Helper()
	var ev stream.Event
	if err := c.dec.Next(&ev); err != nil {
		t.Fatalf("next event: %v", err)
	}
	return ev
}

func checkLedger(t *testing.T, s *Server) Snapshot {
	t.Helper()
	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("ledger drift: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
	return snap
}

// waitStreamIdle polls until every session has detached its gauge (the
// handler finishes a beat after the client sees the last event).
func waitStreamIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().Snapshot().StreamActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream sessions never detached: active = %d", s.Metrics().Snapshot().StreamActive)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Streamed predictions must be bit-identical to one-shot /v1/infer for
// the same inputs, with the session ledger (sessions, frames, active
// gauge) and the admission identity exact.
func TestStreamMatchesOneShot(t *testing.T) {
	s, ts := newStreamServer(t)
	inputs := [][]float64{input(1), input(2), input(5), input(8)}

	c := openStream(t, ts.URL, "", false)
	streamed := make([]int, len(inputs))
	for i, in := range inputs {
		c.send(t, false, in)
		ev := c.next(t)
		if ev.Kind != stream.KindFrame || ev.Seq != uint32(i+1) {
			t.Fatalf("event %d: kind %q seq %d", i, ev.Kind, ev.Seq)
		}
		if len(ev.StageSpikes) != 2 {
			t.Fatalf("event %d: stage spikes %v", i, ev.StageSpikes)
		}
		streamed[i] = ev.Pred
	}
	c.pw.Close() // clean end of session

	for i, in := range inputs {
		body, _ := json.Marshal(map[string]any{"input": in})
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Pred int `json:"pred"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Pred != streamed[i] {
			t.Fatalf("frame %d: stream pred %d, one-shot pred %d", i, streamed[i], out.Pred)
		}
	}

	waitStreamIdle(t, s)
	snap := checkLedger(t, s)
	if snap.StreamSessions != 1 || snap.StreamFrames != uint64(len(inputs)) {
		t.Fatalf("sessions/frames = %d/%d, want 1/%d", snap.StreamSessions, snap.StreamFrames, len(inputs))
	}
}

// The binary lane round-trips events with stage spikes and, on request,
// the argmax timeline.
func TestStreamBinaryTimeline(t *testing.T) {
	s, ts := newStreamServer(t)
	c := openStream(t, ts.URL, "?timeline=1", true)
	c.send(t, true, input(7))
	ev := c.next(t)
	if ev.Kind != stream.KindFrame || ev.Seq != 1 {
		t.Fatalf("kind %q seq %d", ev.Kind, ev.Seq)
	}
	if len(ev.StageSpikes) != 2 || ev.StageSpikes[0] != 3 || ev.StageSpikes[1] != 7 {
		t.Fatalf("stage spikes %v", ev.StageSpikes)
	}
	if len(ev.Timeline) != 2 || ev.Timeline[1].Pred != ev.Pred {
		t.Fatalf("timeline %v (pred %d)", ev.Timeline, ev.Pred)
	}
	c.pw.Close()
	waitStreamIdle(t, s)
	checkLedger(t, s)
}

// BeginDrain with a session open must deliver a terminal drain event
// carrying the last acked frame, not cut the connection.
func TestStreamDrainEvent(t *testing.T) {
	s, ts := newStreamServer(t)
	c := openStream(t, ts.URL, "", false)
	c.send(t, false, input(1))
	c.next(t)
	c.send(t, false, input(2))
	c.next(t)

	s.BeginDrain()
	ev := c.next(t)
	if ev.Kind != stream.KindDrain {
		t.Fatalf("kind %q, want drain", ev.Kind)
	}
	if ev.Seq != 2 {
		t.Fatalf("drain seq %d, want 2 (last acked)", ev.Seq)
	}
	var probe stream.Event
	if err := c.dec.Next(&probe); err == nil {
		t.Fatalf("event after terminal drain: %+v", probe)
	}
	waitStreamIdle(t, s)
	checkLedger(t, s)
}

// A frame the engine fails on (panic mid-inference) must produce an
// in-band error event and leave the session serving; the failure lands
// in the ledger without breaking the identity.
func TestStreamPerFrameError(t *testing.T) {
	s, ts := newStreamServer(t)
	c := openStream(t, ts.URL, "", false)
	c.send(t, false, input(13)) // poison: stubFrameEngine panics
	ev := c.next(t)
	if ev.Kind != stream.KindError || ev.Seq != 1 {
		t.Fatalf("kind %q seq %d, want error/1", ev.Kind, ev.Seq)
	}
	c.send(t, false, input(2))
	ev = c.next(t)
	if ev.Kind != stream.KindFrame || ev.Seq != 2 {
		t.Fatalf("session did not survive the error frame: kind %q seq %d", ev.Kind, ev.Seq)
	}
	c.pw.Close()
	waitStreamIdle(t, s)
	snap := checkLedger(t, s)
	if snap.Failed != 1 {
		t.Fatalf("failed = %d, want 1", snap.Failed)
	}
}

// Malformed frames mirror wire_abuse_test: each shape must end the
// session with a terminal in-band error event (the framing has no
// resynchronization point), never a hang, and never ledger drift.
func TestStreamAbuseMalformedFrames(t *testing.T) {
	s, ts := newStreamServer(t)
	good := wire.AppendRequest(nil, wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1}, input(1))

	cases := []struct {
		name   string
		binary bool
		bytes  []byte
	}{
		{"binary truncated header", true, good[:6]},
		{"binary truncated payload", true, good[:len(good)-4]},
		{"binary bad magic", true, append([]byte{'X'}, good[1:]...)},
		{"json garbage", false, []byte("this is not json\n")},
		{"json wrong input length", false, []byte(`{"input":[1,2]}` + "\n")},
		{"json non-object frame", false, []byte(`[1,2,3]` + "\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := openStream(t, ts.URL, "", tc.binary)
			// One good frame first: the error must not clobber served work.
			c.send(t, tc.binary, input(4))
			if ev := c.next(t); ev.Kind != stream.KindFrame {
				t.Fatalf("good frame: kind %q", ev.Kind)
			}
			if _, err := c.pw.Write(tc.bytes); err != nil {
				t.Fatal(err)
			}
			c.pw.Close()
			ev := c.next(t)
			if ev.Kind != stream.KindError {
				t.Fatalf("kind %q, want terminal error", ev.Kind)
			}
			if ev.Seq != 1 {
				t.Fatalf("terminal error seq %d, want 1 (last acked)", ev.Seq)
			}
		})
	}
	waitStreamIdle(t, s)
	snap := checkLedger(t, s)
	if snap.Accepted != uint64(len(cases)) {
		t.Fatalf("accepted = %d, want %d (only the good frames)", snap.Accepted, len(cases))
	}
}

// A client that vanishes mid-session (connection cut with a frame
// possibly in flight) must not wedge the session or leak its gauge.
func TestStreamMidSessionDisconnect(t *testing.T) {
	s, ts := newStreamServer(t)
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		frame, _ := json.Marshal(map[string]any{"input": input(2)})
		fmt.Fprintf(conn, "POST /v1/stream HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n")
		fmt.Fprintf(conn, "%x\r\n%s\r\n", len(frame), frame)
		// Read a little of the response (headers at least), then vanish.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 256)
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("disconnect round %d: no response bytes: %v", i, err)
		}
		conn.Close()
	}
	// The server still serves a clean session afterwards…
	c := openStream(t, ts.URL, "", false)
	c.send(t, false, input(1))
	if ev := c.next(t); ev.Kind != stream.KindFrame {
		t.Fatalf("post-disconnect session: kind %q", ev.Kind)
	}
	c.pw.Close()
	// …and every aborted session detached without ledger drift.
	waitStreamIdle(t, s)
	checkLedger(t, s)
}

// Regression: admission errors on the stream route are written while
// the client's chunked body is still open. Without full duplex the
// server's writeHeader blocks draining that body against a lockstep
// client that sends nothing until it sees the response — a deadlock
// that made rejected sessions hang instead of failing fast.
func TestStreamRejectionWhileBodyOpen(t *testing.T) {
	s, ts := newStreamServer(t)
	s.Close()

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan int, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case code := <-done:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rejection never arrived: writeHeader is blocked draining the open request body")
	}
}
