package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/testutil"
)

func postJSON(t *testing.T, client *http.Client, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// Routing: each named model answers on its own path with its own
// engine, /v1/infer goes to the default, unknown models 404, the
// listing and the nested metrics expose every model independently.
func TestRegistryRouting(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	// Distinct class counts make the two engines answer differently for
	// the same input, so routing mistakes are visible in predictions.
	engA := &stubEngine{inLen: 4, classes: 3}
	engB := &stubEngine{inLen: 4, classes: 5}
	if _, err := g.Add("alpha", engA, Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("beta", engB, Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Add("alpha", engA, Options{}); err == nil {
		t.Fatal("duplicate model name accepted")
	}
	if _, err := g.Add("bad/name", engA, Options{}); err == nil {
		t.Fatal("model name with slash accepted")
	}

	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	// stub pred = input[0] mod classes: 4 mod 3 = 1, 4 mod 5 = 4.
	body := InferRequest{Input: input(4)}
	var out InferResponse

	resp, raw := postJSON(t, client, ts.URL+"/v1/models/alpha/infer", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha: status %d: %s", resp.StatusCode, raw)
	}
	json.Unmarshal(raw, &out)
	if out.Pred != 1 {
		t.Fatalf("alpha pred = %d, want 1", out.Pred)
	}

	resp, raw = postJSON(t, client, ts.URL+"/v1/models/beta/infer", body, nil)
	json.Unmarshal(raw, &out)
	if resp.StatusCode != http.StatusOK || out.Pred != 4 {
		t.Fatalf("beta: status %d pred %d, want 200/4", resp.StatusCode, out.Pred)
	}

	// Default route: first Add wins.
	resp, raw = postJSON(t, client, ts.URL+"/v1/infer", body, nil)
	json.Unmarshal(raw, &out)
	if resp.StatusCode != http.StatusOK || out.Pred != 1 {
		t.Fatalf("default: status %d pred %d, want alpha's 200/1", resp.StatusCode, out.Pred)
	}

	resp, _ = postJSON(t, client, ts.URL+"/v1/models/gamma/infer", body, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}

	// Listing.
	lr, err := client.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ModelList
	json.NewDecoder(lr.Body).Decode(&list)
	lr.Body.Close()
	if list.Default != "alpha" || len(list.Models) != 2 {
		t.Fatalf("list = %+v", list)
	}
	if list.Models[0].Name != "alpha" || !list.Models[0].Default || list.Models[0].Classes != 3 {
		t.Fatalf("list[0] = %+v", list.Models[0])
	}
	if list.Models[1].Name != "beta" || list.Models[1].Default || list.Models[1].Classes != 5 {
		t.Fatalf("list[1] = %+v", list.Models[1])
	}

	// Nested metrics: alpha saw 2 requests (named + default), beta 1.
	mr, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	json.NewDecoder(mr.Body).Decode(&snap)
	mr.Body.Close()
	if snap.DefaultModel != "alpha" {
		t.Fatalf("default_model = %q", snap.DefaultModel)
	}
	if snap.Models["alpha"].Completed != 2 || snap.Models["beta"].Completed != 1 {
		t.Fatalf("completed alpha=%d beta=%d, want 2/1",
			snap.Models["alpha"].Completed, snap.Models["beta"].Completed)
	}

	// SetDefault reroutes /v1/infer.
	if err := g.SetDefault("beta"); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, client, ts.URL+"/v1/infer", body, nil)
	json.Unmarshal(raw, &out)
	if out.Pred != 4 {
		t.Fatalf("after SetDefault: pred %d, want beta's 4", out.Pred)
	}
	if err := g.SetDefault("gamma"); err == nil {
		t.Fatal("SetDefault accepted an unknown model")
	}
}

// The per-client token bucket must reject over-rate clients with 429 +
// Retry-After while other clients (different header) sail through, and
// the rejection must show up in the registry-level counter.
func TestRegistryRateLimit(t *testing.T) {
	g := NewRegistry(RegistryOptions{RatePerSec: 1, Burst: 2})
	clock := newFakeClock()
	g.limiter.now = clock.now
	if _, err := g.Add("m", newStubEngine(), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	hdr := map[string]string{"X-Client-ID": "alice"}
	body := InferRequest{Input: input(1)}
	for i := 0; i < 2; i++ {
		resp, raw := postJSON(t, client, ts.URL+"/v1/infer", body, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	resp, _ := postJSON(t, client, ts.URL+"/v1/infer", body, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A different client is unaffected.
	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", body, map[string]string{"X-Client-ID": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client: status %d", resp.StatusCode)
	}
	if got := g.Snapshot().RateLimited; got != 1 {
		t.Fatalf("rate_limited = %d, want 1", got)
	}
	// Refill restores service.
	clock.advance(2 * time.Second)
	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill request: status %d", resp.StatusCode)
	}
}

// Deadline-headroom shedding: once the model's rolling p99 batch
// latency is known, a request whose deadline is tighter gets 429 +
// Retry-After before enqueue; requests with workable deadlines and
// models with no latency history are untouched.
func TestRegistryDeadlineShedding(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	srv, err := g.Add("m", newStubEngine(), Options{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	// No latency history yet: even a 1ms deadline is admitted (it may
	// still expire in the queue — the point is it is not shed).
	resp, raw := postJSON(t, client, ts.URL+"/v1/infer", InferRequest{Input: input(1), TimeoutMs: 1}, nil)
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("pre-history request shed: status %d: %s", resp.StatusCode, raw)
	}

	// Prime the window: batches take ~200ms.
	srv.Metrics().batchLatency(200 * time.Millisecond)

	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", InferRequest{Input: input(1), TimeoutMs: 10}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed deadline: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 without Retry-After")
	}
	snap := g.Snapshot()
	if snap.Models["m"].DeadlineShed != 1 {
		t.Fatalf("deadline_shed = %d, want 1", snap.Models["m"].DeadlineShed)
	}
	// A shed request never reached the model's queue: only the
	// pre-history request was accepted.
	if snap.Models["m"].Accepted != 1 {
		t.Fatalf("accepted = %d, want 1 (shed request must not be accepted)", snap.Models["m"].Accepted)
	}

	// Workable deadline: admitted and served.
	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", InferRequest{Input: input(1), TimeoutMs: 5000}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workable deadline: status %d", resp.StatusCode)
	}
	// No deadline at all (MaxTimeout unset): admitted.
	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", InferRequest{Input: input(1)}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-deadline request: status %d", resp.StatusCode)
	}

	// DisableShedding lets doomed deadlines through admission (they
	// then race the queue as before).
	g2 := NewRegistry(RegistryOptions{DisableShedding: true})
	srv2, err := g2.Add("m", newStubEngine(), Options{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	srv2.Metrics().batchLatency(200 * time.Millisecond)
	ts2 := httptest.NewServer(g2.Handler())
	defer ts2.Close()
	resp, _ = postJSON(t, ts2.Client(), ts2.URL+"/v1/infer", InferRequest{Input: input(1), TimeoutMs: 10}, nil)
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("shedding fired with DisableShedding set")
	}
}

// MaxTimeout turns "no deadline" into "MaxTimeout deadline", which
// re-arms shedding against clients that omit timeout_ms to dodge it.
func TestRegistryShedsClampedNoDeadlineRequests(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	srv, err := g.Add("m", newStubEngine(),
		Options{MaxBatch: 4, MaxWait: time.Millisecond, MaxTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv.Metrics().batchLatency(200 * time.Millisecond)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Omitted timeout_ms clamps to MaxTimeout (50ms) < p99 (200ms): shed.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/infer", InferRequest{Input: input(1)}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("clamped no-deadline request: status %d, want 429", resp.StatusCode)
	}
	// An enormous client timeout clamps the same way.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/infer", InferRequest{Input: input(1), TimeoutMs: 1 << 30}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("clamped huge-deadline request: status %d, want 429", resp.StatusCode)
	}
}

// Close drains every model and flips the registry to 503.
func TestRegistryClose(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newStubEngine(), Options{MaxBatch: 2, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	g.Close()
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, ts.URL+"/v1/infer", InferRequest{Input: input(1)}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer after Close = %d", resp.StatusCode)
	}
	if _, err := g.Add("late", newStubEngine(), Options{}); err == nil {
		t.Fatal("Add after Close succeeded")
	}
}

// Golden test: a model served through the registry — TTFS with fault
// injection and a baseline scheme side by side — must produce results
// bit-identical to a single-model serve.Server built with the same
// seed and fault config. Multi-model hosting changes routing, never
// results.
func TestRegistryGoldenMatchesSingleModel(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	faultCfg := fault.Config{Seed: 17, Drop: 0.12, Jitter: 2, ThresholdNoise: 0.04}
	run := core.RunConfig{EarlyFire: true}
	const steps = 24
	sampleLen := fx.Conv.Net.InLen
	const n = 12

	newTTFS := func() *TTFSEngine {
		inj, err := fault.New(faultCfg)
		if err != nil {
			t.Fatal(err)
		}
		return &TTFSEngine{Model: m, Run: run, Faults: inj}
	}
	newScheme := func() *SchemeEngine {
		inj, err := fault.New(faultCfg)
		if err != nil {
			t.Fatal(err)
		}
		return &SchemeEngine{Net: fx.Conv.Net, Scheme: coding.Burst{}, Steps: steps, Faults: inj}
	}
	opt := Options{MaxBatch: 8, MaxWait: 2 * time.Millisecond}

	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("ttfs", newTTFS(), opt); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("burst", newScheme(), opt); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	// Standalone single-model servers, same seed and fault config.
	single := map[string]*Server{
		"ttfs":  New(newTTFS(), opt),
		"burst": New(newScheme(), opt),
	}
	defer single["ttfs"].Close()
	defer single["burst"].Close()

	for _, name := range []string{"ttfs", "burst"} {
		for i := 0; i < n; i++ {
			in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
			sample := -1
			if i%2 == 1 { // mixed batch: odd samples carry faults
				sample = i
			}
			req := InferRequest{Input: in}
			if sample >= 0 {
				req.Sample = &sample
			}
			resp, raw := postJSON(t, client, fmt.Sprintf("%s/v1/models/%s/infer", ts.URL, name), req, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s sample %d: status %d: %s", name, i, resp.StatusCode, raw)
			}
			var got InferResponse
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatal(err)
			}
			ref, err := single[name].Infer(context.Background(), in, sample, -1)
			if err != nil {
				t.Fatalf("%s sample %d standalone: %v", name, i, err)
			}
			if got.Pred != ref.Pred || got.LatencySteps != ref.Latency || got.TotalSpikes != ref.TotalSpikes {
				t.Fatalf("%s sample %d: registry (%d,%d,%d) != single-model (%d,%d,%d)",
					name, i, got.Pred, got.LatencySteps, got.TotalSpikes, ref.Pred, ref.Latency, ref.TotalSpikes)
			}
		}
	}
}
