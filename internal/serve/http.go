package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds /v1/infer request bodies; the largest supported
// input (CIFAR-100-like, 3072 floats as JSON) is well under 1 MiB.
const maxBodyBytes = 8 << 20

// InferRequest is the /v1/infer request body.
type InferRequest struct {
	// Input is the flattened sample (length must match the model).
	Input []float64 `json:"input"`
	// Sample keys deterministic fault injection; omit or use a negative
	// value to disable faults for this request.
	Sample *int `json:"sample,omitempty"`
	// Label, when present, feeds the live accuracy tracker in /metrics.
	Label *int `json:"label,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// InferResponse is the /v1/infer response body.
type InferResponse struct {
	Pred         int     `json:"pred"`
	LatencySteps int     `json:"latency_steps"`
	TotalSpikes  int     `json:"total_spikes"`
	WallMs       float64 `json:"wall_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/infer  — one sample in, one prediction out
//	GET  /healthz   — 200 while serving, 503 once Close started
//	GET  /metrics   — JSON metrics snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Input) != s.eng.InLen() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("input length %d, model expects %d", len(req.Input), s.eng.InLen()))
		return
	}
	sample, label := -1, -1
	if req.Sample != nil {
		sample = *req.Sample
	}
	if req.Label != nil {
		label = *req.Label
	}

	ctx := r.Context()
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	pred, err := s.Infer(ctx, req.Input, sample, label)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded before inference completed")
		case errors.Is(err, context.Canceled):
			// the client is gone; nothing useful to write
			writeError(w, http.StatusServiceUnavailable, "request canceled")
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Pred:         pred.Pred,
		LatencySteps: pred.Latency,
		TotalSpikes:  pred.TotalSpikes,
		WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
