package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/wire"
)

// maxBodyBytes bounds /v1/infer request bodies. The bound is defensive
// headroom, not a sizing estimate: the largest supported input
// (CIFAR-100-like, 3072 floats as JSON) encodes to well under 1 MiB,
// and anything approaching 8 MiB is a hostile or broken client.
const maxBodyBytes = 8 << 20

// InferRequest is the /v1/infer JSON request body. Clients that care
// about decode cost send the binary frame format instead (Content-Type
// application/x-t2f, internal/wire); the fields correspond one-to-one.
type InferRequest struct {
	// Input is the flattened sample (length must match the model).
	Input []float64 `json:"input"`
	// Sample keys deterministic fault injection; omit or use a negative
	// value to disable faults for this request.
	Sample *int `json:"sample,omitempty"`
	// Label, when present, feeds the live accuracy tracker in /metrics.
	Label *int `json:"label,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline
	// (clamped to Options.MaxTimeout when set).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Mode selects the serving path for this request: "latency" runs it
	// directly on the engine's single-sample path (falling back to the
	// queue when the engine is batch-only), "throughput" sends it
	// through the micro-batching queue, and "" defers to the server's
	// DefaultMode (or automatic routing).
	Mode string `json:"mode,omitempty"`
}

// InferResponse is the /v1/infer JSON response body (the binary path
// answers with a wire.Response frame carrying the same fields).
type InferResponse struct {
	Pred         int     `json:"pred"`
	LatencySteps int     `json:"latency_steps"`
	TotalSpikes  int     `json:"total_spikes"`
	WallMs       float64 `json:"wall_ms"`
	// EarlyExit reports that the engine stopped integrating the output
	// window once the winner was provably settled; EventsSaved counts
	// the spike arrivals that exit skipped.
	EarlyExit   bool `json:"early_exit"`
	EventsSaved int  `json:"events_saved"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// inferReq is one decoded inference request in wire-format-agnostic
// form. Instances are pooled: the body buffer, the input slice, and the
// JSON decode target all keep their capacity across requests, so the
// steady-state decode path allocates nothing on either wire format.
type inferReq struct {
	input     []float64
	sample    int // -1 = no fault stream
	label     int // -1 = unlabeled
	timeoutMs int
	mode      string
	wire      bool // binary response negotiated (application/x-t2f)

	body []byte // pooled request-body read buffer

	// js is the JSON decode target. Sample/Label point at sampleV/labelV
	// so present fields decode into pooled memory instead of allocating;
	// absent fields leave the pointees at the -1 sentinel, which the
	// deref below reads back as "none" — the same meaning a nil pointer
	// had. Input shares its backing array with input.
	js               InferRequest
	sampleV, labelV  int
}

var inferReqPool = sync.Pool{New: func() any { return new(inferReq) }}

func putInferReq(ir *inferReq) { inferReqPool.Put(ir) }

// inputPool holds the owned input buffers handed to the batching queue:
// the enqueue transfers ownership to the worker, which recycles the
// buffer once its batch has run (see runBatch), so an abandoned request
// can never observe its input being reused under it.
var inputPool = sync.Pool{New: func() any { return new([]float64) }}

func getInput(n int) []float64 {
	p := inputPool.Get().(*[]float64)
	if cap(*p) < n {
		return make([]float64, n)
	}
	return (*p)[:n]
}

func putInput(in []float64) {
	inputPool.Put(&in)
}

// Handler returns the single-model HTTP API (Registry.Handler is the
// multi-model superset):
//
//	POST /v1/infer  — one sample in, one prediction out (JSON, or the
//	                  binary frame format when the request carries
//	                  Content-Type application/x-t2f)
//	GET  /healthz   — 200 while serving, 503 once Close started
//	GET  /metrics   — JSON metrics snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/healthz", s.handleHealth)
	// A bare Server is ready as soon as it exists (warmup is the
	// owner's synchronous call); the route exists so probes written
	// against the Registry contract work here too.
	mux.HandleFunc("/readyz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	ir, ok := decodeInferRequest(w, r, s)
	if !ok {
		return
	}
	serveInfer(w, r, s, ir)
	putInferReq(ir)
}

// readBody drains one request body into buf (grown only when capacity
// is short), bounded by maxBodyBytes.
func readBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// decodeInferRequest parses and validates one /v1/infer body against
// srv's engine, writing the error response itself when it fails. The
// wire format is negotiated on the request's Content-Type: the binary
// frame format (application/x-t2f) decodes straight into pooled
// buffers; everything else is treated as the JSON form. The returned
// request is pooled — the caller must hand it back with putInferReq
// once the response is written.
func decodeInferRequest(w http.ResponseWriter, r *http.Request, srv *Server) (*inferReq, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, false
	}
	ir := inferReqPool.Get().(*inferReq)
	body, err := readBody(w, r, ir.body)
	ir.body = body // keep the grown buffer even when the read failed
	if err != nil {
		putInferReq(ir)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	if wire.Negotiates(r.Header.Get("Content-Type")) {
		h, in, err := wire.DecodeRequest(body, ir.input[:0], srv.eng.InLen())
		ir.input = in
		if err != nil {
			putInferReq(ir)
			writeError(w, http.StatusBadRequest, err.Error())
			return nil, false
		}
		ir.wire = true
		ir.sample, ir.label = h.Sample, h.Label
		ir.timeoutMs = h.TimeoutMs
		ir.mode = wireModeString(h.Mode)
		return ir, true
	}

	// JSON path: unmarshal into the pooled decode target. Input keeps
	// its backing array, and the pointer fields decode into pooled ints
	// preloaded with the "absent" sentinel.
	ir.wire = false
	ir.sampleV, ir.labelV = -1, -1
	ir.js = InferRequest{Input: ir.input[:0], Sample: &ir.sampleV, Label: &ir.labelV}
	if err := json.Unmarshal(body, &ir.js); err != nil {
		ir.input = ir.js.Input
		putInferReq(ir)
		// json.Unmarshal also rejects trailing data after the top-level
		// value — a concatenated or mis-framed body we likely mis-read.
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return nil, false
	}
	ir.input = ir.js.Input
	if len(ir.input) != srv.eng.InLen() {
		putInferReq(ir)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("input length %d, model expects %d", len(ir.input), srv.eng.InLen()))
		return nil, false
	}
	switch ir.js.Mode {
	case "", ModeLatency, ModeThroughput:
	default:
		mode := ir.js.Mode
		putInferReq(ir)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("mode %q, want %q or %q", mode, ModeLatency, ModeThroughput))
		return nil, false
	}
	ir.sample, ir.label = -1, -1
	if ir.js.Sample != nil {
		ir.sample = *ir.js.Sample
	}
	if ir.js.Label != nil {
		ir.label = *ir.js.Label
	}
	ir.timeoutMs = ir.js.TimeoutMs
	ir.mode = ir.js.Mode
	return ir, true
}

// wireModeString maps the binary frame's mode byte onto the serving
// mode strings (wire.DecodeRequest already rejected anything else).
func wireModeString(m uint8) string {
	switch m {
	case wire.ModeLatency:
		return ModeLatency
	case wire.ModeThroughput:
		return ModeThroughput
	}
	return ""
}

// latencyRoute decides whether a decoded request takes the direct
// single-sample path: the request's explicit mode wins, then the
// server's DefaultMode, then the automatic rule — direct when batching
// is off (MaxBatch 1, queueing buys nothing) or when the request's
// effective deadline is tighter than the engine's rolling batch p99
// (a queued request would likely die waiting). Engines without the
// SingleEngine capability always route through the queue.
func (s *Server) latencyRoute(mode string, timeoutMs int) bool {
	if s.single == nil {
		return false
	}
	if mode == "" {
		mode = s.opt.DefaultMode
	}
	switch mode {
	case ModeLatency:
		return true
	case ModeThroughput:
		return false
	}
	if s.opt.MaxBatch == 1 {
		return true
	}
	if t := s.inferTimeout(timeoutMs); t > 0 {
		if p99 := s.met.BatchLatencyP99(); p99 > 0 && t < p99 {
			return true
		}
	}
	return false
}

// inferTimeout resolves the effective per-request deadline: the
// client's timeout_ms if given, else DefaultTimeout, with both — and
// the "no deadline at all" case — clamped to MaxTimeout when set.
// Without the clamp a client could send an arbitrarily large (or no)
// deadline and defeat deadline-based shedding.
func (s *Server) inferTimeout(timeoutMs int) time.Duration {
	timeout := s.opt.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if max := s.opt.MaxTimeout; max > 0 && (timeout <= 0 || timeout > max) {
		timeout = max
	}
	return timeout
}

// serveInfer runs one decoded request through srv and writes the
// response. Admission (rate limiting, deadline shedding) is the
// caller's job — the Registry does it before calling in.
func serveInfer(w http.ResponseWriter, r *http.Request, srv *Server, ir *inferReq) {
	if err := serveInferSwappable(w, r, srv, ir); err != nil {
		writeInferError(w, err)
	}
}

// serveInferSwappable runs one decoded request through srv and writes
// the response — except for ErrClosed, which is returned unwritten so
// the registry's model path can chase a hot-swap cutover onto the
// replacement server instead of failing the client.
func serveInferSwappable(w http.ResponseWriter, r *http.Request, srv *Server, ir *inferReq) error {
	ctx := r.Context()
	if timeout := srv.inferTimeout(ir.timeoutMs); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	var pred Prediction
	var err error
	if srv.latencyRoute(ir.mode, ir.timeoutMs) {
		// The direct path is synchronous: the engine is done with
		// ir.input when it returns, so the pooled buffer recycles freely.
		pred, err = srv.InferDirect(ctx, ir.input, ir.sample, ir.label)
	} else {
		pred, err = srv.inferQueued(ctx, ir.input, ir.sample, ir.label)
	}
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return err
		}
		writeInferError(w, err)
		return nil
	}
	writeInferResponse(w, ir.wire, InferResponse{
		Pred:         pred.Pred,
		LatencySteps: pred.Latency,
		TotalSpikes:  pred.TotalSpikes,
		WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
		EarlyExit:    pred.EarlyExit,
		EventsSaved:  pred.EventsSaved,
	})
	return nil
}

// writeInferResponse writes one successful prediction in the negotiated
// wire format, staging the body in a pooled buffer either way.
func writeInferResponse(w http.ResponseWriter, binary bool, resp InferResponse) {
	bp := wire.GetBuf()
	buf := *bp
	if binary {
		buf = wire.AppendResponse(buf, wire.Response{
			Pred:         resp.Pred,
			LatencySteps: resp.LatencySteps,
			TotalSpikes:  satU32(resp.TotalSpikes),
			EventsSaved:  satU32(resp.EventsSaved),
			WallUs:       satU32(int(resp.WallMs * 1000)),
			EarlyExit:    resp.EarlyExit,
		})
		w.Header().Set("Content-Type", wire.ContentType)
	} else {
		buf = appendInferResponseJSON(buf, resp)
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
	*bp = buf
	wire.PutBuf(bp)
}

// satU32 clamps a non-negative int onto uint32 for the wire counters.
func satU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// appendInferResponseJSON hand-encodes InferResponse (fields mirror the
// struct tags) so the success path skips encoding/json's allocations.
func appendInferResponseJSON(b []byte, r InferResponse) []byte {
	b = append(b, `{"pred":`...)
	b = strconv.AppendInt(b, int64(r.Pred), 10)
	b = append(b, `,"latency_steps":`...)
	b = strconv.AppendInt(b, int64(r.LatencySteps), 10)
	b = append(b, `,"total_spikes":`...)
	b = strconv.AppendInt(b, int64(r.TotalSpikes), 10)
	b = append(b, `,"wall_ms":`...)
	b = strconv.AppendFloat(b, r.WallMs, 'g', -1, 64)
	b = append(b, `,"early_exit":`...)
	b = strconv.AppendBool(b, r.EarlyExit)
	b = append(b, `,"events_saved":`...)
	b = strconv.AppendInt(b, int64(r.EventsSaved), 10)
	b = append(b, "}\n"...)
	return b
}

func writeInferError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		// Queue-full backpressure clears on the next batch dispatch;
		// 1s is the smallest interval Retry-After can express.
		writeRetryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before inference completed")
	case errors.Is(err, context.Canceled):
		// The client disconnected; there is no one to read a body, so
		// don't write one — net/http discards the response anyway.
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeRetryAfter sets a Retry-After header of at least one second
// (the header's resolution) covering d.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
