package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds /v1/infer request bodies. The bound is defensive
// headroom, not a sizing estimate: the largest supported input
// (CIFAR-100-like, 3072 floats as JSON) encodes to well under 1 MiB,
// and anything approaching 8 MiB is a hostile or broken client.
const maxBodyBytes = 8 << 20

// InferRequest is the /v1/infer request body.
type InferRequest struct {
	// Input is the flattened sample (length must match the model).
	Input []float64 `json:"input"`
	// Sample keys deterministic fault injection; omit or use a negative
	// value to disable faults for this request.
	Sample *int `json:"sample,omitempty"`
	// Label, when present, feeds the live accuracy tracker in /metrics.
	Label *int `json:"label,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline
	// (clamped to Options.MaxTimeout when set).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Mode selects the serving path for this request: "latency" runs it
	// directly on the engine's single-sample path (falling back to the
	// queue when the engine is batch-only), "throughput" sends it
	// through the micro-batching queue, and "" defers to the server's
	// DefaultMode (or automatic routing).
	Mode string `json:"mode,omitempty"`
}

// InferResponse is the /v1/infer response body.
type InferResponse struct {
	Pred         int     `json:"pred"`
	LatencySteps int     `json:"latency_steps"`
	TotalSpikes  int     `json:"total_spikes"`
	WallMs       float64 `json:"wall_ms"`
	// EarlyExit reports that the engine stopped integrating the output
	// window once the winner was provably settled; EventsSaved counts
	// the spike arrivals that exit skipped.
	EarlyExit   bool `json:"early_exit"`
	EventsSaved int  `json:"events_saved"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the single-model HTTP API (Registry.Handler is the
// multi-model superset):
//
//	POST /v1/infer  — one sample in, one prediction out
//	GET  /healthz   — 200 while serving, 503 once Close started
//	GET  /metrics   — JSON metrics snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/healthz", s.handleHealth)
	// A bare Server is ready as soon as it exists (warmup is the
	// owner's synchronous call); the route exists so probes written
	// against the Registry contract work here too.
	mux.HandleFunc("/readyz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeInferRequest(w, r, s)
	if !ok {
		return
	}
	serveInfer(w, r, s, req)
}

// decodeInferRequest parses and validates one /v1/infer body against
// srv's engine, writing the error response itself when it fails.
func decodeInferRequest(w http.ResponseWriter, r *http.Request, srv *Server) (InferRequest, bool) {
	var req InferRequest
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return req, false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return req, false
	}
	// A body is exactly one JSON value: trailing garbage means a
	// confused client (concatenated bodies, framing bug) whose request
	// we likely mis-read, so reject rather than silently ignore it.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return req, false
	}
	if len(req.Input) != srv.eng.InLen() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("input length %d, model expects %d", len(req.Input), srv.eng.InLen()))
		return req, false
	}
	switch req.Mode {
	case "", ModeLatency, ModeThroughput:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("mode %q, want %q or %q", req.Mode, ModeLatency, ModeThroughput))
		return req, false
	}
	return req, true
}

// latencyRoute decides whether a decoded request takes the direct
// single-sample path: the request's explicit mode wins, then the
// server's DefaultMode, then the automatic rule — direct when batching
// is off (MaxBatch 1, queueing buys nothing) or when the request's
// effective deadline is tighter than the engine's rolling batch p99
// (a queued request would likely die waiting). Engines without the
// SingleEngine capability always route through the queue.
func (s *Server) latencyRoute(req InferRequest) bool {
	if s.single == nil {
		return false
	}
	mode := req.Mode
	if mode == "" {
		mode = s.opt.DefaultMode
	}
	switch mode {
	case ModeLatency:
		return true
	case ModeThroughput:
		return false
	}
	if s.opt.MaxBatch == 1 {
		return true
	}
	if t := s.inferTimeout(req.TimeoutMs); t > 0 {
		if p99 := s.met.BatchLatencyP99(); p99 > 0 && t < p99 {
			return true
		}
	}
	return false
}

// inferTimeout resolves the effective per-request deadline: the
// client's timeout_ms if given, else DefaultTimeout, with both — and
// the "no deadline at all" case — clamped to MaxTimeout when set.
// Without the clamp a client could send an arbitrarily large (or no)
// deadline and defeat deadline-based shedding.
func (s *Server) inferTimeout(timeoutMs int) time.Duration {
	timeout := s.opt.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if max := s.opt.MaxTimeout; max > 0 && (timeout <= 0 || timeout > max) {
		timeout = max
	}
	return timeout
}

// serveInfer runs one decoded request through srv and writes the
// response. Admission (rate limiting, deadline shedding) is the
// caller's job — the Registry does it before calling in.
func serveInfer(w http.ResponseWriter, r *http.Request, srv *Server, req InferRequest) {
	if err := serveInferSwappable(w, r, srv, req); err != nil {
		writeInferError(w, err)
	}
}

// serveInferSwappable runs one decoded request through srv and writes
// the response — except for ErrClosed, which is returned unwritten so
// the registry's model path can chase a hot-swap cutover onto the
// replacement server instead of failing the client.
func serveInferSwappable(w http.ResponseWriter, r *http.Request, srv *Server, req InferRequest) error {
	sample, label := -1, -1
	if req.Sample != nil {
		sample = *req.Sample
	}
	if req.Label != nil {
		label = *req.Label
	}

	ctx := r.Context()
	if timeout := srv.inferTimeout(req.TimeoutMs); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	var pred Prediction
	var err error
	if srv.latencyRoute(req) {
		pred, err = srv.InferDirect(ctx, req.Input, sample, label)
	} else {
		pred, err = srv.Infer(ctx, req.Input, sample, label)
	}
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return err
		}
		writeInferError(w, err)
		return nil
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Pred:         pred.Pred,
		LatencySteps: pred.Latency,
		TotalSpikes:  pred.TotalSpikes,
		WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
		EarlyExit:    pred.EarlyExit,
		EventsSaved:  pred.EventsSaved,
	})
	return nil
}

func writeInferError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		// Queue-full backpressure clears on the next batch dispatch;
		// 1s is the smallest interval Retry-After can express.
		writeRetryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before inference completed")
	case errors.Is(err, context.Canceled):
		// The client disconnected; there is no one to read a body, so
		// don't write one — net/http discards the response anyway.
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeRetryAfter sets a Retry-After header of at least one second
// (the header's resolution) covering d.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
