package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// EventEngine serves a T2FSNN core.Model on the event-driven engine,
// implementing both Engine and SingleEngine. It is the latency-optimal
// path: set Run.EarlyExit and each sample stops integrating the output
// window at the undominated winner, with the prediction guaranteed
// identical to the clocked engine's (core's early-exit contract, pinned
// by VerifyEarlyExit-based property tests) — including under injected
// faults, where threshold noise transparently falls back to the clocked
// sweep inside core.
//
// There is no batched event path (the engine's value is per-sample
// latency, not amortization), so InferBatch loops InferOne; a server
// that mostly sees batch traffic should serve a TTFSEngine instead and
// reserve EventEngine for MaxBatch==1 / latency-mode deployments.
type EventEngine struct {
	Model *core.Model
	// Run is the per-sample configuration; Run.EarlyExit enables the
	// undominated-winner exit.
	Run core.RunConfig
	// Faults optionally injects deterministic per-sample faults keyed by
	// the request's sample index.
	Faults *fault.Injector

	// scratch pools per-caller inference arenas: the steady-state
	// InferOne allocates only the returned Prediction's Potentials copy.
	scratch sync.Pool
}

// InLen implements Engine.
func (e *EventEngine) InLen() int { return e.Model.Net.InLen }

// Classes implements Engine.
func (e *EventEngine) Classes() int {
	return e.Model.Net.Stages[len(e.Model.Net.Stages)-1].OutLen
}

// EngineDesc implements EngineDescriber.
func (e *EventEngine) EngineDesc() string { return "event" }

// InferOne implements SingleEngine. Safe for concurrent use: every call
// checks a scratch arena out of the pool for its whole duration.
func (e *EventEngine) InferOne(input []float64, sample int) Prediction {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	cfg := e.Run
	if e.Faults != nil && sample >= 0 {
		cfg.Faults = e.Faults.Sample(sample)
	}
	r := e.Model.InferOne(input, cfg, core.InferOpts{Scratch: sc, Engine: core.EngineEvent})
	p := Prediction{
		Pred:        r.Pred,
		Latency:     r.Latency,
		TotalSpikes: r.TotalSpikes,
		// copied: r.Potentials aliases the pooled scratch
		Potentials:  append([]float64(nil), r.Potentials...),
		EarlyExit:   r.EarlyExit,
		EventsSaved: r.EventsSaved,
	}
	e.scratch.Put(sc)
	return p
}

// InferFrame implements FrameEngine. Collecting a timeline disables the
// early exit inside core (the trajectory needs the full output window)
// but the prediction is identical either way — core's early-exit
// contract — so streamed decisions match one-shot ones bit for bit.
func (e *EventEngine) InferFrame(input []float64, sample int, timeline bool) FrameResult {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	cfg := e.Run
	cfg.CollectTimeline = timeline
	if e.Faults != nil && sample >= 0 {
		cfg.Faults = e.Faults.Sample(sample)
	}
	r := e.Model.InferOne(input, cfg, core.InferOpts{Scratch: sc, Engine: core.EngineEvent})
	fr := coreFrameResult(r)
	e.scratch.Put(sc)
	return fr
}

// InferBatch implements Engine by running the batch sample-by-sample on
// one pooled scratch (results are independent of grouping by the
// single-sample contract).
func (e *EventEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	var fs []*fault.Stream
	if e.Faults != nil {
		fs = make([]*fault.Stream, len(inputs))
		for i, idx := range samples {
			if idx >= 0 {
				fs[i] = e.Faults.Sample(idx)
			}
		}
	}
	preds := corePredictions(e.Model.InferMany(inputs, e.Run, core.InferOpts{
		Scratch: sc, Faults: fs, Engine: core.EngineEvent,
	}))
	e.scratch.Put(sc)
	return preds
}
