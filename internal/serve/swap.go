package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"time"
)

// SwapRequest is the POST /v1/models/{name}/swap body: which engine to
// build as the model's replacement, and how carefully to vet it.
type SwapRequest struct {
	// Source is a .t2f model path or dataset/scale spec, interpreted by
	// the RegistryOptions.BuildEngine hook.
	Source string `json:"source"`
	// Scheme selects the serving engine (ttfs|rate|phase|burst); empty
	// leaves it to the builder's default.
	Scheme string `json:"scheme,omitempty"`
	// Steps is the simulation horizon for non-ttfs schemes (0 =
	// builder default).
	Steps int `json:"steps,omitempty"`
	// GoldenCheck requires the candidate engine to produce results
	// bit-identical to the serving engine on a deterministic probe set
	// before cutover — the guard for same-model swaps (config reloads,
	// recalibrated-but-equal models, fleet rollouts of an identical
	// artifact). Leave false when the swap intends to change behavior.
	GoldenCheck bool `json:"golden_check,omitempty"`
}

// SwapResponse is the swap endpoint's success body.
type SwapResponse struct {
	Model string `json:"model"`
	// Swaps is the model's cutover count including this one.
	Swaps uint64 `json:"swaps"`
	// WarmMs is how long the candidate took to build, warm, and check
	// before the atomic cutover.
	WarmMs        float64 `json:"warm_ms"`
	GoldenChecked bool    `json:"golden_checked"`
}

// Swap replaces the named model's engine with eng, with zero downtime:
// the candidate server is started and warmed while the old one keeps
// serving, the pointer cutover is atomic (every request sees wholly
// the old or wholly the new engine), and the old server is drained
// afterwards — its queued requests complete on the old engine and its
// final counters fold into the model's running totals so the
// accounting identity holds across the cutover.
//
// The replacement must preserve the model's request contract (input
// length and class count); golden additionally requires bit-identical
// results on a deterministic probe batch.
func (g *Registry) Swap(name string, eng Engine, golden bool) error {
	g.mu.RLock()
	m := g.models[name]
	g.mu.RUnlock()
	if m == nil {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	m.swapMu.Lock()
	defer m.swapMu.Unlock()

	old := m.server()
	if eng.InLen() != old.eng.InLen() || eng.Classes() != old.eng.Classes() {
		return fmt.Errorf("serve: swap shape mismatch: candidate %d in/%d classes, serving %d/%d",
			eng.InLen(), eng.Classes(), old.eng.InLen(), old.eng.Classes())
	}
	next := New(eng, old.Options())
	next.Warm()
	if golden {
		if err := goldenCompare(old.eng, eng); err != nil {
			next.Close()
			return fmt.Errorf("serve: golden check failed, old engine kept: %w", err)
		}
	}

	// Cutover under the registry lock so Swap and Close cannot cross:
	// either Close sees the new server (and will drain it), or Swap
	// sees the closed registry and backs out. The pointer store and
	// the draining handoff share one retiredMu critical section so a
	// concurrent Snapshot sees the old server as exactly one of live
	// or draining — per-model counters never dip during the drain.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		next.Close()
		return ErrClosed
	}
	m.retiredMu.Lock()
	m.draining = old
	m.srv.Store(next)
	m.retiredMu.Unlock()
	g.mu.Unlock()
	m.swaps.Add(1)

	// Drain the retired server: requests that raced the cutover finish
	// on the engine they were queued for, and only then — fully
	// settled — do its counters move into the model's totals.
	old.Close()
	m.retire(old.Metrics().Snapshot())
	return nil
}

// goldenProbes is how many deterministic inputs the golden check runs
// through both engines.
const goldenProbes = 8

// goldenCompare runs a fixed pseudo-random probe batch through both
// engines (no fault injection: sample index -1) and requires exactly
// equal predictions, latencies, spike counts, and output potentials.
func goldenCompare(serving, candidate Engine) error {
	rng := rand.New(rand.NewSource(0x12f5))
	inputs := make([][]float64, goldenProbes)
	samples := make([]int, goldenProbes)
	for i := range inputs {
		in := make([]float64, serving.InLen())
		for j := range in {
			in[j] = rng.Float64()
		}
		inputs[i] = in
		samples[i] = -1
	}
	want := serving.InferBatch(inputs, samples)
	got := candidate.InferBatch(inputs, samples)
	if len(got) != len(want) {
		return fmt.Errorf("probe batch: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Pred != want[i].Pred || got[i].Latency != want[i].Latency ||
			got[i].TotalSpikes != want[i].TotalSpikes {
			return fmt.Errorf("probe %d: candidate (pred %d, latency %d, spikes %d) != serving (%d, %d, %d)",
				i, got[i].Pred, got[i].Latency, got[i].TotalSpikes,
				want[i].Pred, want[i].Latency, want[i].TotalSpikes)
		}
		if len(got[i].Potentials) != len(want[i].Potentials) {
			return fmt.Errorf("probe %d: %d potentials, want %d", i, len(got[i].Potentials), len(want[i].Potentials))
		}
		for j := range want[i].Potentials {
			a, b := got[i].Potentials[j], want[i].Potentials[j]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return fmt.Errorf("probe %d: potential[%d] %v != %v", i, j, a, b)
			}
		}
	}
	return nil
}

func (g *Registry) handleSwap(w http.ResponseWriter, r *http.Request) {
	if g.opt.BuildEngine == nil {
		writeError(w, http.StatusNotImplemented, "model swapping is not enabled on this server")
		return
	}
	name := r.PathValue("name")
	if g.Get(name) == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	var req SwapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	t0 := time.Now()
	eng, err := g.opt.BuildEngine(name, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("building engine: %v", err))
		return
	}
	if err := g.Swap(name, eng, req.GoldenCheck); err != nil {
		code := http.StatusConflict
		if err == ErrClosed {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err.Error())
		return
	}
	m := g.lookup(name)
	writeJSON(w, http.StatusOK, SwapResponse{
		Model:         name,
		Swaps:         m.swaps.Load(),
		WarmMs:        float64(time.Since(t0)) / float64(time.Millisecond),
		GoldenChecked: req.GoldenCheck,
	})
}
