package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// Serving through the batching scheduler must be bit-identical to
// direct per-sample evaluation: same predictions, same spike counts,
// same latencies, same output potentials to the last bit — for every
// sample, regardless of how the scheduler happened to group them into
// batches. Accuracy observed by the server's live confusion matrix must
// equal core.Evaluate over the same set.
func TestServedPredictionsMatchEvaluate(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := core.RunConfig{EarlyFire: true}
	const n = 40
	sampleLen := fx.Conv.Net.InLen

	s := New(&TTFSEngine{Model: m, Run: run}, Options{MaxBatch: 16, MaxWait: 2 * time.Millisecond, Workers: 2})
	defer s.Close()

	got := make([]Prediction, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
			got[i], errs[i] = s.Infer(context.Background(), in, -1, fx.Labels[i])
		}(i)
	}
	wg.Wait()

	correct := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("sample %d: %v", i, errs[i])
		}
		ref := m.Infer(fx.X.Data[i*sampleLen:(i+1)*sampleLen], run)
		if got[i].Pred != ref.Pred || got[i].Latency != ref.Latency || got[i].TotalSpikes != ref.TotalSpikes {
			t.Fatalf("sample %d: served (%d,%d,%d) != direct (%d,%d,%d)",
				i, got[i].Pred, got[i].Latency, got[i].TotalSpikes, ref.Pred, ref.Latency, ref.TotalSpikes)
		}
		for j := range ref.Potentials {
			if math.Float64bits(got[i].Potentials[j]) != math.Float64bits(ref.Potentials[j]) {
				t.Fatalf("sample %d: potential %d not bit-identical: %v != %v",
					i, j, got[i].Potentials[j], ref.Potentials[j])
			}
		}
		if got[i].Pred == fx.Labels[i] {
			correct++
		}
	}

	sub := tensor.FromSlice(fx.X.Data[:n*sampleLen], n, 1, 16, 16)
	ev, err := core.Evaluate(m, sub, fx.Labels[:n], core.EvalOptions{Run: run})
	if err != nil {
		t.Fatal(err)
	}
	servedAcc := float64(correct) / float64(n)
	if servedAcc != ev.Accuracy {
		t.Fatalf("served accuracy %v != Evaluate accuracy %v", servedAcc, ev.Accuracy)
	}
	snap := s.Metrics().Snapshot()
	if snap.LabeledTotal != n || snap.Accuracy != ev.Accuracy {
		t.Fatalf("live confusion: labeled %d acc %v, want %d and %v",
			snap.LabeledTotal, snap.Accuracy, n, ev.Accuracy)
	}
	// The point of batching: at least one multi-sample batch must have
	// been formed under this concurrency.
	multi := uint64(0)
	for k := 2; k < len(snap.BatchSizeHist); k++ {
		multi += snap.BatchSizeHist[k]
	}
	if multi == 0 {
		t.Log("warning: no multi-sample batches formed (timing); amortization untested here")
	}
}

// Fault injection through the server must route each request's
// per-sample stream exactly as direct inference does.
func TestServedFaultInjectionMatchesDirect(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 11, Drop: 0.15, Jitter: 2, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	run := core.RunConfig{EarlyFire: true}
	s := New(&TTFSEngine{Model: m, Run: run, Faults: inj}, Options{MaxBatch: 8, MaxWait: 2 * time.Millisecond})
	defer s.Close()

	const n = 12
	sampleLen := fx.Conv.Net.InLen
	got := make([]Prediction, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
			// odd samples request fault injection keyed by their index,
			// even samples opt out — a mixed batch
			sample := -1
			if i%2 == 1 {
				sample = i
			}
			got[i], _ = s.Infer(context.Background(), in, sample, -1)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		cfg := run
		if i%2 == 1 {
			cfg.Faults = inj.Sample(i)
		}
		ref := m.Infer(fx.X.Data[i*sampleLen:(i+1)*sampleLen], cfg)
		if got[i].Pred != ref.Pred || got[i].TotalSpikes != ref.TotalSpikes {
			t.Fatalf("sample %d: served (%d,%d) != direct (%d,%d)",
				i, got[i].Pred, got[i].TotalSpikes, ref.Pred, ref.TotalSpikes)
		}
	}
}

// Pool-backed serving must stay bit-identical to direct inference for
// both engine kinds — the data-parallel path changes scheduling, never
// results — and the parallel_chunks metric must surface the pool's
// dispatch count.
func TestServedWithPoolMatchesDirect(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 29, Drop: 0.1, Jitter: 1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	run := core.RunConfig{EarlyFire: true}
	sampleLen := fx.Conv.Net.InLen
	const n = 24

	serveAll := func(t *testing.T, s *Server) []Prediction {
		t.Helper()
		got := make([]Prediction, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
				sample := -1
				if i%2 == 1 { // mixed batch: odd samples carry faults
					sample = i
				}
				var err error
				got[i], err = s.Infer(context.Background(), in, sample, -1)
				if err != nil {
					t.Errorf("sample %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		return got
	}

	t.Run("ttfs", func(t *testing.T) {
		pool := core.NewPool(core.ParallelOpts{Workers: 4})
		defer pool.Close()
		s := New(&TTFSEngine{Model: m, Run: run, Faults: inj, Pool: pool},
			Options{MaxBatch: 16, MaxWait: 2 * time.Millisecond})
		got := serveAll(t, s)
		snap := s.Metrics().Snapshot()
		s.Close()
		for i := 0; i < n; i++ {
			cfg := run
			if i%2 == 1 {
				cfg.Faults = inj.Sample(i)
			}
			ref := m.Infer(fx.X.Data[i*sampleLen:(i+1)*sampleLen], cfg)
			if got[i].Pred != ref.Pred || got[i].Latency != ref.Latency || got[i].TotalSpikes != ref.TotalSpikes {
				t.Fatalf("sample %d: served (%d,%d,%d) != direct (%d,%d,%d)",
					i, got[i].Pred, got[i].Latency, got[i].TotalSpikes, ref.Pred, ref.Latency, ref.TotalSpikes)
			}
			for j := range ref.Potentials {
				if math.Float64bits(got[i].Potentials[j]) != math.Float64bits(ref.Potentials[j]) {
					t.Fatalf("sample %d: potential %d not bit-identical", i, j)
				}
			}
		}
		if snap.ParallelChunks == 0 {
			t.Log("warning: no multi-sample batches reached the pool (timing); parallel_chunks stayed 0")
		} else if snap.ParallelChunks != pool.Chunks() {
			t.Fatalf("parallel_chunks %d != pool count %d", snap.ParallelChunks, pool.Chunks())
		}
	})

	t.Run("scheme", func(t *testing.T) {
		pool := core.NewPool(core.ParallelOpts{Workers: 4})
		defer pool.Close()
		sch := coding.Burst{}
		const steps = 24
		s := New(&SchemeEngine{Net: fx.Conv.Net, Scheme: sch, Steps: steps, Faults: inj, Pool: pool},
			Options{MaxBatch: 16, MaxWait: 2 * time.Millisecond})
		got := serveAll(t, s)
		snap := s.Metrics().Snapshot()
		s.Close()
		for i := 0; i < n; i++ {
			opts := coding.RunOpts{Steps: steps}
			if i%2 == 1 {
				opts.Faults = inj.Sample(i)
			}
			ref := sch.Run(fx.Conv.Net, fx.X.Data[i*sampleLen:(i+1)*sampleLen], opts)
			if got[i].Pred != ref.Pred || got[i].TotalSpikes != ref.TotalSpikes {
				t.Fatalf("sample %d: served (%d,%d) != direct (%d,%d)",
					i, got[i].Pred, got[i].TotalSpikes, ref.Pred, ref.TotalSpikes)
			}
		}
		if snap.ParallelChunks == 0 {
			t.Log("warning: no multi-sample batches reached the pool (timing); parallel_chunks stayed 0")
		}
	})
}

// The scheme engine must serve any coding.Scheme unchanged.
func TestSchemeEngineMatchesDirectRun(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	sch := coding.Phase{}
	const steps = 24
	s := New(&SchemeEngine{Net: fx.Conv.Net, Scheme: sch, Steps: steps},
		Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()

	sampleLen := fx.Conv.Net.InLen
	const n = 6
	var wg sync.WaitGroup
	got := make([]Prediction, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
			got[i], _ = s.Infer(context.Background(), in, -1, -1)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		ref := sch.Run(fx.Conv.Net, fx.X.Data[i*sampleLen:(i+1)*sampleLen], coding.RunOpts{Steps: steps})
		if got[i].Pred != ref.Pred || got[i].TotalSpikes != ref.TotalSpikes {
			t.Fatalf("sample %d: served (%d,%d) != direct (%d,%d)",
				i, got[i].Pred, got[i].TotalSpikes, ref.Pred, ref.TotalSpikes)
		}
	}
}
