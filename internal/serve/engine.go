// Package serve is the batched inference serving layer: a stdlib-only
// HTTP server that queues single-sample requests, forms micro-batches
// (up to MaxBatch samples or MaxWait, whichever first), and executes
// them on the batched T2FSNN engine (core.InferBatch) or any
// coding.Scheme. On a single core the win is amortization, not
// parallelism — see core.InferBatch — so batching still buys ≥2×
// throughput (pinned by make serve-smoke via cmd/snnload).
//
// The scheduler guarantees the served predictions are bit-identical to
// direct core.Evaluate over the same samples (pinned by the golden test
// in golden_test.go): batching changes wall-clock behaviour, never
// results.
package serve

import (
	"sync"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snn"
)

// Prediction is the serving outcome for one sample.
type Prediction struct {
	// Pred is the predicted class.
	Pred int
	// Latency is the model-time latency in simulation steps (not wall
	// clock; the server reports wall latency separately).
	Latency int
	// TotalSpikes counts every spike the inference generated.
	TotalSpikes int
	// Potentials are the final output potentials (the logits the
	// decision was read from). Partial — valid for the argmax only —
	// when EarlyExit is set.
	Potentials []float64
	// EarlyExit reports that the engine stopped integrating the output
	// window once the winner was provably undominated (event engine with
	// core.RunConfig.EarlyExit). The prediction is identical to the full
	// integration's.
	EarlyExit bool
	// EventsSaved counts the output-window spike arrivals the early exit
	// skipped (0 when EarlyExit is false).
	EventsSaved int
}

// Engine turns a batch of inputs into predictions. Implementations must
// be safe for concurrent InferBatch calls (the server runs a worker
// pool) and must produce per-sample results independent of how samples
// are grouped into batches.
type Engine interface {
	// InLen is the expected flattened input length.
	InLen() int
	// Classes is the number of output classes (0 if unknown).
	Classes() int
	// InferBatch infers every input. samples[i] is the caller-supplied
	// sample index of inputs[i], used to derive deterministic per-sample
	// fault streams; a negative index disables fault injection for that
	// sample.
	InferBatch(inputs [][]float64, samples []int) []Prediction
}

// SingleEngine is the optional single-sample capability: an engine that
// can answer one request without batch formation implements it and the
// server routes latency-mode requests straight to InferOne, bypassing
// the micro-batching queue entirely. Discovery is by type assertion in
// New — batch-only engines need no changes, and callers that never ask
// for latency mode never notice the capability either way.
// Implementations must be safe for concurrent InferOne calls and for
// InferOne running concurrently with InferBatch.
type SingleEngine interface {
	// InferOne infers one sample. The sample index keys deterministic
	// fault injection exactly as in Engine.InferBatch (negative = none).
	InferOne(input []float64, sample int) Prediction
}

// FrameResult is the streaming outcome for one frame: the one-shot
// Prediction plus the temporal observability a stream event carries —
// per-stage spike counts always, the output argmax timeline on request.
type FrameResult struct {
	Prediction
	// StageSpikes counts spikes per stage: index 0 is the input
	// encoding, index i ≥ 1 is stage i-1's fire phase.
	StageSpikes []int
	// Timeline is the output argmax trajectory (nil unless asked for).
	Timeline []core.TimedPred
}

// FrameEngine is the optional streaming capability: an engine that can
// answer one frame with per-stage spike counts (and, on request, the
// argmax timeline) implements it and /v1/stream sessions run their
// frames on it directly — same discovery-by-type-assertion contract as
// SingleEngine. The prediction must be identical to InferOne's /
// InferBatch's for the same input (collecting a timeline must not
// change the decision). Implementations must be safe for concurrent
// use.
type FrameEngine interface {
	// InferFrame infers one frame. sample keys deterministic fault
	// injection (negative = none); timeline asks for the argmax
	// trajectory. Returned slices must not alias engine scratch.
	InferFrame(input []float64, sample int, timeline bool) FrameResult
}

// EngineDescriber is the optional self-description capability: engines
// that implement it get their kernel name exported as "engine" on
// /metrics, so operators can tell from a snapshot which inference path
// a server is running — clocked, event, quant, or a coding scheme.
// Discovery is by type assertion in New, like SingleEngine.
type EngineDescriber interface {
	// EngineDesc returns a short stable identifier, e.g. "quant".
	EngineDesc() string
}

// ChunkReporter is implemented by engines whose batch execution runs
// data-parallel on a core.Pool; ParallelChunks returns the cumulative
// number of work chunks dispatched, exported as parallel_chunks on
// /metrics.
type ChunkReporter interface {
	ParallelChunks() uint64
}

// TTFSEngine serves a T2FSNN core.Model through core.InferBatch — the
// batched path whose scatter-row amortization makes micro-batching pay.
type TTFSEngine struct {
	Model *core.Model
	Run   core.RunConfig
	// Faults optionally injects deterministic per-sample faults keyed by
	// the request's sample index.
	Faults *fault.Injector
	// Pool hands whole micro-batches to the data-parallel path
	// (core.InferBatchParallel) with one scratch arena per pool worker;
	// nil (or a single-worker pool) keeps the single-goroutine amortized
	// path below. Give each engine its own pool.
	Pool *core.Pool

	// poolMu serializes parallel batches so result extraction (which
	// reads pool-owned memory) finishes before the next call overwrites
	// it — the coordination core.Pool requires of concurrent
	// InferBatchParallel callers.
	poolMu sync.Mutex

	// scratch pools per-worker inference arenas so steady-state batches
	// allocate only the returned Predictions, never the working set.
	scratch sync.Pool
}

// InLen implements Engine.
func (e *TTFSEngine) InLen() int { return e.Model.Net.InLen }

// Classes implements Engine.
func (e *TTFSEngine) Classes() int {
	return e.Model.Net.Stages[len(e.Model.Net.Stages)-1].OutLen
}

// EngineDesc implements EngineDescriber.
func (e *TTFSEngine) EngineDesc() string { return "clocked" }

// InferBatch implements Engine.
func (e *TTFSEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	var fs []*fault.Stream
	if e.Faults != nil {
		fs = make([]*fault.Stream, len(inputs))
		for i, idx := range samples {
			if idx >= 0 {
				fs[i] = e.Faults.Sample(idx)
			}
		}
	}
	if e.Pool.Workers() > 1 {
		e.poolMu.Lock()
		defer e.poolMu.Unlock()
		return corePredictions(e.Model.InferMany(inputs, e.Run, core.InferOpts{Pool: e.Pool, Faults: fs}))
	}
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	preds := corePredictions(e.Model.InferMany(inputs, e.Run, core.InferOpts{Scratch: sc, Faults: fs}))
	e.scratch.Put(sc)
	return preds
}

// ParallelChunks implements ChunkReporter (0 without a pool).
func (e *TTFSEngine) ParallelChunks() uint64 { return e.Pool.Chunks() }

// InferFrame implements FrameEngine on the clocked engine: a stream
// frame runs single-sample on a pooled scratch (TTFSEngine deliberately
// stays batch-only for one-shot traffic; a session's frames arrive one
// at a time, so there is no batch to form).
func (e *TTFSEngine) InferFrame(input []float64, sample int, timeline bool) FrameResult {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	cfg := e.Run
	cfg.CollectTimeline = timeline
	if e.Faults != nil && sample >= 0 {
		cfg.Faults = e.Faults.Sample(sample)
	}
	r := e.Model.InferOne(input, cfg, core.InferOpts{Scratch: sc})
	fr := coreFrameResult(r)
	e.scratch.Put(sc)
	return fr
}

// coreFrameResult converts one core result into a frame result, copying
// every slice out of the scratch arenas it may alias.
func coreFrameResult(r core.Result) FrameResult {
	return FrameResult{
		Prediction: Prediction{
			Pred:        r.Pred,
			Latency:     r.Latency,
			TotalSpikes: r.TotalSpikes,
			Potentials:  append([]float64(nil), r.Potentials...),
			EarlyExit:   r.EarlyExit,
			EventsSaved: r.EventsSaved,
		},
		StageSpikes: append([]int(nil), r.Spikes...),
		Timeline:    append([]core.TimedPred(nil), r.Timeline...),
	}
}

// corePredictions converts batch results into predictions, copying
// Potentials out of the scratch/pool arenas they alias.
func corePredictions(rs []core.Result) []Prediction {
	preds := make([]Prediction, len(rs))
	for i, r := range rs {
		preds[i] = Prediction{
			Pred:        r.Pred,
			Latency:     r.Latency,
			TotalSpikes: r.TotalSpikes,
			Potentials:  append([]float64(nil), r.Potentials...),
			EarlyExit:   r.EarlyExit,
			EventsSaved: r.EventsSaved,
		}
	}
	return preds
}

// SchemeEngine serves any coding.Scheme (rate, phase, burst, or the
// TTFS adapter) over a converted network. Schemes have no batched
// execution path, so batches run sample-by-sample: batching still
// bounds queueing overhead but brings no amortization win.
type SchemeEngine struct {
	Net    *snn.Net
	Scheme coding.Scheme
	// Steps is the simulation horizon passed to every Run.
	Steps  int
	Faults *fault.Injector
	// Pool fans the micro-batch's samples across pool workers, one
	// coding.Scratch per worker; nil runs them on the calling goroutine.
	// Give each engine its own pool.
	Pool *core.Pool

	// mu guards the lazy per-pool-worker scratch table.
	mu        sync.Mutex
	scratches []*coding.Scratch

	// scratch pools per-worker simulation buffers (see TTFSEngine).
	scratch sync.Pool
}

// InLen implements Engine.
func (e *SchemeEngine) InLen() int { return e.Net.InLen }

// Classes implements Engine.
func (e *SchemeEngine) Classes() int {
	return e.Net.Stages[len(e.Net.Stages)-1].OutLen
}

// EngineDesc implements EngineDescriber.
func (e *SchemeEngine) EngineDesc() string { return e.Scheme.Name() }

// InferBatch implements Engine.
func (e *SchemeEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	preds := make([]Prediction, len(inputs))
	runOne := func(i int, sc *coding.Scratch) {
		opts := coding.RunOpts{Steps: e.Steps, Scratch: sc}
		if e.Faults != nil && samples[i] >= 0 {
			opts.Faults = e.Faults.Sample(samples[i])
		}
		r := e.Scheme.Run(e.Net, inputs[i], opts)
		preds[i] = Prediction{
			Pred:        r.Pred,
			Latency:     r.Steps,
			TotalSpikes: r.TotalSpikes,
			// copied: r.Potentials aliases the pooled scratch
			Potentials: append([]float64(nil), r.Potentials...),
		}
	}
	if w := e.Pool.Workers(); w > 1 && len(inputs) > 1 {
		e.mu.Lock()
		if e.scratches == nil {
			e.scratches = make([]*coding.Scratch, w)
		}
		e.mu.Unlock()
		// Per-sample chunks: scheme runs dominate, so stealing at the
		// finest grain balances best. Scratch access is safe: the pool
		// serializes calls and hands worker index w to one goroutine at a
		// time, and preds extraction happens inside fn.
		e.Pool.Each(len(inputs), 1, func(lo, hi, worker int) {
			sc := e.scratches[worker]
			if sc == nil {
				sc = coding.NewScratch()
				e.scratches[worker] = sc
			}
			for i := lo; i < hi; i++ {
				runOne(i, sc)
			}
		})
		return preds
	}
	sc, _ := e.scratch.Get().(*coding.Scratch)
	if sc == nil {
		sc = coding.NewScratch()
	}
	for i := range inputs {
		runOne(i, sc)
	}
	e.scratch.Put(sc)
	return preds
}

// ParallelChunks implements ChunkReporter (0 without a pool).
func (e *SchemeEngine) ParallelChunks() uint64 { return e.Pool.Chunks() }

// InferFrame implements FrameEngine by running the scheme once with
// per-stage counting (schemes always report SpikesPerStage) and the
// timeline collected on request.
func (e *SchemeEngine) InferFrame(input []float64, sample int, timeline bool) FrameResult {
	sc, _ := e.scratch.Get().(*coding.Scratch)
	if sc == nil {
		sc = coding.NewScratch()
	}
	opts := coding.RunOpts{Steps: e.Steps, Scratch: sc, CollectTimeline: timeline}
	if e.Faults != nil && sample >= 0 {
		opts.Faults = e.Faults.Sample(sample)
	}
	r := e.Scheme.Run(e.Net, input, opts)
	fr := FrameResult{
		Prediction: Prediction{
			Pred:        r.Pred,
			Latency:     r.Steps,
			TotalSpikes: r.TotalSpikes,
			// copied: r.Potentials aliases the pooled scratch
			Potentials: append([]float64(nil), r.Potentials...),
		},
		StageSpikes: append([]int(nil), r.SpikesPerStage...),
	}
	for _, tp := range r.Timeline {
		fr.Timeline = append(fr.Timeline, core.TimedPred{Step: tp.Step, Pred: tp.Pred})
	}
	e.scratch.Put(sc)
	return fr
}
