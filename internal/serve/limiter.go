package serve

import (
	"sync"
	"time"
)

// maxBuckets bounds the limiter's per-client table; when an insert
// would exceed it, buckets idle long enough to have fully refilled are
// evicted (dropping a full bucket cannot grant extra requests).
const maxBuckets = 4096

// rateLimiter is a per-client token bucket: each key refills at rate
// tokens/second up to burst, and one request costs one token. Keys are
// whatever the caller uses to identify clients (header value or remote
// address).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow takes one token from key's bucket. When the bucket is empty it
// returns false and how long until the next token accrues — the
// Retry-After the HTTP layer should send.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictLocked drops buckets that have been idle long enough to refill
// completely; if every bucket is hot the table grows past maxBuckets
// rather than forgetting live debt (unbounded growth then requires
// maxBuckets *concurrently* hot clients, which is the queue's problem,
// not the limiter's).
func (l *rateLimiter) evictLocked(now time.Time) {
	refill := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= refill {
			delete(l.buckets, k)
		}
	}
}
