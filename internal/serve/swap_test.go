package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testutil"
)

// versionedEngine is a stubEngine whose results encode which engine
// produced them (Latency == version), so swap tests can tell old and
// new apart — and spot a response mixing the two.
type versionedEngine struct {
	stubEngine
	version int
}

func newVersionedEngine(v int) *versionedEngine {
	return &versionedEngine{stubEngine: stubEngine{inLen: 4, classes: 3}, version: v}
}

func (e *versionedEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	preds := e.stubEngine.InferBatch(inputs, samples)
	for i := range preds {
		preds[i].Latency = e.version
	}
	return preds
}

// A swap must be invisible to concurrent clients: no request fails, no
// request observes anything but wholly the old or wholly the new
// engine, and the model's accounting identity — with retired counters
// folded in — survives every cutover.
func TestRegistrySwapAtomicUnderLoad(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newVersionedEngine(0), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const (
		clients = 8
		perC    = 60
		swaps   = 5
	)
	var wg sync.WaitGroup
	var served [1 + swaps]atomic.Int64
	errCh := make(chan error, clients*perC)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				srv := g.Get("m")
				p, err := srv.Infer(context.Background(), input(float64(i%3)), -1, -1)
				if err != nil {
					// ErrClosed here is the race the HTTP path resolves
					// by chasing the pointer; at the API level a retry
					// against the current server must succeed.
					if err != ErrClosed {
						errCh <- fmt.Errorf("client %d: %v", c, err)
						return
					}
					if p, err = g.Get("m").Infer(context.Background(), input(float64(i%3)), -1, -1); err != nil {
						errCh <- fmt.Errorf("client %d retry: %v", c, err)
						return
					}
				}
				if p.Latency < 0 || p.Latency > swaps {
					errCh <- fmt.Errorf("client %d: impossible engine version %d", c, p.Latency)
					return
				}
				if p.Pred != (i%3)%3 {
					errCh <- fmt.Errorf("client %d: pred %d for input %d", c, p.Pred, i%3)
					return
				}
				served[p.Latency].Add(1)
			}
		}(c)
	}
	for v := 1; v <= swaps; v++ {
		time.Sleep(2 * time.Millisecond)
		if err := g.Swap("m", newVersionedEngine(v), false); err != nil {
			t.Fatalf("swap %d: %v", v, err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	snap := g.Snapshot().Models["m"]
	if snap.Swaps != swaps {
		t.Fatalf("swaps counter %d, want %d", snap.Swaps, swaps)
	}
	var total int64
	for v := range served {
		total += served[v].Load()
	}
	if total != clients*perC {
		t.Fatalf("served %d responses, want %d", total, clients*perC)
	}
	// Accounting identity across every cutover: the folded totals must
	// cover all traffic, whichever engine served it.
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("identity broken: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
	if snap.Completed != uint64(clients*perC) {
		t.Fatalf("completed %d, want %d", snap.Completed, clients*perC)
	}
}

// The HTTP path must hide the swap race entirely: requests racing the
// cutover are chased onto the replacement server, never answered 503.
func TestRegistrySwapInvisibleOverHTTP(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newVersionedEngine(0), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	const n = 200
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				resp, raw := postJSON(t, client, ts.URL+"/v1/models/m/infer", InferRequest{Input: input(1)}, nil)
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
			}
		}()
	}
	for v := 1; v <= 3; v++ {
		time.Sleep(2 * time.Millisecond)
		if err := g.Swap("m", newVersionedEngine(v), false); err != nil {
			t.Fatalf("swap %d: %v", v, err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// Golden-checked swap of an identical model must succeed, and serving
// after the cutover must stay bit-identical to direct evaluation on
// the replacement engine.
func TestRegistrySwapGoldenBitIdentity(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	mOld, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	mNew, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := core.RunConfig{EarlyFire: true}

	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("lenet", &TTFSEngine{Model: mOld, Run: run},
		Options{MaxBatch: 8, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if err := g.Swap("lenet", &TTFSEngine{Model: mNew, Run: run}, true); err != nil {
		t.Fatalf("golden swap of identical model rejected: %v", err)
	}

	sampleLen := fx.Conv.Net.InLen
	srv := g.Get("lenet")
	for i := 0; i < 8; i++ {
		in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
		got, err := srv.Infer(context.Background(), in, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		ref := mNew.Infer(in, run)
		if got.Pred != ref.Pred || got.Latency != ref.Latency || got.TotalSpikes != ref.TotalSpikes {
			t.Fatalf("sample %d after swap: served (%d,%d,%d) != direct (%d,%d,%d)",
				i, got.Pred, got.Latency, got.TotalSpikes, ref.Pred, ref.Latency, ref.TotalSpikes)
		}
		for j := range ref.Potentials {
			if math.Float64bits(got.Potentials[j]) != math.Float64bits(ref.Potentials[j]) {
				t.Fatalf("sample %d: potential %d not bit-identical after swap", i, j)
			}
		}
	}
}

// A golden check against a behaviorally different candidate must fail
// the swap and keep the old engine serving, untouched.
func TestRegistrySwapGoldenRejection(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newVersionedEngine(1), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	before := g.Get("m")

	err := g.Swap("m", newVersionedEngine(2), true)
	if err == nil {
		t.Fatal("golden check passed for engines with different results")
	}
	if !strings.Contains(err.Error(), "old engine kept") {
		t.Fatalf("unexpected error: %v", err)
	}
	if g.Get("m") != before {
		t.Fatal("server replaced despite failed golden check")
	}
	p, err := g.Get("m").Infer(context.Background(), input(1), -1, -1)
	if err != nil || p.Latency != 1 {
		t.Fatalf("old engine not serving after rejected swap: %v %+v", err, p)
	}
	if got := g.Snapshot().Models["m"].Swaps; got != 0 {
		t.Fatalf("swaps counter %d after rejected swap, want 0", got)
	}
}

// A candidate that changes the request contract (input length or class
// count) must be rejected regardless of golden checking.
func TestRegistrySwapShapeMismatch(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", &stubEngine{inLen: 4, classes: 3}, Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Swap("m", &stubEngine{inLen: 8, classes: 3}, false); err == nil {
		t.Fatal("swap accepted engine with different input length")
	}
	if err := g.Swap("m", &stubEngine{inLen: 4, classes: 5}, false); err == nil {
		t.Fatal("swap accepted engine with different class count")
	}
	if err := g.Swap("nope", &stubEngine{inLen: 4, classes: 3}, false); err == nil {
		t.Fatal("swap accepted unknown model")
	}
}

// The swap endpoint: disabled (501) without a BuildEngine hook, full
// build-check-cutover loop with one, input validation on the way.
func TestRegistrySwapEndpoint(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newVersionedEngine(1), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	resp, _ := postJSON(t, client, ts.URL+"/v1/models/m/swap", SwapRequest{Source: "x"}, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("swap without BuildEngine: status %d, want 501", resp.StatusCode)
	}

	g2 := NewRegistry(RegistryOptions{
		BuildEngine: func(model string, req SwapRequest) (Engine, error) {
			switch req.Source {
			case "same":
				return newVersionedEngine(1), nil
			case "different":
				return newVersionedEngine(9), nil
			}
			return nil, fmt.Errorf("unknown source %q", req.Source)
		},
	})
	if _, err := g2.Add("m", newVersionedEngine(1), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	ts2 := httptest.NewServer(g2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()

	resp, raw := postJSON(t, client2, ts2.URL+"/v1/models/m/swap", SwapRequest{Source: "same", GoldenCheck: true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("golden swap: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, client2, ts2.URL+"/v1/models/m/swap", SwapRequest{Source: "different", GoldenCheck: true}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejected golden swap: status %d, want 409: %s", resp.StatusCode, raw)
	}
	resp, _ = postJSON(t, client2, ts2.URL+"/v1/models/nope/swap", SwapRequest{Source: "same"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, client2, ts2.URL+"/v1/models/m/swap", SwapRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing source: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, client2, ts2.URL+"/v1/models/m/swap", SwapRequest{Source: "nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("builder error: status %d, want 400", resp.StatusCode)
	}
	if got := g2.Snapshot().Models["m"].Swaps; got != 1 {
		t.Fatalf("swaps counter %d, want 1", got)
	}
}

// Liveness vs readiness: /healthz is 200 from construction, /readyz
// answers 503 until warmup (Warm or SetReady) and 503 again on Close.
func TestRegistryReadiness(t *testing.T) {
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", newStubEngine(), Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	get := func(path string) int {
		t.Helper()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before warmup: %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warmup: %d, want 503", got)
	}
	if g.Ready() {
		t.Fatal("Ready() true before warmup")
	}
	g.Warm()
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after Warm: %d, want 200", got)
	}
	if !g.Ready() {
		t.Fatal("Ready() false after Warm")
	}
	g.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after SetReady(false): %d, want 503", got)
	}
	g.SetReady(true)
	g.Close()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d, want 503", got)
	}
	if g.Ready() {
		t.Fatal("Ready() true after Close")
	}
}

// A /metrics scrape landing in a swap's drain window — after the
// cutover, before the old server's counters fold into the retired
// totals — must still count the retiring server: per-model counters
// never go backwards and requests in flight on the old engine stay
// visible as accepted.
func TestRegistrySnapshotCountsDrainingServer(t *testing.T) {
	old := newStubEngine()
	old.enter = make(chan struct{}, 4)
	old.release = make(chan struct{}, 4)
	g := NewRegistry(RegistryOptions{})
	if _, err := g.Add("m", old, Options{MaxBatch: 4, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Park one request inside the old engine's InferBatch.
	inferDone := make(chan error, 1)
	go func() {
		_, err := g.Get("m").Infer(context.Background(), input(1), -1, -1)
		inferDone <- err
	}()
	<-old.enter

	// Cut over while that request is still in flight; the swap's drain
	// blocks on the gated batch, holding the drain window open.
	swapDone := make(chan error, 1)
	go func() { swapDone <- g.Swap("m", newStubEngine(), false) }()
	deadline := time.Now().Add(3 * time.Second)
	for g.Snapshot().Models["m"].Swaps != 1 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the cutover")
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-drain scrape: the old server is neither live nor retired yet,
	// but its accepted request must still be counted.
	if got := g.Snapshot().Models["m"].Accepted; got != 1 {
		t.Fatalf("accepted = %d during the drain window, want 1", got)
	}

	old.release <- struct{}{}
	if err := <-inferDone; err != nil {
		t.Fatalf("infer on the draining server: %v", err)
	}
	if err := <-swapDone; err != nil {
		t.Fatalf("swap: %v", err)
	}
	snap := g.Snapshot().Models["m"]
	if snap.Accepted != 1 || snap.Completed != 1 {
		t.Fatalf("after drain: accepted %d completed %d, want 1/1", snap.Accepted, snap.Completed)
	}
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("identity broken: accepted %d != completed %d + expired %d + failed %d",
			snap.Accepted, snap.Completed, snap.Expired, snap.Failed)
	}
}
