package serve

import (
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/stream"
)

// serveStream runs one /v1/stream session: frames in on the request
// body, one event per frame out on the response, flushed as produced.
//
// The session commits to a 200 + streaming Content-Type immediately
// (per-frame problems are in-band error events, not HTTP statuses), so
// admission decisions (rate limit, unknown model) must happen before
// this is called.
//
// reacquire implements hot-swap chasing for registry deployments: when
// the serving server drains mid-session it is asked for a replacement —
// a non-nil, different server transparently continues the session; nil
// means the process really is going away and the client gets the
// terminal drain event. A nil reacquire (single-server deployments)
// always drains.
func serveStream(w http.ResponseWriter, r *http.Request, srv *Server, reacquire func(*Server) *Server) {
	format := stream.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	timeline := wantTimeline(r)

	rc := http.NewResponseController(w)
	// Full-duplex lets us write events while the request body is still
	// open (HTTP/1.x needs the opt-in; elsewhere it's a no-op or
	// unsupported-and-already-duplex).
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", format.ContentType())
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if rc.Flush() != nil {
		return
	}

	met := srv.Metrics()
	met.streamSession()
	defer func() { met.streamDetach() }()

	// The reader goroutine decodes frames off the body so the main loop
	// can select between "next frame" and "server draining". Two frame
	// buffers alternate: the channel is unbuffered, so the reader can't
	// start overwriting a buffer until the main loop has taken the
	// *next* one — by which point the previous frame's inference is done
	// and its input is dead.
	type frameMsg struct {
		f   stream.Frame
		err error
	}
	frames := make(chan frameMsg)
	done := make(chan struct{})
	defer close(done)
	inLen := srv.eng.InLen()
	go func() {
		dec := stream.NewDecoder(r.Body, r.Header.Get("Content-Type"))
		var bufs [2]stream.Frame
		for i := 0; ; i ^= 1 {
			err := dec.Next(&bufs[i], inLen)
			select {
			case frames <- frameMsg{f: bufs[i], err: err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	enc := stream.NewEncoder(w, format)
	var ev stream.Event
	var acked uint32
	drain := srv.Draining()
	emit := func() bool {
		if enc.Encode(&ev) != nil {
			return false
		}
		return rc.Flush() == nil
	}
	// drainOrChase handles the serving server going away: chase the
	// swap replacement when there is one, else emit the terminal drain
	// event. Returns the replacement, or nil when the session is over.
	drainOrChase := func() *Server {
		if reacquire != nil {
			if ns := reacquire(srv); ns != nil && ns != srv {
				met.streamDetach()
				met = ns.Metrics()
				met.streamAttach()
				return ns
			}
		}
		ev = stream.Event{Kind: stream.KindDrain, Seq: acked, Msg: "server draining; session complete as acked"}
		emit()
		return nil
	}
	for {
		select {
		case <-drain:
			if srv = drainOrChase(); srv == nil {
				return
			}
			drain = srv.Draining()
		case msg := <-frames:
			if msg.err == io.EOF {
				// Client finished the session cleanly; every frame has
				// its event already.
				return
			}
			if msg.err != nil {
				// A malformed frame poisons the body's framing — there
				// is no resynchronization point — so the error event is
				// terminal for the session.
				ev = stream.Event{Kind: stream.KindError, Seq: acked, Msg: msg.err.Error()}
				emit()
				return
			}
			seq := acked + 1
		inferFrame:
			start := time.Now()
			fr, err := srv.InferFrame(r.Context(), msg.f.Input, msg.f.Sample, msg.f.Label, timeline)
			if err != nil {
				if errors.Is(err, ErrClosed) {
					// The frame was not served; a replacement can still
					// take it without the client noticing.
					if srv = drainOrChase(); srv == nil {
						return
					}
					drain = srv.Draining()
					goto inferFrame
				}
				if r.Context().Err() != nil {
					return // client gone; nobody to tell
				}
				// Per-frame failure (engine panic, bad input length):
				// answer the frame with an error event and keep going.
				ev = stream.Event{Kind: stream.KindError, Seq: seq, Msg: err.Error()}
				acked = seq
				if !emit() {
					return
				}
				continue
			}
			ev = stream.Event{
				Kind:         stream.KindFrame,
				Seq:          seq,
				Pred:         fr.Pred,
				LatencySteps: fr.Latency,
				TotalSpikes:  fr.TotalSpikes,
				WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
				EarlyExit:    fr.EarlyExit,
				EventsSaved:  fr.EventsSaved,
				StageSpikes:  fr.StageSpikes,
			}
			for _, tp := range fr.Timeline {
				ev.Timeline = append(ev.Timeline, stream.TimedPred{Step: tp.Step, Pred: tp.Pred})
			}
			acked = seq
			if !emit() {
				return
			}
		}
	}
}

// wantTimeline reads the session-level ?timeline=1 switch.
func wantTimeline(r *http.Request) bool {
	v := r.URL.Query().Get("timeline")
	return v == "1" || v == "true"
}

// handleStream is the single-model /v1/stream endpoint.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Full duplex before any write: error responses here are sent while
	// the client's chunked body is still open, and writeHeader would
	// otherwise block draining it from a client that is itself waiting
	// for our response.
	_ = http.NewResponseController(w).EnableFullDuplex()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.Closed() {
		writeError(w, http.StatusServiceUnavailable, ErrClosed.Error())
		return
	}
	serveStream(w, r, s, nil)
}
