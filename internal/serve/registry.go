package serve

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RegistryOptions configures the multi-model registry's admission
// layer. The zero value disables rate limiting and keeps deadline
// shedding on.
type RegistryOptions struct {
	// RatePerSec is the per-client token refill rate; 0 disables rate
	// limiting entirely.
	RatePerSec float64
	// Burst is the token bucket capacity (default: RatePerSec rounded
	// up, minimum 1) — how far a client can run ahead of its rate.
	Burst int
	// ClientHeader names the request header identifying a client for
	// rate limiting (default "X-Client-ID"); requests without it are
	// keyed by remote address.
	ClientHeader string
	// DisableShedding turns off deadline-headroom admission: by default
	// a request whose deadline is tighter than the target model's
	// rolling p99 batch latency is rejected with 429 before it can
	// occupy a queue slot — it would expire before any batch could
	// serve it, so enqueueing it only steals capacity from live work.
	DisableShedding bool
	// BuildEngine, when set, enables the POST /v1/models/{name}/swap
	// admin endpoint: it turns a SwapRequest into a ready-to-serve
	// Engine (loading or training happens here, outside any lock). Nil
	// leaves the endpoint answering 501.
	BuildEngine func(model string, req SwapRequest) (Engine, error)
}

// Registry hosts several named models in one HTTP process, each with
// its own Server (own queue, workers, metrics, drain), behind a shared
// admission layer:
//
//	POST /v1/models/{name}/infer  — infer against one model
//	POST /v1/models/{name}/stream — frame-session streaming inference
//	POST /v1/models/{name}/swap   — atomically replace the model's engine
//	POST /v1/infer                — back-compat route to the default model
//	POST /v1/stream               — streaming against the default model
//	GET  /v1/models              — list hosted models
//	GET  /metrics                — per-model snapshots nested in one doc
//	GET  /healthz                — liveness: 200 until Close starts
//	GET  /readyz                 — readiness: 200 only once warm (SetReady)
//
// Create with NewRegistry, attach models with Add, serve Handler, stop
// with Close (drains every model).
type Registry struct {
	opt     RegistryOptions
	limiter *rateLimiter // nil when rate limiting is disabled
	start   time.Time

	rateLimited atomic.Uint64
	// ready gates /readyz only: it flips true when warmup finishes
	// (Warm, or SetReady for callers that warm by hand), so a routing
	// tier never sends traffic to a cold process. Inference itself is
	// not gated — a direct client may accept cold-start latency.
	ready atomic.Bool

	mu          sync.RWMutex
	models      map[string]*registryModel
	order       []string // Add order; order[0] is the default fallback
	defaultName string
	closed      bool

	// snapMu guards snapModels, the reusable sorted-model scratch for
	// Snapshot: scrapes under load shouldn't churn allocations against
	// the request path. (The Models map itself escapes to the caller and
	// cannot be reused — it is size-hinted instead.)
	snapMu     sync.Mutex
	snapModels []*registryModel
}

type registryModel struct {
	name string
	// srv is the model's live server. Swap replaces it atomically;
	// request handlers load it exactly once per request, so every
	// request runs wholly against one engine — never a half-swapped
	// view.
	srv  atomic.Pointer[Server]
	shed atomic.Uint64 // deadline-headroom 429s for this model

	// swapMu serializes Swap calls for this model (cutovers are rare;
	// overlapping ones would race the retired-counter fold).
	swapMu sync.Mutex
	swaps  atomic.Uint64

	// retired accumulates the final counters of servers drained by
	// Swap, so per-model accounting (and its identity, accepted =
	// completed + expired + failed) survives any number of cutovers.
	// draining is the server a Swap has cut away but not yet drained:
	// Snapshot keeps counting it until retire folds its final totals,
	// so metrics never go backwards mid-drain. Both fields share
	// retiredMu — a server is always visible as exactly one of live,
	// draining, or retired, never zero or two.
	retiredMu sync.Mutex
	retired   retiredCounters
	draining  *Server
}

// retiredCounters are the scalar Snapshot counters that must survive a
// hot-swap; window-based statistics (latency percentiles, batch
// histogram) intentionally restart with the new engine.
type retiredCounters struct {
	accepted, rejected, expired, failed, completed uint64
	totalSpikes                                    uint64
	earlyExit, eventsSaved, latencyPath            uint64
	streamSessions, streamFrames                   uint64
}

func (m *registryModel) server() *Server { return m.srv.Load() }

// retire folds a drained server's final counters into the model's
// running totals and clears the draining slot in one critical
// section, so no Snapshot can count the server twice or miss it.
// Call only after that server's Close returned: every request is
// settled then, so the fold moves a self-consistent set.
func (m *registryModel) retire(s Snapshot) {
	m.retiredMu.Lock()
	m.retired.accepted += s.Accepted
	m.retired.rejected += s.Rejected
	m.retired.expired += s.Expired
	m.retired.failed += s.Failed
	m.retired.completed += s.Completed
	m.retired.totalSpikes += s.TotalSpikes
	m.retired.earlyExit += s.EarlyExitTotal
	m.retired.eventsSaved += s.EventsSaved
	m.retired.latencyPath += s.LatencyPathTotal
	m.retired.streamSessions += s.StreamSessions
	m.retired.streamFrames += s.StreamFrames
	m.draining = nil
	m.retiredMu.Unlock()
}

// NewRegistry creates an empty registry. Add at least one model before
// serving; the first Add becomes the default route target unless
// SetDefault overrides it.
func NewRegistry(opt RegistryOptions) *Registry {
	g := &Registry{
		opt:    opt,
		start:  time.Now(),
		models: make(map[string]*registryModel),
	}
	if opt.RatePerSec > 0 {
		burst := opt.Burst
		if burst <= 0 {
			burst = int(opt.RatePerSec + 0.999)
		}
		g.limiter = newRateLimiter(opt.RatePerSec, burst)
	}
	if g.opt.ClientHeader == "" {
		g.opt.ClientHeader = "X-Client-ID"
	}
	return g
}

// Add starts a Server for eng under name and registers it. The first
// model added becomes the default for /v1/infer.
func (g *Registry) Add(name string, eng Engine, opt Options) (*Server, error) {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return nil, fmt.Errorf("serve: invalid model name %q", name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	if _, ok := g.models[name]; ok {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	srv := New(eng, opt)
	m := &registryModel{name: name}
	m.srv.Store(srv)
	g.models[name] = m
	g.order = append(g.order, name)
	if g.defaultName == "" {
		g.defaultName = name
	}
	return srv, nil
}

// SetDefault routes /v1/infer to name.
func (g *Registry) SetDefault(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.models[name]; !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	g.defaultName = name
	return nil
}

// Get returns the named model's Server (nil if unknown) — the handle
// for per-model drain or direct Infer.
func (g *Registry) Get(name string) *Server {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if m, ok := g.models[name]; ok {
		return m.server()
	}
	return nil
}

// Names returns the registered model names in Add order.
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.order...)
}

// Warm runs one zero-sample batch through every model's engine, off
// the books: scatter plans get built and scratch arenas sized before
// the first user request pays for them. When every model is warm the
// registry reports ready on /readyz.
func (g *Registry) Warm() {
	for _, name := range g.Names() {
		if srv := g.Get(name); srv != nil {
			srv.Warm()
		}
	}
	g.SetReady(true)
}

// SetReady flips the /readyz answer. Callers that warm models by hand
// (or want to take the process out of a routing pool without closing
// it) drive this directly; Warm sets it as its last step.
func (g *Registry) SetReady(v bool) { g.ready.Store(v) }

// Ready reports whether the registry is warmed up and accepting
// traffic — the /readyz contract a routing tier probes.
func (g *Registry) Ready() bool { return g.ready.Load() && !g.Closed() }

// Close drains every model (each Server finishes its queued work) and
// marks the registry closed. Safe to call more than once.
func (g *Registry) Close() {
	g.mu.Lock()
	g.closed = true
	models := make([]*registryModel, 0, len(g.models))
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.Unlock()
	for _, m := range models {
		m.server().Close()
	}
}

// Closed reports whether Close has started.
func (g *Registry) Closed() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.closed
}

// Handler returns the registry's HTTP API.
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{name}/infer", g.handleModelInfer)
	mux.HandleFunc("POST /v1/models/{name}/stream", g.handleModelStream)
	mux.HandleFunc("POST /v1/models/{name}/swap", g.handleSwap)
	mux.HandleFunc("GET /v1/models", g.handleList)
	mux.HandleFunc("/v1/infer", g.handleDefaultInfer)
	mux.HandleFunc("POST /v1/stream", g.handleDefaultStream)
	mux.HandleFunc("/healthz", g.handleHealth)
	mux.HandleFunc("/readyz", g.handleReady)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

func (g *Registry) lookup(name string) *registryModel {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.models[name]
}

func (g *Registry) handleModelInfer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m := g.lookup(name)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	g.serveModel(w, r, m)
}

func (g *Registry) handleDefaultInfer(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	m := g.models[g.defaultName]
	g.mu.RUnlock()
	if m == nil {
		writeError(w, http.StatusNotFound, "no models registered")
		return
	}
	g.serveModel(w, r, m)
}

// serveModel is the admission-controlled inference path: per-client
// rate limit, then body decode, then deadline-headroom shedding, then
// the model's own queue.
func (g *Registry) serveModel(w http.ResponseWriter, r *http.Request, m *registryModel) {
	srv := m.server()
	if g.limiter != nil {
		if ok, retry := g.limiter.allow(g.clientKey(r)); !ok {
			g.rateLimited.Add(1)
			writeRetryAfter(w, retry)
			writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return
		}
	}
	req, ok := decodeInferRequest(w, r, srv)
	if !ok {
		return
	}
	defer putInferReq(req)
	// Deadline-headroom shedding: a deadline tighter than the model's
	// rolling p99 batch latency cannot be met even if the request were
	// dispatched immediately, so reject before it occupies a queue slot
	// and a batch seat that live requests need. Requests without a
	// deadline (possible only when MaxTimeout is unset) always pass.
	// Requests taking the direct single-sample path are exempt: they
	// never hold a queue slot and the batch p99 says nothing about
	// their service time.
	if !g.opt.DisableShedding && !srv.latencyRoute(req.mode, req.timeoutMs) {
		if timeout := srv.inferTimeout(req.timeoutMs); timeout > 0 {
			if p99 := srv.Metrics().BatchLatencyP99(); p99 > 0 && timeout < p99 {
				m.shed.Add(1)
				writeRetryAfter(w, p99)
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("deadline %s below model p99 batch latency %s",
						timeout.Round(time.Millisecond), p99.Round(time.Millisecond)))
				return
			}
		}
	}
	// A request can land on a server in the instant Swap retires it:
	// the queue is already closed but the model is alive on its
	// replacement. Chasing the pointer once makes the cutover invisible
	// to clients; a second ErrClosed means the registry really is
	// shutting down and 503 is the honest answer.
	for {
		err := serveInferSwappable(w, r, srv, req)
		if !errors.Is(err, ErrClosed) {
			return
		}
		if cur := m.server(); cur != srv {
			srv = cur
			continue
		}
		writeInferError(w, err)
		return
	}
}

func (g *Registry) handleModelStream(w http.ResponseWriter, r *http.Request) {
	// Full duplex before any write — see serveModelStream.
	_ = http.NewResponseController(w).EnableFullDuplex()
	name := r.PathValue("name")
	m := g.lookup(name)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	g.serveModelStream(w, r, m)
}

func (g *Registry) handleDefaultStream(w http.ResponseWriter, r *http.Request) {
	// Full duplex before any write — see serveModelStream.
	_ = http.NewResponseController(w).EnableFullDuplex()
	g.mu.RLock()
	m := g.models[g.defaultName]
	g.mu.RUnlock()
	if m == nil {
		writeError(w, http.StatusNotFound, "no models registered")
		return
	}
	g.serveModelStream(w, r, m)
}

// serveModelStream admits one streaming session against a model. A
// session costs one rate-limit token regardless of how many frames it
// carries — the limiter protects against connection storms; per-frame
// pressure is bounded by the session's own lockstep (one frame in
// flight at a time). Deadline shedding does not apply: sessions have
// no deadline, and each frame runs the direct single-sample path.
//
// Stream handlers enable full duplex before writing anything, even
// admission errors: the client's chunked request body is still open at
// that point, and without full duplex writeHeader blocks draining it —
// a deadlock against a lockstep client that sends nothing until it
// reads the response.
//
// The reacquire closure makes hot-swaps invisible mid-session: when
// the serving server drains, the session chases the model's pointer to
// the replacement and only reports a terminal drain once the registry
// itself is closing (or the swap hasn't produced a new server).
func (g *Registry) serveModelStream(w http.ResponseWriter, r *http.Request, m *registryModel) {
	if g.limiter != nil {
		if ok, retry := g.limiter.allow(g.clientKey(r)); !ok {
			g.rateLimited.Add(1)
			writeRetryAfter(w, retry)
			writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return
		}
	}
	srv := m.server()
	if srv.Closed() {
		// Chase one swap-cutover before concluding the model is gone,
		// mirroring serveModel.
		if cur := m.server(); cur != srv && !cur.Closed() {
			srv = cur
		} else {
			writeError(w, http.StatusServiceUnavailable, ErrClosed.Error())
			return
		}
	}
	serveStream(w, r, srv, func(cur *Server) *Server {
		if g.Closed() {
			return nil
		}
		if ns := m.server(); ns != cur {
			return ns
		}
		return nil
	})
}

// BeginDrain signals every model's live server to stop admitting new
// work and lets open streaming sessions wind down with a terminal
// drain event, without blocking. Call it before shutting the HTTP
// listener down gracefully: http.Server.Shutdown waits for active
// handlers, and a streaming session only returns once its server
// drains.
func (g *Registry) BeginDrain() {
	g.mu.RLock()
	models := make([]*registryModel, 0, len(g.models))
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.RUnlock()
	for _, m := range models {
		m.server().BeginDrain()
	}
}

// clientKey identifies the client for rate limiting: the configured
// header when present, else the remote host (ports vary per
// connection, so they are stripped).
func (g *Registry) clientKey(r *http.Request) string {
	if v := r.Header.Get(g.opt.ClientHeader); v != "" {
		return v
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// ModelInfo is one entry of the GET /v1/models listing.
type ModelInfo struct {
	Name     string `json:"name"`
	Default  bool   `json:"default"`
	InputLen int    `json:"input_len"`
	Classes  int    `json:"classes"`
	MaxBatch int    `json:"max_batch"`
	Closed   bool   `json:"closed"`
}

// ModelList is the GET /v1/models response body.
type ModelList struct {
	Default string      `json:"default"`
	Models  []ModelInfo `json:"models"`
}

func (g *Registry) handleList(w http.ResponseWriter, _ *http.Request) {
	g.mu.RLock()
	list := ModelList{Default: g.defaultName}
	for _, name := range g.order {
		srv := g.models[name].server()
		list.Models = append(list.Models, ModelInfo{
			Name:     name,
			Default:  name == g.defaultName,
			InputLen: srv.eng.InLen(),
			Classes:  srv.eng.Classes(),
			MaxBatch: srv.opt.MaxBatch,
			Closed:   srv.Closed(),
		})
	}
	g.mu.RUnlock()
	writeJSON(w, http.StatusOK, list)
}

// ModelSnapshot nests one model's serving metrics plus the admission
// decisions made on its behalf. Counters span every engine the model
// has run (retired servers' totals are folded in at swap time); the
// latency windows and batch histogram describe the current engine.
type ModelSnapshot struct {
	Snapshot
	// DeadlineShed counts requests rejected before enqueue because
	// their deadline was below the model's rolling p99 batch latency.
	DeadlineShed uint64 `json:"deadline_shed"`
	// Swaps counts completed hot-swaps of this model's engine.
	Swaps uint64 `json:"swaps"`
}

// RegistrySnapshot is the GET /metrics response body: one document,
// per-model snapshots nested by name.
type RegistrySnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	DefaultModel  string  `json:"default_model"`
	// RateLimited counts requests rejected by the per-client token
	// bucket (registry-wide: the limit is per client, not per model).
	RateLimited uint64                   `json:"rate_limited"`
	Models      map[string]ModelSnapshot `json:"models"`
}

// Snapshot captures the registry-level counters and every model's
// metrics.
func (g *Registry) Snapshot() RegistrySnapshot {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	g.mu.RLock()
	snap := RegistrySnapshot{
		UptimeSeconds: time.Since(g.start).Seconds(),
		RateLimited:   g.rateLimited.Load(),
		Models:        make(map[string]ModelSnapshot, len(g.models)),
		DefaultModel:  g.defaultName,
	}
	models := g.snapModels[:0]
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	g.snapModels = models
	for _, m := range models {
		// Live, draining, and retired are read in one critical section
		// (mirroring Swap's cutover and retire), so a scrape landing in
		// a drain window counts the retiring server exactly once and
		// per-model counters never go backwards.
		m.retiredMu.Lock()
		s := m.server().Metrics().Snapshot()
		if d := m.draining; d != nil {
			ds := d.Metrics().Snapshot()
			s.Accepted += ds.Accepted
			s.Rejected += ds.Rejected
			s.Expired += ds.Expired
			s.Failed += ds.Failed
			s.Completed += ds.Completed
			s.TotalSpikes += ds.TotalSpikes
			s.EarlyExitTotal += ds.EarlyExitTotal
			s.EventsSaved += ds.EventsSaved
			s.LatencyPathTotal += ds.LatencyPathTotal
			s.StreamSessions += ds.StreamSessions
			s.StreamActive += ds.StreamActive
			s.StreamFrames += ds.StreamFrames
		}
		r := m.retired
		m.retiredMu.Unlock()
		s.Accepted += r.accepted
		s.Rejected += r.rejected
		s.Expired += r.expired
		s.Failed += r.failed
		s.Completed += r.completed
		s.TotalSpikes += r.totalSpikes
		s.EarlyExitTotal += r.earlyExit
		s.EventsSaved += r.eventsSaved
		s.LatencyPathTotal += r.latencyPath
		s.StreamSessions += r.streamSessions
		s.StreamFrames += r.streamFrames
		if s.Completed > 0 {
			s.SpikesPerSample = float64(s.TotalSpikes) / float64(s.Completed)
		}
		snap.Models[m.name] = ModelSnapshot{
			Snapshot:     s,
			DeadlineShed: m.shed.Load(),
			Swaps:        m.swaps.Load(),
		}
	}
	return snap
}

func (g *Registry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Snapshot())
}

func (g *Registry) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if g.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the routing-tier probe: liveness (/healthz) says the
// process is up, readiness says it is warm enough to take traffic
// without serving cold-start latency.
func (g *Registry) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case g.Closed():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
	case !g.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "warming"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
