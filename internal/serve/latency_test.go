package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/testutil"
)

// singleStubEngine is a stubEngine with the SingleEngine capability:
// InferOne calls are recorded separately from batches so tests can
// observe which path a request took.
type singleStubEngine struct {
	stubEngine
	panicOnce bool

	mu      sync.Mutex
	singles []float64 // input[0] of every InferOne call
}

func newSingleStubEngine() *singleStubEngine {
	return &singleStubEngine{stubEngine: stubEngine{inLen: 4, classes: 3}}
}

func (e *singleStubEngine) InferOne(input []float64, sample int) Prediction {
	e.mu.Lock()
	e.singles = append(e.singles, input[0])
	e.mu.Unlock()
	if e.panicOnce {
		e.panicOnce = false
		panic("stub single failure")
	}
	return Prediction{
		Pred:        int(input[0]) % e.classes,
		Latency:     3,
		TotalSpikes: 7,
		EarlyExit:   true,
		EventsSaved: 4,
	}
}

func (e *singleStubEngine) singleCalls() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.singles)
}

// latencyRoute must honor the request's explicit mode first, then the
// server default, then the automatic rule (no batching, or a deadline
// tighter than the rolling batch p99); engines without the capability
// always take the queue.
func TestLatencyRouting(t *testing.T) {
	single := newSingleStubEngine()
	batchOnly := newStubEngine()
	mk := func(eng Engine, opt Options) *Server {
		s := New(eng, opt)
		t.Cleanup(s.Close)
		return s
	}
	cases := []struct {
		name string
		srv  *Server
		req  InferRequest
		want bool
	}{
		{"no capability ignores mode", mk(batchOnly, Options{MaxBatch: 1}), InferRequest{Mode: ModeLatency}, false},
		{"explicit latency", mk(single, Options{MaxBatch: 8}), InferRequest{Mode: ModeLatency}, true},
		{"explicit throughput", mk(single, Options{MaxBatch: 1}), InferRequest{Mode: ModeThroughput}, false},
		{"default mode latency", mk(single, Options{MaxBatch: 8, DefaultMode: ModeLatency}), InferRequest{}, true},
		{"request overrides default", mk(single, Options{MaxBatch: 8, DefaultMode: ModeLatency}), InferRequest{Mode: ModeThroughput}, false},
		{"auto: batching off", mk(single, Options{MaxBatch: 1}), InferRequest{}, true},
		{"auto: batching on, no deadline", mk(single, Options{MaxBatch: 8}), InferRequest{}, false},
	}
	for _, tc := range cases {
		if got := tc.srv.latencyRoute(tc.req.Mode, tc.req.TimeoutMs); got != tc.want {
			t.Errorf("%s: latencyRoute = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Auto deadline rule: seed the rolling batch p99, then a request
	// with a tighter deadline must go direct while a looser one queues.
	s := mk(single, Options{MaxBatch: 8})
	for i := 0; i < 2*batchP99Every; i++ {
		s.met.batchLatency(50 * time.Millisecond)
	}
	if !s.latencyRoute("", 10) {
		t.Error("deadline 10ms under batch p99 50ms: want direct route")
	}
	if s.latencyRoute("", 500) {
		t.Error("deadline 500ms over batch p99 50ms: want queue route")
	}
}

// InferDirect must bypass the queue, keep the accounting identity
// (accepted = completed + expired + failed), count the routing decision
// and the engine's early-exit telemetry, and feed the request-latency
// window without polluting the batch histogram.
func TestInferDirectUsesSingleEngine(t *testing.T) {
	eng := newSingleStubEngine()
	s := New(eng, Options{MaxBatch: 8, MaxWait: time.Millisecond})
	defer s.Close()

	pred, err := s.InferDirect(context.Background(), input(5), -1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Pred != 5%3 || !pred.EarlyExit || pred.EventsSaved != 4 {
		t.Fatalf("direct prediction = %+v", pred)
	}
	if eng.singleCalls() != 1 {
		t.Fatalf("single calls = %d, want 1", eng.singleCalls())
	}
	if eng.sawInput(5) {
		t.Fatal("direct request leaked into the batch path")
	}
	snap := s.Metrics().Snapshot()
	if snap.Accepted != 1 || snap.Completed != 1 || snap.LatencyPathTotal != 1 {
		t.Fatalf("accepted %d completed %d latency-path %d, want 1/1/1",
			snap.Accepted, snap.Completed, snap.LatencyPathTotal)
	}
	if snap.EarlyExitTotal != 1 || snap.EventsSaved != 4 {
		t.Fatalf("early exit %d events saved %d, want 1 and 4", snap.EarlyExitTotal, snap.EventsSaved)
	}
	for k := 1; k < len(snap.BatchSizeHist); k++ {
		if snap.BatchSizeHist[k] != 0 {
			t.Fatalf("direct request counted as a batch of %d", k)
		}
	}
	if snap.LabeledTotal != 1 {
		t.Fatalf("labeled total %d, want 1 (direct path must feed the confusion matrix)", snap.LabeledTotal)
	}
}

// Without the SingleEngine capability InferDirect must fall back to the
// batched path and still complete.
func TestInferDirectFallsBackToQueue(t *testing.T) {
	eng := newStubEngine()
	s := New(eng, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	pred, err := s.InferDirect(context.Background(), input(7), -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Pred != 7%3 || !eng.sawInput(7) {
		t.Fatalf("fallback prediction %+v, batch saw input: %v", pred, eng.sawInput(7))
	}
	if snap := s.Metrics().Snapshot(); snap.LatencyPathTotal != 0 {
		t.Fatalf("latency path total %d on the fallback path, want 0", snap.LatencyPathTotal)
	}
}

// A panicking single-sample engine must fail only that request.
func TestInferDirectPanicContained(t *testing.T) {
	eng := newSingleStubEngine()
	eng.panicOnce = true
	s := New(eng, Options{MaxBatch: 1})
	defer s.Close()
	if _, err := s.InferDirect(context.Background(), input(1), -1, -1); err == nil || !strings.Contains(err.Error(), "engine panic") {
		t.Fatalf("err = %v, want engine panic", err)
	}
	pred, err := s.InferDirect(context.Background(), input(4), -1, -1)
	if err != nil || pred.Pred != 4%3 {
		t.Fatalf("request after panic: %+v, %v", pred, err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed+snap.Expired+snap.Failed {
		t.Fatalf("accounting identity broken: %+v", snap)
	}
	if snap.Failed != 1 {
		t.Fatalf("failed %d, want 1", snap.Failed)
	}
}

// InferDirect must reject with ErrClosed once Close has started, and an
// already-expired context must be counted accepted+expired, exactly
// like the queued path.
func TestInferDirectClosedAndExpired(t *testing.T) {
	eng := newSingleStubEngine()
	s := New(eng, Options{MaxBatch: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.InferDirect(ctx, input(1), -1, -1); err != context.Canceled {
		t.Fatalf("dead context: err = %v, want context.Canceled", err)
	}
	s.Close()
	if _, err := s.InferDirect(context.Background(), input(1), -1, -1); err != ErrClosed {
		t.Fatalf("after close: err = %v, want ErrClosed", err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Accepted != 1 || snap.Expired != 1 {
		t.Fatalf("accepted %d expired %d, want 1/1", snap.Accepted, snap.Expired)
	}
}

// Over HTTP, mode=latency must take the direct path, mode=throughput
// the queue, and an unknown mode must 400 before touching the engine;
// the response must surface the early-exit telemetry.
func TestHTTPModeRouting(t *testing.T) {
	eng := newSingleStubEngine()
	s := New(eng, Options{MaxBatch: 8, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, InferResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out InferResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}

	resp, out := post(`{"input":[9,0,0,0],"mode":"latency"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("latency mode: status %d", resp.StatusCode)
	}
	if !out.EarlyExit || out.EventsSaved != 4 {
		t.Fatalf("latency response missing early-exit fields: %+v", out)
	}
	if eng.singleCalls() != 1 {
		t.Fatalf("latency mode: single calls = %d, want 1", eng.singleCalls())
	}

	resp, _ = post(`{"input":[2,0,0,0],"mode":"throughput"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("throughput mode: status %d", resp.StatusCode)
	}
	if eng.singleCalls() != 1 || !eng.sawInput(2) {
		t.Fatalf("throughput mode routed wrong: singles %d, batch saw: %v",
			eng.singleCalls(), eng.sawInput(2))
	}

	resp, _ = post(`{"input":[1,0,0,0],"mode":"warp"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", resp.StatusCode)
	}
}

// EventEngine served directly must be bit-identical to calling the core
// event engine per sample — including fault streams keyed by sample and
// the early-exit telemetry — and safe under concurrent InferOne.
func TestEventEngineServesCoreResults(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 9, Drop: 0.1, Jitter: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := core.RunConfig{EarlyExit: true}
	eng := &EventEngine{Model: m, Run: run, Faults: inj}
	sampleLen := fx.Conv.Net.InLen

	const n = 24
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
			cfg := run
			cfg.Faults = inj.Sample(i)
			want := m.InferOne(in, cfg, core.InferOpts{Engine: core.EngineEvent})
			got := eng.InferOne(in, i)
			switch {
			case got.Pred != want.Pred || got.Latency != want.Latency || got.TotalSpikes != want.TotalSpikes:
				errs[i] = "prediction fields differ"
			case got.EarlyExit != want.EarlyExit || got.EventsSaved != want.EventsSaved:
				errs[i] = "early-exit telemetry differs"
			default:
				for j := range want.Potentials {
					if math.Float64bits(got.Potentials[j]) != math.Float64bits(want.Potentials[j]) {
						errs[i] = "potentials not bit-identical"
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("sample %d: %s", i, e)
		}
	}

	// The batch entry point must agree with the single-sample one.
	inputs := make([][]float64, 6)
	samples := make([]int, 6)
	for i := range inputs {
		inputs[i] = fx.X.Data[i*sampleLen : (i+1)*sampleLen]
		samples[i] = i
	}
	preds := eng.InferBatch(inputs, samples)
	for i := range inputs {
		one := eng.InferOne(inputs[i], i)
		if preds[i].Pred != one.Pred || preds[i].Latency != one.Latency ||
			preds[i].EarlyExit != one.EarlyExit || preds[i].EventsSaved != one.EventsSaved {
			t.Fatalf("sample %d: batch %+v != single %+v", i, preds[i], one)
		}
	}
}

// A server over a real EventEngine must discover the capability and
// surface early exits end to end: direct route, early_exit_total and
// events_saved in /metrics, and the flags in the response body.
func TestServerEventEngineEndToEnd(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := &EventEngine{Model: m, Run: core.RunConfig{EarlyExit: true}}
	s := New(eng, Options{MaxBatch: 1, DefaultMode: ModeLatency})
	defer s.Close()
	if s.Single() == nil {
		t.Fatal("EventEngine capability not discovered")
	}
	s.Warm()

	sampleLen := fx.Conv.Net.InLen
	exits := 0
	for i := 0; i < 20; i++ {
		in := fx.X.Data[i*sampleLen : (i+1)*sampleLen]
		pred, err := s.InferDirect(context.Background(), in, -1, fx.Labels[i])
		if err != nil {
			t.Fatal(err)
		}
		want := m.InferOne(in, core.RunConfig{}, core.InferOpts{})
		if pred.Pred != want.Pred {
			t.Fatalf("sample %d: served %d != clocked %d", i, pred.Pred, want.Pred)
		}
		if pred.EarlyExit {
			exits++
		}
	}
	if exits == 0 {
		t.Fatal("no early exits across 20 served samples")
	}
	snap := s.Metrics().Snapshot()
	if snap.EarlyExitTotal != uint64(exits) || snap.LatencyPathTotal != 20 {
		t.Fatalf("metrics early exit %d latency path %d, want %d and 20",
			snap.EarlyExitTotal, snap.LatencyPathTotal, exits)
	}
	if snap.EventsSaved == 0 {
		t.Fatal("events_saved stayed 0 despite early exits")
	}
}
