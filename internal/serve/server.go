package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when the bounded request queue is full; the
// HTTP layer maps it to 429 so load generators can back off.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned for requests submitted after Close started; the
// HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: server closed")

// Options configures the micro-batching scheduler.
type Options struct {
	// MaxBatch is the largest batch handed to the engine (default 16 —
	// where core.InferBatch's amortization win saturates on one core).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// QueueSize bounds the request queue; submissions beyond it fail
	// fast with ErrOverloaded (default 8×MaxBatch).
	QueueSize int
	// Workers is the number of concurrent batch executors (default
	// GOMAXPROCS). More workers than cores only helps hide queueing
	// jitter; the engine is CPU-bound.
	Workers int
	// DefaultTimeout is applied to requests that carry no deadline of
	// their own (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request deadline the HTTP layer will grant
	// (0 = unlimited). Without a cap a client can send an arbitrarily
	// large timeout_ms — or none at all — and defeat deadline-based
	// admission control, so registry deployments should set this.
	MaxTimeout time.Duration
	// DefaultMode is the serving mode applied to requests that don't
	// carry their own "mode" field: ModeLatency routes them down the
	// direct single-sample path (when the engine implements
	// SingleEngine), ModeThroughput through the micro-batching queue,
	// and "" picks automatically — latency when batching is off
	// (MaxBatch 1) or the request's deadline is tighter than the rolling
	// batch p99, throughput otherwise.
	DefaultMode string
}

// Serving modes for Options.DefaultMode and InferRequest.Mode.
const (
	ModeLatency    = "latency"
	ModeThroughput = "throughput"
)

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 8 * o.MaxBatch
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

type result struct {
	pred Prediction
	err  error
}

type request struct {
	ctx    context.Context
	input  []float64
	sample int
	label  int // -1 when the request is unlabeled
	enq    time.Time
	done   chan result // buffered(1): workers never block on delivery

	// owned marks input as a pool-owned buffer whose ownership moved to
	// the server at enqueue: the worker recycles it once its batch has
	// run. The HTTP layer sets this so its pooled decode buffers can't
	// be reused while a worker still reads an abandoned request's input.
	owned bool

	// settled arbitrates metric accounting between the worker (complete/
	// fail/expired-at-dispatch) and the abandoning client (expired):
	// whoever wins the CompareAndSwap counts the request, exactly once,
	// so accepted = completed + expired + failed holds as an identity.
	settled atomic.Bool
}

// Server owns the request queue, the batching dispatcher, and the
// worker pool. Create with New, serve via Handler or Infer, stop with
// Close (drains in-flight work).
type Server struct {
	eng Engine
	opt Options
	met *Metrics

	// single is the engine's SingleEngine capability (nil when the
	// engine is batch-only), discovered once in New. Latency-mode
	// requests run on it via InferDirect, bypassing the queue.
	single SingleEngine
	// frame is the engine's FrameEngine capability (nil when absent);
	// stream sessions run their frames on it.
	frame FrameEngine

	mu     sync.RWMutex // guards closed + queue close + directWG.Add
	closed bool
	queue  chan *request

	// drain closes when BeginDrain (or Close) starts: long-lived stream
	// sessions select on it to learn the server is going away while
	// their connection is otherwise idle.
	drain     chan struct{}
	drainOnce sync.Once

	wg       sync.WaitGroup // dispatcher + workers
	directWG sync.WaitGroup // in-flight InferDirect calls
}

// New starts a server: the dispatcher and worker goroutines run until
// Close.
func New(eng Engine, opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		eng:   eng,
		opt:   opt,
		met:   newMetrics(opt.MaxBatch, eng.Classes()),
		queue: make(chan *request, opt.QueueSize),
		drain: make(chan struct{}),
	}
	s.single, _ = eng.(SingleEngine)
	s.frame, _ = eng.(FrameEngine)
	if d, ok := eng.(EngineDescriber); ok {
		s.met.setEngine(d.EngineDesc())
	}
	batches := make(chan []*request)
	s.wg.Add(1 + opt.Workers)
	go s.dispatch(batches)
	for i := 0; i < opt.Workers; i++ {
		go s.worker(batches)
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Server) Options() Options { return s.opt }

// Metrics returns the server's metrics collector.
func (s *Server) Metrics() *Metrics { return s.met }

// Warm runs one zero-sample batch directly on the engine, bypassing
// the queue and the metrics: the first inference builds the model's
// scatter plan and sizes a pooled scratch, costs that should land here
// rather than on the first user request's latency.
func (s *Server) Warm() {
	s.eng.InferBatch([][]float64{make([]float64, s.eng.InLen())}, []int{-1})
	if s.single != nil {
		// The direct path has its own pooled scratch (and, for the event
		// engine, the early-exit bound tables) to build.
		s.single.InferOne(make([]float64, s.eng.InLen()), -1)
	}
}

// Single returns the engine's SingleEngine capability, or nil when the
// engine is batch-only.
func (s *Server) Single() SingleEngine { return s.single }

// Closed reports whether Close has started.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Infer submits one sample and blocks until its batch completes, its
// context expires, or the queue rejects it. sample keys deterministic
// fault injection (negative = none); label enables live accuracy
// tracking in /metrics (negative = unlabeled).
func (s *Server) Infer(ctx context.Context, input []float64, sample, label int) (Prediction, error) {
	return s.infer(ctx, input, sample, label, false)
}

// inferQueued is the HTTP layer's queue submission: it copies input into
// a pool-owned buffer whose ownership transfers to the worker at
// enqueue. The caller's (pooled) input slice is therefore free for reuse
// the moment this returns — even when the request was abandoned and its
// batch hasn't run yet.
func (s *Server) inferQueued(ctx context.Context, input []float64, sample, label int) (Prediction, error) {
	if len(input) != s.eng.InLen() {
		return Prediction{}, fmt.Errorf("serve: input length %d, engine expects %d", len(input), s.eng.InLen())
	}
	owned := getInput(len(input))
	copy(owned, input)
	return s.infer(ctx, owned, sample, label, true)
}

func (s *Server) infer(ctx context.Context, input []float64, sample, label int, owned bool) (Prediction, error) {
	if len(input) != s.eng.InLen() {
		if owned {
			putInput(input)
		}
		return Prediction{}, fmt.Errorf("serve: input length %d, engine expects %d", len(input), s.eng.InLen())
	}
	// A dead request must not take a queue slot: a caller that gave up
	// before submitting would otherwise occupy the bounded queue (and a
	// batch seat) until a worker noticed, pushing live requests into
	// ErrOverloaded under load. Count it as accepted and immediately
	// expired so accepted = completed + expired + failed stays exact.
	if err := ctx.Err(); err != nil {
		if owned {
			putInput(input)
		}
		s.met.accept()
		s.met.expire()
		return Prediction{}, err
	}
	req := &request{
		ctx:    ctx,
		input:  input,
		sample: sample,
		label:  label,
		enq:    time.Now(),
		done:   make(chan result, 1),
		owned:  owned,
	}
	// The RLock pairs with Close's Lock: no submission can race the
	// queue close, so sends never hit a closed channel.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		if owned {
			putInput(input)
		}
		return Prediction{}, ErrClosed
	}
	select {
	case s.queue <- req:
		// Ownership of an owned input now rests with the worker that
		// will run (or skip) this request's batch.
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		if owned {
			putInput(input)
		}
		s.met.reject()
		return Prediction{}, ErrOverloaded
	}
	s.met.accept()
	select {
	case r := <-req.done:
		// The worker settled the request (and its accounting) before
		// delivering; nothing to count here.
		return r.pred, r.err
	case <-ctx.Done():
		// Both arms can be ready at once: the worker may have delivered
		// the result in the same instant the deadline fired. Prefer the
		// delivered result — it is real work, already counted as
		// completed — instead of discarding it and double-counting the
		// request as expired.
		select {
		case r := <-req.done:
			return r.pred, r.err
		default:
		}
		if req.settled.CompareAndSwap(false, true) {
			// The batch may still execute; the buffered done channel
			// absorbs the abandoned result, and the worker's failed CAS
			// keeps it out of the counters.
			s.met.expire()
			return Prediction{}, ctx.Err()
		}
		// The worker won the settle race between ctx firing and our CAS;
		// its result is imminent on the buffered channel.
		r := <-req.done
		return r.pred, r.err
	}
}

// InferDirect runs one sample synchronously on the engine's
// single-sample path, bypassing batch formation entirely: no queue
// seat, no MaxWait, no company — the latency-mode request trades the
// amortization win for the shortest possible path to the engine.
// Engines without the SingleEngine capability fall back to the batched
// Infer. The metric identity accepted = completed + expired + failed
// covers direct requests too; their wall latency feeds the same
// percentile window as queued requests (a mode comparison is exactly
// what the split counters are for) but never the engine batch window
// that admission sheds against.
func (s *Server) InferDirect(ctx context.Context, input []float64, sample, label int) (Prediction, error) {
	if s.single == nil {
		return s.Infer(ctx, input, sample, label)
	}
	if len(input) != s.eng.InLen() {
		return Prediction{}, fmt.Errorf("serve: input length %d, engine expects %d", len(input), s.eng.InLen())
	}
	if err := ctx.Err(); err != nil {
		s.met.accept()
		s.met.expire()
		return Prediction{}, err
	}
	// The RLock pairs with Close's Lock, exactly like Infer's queue
	// send: once closed is observed false the directWG.Add lands before
	// Close's Wait can start.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Prediction{}, ErrClosed
	}
	s.directWG.Add(1)
	s.mu.RUnlock()
	defer s.directWG.Done()
	s.met.accept()
	start := time.Now()
	pred, err := s.runSingle(input, sample)
	if err != nil {
		s.met.fail(1)
		return Prediction{}, err
	}
	s.met.completeDirect(time.Since(start), pred, label)
	return pred, nil
}

// InferFrame runs one stream frame synchronously on the engine's
// FrameEngine capability — the same queue-free path as InferDirect,
// plus the per-stage spike counts and optional timeline a stream event
// carries. Engines without the capability fall back to InferDirect (or
// the batched queue), losing the extra observability but never the
// prediction. Frames land in the same accounting identity as one-shot
// requests (accepted = completed + expired + failed) and additionally
// tick the stream_frames_total ledger.
func (s *Server) InferFrame(ctx context.Context, input []float64, sample, label int, timeline bool) (FrameResult, error) {
	if s.frame == nil {
		pred, err := s.InferDirect(ctx, input, sample, label)
		if err != nil {
			return FrameResult{}, err
		}
		s.met.streamFrame()
		return FrameResult{Prediction: pred}, nil
	}
	if len(input) != s.eng.InLen() {
		return FrameResult{}, fmt.Errorf("serve: input length %d, engine expects %d", len(input), s.eng.InLen())
	}
	if err := ctx.Err(); err != nil {
		s.met.accept()
		s.met.expire()
		return FrameResult{}, err
	}
	// The RLock pairs with Close's Lock, exactly like InferDirect.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return FrameResult{}, ErrClosed
	}
	s.directWG.Add(1)
	s.mu.RUnlock()
	defer s.directWG.Done()
	s.met.accept()
	start := time.Now()
	fr, err := s.runFrame(input, sample, timeline)
	if err != nil {
		s.met.fail(1)
		return FrameResult{}, err
	}
	s.met.completeStream(time.Since(start), fr.Prediction, label)
	return fr, nil
}

// runFrame isolates frame-path engine panics, mirroring runSingle.
func (s *Server) runFrame(input []float64, sample int, timeline bool) (fr FrameResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: engine panic: %v", p)
		}
	}()
	return s.frame.InferFrame(input, sample, timeline), nil
}

// runSingle isolates single-sample engine panics, mirroring runEngine.
func (s *Server) runSingle(input []float64, sample int) (pred Prediction, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: engine panic: %v", p)
		}
	}()
	return s.single.InferOne(input, sample), nil
}

// BeginDrain announces a graceful shutdown to long-lived observers
// without refusing work yet: the Draining channel closes, stream
// sessions emit their terminal drain event and return, and one-shot
// requests keep being served until Close. Safe to call more than once,
// from any goroutine; Close implies it.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Draining returns a channel closed once BeginDrain (or Close) has
// started.
func (s *Server) Draining() <-chan struct{} { return s.drain }

// Close stops accepting requests, drains everything already queued
// (in-flight batches and direct calls run to completion and deliver
// results), and waits for the dispatcher and workers to exit. Safe to
// call more than once.
func (s *Server) Close() {
	s.BeginDrain()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.directWG.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	s.directWG.Wait()
}

// dispatch forms batches: the first queued request opens a batch, which
// is dispatched when it reaches MaxBatch samples or MaxWait elapses.
// When the queue closes it drains remaining requests into final batches
// and exits, closing the batches channel behind it.
func (s *Server) dispatch(batches chan<- []*request) {
	defer s.wg.Done()
	defer close(batches)
	for {
		req, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*request{req}
		if s.opt.MaxBatch > 1 {
			timer := time.NewTimer(s.opt.MaxWait)
		collect:
			for len(batch) < s.opt.MaxBatch {
				select {
				case req, ok := <-s.queue:
					if !ok {
						break collect
					}
					batch = append(batch, req)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		batches <- batch
	}
}

func (s *Server) worker(batches <-chan []*request) {
	defer s.wg.Done()
	for batch := range batches {
		s.runBatch(batch)
	}
}

// runBatch executes one batch: requests whose deadline already expired
// are answered with their context error without costing engine time;
// the rest run as a single engine call.
func (s *Server) runBatch(batch []*request) {
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			if r.settled.CompareAndSwap(false, true) {
				s.met.expire()
			}
			if r.owned {
				putInput(r.input)
				r.input = nil
			}
			r.done <- result{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	inputs := make([][]float64, len(live))
	samples := make([]int, len(live))
	for i, r := range live {
		inputs[i] = r.input
		samples[i] = r.sample
	}
	t0 := time.Now()
	preds, err := s.runEngine(inputs, samples)
	// The engine is done reading inputs (runEngine recovers panics), so
	// owned buffers recycle here regardless of the outcome.
	for _, r := range live {
		if r.owned {
			putInput(r.input)
			r.input = nil
		}
	}
	if err != nil {
		for _, r := range live {
			if r.settled.CompareAndSwap(false, true) {
				s.met.fail(1)
			}
			r.done <- result{err: err}
		}
		return
	}
	now := time.Now()
	// Recorded even when every client of the batch has abandoned it: the
	// engine paid the time either way, and the admission layer's rolling
	// p99 must keep learning under deadline storms.
	s.met.batchLatency(now.Sub(t0))
	for i, r := range live {
		if r.settled.CompareAndSwap(false, true) {
			s.met.complete(now.Sub(r.enq), preds[i], r.label)
		}
		r.done <- result{pred: preds[i]}
	}
	s.met.batchDone(len(live))
	if cr, ok := s.eng.(ChunkReporter); ok {
		s.met.setParallelChunks(cr.ParallelChunks())
	}
}

// runEngine isolates engine panics (a malformed model or fault stream
// must fail the batch, not the server).
func (s *Server) runEngine(inputs [][]float64, samples []int) (preds []Prediction, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: engine panic: %v", p)
		}
	}()
	preds = s.eng.InferBatch(inputs, samples)
	if len(preds) != len(inputs) {
		return nil, fmt.Errorf("serve: engine returned %d predictions for %d inputs", len(preds), len(inputs))
	}
	return preds, nil
}
