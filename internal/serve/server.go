package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrOverloaded is returned when the bounded request queue is full; the
// HTTP layer maps it to 429 so load generators can back off.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned for requests submitted after Close started; the
// HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: server closed")

// Options configures the micro-batching scheduler.
type Options struct {
	// MaxBatch is the largest batch handed to the engine (default 16 —
	// where core.InferBatch's amortization win saturates on one core).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// QueueSize bounds the request queue; submissions beyond it fail
	// fast with ErrOverloaded (default 8×MaxBatch).
	QueueSize int
	// Workers is the number of concurrent batch executors (default
	// GOMAXPROCS). More workers than cores only helps hide queueing
	// jitter; the engine is CPU-bound.
	Workers int
	// DefaultTimeout is applied to requests that carry no deadline of
	// their own (0 = no default deadline).
	DefaultTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 8 * o.MaxBatch
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

type result struct {
	pred Prediction
	err  error
}

type request struct {
	ctx    context.Context
	input  []float64
	sample int
	label  int // -1 when the request is unlabeled
	enq    time.Time
	done   chan result // buffered(1): workers never block on delivery
}

// Server owns the request queue, the batching dispatcher, and the
// worker pool. Create with New, serve via Handler or Infer, stop with
// Close (drains in-flight work).
type Server struct {
	eng Engine
	opt Options
	met *Metrics

	mu     sync.RWMutex // guards closed + queue close
	closed bool
	queue  chan *request

	wg sync.WaitGroup // dispatcher + workers
}

// New starts a server: the dispatcher and worker goroutines run until
// Close.
func New(eng Engine, opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		eng:   eng,
		opt:   opt,
		met:   newMetrics(opt.MaxBatch, eng.Classes()),
		queue: make(chan *request, opt.QueueSize),
	}
	batches := make(chan []*request)
	s.wg.Add(1 + opt.Workers)
	go s.dispatch(batches)
	for i := 0; i < opt.Workers; i++ {
		go s.worker(batches)
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Server) Options() Options { return s.opt }

// Metrics returns the server's metrics collector.
func (s *Server) Metrics() *Metrics { return s.met }

// Closed reports whether Close has started.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Infer submits one sample and blocks until its batch completes, its
// context expires, or the queue rejects it. sample keys deterministic
// fault injection (negative = none); label enables live accuracy
// tracking in /metrics (negative = unlabeled).
func (s *Server) Infer(ctx context.Context, input []float64, sample, label int) (Prediction, error) {
	if len(input) != s.eng.InLen() {
		return Prediction{}, fmt.Errorf("serve: input length %d, engine expects %d", len(input), s.eng.InLen())
	}
	// A dead request must not take a queue slot: a caller that gave up
	// before submitting would otherwise occupy the bounded queue (and a
	// batch seat) until a worker noticed, pushing live requests into
	// ErrOverloaded under load. Count it as expired, not accepted.
	if err := ctx.Err(); err != nil {
		s.met.expire()
		return Prediction{}, err
	}
	req := &request{
		ctx:    ctx,
		input:  input,
		sample: sample,
		label:  label,
		enq:    time.Now(),
		done:   make(chan result, 1),
	}
	// The RLock pairs with Close's Lock: no submission can race the
	// queue close, so sends never hit a closed channel.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Prediction{}, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.met.reject()
		return Prediction{}, ErrOverloaded
	}
	s.met.accept()
	select {
	case r := <-req.done:
		// A worker may answer with the request's own context error when
		// the deadline fell between enqueue and dispatch.
		if errors.Is(r.err, context.DeadlineExceeded) || errors.Is(r.err, context.Canceled) {
			s.met.expire()
		}
		return r.pred, r.err
	case <-ctx.Done():
		// The batch may still execute; the buffered done channel absorbs
		// the abandoned result.
		s.met.expire()
		return Prediction{}, ctx.Err()
	}
}

// Close stops accepting requests, drains everything already queued
// (in-flight batches run to completion and deliver results), and waits
// for the dispatcher and workers to exit. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// dispatch forms batches: the first queued request opens a batch, which
// is dispatched when it reaches MaxBatch samples or MaxWait elapses.
// When the queue closes it drains remaining requests into final batches
// and exits, closing the batches channel behind it.
func (s *Server) dispatch(batches chan<- []*request) {
	defer s.wg.Done()
	defer close(batches)
	for {
		req, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*request{req}
		if s.opt.MaxBatch > 1 {
			timer := time.NewTimer(s.opt.MaxWait)
		collect:
			for len(batch) < s.opt.MaxBatch {
				select {
				case req, ok := <-s.queue:
					if !ok {
						break collect
					}
					batch = append(batch, req)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		batches <- batch
	}
}

func (s *Server) worker(batches <-chan []*request) {
	defer s.wg.Done()
	for batch := range batches {
		s.runBatch(batch)
	}
}

// runBatch executes one batch: requests whose deadline already expired
// are answered with their context error without costing engine time;
// the rest run as a single engine call.
func (s *Server) runBatch(batch []*request) {
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- result{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	inputs := make([][]float64, len(live))
	samples := make([]int, len(live))
	for i, r := range live {
		inputs[i] = r.input
		samples[i] = r.sample
	}
	preds, err := s.runEngine(inputs, samples)
	if err != nil {
		s.met.fail(len(live))
		for _, r := range live {
			r.done <- result{err: err}
		}
		return
	}
	now := time.Now()
	for i, r := range live {
		s.met.complete(now.Sub(r.enq), preds[i], r.label)
		r.done <- result{pred: preds[i]}
	}
	s.met.batchDone(len(live))
	if cr, ok := s.eng.(ChunkReporter); ok {
		s.met.setParallelChunks(cr.ParallelChunks())
	}
}

// runEngine isolates engine panics (a malformed model or fault stream
// must fail the batch, not the server).
func (s *Server) runEngine(inputs [][]float64, samples []int) (preds []Prediction, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: engine panic: %v", p)
		}
	}()
	preds = s.eng.InferBatch(inputs, samples)
	if len(preds) != len(inputs) {
		return nil, fmt.Errorf("serve: engine returned %d predictions for %d inputs", len(preds), len(inputs))
	}
	return preds, nil
}
