package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// latWindow is how many recent request latencies the percentile window
// retains; old entries are overwritten ring-buffer style.
const latWindow = 8192

// batchLatWindow is how many recent engine batch execution times feed
// the rolling p99 used for deadline-headroom admission. Smaller than
// latWindow: admission must track the engine's *current* speed, and a
// long window would let ancient fast batches mask a slowdown.
const batchLatWindow = 512

// batchP99Every bounds how often the rolling batch p99 is recomputed:
// at most once per this many recorded batches, so admission checks on
// the request path never pay the sort.
const batchP99Every = 16

// Metrics aggregates serving statistics: request counters, a sliding
// window of wall-clock latencies (for percentiles), the batch-size
// histogram, spike totals, and — when requests carry labels — a live
// confusion matrix reusing internal/metrics.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	accepted  uint64
	rejected  uint64
	expired   uint64
	failed    uint64
	completed uint64

	totalSpikes uint64
	// earlyExit counts completed predictions whose engine stopped the
	// output window early (undominated winner); eventsSaved sums the
	// spike arrivals those exits skipped. Both count across the batched
	// and direct paths — early exit is an engine property, not a
	// routing one.
	earlyExit   uint64
	eventsSaved uint64
	// latencyPath counts requests completed on the direct single-sample
	// path (Server.InferDirect).
	latencyPath uint64
	// streamSessions counts /v1/stream sessions opened on this server;
	// streamActive is the gauge of sessions currently attached (a
	// session that chases a hot-swap detaches here and attaches to the
	// replacement, so the gauge follows the serving engine);
	// streamFrames counts frames completed on the stream path (those
	// frames also count in completed — the identity accepted =
	// completed + expired + failed covers them).
	streamSessions uint64
	streamActive   int64
	streamFrames   uint64
	// parallelChunks mirrors the engine's cumulative ChunkReporter count
	// (0 when the engine runs sequentially).
	parallelChunks uint64
	// batchSizes[k] counts dispatched batches of k live samples
	// (index 0 unused).
	batchSizes []uint64

	lats  []time.Duration // ring buffer, latWindow cap
	latN  int             // next write position
	latCt int             // filled entries (≤ latWindow)

	// Engine batch execution times (queue wait excluded) — the service
	// floor a freshly admitted request cannot beat, so the admission
	// layer sheds deadlines tighter than its p99. Recorded even when the
	// clients of a batch have already gone: the engine ran regardless,
	// which is exactly what keeps the window alive under deadline storms.
	batchLats   []time.Duration // ring buffer, batchLatWindow cap
	batchLatN   int
	batchLatCt  int
	batchLatSeq uint64        // batches recorded since start
	bp99        time.Duration // cached p99 over batchLats
	bp99Seq     uint64        // batchLatSeq when bp99 was computed

	conf *metrics.Confusion // nil when class count unknown

	// pctScratch and bp99Scratch are the reusable sort buffers for
	// percentile computation (guarded by mu like everything else):
	// scrapes under load must not churn 8 KiB+ allocations against the
	// request path.
	pctScratch  []time.Duration
	bp99Scratch []time.Duration

	// engine is the serving engine's self-description (EngineDescriber),
	// "" when the engine doesn't implement the capability. Set once at
	// server construction (or swap), read under mu like everything else.
	engine string
}

func newMetrics(maxBatch, classes int) *Metrics {
	m := &Metrics{
		start:      time.Now(),
		batchSizes: make([]uint64, maxBatch+1),
		lats:       make([]time.Duration, latWindow),
		batchLats:  make([]time.Duration, batchLatWindow),
	}
	if c, err := metrics.NewConfusion(classes); err == nil {
		m.conf = c
	}
	return m
}

func (m *Metrics) accept() {
	m.mu.Lock()
	m.accepted++
	m.mu.Unlock()
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) expire() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
}

func (m *Metrics) fail(n int) {
	m.mu.Lock()
	m.failed += uint64(n)
	m.mu.Unlock()
}

func (m *Metrics) complete(wall time.Duration, p Prediction, label int) {
	m.mu.Lock()
	m.completeLocked(wall, p, label)
	m.mu.Unlock()
}

// completeDirect is complete for the direct single-sample path; it
// additionally counts the routing decision.
func (m *Metrics) completeDirect(wall time.Duration, p Prediction, label int) {
	m.mu.Lock()
	m.latencyPath++
	m.completeLocked(wall, p, label)
	m.mu.Unlock()
}

func (m *Metrics) completeLocked(wall time.Duration, p Prediction, label int) {
	m.completed++
	m.totalSpikes += uint64(p.TotalSpikes)
	if p.EarlyExit {
		m.earlyExit++
	}
	m.eventsSaved += uint64(p.EventsSaved)
	m.lats[m.latN] = wall
	m.latN = (m.latN + 1) % latWindow
	if m.latCt < latWindow {
		m.latCt++
	}
	if label >= 0 && m.conf != nil && label < m.conf.Classes {
		m.conf.Add(label, p.Pred)
	}
}

// streamSession records a new session opening (total + gauge).
func (m *Metrics) streamSession() {
	m.mu.Lock()
	m.streamSessions++
	m.streamActive++
	m.mu.Unlock()
}

// streamAttach moves an existing session's gauge onto this server (a
// hot-swap chase); the session total stays with the server that opened
// it.
func (m *Metrics) streamAttach() {
	m.mu.Lock()
	m.streamActive++
	m.mu.Unlock()
}

// streamDetach drops the active-session gauge.
func (m *Metrics) streamDetach() {
	m.mu.Lock()
	m.streamActive--
	m.mu.Unlock()
}

// streamFrame counts one stream frame completed outside the
// frame-capable path (fallback through InferDirect/Infer, which did its
// own complete accounting).
func (m *Metrics) streamFrame() {
	m.mu.Lock()
	m.streamFrames++
	m.mu.Unlock()
}

// completeStream is complete for the stream frame path: the frame
// counts in the ordinary completion identity and in the stream ledger.
func (m *Metrics) completeStream(wall time.Duration, p Prediction, label int) {
	m.mu.Lock()
	m.streamFrames++
	m.completeLocked(wall, p, label)
	m.mu.Unlock()
}

func (m *Metrics) batchLatency(d time.Duration) {
	m.mu.Lock()
	m.batchLats[m.batchLatN] = d
	m.batchLatN = (m.batchLatN + 1) % batchLatWindow
	if m.batchLatCt < batchLatWindow {
		m.batchLatCt++
	}
	m.batchLatSeq++
	m.mu.Unlock()
}

// BatchLatencyP99 returns the rolling p99 of engine batch execution
// time, or 0 before any batch has run. The value is recomputed at most
// once per batchP99Every recorded batches and cached, so calling it on
// every admission decision is cheap.
func (m *Metrics) BatchLatencyP99() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batchP99Locked()
}

func (m *Metrics) batchP99Locked() time.Duration {
	if m.batchLatCt == 0 {
		return 0
	}
	if m.bp99Seq != 0 && m.batchLatSeq-m.bp99Seq < batchP99Every {
		return m.bp99
	}
	if cap(m.bp99Scratch) < m.batchLatCt {
		m.bp99Scratch = make([]time.Duration, batchLatWindow)
	}
	window := m.bp99Scratch[:m.batchLatCt]
	copy(window, m.batchLats[:m.batchLatCt])
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	rank := int(math.Ceil(0.99 * float64(len(window))))
	if rank < 1 {
		rank = 1
	}
	m.bp99 = window[rank-1]
	m.bp99Seq = m.batchLatSeq
	return m.bp99
}

func (m *Metrics) setParallelChunks(v uint64) {
	m.mu.Lock()
	m.parallelChunks = v
	m.mu.Unlock()
}

func (m *Metrics) setEngine(desc string) {
	m.mu.Lock()
	m.engine = desc
	m.mu.Unlock()
}

func (m *Metrics) batchDone(size int) {
	m.mu.Lock()
	if size >= 0 && size < len(m.batchSizes) {
		m.batchSizes[size]++
	}
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the serving statistics, shaped
// for JSON export on /metrics.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Engine names the inference kernel serving this endpoint ("clocked",
	// "event", "quant", or a coding scheme name); omitted when the engine
	// doesn't describe itself.
	Engine string `json:"engine,omitempty"`

	Accepted  uint64 `json:"requests_accepted"`
	Rejected  uint64 `json:"requests_rejected"`
	Expired   uint64 `json:"requests_expired"`
	Failed    uint64 `json:"requests_failed"`
	Completed uint64 `json:"requests_completed"`

	ThroughputPerSec float64 `json:"throughput_per_sec"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// BatchLatencyP99Ms is the rolling p99 of engine batch execution
	// time — the floor the admission layer sheds against.
	BatchLatencyP99Ms float64 `json:"batch_latency_p99_ms"`

	// BatchSizeHist[k] is the number of dispatched batches holding k
	// samples (index 0 unused).
	BatchSizeHist []uint64 `json:"batch_size_hist"`
	MeanBatchSize float64  `json:"mean_batch_size"`

	TotalSpikes     uint64  `json:"total_spikes"`
	SpikesPerSample float64 `json:"spikes_per_sample"`

	// EarlyExitTotal counts completed predictions that stopped their
	// output window at a provably undominated winner; EventsSaved sums
	// the spike arrivals those exits skipped.
	EarlyExitTotal uint64 `json:"early_exit_total"`
	EventsSaved    uint64 `json:"events_saved"`
	// LatencyPathTotal counts requests completed on the direct
	// single-sample path instead of the micro-batching queue.
	LatencyPathTotal uint64 `json:"latency_path_total"`

	// StreamSessions counts /v1/stream sessions opened; StreamActive is
	// the current attached-session gauge; StreamFrames counts stream
	// frames completed (also included in requests_completed).
	StreamSessions uint64 `json:"stream_sessions"`
	StreamActive   int64  `json:"stream_sessions_active"`
	StreamFrames   uint64 `json:"stream_frames_total"`

	// ParallelChunks is the cumulative number of work chunks the engine
	// dispatched to its core.Pool (0 when serving sequentially).
	ParallelChunks uint64 `json:"parallel_chunks"`

	// Accuracy over labeled requests (LabeledTotal 0 means none seen).
	Accuracy     float64 `json:"accuracy"`
	LabeledTotal int     `json:"labeled_total"`
}

// Snapshot captures the current statistics. Percentiles are computed
// over the sliding latency window (last 8192 completed requests).
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Engine:           m.engine,
		Accepted:         m.accepted,
		Rejected:         m.rejected,
		Expired:          m.expired,
		Failed:           m.failed,
		Completed:        m.completed,
		TotalSpikes:      m.totalSpikes,
		EarlyExitTotal:   m.earlyExit,
		EventsSaved:      m.eventsSaved,
		LatencyPathTotal: m.latencyPath,
		StreamSessions:   m.streamSessions,
		StreamActive:     m.streamActive,
		StreamFrames:     m.streamFrames,
		ParallelChunks:   m.parallelChunks,
		BatchSizeHist:    append([]uint64(nil), m.batchSizes...),
	}
	s.BatchLatencyP99Ms = float64(m.batchP99Locked()) / float64(time.Millisecond)
	if s.UptimeSeconds > 0 {
		s.ThroughputPerSec = float64(m.completed) / s.UptimeSeconds
	}
	if m.completed > 0 {
		s.SpikesPerSample = float64(m.totalSpikes) / float64(m.completed)
	}
	batches, samples := uint64(0), uint64(0)
	for k, n := range m.batchSizes {
		batches += n
		samples += uint64(k) * n
	}
	if batches > 0 {
		s.MeanBatchSize = float64(samples) / float64(batches)
	}
	if m.latCt > 0 {
		if cap(m.pctScratch) < m.latCt {
			m.pctScratch = make([]time.Duration, latWindow)
		}
		window := m.pctScratch[:m.latCt]
		copy(window, m.lats[:m.latCt])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		// Nearest-rank percentile: rank ⌈p·n⌉ (1-based). The previous
		// truncating interpolation index biased every percentile low —
		// p99 over 100 samples read window[98], reporting the 99th
		// sample as if one more could still exceed it.
		pct := func(p float64) float64 {
			rank := int(math.Ceil(p * float64(len(window))))
			if rank < 1 {
				rank = 1
			}
			if rank > len(window) {
				rank = len(window)
			}
			return float64(window[rank-1]) / float64(time.Millisecond)
		}
		s.LatencyP50Ms = pct(0.50)
		s.LatencyP90Ms = pct(0.90)
		s.LatencyP99Ms = pct(0.99)
		s.LatencyMaxMs = float64(window[len(window)-1]) / float64(time.Millisecond)
	}
	if m.conf != nil && m.conf.Total > 0 {
		s.Accuracy = m.conf.Accuracy()
		s.LabeledTotal = m.conf.Total
	}
	return s
}
