package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// QuantEngine serves a T2FSNN core.Model on the fixed-point int8
// engine, implementing Engine and SingleEngine. It is the
// throughput-per-core path for single-sample traffic: weights live in
// int8 SoA scatter plans (built once per model, shared by every
// caller) and integration runs on int32 accumulators with one rescale
// per stage boundary, so each inference touches a quarter of the
// clocked engine's weight bytes and collapses arrival-free threshold
// sweeps into single passes.
//
// The prediction contract matches the clocked engine's up to the int8
// weight grid: argmax agreement on the fixture is pinned at ≥99% by
// TestQuantEngineFixtureParity in core, and stages whose dynamic range
// cannot fit the int32 accumulator fall back to the float64 sweep
// transparently (fault streams are pure, so the re-run is exact).
//
// Like the event engine there is no batched fixed-point path —
// InferBatch loops InferOne on one pooled scratch.
type QuantEngine struct {
	Model *core.Model
	// Run is the per-sample configuration shared by every request.
	Run core.RunConfig
	// Faults optionally injects deterministic per-sample faults keyed by
	// the request's sample index.
	Faults *fault.Injector

	// scratch pools per-caller inference arenas: the steady-state
	// InferOne allocates only the returned Prediction's Potentials copy.
	scratch sync.Pool
}

// InLen implements Engine.
func (e *QuantEngine) InLen() int { return e.Model.Net.InLen }

// Classes implements Engine.
func (e *QuantEngine) Classes() int {
	return e.Model.Net.Stages[len(e.Model.Net.Stages)-1].OutLen
}

// EngineDesc implements EngineDescriber.
func (e *QuantEngine) EngineDesc() string { return "quant" }

// InferOne implements SingleEngine. Safe for concurrent use: every call
// checks a scratch arena out of the pool for its whole duration, and
// the shared SoA plans are immutable after their once-build.
func (e *QuantEngine) InferOne(input []float64, sample int) Prediction {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	cfg := e.Run
	if e.Faults != nil && sample >= 0 {
		cfg.Faults = e.Faults.Sample(sample)
	}
	r := e.Model.InferOne(input, cfg, core.InferOpts{Scratch: sc, Engine: core.EngineQuant})
	p := Prediction{
		Pred:        r.Pred,
		Latency:     r.Latency,
		TotalSpikes: r.TotalSpikes,
		// copied: r.Potentials aliases the pooled scratch
		Potentials: append([]float64(nil), r.Potentials...),
	}
	e.scratch.Put(sc)
	return p
}

// InferFrame implements FrameEngine on the fixed-point engine.
func (e *QuantEngine) InferFrame(input []float64, sample int, timeline bool) FrameResult {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	cfg := e.Run
	cfg.CollectTimeline = timeline
	if e.Faults != nil && sample >= 0 {
		cfg.Faults = e.Faults.Sample(sample)
	}
	r := e.Model.InferOne(input, cfg, core.InferOpts{Scratch: sc, Engine: core.EngineQuant})
	fr := coreFrameResult(r)
	e.scratch.Put(sc)
	return fr
}

// InferBatch implements Engine by running the batch sample-by-sample on
// one pooled scratch (results are independent of grouping by the
// single-sample contract).
func (e *QuantEngine) InferBatch(inputs [][]float64, samples []int) []Prediction {
	sc, _ := e.scratch.Get().(*core.InferScratch)
	if sc == nil {
		sc = core.NewInferScratch(e.Model)
	}
	var fs []*fault.Stream
	if e.Faults != nil {
		fs = make([]*fault.Stream, len(inputs))
		for i, idx := range samples {
			if idx >= 0 {
				fs[i] = e.Faults.Sample(idx)
			}
		}
	}
	preds := corePredictions(e.Model.InferMany(inputs, e.Run, core.InferOpts{
		Scratch: sc, Faults: fs, Engine: core.EngineQuant,
	}))
	e.scratch.Put(sc)
	return preds
}
