// Package reverse implements a TDSNN-style reverse-coding pipeline
// (Zhang et al., AAAI 2019), the prior TTFS approach the paper compares
// against in Table II. Reverse coding also emits at most one spike per
// neuron, but *larger* values fire *later*; auxiliary ticking neurons
// accumulate each arrived synapse's weight every remaining step of the
// window, so the membrane reaches Σ w·a by the window's end. The ticking
// traffic is exactly the overhead the paper's §V cost analysis charges
// TDSNN for.
package reverse

import (
	"fmt"

	"repro/internal/snn"
)

// Model runs a converted network under reverse coding with a T-step
// window per layer.
type Model struct {
	Net *snn.Net
	T   int
}

// NewModel validates and wraps the network.
func NewModel(net *snn.Net, t int) (*Model, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if t <= 1 {
		return nil, fmt.Errorf("reverse: window must exceed 1 step, got %d", t)
	}
	return &Model{Net: net, T: t}, nil
}

// encode maps a normalized value in [0,1] to a reverse spike time:
// t = T·(1−v), so v=1 fires at 0... no — reverse coding delivers large
// values LATE: t = round(v·(T−1)) means v=0 fires first. Values ≤ 0
// do not fire (they carry nothing).
func (m *Model) encode(v float64) (int, bool) {
	if v <= 0 {
		return 0, false
	}
	if v > 1 {
		v = 1
	}
	return int(v * float64(m.T-1)), true
}

// decode restores the value from a reverse spike time.
func (m *Model) decode(t int) float64 {
	return float64(t) / float64(m.T-1)
}

// Result summarizes one reverse-coding inference.
type Result struct {
	Pred int
	// Spikes counts genuine (value) spikes per boundary, one per
	// active neuron, exactly as in T2FSNN.
	Spikes int
	// TickOps counts the auxiliary ticking accumulations: for a spike
	// at offset t, the ticking apparatus touches its synapse on each of
	// the remaining T−t steps. This is the overhead that erases
	// reverse coding's one-spike advantage (paper §I, §V).
	TickOps float64
	Latency int
	// Potentials are the final output potentials.
	Potentials []float64
}

// Infer runs one input through the reverse-coding pipeline. Each layer
// waits for its full integration window (reverse coding cannot early-
// fire: the largest — most important — values arrive last, which is
// precisely the drawback the paper cites).
func (m *Model) Infer(input []float64) Result {
	res := Result{Latency: len(m.Net.Stages) * m.T}
	cur := make([]float64, len(input))
	// encode/decode the input through the reverse quantizer
	for i, v := range input {
		if t, ok := m.encode(v); ok {
			cur[i] = m.decode(t)
			res.Spikes++
			res.TickOps += float64(m.T - t)
		}
	}
	for si := range m.Net.Stages {
		st := &m.Net.Stages[si]
		pot := st.Forward(cur)
		if st.Output {
			res.Pred = snn.ArgMax(pot)
			res.Potentials = pot
			return res
		}
		next := make([]float64, st.OutLen)
		for j, u := range pot {
			if u <= 0 {
				continue
			}
			if t, ok := m.encode(u); ok {
				next[j] = m.decode(t)
				res.Spikes++
				res.TickOps += float64(m.T - t)
			}
		}
		cur = next
	}
	return res
}

// Evaluate returns accuracy, mean genuine spikes, and mean ticking
// accumulations over a flattened sample batch.
func (m *Model) Evaluate(x []float64, sampleLen int, labels []int) (acc, avgSpikes, avgTicks float64, err error) {
	n := len(labels)
	if n == 0 || len(x) != n*sampleLen {
		return 0, 0, 0, fmt.Errorf("reverse: %d values for %d samples of %d", len(x), n, sampleLen)
	}
	hit := 0
	for i := 0; i < n; i++ {
		r := m.Infer(x[i*sampleLen : (i+1)*sampleLen])
		if r.Pred == labels[i] {
			hit++
		}
		avgSpikes += float64(r.Spikes)
		avgTicks += r.TickOps
	}
	return float64(hit) / float64(n), avgSpikes / float64(n), avgTicks / float64(n), nil
}
