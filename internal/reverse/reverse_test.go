package reverse

import (
	"testing"

	"repro/internal/testutil"
)

func model(t *testing.T, window int) (*Model, *testutil.Fixture) {
	t.Helper()
	fx := testutil.TrainedLeNet16()
	m, err := NewModel(fx.Conv.Net, window)
	if err != nil {
		t.Fatal(err)
	}
	return m, fx
}

func TestNewModelValidation(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	if _, err := NewModel(fx.Conv.Net, 1); err == nil {
		t.Fatal("window of 1 accepted")
	}
	if _, err := NewModel(fx.Conv.Net, 64); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReverseOrder(t *testing.T) {
	m, _ := model(t, 64)
	tSmall, ok1 := m.encode(0.1)
	tBig, ok2 := m.encode(0.9)
	if !ok1 || !ok2 {
		t.Fatal("both values should fire")
	}
	// reverse coding: larger value fires LATER
	if tBig <= tSmall {
		t.Fatalf("reverse order violated: t(0.9)=%d <= t(0.1)=%d", tBig, tSmall)
	}
	if _, ok := m.encode(0); ok {
		t.Fatal("zero must not fire")
	}
	if tt, _ := m.encode(2.0); tt != m.T-1 {
		t.Fatalf("overflow should clamp to last step, got %d", tt)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	m, _ := model(t, 64)
	for _, v := range []float64{0.05, 0.3, 0.77, 1.0} {
		tt, ok := m.encode(v)
		if !ok {
			t.Fatalf("%v did not fire", v)
		}
		got := m.decode(tt)
		if diff := v - got; diff < -1.0/63 || diff > 1.0/63 {
			t.Fatalf("round trip %v -> %v exceeds quantization", v, got)
		}
	}
}

func TestAccuracyNearDNN(t *testing.T) {
	m, fx := model(t, 64)
	acc, spikes, ticks, err := m.Evaluate(fx.X.Data[:100*256], 256, fx.Labels[:100])
	if err != nil {
		t.Fatal(err)
	}
	// 64-level quantization should track the DNN closely (the paper's
	// TDSNN reports DNN-competitive accuracy)
	if acc < fx.DNNAccuracy-0.1 {
		t.Fatalf("reverse accuracy %.2f far below DNN %.2f", acc, fx.DNNAccuracy)
	}
	if spikes <= 0 {
		t.Fatal("no spikes")
	}
	// the ticking overhead must dwarf the genuine spikes — the paper's
	// core criticism of TDSNN
	if ticks <= spikes {
		t.Fatalf("ticking ops %.0f not above spikes %.0f", ticks, spikes)
	}
}

func TestOneSpikePerNeuronBound(t *testing.T) {
	m, fx := model(t, 32)
	r := m.Infer(fx.X.Data[:256])
	bound := m.Net.InLen + m.Net.NumNeurons()
	if r.Spikes > bound {
		t.Fatalf("spikes %d exceed one-per-neuron bound %d", r.Spikes, bound)
	}
	if r.Latency != len(m.Net.Stages)*32 {
		t.Fatalf("latency %d, want %d", r.Latency, len(m.Net.Stages)*32)
	}
}

func TestCoarseWindowDegradesAccuracy(t *testing.T) {
	fine, fx := model(t, 128)
	coarse, _ := model(t, 3)
	accF, _, _, err := fine.Evaluate(fx.X.Data[:80*256], 256, fx.Labels[:80])
	if err != nil {
		t.Fatal(err)
	}
	accC, _, _, err := coarse.Evaluate(fx.X.Data[:80*256], 256, fx.Labels[:80])
	if err != nil {
		t.Fatal(err)
	}
	if accC > accF {
		t.Fatalf("3-level quantization (%.2f) should not beat 128-level (%.2f)", accC, accF)
	}
}

func TestEvaluateErrors(t *testing.T) {
	m, fx := model(t, 64)
	if _, _, _, err := m.Evaluate(fx.X.Data[:100], 256, fx.Labels[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, _, err := m.Evaluate(nil, 256, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
