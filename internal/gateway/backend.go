package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a backend's position in the health state machine.
//
//	Healthy --(FailThreshold consecutive active/passive failures)--> Evicted
//	Evicted --(successful re-probe after exponential backoff)------> Probing
//	Probing --(passive success or second good probe)---------------> Healthy
//	Probing --(any failure)----------------------------------------> Evicted
//
// Probing is the half-open stage: the backend is admitted as a routing
// candidate again, but only for trial traffic (one request at a time,
// and only when no Healthy backend can take the request first).
type State int32

const (
	StateHealthy State = iota
	StateProbing
	StateEvicted
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateProbing:
		return "probing"
	case StateEvicted:
		return "evicted"
	}
	return "unknown"
}

// backend is one replica server behind the gateway. All mutable state
// is atomic: request goroutines (passive observation), the probe loop
// (active observation), and the metrics endpoint all touch it
// concurrently.
type backend struct {
	url string // base URL without trailing slash

	state       atomic.Int32
	inflight    atomic.Int64
	consecFails atomic.Int32
	// coolUntil is a unix-nano timestamp before which routing should
	// prefer other backends: set from a 429 Retry-After, it honors the
	// backend's own admission control instead of hammering it.
	coolUntil atomic.Int64

	completed atomic.Uint64 // responses forwarded to clients from here
	failed    atomic.Uint64 // attempts that errored (transport or 5xx)
	evictions atomic.Uint64
	probes    atomic.Uint64
	lastProbe atomic.Int64 // unix nano of the latest probe attempt

	errMu   sync.Mutex
	lastErr string
}

func (b *backend) currentState() State { return State(b.state.Load()) }

// evict moves the backend out of the routing pool; only the first
// transition counts (concurrent observers may race to report the same
// death).
func (b *backend) evict() bool {
	for {
		cur := b.state.Load()
		if State(cur) == StateEvicted {
			return false
		}
		if b.state.CompareAndSwap(cur, int32(StateEvicted)) {
			b.evictions.Add(1)
			return true
		}
	}
}

// observeSuccess is the passive health signal from a served request: it
// clears the failure streak and promotes a half-open backend, whose
// trial traffic just proved it out, back to full membership.
func (b *backend) observeSuccess() {
	b.consecFails.Store(0)
	b.state.CompareAndSwap(int32(StateProbing), int32(StateHealthy))
}

// observeFailure is the passive unhealth signal (connection error,
// timeout, or 5xx on a proxied request). A half-open backend is
// re-evicted on its first failed trial; a healthy one rides out up to
// threshold-1 consecutive failures.
func (b *backend) observeFailure(threshold int, err string) {
	b.setLastErr(err)
	if b.currentState() == StateProbing {
		b.evict()
		return
	}
	if int(b.consecFails.Add(1)) >= threshold {
		b.evict()
	}
}

func (b *backend) cooling(now time.Time) bool {
	return b.coolUntil.Load() > now.UnixNano()
}

func (b *backend) setCooldown(until time.Time) {
	b.coolUntil.Store(until.UnixNano())
}

func (b *backend) setLastErr(s string) {
	b.errMu.Lock()
	b.lastErr = s
	b.errMu.Unlock()
}

func (b *backend) lastErrString() string {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.lastErr
}
