package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
)

// streamBackend is a minimal streaming replica: it answers /readyz and
// runs NDJSON /v1/stream sessions, echoing one frame event per input
// frame (pred = input[0]). When failAfter > 0 the connection is cut
// abruptly before serving frame failAfter+1, simulating a backend that
// dies mid-session.
type streamBackend struct {
	ts        *httptest.Server
	failAfter int
	sessions  atomic.Int64
	frames    atomic.Int64
}

func newStreamBackend(t *testing.T, failAfter int) *streamBackend {
	t.Helper()
	b := &streamBackend{failAfter: failAfter}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	streamHandler := func(w http.ResponseWriter, r *http.Request) {
		b.sessions.Add(1)
		rc := http.NewResponseController(w)
		_ = rc.EnableFullDuplex()
		w.Header().Set("Content-Type", stream.FormatNDJSON.ContentType())
		w.WriteHeader(http.StatusOK)
		_ = rc.Flush()
		dec := stream.NewDecoder(r.Body, r.Header.Get("Content-Type"))
		enc := stream.NewEncoder(w, stream.FormatNDJSON)
		var f stream.Frame
		for seq := uint32(1); ; seq++ {
			if err := dec.Next(&f, 0); err != nil {
				return // EOF or client gone
			}
			if b.failAfter > 0 && int(seq) > b.failAfter {
				// Simulate the backend dying (kill -9): close the raw
				// socket. A handler panic won't do — the server's recovery
				// drains the request body first, which never ends on a
				// lockstep session.
				conn, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					conn.Close()
				}
				return
			}
			b.frames.Add(1)
			_ = enc.Encode(&stream.Event{Kind: stream.KindFrame, Seq: seq, Pred: int(f.Input[0])})
			_ = rc.Flush()
		}
	}
	mux.HandleFunc("POST /v1/stream", streamHandler)
	mux.HandleFunc("POST /v1/models/{name}/stream", streamHandler)
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

// gateStream opens a lockstep NDJSON session through the gateway.
type gateStream struct {
	pw  *io.PipeWriter
	dec stream.EventDecoder
}

func openGateStream(t *testing.T, url string) *gateStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		pw.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close(); pw.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream admission: status %d", resp.StatusCode)
	}
	dec, err := stream.NewEventDecoder(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	return &gateStream{pw: pw, dec: dec}
}

func (c *gateStream) send(t *testing.T, v float64) {
	t.Helper()
	if err := json.NewEncoder(c.pw).Encode(map[string]any{"input": []float64{v}}); err != nil {
		t.Fatalf("send frame: %v", err)
	}
}

// A session proxied through the gateway relays every event in order and
// lands in the fleet's stream ledger.
func TestGatewayStreamRelay(t *testing.T) {
	b := newStreamBackend(t, 0)
	g2, err := New(Options{Backends: []string{b.ts.URL}, ProbeInterval: 20 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g2.Close)
	gt := httptest.NewServer(g2.Handler())
	t.Cleanup(gt.Close)

	c := openGateStream(t, gt.URL)
	for i := 1; i <= 3; i++ {
		c.send(t, float64(i*10))
		var ev stream.Event
		if err := c.dec.Next(&ev); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ev.Kind != stream.KindFrame || ev.Seq != uint32(i) || ev.Pred != i*10 {
			t.Fatalf("frame %d: kind %q seq %d pred %d", i, ev.Kind, ev.Seq, ev.Pred)
		}
	}
	c.pw.Close()
	var ev stream.Event
	if err := c.dec.Next(&ev); err != io.EOF {
		t.Fatalf("after clean close: ev %+v err %v, want EOF", ev, err)
	}
	snap := g2.Snapshot()
	if snap.StreamSessions != 1 || snap.StreamRetries != 0 {
		t.Fatalf("sessions/retries = %d/%d, want 1/0", snap.StreamSessions, snap.StreamRetries)
	}
	if b.frames.Load() != 3 {
		t.Fatalf("backend frames = %d, want 3", b.frames.Load())
	}
}

// A backend dying mid-session must surface as a terminal in-band retry
// event — already-delivered events stand, the connection is not just
// dropped, and the suggested delay is populated.
func TestGatewayStreamBackendDeathRetryEvent(t *testing.T) {
	b := newStreamBackend(t, 2)
	g, err := New(Options{Backends: []string{b.ts.URL}, ProbeInterval: 30 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond, FailThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	gt := httptest.NewServer(g.Handler())
	t.Cleanup(gt.Close)

	c := openGateStream(t, gt.URL)
	for i := 1; i <= 2; i++ {
		c.send(t, float64(i))
		var ev stream.Event
		if err := c.dec.Next(&ev); err != nil || ev.Kind != stream.KindFrame {
			t.Fatalf("frame %d: ev %+v err %v", i, ev, err)
		}
	}
	c.send(t, 3) // backend aborts on this frame
	var ev stream.Event
	if err := c.dec.Next(&ev); err != nil {
		t.Fatalf("expected in-band retry event, got transport error %v", err)
	}
	if ev.Kind != stream.KindRetry {
		t.Fatalf("kind %q, want retry", ev.Kind)
	}
	if ev.RetryAfterMs <= 0 {
		t.Fatalf("retry event carries no reconnect delay: %+v", ev)
	}
	if g.Snapshot().StreamRetries != 1 {
		t.Fatalf("stream retries = %d, want 1", g.Snapshot().StreamRetries)
	}
}

// Regression: a backend that cannot be reached at all must also turn
// into a prompt retry event. Two deadlocks used to live here: the
// transport's failed round trip drained the client's open chunked body
// before returning from Do, and sendRetry's writeHeader drained it
// again before committing headers — both against a lockstep client
// that sends nothing until it reads a response.
func TestGatewayStreamConnectFailRetryEvent(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	g, err := New(Options{Backends: []string{deadURL}, ProbeInterval: 50 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond, FailThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	gt := httptest.NewServer(g.Handler())
	t.Cleanup(gt.Close)

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, gt.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")

	type outcome struct {
		ev  stream.Event
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- outcome{err: io.EOF}
			return
		}
		dec, err := stream.NewEventDecoder(resp.Body, resp.Header.Get("Content-Type"))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		var ev stream.Event
		err = dec.Next(&ev)
		done <- outcome{ev: ev, err: err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("no in-band retry event: %v", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry event never arrived: the gateway is deadlocked draining the open request body")
	}
	if g.Snapshot().StreamRetries != 1 {
		t.Fatalf("stream retries = %d, want 1", g.Snapshot().StreamRetries)
	}
}
