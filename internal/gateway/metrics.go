package gateway

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// hedgeWindow is how many recent winning-attempt latencies feed the
// p95 that sets the hedge delay; hedgeP95Every bounds how often the
// sort runs (the cached value serves the requests in between).
const (
	hedgeWindow   = 256
	hedgeP95Every = 16
)

// fleetMetrics holds the gateway-level request accounting. Every
// accepted request ends in exactly one of completed / failed / shed
// (counted at its single handler exit), so
//
//	accepted = completed + failed + shed
//
// holds as an identity — the same invariant the serve layer pins for
// its own queue.
type fleetMetrics struct {
	accepted  atomic.Uint64
	completed atomic.Uint64 // a backend response was forwarded (any status)
	failed    atomic.Uint64 // every attempt failed: client got 502 (or vanished)
	shed      atomic.Uint64 // no live backend within PoolWait: client got 503

	hedgesFired atomic.Uint64
	hedgesWon   atomic.Uint64
	retries     atomic.Uint64
	swaps       atomic.Uint64 // fleet-wide rolling swaps proxied

	// Streaming sessions are accounted separately from the one-shot
	// identity above: a session is a long-lived connection, not a
	// request, and its failure mode is a terminal retry event the
	// client resumes from — never a silent drop.
	streamSessions atomic.Uint64 // sessions admitted and pinned to a backend
	streamRetries  atomic.Uint64 // terminal retry events sent to clients

	mu    sync.Mutex
	lats  []time.Duration // ring of winning-attempt latencies
	latN  int
	latCt int
	seq   uint64
	p95   time.Duration
	p95At uint64
}

func newFleetMetrics() *fleetMetrics {
	return &fleetMetrics{lats: make([]time.Duration, hedgeWindow)}
}

func (m *fleetMetrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	m.lats[m.latN] = d
	m.latN = (m.latN + 1) % hedgeWindow
	if m.latCt < hedgeWindow {
		m.latCt++
	}
	m.seq++
	m.mu.Unlock()
}

// latencyP95 is the rolling p95 of winning attempts (0 until enough
// history exists), recomputed at most once per hedgeP95Every records.
func (m *fleetMetrics) latencyP95() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latCt < hedgeP95Every {
		return 0
	}
	if m.p95At != 0 && m.seq-m.p95At < hedgeP95Every {
		return m.p95
	}
	window := make([]time.Duration, m.latCt)
	copy(window, m.lats[:m.latCt])
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	rank := int(math.Ceil(0.95 * float64(len(window))))
	if rank < 1 {
		rank = 1
	}
	m.p95 = window[rank-1]
	m.p95At = m.seq
	return m.p95
}

// BackendSnapshot is one backend's entry in the fleet /metrics.
type BackendSnapshot struct {
	URL       string `json:"url"`
	State     string `json:"state"`
	InFlight  int64  `json:"in_flight"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Evictions uint64 `json:"evictions"`
	Probes    uint64 `json:"probes"`
	// ConsecutiveFails is the live failure streak feeding eviction.
	ConsecutiveFails int32 `json:"consecutive_fails"`
	// CoolingMs is the remaining 429 Retry-After cooldown (0 if none).
	CoolingMs float64 `json:"cooling_ms,omitempty"`
	LastError string  `json:"last_error,omitempty"`
}

// Snapshot is the GET /metrics response body: gateway-level request
// accounting plus per-backend health, in config order.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Accepted  uint64 `json:"requests_accepted"`
	Completed uint64 `json:"requests_completed"`
	Failed    uint64 `json:"requests_failed"`
	Shed      uint64 `json:"requests_shed"`

	HedgesFired uint64 `json:"hedges_fired"`
	HedgesWon   uint64 `json:"hedges_won"`
	Retries     uint64 `json:"retries"`
	Swaps       uint64 `json:"swaps"`

	// StreamSessions counts streaming sessions pinned to a backend;
	// StreamRetries counts the terminal retry events that handed a
	// broken session back to its client for resumption.
	StreamSessions uint64 `json:"stream_sessions"`
	StreamRetries  uint64 `json:"stream_retries"`
	// HedgeDelayMs is the delay a hedge would use right now.
	HedgeDelayMs float64 `json:"hedge_delay_ms"`

	// LiveBackends counts backends currently routable (healthy or
	// half-open); EvictionsTotal sums evictions across the fleet.
	LiveBackends   int    `json:"live_backends"`
	EvictionsTotal uint64 `json:"evictions_total"`

	Backends []BackendSnapshot `json:"backends"`
}

// Snapshot captures the gateway's current view of itself and the
// fleet.
func (g *Gateway) Snapshot() Snapshot {
	now := time.Now()
	s := Snapshot{
		UptimeSeconds: now.Sub(g.start).Seconds(),
		Accepted:      g.met.accepted.Load(),
		Completed:     g.met.completed.Load(),
		Failed:        g.met.failed.Load(),
		Shed:          g.met.shed.Load(),
		HedgesFired:   g.met.hedgesFired.Load(),
		HedgesWon:     g.met.hedgesWon.Load(),
		Retries:        g.met.retries.Load(),
		Swaps:          g.met.swaps.Load(),
		StreamSessions: g.met.streamSessions.Load(),
		StreamRetries:  g.met.streamRetries.Load(),
		HedgeDelayMs:  float64(g.hedgeDelay()) / float64(time.Millisecond),
	}
	for _, b := range g.backends {
		st := b.currentState()
		if st != StateEvicted {
			s.LiveBackends++
		}
		s.EvictionsTotal += b.evictions.Load()
		bs := BackendSnapshot{
			URL:              b.url,
			State:            st.String(),
			InFlight:         b.inflight.Load(),
			Completed:        b.completed.Load(),
			Failed:           b.failed.Load(),
			Evictions:        b.evictions.Load(),
			Probes:           b.probes.Load(),
			ConsecutiveFails: b.consecFails.Load(),
			LastError:        b.lastErrString(),
		}
		if until := b.coolUntil.Load(); until > now.UnixNano() {
			bs.CoolingMs = float64(until-now.UnixNano()) / float64(time.Millisecond)
		}
		s.Backends = append(s.Backends, bs)
	}
	return s
}
