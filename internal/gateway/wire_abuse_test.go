package gateway

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wire"
)

// abuseEngine is a minimal serve.Engine for the wire abuse tests: the
// backend must be a real serve.Server (not a stub mux) so the test
// covers the gateway's buffer-and-replay proxying composed with the
// serve layer's frame validation and admission ledger.
type abuseEngine struct{}

func (abuseEngine) InLen() int   { return 4 }
func (abuseEngine) Classes() int { return 3 }
func (abuseEngine) InferBatch(inputs [][]float64, samples []int) []serve.Prediction {
	preds := make([]serve.Prediction, len(inputs))
	for i := range inputs {
		preds[i] = serve.Prediction{Pred: 1, Latency: 2, TotalSpikes: 3}
	}
	return preds
}

// TestWireAbuseViaGateway sends malformed binary frames through the
// gateway to a real serve backend and pins the composed behavior:
// oversized bodies die at the gateway with 413 before touching any
// backend, malformed frames are forwarded verbatim and come back as the
// backend's 400 (client errors are not retried onto other replicas),
// good frames return a valid binary response — and both the gateway's
// and the backend's accounting stay exact throughout.
func TestWireAbuseViaGateway(t *testing.T) {
	srv := serve.New(abuseEngine{}, serve.Options{MaxBatch: 2, MaxWait: time.Millisecond})
	defer srv.Close()
	backend := httptest.NewServer(srv.Handler())
	defer backend.Close()

	g, err := New(Options{
		Backends:      []string{backend.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	good := wire.AppendRequest(nil, wire.Request{Lane: wire.LaneF32, Sample: -1, Label: -1},
		[]float64{1, 2, 3, 4})
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	badVersion := append([]byte(nil), good...)
	badVersion[2] = 9

	post := func(body []byte) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/infer", wire.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Good frame end to end: the response must be a parseable binary
	// frame with the stub engine's prediction.
	resp := post(good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good frame via gateway: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("good frame via gateway: Content-Type %q", ct)
	}
	frame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := wire.DecodeResponse(frame)
	if err != nil {
		t.Fatalf("response frame via gateway: %v", err)
	}
	if wresp.Pred != 1 || wresp.LatencySteps != 2 || wresp.TotalSpikes != 3 {
		t.Fatalf("proxied response = %+v", wresp)
	}

	// Malformed frames: the backend's 400 must pass through unmodified.
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"bad magic", badMagic},
		{"bad version", badVersion},
		{"truncated header", good[:10]},
		{"truncated payload", good[:len(good)-4]},
	} {
		resp := post(tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s via gateway: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Oversized: rejected by the gateway itself, before any forwarding.
	before := srv.Metrics().Snapshot()
	resp = post(make([]byte, 9<<20))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized via gateway: status %d, want 413", resp.StatusCode)
	}

	// Backend ledger: only the good frame was admitted; the 400s were
	// rejected pre-admission and the oversized body never arrived.
	bs := srv.Metrics().Snapshot()
	if bs.Accepted != before.Accepted || bs.Accepted != 1 || bs.Completed != 1 {
		t.Fatalf("backend accepted/completed = %d/%d, want 1/1", bs.Accepted, bs.Completed)
	}
	if bs.Accepted != bs.Completed+bs.Expired+bs.Failed {
		t.Fatalf("backend ledger drift: %+v", bs)
	}

	// Gateway ledger: the oversized request was turned away before
	// acceptance; everything else (good + 4 malformed, all forwarded)
	// completed. accepted = completed + failed + shed must hold exactly.
	gs := g.Snapshot()
	if gs.Accepted != 5 || gs.Completed != 5 || gs.Failed != 0 || gs.Shed != 0 {
		t.Fatalf("gateway ledger = accepted %d completed %d failed %d shed %d, want 5/5/0/0",
			gs.Accepted, gs.Completed, gs.Failed, gs.Shed)
	}
}
