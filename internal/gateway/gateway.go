// Package gateway is the horizontal scale-out tier in front of replica
// snnserve backends: an HTTP routing proxy built for backend failure.
//
// Robustness machinery:
//
//   - Per-backend health state machine (see State) driven by active
//     /readyz probes and passive observation of proxied request
//     outcomes, with eviction, exponential-backoff re-probing, and
//     half-open recovery.
//   - Least-loaded routing (live in-flight counters) with
//     consistent-hash client affinity: requests carrying the client
//     header are pinned to a backend by rendezvous hashing, which
//     remaps only the dead backend's clients when membership changes.
//   - Hedged retries for the idempotent inference path: if the primary
//     attempt is slower than the fleet's rolling p95, a second attempt
//     fires on a different backend and the first response wins (the
//     loser is canceled). Failed attempts (connection errors, 503s)
//     retry on another backend; 429s are forwarded with their
//     Retry-After honored as a routing cooldown, never hammered.
//   - Degraded service instead of hangs: with no routable backend the
//     request waits at most PoolWait for one to recover, then gets 503
//     with Retry-After.
//   - Streaming sessions (POST /v1/stream) pin to one healthy backend
//     for their lifetime; a mid-session backend failure surfaces as a
//     terminal in-band retry event the client resumes from, never a
//     dropped connection with frames in limbo (see handleStream).
//   - Fleet-wide zero-downtime model hot-swap: POST
//     /v1/models/{name}/swap rolls the registry-level swap across the
//     backends one at a time, so some replica serves the model at
//     every instant.
//
// Request accounting keeps the serve layer's exactness invariant at
// the fleet level: accepted = completed + failed + shed.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// maxBodyBytes mirrors the serve layer's request-body bound; the
// gateway buffers bodies (requests for resend, responses so a mid-body
// backend failure never reaches the client), so it enforces the same
// ceiling.
const maxBodyBytes = 8 << 20

// errNoBackends is the degraded-mode outcome: no routable backend
// appeared within PoolWait.
var errNoBackends = errors.New("gateway: no live backends")

// Options configures the gateway. The zero value of every field gets
// a serviceable default from withDefaults; only Backends is required.
type Options struct {
	// Backends are the replica base URLs (e.g. http://10.0.0.1:8080).
	Backends []string
	// ClientHeader names the affinity/identity header forwarded to
	// backends (default "X-Client-ID").
	ClientHeader string

	// ProbeInterval is the active health-probe period per backend
	// (default 500ms); ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// ProbeBackoffMax caps the exponential re-probe backoff for an
	// evicted backend (default 16×ProbeInterval).
	ProbeBackoffMax time.Duration
	// FailThreshold is how many consecutive failures (active or
	// passive) evict a healthy backend (default 3).
	FailThreshold int

	// MaxAttempts bounds distinct backends tried per request — the
	// primary plus retries/hedges (default 3, clamped to the pool
	// size).
	MaxAttempts int
	// DisableHedge turns off latency hedging (failure retries remain).
	DisableHedge bool
	// HedgeDelay is the hedge trigger before latency history exists
	// (default 25ms); once the fleet p95 is known the delay tracks it,
	// clamped to [HedgeMin, HedgeMax] (defaults 1ms, 1s).
	HedgeDelay time.Duration
	HedgeMin   time.Duration
	HedgeMax   time.Duration

	// PoolWait is how long a request may wait for a routable backend
	// before being shed with 503 + Retry-After (default 1s). Degraded
	// service is bounded: the gateway never hangs on an empty pool.
	PoolWait time.Duration
	// SwapTimeout bounds one backend's model swap during a rolling
	// fleet swap (default 5m — a swap may train or load a model).
	SwapTimeout time.Duration

	// Transport overrides the proxy transport (tests).
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.ClientHeader == "" {
		o.ClientHeader = "X-Client-ID"
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.ProbeBackoffMax <= 0 {
		o.ProbeBackoffMax = 16 * o.ProbeInterval
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if n := len(o.Backends); o.MaxAttempts > n {
		o.MaxAttempts = n
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = time.Second
	}
	if o.PoolWait <= 0 {
		o.PoolWait = time.Second
	}
	if o.SwapTimeout <= 0 {
		o.SwapTimeout = 5 * time.Minute
	}
	return o
}

// Gateway routes requests across the backend fleet. Create with New,
// serve Handler, stop with Close.
type Gateway struct {
	opt      Options
	client   *http.Client
	backends []*backend
	met      *fleetMetrics
	start    time.Time

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New validates the backend list, starts one probe loop per backend,
// and returns the gateway. Backends start Healthy: the first probe (or
// the first failed request) corrects optimism within one interval.
func New(opt Options) (*Gateway, error) {
	opt = opt.withDefaults()
	if len(opt.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	transport := opt.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			// Inference payloads are tiny (binary frames especially);
			// accept-encoding negotiation would only add per-request
			// header work and an allocation on every proxied response.
			DisableCompression: true,
		}
	}
	g := &Gateway{
		opt:    opt,
		client: &http.Client{Transport: transport},
		met:    newFleetMetrics(),
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, raw := range opt.Backends {
		u := strings.TrimRight(raw, "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("gateway: backend %q is not an http(s) URL", raw)
		}
		if seen[u] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", u)
		}
		seen[u] = true
		g.backends = append(g.backends, &backend{url: u})
	}
	for _, b := range g.backends {
		g.wg.Add(1)
		go g.probeLoop(b)
	}
	return g, nil
}

// BeginDrain flips the gateway to 503 for new requests and cancels
// open streaming relays (their clients get terminal retry events, not
// dropped connections) without waiting for anything. Call it before a
// graceful http.Server.Shutdown: Shutdown waits for active handlers,
// and a streaming relay only returns once its session ends.
func (g *Gateway) BeginDrain() {
	if g.closed.CompareAndSwap(false, true) {
		close(g.stop)
	}
}

// Close stops the probe loops and flips the gateway to 503 for new
// requests. In-flight proxied requests are the HTTP server's to drain.
func (g *Gateway) Close() {
	g.BeginDrain()
	g.wg.Wait()
}

// Handler returns the gateway's HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", g.handleInfer)
	mux.HandleFunc("POST /v1/models/{name}/infer", g.handleInfer)
	mux.HandleFunc("POST /v1/stream", g.handleStream)
	mux.HandleFunc("POST /v1/models/{name}/stream", g.handleStream)
	mux.HandleFunc("POST /v1/models/{name}/swap", g.handleSwap)
	mux.HandleFunc("GET /v1/models", g.handleModels)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /readyz", g.handleReady)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// ---- active probing ----

// probeLoop drives one backend's health state machine from the active
// side: periodic /readyz probes while the backend is a member,
// exponential backoff re-probes while it is evicted, and the
// evicted→probing→healthy recovery ladder (so an idle fleet readmits a
// restarted backend without needing traffic to prove it out).
func (g *Gateway) probeLoop(b *backend) {
	defer g.wg.Done()
	backoff := g.opt.ProbeInterval
	timer := time.NewTimer(0) // probe immediately at startup
	defer timer.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-timer.C:
		}
		ok := g.probe(b)
		next := g.opt.ProbeInterval
		if ok {
			switch b.currentState() {
			case StateEvicted:
				// Half-open: back in the pool for trial traffic; the
				// next success (active or passive) completes recovery.
				b.consecFails.Store(0)
				b.state.Store(int32(StateProbing))
				backoff = g.opt.ProbeInterval
			case StateProbing:
				b.observeSuccess()
			default:
				b.consecFails.Store(0)
			}
		} else {
			switch b.currentState() {
			case StateEvicted:
				backoff *= 2
				if backoff > g.opt.ProbeBackoffMax {
					backoff = g.opt.ProbeBackoffMax
				}
				next = backoff
			default:
				b.observeFailure(g.opt.FailThreshold, "probe failed")
			}
		}
		timer.Reset(next)
	}
}

// probe asks one backend whether it can take traffic. Readiness — not
// liveness — is the question: a warming or draining backend answers
// 503 and stays out of the pool.
func (g *Gateway) probe(b *backend) bool {
	b.probes.Add(1)
	b.lastProbe.Store(time.Now().UnixNano())
	ctx, cancel := context.WithTimeout(context.Background(), g.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.setLastErr(err.Error())
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.setLastErr(fmt.Sprintf("probe status %d", resp.StatusCode))
		return false
	}
	return true
}

// ---- routing ----

// pick chooses a routing target outside skip: healthy backends first
// (affinity or least-loaded), then half-open ones for trial traffic
// (at most one request in flight), then cooling backends — soft 429
// pressure is better honored by preference than by refusal. Returns
// nil only when nothing is routable.
func (g *Gateway) pick(clientKey string, skip []*backend) *backend {
	now := time.Now()
	var healthy, probing, cooling []*backend
	for _, b := range g.backends {
		if contains(skip, b) {
			continue
		}
		switch b.currentState() {
		case StateHealthy:
			if b.cooling(now) {
				cooling = append(cooling, b)
			} else {
				healthy = append(healthy, b)
			}
		case StateProbing:
			if b.inflight.Load() == 0 {
				probing = append(probing, b)
			}
		}
	}
	if len(healthy) > 0 {
		return choose(clientKey, healthy)
	}
	if len(probing) > 0 {
		return probing[0]
	}
	if len(cooling) > 0 {
		return choose(clientKey, cooling)
	}
	return nil
}

// choose applies the routing policy within one preference tier:
// rendezvous-hash affinity when the client identifies itself,
// least-loaded otherwise.
func choose(clientKey string, cands []*backend) *backend {
	if clientKey != "" {
		// Rendezvous (highest-random-weight) hashing: each client
		// ranks every backend; evicting one remaps only its clients,
		// and they return home when it recovers.
		best, bestScore := cands[0], rendezvousScore(clientKey, cands[0].url)
		for _, b := range cands[1:] {
			if s := rendezvousScore(clientKey, b.url); s > bestScore {
				best, bestScore = b, s
			}
		}
		return best
	}
	best := cands[0]
	load := best.inflight.Load()
	for _, b := range cands[1:] {
		if l := b.inflight.Load(); l < load {
			best, load = b, l
		}
	}
	return best
}

func rendezvousScore(clientKey, url string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, clientKey)
	h.Write([]byte{0})
	io.WriteString(h, url)
	return h.Sum64()
}

func contains(s []*backend, b *backend) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// hedgeDelay is the current wait before a second attempt fires: the
// rolling p95 of winning attempts once known (a hedge should trigger
// only for genuine stragglers), clamped, else the configured default.
func (g *Gateway) hedgeDelay() time.Duration {
	p95 := g.met.latencyP95()
	if p95 <= 0 {
		return g.opt.HedgeDelay
	}
	if p95 < g.opt.HedgeMin {
		return g.opt.HedgeMin
	}
	if p95 > g.opt.HedgeMax {
		return g.opt.HedgeMax
	}
	return p95
}

// ---- proxying ----

// attemptOutcome is one backend attempt's result: either err is set
// (transport-level failure) or status/header/body hold a complete
// buffered backend response.
type attemptOutcome struct {
	b        *backend
	hedge    bool
	status   int
	header   http.Header
	body     []byte
	buf      *[]byte // pooled backing store of body; release via releaseOutcome
	err      error
	canceled bool // canceled by us (a sibling won); not a health signal
	dur      time.Duration
}

// releaseOutcome returns an outcome's pooled response buffer (if any)
// and clears the body alias so a released buffer can't be read.
func releaseOutcome(o *attemptOutcome) {
	if o.buf != nil {
		wire.PutBuf(o.buf)
		o.buf, o.body = nil, nil
	}
}

// retryable reports whether another backend may legally serve this
// request instead: the attempt never produced a client-visible
// response (transport failure with the response unbuffered, so the
// client saw nothing) or the backend declared itself unavailable
// (503, e.g. draining). Everything else — including 429 and engine
// errors — is a real answer for the client.
func (o attemptOutcome) retryable() bool {
	return o.err != nil || o.status == http.StatusServiceUnavailable
}

// healthFailure reports whether the outcome should count against the
// backend's health: transport errors and 5xx server trouble, but not
// cancellation (our doing), 429 (working admission control), or 504
// (the client's deadline, honestly missed).
func (o attemptOutcome) healthFailure() bool {
	if o.canceled {
		return false
	}
	if o.err != nil {
		return true
	}
	switch o.status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

func (o attemptOutcome) describe() string {
	if o.err != nil {
		return o.err.Error()
	}
	return fmt.Sprintf("status %d", o.status)
}

// attempt proxies one buffered request to one backend and reports the
// fully buffered outcome. Buffering both directions is what makes
// hedging and retries safe: nothing reaches the client until one
// attempt has produced a complete response.
func (g *Gateway) attempt(ctx context.Context, b *backend, path, clientKey, contentType string, body []byte, hedge bool, results chan<- attemptOutcome) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	t0 := time.Now()
	fail := func(err error) {
		canceled := ctx.Err() != nil
		if !canceled {
			b.failed.Add(1)
		}
		results <- attemptOutcome{b: b, hedge: hedge, err: err, canceled: canceled, dur: time.Since(t0)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", contentType)
	if clientKey != "" {
		req.Header.Set(g.opt.ClientHeader, clientKey)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	// The response buffers through a pooled slice: the winner's bytes
	// forward to the client verbatim (no decode/re-encode — binary
	// frames and JSON alike), losers recycle without ever allocating.
	bp := wire.GetBuf()
	rb, err := readInto(*bp, io.LimitReader(resp.Body, maxBodyBytes+1))
	*bp = rb
	resp.Body.Close()
	if err != nil {
		wire.PutBuf(bp)
		// Mid-body failure: the buffered response is discarded whole,
		// so a retry elsewhere is still safe — the client saw nothing.
		fail(fmt.Errorf("reading backend response: %w", err))
		return
	}
	if len(rb) > maxBodyBytes {
		wire.PutBuf(bp)
		// An over-limit body must not be truncated and forwarded as if
		// complete; fail the attempt (retryable on another backend).
		fail(fmt.Errorf("backend response exceeds %d bytes", maxBodyBytes))
		return
	}
	if resp.StatusCode >= 500 {
		b.failed.Add(1)
	}
	results <- attemptOutcome{
		b: b, hedge: hedge,
		status: resp.StatusCode, header: resp.Header, body: rb, buf: bp,
		dur: time.Since(t0),
	}
}

// readInto drains r into buf (grown only when capacity is short) so a
// pooled slice makes the steady state allocation-free.
func readInto(buf []byte, r io.Reader) ([]byte, error) {
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// canceledOutcome is the exit for a request whose last outstanding
// attempt came back canceled. The select in hedgedDo can drain queued
// canceled results ahead of the ctx.Done() case (both are ready once
// the client disconnects, and select picks among ready cases
// arbitrarily), so this path must never surface the zero-value
// lastFail of a request that saw no real failure — handleInfer would
// read it as a success and dereference its nil backend.
func canceledOutcome(ctx context.Context, lastFail attemptOutcome) attemptOutcome {
	if lastFail.err == nil && lastFail.b == nil {
		if err := ctx.Err(); err != nil {
			return attemptOutcome{err: err}
		}
		return attemptOutcome{err: context.Canceled}
	}
	return lastFail
}

// hedgedDo runs the attempt engine for one idempotent request: a
// primary attempt on the routed backend, an optional hedge on a second
// backend once the p95 delay expires, immediate failover on retryable
// failures, and cancellation of losers the moment a winner lands.
//
// release, when non-nil, is called once every launched attempt has
// delivered its outcome — the earliest moment the shared body buffer
// can be recycled (all attempts read it through their own bytes.Reader,
// and a straggler may still be mid-send when the winner returns). It
// may fire after hedgedDo returns, from the straggler-drain goroutine.
func (g *Gateway) hedgedDo(ctx context.Context, path, clientKey, contentType string, body []byte, release func()) attemptOutcome {
	results := make(chan attemptOutcome, g.opt.MaxAttempts)
	var tried []*backend
	var cancels []context.CancelFunc
	outstanding, launched := 0, 0
	defer func() {
		// Registered before the drain defer below so it runs after it
		// (LIFO): stragglers get canceled right after the drain goroutine
		// is in place to collect them.
		for _, c := range cancels {
			c()
		}
	}()
	defer func() {
		if outstanding == 0 {
			if release != nil {
				release()
			}
			return
		}
		// Every attempt sends exactly one outcome, so draining exactly
		// `outstanding` more frees the stragglers' pooled response
		// buffers and then the shared request body.
		n := outstanding
		go func() {
			for i := 0; i < n; i++ {
				out := <-results
				releaseOutcome(&out)
			}
			if release != nil {
				release()
			}
		}()
	}()

	launch := func(hedge bool) bool {
		b := g.pick(clientKey, tried)
		if b == nil {
			return false
		}
		tried = append(tried, b)
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		launched++
		outstanding++
		go g.attempt(actx, b, path, clientKey, contentType, body, hedge, results)
		return true
	}

	// Degraded mode: an empty pool queues the request (bounded by
	// PoolWait) rather than failing instantly — a half-open recovery
	// or probe readmission within the window rescues it.
	poolDeadline := time.Now().Add(g.opt.PoolWait)
	for !launch(false) {
		if time.Now().After(poolDeadline) {
			return attemptOutcome{err: errNoBackends}
		}
		select {
		case <-ctx.Done():
			return attemptOutcome{err: ctx.Err()}
		case <-time.After(10 * time.Millisecond):
		}
	}

	var hedgeC <-chan time.Time
	if !g.opt.DisableHedge && len(g.backends) > 1 {
		timer := time.NewTimer(g.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}

	var lastFail attemptOutcome
	for {
		select {
		case out := <-results:
			outstanding--
			if out.canceled {
				if outstanding == 0 {
					return canceledOutcome(ctx, lastFail)
				}
				continue
			}
			if out.healthFailure() {
				out.b.observeFailure(g.opt.FailThreshold, out.describe())
			} else if out.err == nil {
				out.b.observeSuccess()
			}
			if !out.retryable() {
				if out.status >= 200 && out.status < 300 {
					// Only successes feed the hedge-delay p95: a burst
					// of fast 429s would otherwise drag the window
					// toward zero and fire hedges on every request,
					// amplifying load exactly when the fleet is
					// admission-limited.
					g.met.recordLatency(out.dur)
				}
				if out.hedge {
					g.met.hedgesWon.Add(1)
				}
				if out.status == http.StatusTooManyRequests {
					// Honor the backend's Retry-After as a routing
					// cooldown; the client gets the same header to
					// pace itself.
					if d := retryAfterDuration(out.header); d > 0 {
						out.b.setCooldown(time.Now().Add(d))
					}
				}
				releaseOutcome(&lastFail)
				return out
			}
			releaseOutcome(&lastFail)
			lastFail = out
			if launched < g.opt.MaxAttempts && launch(false) {
				g.met.retries.Add(1)
				continue
			}
			if outstanding == 0 {
				return lastFail
			}
		case <-hedgeC:
			hedgeC = nil
			if outstanding == 1 && launched < g.opt.MaxAttempts && launch(true) {
				g.met.hedgesFired.Add(1)
			}
		case <-ctx.Done():
			releaseOutcome(&lastFail)
			return attemptOutcome{err: ctx.Err()}
		}
	}
}

// handleInfer is the routed inference path. The request body is
// buffered once into a pooled slice (it must be resendable for hedges
// and retries — every attempt replays the same bytes, binary frames
// and JSON alike, with no decode/re-encode in between); the outcome is
// counted at exactly one of the three exits, keeping
// accepted = completed + failed + shed exact.
func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if g.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "gateway closing")
		return
	}
	bp := wire.GetBuf()
	body, err := readInto(*bp, http.MaxBytesReader(w, r.Body, maxBodyBytes))
	*bp = body
	if err != nil {
		wire.PutBuf(bp)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	g.met.accepted.Add(1)
	out := g.hedgedDo(r.Context(), r.URL.Path, r.Header.Get(g.opt.ClientHeader), r.Header.Get("Content-Type"), body,
		func() { wire.PutBuf(bp) })
	defer releaseOutcome(&out)
	switch {
	case errors.Is(out.err, errNoBackends):
		g.met.shed.Add(1)
		writeRetryAfter(w, g.opt.ProbeInterval)
		writeError(w, http.StatusServiceUnavailable, "no live backends")
	case out.err != nil:
		g.met.failed.Add(1)
		if r.Context().Err() != nil {
			// The client is gone; there is no one to write to.
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Sprintf("all backends failed: %v", out.err))
	default:
		g.met.completed.Add(1)
		out.b.completed.Add(1)
		copyResponse(w, out)
	}
}

// handleModels forwards the model listing from the first backend that
// answers.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	var tried []*backend
	for len(tried) < len(g.backends) {
		b := g.pick("", tried)
		if b == nil {
			break
		}
		tried = append(tried, b)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+"/v1/models", nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			b.observeFailure(g.opt.FailThreshold, err.Error())
			continue
		}
		rb, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil {
			continue
		}
		copyResponse(w, attemptOutcome{status: resp.StatusCode, header: resp.Header, body: rb})
		return
	}
	writeRetryAfter(w, g.opt.ProbeInterval)
	writeError(w, http.StatusServiceUnavailable, "no live backends")
}

// BackendSwapResult is one backend's entry in a rolling-swap report.
type BackendSwapResult struct {
	URL    string `json:"url"`
	Status string `json:"status"` // swapped | failed | skipped
	Detail string `json:"detail,omitempty"`
}

// SwapReport is the response body of a fleet-wide rolling swap.
type SwapReport struct {
	Model    string              `json:"model"`
	Swapped  int                 `json:"swapped"`
	Skipped  int                 `json:"skipped"`
	Backends []BackendSwapResult `json:"backends"`
}

// handleSwap rolls a model hot-swap across the fleet, one backend at a
// time — each backend keeps serving its old engine until its own
// atomic cutover, so the model stays fully available throughout.
// Evicted backends are skipped (they re-enter with whatever they load
// at restart; the report says so). The roll aborts on the first
// failure: a half-updated fleet is explicit, never silent.
func (g *Gateway) handleSwap(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	report := SwapReport{Model: r.PathValue("name")}
	failed := false
	for _, b := range g.backends {
		if failed || b.currentState() == StateEvicted {
			status := "skipped"
			detail := "backend evicted"
			if failed {
				detail = "roll aborted by earlier failure"
			}
			report.Backends = append(report.Backends, BackendSwapResult{URL: b.url, Status: status, Detail: detail})
			report.Skipped++
			continue
		}
		res := g.swapOne(r.Context(), b, r.URL.Path, body)
		report.Backends = append(report.Backends, res)
		if res.Status == "swapped" {
			report.Swapped++
		} else {
			failed = true
		}
	}
	if failed {
		writeJSON(w, http.StatusBadGateway, report)
		return
	}
	g.met.swaps.Add(1)
	writeJSON(w, http.StatusOK, report)
}

// swapOne performs one backend's swap. Never hedged and never retried:
// a swap is not idempotent from the fleet's point of view (a duplicate
// could double-build a model mid-roll), so its failure is reported,
// not papered over.
func (g *Gateway) swapOne(ctx context.Context, b *backend, path string, body []byte) BackendSwapResult {
	ctx, cancel := context.WithTimeout(ctx, g.opt.SwapTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return BackendSwapResult{URL: b.url, Status: "failed", Detail: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		b.observeFailure(g.opt.FailThreshold, err.Error())
		return BackendSwapResult{URL: b.url, Status: "failed", Detail: err.Error()}
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return BackendSwapResult{URL: b.url, Status: "failed",
			Detail: fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(rb)))}
	}
	return BackendSwapResult{URL: b.url, Status: "swapped", Detail: strings.TrimSpace(string(rb))}
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if g.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady: the gateway is ready when it could route a request
// right now — at least one backend is healthy or half-open.
func (g *Gateway) handleReady(w http.ResponseWriter, _ *http.Request) {
	if g.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	live := 0
	for _, b := range g.backends {
		if b.currentState() != StateEvicted {
			live++
		}
	}
	if live == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "live_backends": live})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Snapshot())
}

// ---- response plumbing ----

// copyResponse forwards a buffered backend response verbatim.
func copyResponse(w http.ResponseWriter, out attemptOutcome) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := out.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// retryAfterDuration parses a delay-seconds Retry-After header (the
// only form the serve layer emits).
func retryAfterDuration(h http.Header) time.Duration {
	if h == nil {
		return 0
	}
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
