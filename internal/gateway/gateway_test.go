package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubBackend is a controllable fake snnserve replica: it answers
// /readyz and the infer routes, counts hits, and can be told to fail,
// stall, or rate-limit on demand.
type stubBackend struct {
	ts       *httptest.Server
	hits     atomic.Int64 // infer requests served (any status)
	swapHits atomic.Int64
	down     atomic.Bool  // readyz 503 + infer 503
	delay    atomic.Int64 // infer latency, nanoseconds
	status   atomic.Int64 // forced infer status (0 = 200 OK)

	swapMu     sync.Mutex
	swapActive int
	swapMaxAct int
	swapOrder  *[]string // shared across backends to record roll order
	orderMu    *sync.Mutex
	swapStatus int // 0 = 200
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	b := &stubBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if b.down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	infer := func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if d := b.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if b.down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if s := b.status.Load(); s != 0 {
			if s == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(int(s))
			return
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"pred":7,"served_by":%q}`, b.ts.URL)
	}
	mux.HandleFunc("POST /v1/infer", infer)
	mux.HandleFunc("POST /v1/models/{name}/infer", infer)
	mux.HandleFunc("POST /v1/models/{name}/swap", func(w http.ResponseWriter, r *http.Request) {
		b.swapHits.Add(1)
		b.swapMu.Lock()
		b.swapActive++
		if b.swapActive > b.swapMaxAct {
			b.swapMaxAct = b.swapActive
		}
		status := b.swapStatus
		b.swapMu.Unlock()
		if b.orderMu != nil {
			b.orderMu.Lock()
			*b.swapOrder = append(*b.swapOrder, b.ts.URL)
			b.orderMu.Unlock()
		}
		time.Sleep(5 * time.Millisecond) // would overlap if the roll were parallel
		b.swapMu.Lock()
		b.swapActive--
		b.swapMu.Unlock()
		if status != 0 {
			http.Error(w, "swap refused", status)
			return
		}
		fmt.Fprintf(w, `{"model":%q,"swaps":1}`, r.PathValue("name"))
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"default":"main","models":[]}`)
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

// newTestGateway builds a gateway over the given stub backends with
// fast probes, returning it and its HTTP server.
func newTestGateway(t *testing.T, opt Options, backends ...*stubBackend) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, b := range backends {
		opt.Backends = append(opt.Backends, b.ts.URL)
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = 20 * time.Millisecond
	}
	if opt.ProbeTimeout == 0 {
		opt.ProbeTimeout = 250 * time.Millisecond
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func doInfer(t *testing.T, url, clientID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/models/main/infer",
		bytes.NewReader([]byte(`{"input":[1,2,3,4]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The health state machine in isolation: threshold-gated eviction from
// Healthy, instant re-eviction from Probing, promotion on success.
func TestBackendStateMachine(t *testing.T) {
	b := &backend{url: "http://x"}
	if b.currentState() != StateHealthy {
		t.Fatal("backends must start healthy")
	}
	b.observeFailure(3, "e1")
	b.observeFailure(3, "e2")
	if b.currentState() != StateHealthy {
		t.Fatal("evicted below threshold")
	}
	b.observeSuccess()
	b.observeFailure(3, "e1")
	b.observeFailure(3, "e2")
	if b.currentState() != StateHealthy {
		t.Fatal("success did not reset the failure streak")
	}
	b.observeFailure(3, "e3")
	if b.currentState() != StateEvicted {
		t.Fatal("not evicted at threshold")
	}
	if b.evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", b.evictions.Load())
	}
	b.evict()
	if b.evictions.Load() != 1 {
		t.Fatal("double-counted an already-evicted backend")
	}

	// Half-open trial: one failure sends it straight back.
	b.state.Store(int32(StateProbing))
	b.observeFailure(3, "e4")
	if b.currentState() != StateEvicted {
		t.Fatal("probing backend survived a failed trial")
	}
	b.state.Store(int32(StateProbing))
	b.observeSuccess()
	if b.currentState() != StateHealthy {
		t.Fatal("probing backend not promoted on success")
	}
}

// Requests carrying a client ID must pin to one backend; distinct
// clients must not all pin to the same one (rendezvous spreads them).
func TestGatewayClientAffinity(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	_, ts := newTestGateway(t, Options{DisableHedge: true}, b1, b2, b3)

	for i := 0; i < 12; i++ {
		resp, raw := doInfer(t, ts.URL, "alice")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}
	nonZero := 0
	for _, b := range []*stubBackend{b1, b2, b3} {
		if b.hits.Load() > 0 {
			nonZero++
			if b.hits.Load() != 12 {
				t.Fatalf("affinity split: backend got %d of 12", b.hits.Load())
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("alice landed on %d backends, want 1", nonZero)
	}

	// Many distinct clients spread across more than one backend.
	for i := 0; i < 30; i++ {
		doInfer(t, ts.URL, fmt.Sprintf("client-%d", i))
	}
	spread := 0
	for _, b := range []*stubBackend{b1, b2, b3} {
		if b.hits.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("30 clients all hashed to %d backend(s)", spread)
	}
}

// Anonymous traffic routes by load: with two backends artificially
// busy, everything goes to the idle one.
func TestGatewayLeastLoaded(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	g, ts := newTestGateway(t, Options{DisableHedge: true}, b1, b2, b3)

	g.backends[0].inflight.Add(5)
	g.backends[1].inflight.Add(3)
	defer g.backends[0].inflight.Add(-5)
	defer g.backends[1].inflight.Add(-3)
	for i := 0; i < 8; i++ {
		resp, raw := doInfer(t, ts.URL, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}
	if got := b3.hits.Load(); got != 8 {
		t.Fatalf("idle backend served %d of 8", got)
	}
}

// A dying backend is evicted (within a few probe intervals), traffic
// flows on, and after it recovers the probe ladder readmits it.
func TestGatewayEvictAndRecover(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	g, ts := newTestGateway(t, Options{DisableHedge: true}, b1, b2)

	b1.down.Store(true)
	waitFor(t, 3*time.Second, "eviction", func() bool {
		return g.backends[0].currentState() == StateEvicted
	})
	if g.Snapshot().EvictionsTotal < 1 {
		t.Fatal("eviction not counted")
	}

	// Traffic flows to the survivor, zero client-visible failures.
	for i := 0; i < 5; i++ {
		resp, raw := doInfer(t, ts.URL, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d with one backend down: %s", resp.StatusCode, raw)
		}
	}

	b1.down.Store(false)
	waitFor(t, 5*time.Second, "readmission", func() bool {
		return g.backends[0].currentState() == StateHealthy
	})
	s := g.Snapshot()
	if s.LiveBackends != 2 {
		t.Fatalf("live backends = %d after recovery, want 2", s.LiveBackends)
	}
}

// A straggling primary is hedged: the fast second attempt answers well
// before the slow backend would have, and the hedge is accounted.
func TestGatewayHedging(t *testing.T) {
	slow, fast := newStubBackend(t), newStubBackend(t)
	slow.delay.Store(int64(300 * time.Millisecond))
	// slow is first: equal in-flight makes it the least-loaded pick.
	g, ts := newTestGateway(t, Options{HedgeDelay: 10 * time.Millisecond}, slow, fast)

	t0 := time.Now()
	resp, raw := doInfer(t, ts.URL, "")
	took := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(fast.ts.URL)) {
		t.Fatalf("response not from the fast backend: %s", raw)
	}
	if took >= 300*time.Millisecond {
		t.Fatalf("hedge did not beat the slow backend (%v)", took)
	}
	s := g.Snapshot()
	if s.HedgesFired != 1 || s.HedgesWon != 1 {
		t.Fatalf("hedges fired=%d won=%d, want 1/1", s.HedgesFired, s.HedgesWon)
	}
	if s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0", s.Completed, s.Failed)
	}
}

// A backend answering 503 is retried on another backend — the client
// sees 200 and the failure feeds the first backend's health.
func TestGatewayRetryOn503(t *testing.T) {
	bad, good := newStubBackend(t), newStubBackend(t)
	bad.down.Store(true)
	g, ts := newTestGateway(t, Options{DisableHedge: true, ProbeInterval: time.Hour}, bad, good)

	resp, raw := doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	s := g.Snapshot()
	if s.Retries < 1 {
		t.Fatal("failover not counted as a retry")
	}
	if g.backends[0].consecFails.Load() < 1 && g.backends[0].currentState() == StateHealthy {
		t.Fatal("503 not observed against the backend's health")
	}
}

// A backend whose listener is gone (connection refused) is retried the
// same way.
func TestGatewayRetryOnConnRefused(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + l.Addr().String()
	l.Close()

	good := newStubBackend(t)
	opt := Options{DisableHedge: true, ProbeInterval: time.Hour,
		Backends: []string{deadURL, good.ts.URL}}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, raw := doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if good.hits.Load() != 1 {
		t.Fatalf("good backend hits = %d, want 1", good.hits.Load())
	}
}

// With every backend evicted the gateway degrades, never hangs: a
// bounded wait, then 503 with Retry-After, counted as shed.
func TestGatewayEmptyPoolSheds(t *testing.T) {
	b := newStubBackend(t)
	g, ts := newTestGateway(t, Options{
		DisableHedge: true,
		PoolWait:     50 * time.Millisecond,
	}, b)
	b.down.Store(true)
	waitFor(t, 3*time.Second, "eviction", func() bool {
		return g.backends[0].currentState() == StateEvicted
	})

	t0 := time.Now()
	resp, _ := doInfer(t, ts.URL, "")
	took := time.Since(t0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with empty pool, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if took > 2*time.Second {
		t.Fatalf("degraded request took %v — the wait must be bounded", took)
	}
	s := g.Snapshot()
	if s.Shed != 1 {
		t.Fatalf("shed = %d, want 1", s.Shed)
	}
	if s.Accepted != s.Completed+s.Failed+s.Shed {
		t.Fatalf("identity broken: %d != %d+%d+%d", s.Accepted, s.Completed, s.Failed, s.Shed)
	}
}

// 429 is a final answer, forwarded with its Retry-After — and it puts
// the backend on routing cooldown so the next anonymous request goes
// elsewhere.
func TestGateway429CooldownAndForwarding(t *testing.T) {
	limited, open := newStubBackend(t), newStubBackend(t)
	limited.status.Store(http.StatusTooManyRequests)
	g, ts := newTestGateway(t, Options{DisableHedge: true, ProbeInterval: time.Hour}, limited, open)

	resp, _ := doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the backend's 429 forwarded", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q not forwarded", resp.Header.Get("Retry-After"))
	}
	if g.backends[0].currentState() != StateHealthy {
		t.Fatal("429 must not count against health")
	}
	if !g.backends[0].cooling(time.Now()) {
		t.Fatal("429 did not set a routing cooldown")
	}
	resp, _ = doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request during cooldown: status %d, want 200 via the open backend", resp.StatusCode)
	}
	if open.hits.Load() != 1 {
		t.Fatalf("open backend hits = %d, want 1 (cooldown not honored)", open.hits.Load())
	}
}

// The fleet accounting identity holds across a mixed workload of
// successes, forwarded errors, and hard failures.
func TestGatewayAccountingIdentity(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	g, ts := newTestGateway(t, Options{DisableHedge: true, MaxAttempts: 2}, b1, b2)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				doInfer(t, ts.URL, fmt.Sprintf("c%d", i%3))
			}
		}()
	}
	wg.Wait()
	b1.status.Store(http.StatusInternalServerError)
	b2.status.Store(http.StatusInternalServerError)
	for i := 0; i < 5; i++ {
		doInfer(t, ts.URL, "") // forwarded 500s still count completed
	}
	s := g.Snapshot()
	if s.Accepted != 105 {
		t.Fatalf("accepted = %d, want 105", s.Accepted)
	}
	if s.Accepted != s.Completed+s.Failed+s.Shed {
		t.Fatalf("identity broken: accepted %d != completed %d + failed %d + shed %d",
			s.Accepted, s.Completed, s.Failed, s.Shed)
	}
}

// A fleet swap rolls strictly one backend at a time, in order, and the
// report says who swapped.
func TestGatewayRollingSwap(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	var order []string
	var orderMu sync.Mutex
	for _, b := range []*stubBackend{b1, b2, b3} {
		b.swapOrder, b.orderMu = &order, &orderMu
	}
	g, ts := newTestGateway(t, Options{}, b1, b2, b3)

	resp, err := http.Post(ts.URL+"/v1/models/main/swap", "application/json",
		bytes.NewReader([]byte(`{"source":"mnist/tiny"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var report SwapReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d: %+v", resp.StatusCode, report)
	}
	if report.Swapped != 3 || report.Skipped != 0 {
		t.Fatalf("swapped=%d skipped=%d, want 3/0", report.Swapped, report.Skipped)
	}
	want := []string{b1.ts.URL, b2.ts.URL, b3.ts.URL}
	orderMu.Lock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("roll order %v, want %v", order, want)
		}
	}
	orderMu.Unlock()
	for _, b := range []*stubBackend{b1, b2, b3} {
		b.swapMu.Lock()
		if b.swapMaxAct > 1 {
			t.Fatal("swap calls overlapped — the roll must be sequential")
		}
		b.swapMu.Unlock()
	}
	if g.Snapshot().Swaps != 1 {
		t.Fatalf("fleet swaps = %d, want 1", g.Snapshot().Swaps)
	}
}

// A failing backend aborts the roll: later backends are skipped and
// the report (with status 502) says exactly what happened.
func TestGatewayRollingSwapAbortsOnFailure(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	b2.swapMu.Lock()
	b2.swapStatus = http.StatusConflict
	b2.swapMu.Unlock()
	_, ts := newTestGateway(t, Options{}, b1, b2, b3)

	resp, err := http.Post(ts.URL+"/v1/models/main/swap", "application/json",
		bytes.NewReader([]byte(`{"source":"mnist/tiny"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var report SwapReport
	json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("aborted swap status %d, want 502", resp.StatusCode)
	}
	if report.Swapped != 1 || report.Skipped != 1 {
		t.Fatalf("swapped=%d skipped=%d, want 1 swapped (b1), 1 skipped (b3)", report.Swapped, report.Skipped)
	}
	if b3.swapHits.Load() != 0 {
		t.Fatal("backend after the failure was still contacted")
	}
}

// Gateway readiness mirrors the pool: ready with live backends, 503
// when everything is evicted, 503 when closing.
func TestGatewayReadiness(t *testing.T) {
	b := newStubBackend(t)
	g, ts := newTestGateway(t, Options{}, b)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d with a live backend", resp.StatusCode)
	}

	b.down.Store(true)
	waitFor(t, 3*time.Second, "eviction", func() bool {
		return g.backends[0].currentState() == StateEvicted
	})
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with the pool empty, want 503", resp.StatusCode)
	}
}

// Options validation: no backends, bad URLs, duplicates.
func TestGatewayNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("accepted an empty backend list")
	}
	if _, err := New(Options{Backends: []string{"localhost:8080"}}); err == nil {
		t.Fatal("accepted a schemeless backend URL")
	}
	if _, err := New(Options{Backends: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("accepted duplicate backends")
	}
}

// The canceled-drain exit must synthesize an error when the request
// saw only canceled attempts (zero-value lastFail) and pass a real
// last failure through untouched. This decision is extracted into
// canceledOutcome precisely because the select race that reaches it
// (queued canceled results drained ahead of ctx.Done()) needs a
// μs-scale scheduling coincidence no external test can force.
func TestCanceledOutcome(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out := canceledOutcome(ctx, attemptOutcome{}); out.err == nil {
		t.Fatal("zero-value lastFail surfaced as a success")
	} else if out.err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	// Defense in depth: even called with a live context (impossible
	// today — attempts only come back canceled once ctx is done), the
	// outcome must carry an error.
	if out := canceledOutcome(context.Background(), attemptOutcome{}); out.err == nil {
		t.Fatal("zero-value lastFail surfaced as a success under a live context")
	}
	// A real prior failure is the better answer for the client and
	// must pass through unchanged.
	b := &backend{url: "http://x"}
	fail := attemptOutcome{b: b, err: fmt.Errorf("boom")}
	if out := canceledOutcome(ctx, fail); out.b != b || out.err == nil {
		t.Fatalf("real failure not passed through: %+v", out)
	}
	notRetried := attemptOutcome{b: b, status: http.StatusBadRequest}
	if out := canceledOutcome(ctx, notRetried); out.b != b {
		t.Fatalf("buffered response not passed through: %+v", out)
	}
}

// End-to-end pressure on the same path: client disconnects with a
// hedge in flight must never yield a zero-value outcome (and -race
// covers the bookkeeping).
func TestGatewayClientCancelNeverZeroOutcome(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	a.delay.Store(int64(200 * time.Millisecond))
	b.delay.Store(int64(200 * time.Millisecond))
	g, _ := newTestGateway(t, Options{HedgeDelay: 2 * time.Millisecond}, a, b)

	body := []byte(`{"input":[1,2,3,4]}`)
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			// Cancel once the primary and (usually) the hedge are in
			// flight, so two canceled results race ctx.Done().
			time.Sleep(time.Duration(4+i%8) * time.Millisecond)
			cancel()
		}()
		out := g.hedgedDo(ctx, "/v1/infer", "", "application/json", body, nil)
		cancel()
		if out.err == nil && out.b == nil {
			t.Fatal("hedgedDo returned a zero-value outcome for a canceled request")
		}
	}
}

// A backend response larger than maxBodyBytes must not be truncated and
// forwarded as if complete: the attempt fails and another backend
// serves the request.
func TestGatewayOversizeResponseFailsOver(t *testing.T) {
	huge := make([]byte, maxBodyBytes+1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {})
	over := func(w http.ResponseWriter, r *http.Request) { w.Write(huge) }
	mux.HandleFunc("POST /v1/infer", over)
	mux.HandleFunc("POST /v1/models/{name}/infer", over)
	oversize := httptest.NewServer(mux)
	t.Cleanup(oversize.Close)

	good := newStubBackend(t)
	// oversize is first: equal in-flight makes it the first pick.
	opt := Options{DisableHedge: true, ProbeInterval: time.Hour,
		Backends: []string{oversize.URL, good.ts.URL}}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, raw := doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.80s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(good.ts.URL)) {
		t.Fatalf("response not served by the good backend: %.80s", raw)
	}
	if len(raw) > maxBodyBytes {
		t.Fatalf("client received %d bytes — the truncated body leaked", len(raw))
	}
}

// Only 2xx outcomes feed the hedge-delay p95: a burst of fast 429s
// must not drag the window toward zero and fire hedges on every
// request while the fleet is admission-limited.
func TestGatewayHedgeP95IgnoresNon2xx(t *testing.T) {
	b := newStubBackend(t)
	g, ts := newTestGateway(t, Options{DisableHedge: true, ProbeInterval: time.Hour}, b)

	latCt := func() int {
		g.met.mu.Lock()
		defer g.met.mu.Unlock()
		return g.met.latCt
	}
	resp, _ := doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if latCt() != 1 {
		t.Fatalf("latency window holds %d samples after a 200, want 1", latCt())
	}

	b.status.Store(http.StatusTooManyRequests)
	resp, _ = doInfer(t, ts.URL, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 forwarded", resp.StatusCode)
	}
	if latCt() != 1 {
		t.Fatalf("latency window holds %d samples after a 429, want still 1", latCt())
	}
}
