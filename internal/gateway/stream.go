package gateway

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/stream"
)

// handleStream proxies one streaming session to exactly one backend.
//
// Sessions cannot be hedged or failed over the way one-shot inference
// can: by the time a backend failure is visible, part of the request
// body has been consumed and part of the event stream may have been
// delivered, so replaying the session on another backend would serve
// frames twice (or guess at where to resume). The gateway therefore
// pins the session to a single healthy backend and, on any mid-session
// failure — transport error, backend crash, eviction — hands control
// back to the client with a terminal retry event carrying a reconnect
// delay. The client resumes from its first unacked frame on a fresh
// session; the next admission routes around the dead backend.
//
// Placement still spreads sessions: the pinned backend holds an
// in-flight slot for the whole session, so least-loaded routing steers
// new sessions toward the quietest replica, and client affinity keeps
// a reconnecting client near its history when it identifies itself.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	// Full duplex from the first byte: every response on this route —
	// admission errors included — may be written while the client's
	// chunked request body is still open, and a lockstep client sends
	// nothing until it reads our response. Without this, writeHeader
	// blocks draining the body and the session deadlocks.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	if g.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "gateway closing")
		return
	}
	format := stream.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	clientKey := r.Header.Get(g.opt.ClientHeader)
	b := g.pick(clientKey, nil)
	if b == nil {
		writeRetryAfter(w, g.opt.ProbeInterval)
		writeError(w, http.StatusServiceUnavailable, "no live backends")
		return
	}
	g.met.streamSessions.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	// The relay must not outlive a gateway drain: BeginDrain closes
	// g.stop, which cancels the outbound request, errors the relay's
	// read, and turns into the client's terminal retry event — so a
	// graceful Shutdown never hangs on open sessions.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-g.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	// The inbound body is wrapped in NopCloser because the transport
	// closes the outbound request body when a round trip fails — and for
	// a server request body, Close drains up to 256KiB looking for the
	// terminal chunk so the connection can be reused. A lockstep client
	// sends nothing until it sees an event, and the retry event can only
	// be written after Do returns, so letting the transport drain here
	// deadlocks the session. The server closes the real body itself once
	// this handler returns, by which point the client has seen the retry
	// event and finished its side of the stream.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+r.URL.Path, io.NopCloser(r.Body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	if a := r.Header.Get("Accept"); a != "" {
		req.Header.Set("Accept", a)
	}
	if clientKey != "" {
		req.Header.Set(g.opt.ClientHeader, clientKey)
	}
	if q := r.URL.RawQuery; q != "" {
		req.URL.RawQuery = q
	}

	resp, err := g.client.Do(req)
	if err != nil {
		// The connect (or an early write) failed. The request body may
		// already be partially consumed, so this is not retryable here —
		// but nothing has reached the client either, so the retry event
		// is the whole response. (A drain-cancel lands here too; that is
		// not a backend health signal.)
		if !g.closed.Load() {
			b.observeFailure(g.opt.FailThreshold, err.Error())
		}
		if r.Context().Err() != nil {
			return // client gone
		}
		g.sendRetry(w, format, false, err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Admission rejections (429, 404, 503) arrive before any frame
		// was served; forward them verbatim — small, complete bodies.
		if resp.StatusCode == http.StatusServiceUnavailable {
			b.observeFailure(g.opt.FailThreshold, "stream refused with 503")
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		copyResponse(w, attemptOutcome{status: resp.StatusCode, header: resp.Header, body: body})
		return
	}

	// Committed: relay the event stream, flushing per read so each
	// frame's event reaches the client as the backend produces it.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if rc.Flush() != nil {
		return
	}
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client gone mid-relay
			}
			if rc.Flush() != nil {
				return
			}
		}
		if rerr == io.EOF {
			// Backend closed the stream cleanly (client EOF or terminal
			// drain event — either way the session is complete).
			b.observeSuccess()
			b.completed.Add(1)
			return
		}
		if rerr != nil {
			// Mid-session backend failure: the event boundary where the
			// stream broke is unknowable, so append a terminal retry
			// event and let the client resume from its own ack state.
			// A gateway drain lands here too (the outbound context is
			// canceled) — that is not the backend's fault.
			if !g.closed.Load() {
				b.observeFailure(g.opt.FailThreshold, rerr.Error())
			}
			if r.Context().Err() != nil {
				return
			}
			g.sendRetry(w, format, true, rerr.Error())
			return
		}
	}
}

// sendRetry emits the terminal retry event for a broken session. When
// headers haven't been sent yet it also commits the 200 + streaming
// Content-Type first (the retry event is in-band protocol, not an HTTP
// error). Binary clients get a wire retry frame; everyone else gets
// the JSON/SSE event.
func (g *Gateway) sendRetry(w http.ResponseWriter, format stream.Format, headersSent bool, detail string) {
	g.met.streamRetries.Add(1)
	if !headersSent {
		// Full duplex must be enabled before committing headers: without
		// it, writeHeader drains the unread request body first (to keep
		// the connection reusable), and a lockstep client sends nothing
		// until it sees this very event — a deadlock.
		_ = http.NewResponseController(w).EnableFullDuplex()
		w.Header().Set("Content-Type", format.ContentType())
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
	}
	enc := stream.NewEncoder(w, format)
	_ = enc.Encode(&stream.Event{
		Kind:         stream.KindRetry,
		Msg:          "backend lost mid-session: " + detail + "; resume from last acked frame",
		RetryAfterMs: int(g.opt.ProbeInterval / time.Millisecond),
	})
	_ = http.NewResponseController(w).Flush()
}
