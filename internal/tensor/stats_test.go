package tensor

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestVarianceStd(t *testing.T) {
	a := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if !almostEqual(a.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", a.Variance())
	}
	if !almostEqual(a.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", a.Std())
	}
	if New(0).Variance() != 0 {
		t.Fatal("Variance of empty should be 0")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if Percentile(v, 0) != 1 {
		t.Fatalf("p0 = %v", Percentile(v, 0))
	}
	if Percentile(v, 100) != 5 {
		t.Fatalf("p100 = %v", Percentile(v, 100))
	}
	if Percentile(v, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(v, 50))
	}
}

func TestPercentileInterpolation(t *testing.T) {
	v := []float64{0, 10}
	if got := Percentile(v, 25); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("p25 = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 50)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", v)
	}
}

func TestPercentilePanics(t *testing.T) {
	func() {
		defer expectPanic(t, "empty")
		Percentile(nil, 50)
	}()
	func() {
		defer expectPanic(t, "out of range")
		Percentile([]float64{1}, 101)
	}()
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm()
		}
		sorted := append([]float64(nil), v...)
		sort.Float64s(sorted)
		prev := sorted[0]
		for p := 0.0; p <= 100; p += 10 {
			q := Percentile(v, p)
			if q < prev-1e-12 || q < sorted[0]-1e-12 || q > sorted[n-1]+1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCountsAndEdges(t *testing.T) {
	vals := []float64{0.1, 0.1, 0.5, 0.9, 1.5, -0.5}
	counts, edges := Histogram(vals, 0, 1, 2)
	// Bins are half-open [edge, next): 0.5 lands in bin 1; -0.5 clamps
	// into bin 0 and 1.5 clamps into bin 1.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [3 3]", counts)
	}
	if len(edges) != 3 || edges[0] != 0 || edges[2] != 1 {
		t.Fatalf("edges = %v", edges)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(vals) {
		t.Fatalf("histogram loses values: %d != %d", total, len(vals))
	}
}

func TestHistogramPanics(t *testing.T) {
	func() {
		defer expectPanic(t, "zero bins")
		Histogram(nil, 0, 1, 0)
	}()
	func() {
		defer expectPanic(t, "empty range")
		Histogram(nil, 1, 1, 4)
	}()
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}
