package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64).
// Every source of randomness in this repository flows through an
// explicitly seeded RNG so that experiments are reproducible run to run.
type RNG struct {
	state uint64
	// cached second normal from Box-Muller
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r; the derived stream is
// decorrelated by mixing a fresh draw with a fixed odd constant.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15)
}

// FillNormal fills t with normal samples of the given mean and standard
// deviation.
func (r *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + std*r.Norm()
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = r.Range(lo, hi)
	}
}

// HeInit fills t with He-normal initialization for a layer with the
// given fan-in, the standard initialization for ReLU networks.
func (r *RNG) HeInit(t *Tensor, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	r.FillNormal(t, 0, std)
}

// XavierInit fills t with Glorot-uniform initialization.
func (r *RNG) XavierInit(t *Tensor, fanIn, fanOut int) {
	lim := math.Sqrt(6 / float64(fanIn+fanOut))
	r.FillUniform(t, -lim, lim)
}
