package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
	if x.Rank() != 3 || x.Size(1) != 3 {
		t.Fatalf("Rank/Size wrong: rank=%d size(1)=%d", x.Rank(), x.Size(1))
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(2, -1)
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	x.Set(42, 0, 1)
	if got := x.At(0, 1); got != 42 {
		t.Fatalf("Set/At = %v, want 42", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer expectPanic(t, "out of range")
	x.At(2, 0)
}

func TestAtWrongRankPanics(t *testing.T) {
	x := New(2, 2)
	defer expectPanic(t, "rank mismatch")
	x.At(1)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("Reshape At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Data[0] = 10
	if x.Data[0] != 10 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Shape[1] != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Shape[1])
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	x := New(4)
	defer expectPanic(t, "bad reshape")
	x.Reshape(3)
}

func TestFullOnesFillZero(t *testing.T) {
	x := Full(2.5, 3)
	if x.Sum() != 7.5 {
		t.Fatalf("Full sum = %v, want 7.5", x.Sum())
	}
	o := Ones(4)
	if o.Sum() != 4 {
		t.Fatalf("Ones sum = %v, want 4", o.Sum())
	}
	o.Fill(3)
	if o.Sum() != 12 {
		t.Fatalf("Fill sum = %v, want 12", o.Sum())
	}
	o.Zero()
	if o.Sum() != 0 {
		t.Fatalf("Zero sum = %v, want 0", o.Sum())
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AllClose(b, 1e-6) {
		t.Fatal("AllClose should pass within tol")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if a.Equal(c) || a.AllClose(c, 1) {
		t.Fatal("shape mismatch must not compare equal")
	}
}

func TestStringPreview(t *testing.T) {
	x := New(20)
	s := x.String()
	if s == "" {
		t.Fatal("String should produce non-empty output")
	}
}

// Property: Reshape preserves element order for arbitrary data.
func TestReshapeRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(append([]float64(nil), vals...), len(vals))
		y := x.Reshape(1, len(vals)).Reshape(len(vals))
		return y.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
