// Package tensor provides the dense float64 tensor type and the linear
// algebra, convolution-lowering, statistics, and deterministic random
// number primitives that every other subsystem in this repository is
// built on. It is deliberately small, allocation-conscious, and has no
// dependencies outside the standard library.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an
// empty tensor; use New or the constructors below to build usable ones.
// Data is exposed so hot loops (conv lowering, SNN stepping) can index
// directly without accessor overhead.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics on
// negative dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Size returns the extent of dimension i.
func (t *Tensor) Size(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// offset computes the flat index for the given multi-dimensional index.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx...)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape sharing the same data.
// One dimension may be -1, in which case it is inferred. It panics if
// the element counts do not match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: more than one -1 in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Equal reports whether t and o have the same shape and identical data.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and element-wise
// absolute differences no greater than tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description with shape and a preview of the
// first few elements; it is meant for debugging, not serialization.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if len(t.Data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}
