package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling
// operation over CHW-ordered feature maps.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the operation.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the operation.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate checks that the geometry is internally consistent.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel dims %+v", g)
	case g.Stride <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	case g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col lowers a CHW input into a matrix of shape
// [InC*KH*KW, OutH*OutW] so convolution becomes a matrix product with a
// [OutC, InC*KH*KW] weight matrix. Out must be preallocated with that
// shape (or nil, in which case it is allocated).
func Im2Col(in *Tensor, g ConvGeom, out *Tensor) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := oh * ow
	if out == nil {
		out = New(rows, cols)
	} else {
		if out.Shape[0] != rows || out.Shape[1] != cols {
			panic(fmt.Sprintf("tensor: Im2Col out shape %v, want [%d %d]", out.Shape, rows, cols))
		}
		out.Zero()
	}
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dst := out.Data[row*cols : (row+1)*cols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := chanOff + iy*g.InW
					dstRow := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[dstRow+ox] = in.Data[srcRow+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a [InC*KH*KW, OutH*OutW]
// column matrix back into a CHW tensor, accumulating where patches
// overlap. It is the gradient path of convolution with respect to the
// input. out must have length InC*InH*InW (or be nil to allocate).
func Col2Im(cols *Tensor, g ConvGeom, out *Tensor) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	nCols := oh * ow
	if out == nil {
		out = New(g.InC, g.InH, g.InW)
	} else {
		out.Zero()
	}
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				src := cols.Data[row*nCols : (row+1)*nCols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					dstRow := chanOff + iy*g.InW
					srcRow := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						out.Data[dstRow+ix] += src[srcRow+ox]
					}
				}
			}
		}
	}
	return out
}

// Conv2D performs a direct 2-D convolution of a CHW input with weights
// of shape [OutC, InC, KH, KW] and a bias of length OutC, returning a
// CHW output. It lowers via Im2Col internally; it exists for callers
// (conversion checks, SNN reference paths) that want a one-shot API.
func Conv2D(in, weight, bias *Tensor, g ConvGeom) *Tensor {
	outC := weight.Shape[0]
	cols := Im2Col(in, g, nil)
	w2 := weight.Reshape(outC, g.InC*g.KH*g.KW)
	prod := MatMul(w2, cols) // [OutC, OutH*OutW]
	oh, ow := g.OutH(), g.OutW()
	if bias != nil {
		for c := 0; c < outC; c++ {
			b := bias.Data[c]
			row := prod.Data[c*oh*ow : (c+1)*oh*ow]
			for i := range row {
				row[i] += b
			}
		}
	}
	return prod.Reshape(outC, oh, ow)
}
