package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Variance returns the population variance of all elements (0 for
// tensors with fewer than one element).
func (t *Tensor) Variance() float64 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 { return math.Sqrt(t.Variance()) }

// Percentile returns the p-th percentile (p in [0,100]) of the values,
// using linear interpolation between order statistics. It is the
// primitive behind data-based activation normalization, where the 99.9th
// percentile of observed activations is the robust layer maximum.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		panic("tensor: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("tensor: Percentile p=%v out of [0,100]", p))
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts values into nbins equal-width bins over [lo, hi].
// Values outside the range are clamped into the first/last bin. It
// returns the bin counts and the bin edges (nbins+1 values).
func Histogram(values []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("tensor: Histogram with non-positive bin count")
	}
	if hi <= lo {
		panic(fmt.Sprintf("tensor: Histogram with empty range [%v,%v]", lo, hi))
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, v := range values {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
