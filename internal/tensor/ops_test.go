package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b); !got.Equal(FromSlice([]float64{5, 7, 9}, 3)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice([]float64{3, 3, 3}, 3)) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice([]float64{4, 10, 18}, 3)) {
		t.Fatalf("Mul = %v", got)
	}
	// operands must be unchanged
	if a.Data[0] != 1 || b.Data[0] != 4 {
		t.Fatal("binary ops must not mutate operands")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	Add(New(2), New(3))
}

func TestAddInPlaceAXPY(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	AddInPlace(a, FromSlice([]float64{10, 20}, 2))
	if !a.Equal(FromSlice([]float64{11, 22}, 2)) {
		t.Fatalf("AddInPlace = %v", a)
	}
	AXPY(0.5, FromSlice([]float64{2, 4}, 2), a)
	if !a.Equal(FromSlice([]float64{12, 24}, 2)) {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestScaleAddScalarApply(t *testing.T) {
	a := FromSlice([]float64{1, -2}, 2)
	a.Scale(2).AddScalar(1)
	if !a.Equal(FromSlice([]float64{3, -3}, 2)) {
		t.Fatalf("Scale/AddScalar = %v", a)
	}
	a.Apply(math.Abs)
	if !a.Equal(FromSlice([]float64{3, 3}, 2)) {
		t.Fatalf("Apply = %v", a)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1}, 4)
	if a.Sum() != 7 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 1.75 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if a.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", a.ArgMax())
	}
	empty := New(0)
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestArgMaxFirstOccurrence(t *testing.T) {
	a := FromSlice([]float64{5, 5, 5}, 3)
	if a.ArgMax() != 0 {
		t.Fatalf("ArgMax ties should return first index, got %d", a.ArgMax())
	}
}

func TestEmptyReductionsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"Max":    func() { New(0).Max() },
		"Min":    func() { New(0).Min() },
		"ArgMax": func() { New(0).ArgMax() },
	} {
		func() {
			defer expectPanic(t, name)
			f()
		}()
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEqual(a.Norm2(), math.Sqrt(14), 1e-12) {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := New(5, 5)
	rng.FillNormal(a, 0, 1)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Data[i*5+i] = 1
	}
	if !MatMul(a, eye).AllClose(a, 1e-12) {
		t.Fatal("A×I != A")
	}
	if !MatMul(eye, a).AllClose(a, 1e-12) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := NewRNG(2)
	a, b := New(4, 7), New(7, 3)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	out := New(4, 3)
	out.Fill(99) // must be overwritten, not accumulated
	MatMulInto(a, b, out)
	if !out.AllClose(MatMul(a, b), 1e-12) {
		t.Fatal("MatMulInto differs from MatMul")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer expectPanic(t, "inner dim mismatch")
	MatMul(New(2, 3), New(4, 2))
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("Transpose shape = %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", at)
	}
	if !Transpose2D(at).Equal(a) {
		t.Fatal("double transpose != original")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{5, 6}, 2)
	got := MatVec(a, x)
	if !got.Equal(FromSlice([]float64{17, 39}, 2)) {
		t.Fatalf("MatVec = %v", got)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := NewRNG(3)
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := New(m, k), New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := New(m, k), New(k, n), New(k, n)
		r.FillNormal(a, 0, 1)
		r.FillNormal(b, 0, 1)
		r.FillNormal(c, 0, 1)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
