package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) over 1000 draws hit only %d values", len(seen))
	}
	defer expectPanic(t, "Intn(0)")
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(9)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(10)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	s := r.Split()
	// Parent continues after split without disturbing child determinism.
	r2 := NewRNG(11)
	s2 := r2.Split()
	for i := 0; i < 20; i++ {
		if s.Uint64() != s2.Uint64() {
			t.Fatal("Split streams not deterministic")
		}
	}
}

func TestHeInitScale(t *testing.T) {
	r := NewRNG(12)
	w := New(10000)
	fanIn := 128
	r.HeInit(w, fanIn)
	wantStd := math.Sqrt(2 / float64(fanIn))
	if math.Abs(w.Std()-wantStd)/wantStd > 0.1 {
		t.Fatalf("He init std = %v, want ~%v", w.Std(), wantStd)
	}
}

func TestXavierInitBounds(t *testing.T) {
	r := NewRNG(13)
	w := New(1000)
	r.XavierInit(w, 100, 100)
	lim := math.Sqrt(6.0 / 200.0)
	if w.Max() > lim || w.Min() < -lim {
		t.Fatalf("Xavier out of bounds: [%v,%v] limit %v", w.Min(), w.Max(), lim)
	}
}

func TestFillUniform(t *testing.T) {
	r := NewRNG(14)
	w := New(1000)
	r.FillUniform(w, -2, 3)
	if w.Min() < -2 || w.Max() >= 3 {
		t.Fatalf("uniform fill out of range: [%v,%v]", w.Min(), w.Max())
	}
	if math.Abs(w.Mean()-0.5) > 0.3 {
		t.Fatalf("uniform mean = %v, want ~0.5", w.Mean())
	}
}
