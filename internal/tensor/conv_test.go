package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvGeomOutDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-pad 3x3 should preserve dims, got %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if g2.OutH() != 2 || g2.OutW() != 2 {
		t.Fatalf("2x2/s2 pool dims = %dx%d, want 2x2", g2.OutH(), g2.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
	cols := Im2Col(in, g, nil)
	if cols.Shape[0] != 1 || cols.Shape[1] != 4 {
		t.Fatalf("cols shape = %v", cols.Shape)
	}
	if !cols.Reshape(1, 2, 2).AllClose(in, 0) {
		t.Fatalf("1x1 im2col should be identity, got %v", cols)
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1 -> 4 patches.
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	cols := Im2Col(in, g, nil)
	// Row 0 is kernel position (0,0): values at top-left of each patch.
	want0 := []float64{1, 2, 4, 5}
	for i, w := range want0 {
		if cols.Data[i] != w {
			t.Fatalf("row0[%d] = %v, want %v", i, cols.Data[i], w)
		}
	}
	// Row 3 is kernel position (1,1): bottom-right of each patch.
	want3 := []float64{5, 6, 8, 9}
	for i, w := range want3 {
		if cols.Data[3*4+i] != w {
			t.Fatalf("row3[%d] = %v, want %v", i, cols.Data[3*4+i], w)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	in := Ones(1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(in, g, nil)
	// Center kernel tap (1,1) always lands inside: row 4 all ones.
	for i := 0; i < 4; i++ {
		if cols.Data[4*4+i] != 1 {
			t.Fatalf("center tap should be 1, got %v", cols.Data[4*4+i])
		}
	}
	// Corner tap (0,0) at output (0,0) is padding: zero.
	if cols.Data[0] != 0 {
		t.Fatalf("padded tap should be 0, got %v", cols.Data[0])
	}
}

func TestIm2ColReuseBuffer(t *testing.T) {
	in := Ones(1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	buf := New(4, 4)
	buf.Fill(7) // stale garbage must be cleared
	cols := Im2Col(in, g, buf)
	if cols != buf {
		t.Fatal("Im2Col should reuse provided buffer")
	}
	for i, v := range cols.Data {
		if v != 1 {
			t.Fatalf("buffer not fully rewritten at %d: %v", i, v)
		}
	}
}

func TestConv2DMatchesManual(t *testing.T) {
	// Single 2x2 kernel summing a 2x2 region (all-ones kernel).
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := Ones(1, 1, 2, 2)
	b := FromSlice([]float64{0.5}, 1)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	out := Conv2D(in, w, b, g)
	want := FromSlice([]float64{12.5, 16.5, 24.5, 28.5}, 1, 2, 2)
	if !out.AllClose(want, 1e-12) {
		t.Fatalf("Conv2D = %v, want %v", out, want)
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels; kernel picks channel 1 only via weights.
	in := New(2, 2, 2)
	for i := 0; i < 4; i++ {
		in.Data[i] = 1    // channel 0
		in.Data[4+i] = 10 // channel 1
	}
	w := New(1, 2, 1, 1)
	w.Data[1] = 1 // weight on channel 1 only
	g := ConvGeom{InC: 2, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
	out := Conv2D(in, w, nil, g)
	for i, v := range out.Data {
		if v != 10 {
			t.Fatalf("out[%d] = %v, want 10", i, v)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for random x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the property
// backprop through convolution relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		g := ConvGeom{
			InC: 1 + r.Intn(3), InH: 3 + r.Intn(4), InW: 3 + r.Intn(4),
			KH: 1 + r.Intn(3), KW: 1 + r.Intn(3), Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate geometry
		}
		x := New(g.InC, g.InH, g.InW)
		r.FillNormal(x, 0, 1)
		rows, cols := g.InC*g.KH*g.KW, g.OutH()*g.OutW()
		y := New(rows, cols)
		r.FillNormal(y, 0, 1)
		lhs := Dot(Im2Col(x, g, nil), y)
		rhs := Dot(x, Col2Im(y, g, nil))
		return almostEqual(lhs, rhs, 1e-9*(1+lhs*lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIm2Col32x32(b *testing.B) {
	in := Ones(16, 32, 32)
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	buf := New(16*9, 32*32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(in, g, buf)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := NewRNG(1)
	x, y := New(64, 64), New(64, 64)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(y, 0, 1)
	out := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(x, y, out)
	}
}
