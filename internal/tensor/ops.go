package tensor

import (
	"fmt"
	"math"
)

// Add returns a new tensor t + o (element-wise). Shapes must match.
func Add(t, o *Tensor) *Tensor {
	mustSameShape("Add", t, o)
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] += v
	}
	return r
}

// Sub returns a new tensor t - o (element-wise). Shapes must match.
func Sub(t, o *Tensor) *Tensor {
	mustSameShape("Sub", t, o)
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] -= v
	}
	return r
}

// Mul returns a new tensor t * o (element-wise, Hadamard). Shapes must match.
func Mul(t, o *Tensor) *Tensor {
	mustSameShape("Mul", t, o)
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] *= v
	}
	return r
}

// AddInPlace accumulates o into t element-wise.
func AddInPlace(t, o *Tensor) {
	mustSameShape("AddInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AXPY computes t += alpha*o in place.
func AXPY(alpha float64, o, t *Tensor) {
	mustSameShape("AXPY", t, o)
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element of t by a, in place, and returns t.
func (t *Tensor) Scale(a float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= a
	}
	return t
}

// AddScalar adds a to every element of t, in place, and returns t.
func (t *Tensor) AddScalar(a float64) *Tensor {
	for i := range t.Data {
		t.Data[i] += a
	}
	return t
}

// Apply replaces every element x of t with f(x), in place, and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element (first occurrence);
// it panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MatMul returns the matrix product a×b for rank-2 tensors
// a[M,K] and b[K,N]. The inner loops are ordered i-k-j so the innermost
// loop walks both b and the output row contiguously, which matters on
// the single-core hosts this library targets.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulInto is MatMul writing into a preallocated out tensor of shape
// [M,N]; out is zeroed first. It avoids per-call allocation in training
// loops.
func MatMulInto(a, b, out *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v × %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	out.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// MatVec returns a×x for a[M,K] and x viewed as a length-K vector.
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatVec requires rank-2 matrix, got %v", a.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	if len(x.Data) != k {
		panic(fmt.Sprintf("tensor: MatVec length mismatch %v × %d", a.Shape, len(x.Data)))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
