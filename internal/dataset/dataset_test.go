package dataset

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

func TestMNISTLikeShapes(t *testing.T) {
	train, test := MNISTLike(Config{Train: 50, Test: 20, Seed: 1})
	if train.N() != 50 || test.N() != 20 {
		t.Fatalf("split sizes = %d/%d", train.N(), test.N())
	}
	s := train.SampleShape()
	if s[0] != 1 || s[1] != 28 || s[2] != 28 {
		t.Fatalf("sample shape = %v", s)
	}
	if train.Classes != 10 {
		t.Fatalf("classes = %d", train.Classes)
	}
}

func TestPixelRange(t *testing.T) {
	for name, gen := range map[string]func(Config) (*Dataset, *Dataset){
		"mnist": MNISTLike, "cifar10": CIFAR10Like, "cifar100": CIFAR100Like,
	} {
		train, _ := gen(Config{Train: 30, Test: 5, Seed: 2})
		if train.X.Min() < 0 || train.X.Max() > 1 {
			t.Fatalf("%s pixels out of [0,1]: [%v,%v]", name, train.X.Min(), train.X.Max())
		}
		if train.X.Max() == 0 {
			t.Fatalf("%s produced all-black images", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := CIFAR10Like(Config{Train: 20, Test: 5, Seed: 7})
	b, _ := CIFAR10Like(Config{Train: 20, Test: 5, Seed: 7})
	if !a.X.Equal(b.X) {
		t.Fatal("same seed produced different data")
	}
	c, _ := CIFAR10Like(Config{Train: 20, Test: 5, Seed: 8})
	if a.X.Equal(c.X) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassBalance(t *testing.T) {
	train, _ := MNISTLike(Config{Train: 100, Test: 10, Seed: 3})
	counts := map[int]int{}
	for _, l := range train.Labels {
		counts[l]++
	}
	for cls := 0; cls < 10; cls++ {
		if counts[cls] != 10 {
			t.Fatalf("class %d has %d samples, want 10", cls, counts[cls])
		}
	}
}

func TestCIFAR100ClassCount(t *testing.T) {
	train, _ := CIFAR100Like(Config{Train: 200, Test: 100, Seed: 4})
	if train.Classes != 100 {
		t.Fatalf("classes = %d", train.Classes)
	}
	seen := map[int]bool{}
	for _, l := range train.Labels {
		if l < 0 || l >= 100 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) != 100 {
		t.Fatalf("only %d distinct labels in 200 samples", len(seen))
	}
}

func TestSampleView(t *testing.T) {
	train, _ := MNISTLike(Config{Train: 10, Test: 2, Seed: 5})
	s := train.Sample(3)
	if s.Rank() != 3 || s.Shape[0] != 1 {
		t.Fatalf("Sample shape = %v", s.Shape)
	}
	// view shares data
	s.Data[0] = 0.42
	if train.X.Data[3*28*28] != 0.42 {
		t.Fatal("Sample must be a view, not a copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range sample")
		}
	}()
	train.Sample(10)
}

func TestSubsetBounds(t *testing.T) {
	train, _ := MNISTLike(Config{Train: 10, Test: 2, Seed: 6})
	sub := train.Subset(2, 5)
	if sub.N() != 3 {
		t.Fatalf("Subset size = %d", sub.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad bounds")
		}
	}()
	train.Subset(5, 2)
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Nearest-centroid classification on raw pixels should beat chance
	// by a wide margin if the classes are visually distinct.
	train, test := CIFAR10Like(Config{Train: 300, Test: 100, Seed: 9})
	d := 3 * 32 * 32
	centroids := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range centroids {
		centroids[i] = make([]float64, d)
	}
	for i := 0; i < train.N(); i++ {
		c := train.Labels[i]
		counts[c]++
		for j := 0; j < d; j++ {
			centroids[c][j] += train.X.Data[i*d+j]
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	hit := 0
	for i := 0; i < test.N(); i++ {
		best, bi := -1.0, -1
		for c := range centroids {
			s := 0.0
			for j := 0; j < d; j++ {
				diff := test.X.Data[i*d+j] - centroids[c][j]
				s -= diff * diff
			}
			if bi < 0 || s > best {
				best, bi = s, c
			}
		}
		if bi == test.Labels[i] {
			hit++
		}
	}
	acc := float64(hit) / float64(test.N())
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy %.2f < 0.5; classes not distinguishable", acc)
	}
}

func TestMNISTLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	train, test := MNISTLike(Config{Train: 400, Test: 100, Seed: 10})
	rng := tensor.NewRNG(11)
	net := dnn.NewNetwork("probe", 1, 28, 28).Add(
		dnn.NewFlatten("f"),
		dnn.NewDense("fc1", 28*28, 32, rng),
		dnn.NewReLU("r1"),
		dnn.NewDense("fc2", 32, 10, rng),
	)
	dnn.Train(net, train.X, train.Labels, dnn.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: dnn.NewAdam(2e-3, 0), RNG: tensor.NewRNG(12)})
	acc := dnn.Evaluate(net, test.X, test.Labels, 50)
	if acc < 0.6 {
		t.Fatalf("MNIST-like not learnable: linear-ish probe acc %.2f", acc)
	}
}
