// Package dataset provides the synthetic image classification datasets
// used by the experiments. The paper evaluates on MNIST, CIFAR-10, and
// CIFAR-100; this environment has no dataset files or network access, so
// deterministic procedural generators produce learnable stand-ins with
// identical tensor shapes and class counts (see DESIGN.md, Substitutions).
package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Dataset is a labelled image set. X has shape [N, C, H, W] with pixel
// values in [0, 1]; Labels holds N class indices in [0, Classes).
type Dataset struct {
	Name    string
	X       *tensor.Tensor
	Labels  []int
	Classes int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Labels) }

// SampleShape returns the per-sample shape [C, H, W].
func (d *Dataset) SampleShape() []int { return d.X.Shape[1:] }

// Sample returns a view of sample i with shape [C, H, W].
func (d *Dataset) Sample(i int) *tensor.Tensor {
	if i < 0 || i >= d.N() {
		panic(fmt.Sprintf("dataset: sample index %d out of range [0,%d)", i, d.N()))
	}
	shape := d.SampleShape()
	sz := 1
	for _, s := range shape {
		sz *= s
	}
	return tensor.FromSlice(d.X.Data[i*sz:(i+1)*sz], shape...)
}

// Subset returns a dataset holding samples [lo, hi) of d, sharing data.
func (d *Dataset) Subset(lo, hi int) *Dataset {
	if lo < 0 || hi > d.N() || lo > hi {
		panic(fmt.Sprintf("dataset: bad subset [%d,%d) of %d", lo, hi, d.N()))
	}
	shape := d.SampleShape()
	sz := 1
	for _, s := range shape {
		sz *= s
	}
	return &Dataset{
		Name:    d.Name,
		X:       tensor.FromSlice(d.X.Data[lo*sz:hi*sz], append([]int{hi - lo}, shape...)...),
		Labels:  d.Labels[lo:hi],
		Classes: d.Classes,
	}
}

// Split partitions d into train and test sets, putting the first
// nTrain samples in train and the rest in test. Generators already
// interleave classes, so a prefix split is class balanced.
func (d *Dataset) Split(nTrain int) (train, test *Dataset) {
	return d.Subset(0, nTrain), d.Subset(nTrain, d.N())
}

// Config sizes a generated dataset.
type Config struct {
	// Train and Test are the number of samples in each split.
	Train, Test int
	// Seed drives all procedural randomness.
	Seed uint64
}

// image is a mutable CHW pixel buffer the generators draw into.
type image struct {
	c, h, w int
	px      []float64
}

func newImage(c, h, w int) *image {
	return &image{c: c, h: h, w: w, px: make([]float64, c*h*w)}
}

// set writes value v to channel ch at (x, y), clamped into [0,1] and
// ignored when out of bounds.
func (im *image) set(ch, x, y int, v float64) {
	if x < 0 || x >= im.w || y < 0 || y >= im.h || ch < 0 || ch >= im.c {
		return
	}
	im.px[(ch*im.h+y)*im.w+x] = tensor.Clamp(v, 0, 1)
}

// add accumulates v into channel ch at (x, y) with clamping.
func (im *image) add(ch, x, y int, v float64) {
	if x < 0 || x >= im.w || y < 0 || y >= im.h || ch < 0 || ch >= im.c {
		return
	}
	i := (ch*im.h+y)*im.w + x
	im.px[i] = tensor.Clamp(im.px[i]+v, 0, 1)
}

// get reads channel ch at (x, y); out of bounds reads return 0.
func (im *image) get(ch, x, y int) float64 {
	if x < 0 || x >= im.w || y < 0 || y >= im.h || ch < 0 || ch >= im.c {
		return 0
	}
	return im.px[(ch*im.h+y)*im.w+x]
}

// addNoise perturbs every pixel with clamped Gaussian noise.
func (im *image) addNoise(rng *tensor.RNG, std float64) {
	for i, v := range im.px {
		im.px[i] = tensor.Clamp(v+std*rng.Norm(), 0, 1)
	}
}

// assemble packs per-sample images into a Dataset, interleaving classes
// so prefix splits stay balanced.
func assemble(name string, classes, c, h, w, n int, gen func(cls int, rng *tensor.RNG) *image, rng *tensor.RNG) *Dataset {
	x := tensor.New(n, c, h, w)
	labels := make([]int, n)
	sz := c * h * w
	for i := 0; i < n; i++ {
		cls := i % classes
		im := gen(cls, rng)
		copy(x.Data[i*sz:(i+1)*sz], im.px)
		labels[i] = cls
	}
	return &Dataset{Name: name, X: x, Labels: labels, Classes: classes}
}
