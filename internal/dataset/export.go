package dataset

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/tensor"
)

// Inspection/export helpers: the synthetic generators are easiest to
// debug by looking at the images. WritePGM/WritePPM emit standard
// netpbm files any viewer opens; ASCII renders a sample in a terminal.

// WritePGM writes a single-channel [1, H, W] (or [H, W]) sample as a
// binary PGM image with 8-bit depth.
func WritePGM(w io.Writer, sample *tensor.Tensor) error {
	var h, wd int
	switch sample.Rank() {
	case 2:
		h, wd = sample.Shape[0], sample.Shape[1]
	case 3:
		if sample.Shape[0] != 1 {
			return fmt.Errorf("dataset: WritePGM needs 1 channel, got %d", sample.Shape[0])
		}
		h, wd = sample.Shape[1], sample.Shape[2]
	default:
		return fmt.Errorf("dataset: WritePGM needs rank 2 or 3, got %v", sample.Shape)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, h*wd)
	for i, v := range sample.Data {
		buf[i] = byte(tensor.Clamp(v, 0, 1) * 255)
	}
	_, err := w.Write(buf)
	return err
}

// WritePPM writes a [3, H, W] sample as a binary PPM image.
func WritePPM(w io.Writer, sample *tensor.Tensor) error {
	if sample.Rank() != 3 || sample.Shape[0] != 3 {
		return fmt.Errorf("dataset: WritePPM needs [3,H,W], got %v", sample.Shape)
	}
	h, wd := sample.Shape[1], sample.Shape[2]
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, h*wd*3)
	plane := h * wd
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			p := y*wd + x
			for c := 0; c < 3; c++ {
				buf[p*3+c] = byte(tensor.Clamp(sample.Data[c*plane+p], 0, 1) * 255)
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

// ASCII renders a sample as terminal art (channels averaged), one rune
// per pixel from dark to bright.
func ASCII(sample *tensor.Tensor) string {
	if sample.Rank() != 3 {
		return fmt.Sprintf("<%v>", sample.Shape)
	}
	c, h, w := sample.Shape[0], sample.Shape[1], sample.Shape[2]
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.0
			for ch := 0; ch < c; ch++ {
				v += sample.Data[ch*plane+y*w+x]
			}
			v /= float64(c)
			idx := int(tensor.Clamp(v, 0, 0.999) * float64(len(glyphs)))
			b.WriteRune(glyphs[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}
