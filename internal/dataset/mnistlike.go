package dataset

import (
	"math"

	"repro/internal/tensor"
)

// MNISTLike generates a 28×28 grayscale 10-class digit-glyph dataset.
// Each class is a fixed set of strokes (approximating the digit shapes)
// rendered with per-sample scale/rotation/translation jitter, stroke
// thickness variation and pixel noise, so the task is non-trivial but
// cleanly learnable — the property the paper's MNIST experiments rely on.
func MNISTLike(cfg Config) (train, test *Dataset) {
	rng := tensor.NewRNG(cfg.Seed ^ 0x6d6e697374) // "mnist"
	total := cfg.Train + cfg.Test
	all := assemble("mnist-like", 10, 1, 28, 28, total, drawDigit, rng)
	return all.Split(cfg.Train)
}

// digitStroke is one stroke of a glyph: either a line segment or an
// elliptical arc in normalized [0,1]² glyph coordinates.
type digitStroke struct {
	arc            bool
	x0, y0, x1, y1 float64 // line endpoints
	cx, cy, rx, ry float64 // arc centre and radii
	a0, a1         float64 // arc angle range (radians)
}

func line(x0, y0, x1, y1 float64) digitStroke { return digitStroke{x0: x0, y0: y0, x1: x1, y1: y1} }
func arc(cx, cy, rx, ry, a0, a1 float64) digitStroke {
	return digitStroke{arc: true, cx: cx, cy: cy, rx: rx, ry: ry, a0: a0, a1: a1}
}

// digitGlyphs approximates the ten digit shapes with strokes.
var digitGlyphs = [10][]digitStroke{
	0: {arc(0.5, 0.5, 0.22, 0.32, 0, 2*math.Pi)},
	1: {line(0.5, 0.2, 0.5, 0.8), line(0.38, 0.32, 0.5, 0.2)},
	2: {arc(0.5, 0.35, 0.2, 0.15, math.Pi, 2.2*math.Pi), line(0.66, 0.42, 0.34, 0.78), line(0.34, 0.78, 0.7, 0.78)},
	3: {arc(0.48, 0.35, 0.18, 0.15, math.Pi*1.1, math.Pi*2.6), arc(0.48, 0.64, 0.19, 0.16, math.Pi*1.45, math.Pi*2.9)},
	4: {line(0.62, 0.2, 0.62, 0.8), line(0.62, 0.2, 0.34, 0.58), line(0.34, 0.58, 0.72, 0.58)},
	5: {line(0.66, 0.22, 0.38, 0.22), line(0.38, 0.22, 0.37, 0.48), arc(0.5, 0.62, 0.17, 0.17, math.Pi*1.3, math.Pi*2.8)},
	6: {arc(0.5, 0.62, 0.18, 0.17, 0, 2*math.Pi), arc(0.55, 0.45, 0.22, 0.25, math.Pi*0.9, math.Pi*1.5)},
	7: {line(0.33, 0.22, 0.68, 0.22), line(0.68, 0.22, 0.45, 0.8)},
	8: {arc(0.5, 0.36, 0.16, 0.14, 0, 2*math.Pi), arc(0.5, 0.65, 0.19, 0.16, 0, 2*math.Pi)},
	9: {arc(0.52, 0.38, 0.17, 0.16, 0, 2*math.Pi), line(0.68, 0.4, 0.6, 0.8)},
}

// drawDigit renders one jittered sample of the given digit class.
func drawDigit(cls int, rng *tensor.RNG) *image {
	im := newImage(1, 28, 28)
	tf := affine{
		scale: rng.Range(0.85, 1.15),
		rot:   rng.Range(-0.18, 0.18),
		dx:    rng.Range(-0.07, 0.07),
		dy:    rng.Range(-0.07, 0.07),
	}
	thick := rng.Range(0.035, 0.055)
	inten := rng.Range(0.85, 1.0)
	for _, s := range digitGlyphs[cls] {
		if s.arc {
			// transform the arc by sampling points and stamping each
			steps := int(math.Abs(s.a1-s.a0)*math.Max(s.rx, s.ry)*56) + 6
			for i := 0; i <= steps; i++ {
				t := float64(i) / float64(steps)
				a := s.a0 + (s.a1-s.a0)*t
				x, y := tf.apply(s.cx+s.rx*math.Cos(a), s.cy+s.ry*math.Sin(a))
				im.stampDisc(0, x, y, thick, inten)
			}
			continue
		}
		x0, y0 := tf.apply(s.x0, s.y0)
		x1, y1 := tf.apply(s.x1, s.y1)
		im.strokeLine(0, x0, y0, x1, y1, thick, inten)
	}
	im.addNoise(rng, 0.04)
	return im
}
