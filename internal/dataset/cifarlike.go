package dataset

import (
	"math"

	"repro/internal/tensor"
)

// CIFAR10Like generates a 32×32 RGB 10-class dataset: each class is a
// distinct texture/shape family rendered in a class-specific colour with
// per-sample jitter in frequency, phase, position, hue and noise.
func CIFAR10Like(cfg Config) (train, test *Dataset) {
	rng := tensor.NewRNG(cfg.Seed ^ 0x63696610)
	total := cfg.Train + cfg.Test
	all := assemble("cifar10-like", 10, 3, 32, 32, total, func(cls int, r *tensor.RNG) *image {
		return drawCIFAR(cls%len(patternFns), cls%len(palettes), r)
	}, rng)
	return all.Split(cfg.Train)
}

// CIFAR100Like generates a 32×32 RGB 100-class dataset as the cross
// product of the 10 pattern families and 10 colour palettes, mirroring
// CIFAR-100's "same image statistics, ten times the classes" relation to
// CIFAR-10.
func CIFAR100Like(cfg Config) (train, test *Dataset) {
	rng := tensor.NewRNG(cfg.Seed ^ 0x636966100)
	total := cfg.Train + cfg.Test
	all := assemble("cifar100-like", 100, 3, 32, 32, total, func(cls int, r *tensor.RNG) *image {
		return drawCIFAR(cls/10, cls%10, r)
	}, rng)
	return all.Split(cfg.Train)
}

// palettes are base RGB colours; per-sample jitter perturbs each channel.
var palettes = [10][3]float64{
	{0.9, 0.2, 0.2}, {0.2, 0.9, 0.2}, {0.25, 0.35, 0.95}, {0.9, 0.85, 0.2},
	{0.85, 0.25, 0.85}, {0.2, 0.85, 0.85}, {0.95, 0.55, 0.15}, {0.6, 0.3, 0.85},
	{0.9, 0.9, 0.9}, {0.45, 0.7, 0.35},
}

// patternFns render the ten texture/shape families into a 3-channel
// image given a jitter RNG; colour is applied afterwards.
var patternFns = []func(im *image, r *tensor.RNG){
	patternHStripes, patternVStripes, patternDiag, patternChecker, patternDisk,
	patternRing, patternBox, patternRadial, patternBlobs, patternCross,
}

// drawCIFAR renders one sample of pattern p in palette c.
func drawCIFAR(p, c int, rng *tensor.RNG) *image {
	im := newImage(3, 32, 32)
	// render pattern into a luminance buffer (channel 0)
	patternFns[p](im, rng)
	// colourize: spread channel-0 luminance into RGB by the palette
	base := palettes[c]
	jr, jg, jb := rng.Range(0.85, 1.15), rng.Range(0.85, 1.15), rng.Range(0.85, 1.15)
	bg := rng.Range(0.05, 0.15)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			l := im.get(0, x, y)
			im.set(0, x, y, tensor.Clamp(bg+l*base[0]*jr, 0, 1))
			im.set(1, x, y, tensor.Clamp(bg+l*base[1]*jg, 0, 1))
			im.set(2, x, y, tensor.Clamp(bg+l*base[2]*jb, 0, 1))
		}
	}
	im.addNoise(rng, 0.05)
	return im
}

func patternHStripes(im *image, r *tensor.RNG) {
	freq := r.Range(2.5, 4.5)
	phase := r.Range(0, 2*math.Pi)
	for y := 0; y < im.h; y++ {
		v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*float64(y)/float64(im.h)+phase)
		for x := 0; x < im.w; x++ {
			im.set(0, x, y, v)
		}
	}
}

func patternVStripes(im *image, r *tensor.RNG) {
	freq := r.Range(2.5, 4.5)
	phase := r.Range(0, 2*math.Pi)
	for x := 0; x < im.w; x++ {
		v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*float64(x)/float64(im.w)+phase)
		for y := 0; y < im.h; y++ {
			im.set(0, x, y, v)
		}
	}
}

func patternDiag(im *image, r *tensor.RNG) {
	freq := r.Range(2.5, 4.5)
	phase := r.Range(0, 2*math.Pi)
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			u := float64(x+y) / float64(im.w+im.h)
			im.set(0, x, y, 0.5+0.5*math.Sin(2*math.Pi*freq*2*u+phase))
		}
	}
}

func patternChecker(im *image, r *tensor.RNG) {
	cell := 3 + r.Intn(4)
	ox, oy := r.Intn(cell), r.Intn(cell)
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			if ((x+ox)/cell+(y+oy)/cell)%2 == 0 {
				im.set(0, x, y, 0.95)
			} else {
				im.set(0, x, y, 0.1)
			}
		}
	}
}

func patternDisk(im *image, r *tensor.RNG) {
	cx, cy := r.Range(0.35, 0.65), r.Range(0.35, 0.65)
	rad := r.Range(0.2, 0.32)
	im.stampDisc(0, cx, cy, rad, 1)
}

func patternRing(im *image, r *tensor.RNG) {
	cx, cy := r.Range(0.4, 0.6), r.Range(0.4, 0.6)
	rad := r.Range(0.22, 0.3)
	im.strokeArc(0, cx, cy, rad, rad, 0, 2*math.Pi, 0.05, 1)
}

func patternBox(im *image, r *tensor.RNG) {
	x0, y0 := r.Range(0.15, 0.3), r.Range(0.15, 0.3)
	x1, y1 := r.Range(0.7, 0.85), r.Range(0.7, 0.85)
	th := r.Range(0.03, 0.05)
	im.strokeLine(0, x0, y0, x1, y0, th, 1)
	im.strokeLine(0, x1, y0, x1, y1, th, 1)
	im.strokeLine(0, x1, y1, x0, y1, th, 1)
	im.strokeLine(0, x0, y1, x0, y0, th, 1)
}

func patternRadial(im *image, r *tensor.RNG) {
	cx, cy := r.Range(0.4, 0.6), r.Range(0.4, 0.6)
	scale := r.Range(0.9, 1.4)
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			dx := float64(x)/float64(im.w) - cx
			dy := float64(y)/float64(im.h) - cy
			d := math.Sqrt(dx*dx+dy*dy) * scale
			im.set(0, x, y, tensor.Clamp(1-1.6*d, 0, 1))
		}
	}
}

func patternBlobs(im *image, r *tensor.RNG) {
	n := 4 + r.Intn(3)
	for i := 0; i < n; i++ {
		im.stampDisc(0, r.Range(0.1, 0.9), r.Range(0.1, 0.9), r.Range(0.06, 0.12), 1)
	}
}

func patternCross(im *image, r *tensor.RNG) {
	cx, cy := r.Range(0.4, 0.6), r.Range(0.4, 0.6)
	arm := r.Range(0.25, 0.35)
	th := r.Range(0.05, 0.08)
	im.strokeLine(0, cx-arm, cy, cx+arm, cy, th, 1)
	im.strokeLine(0, cx, cy-arm, cx, cy+arm, th, 1)
}
