package dataset

import "repro/internal/tensor"

// Augmenter mutates one flattened CHW sample in place; the trainer
// applies it to each sample after copying it into the batch, so the
// stored dataset stays pristine.
type Augmenter func(sample []float64, rng *tensor.RNG)

// FlipShift returns the standard light image augmentation for CIFAR-
// style training: random horizontal flip plus a uniform shift of up to
// maxShift pixels in each direction (zero padding).
func FlipShift(c, h, w, maxShift int) Augmenter {
	return func(sample []float64, rng *tensor.RNG) {
		if len(sample) != c*h*w {
			panic("dataset: augmenter sample length mismatch")
		}
		if rng.Intn(2) == 0 {
			flipH(sample, c, h, w)
		}
		if maxShift > 0 {
			dx := rng.Intn(2*maxShift+1) - maxShift
			dy := rng.Intn(2*maxShift+1) - maxShift
			if dx != 0 || dy != 0 {
				shift(sample, c, h, w, dx, dy)
			}
		}
	}
}

// flipH mirrors every channel horizontally in place.
func flipH(s []float64, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			row := s[(ch*h+y)*w : (ch*h+y+1)*w]
			for x := 0; x < w/2; x++ {
				row[x], row[w-1-x] = row[w-1-x], row[x]
			}
		}
	}
}

// shift translates every channel by (dx, dy) with zero fill.
func shift(s []float64, c, h, w, dx, dy int) {
	src := append([]float64(nil), s...)
	for i := range s {
		s[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				s[(ch*h+y)*w+x] = src[(ch*h+sy)*w+sx]
			}
		}
	}
}
