package dataset

import "math"

// Drawing primitives used by the procedural generators. Coordinates are
// normalized to [0, 1] within the image; stroke rendering stamps a soft
// disc at points sampled densely along the path so glyphs stay connected
// at any resolution.

// stampDisc deposits intensity into channel ch around (cx, cy) in
// normalized coordinates, with radius r (normalized) and peak intensity v.
func (im *image) stampDisc(ch int, cx, cy, r, v float64) {
	px, py := cx*float64(im.w), cy*float64(im.h)
	pr := r * float64(im.w)
	if pr < 0.5 {
		pr = 0.5
	}
	x0, x1 := int(px-pr-1), int(px+pr+1)
	y0, y1 := int(py-pr-1), int(py+pr+1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)+0.5-px, float64(y)+0.5-py
			d := math.Sqrt(dx*dx+dy*dy) / pr
			if d < 1 {
				im.add(ch, x, y, v*(1-d*d)) // smooth falloff
			}
		}
	}
}

// strokeLine draws a straight stroke from (x0,y0) to (x1,y1) in
// normalized coordinates with the given thickness and intensity.
func (im *image) strokeLine(ch int, x0, y0, x1, y1, thick, v float64) {
	steps := int(math.Hypot((x1-x0)*float64(im.w), (y1-y0)*float64(im.h))*2) + 2
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		im.stampDisc(ch, x0+(x1-x0)*t, y0+(y1-y0)*t, thick, v)
	}
}

// strokeArc draws an elliptical arc centred at (cx,cy) with radii
// (rx,ry), from angle a0 to a1 (radians), in normalized coordinates.
func (im *image) strokeArc(ch int, cx, cy, rx, ry, a0, a1, thick, v float64) {
	arcLen := math.Abs(a1-a0) * math.Max(rx, ry) * float64(im.w)
	steps := int(arcLen*2) + 4
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		a := a0 + (a1-a0)*t
		im.stampDisc(ch, cx+rx*math.Cos(a), cy+ry*math.Sin(a), thick, v)
	}
}

// fillRect fills an axis-aligned rectangle given in normalized
// coordinates with intensity v on channel ch.
func (im *image) fillRect(ch int, x0, y0, x1, y1, v float64) {
	ix0, ix1 := int(x0*float64(im.w)), int(x1*float64(im.w))
	iy0, iy1 := int(y0*float64(im.h)), int(y1*float64(im.h))
	for y := iy0; y < iy1; y++ {
		for x := ix0; x < ix1; x++ {
			im.set(ch, x, y, v)
		}
	}
}

// affine describes the per-sample jitter applied to glyph control
// points: scale about the centre, rotation, then translation.
type affine struct {
	scale, rot, dx, dy float64
}

// apply transforms a normalized point.
func (a affine) apply(x, y float64) (float64, float64) {
	x, y = x-0.5, y-0.5
	c, s := math.Cos(a.rot), math.Sin(a.rot)
	xr := a.scale * (c*x - s*y)
	yr := a.scale * (s*x + c*y)
	return xr + 0.5 + a.dx, yr + 0.5 + a.dy
}
