package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestFlipHExact(t *testing.T) {
	s := []float64{
		1, 2, 3,
		4, 5, 6,
	}
	flipH(s, 1, 2, 3)
	want := []float64{3, 2, 1, 6, 5, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("flip[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestShiftExact(t *testing.T) {
	s := []float64{
		1, 2,
		3, 4,
	}
	shift(s, 1, 2, 2, 1, 0) // one pixel right
	want := []float64{0, 1, 0, 3}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("shift[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestShiftMultiChannelIndependent(t *testing.T) {
	s := []float64{
		1, 0, 0, 0, // channel 0
		0, 0, 0, 2, // channel 1
	}
	shift(s, 2, 2, 2, 0, 1) // one pixel down
	if s[2] != 1 {          // channel 0 (0,0) -> (1,0)
		t.Fatalf("channel 0 shift wrong: %v", s[:4])
	}
	// channel 1 held its only value at (1,1), which falls off the bottom
	// edge under a downward shift: the channel must now be empty
	for i, v := range s[4:] {
		if v != 0 {
			t.Fatalf("channel 1 pixel %d = %v after edge shift, want 0", i, v)
		}
	}
}

func TestFlipShiftPreservesMass(t *testing.T) {
	// flip alone permutes pixels: mass must be identical
	rng := tensor.NewRNG(1)
	aug := FlipShift(3, 8, 8, 0)
	s := make([]float64, 3*8*8)
	for i := range s {
		s[i] = rng.Float64()
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	aug(s, rng)
	got := 0.0
	for _, v := range s {
		got += v
	}
	if diff := sum - got; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("flip-only augmentation changed mass: %v -> %v", sum, got)
	}
}

func TestFlipShiftPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FlipShift(1, 4, 4, 1)(make([]float64, 5), tensor.NewRNG(1))
}

func TestAugmentedTrainingStillLearns(t *testing.T) {
	// augmentation must not destroy class structure: classes here are
	// horizontal-position invariant brightness levels
	train, _ := MNISTLike(Config{Train: 100, Test: 10, Seed: 11})
	aug := FlipShift(1, 28, 28, 2)
	rng := tensor.NewRNG(12)
	before := train.X.Clone()
	// apply to a copy of each sample; original must be untouched by the
	// trainer contract (augmentation happens on the batch copy)
	s := make([]float64, 28*28)
	copy(s, train.X.Data[:28*28])
	aug(s, rng)
	if !train.X.Equal(before) {
		t.Fatal("augmenting a copy mutated the dataset")
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	img := tensor.New(1, 2, 3)
	img.Data[0] = 1.0
	if err := WritePGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	if out[len(out)-6] != 255 {
		t.Fatalf("first pixel should be 255, got %d", out[len(out)-6])
	}
	if err := WritePGM(&buf, tensor.New(3, 2, 2)); err == nil {
		t.Fatal("3-channel PGM accepted")
	}
}

func TestWritePPM(t *testing.T) {
	var buf bytes.Buffer
	img := tensor.New(3, 2, 2)
	img.Set(1, 0, 0, 0) // red at (0,0)
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n2 2\n255\n")) {
		t.Fatalf("bad PPM header: %q", out[:12])
	}
	px := out[len(out)-12:] // 4 pixels × 3 bytes
	if px[0] != 255 || px[1] != 0 || px[2] != 0 {
		t.Fatalf("pixel (0,0) = %v, want pure red", px[:3])
	}
	if err := WritePPM(&buf, tensor.New(1, 2, 2)); err == nil {
		t.Fatal("1-channel PPM accepted")
	}
}

func TestASCIIRendering(t *testing.T) {
	img := tensor.New(1, 2, 2)
	img.Data[0] = 1
	art := ASCII(img)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 || len([]rune(lines[0])) != 2 {
		t.Fatalf("ASCII shape wrong:\n%s", art)
	}
	if lines[0][0] == ' ' {
		t.Fatal("bright pixel rendered as blank")
	}
	if lines[1][1] != ' ' {
		t.Fatal("dark pixel should render blank")
	}
}
