// Package testutil provides shared, lazily trained fixtures for tests
// that need a realistic converted network without paying the training
// cost in every package: a small LeNet on a synthetic 16×16 ten-class
// task, trained once per process and converted once.
package testutil

import (
	"sync"

	"repro/internal/convert"
	"repro/internal/dnn"
	"repro/internal/tensor"
)

// Fixture is a trained and converted network with its data.
type Fixture struct {
	DNN    *dnn.Network
	Conv   *convert.Result
	X      *tensor.Tensor // [300, 1, 16, 16]
	Labels []int
	// DNNAccuracy is the source network's accuracy on X.
	DNNAccuracy float64
}

var (
	once sync.Once
	fx   *Fixture
)

// TrainedLeNet16 returns the shared fixture, training it on first use.
func TrainedLeNet16() *Fixture {
	once.Do(func() {
		rng := tensor.NewRNG(21)
		cfg := dnn.ArchConfig{InC: 1, InH: 16, InW: 16, Classes: 10, FCWidth: 32, BatchNorm: true, Pool: dnn.AvgPool}
		net := dnn.BuildLeNet(cfg, rng)
		n := 300
		x := tensor.New(n, 1, 16, 16)
		labels := make([]int, n)
		r := tensor.NewRNG(22)
		for i := 0; i < n; i++ {
			cls := i % 10
			labels[i] = cls
			cx, cy := 2+(cls%5)*3, 2+(cls/5)*8
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					x.Data[i*256+(cy+dy)*16+cx+dx] = tensor.Clamp(0.8+0.2*r.Norm(), 0, 1)
				}
			}
			for j := 0; j < 256; j++ {
				x.Data[i*256+j] = tensor.Clamp(x.Data[i*256+j]+0.05*r.Norm(), 0, 1)
			}
		}
		dnn.Train(net, x, labels, dnn.TrainConfig{
			Epochs: 3, BatchSize: 25, Optimizer: dnn.NewAdam(2e-3, 0), RNG: tensor.NewRNG(23)})
		res, err := convert.Convert(net, convert.Options{Calibration: x})
		if err != nil {
			panic(err)
		}
		fx = &Fixture{
			DNN: net, Conv: res, X: x, Labels: labels,
			DNNAccuracy: dnn.Evaluate(net, x, labels, 64),
		}
	})
	return fx
}
