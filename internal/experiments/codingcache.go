package experiments

import (
	"fmt"
	"sync"

	"repro/internal/coding"
)

// The baseline coding simulations are the dominant cost of the
// experiment suite and are needed by Table II, Table III and Fig. 6 with
// identical parameters; cache them per (setup, scheme, horizon).
var codingCache = struct {
	sync.Mutex
	m map[string]coding.EvalResult
}{m: map[string]coding.EvalResult{}}

// evalCoding runs (or returns the cached) baseline evaluation for a
// setup.
func evalCoding(s *Setup, scheme coding.Scheme, steps, stride int) (coding.EvalResult, error) {
	key := fmt.Sprintf("%s-%d-%d-%s-%d-%d", s.Params.Dataset, s.Params.TrainN, s.Params.Seed,
		scheme.Name(), steps, stride)
	codingCache.Lock()
	if r, ok := codingCache.m[key]; ok {
		codingCache.Unlock()
		return r, nil
	}
	codingCache.Unlock()
	r, err := coding.Evaluate(scheme, s.Conv.Net, s.EvalX, s.EvalY, steps, stride)
	if err != nil {
		return coding.EvalResult{}, err
	}
	codingCache.Lock()
	codingCache.m[key] = r
	codingCache.Unlock()
	return r, nil
}
