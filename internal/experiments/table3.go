package experiments

import (
	"fmt"
	"io"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/opcount"
)

// Table3Row is one computational-cost row.
type Table3Row struct {
	Method string
	Mult   float64 // millions of operations
	Add    float64
}

// Table3Result reproduces the paper's Table III: estimated multiply/add
// counts per inference for the DNN, the three baseline codings, the
// TDSNN reverse-coding estimate, and T2FSNN, on the CIFAR-100-like
// network (the paper uses VGG-16 on CIFAR-100).
type Table3Result struct {
	Rows   []Table3Row
	Report string
}

// Table3 runs the cost analysis at the given scale.
func Table3(scale Scale, cacheDir string, log io.Writer) (*Table3Result, error) {
	p, err := ParamsFor("cifar100", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	net := s.Conv.Net
	res := &Table3Result{}
	add := func(method string, o opcount.Ops) {
		m := o.Millions()
		res.Rows = append(res.Rows, Table3Row{Method: method, Mult: m.Mult, Add: m.Add})
	}

	// DNN: dense MAC cost
	add("DNN", opcount.DNN(net))

	// Baseline codings: measured spikes at each scheme's convergence
	// horizon. Rate costs adds only; phase/burst are weighted.
	baselines := []struct {
		scheme   coding.Scheme
		steps    int
		weighted bool
	}{
		{coding.Rate{}, p.RateSteps, false},
		{coding.Phase{}, p.PhaseSteps, true},
		{coding.Burst{}, p.BurstSteps, true},
	}
	for _, b := range baselines {
		// spikes measured over the scheme's full evaluation horizon,
		// matching the Table II accounting
		ev, err := evalCoding(s, b.scheme, b.steps, p.CurveStride)
		if err != nil {
			return nil, err
		}
		// split the aggregate across boundaries using one sample's
		// distribution (SpikeOps only needs the total, but the split
		// keeps the per-boundary interface honest)
		one := b.scheme.Run(net, s.EvalX.Data[:net.InLen], coding.RunOpts{Steps: b.steps})
		per := make([]float64, len(net.Stages))
		tot := 0.0
		for i := range per {
			per[i] = float64(one.SpikesPerStage[i])
			tot += per[i]
		}
		if tot > 0 {
			scale := ev.AvgSpikes / tot
			for i := range per {
				per[i] *= scale
			}
		}
		ops, err := opcount.SpikeOps(net, per, b.weighted)
		if err != nil {
			return nil, err
		}
		add(b.scheme.Name(), ops)
	}

	// TDSNN estimate: reverse coding runs for roughly the same layered
	// latency as the baseline T2FSNN pipeline.
	tdsnnSteps := len(net.Stages) * p.T
	add("TDSNN", opcount.TDSNN(net, opcount.TDSNNConfig{Steps: tdsnnSteps, TickFraction: 1}))

	// T2FSNN: measured spikes of the GO+EF variant (kernel decode is one
	// LUT mult + add per spike).
	vars, err := Variants(s)
	if err != nil {
		return nil, err
	}
	for _, v := range vars {
		if v.Name != VarGOEF {
			continue
		}
		ev, err := EvalVariant(s, v, core.EvalOptions{})
		if err != nil {
			return nil, err
		}
		ops, err := opcount.SpikeOps(net, ev.SpikesPerStage, true)
		if err != nil {
			return nil, err
		}
		add("T2FSNN", ops)
	}

	t := Table{
		Title:   "Table III: Computational cost (millions of operations; width-reduced VGG on synthetic CIFAR-100-like)",
		Headers: []string{"Method", "Mult (M)", "Add (M)"},
	}
	for _, r := range res.Rows {
		mult := fmt.Sprintf("%.4f", r.Mult)
		if r.Method == "DNN" || r.Mult == 0 {
			if r.Mult == 0 {
				mult = "-"
			}
		}
		t.AddRow(r.Method, mult, fmt.Sprintf("%.4f", r.Add))
	}
	res.Report = t.String()
	return res, nil
}
