package experiments

import (
	"strings"
	"testing"
)

func TestParamsFor(t *testing.T) {
	for _, ds := range []string{"mnist", "cifar10", "cifar100"} {
		for _, sc := range []Scale{Tiny, Small, Full} {
			p, err := ParamsFor(ds, sc)
			if err != nil {
				t.Fatal(err)
			}
			if p.TrainN <= 0 || p.T <= 0 || p.RateSteps <= 0 || p.TauInit <= 0 {
				t.Fatalf("%s/%s: bad params %+v", ds, sc, p)
			}
			if p.EFStart() != p.T/2 {
				t.Fatalf("EFStart = %d, want T/2", p.EFStart())
			}
		}
	}
	if _, err := ParamsFor("imagenet", Tiny); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"tiny": Tiny, "small": Small, "": Small, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v,%v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestPrepareCachesSetups(t *testing.T) {
	p, _ := ParamsFor("mnist", Tiny)
	a, err := Prepare(p, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare(p, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Prepare should return the cached setup")
	}
	if a.DNNAcc < 0.3 {
		t.Fatalf("tiny MNIST DNN accuracy %.2f too low to be meaningful", a.DNNAcc)
	}
	if a.EvalX.Shape[0] != p.EvalN {
		t.Fatalf("eval subset size %d, want %d", a.EvalX.Shape[0], p.EvalN)
	}
}

func TestPrepareDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, _ := ParamsFor("mnist", Tiny)
	p.Seed = 777 // unique key so the in-memory cache is not reused
	if _, err := Prepare(p, dir, nil); err != nil {
		t.Fatal(err)
	}
	// evict in-memory entry to force the disk path
	setupCache.Lock()
	setupCache.m = map[string]*Setup{}
	setupCache.Unlock()
	var logBuf strings.Builder
	if _, err := Prepare(p, dir, &logBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), "loaded cached weights") {
		t.Fatalf("expected cached-weight load, log:\n%s", logBuf.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "bb"}, Rows: nil}
	tbl.AddRow("xxx", "1")
	out := tbl.String()
	for _, want := range []string{"T", "a", "bb", "xxx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSciNotation(t *testing.T) {
	if got := sciNotation(68980); got != "6.898E+4" {
		t.Fatalf("sciNotation = %q", got)
	}
}

func TestVariantsProduceFourRows(t *testing.T) {
	p, _ := ParamsFor("mnist", Tiny)
	s, err := Prepare(p, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := Variants(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 4 {
		t.Fatalf("got %d variants", len(vars))
	}
	if vars[0].Model == vars[1].Model {
		t.Fatal("GO variant must use a distinct model")
	}
	if vars[0].Model != vars[2].Model {
		t.Fatal("EF variant must reuse the baseline model")
	}
	if !vars[3].Run.EarlyFire || vars[3].Run.EFStart != p.T/2 {
		t.Fatalf("GO+EF run config wrong: %+v", vars[3].Run)
	}
}
