package experiments

import (
	"fmt"
	"io"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/tensor"
)

// AblationResult holds the design-choice sweeps DESIGN.md §5 calls out:
// the early-firing start time (the paper fixes T/2 "based on the
// experiments"), the normalization percentile λ, and the initial time
// constant τ.
type AblationResult struct {
	EFStart    []AblationPoint
	Percentile []AblationPoint
	TauInit    []AblationPoint
	Report     string
}

// AblationPoint is one sweep measurement.
type AblationPoint struct {
	Param    float64
	Accuracy float64
	Latency  int
	Spikes   float64
}

// Ablation runs the three sweeps on the CIFAR-10-like setup.
func Ablation(scale Scale, cacheDir string, log io.Writer) (*AblationResult, error) {
	p, err := ParamsFor("cifar10", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}

	// 1. EF start sweep on the baseline-kernel model.
	base, err := core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		return nil, err
	}
	efTable := Table{
		Title:   "Ablation A: early-firing start time (T=" + fmt.Sprint(p.T) + ")",
		Headers: []string{"EFStart", "Latency", "Accuracy(%)", "Spikes"},
	}
	for _, frac := range []int{4, 2, 1} { // T/4, T/2, T (baseline)
		start := p.T / frac
		ev, err := core.Evaluate(base, s.EvalX, s.EvalY, core.EvalOptions{
			Run: core.RunConfig{EarlyFire: true, EFStart: start}})
		if err != nil {
			return nil, err
		}
		res.EFStart = append(res.EFStart, AblationPoint{
			Param: float64(start), Accuracy: ev.Accuracy, Latency: ev.Latency, Spikes: ev.AvgSpikes})
		efTable.AddRow(fmt.Sprint(start), fmt.Sprint(ev.Latency),
			fmt.Sprintf("%.2f", 100*ev.Accuracy), sciNotation(ev.AvgSpikes))
	}

	// 2. Normalization percentile sweep: re-convert with each λ.
	pctTable := Table{
		Title:   "Ablation B: activation-normalization percentile",
		Headers: []string{"Percentile", "Accuracy(%)", "Spikes"},
	}
	shape := s.TrainX.Shape
	calibN := shape[0]
	if calibN > 300 {
		calibN = 300
	}
	sampleLen := s.TrainX.Len() / shape[0]
	calib := tensor.FromSlice(s.TrainX.Data[:calibN*sampleLen], append([]int{calibN}, shape[1:]...)...)
	for _, pct := range []float64{99.0, 99.9, 100.0} {
		conv, err := convert.Convert(s.DNN, convert.Options{Calibration: calib, Percentile: pct})
		if err != nil {
			return nil, err
		}
		m, err := core.NewModel(conv.Net, p.T, p.TauInit, p.TdInit)
		if err != nil {
			return nil, err
		}
		ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{})
		if err != nil {
			return nil, err
		}
		res.Percentile = append(res.Percentile, AblationPoint{
			Param: pct, Accuracy: ev.Accuracy, Spikes: ev.AvgSpikes})
		pctTable.AddRow(fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%.2f", 100*ev.Accuracy), sciNotation(ev.AvgSpikes))
	}

	// 3. Initial τ sweep (the precision/coverage trade-off of §III-B).
	tauTable := Table{
		Title:   "Ablation C: initial time constant τ (no GO)",
		Headers: []string{"tau", "Accuracy(%)", "Spikes"},
	}
	for _, tau := range []float64{float64(p.T) / 16, float64(p.T) / 8, float64(p.T) / 4, float64(p.T) / 2} {
		m, err := core.NewModel(s.Conv.Net, p.T, tau, p.TdInit)
		if err != nil {
			return nil, err
		}
		ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{})
		if err != nil {
			return nil, err
		}
		res.TauInit = append(res.TauInit, AblationPoint{
			Param: tau, Accuracy: ev.Accuracy, Spikes: ev.AvgSpikes})
		tauTable.AddRow(fmt.Sprintf("%.1f", tau),
			fmt.Sprintf("%.2f", 100*ev.Accuracy), sciNotation(ev.AvgSpikes))
	}

	res.Report = efTable.String() + "\n" + pctTable.String() + "\n" + tauTable.String()
	return res, nil
}
