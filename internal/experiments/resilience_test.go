package experiments

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

// The headline robustness result: TTFS carries each activation in a
// single spike time, so dropping spikes destroys information outright;
// rate coding averages over many spikes and degrades gracefully. The
// sweep must reproduce that ordering deterministically at Tiny scale.
func TestResilienceTTFSDegradesFasterThanRate(t *testing.T) {
	opts := ResilienceOptions{
		Schemes: []string{"ttfs", "rate"},
		Faults: []FaultModel{{
			Name:   "drop",
			Levels: []float64{0, 0.3},
			Config: func(l float64) fault.Config { return fault.Config{Drop: l} },
		}},
		Seed: 42,
	}
	res, err := Resilience(Tiny, opts, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 levels x 2 schemes)", len(res.Rows))
	}
	ttfs := res.Retention("TTFS", "drop", 0.3)
	rate := res.Retention("Rate", "drop", 0.3)
	if ttfs < 0 || rate < 0 {
		t.Fatalf("sweep cells missing: ttfs=%v rate=%v\n%s", ttfs, rate, res.Report)
	}
	if rate <= ttfs {
		t.Fatalf("rate coding retention %.2f not above TTFS %.2f under 30%% spike drop\n%s",
			rate, ttfs, res.Report)
	}
	// clean rows normalize to themselves
	if r := res.Retention("TTFS", "drop", 0); r != 1 {
		t.Fatalf("clean TTFS retention %v, want 1", r)
	}
	if !strings.Contains(res.Report, "Retention") {
		t.Fatal("report missing retention column")
	}

	// the sweep is a pure function of the seed
	again, err := Resilience(Tiny, opts, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}

// Weight noise is a static model transform, not a stream fault: the
// sweep must route it through fault.PerturbWeights and still report a
// clean-normalized retention.
func TestResilienceWeightNoise(t *testing.T) {
	opts := ResilienceOptions{
		Schemes: []string{"ttfs"},
		Faults: []FaultModel{{
			Name:   "weight-noise",
			Levels: []float64{0, 0.4},
			Config: func(l float64) fault.Config { return fault.Config{WeightNoise: l} },
		}},
		Seed: 7,
	}
	res, err := Resilience(Tiny, opts, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := res.Retention("TTFS", "weight-noise", 0)
	noisy := res.Retention("TTFS", "weight-noise", 0.4)
	if clean != 1 {
		t.Fatalf("clean retention %v, want 1", clean)
	}
	if noisy >= 1 {
		t.Fatalf("sigma=0.4 weight noise left retention at %v; perturbation had no effect", noisy)
	}
}

func TestFaultModelsByName(t *testing.T) {
	all, err := FaultModelsByName(nil)
	if err != nil || len(all) < 5 {
		t.Fatalf("default fault models: %d, %v", len(all), err)
	}
	sub, err := FaultModelsByName([]string{"jitter", "drop"})
	if err != nil || len(sub) != 2 || sub[0].Name != "jitter" {
		t.Fatalf("subset selection wrong: %+v, %v", sub, err)
	}
	if _, err := FaultModelsByName([]string{"cosmic-ray"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	for _, fm := range all {
		if len(fm.Levels) == 0 || fm.Levels[0] != 0 {
			t.Fatalf("%s: level grid must start at 0 (clean baseline)", fm.Name)
		}
	}
}

func TestResilienceRejectsUnknownScheme(t *testing.T) {
	_, err := Resilience(Tiny, ResilienceOptions{Schemes: []string{"morse"}}, "", nil)
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
