package experiments

import (
	"fmt"
	"io"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/reverse"
)

// Table2Row is one (dataset, coding scheme) measurement.
type Table2Row struct {
	Dataset  string
	Scheme   string
	Accuracy float64
	Latency  int
	Spikes   float64
	EnergyTN float64 // normalized to rate coding
	EnergySN float64
}

// Table2Result reproduces the paper's Table II: accuracy, latency,
// spikes and normalized TrueNorth/SpiNNaker energy for rate, phase,
// burst and T2FSNN+GO+EF on all three datasets.
type Table2Result struct {
	Rows   []Table2Row
	Report string
}

// Table2 runs the comparison at the given scale.
func Table2(scale Scale, cacheDir string, log io.Writer) (*Table2Result, error) {
	datasets := []string{"mnist", "cifar10", "cifar100"}
	res := &Table2Result{}
	t := Table{
		Title: "Table II: Comparison of neural coding schemes (synthetic datasets; energy normalized to rate coding)",
		Headers: []string{"Dataset", "Coding", "Accuracy(%)", "Latency", "Spikes",
			"Energy TN", "Energy SN"},
	}

	for _, ds := range datasets {
		p, err := ParamsFor(ds, scale)
		if err != nil {
			return nil, err
		}
		s, err := Prepare(p, cacheDir, log)
		if err != nil {
			return nil, err
		}

		type measured struct {
			name     string
			accuracy float64
			latency  int
			spikes   float64
		}
		var rows []measured

		// Baselines: following the paper's Table II accounting, the
		// reported latency is the simulation horizon at which the
		// reported accuracy is attained (the paper runs rate coding for
		// 10,000 steps and reports exactly that as its latency), and
		// the spike count is measured over that horizon.
		baselines := []struct {
			scheme coding.Scheme
			steps  int
		}{
			{coding.Rate{}, p.RateSteps},
			{coding.Phase{}, p.PhaseSteps},
			{coding.Burst{}, p.BurstSteps},
		}
		for _, b := range baselines {
			ev, err := evalCoding(s, b.scheme, b.steps, p.CurveStride)
			if err != nil {
				return nil, err
			}
			rows = append(rows, measured{
				name: b.scheme.Name(), accuracy: ev.Accuracy,
				latency: b.steps, spikes: ev.AvgSpikes,
			})
			if log != nil {
				fmt.Fprintf(log, "%s/%s: acc=%.3f horizon=%d conv=%d spikes=%.0f\n",
					ds, b.scheme.Name(), ev.Accuracy, b.steps, ev.ConvergenceStep, ev.AvgSpikes)
			}
		}

		// TDSNN-style reverse coding: the paper reports its accuracy on
		// MNIST only, with no spike/latency figures (Table II's "-").
		// The row is held back and rendered between Burst and Our
		// Method, matching the paper's layout.
		reverseAcc := -1.0
		if ds == "mnist" {
			rm, err := reverse.NewModel(s.Conv.Net, p.T)
			if err != nil {
				return nil, err
			}
			acc, _, _, err := rm.Evaluate(s.EvalX.Data, s.Conv.Net.InLen, s.EvalY)
			if err != nil {
				return nil, err
			}
			reverseAcc = acc
		}

		// our method: T2FSNN+GO+EF
		vars, err := Variants(s)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			if v.Name != VarGOEF {
				continue
			}
			ev, err := EvalVariant(s, v, core.EvalOptions{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, measured{
				name: "Our Method", accuracy: ev.Accuracy,
				latency: ev.Latency, spikes: ev.AvgSpikes,
			})
		}

		base := rows[0] // rate coding is the normalization baseline
		for _, m := range rows {
			if m.name == "Our Method" && reverseAcc >= 0 {
				res.Rows = append(res.Rows, Table2Row{Dataset: ds, Scheme: "Reverse", Accuracy: reverseAcc})
				t.AddRow(ds, "Reverse", fmt.Sprintf("%.2f", 100*reverseAcc), "-", "-", "-", "-")
			}
			tn, err := energy.TrueNorth.Normalized(m.spikes, float64(m.latency), base.spikes, float64(base.latency))
			if err != nil {
				return nil, err
			}
			sn, err := energy.SpiNNaker.Normalized(m.spikes, float64(m.latency), base.spikes, float64(base.latency))
			if err != nil {
				return nil, err
			}
			row := Table2Row{
				Dataset: ds, Scheme: m.name, Accuracy: m.accuracy,
				Latency: m.latency, Spikes: m.spikes, EnergyTN: tn, EnergySN: sn,
			}
			res.Rows = append(res.Rows, row)
			t.AddRow(ds, m.name, fmt.Sprintf("%.2f", 100*m.accuracy),
				fmt.Sprintf("%d", m.latency), sciNotation(m.spikes),
				fmt.Sprintf("%.3f", tn), fmt.Sprintf("%.3f", sn))
		}
	}
	res.Report = t.String()
	return res, nil
}
