package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple text table renderer used by every experiment report.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) sequence used by the figure experiments.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries prints each series as a CSV-like block of (x, y) pairs —
// series may have different x grids (e.g. per-scheme curve strides).
func RenderSeries(title string, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "# series: %s (%s, value)\n", s.Name, xLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// sciNotation formats a float in the paper's "6.898E+4" style.
func sciNotation(v float64) string {
	return strings.ToUpper(strings.Replace(fmt.Sprintf("%.3e", v), "e+0", "E+", 1))
}
