package experiments

import (
	"strings"
	"testing"
)

// The table/figure tests run everything at Tiny scale and assert the
// paper-shape relations that must hold at any scale.

func TestTable1Shape(t *testing.T) {
	res, err := Table1(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 variants × 2 datasets
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range res.Rows {
		byKey[string(r.Variant)+"/"+r.Dataset] = r
	}
	base := byKey["T2FSNN/cifar10"]
	ef := byKey["T2FSNN+EF/cifar10"]
	goef := byKey["T2FSNN+GO+EF/cifar10"]
	// EF must cut latency roughly in half (paper: 1280 -> 680 is 46.9%)
	if ef.Latency >= base.Latency {
		t.Fatalf("EF latency %d not below baseline %d", ef.Latency, base.Latency)
	}
	ratio := float64(ef.Latency) / float64(base.Latency)
	if ratio < 0.4 || ratio > 0.7 {
		t.Fatalf("EF latency ratio %.2f outside the near-half band", ratio)
	}
	if goef.Latency != ef.Latency {
		t.Fatal("GO must not change latency")
	}
	// accuracy must not collapse under GO/EF (paper reports slight gains)
	for _, v := range []string{"T2FSNN+GO", "T2FSNN+EF", "T2FSNN+GO+EF"} {
		r := byKey[v+"/cifar10"]
		if r.Accuracy < base.Accuracy-0.15 {
			t.Fatalf("%s accuracy %.2f collapsed from baseline %.2f", v, r.Accuracy, base.Accuracy)
		}
	}
	if !strings.Contains(res.Report, "T2FSNN+GO+EF") {
		t.Fatal("report missing variant rows")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 { // 4 schemes × 3 datasets + reverse on mnist
		t.Fatalf("got %d rows, want 13", len(res.Rows))
	}
	foundReverse := false
	for _, r := range res.Rows {
		if r.Scheme == "Reverse" {
			foundReverse = true
			if r.Dataset != "mnist" {
				t.Fatalf("reverse row on %s, want mnist only", r.Dataset)
			}
			if r.Accuracy <= 0.2 {
				t.Fatalf("reverse accuracy %.2f at chance", r.Accuracy)
			}
		}
	}
	if !foundReverse {
		t.Fatal("missing Reverse row")
	}
	byKey := map[string]Table2Row{}
	for _, r := range res.Rows {
		byKey[r.Dataset+"/"+r.Scheme] = r
	}
	for _, ds := range []string{"mnist", "cifar10", "cifar100"} {
		rate := byKey[ds+"/Rate"]
		our := byKey[ds+"/Our Method"]
		// rate coding self-normalizes to 1
		if rate.EnergyTN < 0.999 || rate.EnergyTN > 1.001 {
			t.Fatalf("%s: rate TN energy %.3f != 1", ds, rate.EnergyTN)
		}
		// the headline result: our method needs far fewer spikes than
		// rate coding and less energy
		if our.Spikes >= rate.Spikes {
			t.Fatalf("%s: our spikes %.0f not below rate %.0f", ds, our.Spikes, rate.Spikes)
		}
		if our.EnergyTN >= 1 || our.EnergySN >= 1 {
			t.Fatalf("%s: our energy (%.3f TN, %.3f SN) not below rate", ds, our.EnergyTN, our.EnergySN)
		}
		// and fewer spikes than burst, the strongest baseline
		burst := byKey[ds+"/Burst"]
		if our.Spikes >= burst.Spikes {
			t.Fatalf("%s: our spikes %.0f not below burst %.0f", ds, our.Spikes, burst.Spikes)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Table3Row{}
	for _, r := range res.Rows {
		byMethod[r.Method] = r
	}
	for _, m := range []string{"DNN", "Rate", "Phase", "Burst", "TDSNN", "T2FSNN"} {
		if _, ok := byMethod[m]; !ok {
			t.Fatalf("missing method %s in %v", m, res.Rows)
		}
	}
	// paper shape: T2FSNN is the cheapest by far; rate has no mults;
	// TDSNN pays heavily for auxiliary/leaky operations
	t2f := byMethod["T2FSNN"]
	if byMethod["Rate"].Mult != 0 {
		t.Fatal("rate coding should need no multiplies")
	}
	if t2f.Add >= byMethod["Burst"].Add {
		t.Fatalf("T2FSNN adds %.3f not below burst %.3f", t2f.Add, byMethod["Burst"].Add)
	}
	if t2f.Add >= byMethod["TDSNN"].Add || t2f.Mult >= byMethod["TDSNN"].Mult {
		t.Fatalf("T2FSNN (%.3f/%.3f) not below TDSNN (%.3f/%.3f)",
			t2f.Mult, t2f.Add, byMethod["TDSNN"].Mult, byMethod["TDSNN"].Add)
	}
	if t2f.Add >= byMethod["DNN"].Add {
		t.Fatal("T2FSNN should be cheaper than the DNN")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PanelA) != 4 || len(res.PanelB) != 2 {
		t.Fatalf("panels: %d/%d series", len(res.PanelA), len(res.PanelB))
	}
	// the two trajectories approach from opposite sides (paper Fig. 4):
	// τ=2 increases, τ=18 decreases
	if res.FinalTau["tau=2"] <= 2 {
		t.Fatalf("τ=2 should grow, ended at %.2f", res.FinalTau["tau=2"])
	}
	if res.FinalTau["tau=18"] >= 18 {
		t.Fatalf("τ=18 should shrink, ended at %.2f", res.FinalTau["tau=18"])
	}
	// L_max for τ=2 must decrease over training (panel b, red line)
	for _, s := range res.PanelB {
		if !strings.Contains(s.Name, "tau=2") {
			continue
		}
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Fatalf("Lmax(τ=2) did not decrease: %v -> %v", s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) == 0 {
		t.Fatal("no layers collected")
	}
	// layers must appear for both variants with sane first-spike times
	seen := map[VariantName]int{}
	for _, l := range res.Layers {
		seen[l.Variant]++
		if l.Count > 0 && l.FirstSpike < 0 {
			t.Fatalf("%s/%s: spikes but no first-spike time", l.Variant, l.Layer)
		}
	}
	if seen[VarBase] == 0 || seen[VarGO] == 0 {
		t.Fatalf("missing variants in layers: %v", seen)
	}
	if !strings.Contains(res.Report, "Conv") {
		t.Fatal("report missing conv layers")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("got %d datasets, want 2", len(res.Curves))
	}
	for _, fc := range res.Curves {
		if len(fc.Series) != 7 { // rate, phase, burst + 4 T2FSNN variants
			t.Fatalf("%s: %d series, want 7", fc.Dataset, len(fc.Series))
		}
		// every T2FSNN variant should clear chance by a wide margin
		classes := 10.0
		if fc.Dataset == "cifar100" {
			classes = 100
		}
		for _, v := range []string{"T2FSNN", "T2FSNN+GO+EF"} {
			if fc.FinalAccuracy[v] <= 2.5/classes {
				t.Fatalf("%s/%s final accuracy %.2f at chance", fc.Dataset, v, fc.FinalAccuracy[v])
			}
		}
		// the paper's speed ordering: GO+EF decides no later than baseline
		var baseEnd, goefEnd float64
		for _, s := range fc.Series {
			switch s.Name {
			case "T2FSNN":
				baseEnd = s.X[len(s.X)-1]
			case "T2FSNN+GO+EF":
				goefEnd = s.X[len(s.X)-1]
			}
		}
		if goefEnd >= baseEnd {
			t.Fatalf("%s: GO+EF curve ends at %v, not before baseline %v", fc.Dataset, goefEnd, baseEnd)
		}
	}
}
