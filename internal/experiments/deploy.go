package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/quant"
)

// DeployResult is the hardware-deployment study: spiking accuracy as a
// function of fixed-point weight width, magnitude-pruning sparsity, and
// core placement plus network-on-chip traffic on the two reference
// fabrics.
type DeployResult struct {
	QuantRows []DeployQuantRow
	PruneRows []DeployPruneRow
	Mappings  []DeployMapping
	Report    string
}

// DeployPruneRow is one sparsity measurement.
type DeployPruneRow struct {
	Sparsity float64
	Accuracy float64
}

// DeployQuantRow is one bit-width measurement.
type DeployQuantRow struct {
	Bits     int // 0 = float64 reference
	RMSError float64
	Accuracy float64
}

// DeployMapping is one fabric placement with measured traffic.
type DeployMapping struct {
	Fabric     string
	TotalCores int
	Traffic    float64 // NoC spike deliveries per inference
	RawSpikes  float64
}

// Deploy runs the deployment study on the MNIST-like setup (the
// smallest network with all stage types: conv, pooled conv, dense).
func Deploy(scale Scale, cacheDir string, log io.Writer) (*DeployResult, error) {
	p, err := ParamsFor("mnist", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	res := &DeployResult{}

	qt := Table{
		Title:   "Deploy A: spiking accuracy vs fixed-point weight width",
		Headers: []string{"Bits", "RMS err", "Accuracy(%)"},
	}
	run := core.RunConfig{EarlyFire: true}
	var floatEv core.EvalResult
	for _, bits := range []int{0, 12, 8, 6, 4, 3} {
		net := s.Conv.Net
		rms := 0.0
		if bits > 0 {
			qnet, _, err := quant.QuantizeNet(s.Conv.Net, bits)
			if err != nil {
				return nil, err
			}
			rms = quant.RMSError(s.Conv.Net, qnet)
			net = qnet
		}
		m, err := core.NewModel(net, p.T, p.TauInit, p.TdInit)
		if err != nil {
			return nil, err
		}
		ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{Run: run})
		if err != nil {
			return nil, err
		}
		if bits == 0 {
			floatEv = ev
		}
		res.QuantRows = append(res.QuantRows, DeployQuantRow{Bits: bits, RMSError: rms, Accuracy: ev.Accuracy})
		label := "float64"
		if bits > 0 {
			label = fmt.Sprint(bits)
		}
		qt.AddRow(label, fmt.Sprintf("%.5f", rms), fmt.Sprintf("%.2f", 100*ev.Accuracy))
	}

	pt := Table{
		Title:   "Deploy B: spiking accuracy vs magnitude-pruning sparsity",
		Headers: []string{"Sparsity(%)", "Accuracy(%)"},
	}
	for _, sp := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
		net := s.Conv.Net
		if sp > 0 {
			pnet, err := quant.PruneNet(s.Conv.Net, sp)
			if err != nil {
				return nil, err
			}
			net = pnet
		}
		m, err := core.NewModel(net, p.T, p.TauInit, p.TdInit)
		if err != nil {
			return nil, err
		}
		ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{Run: run})
		if err != nil {
			return nil, err
		}
		res.PruneRows = append(res.PruneRows, DeployPruneRow{Sparsity: sp, Accuracy: ev.Accuracy})
		pt.AddRow(fmt.Sprintf("%.0f", 100*sp), fmt.Sprintf("%.2f", 100*ev.Accuracy))
	}

	mt := Table{
		Title:   "Deploy C: core mapping and NoC traffic per inference",
		Headers: []string{"Fabric", "Cores", "Traffic", "Raw spikes"},
	}
	for _, fabric := range []hw.Fabric{hw.TrueNorth, hw.SpiNNaker} {
		mapping, err := hw.Map(s.Conv.Net, fabric)
		if err != nil {
			return nil, err
		}
		traffic, err := mapping.Traffic(floatEv.SpikesPerStage)
		if err != nil {
			return nil, err
		}
		res.Mappings = append(res.Mappings, DeployMapping{
			Fabric: fabric.Name, TotalCores: mapping.TotalCores,
			Traffic: traffic, RawSpikes: floatEv.AvgSpikes,
		})
		mt.AddRow(fabric.Name, fmt.Sprint(mapping.TotalCores),
			fmt.Sprintf("%.0f", traffic), fmt.Sprintf("%.0f", floatEv.AvgSpikes))
	}
	res.Report = qt.String() + "\n" + pt.String() + "\n" + mt.String()
	return res, nil
}
