package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Fig5Layer is the spike-time distribution of one layer under one model
// variant.
type Fig5Layer struct {
	Layer      string
	Variant    VariantName
	FirstSpike int // earliest global spike time (the orange bar)
	Count      int
	Hist       []int
	Edges      []float64
}

// Fig5Result reproduces the paper's Fig. 5: per-layer spike-time
// histograms of the baseline T2FSNN versus T2FSNN+GO, with the first
// spike time of each layer marked.
type Fig5Result struct {
	Layers []Fig5Layer
	Report string
}

// Fig5 runs the spike-time distribution experiment on the CIFAR-10-like
// setup.
func Fig5(scale Scale, cacheDir string, log io.Writer) (*Fig5Result, error) {
	p, err := ParamsFor("cifar10", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	base, opt, _, err := BuildModels(s)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{}
	var b strings.Builder
	b.WriteString("Fig 5: spike time distributions per layer (baseline vs +GO); | marks the first spike\n")
	for _, v := range []Variant{
		{Name: VarBase, Model: base, Run: core.RunConfig{}},
		{Name: VarGO, Model: opt, Run: core.RunConfig{}},
	} {
		ev, err := EvalVariant(s, v, core.EvalOptions{CollectStats: true})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "-- %s --\n", v.Name)
		for bi, st := range ev.StageStats {
			if bi == 0 || !strings.HasPrefix(st.Name, "Conv") {
				continue // the paper plots hidden conv layers
			}
			lo := (bi) * p.T // fire window of boundary bi starts here (baseline pipeline)
			hi := lo + p.T
			counts, edges := st.Histogram(lo, hi, 10)
			res.Layers = append(res.Layers, Fig5Layer{
				Layer: st.Name, Variant: v.Name,
				FirstSpike: st.FirstSpike, Count: st.Count,
				Hist: counts, Edges: edges,
			})
			fmt.Fprintf(&b, "%-10s first=%4d n=%6d  %s\n",
				st.Name, st.FirstSpike, st.Count, sparkline(counts))
		}
	}
	res.Report = b.String()
	return res, nil
}

// sparkline renders a histogram as a compact bar string.
func sparkline(counts []int) string {
	glyphs := []rune(" .:-=+*#%@")
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for _, c := range counts {
		idx := c * (len(glyphs) - 1) / maxC
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
