package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Table1Row is one ablation measurement on one dataset.
type Table1Row struct {
	Variant  VariantName
	Dataset  string
	Latency  int
	Accuracy float64
	Spikes   float64
}

// Table1Result reproduces the paper's Table I (ablation study of GO and
// EF on CIFAR-10 and CIFAR-100).
type Table1Result struct {
	Rows   []Table1Row
	Report string
}

// Table1 runs the ablation at the given scale. cacheDir may be empty;
// log may be nil.
func Table1(scale Scale, cacheDir string, log io.Writer) (*Table1Result, error) {
	datasets := []string{"cifar10", "cifar100"}
	res := &Table1Result{}

	// rows keyed by variant, columns per dataset (paper layout)
	perVariant := map[VariantName]map[string]Table1Row{}
	var latency = map[VariantName]int{}
	for _, ds := range datasets {
		p, err := ParamsFor(ds, scale)
		if err != nil {
			return nil, err
		}
		s, err := Prepare(p, cacheDir, log)
		if err != nil {
			return nil, err
		}
		vars, err := Variants(s)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			ev, err := EvalVariant(s, v, core.EvalOptions{})
			if err != nil {
				return nil, err
			}
			row := Table1Row{
				Variant: v.Name, Dataset: ds,
				Latency: ev.Latency, Accuracy: ev.Accuracy, Spikes: ev.AvgSpikes,
			}
			res.Rows = append(res.Rows, row)
			if perVariant[v.Name] == nil {
				perVariant[v.Name] = map[string]Table1Row{}
			}
			perVariant[v.Name][ds] = row
			latency[v.Name] = ev.Latency
		}
	}

	t := Table{
		Title: "Table I: Ablation study (synthetic CIFAR-10/100-like, width-reduced VGG)",
		Headers: []string{"Methods", "Latency",
			"CIFAR10 Acc", "CIFAR10 Spikes", "CIFAR100 Acc", "CIFAR100 Spikes"},
	}
	for _, v := range []VariantName{VarBase, VarGO, VarEF, VarGOEF} {
		r10, r100 := perVariant[v]["cifar10"], perVariant[v]["cifar100"]
		t.AddRow(string(v), fmt.Sprintf("%d", latency[v]),
			fmt.Sprintf("%.2f", 100*r10.Accuracy), sciNotation(r10.Spikes),
			fmt.Sprintf("%.2f", 100*r100.Accuracy), sciNotation(r100.Spikes))
	}
	res.Report = t.String()
	return res, nil
}
