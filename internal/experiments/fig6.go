package experiments

import (
	"fmt"
	"io"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Fig6Curves holds one dataset's inference curves for every scheme.
type Fig6Curves struct {
	Dataset string
	Series  []Series
	// FinalAccuracy per scheme name.
	FinalAccuracy map[string]float64
}

// Fig6Result reproduces the paper's Fig. 6: accuracy versus time step
// for rate, phase, burst, and the four T2FSNN variants on the CIFAR-10-
// and CIFAR-100-like tasks.
type Fig6Result struct {
	Curves []Fig6Curves
	Report string
}

// Fig6 runs the inference-curve experiment at the given scale.
func Fig6(scale Scale, cacheDir string, log io.Writer) (*Fig6Result, error) {
	res := &Fig6Result{}
	report := ""
	for _, ds := range []string{"cifar10", "cifar100"} {
		p, err := ParamsFor(ds, scale)
		if err != nil {
			return nil, err
		}
		s, err := Prepare(p, cacheDir, log)
		if err != nil {
			return nil, err
		}
		fc := Fig6Curves{Dataset: ds, FinalAccuracy: map[string]float64{}}

		baselines := []struct {
			scheme coding.Scheme
			steps  int
		}{
			{coding.Rate{}, p.RateSteps},
			{coding.Phase{}, p.PhaseSteps},
			{coding.Burst{}, p.BurstSteps},
		}
		for _, b := range baselines {
			ev, err := evalCoding(s, b.scheme, b.steps, p.CurveStride)
			if err != nil {
				return nil, err
			}
			fc.Series = append(fc.Series, curveToSeries(b.scheme.Name(), ev.Curve))
			fc.FinalAccuracy[b.scheme.Name()] = ev.Accuracy
			if log != nil {
				fmt.Fprintf(log, "%s/%s: final acc %.3f\n", ds, b.scheme.Name(), ev.Accuracy)
			}
		}

		vars, err := Variants(s)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			ev, err := EvalVariant(s, v, core.EvalOptions{CurveStride: p.CurveStride})
			if err != nil {
				return nil, err
			}
			fc.Series = append(fc.Series, curveToSeries(string(v.Name), ev.Curve))
			fc.FinalAccuracy[string(v.Name)] = ev.Accuracy
		}
		res.Curves = append(res.Curves, fc)
		report += RenderSeries(fmt.Sprintf("Fig 6: inference curves on %s-like", ds), "step", fc.Series)
	}
	res.Report = report
	return res, nil
}

// curveToSeries converts an inference curve into a Series. The TTFS
// core and the baseline codings share metrics.CurvePoint, so one
// conversion covers both evaluation paths.
func curveToSeries(name string, curve []metrics.CurvePoint) Series {
	s := Series{Name: name}
	for _, p := range curve {
		s.X = append(s.X, float64(p.Step))
		s.Y = append(s.Y, p.Accuracy)
	}
	return s
}
