// Package experiments reproduces every table and figure of the paper's
// evaluation section on the synthetic substitute datasets: the ablation
// study (Table I), the cross-coding comparison with energy estimates
// (Table II), the computational cost analysis (Table III), the kernel
// optimization loss curves (Fig. 4), the spike-time distributions
// (Fig. 5), and the inference curves (Fig. 6). Each experiment trains
// (or reuses) a DNN, converts it, runs the relevant spiking pipelines,
// and renders the paper's rows/series as text tables.
package experiments

import "fmt"

// Scale selects the experiment budget. Absolute numbers shrink with the
// scale; the paper-shape relations (orderings, ratios) must hold at any
// scale.
type Scale int

// Scales.
const (
	// Tiny is sized for unit tests and benchmarks (seconds).
	Tiny Scale = iota
	// Small is the CLI default (minutes on one core).
	Small
	// Full is the long-run configuration.
	Full
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "full":
		return Full, nil
	}
	return Tiny, fmt.Errorf("experiments: unknown scale %q (want tiny|small|full)", s)
}

// Params sizes one dataset's experiment at a given scale.
type Params struct {
	Dataset string
	Classes int

	// dataset sizes
	TrainN, TestN int
	// EvalN is the evaluation subset for the spiking simulations.
	EvalN int

	// architecture/training
	UseVGG16 bool // false: LeNet (MNIST) or VGG-9 (tiny CIFAR)
	WidthDiv int
	FCWidth  int
	Epochs   int

	// spiking configuration
	T       int // T2FSNN per-layer window
	TauInit float64
	TdInit  float64
	// Steps are the simulation horizons for the baseline codings
	// (paper Fig. 6 x-ranges: 1600 for CIFAR-10, 3000 for CIFAR-100).
	RateSteps, PhaseSteps, BurstSteps int
	CurveStride                       int

	Seed uint64
}

// ParamsFor returns the canonical parameters for a dataset at a scale.
// Dataset names: "mnist", "cifar10", "cifar100" (the -like synthetic
// substitutes; see DESIGN.md).
func ParamsFor(dataset string, scale Scale) (Params, error) {
	p := Params{Dataset: dataset, Seed: 1, TauInit: 0, TdInit: 0}
	switch dataset {
	case "mnist":
		p.Classes = 10
		p.T = 20
		switch scale {
		case Tiny:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 300, 60, 30, 2
			p.FCWidth = 32
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 200, 120, 90
		case Small:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 1200, 200, 100, 3
			p.FCWidth = 64
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 300, 160, 120
		default:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 4000, 500, 200, 5
			p.FCWidth = 128
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 400, 200, 160
		}
	case "cifar10", "cifar100":
		p.Classes = 10
		if dataset == "cifar100" {
			p.Classes = 100
		}
		p.T = 80
		switch scale {
		case Tiny:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 300, 60, 20, 2
			p.UseVGG16, p.WidthDiv, p.FCWidth = false, 16, 24
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 400, 260, 200
			p.T = 40
		case Small:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 1200, 200, 50, 3
			p.UseVGG16, p.WidthDiv, p.FCWidth = true, 16, 48
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 1600, 1000, 700
		default:
			p.TrainN, p.TestN, p.EvalN, p.Epochs = 4000, 500, 100, 6
			p.UseVGG16, p.WidthDiv, p.FCWidth = true, 8, 96
			p.RateSteps, p.PhaseSteps, p.BurstSteps = 2400, 1400, 1000
		}
		if dataset == "cifar100" {
			// 100 classes need more data per class, a hidden FC wider
			// than the class count, and (as in the paper's Fig. 6)
			// longer baseline horizons.
			switch scale {
			case Tiny:
				p.TrainN, p.TestN, p.Epochs, p.FCWidth = 1000, 100, 3, 96
			case Small:
				p.TrainN, p.TestN, p.FCWidth = 2500, 300, 128
			default:
				p.FCWidth = 192
			}
			if scale != Tiny {
				p.RateSteps = p.RateSteps * 3 / 2
				p.PhaseSteps = p.PhaseSteps * 3 / 2
				p.BurstSteps = p.BurstSteps * 3 / 2
			}
		}
	default:
		return Params{}, fmt.Errorf("experiments: unknown dataset %q (want mnist|cifar10|cifar100)", dataset)
	}
	if p.TauInit == 0 {
		p.TauInit = float64(p.T) / 4
	}
	p.CurveStride = p.RateSteps / 60
	if p.CurveStride < 1 {
		p.CurveStride = 1
	}
	return p, nil
}

// EFStart is the early-firing start offset: half the time window, the
// paper's experimentally chosen value (§IV).
func (p Params) EFStart() int { return p.T / 2 }
