package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/convert"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/tensor"
)

// Setup is a trained and converted network ready for spiking
// experiments on one dataset.
type Setup struct {
	Params Params
	DNN    *dnn.Network
	Conv   *convert.Result
	TrainX *tensor.Tensor
	TrainY []int
	TestX  *tensor.Tensor
	TestY  []int
	DNNAcc float64
	// EvalX/EvalY is the spiking-evaluation subset (EvalN samples of
	// the test split), flattened to [EvalN, sampleLen].
	EvalX *tensor.Tensor
	EvalY []int
}

var setupCache = struct {
	sync.Mutex
	m map[string]*Setup
}{m: map[string]*Setup{}}

// Prepare builds (or returns the cached) setup for the given parameters:
// generate the dataset, train the DNN (loading weights from cacheDir if
// present, saving them if not), convert, and slice the evaluation
// subset. log may be nil.
func Prepare(p Params, cacheDir string, log io.Writer) (*Setup, error) {
	key := fmt.Sprintf("%s-%d-%d-%d-%d", p.Dataset, p.TrainN, p.Epochs, p.WidthDiv, p.Seed)
	setupCache.Lock()
	if s, ok := setupCache.m[key]; ok {
		setupCache.Unlock()
		return s, nil
	}
	setupCache.Unlock()

	cfg := dataset.Config{Train: p.TrainN, Test: p.TestN, Seed: p.Seed}
	var train, test *dataset.Dataset
	switch p.Dataset {
	case "mnist":
		train, test = dataset.MNISTLike(cfg)
	case "cifar10":
		train, test = dataset.CIFAR10Like(cfg)
	case "cifar100":
		train, test = dataset.CIFAR100Like(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", p.Dataset)
	}

	rng := tensor.NewRNG(p.Seed + 100)
	shape := train.SampleShape()
	arch := dnn.ArchConfig{
		InC: shape[0], InH: shape[1], InW: shape[2],
		Classes: p.Classes, WidthDiv: p.WidthDiv, FCWidth: p.FCWidth,
		BatchNorm: true, Pool: dnn.AvgPool,
	}
	var net *dnn.Network
	switch {
	case p.Dataset == "mnist":
		net = dnn.BuildLeNet(arch, rng)
	case p.UseVGG16:
		net = dnn.BuildVGG16(arch, rng)
	default:
		net = dnn.BuildVGG9(arch, rng)
	}

	loaded := false
	var cachePath string
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, key+".gob")
		if f, err := os.Open(cachePath); err == nil {
			if err := net.Load(f); err == nil {
				loaded = true
				if log != nil {
					fmt.Fprintf(log, "loaded cached weights from %s\n", cachePath)
				}
			}
			f.Close()
		}
	}
	if !loaded {
		if log != nil {
			fmt.Fprintf(log, "training %s on %s (%d samples, %d epochs, %d params)\n",
				net.Name, p.Dataset, train.N(), p.Epochs, net.NumParams())
		}
		dnn.Train(net, train.X, train.Labels, dnn.TrainConfig{
			Epochs: p.Epochs, BatchSize: 32,
			Optimizer: dnn.NewAdam(2e-3, 1e-5),
			RNG:       tensor.NewRNG(p.Seed + 200),
			Log:       log,
		})
		if cachePath != "" {
			if err := os.MkdirAll(cacheDir, 0o755); err == nil {
				if f, err := os.Create(cachePath); err == nil {
					if err := net.Save(f); err != nil && log != nil {
						fmt.Fprintf(log, "warning: saving weights: %v\n", err)
					}
					f.Close()
				}
			}
		}
	}

	// conversion calibrates on (a subset of) the training split
	calibN := train.N()
	if calibN > 500 {
		calibN = 500
	}
	sampleLen := shape[0] * shape[1] * shape[2]
	calib := tensor.FromSlice(train.X.Data[:calibN*sampleLen], append([]int{calibN}, shape...)...)
	res, err := convert.Convert(net, convert.Options{Calibration: calib, Percentile: 99.9})
	if err != nil {
		return nil, fmt.Errorf("experiments: converting %s: %w", p.Dataset, err)
	}

	evalN := p.EvalN
	if evalN > test.N() {
		evalN = test.N()
	}
	s := &Setup{
		Params: p, DNN: net, Conv: res,
		TrainX: train.X, TrainY: train.Labels,
		TestX: test.X, TestY: test.Labels,
		DNNAcc: dnn.Evaluate(net, test.X, test.Labels, 64),
		EvalX:  tensor.FromSlice(test.X.Data[:evalN*sampleLen], evalN, sampleLen),
		EvalY:  test.Labels[:evalN],
	}
	setupCache.Lock()
	setupCache.m[key] = s
	setupCache.Unlock()
	return s, nil
}

// InputPixels returns a flat slice of training pixels used as the z̄
// distribution for the input kernel's gradient optimization.
func (s *Setup) InputPixels(maxSamples int) []float64 {
	shape := s.TrainX.Shape
	sampleLen := s.TrainX.Len() / shape[0]
	n := shape[0]
	if n > maxSamples {
		n = maxSamples
	}
	return s.TrainX.Data[:n*sampleLen]
}
