package experiments

import (
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

// Fig4Result reproduces the paper's Fig. 4: the trajectories of the
// three kernel-optimization losses under two initial time constants
// (τ=2 and τ=18) over a T=20 window. Panel (a) holds L_prec and L_min,
// panel (b) holds L_max, both versus the number of training samples
// seen.
type Fig4Result struct {
	PanelA []Series // Lprec(τ=18), Lmin(τ=18), Lprec(τ=2), Lmin(τ=2)
	PanelB []Series // Lmax(τ=18), Lmax(τ=2)
	// FinalTau records where each trajectory's τ ended, demonstrating
	// the precision/latency trade-off converging from both directions.
	FinalTau map[string]float64
	Report   string
}

// Fig4 runs the loss-trajectory experiment at the given scale, using the
// first hidden layer's normalized activations of the CIFAR-10-like setup
// as the ground-truth distribution z̄.
func Fig4(scale Scale, cacheDir string, log io.Writer) (*Fig4Result, error) {
	p, err := ParamsFor("cifar10", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	zbar := s.Conv.Activations[0]
	// the paper trains over 50k samples; cap per scale
	maxSamples := 50000
	if scale == Tiny {
		maxSamples = 5000
	}
	if len(zbar) > maxSamples {
		zbar = zbar[:maxSamples]
	}

	res := &Fig4Result{FinalTau: map[string]float64{}}
	const window = 20 // the paper's Fig. 4 uses T=20
	for _, tau := range []float64{18, 2} {
		start := kernel.Kernel{Tau: tau, Td: 0, T: window}
		out, err := kernel.Optimize(start, zbar, kernel.OptimizeConfig{
			LRTau: 2, LRTd: 0.2, BatchSize: 256, Epochs: 1,
			RNG: tensor.NewRNG(41),
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("tau=%g", tau)
		var x, prec, min, max []float64
		for _, h := range out.History {
			x = append(x, float64(h.SamplesSeen))
			prec = append(prec, h.Prec)
			min = append(min, h.Min)
			max = append(max, h.Max)
		}
		res.PanelA = append(res.PanelA,
			Series{Name: "Lprec(" + label + ")", X: x, Y: prec},
			Series{Name: "Lmin(" + label + ")", X: x, Y: min})
		res.PanelB = append(res.PanelB,
			Series{Name: "Lmax(" + label + ")", X: x, Y: max})
		res.FinalTau[label] = out.Kernel.Tau
	}

	res.Report = RenderSeries("Fig 4(a): precision & min-representation losses (T=20)", "#data", res.PanelA) +
		RenderSeries("Fig 4(b): max-representation loss (T=20)", "#data", res.PanelB) +
		fmt.Sprintf("final tau: from 2 -> %.2f, from 18 -> %.2f\n",
			res.FinalTau["tau=2"], res.FinalTau["tau=18"])
	return res, nil
}
