package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snn"
)

// FaultModel names one fault family and maps an intensity level onto a
// fault.Config. Level 0 must always mean "no fault" so retention can be
// normalized against the clean run of the same sweep.
type FaultModel struct {
	Name   string
	Levels []float64
	Config func(level float64) fault.Config
}

// DefaultFaultModels returns the canonical sweep: spike drop, delivery
// jitter, stuck-at-silent neurons, threshold noise, and static weight
// perturbation.
func DefaultFaultModels() []FaultModel {
	return []FaultModel{
		{
			Name:   "drop",
			Levels: []float64{0, 0.05, 0.1, 0.2, 0.3},
			Config: func(l float64) fault.Config { return fault.Config{Drop: l} },
		},
		{
			Name:   "jitter",
			Levels: []float64{0, 1, 2, 4},
			Config: func(l float64) fault.Config { return fault.Config{Jitter: int(l)} },
		},
		{
			Name:   "stuck-silent",
			Levels: []float64{0, 0.02, 0.05, 0.1},
			Config: func(l float64) fault.Config { return fault.Config{StuckSilent: l} },
		},
		{
			Name:   "threshold-noise",
			Levels: []float64{0, 0.05, 0.1, 0.2},
			Config: func(l float64) fault.Config { return fault.Config{ThresholdNoise: l} },
		},
		{
			Name:   "weight-noise",
			Levels: []float64{0, 0.05, 0.1, 0.2},
			Config: func(l float64) fault.Config { return fault.Config{WeightNoise: l} },
		},
	}
}

// FaultModelsByName selects a subset of DefaultFaultModels.
func FaultModelsByName(names []string) ([]FaultModel, error) {
	all := DefaultFaultModels()
	if len(names) == 0 {
		return all, nil
	}
	var out []FaultModel
	for _, n := range names {
		found := false
		for _, fm := range all {
			if fm.Name == n {
				out = append(out, fm)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown fault model %q", n)
		}
	}
	return out, nil
}

// ResilienceOptions configures the sweep. Zero values pick the canonical
// defaults.
type ResilienceOptions struct {
	Dataset string   // default "mnist"
	Schemes []string // subset of ttfs|rate|phase|burst; default all four
	Faults  []FaultModel
	Seed    uint64 // fault stream seed; default 42
	Workers int    // TTFS evaluation workers; default -1 (GOMAXPROCS)
}

// ResilienceRow is one (fault, level, scheme) cell of the sweep.
type ResilienceRow struct {
	Fault     string
	Level     float64
	Scheme    string
	Accuracy  float64
	Retention float64 // Accuracy / clean accuracy of the same scheme
	AvgSpikes float64
	Failures  int // samples whose inference panicked (TTFS only)
}

// ResilienceResult is the accuracy-versus-fault-rate sweep across coding
// schemes — the robustness counterpart of the paper's Table II. TTFS
// concentrates each activation into a single spike time, so it degrades
// fastest; rate coding spreads the same information over many spikes and
// degrades gracefully.
type ResilienceResult struct {
	Rows   []ResilienceRow
	Report string
}

// Retention returns the retention of one sweep cell (or -1 if absent).
func (r *ResilienceResult) Retention(scheme, faultName string, level float64) float64 {
	for _, row := range r.Rows {
		if row.Scheme == scheme && row.Fault == faultName && row.Level == level {
			return row.Retention
		}
	}
	return -1
}

// pipeline is one evaluated scheme: TTFS runs the event-driven core
// model, the baselines run the clock-driven simulators.
type pipeline struct {
	name string
	eval func(net *snn.Net, inj *fault.Injector) (acc, spikes float64, failures int, err error)
}

// Resilience runs the fault sweep at the given scale. Every fault
// decision derives from (opts.Seed, sample, boundary, neuron, step), so
// the result is deterministic for a fixed seed at any worker count.
func Resilience(scale Scale, opts ResilienceOptions, cacheDir string, log io.Writer) (*ResilienceResult, error) {
	if opts.Dataset == "" {
		opts.Dataset = "mnist"
	}
	if len(opts.Schemes) == 0 {
		opts.Schemes = []string{"ttfs", "rate", "phase", "burst"}
	}
	if len(opts.Faults) == 0 {
		opts.Faults = DefaultFaultModels()
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	if opts.Workers == 0 {
		opts.Workers = -1
	}
	p, err := ParamsFor(opts.Dataset, scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	ttfs, err := core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		return nil, err
	}

	// One pool serves the whole sweep: the TTFS cells hand it to
	// core.Evaluate and the clock-driven baselines to coding.EvaluateSweep,
	// so every (fault, level, scheme) cell reuses the same warm workers and
	// scratch arenas instead of spawning goroutines per cell.
	pool := core.NewPool(core.ParallelOpts{Workers: opts.Workers})
	defer pool.Close()

	pipes := make([]pipeline, 0, len(opts.Schemes))
	for _, name := range opts.Schemes {
		switch name {
		case "ttfs":
			pipes = append(pipes, pipeline{name: "TTFS", eval: func(net *snn.Net, inj *fault.Injector) (float64, float64, int, error) {
				m := ttfs
				if net != s.Conv.Net { // weight-perturbed copy
					m = &core.Model{Net: net, K: ttfs.K, T: ttfs.T}
				}
				ev, err := core.Evaluate(m, s.EvalX, s.EvalY, core.EvalOptions{
					Run: core.RunConfig{EarlyFire: true, EFStart: p.EFStart()}, Faults: inj, Pool: pool})
				if err != nil {
					return 0, 0, 0, err
				}
				return ev.Accuracy, ev.AvgSpikes, len(ev.Errors), nil
			}})
		case "rate", "phase", "burst":
			var scheme coding.Scheme
			var steps int
			switch name {
			case "rate":
				scheme, steps = coding.Rate{}, p.RateSteps
			case "phase":
				scheme, steps = coding.Phase{}, p.PhaseSteps
			default:
				scheme, steps = coding.Burst{}, p.BurstSteps
			}
			sc, st := scheme, steps
			pipes = append(pipes, pipeline{name: sc.Name(), eval: func(net *snn.Net, inj *fault.Injector) (float64, float64, int, error) {
				ev, err := coding.EvaluateSweep(sc, net, s.EvalX, s.EvalY,
					coding.SweepOpts{Steps: st, Stride: p.CurveStride, Faults: inj, Pool: pool})
				if err != nil {
					return 0, 0, 0, err
				}
				return ev.Accuracy, ev.AvgSpikes, 0, nil
			}})
		default:
			return nil, fmt.Errorf("experiments: unknown scheme %q (want ttfs|rate|phase|burst)", name)
		}
	}

	res := &ResilienceResult{}
	clean := map[string]float64{} // scheme -> level-0 accuracy of the current fault model
	for _, fm := range opts.Faults {
		for _, level := range fm.Levels {
			cfg := fm.Config(level)
			cfg.Seed = opts.Seed
			inj, err := fault.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s level %g: %w", fm.Name, level, err)
			}
			net := s.Conv.Net
			if cfg.WeightNoise > 0 {
				// static model corruption: perturb once, evaluate fault-free
				net = fault.PerturbWeights(s.Conv.Net, cfg.WeightNoise, cfg.Seed)
			}
			for _, pl := range pipes {
				if log != nil {
					fmt.Fprintf(log, "resilience: %s %s=%g\n", pl.name, fm.Name, level)
				}
				acc, spikes, failures, err := pl.eval(net, inj)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s under %s=%g: %w", pl.name, fm.Name, level, err)
				}
				if level == 0 {
					clean[pl.name] = acc
				}
				ret := 0.0
				if c := clean[pl.name]; c > 0 {
					ret = acc / c
				}
				res.Rows = append(res.Rows, ResilienceRow{
					Fault: fm.Name, Level: level, Scheme: pl.name,
					Accuracy: acc, Retention: ret, AvgSpikes: spikes, Failures: failures,
				})
			}
		}
	}

	t := Table{
		Title: fmt.Sprintf("Resilience: accuracy under fault injection (%s, scale %s, seed %d)",
			opts.Dataset, scale, opts.Seed),
		Headers: []string{"Fault", "Level", "Scheme", "Accuracy", "Retention", "Spikes/sample"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Fault, trimFloat(r.Level), r.Scheme,
			fmt.Sprintf("%.2f%%", 100*r.Accuracy), fmt.Sprintf("%.2f", r.Retention),
			fmt.Sprintf("%.0f", r.AvgSpikes))
	}
	res.Report = t.String()
	return res, nil
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}
