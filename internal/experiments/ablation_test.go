package experiments

import (
	"strings"
	"testing"
)

func TestAblationShape(t *testing.T) {
	res, err := Ablation(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EFStart) != 3 || len(res.Percentile) != 3 || len(res.TauInit) != 4 {
		t.Fatalf("sweep sizes: EF=%d pct=%d tau=%d", len(res.EFStart), len(res.Percentile), len(res.TauInit))
	}
	// earlier firing start -> lower latency, monotonically
	for i := 1; i < len(res.EFStart); i++ {
		if res.EFStart[i].Param > res.EFStart[i-1].Param &&
			res.EFStart[i].Latency <= res.EFStart[i-1].Latency {
			t.Fatalf("latency not increasing with EF start: %+v", res.EFStart)
		}
	}
	// full-window EF (start=T) is the guaranteed-integration baseline;
	// its accuracy anchors the trade-off
	last := res.EFStart[len(res.EFStart)-1]
	first := res.EFStart[0]
	if first.Accuracy > last.Accuracy+0.25 {
		t.Fatalf("aggressive EF should not dominate baseline: %+v", res.EFStart)
	}
	// tiny τ must lose accuracy against a reasonable τ (the coverage/
	// precision trade-off); compare the extremes
	tiny := res.TauInit[0]
	best := res.TauInit[2] // T/4, the default
	if tiny.Accuracy > best.Accuracy+0.1 {
		t.Fatalf("τ=%v should not beat τ=%v: %+v", tiny.Param, best.Param, res.TauInit)
	}
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C"} {
		if !strings.Contains(res.Report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestDeployShape(t *testing.T) {
	res, err := Deploy(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QuantRows) != 6 || len(res.Mappings) != 2 {
		t.Fatalf("rows: %d quant, %d mappings", len(res.QuantRows), len(res.Mappings))
	}
	// float reference first, with zero RMS error
	if res.QuantRows[0].Bits != 0 || res.QuantRows[0].RMSError != 0 {
		t.Fatalf("first row should be the float reference: %+v", res.QuantRows[0])
	}
	// RMS error grows as width shrinks
	prev := -1.0
	for _, r := range res.QuantRows[1:] {
		if r.RMSError <= prev {
			t.Fatalf("RMS error not increasing with narrower widths: %+v", res.QuantRows)
		}
		prev = r.RMSError
	}
	// 12-bit accuracy tracks float; 3-bit must not beat it
	byBits := map[int]DeployQuantRow{}
	for _, r := range res.QuantRows {
		byBits[r.Bits] = r
	}
	if byBits[12].Accuracy < byBits[0].Accuracy-0.1 {
		t.Fatalf("12-bit accuracy collapsed: %+v", byBits[12])
	}
	if byBits[3].Accuracy > byBits[12].Accuracy {
		t.Fatalf("3-bit should not beat 12-bit: %+v vs %+v", byBits[3], byBits[12])
	}
	// traffic ≥ raw spikes on every fabric
	for _, m := range res.Mappings {
		if m.Traffic < m.RawSpikes {
			t.Fatalf("%s traffic %v below raw spikes %v", m.Fabric, m.Traffic, m.RawSpikes)
		}
	}
	// pruning sweep: dense reference first, extreme sparsity worst
	if len(res.PruneRows) != 5 || res.PruneRows[0].Sparsity != 0 {
		t.Fatalf("prune rows: %+v", res.PruneRows)
	}
	if last := res.PruneRows[4]; last.Accuracy > res.PruneRows[0].Accuracy+0.05 {
		t.Fatalf("90%% sparsity should not beat dense: %+v", res.PruneRows)
	}
	if !strings.Contains(res.Report, "Deploy A") || !strings.Contains(res.Report, "TrueNorth") {
		t.Fatal("report incomplete")
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(Tiny, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Overlap() != 0 {
		t.Fatalf("baseline overlap %d", res.Baseline.Overlap())
	}
	if res.EarlyFire.Overlap() == 0 {
		t.Fatal("EF schedule shows no overlap")
	}
	if res.EarlyFire.Latency >= res.Baseline.Latency {
		t.Fatalf("EF latency %d not below baseline %d", res.EarlyFire.Latency, res.Baseline.Latency)
	}
	if !strings.Contains(res.Report, "Fig 3(a)") || !strings.Contains(res.Report, "x") {
		t.Fatal("report incomplete")
	}
}
