package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// VariantName identifies one row of the ablation (Table I).
type VariantName string

// The four ablation variants of Table I.
const (
	VarBase VariantName = "T2FSNN"
	VarGO   VariantName = "T2FSNN+GO"
	VarEF   VariantName = "T2FSNN+EF"
	VarGOEF VariantName = "T2FSNN+GO+EF"
)

// Variant couples a model with a pipeline configuration.
type Variant struct {
	Name  VariantName
	Model *core.Model
	Run   core.RunConfig
}

// BuildModels constructs the baseline model (empirically initialized
// kernels) and the GO model (kernels optimized on the conversion
// activations) for a setup.
func BuildModels(s *Setup) (base, optimized *core.Model, traces []kernel.OptimizeResult, err error) {
	p := s.Params
	base, err = core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		return nil, nil, nil, err
	}
	optimized, err = core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		return nil, nil, nil, err
	}
	traces, err = optimized.ApplyGO(s.InputPixels(200), s.Conv.Activations, kernel.OptimizeConfig{
		LRTau: 2, LRTd: 0.2, BatchSize: 512, Epochs: 2, RNG: tensor.NewRNG(p.Seed + 300),
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: gradient-based optimization: %w", err)
	}
	return base, optimized, traces, nil
}

// Variants returns the four Table I rows for a setup.
func Variants(s *Setup) ([]Variant, error) {
	base, opt, _, err := BuildModels(s)
	if err != nil {
		return nil, err
	}
	ef := core.RunConfig{EarlyFire: true, EFStart: s.Params.EFStart()}
	return []Variant{
		{Name: VarBase, Model: base, Run: core.RunConfig{}},
		{Name: VarGO, Model: opt, Run: core.RunConfig{}},
		{Name: VarEF, Model: base, Run: ef},
		{Name: VarGOEF, Model: opt, Run: ef},
	}, nil
}

// EvalVariant evaluates one variant on the setup's evaluation subset.
func EvalVariant(s *Setup, v Variant, opts core.EvalOptions) (core.EvalResult, error) {
	opts.Run = v.Run
	return core.Evaluate(v.Model, s.EvalX, s.EvalY, opts)
}
