package experiments

import (
	"io"

	"repro/internal/core"
)

// Fig3Result renders the paper's Fig. 3 pipeline timing diagrams from
// the actual scheduling math the simulator uses (not a drawing): panel
// (a) the baseline integrate-then-fire pipeline, panel (b) the
// early-firing overlap with its non-guaranteed integration region.
type Fig3Result struct {
	Baseline  core.Schedule
	EarlyFire core.Schedule
	Report    string
}

// Fig3 builds the timing diagrams for the CIFAR-like network.
func Fig3(scale Scale, cacheDir string, log io.Writer) (*Fig3Result, error) {
	p, err := ParamsFor("cifar10", scale)
	if err != nil {
		return nil, err
	}
	s, err := Prepare(p, cacheDir, log)
	if err != nil {
		return nil, err
	}
	m, err := core.NewModel(s.Conv.Net, p.T, p.TauInit, p.TdInit)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Baseline:  m.BuildSchedule(core.RunConfig{}),
		EarlyFire: m.BuildSchedule(core.RunConfig{EarlyFire: true, EFStart: p.EFStart()}),
	}
	cols := 100.0 / float64(res.Baseline.Latency)
	res.Report = "Fig 3(a): baseline pipeline (i=integration, f=fire)\n" +
		res.Baseline.Render(cols) +
		"\nFig 3(b): early firing (x = overlapped fire/integration, non-guaranteed)\n" +
		res.EarlyFire.Render(cols)
	return res, nil
}
