// Package hw models deployment of a converted spiking network onto a
// neuromorphic many-core fabric: how many cores each layer occupies
// under neuron- and fan-in-capacity constraints, how utilized they are,
// and how much spike traffic crosses the network-on-chip for a measured
// workload. It extends the paper's TrueNorth/SpiNNaker energy constants
// (internal/energy) with the placement/traffic side a hardware team
// would ask about first.
package hw

import (
	"fmt"
	"strings"

	"repro/internal/snn"
)

// Fabric describes a neuromorphic chip's per-core capacities.
type Fabric struct {
	Name string
	// NeuronsPerCore is the number of neuron circuits per core
	// (TrueNorth: 256).
	NeuronsPerCore int
	// FanInPerCore caps the distinct axon inputs a core accepts
	// (TrueNorth: 256; crossbar width).
	FanInPerCore int
}

// Reference fabrics. TrueNorth's 256×256 crossbar is published; the
// SpiNNaker figure models a software core simulating ~1000 neurons.
var (
	TrueNorth = Fabric{Name: "TrueNorth", NeuronsPerCore: 256, FanInPerCore: 256}
	SpiNNaker = Fabric{Name: "SpiNNaker", NeuronsPerCore: 1000, FanInPerCore: 4096}
)

// LayerPlacement is the mapping of one stage onto cores.
type LayerPlacement struct {
	Stage string
	// Neurons is the stage's neuron count; FanIn the per-neuron
	// synaptic inputs (kernel volume for conv, full input for dense).
	Neurons int
	FanIn   int
	// Cores is the number of cores the stage occupies; Utilization the
	// fraction of neuron circuits in use across them.
	Cores       int
	Utilization float64
	// ReplicationFactor counts how many cores each input axon must be
	// delivered to (fan-in splitting forces multicast).
	ReplicationFactor int
}

// Mapping is a whole-network placement.
type Mapping struct {
	Fabric Fabric
	Layers []LayerPlacement
	// TotalCores across all stages.
	TotalCores int
}

// Map places every stage of net onto the fabric. Each stage is packed
// independently (layer-per-core-group, the standard feedforward
// placement); a stage whose per-neuron fan-in exceeds the core's
// crossbar width splits its dendritic trees across ⌈fanIn/cap⌉ cores,
// multiplying both the core count and the input multicast factor.
func Map(net *snn.Net, fabric Fabric) (*Mapping, error) {
	if fabric.NeuronsPerCore <= 0 || fabric.FanInPerCore <= 0 {
		return nil, fmt.Errorf("hw: fabric %q has non-positive capacities", fabric.Name)
	}
	m := &Mapping{Fabric: fabric}
	for i := range net.Stages {
		st := &net.Stages[i]
		fanIn := stageFanIn(st)
		split := ceilDiv(fanIn, fabric.FanInPerCore)
		coreGroups := ceilDiv(st.OutLen, fabric.NeuronsPerCore)
		cores := coreGroups * split
		util := float64(st.OutLen) / float64(coreGroups*fabric.NeuronsPerCore)
		m.Layers = append(m.Layers, LayerPlacement{
			Stage: st.Name, Neurons: st.OutLen, FanIn: fanIn,
			Cores: cores, Utilization: util, ReplicationFactor: split,
		})
		m.TotalCores += cores
	}
	return m, nil
}

// stageFanIn returns the per-neuron synaptic input count of a stage.
func stageFanIn(st *snn.Stage) int {
	fanIn := 0
	switch st.Kind {
	case snn.ConvStage:
		fanIn = st.Geom.InC * st.Geom.KH * st.Geom.KW
	default:
		fanIn = st.W.Shape[0]
	}
	if st.PrePool != nil {
		// pooled inputs multiply the distinct axons reaching a neuron
		fanIn *= st.PrePool.K * st.PrePool.K
	}
	return fanIn
}

// Traffic estimates network-on-chip spike deliveries for a workload:
// each boundary's spike count times the multicast factor of the stage
// consuming it. spikesPerBoundary follows the simulator convention
// (index 0 = input encoding, i = stage i−1 output).
func (m *Mapping) Traffic(spikesPerBoundary []float64) (float64, error) {
	if len(spikesPerBoundary) != len(m.Layers) {
		return 0, fmt.Errorf("hw: %d boundaries for %d placed layers", len(spikesPerBoundary), len(m.Layers))
	}
	total := 0.0
	for b, s := range spikesPerBoundary {
		total += s * float64(m.Layers[b].ReplicationFactor)
	}
	return total, nil
}

// Report renders the mapping as a table.
func (m *Mapping) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapping onto %s (%d neurons/core, %d fan-in/core): %d cores\n",
		m.Fabric.Name, m.Fabric.NeuronsPerCore, m.Fabric.FanInPerCore, m.TotalCores)
	fmt.Fprintf(&b, "%-10s %8s %7s %6s %6s %5s\n", "stage", "neurons", "fan-in", "cores", "util", "mcast")
	for _, l := range m.Layers {
		fmt.Fprintf(&b, "%-10s %8d %7d %6d %5.0f%% %5d\n",
			l.Stage, l.Neurons, l.FanIn, l.Cores, 100*l.Utilization, l.ReplicationFactor)
	}
	return b.String()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
