package hw

import (
	"strings"
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestMapFixtureOntoTrueNorth(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := Map(fx.Conv.Net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 4 {
		t.Fatalf("placed %d layers", len(m.Layers))
	}
	if m.TotalCores <= 0 {
		t.Fatal("no cores allocated")
	}
	// Conv1 on 16x16 with 8 channels = 2048 neurons -> ≥ 8 cores of 256
	if m.Layers[0].Cores < 8 {
		t.Fatalf("Conv1 cores = %d, want ≥ 8", m.Layers[0].Cores)
	}
	// utilization is a fraction
	for _, l := range m.Layers {
		if l.Utilization <= 0 || l.Utilization > 1 {
			t.Fatalf("%s utilization %v out of (0,1]", l.Stage, l.Utilization)
		}
	}
}

func TestFanInSplittingForcesMulticast(t *testing.T) {
	// dense stage with fan-in 600 on a 256-wide crossbar: 3-way split
	w := tensor.New(600, 10)
	net := &snn.Net{
		Name: "wide", InShape: []int{600}, InLen: 600,
		Stages: []snn.Stage{{
			Name: "fc", Kind: snn.DenseStage, W: w, B: tensor.New(10),
			InLen: 600, OutLen: 10, Output: true,
		}},
	}
	m, err := Map(net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layers[0]
	if l.ReplicationFactor != 3 {
		t.Fatalf("multicast factor = %d, want 3", l.ReplicationFactor)
	}
	if l.Cores != 3 { // 10 neurons fit one core group, ×3 splits
		t.Fatalf("cores = %d, want 3", l.Cores)
	}
}

func TestPooledStageFanIn(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := Map(fx.Conv.Net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	// Conv2 has a 2x2 pre-pool: its distinct-axon fan-in is 4× the
	// kernel volume (8 ch × 3×3 taps × 4 pooled inputs = 288)
	if got := m.Layers[1].FanIn; got != 8*9*4 {
		t.Fatalf("pooled conv fan-in = %d, want 288", got)
	}
}

func TestTraffic(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := Map(fx.Conv.Net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	spikes := []float64{100, 50, 20, 5}
	tr, err := m.Traffic(spikes)
	if err != nil {
		t.Fatal(err)
	}
	// traffic is at least the raw spike count (multicast ≥ 1)
	if tr < 175 {
		t.Fatalf("traffic %v below raw spikes", tr)
	}
	if _, err := m.Traffic([]float64{1}); err == nil {
		t.Fatal("boundary mismatch accepted")
	}
}

func TestSpiNNakerNeedsFewerCores(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	tn, err := Map(fx.Conv.Net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := Map(fx.Conv.Net, SpiNNaker)
	if err != nil {
		t.Fatal(err)
	}
	if sn.TotalCores >= tn.TotalCores {
		t.Fatalf("SpiNNaker (%d cores) should pack denser than TrueNorth (%d)",
			sn.TotalCores, tn.TotalCores)
	}
}

func TestMapRejectsBadFabric(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	if _, err := Map(fx.Conv.Net, Fabric{Name: "broken"}); err == nil {
		t.Fatal("zero-capacity fabric accepted")
	}
}

func TestReportRenders(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := Map(fx.Conv.Net, TrueNorth)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	for _, want := range []string{"TrueNorth", "Conv1", "mcast"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
