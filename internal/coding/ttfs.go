package coding

import (
	"repro/internal/core"
	"repro/internal/snn"
)

// TTFS adapts a T2FSNN model (internal/core) to the Scheme interface so
// it can be driven by the same evaluation harness as the baselines. The
// steps argument of Run is a horizon: the pipeline's own latency is used
// when it is shorter, and the timeline is truncated when it is longer.
type TTFS struct {
	Model *core.Model
	Run_  core.RunConfig
	Label string
}

// Name implements Scheme.
func (t TTFS) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "T2FSNN"
}

// Run implements Scheme. With opts.EarlyExit it routes the sample down
// the event engine so the output window can stop at the undominated
// winner; otherwise it runs the clocked reference engine.
func (t TTFS) Run(net *snn.Net, input []float64, opts RunOpts) snn.SimResult {
	cfg := t.Run_
	cfg.CollectTimeline = opts.CollectTimeline
	cfg.Faults = opts.Faults
	var sc *core.InferScratch
	if opts.Scratch != nil {
		sc = opts.Scratch.CoreScratch(t.Model)
	}
	io := core.InferOpts{Scratch: sc}
	if opts.EarlyExit {
		cfg.EarlyExit = true
		io.Engine = core.EngineEvent
	}
	r := t.Model.InferOne(input, cfg, io)
	out := snn.SimResult{
		Pred:           r.Pred,
		Steps:          r.Latency,
		TotalSpikes:    r.TotalSpikes,
		SpikesPerStage: r.Spikes,
		Potentials:     r.Potentials,
	}
	for _, tp := range r.Timeline {
		if opts.Steps > 0 && tp.Step > opts.Steps {
			break
		}
		out.Timeline = append(out.Timeline, snn.TimedPred{Step: tp.Step, Pred: tp.Pred})
	}
	return out
}
