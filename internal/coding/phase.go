package coding

import (
	"math"

	"repro/internal/fault"
	"repro/internal/snn"
)

// Phase is phase coding with weighted spikes (Kim et al. 2018): a global
// oscillator of period K assigns spike weight 2^−(1+t mod K) to every
// spike, so one period transmits a K-bit binary expansion of each
// activation. It needs far fewer spikes than rate coding but, as the
// paper notes, its efficiency degrades when hidden activations do not
// match the fixed phase pattern.
type Phase struct {
	// Period is the oscillator period K (default 8).
	Period int
}

// Name implements Scheme.
func (Phase) Name() string { return "Phase" }

func (p Phase) period() int {
	if p.Period <= 0 {
		return 8
	}
	return p.Period
}

// Run implements Scheme.
func (p Phase) Run(net *snn.Net, input []float64, opts RunOpts) snn.SimResult {
	steps, fs := opts.Steps, opts.Faults
	k := p.period()
	nStages := len(net.Stages)
	gates := boundaryGates(fs, nStages)

	sc := scratchFor(opts)
	res := newSimResult(sc, net, steps)

	// Quantize inputs once: bit b of round(u·2^K) selects a spike at
	// phase b carrying weight 2^-(1+b).
	bits := sc.uint32s(net.InLen)
	for i, u := range input {
		q := uint32(math.Round(snnClamp(u, 0, 1) * float64(uint32(1)<<k)))
		if q >= 1<<k {
			q = 1<<k - 1
		}
		bits[i] = q
	}

	pot := sc.potentials(net)
	spikeBuf := sc.spikeBufs(net)

	for t := 0; t < steps; t++ {
		phase := t % k
		weight := math.Exp2(-float64(1 + phase))

		// input: emit the bit for this phase, every period
		spikeBuf[0] = spikeBuf[0][:0]
		bit := uint32(1) << (k - 1 - phase)
		for i, q := range bits {
			if fs != nil {
				switch fs.Stuck(0, i) {
				case fault.StuckSilent:
					continue
				case fault.StuckFire:
					spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: weight})
					continue
				}
			}
			if q&bit != 0 {
				spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: weight})
			}
		}

		for si := range net.Stages {
			st := &net.Stages[si]
			if phase == 0 {
				// biases inject their value once per period
				st.AddBias(pot[si])
			}
			in := gateStep(gates, si, t, spikeBuf[si])
			res.SpikesPerStage[si] += len(in)
			for _, s := range in {
				st.Scatter(s.Idx, s.W, pot[si])
			}
			if st.Output {
				break
			}
			spikeBuf[si+1] = spikeBuf[si+1][:0]
			pp := pot[si]
			for j := range pp {
				if fs != nil {
					switch fs.Stuck(si+1, j) {
					case fault.StuckSilent:
						continue
					case fault.StuckFire:
						spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: weight})
						continue
					}
				}
				// fire a weighted spike when the membrane covers the
				// current phase weight (phase-modulated threshold)
				thr := weight
				if fs != nil {
					thr = fs.Threshold(si+1, t, thr)
				}
				if pp[j] >= thr {
					pp[j] -= weight
					spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: weight})
				}
			}
		}
		if opts.CollectTimeline {
			res.RecordPred(t, pot[nStages-1])
		}
	}
	res.Pred = snn.ArgMax(pot[nStages-1])
	res.Potentials = pot[nStages-1]
	res.CountSpikes()
	return res
}

func snnClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
