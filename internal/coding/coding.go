// Package coding implements the three baseline neural coding schemes the
// paper compares T2FSNN against: rate coding (Diehl 2015 / Rueckauer
// 2017), phase coding with weighted spikes (Kim 2018), and burst coding
// (Park, DAC 2019). All three run the same converted network
// (internal/convert) under a clock-driven integrate-and-fire simulation
// and report spikes, decision timelines and accuracy-versus-time curves
// for Fig. 6 and Tables II–III.
package coding

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// RunOpts configures one scheme simulation, mirroring core.RunConfig so
// the serving layer and the experiments call every engine with one
// shape. The zero value (plus a Steps horizon) is the plain fault-free
// run.
type RunOpts struct {
	// Steps is the simulation horizon in global time steps. Schemes
	// with an intrinsic latency (TTFS) treat it as a timeline cap; 0
	// means "the scheme's own latency".
	Steps int
	// CollectTimeline retains the output-potential argmax trajectory
	// for inference curves (costs memory; off by default).
	CollectTimeline bool
	// Faults is the sample's fault-injection stream (internal/fault);
	// nil injects nothing and the simulation is bit-identical to the
	// fault-free path.
	Faults *fault.Stream
	// Scratch supplies the simulation's reusable working buffers so a
	// sustained caller allocates nothing per Run; nil falls back to a
	// fresh single-use scratch. See Scratch for the aliasing contract.
	Scratch *Scratch
	// EarlyExit lets the scheme stop integrating its output window once
	// the predicted class is provably settled (core's undominated-winner
	// rule). Only the TTFS adapter's event engine implements it; the
	// rate/phase/burst baselines integrate their full horizon by
	// construction and ignore the flag, as does any run that collects a
	// timeline. The prediction is unchanged either way.
	EarlyExit bool
}

// Scheme simulates one input (flattened [C,H,W], values in [0,1])
// through net under the given options.
type Scheme interface {
	Name() string
	Run(net *snn.Net, input []float64, opts RunOpts) snn.SimResult
}

// CurvePoint is one accuracy sample of an inference curve, shared with
// internal/core via internal/metrics.
type CurvePoint = metrics.CurvePoint

// EvalResult aggregates a scheme over a labelled evaluation set.
type EvalResult struct {
	SchemeName string
	Accuracy   float64
	AvgSpikes  float64
	Steps      int
	Curve      []CurvePoint
	// ConvergenceStep is the first curve step whose accuracy is within
	// Tolerance of the final accuracy — the "latency" the paper reports
	// for rate/phase/burst coding.
	ConvergenceStep int
	N               int
}

// Tolerance is the absolute accuracy slack used to declare convergence.
const Tolerance = 0.005

// SweepOpts configures an evaluation sweep over a labelled set.
type SweepOpts struct {
	// Steps is the simulation horizon per sample.
	Steps int
	// Stride samples the accuracy curve every Stride steps (≤0 means
	// Steps/50, minimum 1).
	Stride int
	// Faults runs sample i with the per-sample stream Faults.Sample(i)
	// (nil = no faults).
	Faults *fault.Injector
	// Pool fans samples across a shared worker pool with one Scratch per
	// worker; nil (or a single-worker pool) runs the sequential
	// one-scratch sweep. Results are identical at any worker count:
	// every scheme's Run is a pure function of (input, sample stream) —
	// even Poisson rate coding reseeds its generator per Run — and the
	// retained fields (Pred, TotalSpikes, Timeline) never alias scratch
	// memory.
	Pool *core.Pool
}

// Evaluate runs scheme over a batch X [N, ...] with labels for the given
// number of steps, sampling the accuracy curve every stride steps.
func Evaluate(s Scheme, net *snn.Net, x *tensor.Tensor, labels []int, steps, stride int) (EvalResult, error) {
	return EvaluateSweep(s, net, x, labels, SweepOpts{Steps: steps, Stride: stride})
}

// EvaluateFaulted is Evaluate under fault injection: each sample i runs
// with the per-sample stream inj.Sample(i) (nil inj = no faults).
func EvaluateFaulted(s Scheme, net *snn.Net, x *tensor.Tensor, labels []int, steps, stride int, inj *fault.Injector) (EvalResult, error) {
	return EvaluateSweep(s, net, x, labels, SweepOpts{Steps: steps, Stride: stride, Faults: inj})
}

// EvaluateSweep is the full-control sweep: fault injection plus
// optional data-parallel execution over a shared core.Pool.
func EvaluateSweep(s Scheme, net *snn.Net, x *tensor.Tensor, labels []int, opts SweepOpts) (EvalResult, error) {
	n := x.Shape[0]
	if n == 0 || n != len(labels) {
		return EvalResult{}, fmt.Errorf("coding: %d samples with %d labels", n, len(labels))
	}
	sampleLen := x.Len() / n
	if sampleLen != net.InLen {
		return EvalResult{}, fmt.Errorf("coding: sample length %d, network expects %d", sampleLen, net.InLen)
	}
	steps, stride, inj := opts.Steps, opts.Stride, opts.Faults
	if stride <= 0 {
		stride = steps / 50
		if stride == 0 {
			stride = 1
		}
	}
	res := EvalResult{SchemeName: s.Name(), Steps: steps, N: n}
	preds := make([]int, n)
	spikes := make([]int, n)
	timelines := make([][]snn.TimedPred, n)
	// Only Timeline/Pred/TotalSpikes are retained across samples, none of
	// which alias scratch memory — so one scratch per worker (or one for
	// the whole sequential sweep) is safe.
	runRange := func(lo, hi int, sc *Scratch) {
		for i := lo; i < hi; i++ {
			in := x.Data[i*sampleLen : (i+1)*sampleLen]
			r := s.Run(net, in, RunOpts{Steps: steps, CollectTimeline: true, Faults: inj.Sample(i), Scratch: sc})
			preds[i] = r.Pred
			spikes[i] = r.TotalSpikes
			timelines[i] = r.Timeline
		}
	}
	if w := opts.Pool.Workers(); w > 1 {
		scratches := make([]*Scratch, w)
		chunk := n / (w * 4)
		if chunk < 1 {
			chunk = 1
		}
		opts.Pool.Each(n, chunk, func(lo, hi, worker int) {
			if scratches[worker] == nil {
				scratches[worker] = NewScratch()
			}
			runRange(lo, hi, scratches[worker])
		})
	} else {
		runRange(0, n, NewScratch())
	}
	correct := 0
	totalSpikes := 0.0
	for i := 0; i < n; i++ {
		if preds[i] == labels[i] {
			correct++
		}
		totalSpikes += float64(spikes[i])
	}
	res.Accuracy = float64(correct) / float64(n)
	res.AvgSpikes = totalSpikes / float64(n)
	for step := 0; step <= steps; step += stride {
		hit := 0
		for i, tl := range timelines {
			if predAt(tl, step) == labels[i] {
				hit++
			}
		}
		res.Curve = append(res.Curve, CurvePoint{Step: step, Accuracy: float64(hit) / float64(n)})
	}
	res.ConvergenceStep = ConvergenceStep(res.Curve, res.Accuracy)
	return res, nil
}

// ConvergenceStep returns the first curve step whose accuracy is within
// Tolerance of final; if the curve is empty it returns 0.
func ConvergenceStep(curve []CurvePoint, final float64) int {
	for _, p := range curve {
		if p.Accuracy >= final-Tolerance {
			return p.Step
		}
	}
	if len(curve) > 0 {
		return curve[len(curve)-1].Step
	}
	return 0
}

func predAt(tl []snn.TimedPred, step int) int {
	pred := -1
	for _, tp := range tl {
		if tp.Step > step {
			break
		}
		pred = tp.Pred
	}
	return pred
}

// newSimResult builds the result for a network with the standard
// stage-boundary spike accounting, its tally drawn from the scratch's
// results arena (the scratch aliasing contract covers SpikesPerStage).
func newSimResult(sc *Scratch, net *snn.Net, steps int) snn.SimResult {
	// Boundary 0 is the input encoding; boundary i is stage i-1's fire
	// output. The final (Output) stage never fires, so there are exactly
	// len(Stages) boundaries — the same accounting internal/core uses.
	return snn.SimResult{
		Steps:          steps,
		SpikesPerStage: sc.stageCounts(len(net.Stages)),
	}
}
