package coding

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func ttfsScheme(t *testing.T) (TTFS, *testutil.Fixture) {
	t.Helper()
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return TTFS{Model: m}, fx
}

func TestTTFSAdapterName(t *testing.T) {
	s, _ := ttfsScheme(t)
	if s.Name() != "T2FSNN" {
		t.Fatalf("name = %s", s.Name())
	}
	s.Label = "T2FSNN+EF"
	if s.Name() != "T2FSNN+EF" {
		t.Fatal("label override broken")
	}
}

func TestTTFSAdapterMatchesDirectInfer(t *testing.T) {
	s, fx := ttfsScheme(t)
	in := fx.X.Data[:256]
	direct := s.Model.Infer(in, core.RunConfig{})
	via := s.Run(fx.Conv.Net, in, RunOpts{})
	if via.Pred != direct.Pred || via.TotalSpikes != direct.TotalSpikes {
		t.Fatalf("adapter diverges: pred %d/%d spikes %d/%d",
			via.Pred, direct.Pred, via.TotalSpikes, direct.TotalSpikes)
	}
}

func TestTTFSAdapterInEvaluateHarness(t *testing.T) {
	s, fx := ttfsScheme(t)
	x := tensor.FromSlice(fx.X.Data[:40*256], 40, 256)
	ev, err := Evaluate(s, fx.Conv.Net, x, fx.Labels[:40], 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.3 {
		t.Fatalf("TTFS via harness accuracy %.2f", ev.Accuracy)
	}
	// TTFS spends at most one spike per neuron; far fewer than rate
	rate, err := Evaluate(Rate{}, fx.Conv.Net, x, fx.Labels[:40], 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AvgSpikes >= rate.AvgSpikes {
		t.Fatalf("TTFS spikes %.0f not below rate %.0f", ev.AvgSpikes, rate.AvgSpikes)
	}
}

func TestTTFSAdapterTimelineTruncation(t *testing.T) {
	s, fx := ttfsScheme(t)
	in := fx.X.Data[:256]
	full := s.Run(fx.Conv.Net, in, RunOpts{CollectTimeline: true})
	if len(full.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	cut := s.Run(fx.Conv.Net, in, RunOpts{Steps: full.Timeline[0].Step, CollectTimeline: true})
	if len(cut.Timeline) >= len(full.Timeline) && len(full.Timeline) > 1 {
		t.Fatalf("truncation had no effect: %d vs %d", len(cut.Timeline), len(full.Timeline))
	}
}
