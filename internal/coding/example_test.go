package coding_test

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// tiny 2->1 output-only network: the output potential accumulates the
// weighted input spikes, so the example can count exact charges.
func exampleNet() *snn.Net {
	return &snn.Net{
		Name: "demo", InShape: []int{2}, InLen: 2,
		Stages: []snn.Stage{{
			Name: "out", Kind: snn.DenseStage,
			W:     tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2),
			B:     tensor.New(2),
			InLen: 2, OutLen: 2, Output: true,
		}},
	}
}

// Rate coding transmits each pixel as a firing rate: over 10 steps a
// 0.75 pixel fires 7 times and a 0.25 pixel twice (binary-exact values
// keep the arithmetic clean), and the identity output accumulates
// exactly those counts.
func ExampleRate() {
	r := coding.Rate{}.Run(exampleNet(), []float64{0.75, 0.25}, coding.RunOpts{Steps: 10})
	fmt.Printf("input spikes: %d\n", r.SpikesPerStage[0])
	fmt.Printf("accumulated potentials: %.0f %.0f\n", r.Potentials[0], r.Potentials[1])
	// Output:
	// input spikes: 9
	// accumulated potentials: 7 2
}

// Phase coding transmits one K-bit binary expansion per period: a 0.5
// pixel is the single high bit of the first phase, firing exactly once
// per 8-step period with weight 1/2.
func ExamplePhase() {
	r := coding.Phase{}.Run(exampleNet(), []float64{0.5, 0}, coding.RunOpts{Steps: 16})
	fmt.Printf("spikes over two periods: %d\n", r.SpikesPerStage[0])
	fmt.Printf("accumulated value: %.2f\n", r.Potentials[0])
	// Output:
	// spikes over two periods: 2
	// accumulated value: 1.00
}
