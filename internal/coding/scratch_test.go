package coding

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snn"
	"repro/internal/testutil"
)

// sameSimResult pins bit-identity between a scratch-backed and a
// fresh-allocation simulation result.
func sameSimResult(t *testing.T, tag string, got, want snn.SimResult) {
	t.Helper()
	if got.Pred != want.Pred || got.Steps != want.Steps || got.TotalSpikes != want.TotalSpikes {
		t.Fatalf("%s: pred/steps/spikes (%d,%d,%d) != (%d,%d,%d)",
			tag, got.Pred, got.Steps, got.TotalSpikes, want.Pred, want.Steps, want.TotalSpikes)
	}
	if len(got.SpikesPerStage) != len(want.SpikesPerStage) {
		t.Fatalf("%s: stage counts %d != %d", tag, len(got.SpikesPerStage), len(want.SpikesPerStage))
	}
	for i := range got.SpikesPerStage {
		if got.SpikesPerStage[i] != want.SpikesPerStage[i] {
			t.Fatalf("%s: stage %d spikes %d != %d", tag, i, got.SpikesPerStage[i], want.SpikesPerStage[i])
		}
	}
	if len(got.Potentials) != len(want.Potentials) {
		t.Fatalf("%s: potentials %d != %d", tag, len(got.Potentials), len(want.Potentials))
	}
	for j := range got.Potentials {
		if math.Float64bits(got.Potentials[j]) != math.Float64bits(want.Potentials[j]) {
			t.Fatalf("%s: potential %d not bit-identical: %v != %v",
				tag, j, got.Potentials[j], want.Potentials[j])
		}
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("%s: timeline %d != %d entries", tag, len(got.Timeline), len(want.Timeline))
	}
	for i := range got.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Fatalf("%s: timeline[%d] %+v != %+v", tag, i, got.Timeline[i], want.Timeline[i])
		}
	}
}

// TestSchemesWithScratchMatchFresh pins the RunOpts.Scratch contract for
// all four coding schemes: one scratch reused across samples, schemes,
// and fault streams produces results bit-identical to scratch-free runs.
func TestSchemesWithScratchMatchFresh(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 17, Drop: 0.1, Jitter: 1, StuckSilent: 0.02, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{
		Rate{},
		Rate{Poisson: true, Seed: 5},
		Phase{},
		Burst{},
		TTFS{Model: m},
	}
	sc := NewScratch() // shared across every scheme: resets must be exact
	for _, s := range schemes {
		for i := 0; i < 4; i++ {
			opts := RunOpts{Steps: 60, CollectTimeline: i%2 == 0}
			if i%2 == 1 { // faults on odd samples
				opts.Faults = inj.Sample(i)
			}
			in := fx.X.Data[i*256 : (i+1)*256]
			fresh := s.Run(fx.Conv.Net, in, opts)
			opts.Scratch = sc
			got := s.Run(fx.Conv.Net, in, opts)
			sameSimResult(t, fmt.Sprintf("%s sample %d", s.Name(), i), got, fresh)
		}
	}
}

// TestScratchSteadyStateAllocs bounds per-Run allocations with a warm
// scratch: the clock-driven schemes may only allocate result bookkeeping
// (SimResult slices), never the simulation working set. The fresh-run
// working set for this net is hundreds of allocations.
func TestScratchSteadyStateAllocs(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	in := fx.X.Data[:256]
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		sc := NewScratch()
		opts := RunOpts{Steps: 30, Scratch: sc}
		s.Run(fx.Conv.Net, in, opts) // warm buffers
		n := testing.AllocsPerRun(5, func() { s.Run(fx.Conv.Net, in, opts) })
		// newSimResult + gate bookkeeping: a handful, not the working set
		if n > 8 {
			t.Errorf("%s: %.0f allocs/run with warm scratch, want ≤ 8", s.Name(), n)
		}
	}
}
