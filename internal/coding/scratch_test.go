package coding

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// sameSimResult pins bit-identity between a scratch-backed and a
// fresh-allocation simulation result.
func sameSimResult(t *testing.T, tag string, got, want snn.SimResult) {
	t.Helper()
	if got.Pred != want.Pred || got.Steps != want.Steps || got.TotalSpikes != want.TotalSpikes {
		t.Fatalf("%s: pred/steps/spikes (%d,%d,%d) != (%d,%d,%d)",
			tag, got.Pred, got.Steps, got.TotalSpikes, want.Pred, want.Steps, want.TotalSpikes)
	}
	if len(got.SpikesPerStage) != len(want.SpikesPerStage) {
		t.Fatalf("%s: stage counts %d != %d", tag, len(got.SpikesPerStage), len(want.SpikesPerStage))
	}
	for i := range got.SpikesPerStage {
		if got.SpikesPerStage[i] != want.SpikesPerStage[i] {
			t.Fatalf("%s: stage %d spikes %d != %d", tag, i, got.SpikesPerStage[i], want.SpikesPerStage[i])
		}
	}
	if len(got.Potentials) != len(want.Potentials) {
		t.Fatalf("%s: potentials %d != %d", tag, len(got.Potentials), len(want.Potentials))
	}
	for j := range got.Potentials {
		if math.Float64bits(got.Potentials[j]) != math.Float64bits(want.Potentials[j]) {
			t.Fatalf("%s: potential %d not bit-identical: %v != %v",
				tag, j, got.Potentials[j], want.Potentials[j])
		}
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("%s: timeline %d != %d entries", tag, len(got.Timeline), len(want.Timeline))
	}
	for i := range got.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Fatalf("%s: timeline[%d] %+v != %+v", tag, i, got.Timeline[i], want.Timeline[i])
		}
	}
}

// TestSchemesWithScratchMatchFresh pins the RunOpts.Scratch contract for
// all four coding schemes: one scratch reused across samples, schemes,
// and fault streams produces results bit-identical to scratch-free runs.
func TestSchemesWithScratchMatchFresh(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 17, Drop: 0.1, Jitter: 1, StuckSilent: 0.02, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{
		Rate{},
		Rate{Poisson: true, Seed: 5},
		Phase{},
		Burst{},
		TTFS{Model: m},
	}
	sc := NewScratch() // shared across every scheme: resets must be exact
	for _, s := range schemes {
		for i := 0; i < 4; i++ {
			opts := RunOpts{Steps: 60, CollectTimeline: i%2 == 0}
			if i%2 == 1 { // faults on odd samples
				opts.Faults = inj.Sample(i)
			}
			in := fx.X.Data[i*256 : (i+1)*256]
			fresh := s.Run(fx.Conv.Net, in, opts)
			opts.Scratch = sc
			got := s.Run(fx.Conv.Net, in, opts)
			sameSimResult(t, fmt.Sprintf("%s sample %d", s.Name(), i), got, fresh)
		}
	}
}

// TestScratchSteadyStateAllocs pins per-Run allocations with a warm
// scratch at zero: with the SpikesPerStage tally drawn from the results
// arena, the clock-driven schemes allocate nothing steady-state.
// (Poisson rate coding is excluded: it seeds a fresh generator per Run
// by design, and timelines are excluded because Timeline is retained by
// callers and so must be freshly allocated.)
func TestScratchSteadyStateAllocs(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	in := fx.X.Data[:256]
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		sc := NewScratch()
		opts := RunOpts{Steps: 30, Scratch: sc}
		s.Run(fx.Conv.Net, in, opts) // warm buffers
		if n := testing.AllocsPerRun(5, func() { s.Run(fx.Conv.Net, in, opts) }); n != 0 {
			t.Errorf("%s: %.0f allocs/run with warm scratch, want 0", s.Name(), n)
		}
	}
}

// TestEvaluateSweepPoolMatchesSequential pins the pool-parallel sweep
// against the sequential one for all four coding schemes under fault
// injection: per-worker scratches and chunked work stealing must not
// change a single aggregate.
func TestEvaluateSweepPoolMatchesSequential(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fault.Config{Seed: 23, Drop: 0.1, Jitter: 1, ThresholdNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(core.ParallelOpts{Workers: 4})
	defer pool.Close()
	x := tensor.FromSlice(fx.X.Data[:24*256], 24, 256)
	labels := fx.Labels[:24]
	for _, s := range []Scheme{Rate{}, Rate{Poisson: true, Seed: 5}, Phase{}, Burst{}, TTFS{Model: m}} {
		want, err := EvaluateSweep(s, fx.Conv.Net, x, labels, SweepOpts{Steps: 50, Stride: 10, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateSweep(s, fx.Conv.Net, x, labels, SweepOpts{Steps: 50, Stride: 10, Faults: inj, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if got.Accuracy != want.Accuracy || got.AvgSpikes != want.AvgSpikes || got.ConvergenceStep != want.ConvergenceStep {
			t.Fatalf("%s: pool sweep diverged: acc %v/%v spikes %v/%v conv %d/%d",
				s.Name(), got.Accuracy, want.Accuracy, got.AvgSpikes, want.AvgSpikes, got.ConvergenceStep, want.ConvergenceStep)
		}
		if len(got.Curve) != len(want.Curve) {
			t.Fatalf("%s: curve lengths differ: %d vs %d", s.Name(), len(got.Curve), len(want.Curve))
		}
		for i := range got.Curve {
			if got.Curve[i] != want.Curve[i] {
				t.Fatalf("%s: curve point %d differs: %+v vs %+v", s.Name(), i, got.Curve[i], want.Curve[i])
			}
		}
	}
}
