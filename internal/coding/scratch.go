package coding

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snn"
)

// Scratch is the reusable working set of the clock-driven scheme
// simulators (and, via CoreScratch, of the TTFS adapter): input
// accumulators, per-stage membrane potentials, burst-state counters, and
// the per-boundary spike buffers. Pass one via RunOpts.Scratch to stop a
// sustained caller (serving worker, evaluation sweep) from reallocating
// the full working set on every Run.
//
// A Scratch is NOT safe for concurrent use; give each worker its own.
// A SimResult produced with a scratch aliases scratch memory through its
// Potentials and SpikesPerStage fields: it is valid until the next Run
// that reuses the same scratch. Results are bit-identical to
// scratch-free runs (pinned by the differential tests in
// scratch_test.go): reused buffers are reset to exactly the state fresh
// allocations start in.
type Scratch struct {
	core *core.InferScratch // lazily created for the TTFS adapter

	maxStages int
	acc       []float64   // input accumulators (rate/burst)
	accBurst  []int       // input burst ladder (burst)
	bits      []uint32    // quantized inputs (phase)
	pow       []float64   // burst weight ladder
	pot       [][]float64 // per-stage membrane potentials
	potBack   []float64
	burst     [][]int // per-stage burst ladders
	burstBack []int
	spikeBuf  [][]fault.Spike // per-boundary spike lists
	counts    []int           // SimResult.SpikesPerStage backing
}

// NewScratch returns an empty scratch; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// CoreScratch returns the scratch's core.InferScratch, creating it on
// first use — the TTFS adapter threads it into core.Model.InferWith.
func (sc *Scratch) CoreScratch(m *core.Model) *core.InferScratch {
	if sc.core == nil {
		sc.core = core.NewInferScratch(m)
	}
	return sc.core
}

// scratchFor returns opts.Scratch or a fresh single-use scratch, so the
// simulators run one allocation discipline regardless of the caller.
func scratchFor(opts RunOpts) *Scratch {
	if opts.Scratch != nil {
		return opts.Scratch
	}
	return NewScratch()
}

// floats returns a zeroed float buffer of n entries.
func (sc *Scratch) floats(n int) []float64 {
	if cap(sc.acc) < n {
		sc.acc = make([]float64, n)
	}
	s := sc.acc[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ints returns a zeroed int buffer of n entries.
func (sc *Scratch) ints(n int) []int {
	if cap(sc.accBurst) < n {
		sc.accBurst = make([]int, n)
	}
	s := sc.accBurst[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// uint32s returns a zeroed uint32 buffer of n entries.
func (sc *Scratch) uint32s(n int) []uint32 {
	if cap(sc.bits) < n {
		sc.bits = make([]uint32, n)
	}
	s := sc.bits[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// powers returns the burst weight ladder [1, g, g², …] of length n.
func (sc *Scratch) powers(g float64, n int) []float64 {
	if cap(sc.pow) < n {
		sc.pow = make([]float64, n)
	}
	p := sc.pow[:n]
	p[0] = 1
	for i := 1; i < n; i++ {
		p[i] = p[i-1] * g
	}
	return p
}

// stageCounts returns a zeroed per-boundary spike tally of n entries,
// the SimResult.SpikesPerStage backing (results arena).
func (sc *Scratch) stageCounts(n int) []int {
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	s := sc.counts[:n:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ensureStages sizes the per-stage buffer tables for net.
func (sc *Scratch) ensureStages(net *snn.Net) {
	n := len(net.Stages)
	if n > sc.maxStages {
		sc.maxStages = n
		sc.pot = make([][]float64, n)
		sc.burst = make([][]int, n)
		old := sc.spikeBuf
		sc.spikeBuf = make([][]fault.Spike, n+1)
		copy(sc.spikeBuf, old) // keep grown spike-list capacity
	}
	total := 0
	for i := range net.Stages {
		total += net.Stages[i].OutLen
	}
	if cap(sc.potBack) < total {
		sc.potBack = make([]float64, total)
	}
	if cap(sc.burstBack) < total {
		sc.burstBack = make([]int, total)
	}
}

// potentials returns zeroed per-stage membrane buffers for net.
func (sc *Scratch) potentials(net *snn.Net) [][]float64 {
	sc.ensureStages(net)
	pot := sc.pot[:len(net.Stages)]
	off := 0
	for si := range net.Stages {
		n := net.Stages[si].OutLen
		p := sc.potBack[off : off+n : off+n]
		for i := range p {
			p[i] = 0
		}
		pot[si] = p
		off += n
	}
	return pot
}

// bursts returns zeroed per-stage burst-ladder buffers for net.
func (sc *Scratch) bursts(net *snn.Net) [][]int {
	sc.ensureStages(net)
	bb := sc.burst[:len(net.Stages)]
	off := 0
	for si := range net.Stages {
		n := net.Stages[si].OutLen
		b := sc.burstBack[off : off+n : off+n]
		for i := range b {
			b[i] = 0
		}
		bb[si] = b
		off += n
	}
	return bb
}

// spikeBufs returns the per-boundary spike lists, each emptied but
// keeping its grown capacity.
func (sc *Scratch) spikeBufs(net *snn.Net) [][]fault.Spike {
	sc.ensureStages(net)
	bufs := sc.spikeBuf[:len(net.Stages)+1]
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	return bufs
}
