package coding

import (
	"repro/internal/fault"
	"repro/internal/snn"
)

// Burst is burst coding (Park et al., DAC 2019): a neuron that keeps
// firing on consecutive steps emits burst spikes whose weight grows
// geometrically (g, g², …), letting large activations transmit in a few
// steps. The weight resets once the neuron falls silent. Burst coding
// needs fewer steps than phase coding and far fewer spikes than rate
// coding — the strongest baseline in the paper's Table II.
type Burst struct {
	// Growth is the burst weight growth factor g (default 2).
	Growth float64
	// MaxLen caps the burst length (default 5, i.e. max weight g⁴).
	MaxLen int
}

// Name implements Scheme.
func (Burst) Name() string { return "Burst" }

func (b Burst) params() (float64, int) {
	g, m := b.Growth, b.MaxLen
	if g <= 1 {
		g = 2
	}
	if m <= 0 {
		m = 5
	}
	return g, m
}

// Run implements Scheme.
func (b Burst) Run(net *snn.Net, input []float64, opts RunOpts) snn.SimResult {
	steps, fs := opts.Steps, opts.Faults
	g, maxLen := b.params()
	nStages := len(net.Stages)
	gates := boundaryGates(fs, nStages)

	sc := scratchFor(opts)
	res := newSimResult(sc, net, steps)
	inputAcc := sc.floats(net.InLen)
	inputBurst := sc.ints(net.InLen)
	pot := sc.potentials(net)
	burst := sc.bursts(net)
	spikeBuf := sc.spikeBufs(net)
	pow := sc.powers(g, maxLen)

	for t := 0; t < steps; t++ {
		spikeBuf[0] = spikeBuf[0][:0]
		for i, u := range input {
			if fs != nil {
				switch fs.Stuck(0, i) {
				case fault.StuckSilent:
					continue
				case fault.StuckFire:
					spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: 1})
					continue
				}
			}
			if u <= 0 {
				continue
			}
			inputAcc[i] += u
			w := pow[inputBurst[i]]
			if inputAcc[i] >= w {
				inputAcc[i] -= w
				spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: w})
				if inputBurst[i] < maxLen-1 {
					inputBurst[i]++
				}
			} else {
				inputBurst[i] = 0
			}
		}

		for si := range net.Stages {
			st := &net.Stages[si]
			st.AddBias(pot[si])
			in := gateStep(gates, si, t, spikeBuf[si])
			res.SpikesPerStage[si] += len(in)
			for _, s := range in {
				st.Scatter(s.Idx, s.W, pot[si])
			}
			if st.Output {
				break
			}
			spikeBuf[si+1] = spikeBuf[si+1][:0]
			pp := pot[si]
			bb := burst[si]
			for j := range pp {
				if fs != nil {
					switch fs.Stuck(si+1, j) {
					case fault.StuckSilent:
						continue
					case fault.StuckFire:
						// a jammed driver fires unit spikes, ignoring the
						// burst ladder and the membrane state
						spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: 1})
						continue
					}
				}
				w := pow[bb[j]]
				thr := w
				if fs != nil {
					thr = fs.Threshold(si+1, t, thr)
				}
				if pp[j] >= thr {
					pp[j] -= w
					spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: w})
					if bb[j] < maxLen-1 {
						bb[j]++
					}
				} else {
					bb[j] = 0
				}
			}
		}
		if opts.CollectTimeline {
			res.RecordPred(t, pot[nStages-1])
		}
	}
	res.Pred = snn.ArgMax(pot[nStages-1])
	res.Potentials = pot[nStages-1]
	res.CountSpikes()
	return res
}
