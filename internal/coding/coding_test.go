package coding

import (
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func evalScheme(t *testing.T, s Scheme, steps, n int) EvalResult {
	t.Helper()
	fx := testutil.TrainedLeNet16()
	x := tensor.FromSlice(fx.X.Data[:n*256], n, 256)
	res, err := Evaluate(s, fx.Conv.Net, x, fx.Labels[:n], steps, steps/40)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRateCodingConvergesToDNNAccuracy(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	res := evalScheme(t, Rate{}, 400, 60)
	if res.Accuracy < fx.DNNAccuracy-0.15 {
		t.Fatalf("rate accuracy %.2f far below DNN %.2f", res.Accuracy, fx.DNNAccuracy)
	}
}

func TestPhaseCodingConverges(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	res := evalScheme(t, Phase{}, 200, 60)
	if res.Accuracy < fx.DNNAccuracy-0.15 {
		t.Fatalf("phase accuracy %.2f far below DNN %.2f", res.Accuracy, fx.DNNAccuracy)
	}
}

func TestBurstCodingConverges(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	res := evalScheme(t, Burst{}, 200, 60)
	if res.Accuracy < fx.DNNAccuracy-0.15 {
		t.Fatalf("burst accuracy %.2f far below DNN %.2f", res.Accuracy, fx.DNNAccuracy)
	}
}

// Spikes must be compared at each scheme's own convergence horizon (the
// paper's Table II pairs each scheme's spike count with its latency; in
// the paper phase can out-spike rate per step, and does on MNIST and
// CIFAR-100). The robust ordering is spikes-to-convergence: burst
// converges in far fewer steps than rate and so needs no more spikes to
// reach its converged accuracy.
func TestSpikesToConvergenceOrdering(t *testing.T) {
	horizon := 400
	rate := evalScheme(t, Rate{}, horizon, 40)
	burst := evalScheme(t, Burst{}, horizon, 40)
	// re-measure spike cost truncated at each scheme's convergence step
	rateConv := evalScheme(t, Rate{}, maxInt(rate.ConvergenceStep, 1), 40)
	burstConv := evalScheme(t, Burst{}, maxInt(burst.ConvergenceStep, 1), 40)
	if burstConv.AvgSpikes > rateConv.AvgSpikes {
		t.Fatalf("burst needs %.0f spikes to converge, rate only %.0f",
			burstConv.AvgSpikes, rateConv.AvgSpikes)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Burst coding should reach its converged accuracy no later than rate
// coding (paper Fig. 6 fast-to-slow ordering: burst < phase < rate).
func TestConvergenceOrdering(t *testing.T) {
	rate := evalScheme(t, Rate{}, 400, 40)
	burst := evalScheme(t, Burst{}, 400, 40)
	if burst.ConvergenceStep > rate.ConvergenceStep {
		t.Fatalf("burst converges at %d, later than rate at %d",
			burst.ConvergenceStep, rate.ConvergenceStep)
	}
}

func TestRateInputEncoderFrequency(t *testing.T) {
	// A single input neuron with pixel u must fire at rate ≈ u.
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	input := make([]float64, net.InLen)
	input[0] = 0.37
	res := Rate{}.Run(net, input, RunOpts{Steps: 1000})
	rate := float64(res.SpikesPerStage[0]) / 1000
	if rate < 0.36 || rate > 0.38 {
		t.Fatalf("input firing rate %.3f, want ≈0.37", rate)
	}
}

func TestPhaseInputEmitsPerPeriod(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	input := make([]float64, net.InLen)
	input[0] = 0.5 // exactly one bit set -> one spike per period
	res := Phase{}.Run(net, input, RunOpts{Steps: 80})
	if res.SpikesPerStage[0] != 10 {
		t.Fatalf("phase input spikes = %d, want 10 (one per 8-step period)", res.SpikesPerStage[0])
	}
}

func TestBurstTransmitsLargeValuesFaster(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	big := make([]float64, net.InLen)
	for i := range big {
		big[i] = 1.0
	}
	nSteps := 20
	burst := Burst{}.Run(net, big, RunOpts{Steps: nSteps})
	rate := Rate{}.Run(net, big, RunOpts{Steps: nSteps})
	// burst input encoders drain accumulated charge with growing weights,
	// so they emit at most as many spikes as rate for the same drive
	if burst.SpikesPerStage[0] > rate.SpikesPerStage[0] {
		t.Fatalf("burst input spikes %d > rate %d", burst.SpikesPerStage[0], rate.SpikesPerStage[0])
	}
	// but transmit more total charge: sum over weights is larger; check
	// via output potential magnitude
	if absSum(burst.Potentials) < absSum(rate.Potentials)*0.9 {
		t.Fatalf("burst transmitted less charge than rate: %v vs %v",
			absSum(burst.Potentials), absSum(rate.Potentials))
	}
}

func TestTimelineInvariants(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	in := fx.X.Data[:256]
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		r := s.Run(net, in, RunOpts{Steps: 100, CollectTimeline: true})
		if r.Pred < 0 || r.Pred >= 10 {
			t.Fatalf("%s: pred %d out of range", s.Name(), r.Pred)
		}
		prev := -1
		for _, tp := range r.Timeline {
			if tp.Step < prev {
				t.Fatalf("%s: timeline steps not monotone", s.Name())
			}
			prev = tp.Step
		}
		if got := r.PredAt(1 << 30); got != r.Pred {
			t.Fatalf("%s: PredAt(inf) = %d, want %d", s.Name(), got, r.Pred)
		}
		if r.PredAt(-1) != -1 {
			t.Fatalf("%s: PredAt before start should be -1", s.Name())
		}
		if r.TotalSpikes <= 0 {
			t.Fatalf("%s: no spikes on a real image", s.Name())
		}
		// per-boundary accounting sums to the total
		sum := 0
		for _, c := range r.SpikesPerStage {
			sum += c
		}
		if sum != r.TotalSpikes {
			t.Fatalf("%s: spike accounting %d != %d", s.Name(), sum, r.TotalSpikes)
		}
	}
}

func TestEvaluateCurveShape(t *testing.T) {
	res := evalScheme(t, Rate{}, 200, 30)
	if len(res.Curve) < 10 {
		t.Fatalf("curve too sparse: %d points", len(res.Curve))
	}
	if last := res.Curve[len(res.Curve)-1]; last.Accuracy != res.Accuracy {
		t.Fatalf("curve must end at final accuracy: %v vs %v", last.Accuracy, res.Accuracy)
	}
	if res.ConvergenceStep > res.Steps {
		t.Fatalf("convergence step %d beyond horizon %d", res.ConvergenceStep, res.Steps)
	}
	// early accuracy must not exceed converged accuracy by much (rates
	// need time to average out)
	if res.Curve[0].Accuracy > res.Accuracy+Tolerance {
		t.Fatalf("accuracy at step 0 (%v) above converged (%v)", res.Curve[0].Accuracy, res.Accuracy)
	}
}

func TestEvaluateErrors(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	x := tensor.New(2, 256)
	if _, err := Evaluate(Rate{}, fx.Conv.Net, x, []int{0}, 10, 1); err == nil {
		t.Fatal("label mismatch accepted")
	}
	bad := tensor.New(2, 99)
	if _, err := Evaluate(Rate{}, fx.Conv.Net, bad, []int{0, 1}, 10, 1); err == nil {
		t.Fatal("bad sample length accepted")
	}
}

func TestConvergenceStepEdgeCases(t *testing.T) {
	if got := ConvergenceStep(nil, 0.5); got != 0 {
		t.Fatalf("empty curve -> %d, want 0", got)
	}
	curve := []CurvePoint{
		{Step: 0, Accuracy: 0.1},
		{Step: 10, Accuracy: 0.5},
		{Step: 20, Accuracy: 0.9},
		{Step: 30, Accuracy: 0.9},
	}
	if got := ConvergenceStep(curve, 0.9); got != 20 {
		t.Fatalf("ConvergenceStep = %d, want 20", got)
	}
}

func TestSchemeNames(t *testing.T) {
	if (Rate{}).Name() != "Rate" || (Phase{}).Name() != "Phase" || (Burst{}).Name() != "Burst" {
		t.Fatal("scheme names wrong")
	}
}

func TestPhasePeriodDefault(t *testing.T) {
	if (Phase{}).period() != 8 || (Phase{Period: 4}).period() != 4 {
		t.Fatal("phase period defaulting wrong")
	}
}

func TestBurstParamsDefault(t *testing.T) {
	g, m := (Burst{}).params()
	if g != 2 || m != 5 {
		t.Fatalf("burst defaults = (%v,%d), want (2,5)", g, m)
	}
}

func absSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s
}

var _ = snn.ArgMax // keep the import obvious for readers

func TestPoissonRateFrequency(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	input := make([]float64, net.InLen)
	input[0] = 0.37
	res := Rate{Poisson: true, Seed: 5}.Run(net, input, RunOpts{Steps: 3000})
	rate := float64(res.SpikesPerStage[0]) / 3000
	if rate < 0.34 || rate > 0.40 {
		t.Fatalf("poisson input firing rate %.3f, want ≈0.37", rate)
	}
}

func TestPoissonRateDeterministicPerSeed(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	in := fx.X.Data[:256]
	a := Rate{Poisson: true, Seed: 7}.Run(fx.Conv.Net, in, RunOpts{Steps: 100})
	b := Rate{Poisson: true, Seed: 7}.Run(fx.Conv.Net, in, RunOpts{Steps: 100})
	if a.TotalSpikes != b.TotalSpikes || a.Pred != b.Pred {
		t.Fatal("same seed must reproduce the same simulation")
	}
	c := Rate{Poisson: true, Seed: 8}.Run(fx.Conv.Net, in, RunOpts{Steps: 100})
	if a.TotalSpikes == c.TotalSpikes {
		t.Fatal("different seeds should perturb the spike count")
	}
}

func TestPoissonRateAccuracyTracksDeterministic(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	x := tensor.FromSlice(fx.X.Data[:40*256], 40, 256)
	det, err := Evaluate(Rate{}, fx.Conv.Net, x, fx.Labels[:40], 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	poi, err := Evaluate(Rate{Poisson: true, Seed: 9}, fx.Conv.Net, x, fx.Labels[:40], 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	if poi.Accuracy < det.Accuracy-0.15 {
		t.Fatalf("poisson accuracy %.2f far below deterministic %.2f", poi.Accuracy, det.Accuracy)
	}
	if poi.SchemeName != "Rate(poisson)" {
		t.Fatalf("scheme name %q", poi.SchemeName)
	}
}
