package coding

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func mustInjector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	j, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// With a nil stream — and with a zero-config stream, which exercises
// every hook — each clock-driven scheme must reproduce the fault-free
// simulation bit for bit.
func TestSchemesFaultHooksAreNoOpWhenDisabled(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	inj := mustInjector(t, fault.Config{Seed: 99}) // all intensities zero
	for _, s := range []Scheme{Rate{}, Rate{Poisson: true, Seed: 4}, Phase{}, Burst{}} {
		for i := 0; i < 5; i++ {
			in := fx.X.Data[i*256 : (i+1)*256]
			plain := s.Run(net, in, RunOpts{Steps: 120, CollectTimeline: true})
			hooked := s.Run(net, in, RunOpts{Steps: 120, CollectTimeline: true, Faults: inj.Sample(i)})
			if plain.Pred != hooked.Pred || plain.TotalSpikes != hooked.TotalSpikes {
				t.Fatalf("%s sample %d: zero-fault stream changed result: pred %d/%d spikes %d/%d",
					s.Name(), i, plain.Pred, hooked.Pred, plain.TotalSpikes, hooked.TotalSpikes)
			}
			for b := range plain.SpikesPerStage {
				if plain.SpikesPerStage[b] != hooked.SpikesPerStage[b] {
					t.Fatalf("%s sample %d: boundary %d spikes %d vs %d",
						s.Name(), i, b, plain.SpikesPerStage[b], hooked.SpikesPerStage[b])
				}
			}
			for j := range plain.Potentials {
				if plain.Potentials[j] != hooked.Potentials[j] {
					t.Fatalf("%s sample %d: potential %d differs", s.Name(), i, j)
				}
			}
			if len(plain.Timeline) != len(hooked.Timeline) {
				t.Fatalf("%s sample %d: timeline length differs", s.Name(), i)
			}
		}
	}
}

// Spike drop must reduce delivered spikes roughly in proportion, for
// every clock-driven scheme.
func TestSchemesDropReducesDeliveredSpikes(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	in := fx.X.Data[:256]
	inj := mustInjector(t, fault.Config{Seed: 3, Drop: 0.5})
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		clean := s.Run(net, in, RunOpts{Steps: 100})
		dropped := s.Run(net, in, RunOpts{Steps: 100, Faults: inj.Sample(0)})
		lo, hi := 0.3*float64(clean.TotalSpikes), 0.7*float64(clean.TotalSpikes)
		if f := float64(dropped.TotalSpikes); f < lo || f > hi {
			t.Fatalf("%s: drop=0.5 delivered %d of %d spikes, want roughly half",
				s.Name(), dropped.TotalSpikes, clean.TotalSpikes)
		}
	}
}

// Stuck-silent input neurons must silence their pixels' spike streams.
func TestSchemesStuckSilentInput(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	in := fx.X.Data[:256]
	inj := mustInjector(t, fault.Config{Seed: 5, StuckSilent: 1}) // kill everything
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		r := s.Run(net, in, RunOpts{Steps: 60, Faults: inj.Sample(0)})
		if r.TotalSpikes != 0 {
			t.Fatalf("%s: fully stuck-silent network still delivered %d spikes", s.Name(), r.TotalSpikes)
		}
	}
}

// Delivery jitter conserves spikes (no drop configured): totals stay
// close to clean (only spikes in flight at the horizon may be missing).
func TestSchemesJitterConservesSpikes(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	in := fx.X.Data[:256]
	inj := mustInjector(t, fault.Config{Seed: 6, Jitter: 3})
	for _, s := range []Scheme{Rate{}, Phase{}, Burst{}} {
		clean := s.Run(net, in, RunOpts{Steps: 100})
		jittered := s.Run(net, in, RunOpts{Steps: 100, Faults: inj.Sample(0)})
		// jitter perturbs dynamics, so counts drift; they must stay in the
		// same regime rather than collapse or explode
		if f := float64(jittered.TotalSpikes); f < 0.5*float64(clean.TotalSpikes) || f > 1.5*float64(clean.TotalSpikes) {
			t.Fatalf("%s: jitter moved spike count %d -> %d", s.Name(), clean.TotalSpikes, jittered.TotalSpikes)
		}
	}
}

// EvaluateFaulted must be deterministic for a fixed seed.
func TestEvaluateFaultedDeterministic(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	inj := mustInjector(t, fault.Config{Seed: 11, Drop: 0.2})
	x := tensor.FromSlice(fx.X.Data[:20*256], 20, 256)
	run := func() EvalResult {
		r, err := EvaluateFaulted(Rate{}, fx.Conv.Net, x, fx.Labels[:20], 150, 30, inj)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Accuracy != b.Accuracy || a.AvgSpikes != b.AvgSpikes {
		t.Fatalf("faulted evaluation not reproducible: %.3f/%.1f vs %.3f/%.1f",
			a.Accuracy, a.AvgSpikes, b.Accuracy, b.AvgSpikes)
	}
}
