package coding

import (
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Rate is classic rate coding: information is carried by firing rates.
// Input pixels drive integrate-and-fire encoders with constant current
// (deterministic, uniform inter-spike intervals) or, with Poisson set,
// Bernoulli spike draws with probability equal to the pixel value — the
// stochastic encoder of Diehl 2015. Hidden IF neurons use threshold 1
// with soft reset (subtract); biases inject constant current every
// step. Accuracy converges slowly as rates are averaged over time, at
// the cost of many spikes — the baseline the paper's Table II
// normalizes energy against.
type Rate struct {
	// Poisson selects stochastic Bernoulli input encoding; Seed makes
	// it reproducible.
	Poisson bool
	Seed    uint64
}

// Name implements Scheme.
func (r Rate) Name() string {
	if r.Poisson {
		return "Rate(poisson)"
	}
	return "Rate"
}

// Run implements Scheme.
func (r Rate) Run(net *snn.Net, input []float64, steps int, collectTimeline bool) snn.SimResult {
	res := newSimResult(net, steps)
	nStages := len(net.Stages)
	var rng *tensor.RNG
	if r.Poisson {
		rng = tensor.NewRNG(r.Seed ^ 0x706f6973)
	}

	inputAcc := make([]float64, net.InLen)
	pot := make([][]float64, nStages)
	for si := range net.Stages {
		pot[si] = make([]float64, net.Stages[si].OutLen)
	}
	spikeBuf := make([][]int, nStages+1) // reused spike index lists per boundary

	for t := 0; t < steps; t++ {
		// input encoding: constant-current IF (deterministic) or
		// Bernoulli draws with p = pixel value (Poisson mode)
		spikeBuf[0] = spikeBuf[0][:0]
		for i, u := range input {
			if u <= 0 {
				continue
			}
			if rng != nil {
				if rng.Float64() < u {
					spikeBuf[0] = append(spikeBuf[0], i)
				}
				continue
			}
			inputAcc[i] += u
			if inputAcc[i] >= 1 {
				inputAcc[i]--
				spikeBuf[0] = append(spikeBuf[0], i)
			}
		}
		res.SpikesPerStage[0] += len(spikeBuf[0])

		// synchronous sweep: spikes cascade through the stack this step
		for si := range net.Stages {
			st := &net.Stages[si]
			st.AddBias(pot[si]) // constant bias current per step
			for _, idx := range spikeBuf[si] {
				st.Scatter(idx, 1, pot[si])
			}
			if st.Output {
				break
			}
			spikeBuf[si+1] = spikeBuf[si+1][:0]
			p := pot[si]
			for j := range p {
				if p[j] >= 1 {
					p[j]--
					spikeBuf[si+1] = append(spikeBuf[si+1], j)
				}
			}
			res.SpikesPerStage[si+1] += len(spikeBuf[si+1])
		}
		if collectTimeline {
			res.RecordPred(t, pot[nStages-1])
		}
	}
	res.Pred = snn.ArgMax(pot[nStages-1])
	res.Potentials = pot[nStages-1]
	res.CountSpikes()
	return res
}
