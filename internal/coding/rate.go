package coding

import (
	"repro/internal/fault"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Rate is classic rate coding: information is carried by firing rates.
// Input pixels drive integrate-and-fire encoders with constant current
// (deterministic, uniform inter-spike intervals) or, with Poisson set,
// Bernoulli spike draws with probability equal to the pixel value — the
// stochastic encoder of Diehl 2015. Hidden IF neurons use threshold 1
// with soft reset (subtract); biases inject constant current every
// step. Accuracy converges slowly as rates are averaged over time, at
// the cost of many spikes — the baseline the paper's Table II
// normalizes energy against.
type Rate struct {
	// Poisson selects stochastic Bernoulli input encoding; Seed makes
	// it reproducible.
	Poisson bool
	Seed    uint64
}

// Name implements Scheme.
func (r Rate) Name() string {
	if r.Poisson {
		return "Rate(poisson)"
	}
	return "Rate"
}

// boundaryGates builds the per-fire-boundary transmission gates (drop +
// delivery delay) for a clock-driven simulation; nil when the stream
// injects no transmission faults.
func boundaryGates(fs *fault.Stream, nStages int) []*fault.ClockGate {
	if fs == nil {
		return nil
	}
	gates := make([]*fault.ClockGate, nStages)
	live := false
	for b := range gates {
		gates[b] = fs.ClockGate(b)
		live = live || gates[b] != nil
	}
	if !live {
		return nil
	}
	return gates
}

// gateStep routes boundary b's emissions through its gate (pass-through
// when no gates are active).
func gateStep(gates []*fault.ClockGate, b, t int, emitted []fault.Spike) []fault.Spike {
	if gates == nil {
		return emitted
	}
	return gates[b].Step(t, emitted)
}

// Run implements Scheme.
func (r Rate) Run(net *snn.Net, input []float64, opts RunOpts) snn.SimResult {
	steps, fs := opts.Steps, opts.Faults
	nStages := len(net.Stages)
	var rng *tensor.RNG
	if r.Poisson {
		rng = tensor.NewRNG(r.Seed ^ 0x706f6973)
	}
	gates := boundaryGates(fs, nStages)

	sc := scratchFor(opts)
	res := newSimResult(sc, net, steps)
	inputAcc := sc.floats(net.InLen)
	pot := sc.potentials(net)
	spikeBuf := sc.spikeBufs(net) // reused spike lists per boundary

	for t := 0; t < steps; t++ {
		// input encoding: constant-current IF (deterministic) or
		// Bernoulli draws with p = pixel value (Poisson mode)
		spikeBuf[0] = spikeBuf[0][:0]
		for i, u := range input {
			if fs != nil {
				switch fs.Stuck(0, i) {
				case fault.StuckSilent:
					continue
				case fault.StuckFire:
					spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: 1})
					continue
				}
			}
			if u <= 0 {
				continue
			}
			if rng != nil {
				if rng.Float64() < u {
					spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: 1})
				}
				continue
			}
			inputAcc[i] += u
			if inputAcc[i] >= 1 {
				inputAcc[i]--
				spikeBuf[0] = append(spikeBuf[0], fault.Spike{Idx: i, W: 1})
			}
		}

		// synchronous sweep: spikes cascade through the stack this step
		for si := range net.Stages {
			st := &net.Stages[si]
			st.AddBias(pot[si]) // constant bias current per step
			in := gateStep(gates, si, t, spikeBuf[si])
			res.SpikesPerStage[si] += len(in)
			for _, s := range in {
				st.Scatter(s.Idx, s.W, pot[si])
			}
			if st.Output {
				break
			}
			spikeBuf[si+1] = spikeBuf[si+1][:0]
			p := pot[si]
			for j := range p {
				if fs != nil {
					switch fs.Stuck(si+1, j) {
					case fault.StuckSilent:
						continue
					case fault.StuckFire:
						spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: 1})
						continue
					}
				}
				thr := 1.0
				if fs != nil {
					thr = fs.Threshold(si+1, t, thr)
				}
				if p[j] >= thr {
					// soft reset by the transmitted quantum (1), not the
					// perturbed comparison threshold
					p[j]--
					spikeBuf[si+1] = append(spikeBuf[si+1], fault.Spike{Idx: j, W: 1})
				}
			}
		}
		if opts.CollectTimeline {
			res.RecordPred(t, pot[nStages-1])
		}
	}
	res.Pred = snn.ArgMax(pot[nStages-1])
	res.Potentials = pot[nStages-1]
	res.CountSpikes()
	return res
}
