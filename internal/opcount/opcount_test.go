package opcount

import (
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func denseOnlyNet() *snn.Net {
	w1 := tensor.New(4, 6)
	w2 := tensor.New(6, 2)
	return &snn.Net{
		Name: "d", InShape: []int{4}, InLen: 4,
		Stages: []snn.Stage{
			{Name: "h", Kind: snn.DenseStage, W: w1, B: tensor.New(6), InLen: 4, OutLen: 6},
			{Name: "o", Kind: snn.DenseStage, W: w2, B: tensor.New(2), InLen: 6, OutLen: 2, Output: true},
		},
	}
}

func TestDNNMACsDense(t *testing.T) {
	net := denseOnlyNet()
	ops := DNN(net)
	want := float64(4*6 + 6*2)
	if ops.Mult != want || ops.Add != want {
		t.Fatalf("DNN ops = %+v, want %v MACs", ops, want)
	}
}

func TestStageMACsConv(t *testing.T) {
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	st := snn.Stage{Kind: snn.ConvStage, Geom: g, OutC: 16,
		W: tensor.New(16, 3, 3, 3), B: tensor.New(16)}
	want := float64(8 * 8 * 16 * 3 * 3 * 3)
	if got := StageMACs(&st); got != want {
		t.Fatalf("conv MACs = %v, want %v", got, want)
	}
}

func TestAvgFanOutDense(t *testing.T) {
	net := denseOnlyNet()
	if got := AvgFanOut(net, 0); got != 6 {
		t.Fatalf("fan-out boundary 0 = %v, want 6", got)
	}
	if got := AvgFanOut(net, 1); got != 2 {
		t.Fatalf("fan-out boundary 1 = %v, want 2", got)
	}
	if AvgFanOut(net, -1) != 0 || AvgFanOut(net, 5) != 0 {
		t.Fatal("out-of-range boundary should cost 0")
	}
}

func TestSpikeOpsRateVsWeighted(t *testing.T) {
	net := denseOnlyNet()
	spikes := []float64{10, 3}
	rate, err := SpikeOps(net, spikes, false)
	if err != nil {
		t.Fatal(err)
	}
	// per-spike model: one add per spike
	if rate.Add != 13 || rate.Mult != 0 {
		t.Fatalf("rate ops = %+v, want 13 adds, no mults", rate)
	}
	weighted, err := SpikeOps(net, spikes, true)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Mult != 13 || weighted.Add != 13 {
		t.Fatalf("weighted ops = %+v, want mult=add=13", weighted)
	}
	// per-synapse model: spikes × fan-out
	syn, err := SynapticOps(net, spikes, false)
	if err != nil {
		t.Fatal(err)
	}
	wantAdds := 10*6.0 + 3*2.0
	if syn.Add != wantAdds {
		t.Fatalf("synaptic ops = %+v, want adds %v", syn, wantAdds)
	}
}

func TestSpikeOpsLengthMismatch(t *testing.T) {
	net := denseOnlyNet()
	if _, err := SpikeOps(net, []float64{1}, false); err == nil {
		t.Fatal("boundary count mismatch accepted")
	}
}

func TestTDSNNDominatedByTicking(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	ops := TDSNN(net, TDSNNConfig{Steps: 200, TickFraction: 1})
	neurons := float64(net.NumNeurons())
	if ops.Mult < neurons*200 {
		t.Fatalf("TDSNN mults %v below LIF floor %v", ops.Mult, neurons*200)
	}
	if ops.Add <= ops.Mult*0.99 {
		t.Fatalf("TDSNN adds (%v) should include ticking + spikes beyond mults (%v)", ops.Add, ops.Mult)
	}
}

func TestTDSNNDefaults(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	a := TDSNN(fx.Conv.Net, TDSNNConfig{})
	b := TDSNN(fx.Conv.Net, TDSNNConfig{Steps: 100, TickFraction: 1})
	if a != b {
		t.Fatalf("defaults not applied: %+v vs %+v", a, b)
	}
}

// Table III shape: T2FSNN (one spike per neuron, weighted kernel decode)
// must cost orders of magnitude less than the DNN and less than TDSNN.
func TestTableIIIShape(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	net := fx.Conv.Net
	dnnOps := DNN(net)

	// T2FSNN upper bound: every neuron fires exactly once
	perBoundary := make([]float64, len(net.Stages))
	perBoundary[0] = float64(net.InLen)
	for i := 0; i < len(net.Stages)-1; i++ {
		perBoundary[i+1] = float64(net.Stages[i].OutLen)
	}
	t2f, err := SpikeOps(net, perBoundary, true)
	if err != nil {
		t.Fatal(err)
	}
	tdsnn := TDSNN(net, TDSNNConfig{Steps: 200})

	if t2f.Add > dnnOps.Add {
		t.Fatalf("one-spike-per-neuron T2FSNN (%v adds) must not exceed the DNN (%v)", t2f.Add, dnnOps.Add)
	}
	if t2f.Mult >= tdsnn.Mult {
		t.Fatalf("T2FSNN mults (%v) should be far below TDSNN (%v)", t2f.Mult, tdsnn.Mult)
	}
}

func TestMillions(t *testing.T) {
	o := Ops{Mult: 2e6, Add: 4e6}
	m := o.Millions()
	if m.Mult != 2 || m.Add != 4 {
		t.Fatalf("Millions = %+v", m)
	}
}
