// Package opcount implements the paper's computational cost analysis
// (Table III): multiply and add operation counts per inference for the
// source DNN, each spiking coding scheme, the TDSNN reverse-coding
// estimate, and T2FSNN. Counts for the spiking schemes derive from
// measured per-boundary spike counts and the network's synaptic fan-out;
// the DNN and TDSNN rows are analytic, exactly as in the paper.
package opcount

import (
	"fmt"

	"repro/internal/snn"
)

// Ops is a multiply/add operation count.
type Ops struct {
	Mult float64
	Add  float64
}

// Millions returns the counts scaled to millions of operations, the unit
// of the paper's Table III.
func (o Ops) Millions() Ops { return Ops{Mult: o.Mult / 1e6, Add: o.Add / 1e6} }

// DNN returns the MAC cost of one dense/conv forward pass of the
// network: every synaptic connection costs one multiply and one add.
func DNN(net *snn.Net) Ops {
	macs := 0.0
	for i := range net.Stages {
		macs += StageMACs(&net.Stages[i])
	}
	return Ops{Mult: macs, Add: macs}
}

// StageMACs counts the multiply-accumulate operations of one stage's
// dense forward pass (pooling contributes adds only and is ignored, as
// in the paper's analysis).
func StageMACs(s *snn.Stage) float64 {
	switch s.Kind {
	case snn.ConvStage:
		g := s.Geom
		return float64(g.OutH()) * float64(g.OutW()) * float64(s.OutC) * float64(g.InC*g.KH*g.KW)
	default:
		return float64(s.W.Shape[0]) * float64(s.W.Shape[1])
	}
}

// AvgFanOut returns the mean synaptic fan-out of the stage that consumes
// boundary b's spikes (b = 0 feeds stage 0, etc.): the per-spike
// accumulation cost.
func AvgFanOut(net *snn.Net, b int) float64 {
	if b < 0 || b >= len(net.Stages) {
		return 0
	}
	st := &net.Stages[b]
	// total synapse count / input count = average fan-out
	return StageMACs(st) / float64(inputLen(st))
}

func inputLen(st *snn.Stage) int {
	if st.Kind == snn.ConvStage {
		return st.Geom.InC * st.Geom.InH * st.Geom.InW
	}
	return st.W.Shape[0]
}

// SpikeOps converts measured per-boundary spike counts into the paper's
// Table III operation counts: one add per spike for rate coding, and one
// multiply plus one add per spike for weighted schemes (phase, burst,
// TTFS kernels — the non-linear weight itself comes from a lookup
// table). This matches the paper exactly: its rate-coding "Add" column
// equals the Table II spike count.
func SpikeOps(net *snn.Net, spikesPerBoundary []float64, weighted bool) (Ops, error) {
	if len(spikesPerBoundary) != len(net.Stages) {
		return Ops{}, fmt.Errorf("opcount: %d boundaries for %d stages", len(spikesPerBoundary), len(net.Stages))
	}
	total := 0.0
	for _, s := range spikesPerBoundary {
		total += s
	}
	o := Ops{Add: total}
	if weighted {
		o.Mult = total
	}
	return o, nil
}

// SynapticOps is the finer-grained per-synapse view: every spike costs
// one accumulation per synapse it drives (spikes × fan-out). The paper's
// table uses the per-spike model above; this variant backs the ablation
// bench comparing the two cost models.
func SynapticOps(net *snn.Net, spikesPerBoundary []float64, weighted bool) (Ops, error) {
	if len(spikesPerBoundary) != len(net.Stages) {
		return Ops{}, fmt.Errorf("opcount: %d boundaries for %d stages", len(spikesPerBoundary), len(net.Stages))
	}
	adds := 0.0
	for b, s := range spikesPerBoundary {
		adds += s * AvgFanOut(net, b)
	}
	o := Ops{Add: adds}
	if weighted {
		o.Mult = adds
	}
	return o, nil
}

// TDSNNConfig parameterizes the TDSNN (reverse coding) cost estimate.
// TDSNN uses leaky IF neurons — an exponential decay (modelled as one
// multiply) per neuron per time step — plus auxiliary "ticking" neurons
// that fire every step of every layer's window, each tick accumulating
// into the layer's neurons.
type TDSNNConfig struct {
	// Steps is the total simulation length in time steps.
	Steps int
	// TickFraction is the fraction of time steps on which ticking
	// neurons drive accumulations (1.0 = every step).
	TickFraction float64
}

// TDSNN estimates the reverse-coding cost on the given network, the
// paper's Table III comparison row. The estimate follows §V: leaky
// updates are proportional to neurons × steps (mults) and ticking-neuron
// accumulations to neurons × ticking steps (adds), on top of the one
// genuine TTFS spike per neuron (adds through fan-out).
func TDSNN(net *snn.Net, cfg TDSNNConfig) Ops {
	if cfg.Steps <= 0 {
		cfg.Steps = 100
	}
	if cfg.TickFraction <= 0 {
		cfg.TickFraction = 1
	}
	neurons := float64(net.NumNeurons())
	ops := Ops{
		Mult: neurons * float64(cfg.Steps), // LIF decay per neuron-step
		Add:  neurons * float64(cfg.Steps) * cfg.TickFraction,
	}
	// one TTFS spike per neuron through the average fan-out
	perBoundary := make([]float64, len(net.Stages))
	perBoundary[0] = float64(net.InLen)
	for i := 0; i < len(net.Stages)-1; i++ {
		perBoundary[i+1] = float64(net.Stages[i].OutLen)
	}
	spikeOps, err := SpikeOps(net, perBoundary, false)
	if err == nil {
		ops.Add += spikeOps.Add
	}
	return ops
}
