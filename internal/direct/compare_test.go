package direct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// The paper's §I framing: conversion leverages mature DNN training,
// while direct surrogate-gradient training of comparable shallow
// networks is workable but does not surpass it. On the shared fixture
// task, the converted T2FSNN must be at least competitive with a
// directly trained SNN of similar hidden capacity.
func TestConversionCompetitiveWithDirectTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short")
	}
	fx := testutil.TrainedLeNet16()

	// direct SNN: flatten 16x16 -> 64 hidden spiking units
	n, err := New(Config{In: 256, Hidden: 64, Classes: 10, T: 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	flat := fx.X.Reshape(300, 256)
	Train(n, flat, fx.Labels, TrainConfig{
		Epochs: 10, BatchSize: 25,
		Optimizer: dnn.NewAdam(3e-3, 0), RNG: tensor.NewRNG(22)})
	directAcc, directSpikes := Evaluate(n, flat, fx.Labels)

	// converted T2FSNN on the identical data
	m, err := core.NewModel(fx.Conv.Net, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(fx.X.Data, 300, 256)
	ev, err := core.Evaluate(m, x, fx.Labels, core.EvalOptions{
		Run: core.RunConfig{EarlyFire: true}})
	if err != nil {
		t.Fatal(err)
	}

	if directAcc < 0.5 {
		t.Fatalf("direct training failed to learn the task: %.2f", directAcc)
	}
	if ev.Accuracy < directAcc-0.15 {
		t.Fatalf("conversion (%.2f) fell far below direct training (%.2f)", ev.Accuracy, directAcc)
	}
	t.Logf("direct: acc=%.2f spikes/sample=%.0f | converted TTFS: acc=%.2f spikes/sample=%.0f",
		directAcc, directSpikes, ev.Accuracy, ev.AvgSpikes)
}
