// Package direct implements surrogate-gradient direct training of a
// spiking network (STBP-style, Wu 2019 / Jin 2018 — the papers cited in
// the T2FSNN introduction as the alternative to DNN-to-SNN conversion).
// A two-layer integrate-and-fire network is unrolled over T time steps,
// the Heaviside firing non-linearity is replaced by a triangular
// surrogate derivative on the backward pass, and backpropagation-
// through-time trains the weights end to end.
//
// The paper's premise — that direct training "shows unsatisfactory
// results" next to conversion at depth — is exercised by the comparison
// bench: this module trains shallow rate-coded SNNs competitively but
// has no mechanism to scale to the VGG-16 pipelines the conversion path
// handles.
package direct

import (
	"fmt"
	"io"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

// Config sizes the directly trained spiking network.
type Config struct {
	In, Hidden, Classes int
	// T is the number of simulation steps per forward pass.
	T int
	// Theta is the firing threshold (soft reset subtracts it).
	Theta float64
	// SurrogateWidth is the half-width of the triangular surrogate
	// derivative around the threshold.
	SurrogateWidth float64
	Seed           uint64
}

// Network is a 2-layer spiking network trained with surrogate
// gradients: input pixels inject constant current, one hidden IF layer
// spikes, and the output layer integrates without firing (classification
// reads the time-averaged output potential).
type Network struct {
	Cfg Config
	W1  *dnn.Param // [In, Hidden]
	B1  *dnn.Param // [Hidden]
	W2  *dnn.Param // [Hidden, Classes]
	B2  *dnn.Param // [Classes]
}

// New initializes the network with He-normal weights.
func New(cfg Config) (*Network, error) {
	switch {
	case cfg.In <= 0 || cfg.Hidden <= 0 || cfg.Classes <= 0:
		return nil, fmt.Errorf("direct: non-positive layer sizes %+v", cfg)
	case cfg.T <= 0:
		return nil, fmt.Errorf("direct: non-positive window %d", cfg.T)
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 1
	}
	if cfg.SurrogateWidth <= 0 {
		cfg.SurrogateWidth = 0.5
	}
	rng := tensor.NewRNG(cfg.Seed)
	w1 := tensor.New(cfg.In, cfg.Hidden)
	rng.HeInit(w1, cfg.In)
	w2 := tensor.New(cfg.Hidden, cfg.Classes)
	rng.HeInit(w2, cfg.Hidden)
	return &Network{
		Cfg: cfg,
		W1:  &dnn.Param{Name: "direct.W1", W: w1, Grad: tensor.New(cfg.In, cfg.Hidden)},
		B1:  &dnn.Param{Name: "direct.b1", W: tensor.New(cfg.Hidden), Grad: tensor.New(cfg.Hidden)},
		W2:  &dnn.Param{Name: "direct.W2", W: w2, Grad: tensor.New(cfg.Hidden, cfg.Classes)},
		B2:  &dnn.Param{Name: "direct.b2", W: tensor.New(cfg.Classes), Grad: tensor.New(cfg.Classes)},
	}, nil
}

// Params returns the trainable parameters (compatible with dnn
// optimizers).
func (n *Network) Params() []*dnn.Param {
	return []*dnn.Param{n.W1, n.B1, n.W2, n.B2}
}

// forwardState holds the unrolled trajectory BPTT needs.
type forwardState struct {
	i1     []float64   // constant input current to the hidden layer
	u1     [][]float64 // hidden membrane per step
	s1     [][]float64 // hidden spikes per step (0/1)
	meanS1 []float64   // time-averaged hidden spike rate
	logits []float64
	spikes int
}

// forward unrolls one sample.
func (n *Network) forward(x []float64) *forwardState {
	cfg := n.Cfg
	st := &forwardState{
		i1:     make([]float64, cfg.Hidden),
		meanS1: make([]float64, cfg.Hidden),
		logits: make([]float64, cfg.Classes),
	}
	// constant current: I1 = W1ᵀx + b1
	copy(st.i1, n.B1.W.Data)
	for i, v := range x {
		if v == 0 {
			continue
		}
		row := n.W1.W.Data[i*cfg.Hidden : (i+1)*cfg.Hidden]
		for j, w := range row {
			st.i1[j] += v * w
		}
	}
	u := make([]float64, cfg.Hidden)
	prevSpike := make([]float64, cfg.Hidden)
	for t := 0; t < cfg.T; t++ {
		ut := make([]float64, cfg.Hidden)
		stp := make([]float64, cfg.Hidden)
		for j := range ut {
			ut[j] = u[j] - cfg.Theta*prevSpike[j] + st.i1[j]
			if ut[j] >= cfg.Theta {
				stp[j] = 1
				st.spikes++
			}
			st.meanS1[j] += stp[j]
		}
		st.u1 = append(st.u1, ut)
		st.s1 = append(st.s1, stp)
		u, prevSpike = ut, stp
	}
	invT := 1 / float64(cfg.T)
	for j := range st.meanS1 {
		st.meanS1[j] *= invT
	}
	// output integrates spikes; time-averaged potential is the logit
	copy(st.logits, n.B2.W.Data)
	for j, r := range st.meanS1 {
		if r == 0 {
			continue
		}
		row := n.W2.W.Data[j*cfg.Classes : (j+1)*cfg.Classes]
		for c, w := range row {
			st.logits[c] += r * w
		}
	}
	return st
}

// Infer classifies one sample, returning the predicted class and the
// hidden spike count.
func (n *Network) Infer(x []float64) (pred, spikes int) {
	st := n.forward(x)
	best, bi := st.logits[0], 0
	for c, v := range st.logits {
		if v > best {
			best, bi = v, c
		}
	}
	return bi, st.spikes
}

// surrogate is the triangular pseudo-derivative of the firing function.
func (n *Network) surrogate(u float64) float64 {
	d := u - n.Cfg.Theta
	if d < 0 {
		d = -d
	}
	w := n.Cfg.SurrogateWidth
	if d >= w {
		return 0
	}
	return (1 - d/w) / w
}

// backward accumulates parameter gradients for one sample given
// dL/dlogits, using BPTT with the surrogate derivative.
func (n *Network) backward(x []float64, st *forwardState, dLogits []float64) {
	cfg := n.Cfg
	// output layer: logits = W2ᵀ·meanS1 + b2
	for j, r := range st.meanS1 {
		row := n.W2.Grad.Data[j*cfg.Classes : (j+1)*cfg.Classes]
		for c, g := range dLogits {
			row[c] += r * g
		}
	}
	for c, g := range dLogits {
		n.B2.Grad.Data[c] += g
	}
	// dL/ds1[t] from the readout: W2·dLogits / T (same every step)
	dsOut := make([]float64, cfg.Hidden)
	invT := 1 / float64(cfg.T)
	for j := 0; j < cfg.Hidden; j++ {
		row := n.W2.W.Data[j*cfg.Classes : (j+1)*cfg.Classes]
		s := 0.0
		for c, g := range dLogits {
			s += row[c] * g
		}
		dsOut[j] = s * invT
	}
	// BPTT: u1[t] = u1[t-1] − θ·s1[t-1] + I1 ; s1[t] = H(u1[t] − θ)
	dI := make([]float64, cfg.Hidden)
	guNext := make([]float64, cfg.Hidden) // dL/du1[t+1]
	for t := cfg.T - 1; t >= 0; t-- {
		for j := 0; j < cfg.Hidden; j++ {
			// dL/ds1[t]: the readout path plus, for non-final steps,
			// the −θ soft-reset path into u1[t+1]
			ds := dsOut[j]
			if t+1 < cfg.T {
				ds += -cfg.Theta * guNext[j]
			}
			gu := ds*n.surrogate(st.u1[t][j]) + guNext[j]
			dI[j] += gu
			guNext[j] = gu
		}
	}
	// I1 = W1ᵀx + b1
	for i, v := range x {
		if v == 0 {
			continue
		}
		row := n.W1.Grad.Data[i*cfg.Hidden : (i+1)*cfg.Hidden]
		for j, g := range dI {
			row[j] += v * g
		}
	}
	for j, g := range dI {
		n.B1.Grad.Data[j] += g
	}
}

// TrainConfig controls direct training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer dnn.Optimizer
	RNG       *tensor.RNG
	Log       io.Writer
}

// Train fits the network with mini-batch BPTT. x is [N, In] (flattened
// samples); labels holds N class indices.
func Train(n *Network, x *tensor.Tensor, labels []int, cfg TrainConfig) []dnn.EpochStats {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = dnn.NewAdam(1e-3, 0)
	}
	if cfg.RNG == nil {
		cfg.RNG = tensor.NewRNG(0)
	}
	nSamples := x.Shape[0]
	in := n.Cfg.In
	var stats []dnn.EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := cfg.RNG.Perm(nSamples)
		totalLoss, correct := 0.0, 0
		for start := 0; start < nSamples; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > nSamples {
				end = nSamples
			}
			for _, p := range n.Params() {
				p.ZeroGrad()
			}
			for _, idx := range perm[start:end] {
				sample := x.Data[idx*in : (idx+1)*in]
				st := n.forward(sample)
				logits := tensor.FromSlice(st.logits, 1, n.Cfg.Classes)
				loss, grad := dnn.SoftmaxCrossEntropy(logits, []int{labels[idx]})
				totalLoss += loss
				if dnn.ArgMaxRows(logits)[0] == labels[idx] {
					correct++
				}
				n.backward(sample, st, grad.Data)
			}
			// average the batch gradient
			scale := 1 / float64(end-start)
			for _, p := range n.Params() {
				p.Grad.Scale(scale)
			}
			cfg.Optimizer.Step(n.Params())
		}
		st := dnn.EpochStats{
			Epoch:    epoch + 1,
			Loss:     totalLoss / float64(nSamples),
			Accuracy: float64(correct) / float64(nSamples),
		}
		stats = append(stats, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "direct epoch %d/%d: loss=%.4f acc=%.2f%%\n",
				st.Epoch, cfg.Epochs, st.Loss, 100*st.Accuracy)
		}
	}
	return stats
}

// Evaluate returns accuracy and mean hidden spikes per sample.
func Evaluate(n *Network, x *tensor.Tensor, labels []int) (acc, avgSpikes float64) {
	nSamples := x.Shape[0]
	in := n.Cfg.In
	hit, spikes := 0, 0
	for i := 0; i < nSamples; i++ {
		pred, s := n.Infer(x.Data[i*in : (i+1)*in])
		if pred == labels[i] {
			hit++
		}
		spikes += s
	}
	return float64(hit) / float64(nSamples), float64(spikes) / float64(nSamples)
}
