package direct

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

// blobs returns a small two-class problem: bright left half vs bright
// right half over a 16-dim input.
func blobs(n int, seed uint64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	x := tensor.New(n, 16)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < 8; j++ {
			x.Data[i*16+cls*8+j] = tensor.Clamp(0.8+0.2*rng.Norm(), 0, 1)
		}
		for j := 0; j < 16; j++ {
			x.Data[i*16+j] = tensor.Clamp(x.Data[i*16+j]+0.05*rng.Norm(), 0, 1)
		}
	}
	return x, labels
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{In: 0, Hidden: 4, Classes: 2, T: 10}); err == nil {
		t.Fatal("zero input size accepted")
	}
	if _, err := New(Config{In: 4, Hidden: 4, Classes: 2, T: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	n, err := New(Config{In: 4, Hidden: 8, Classes: 2, T: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Cfg.Theta != 1 || n.Cfg.SurrogateWidth != 0.5 {
		t.Fatalf("defaults not applied: %+v", n.Cfg)
	}
	if len(n.Params()) != 4 {
		t.Fatalf("param count %d", len(n.Params()))
	}
}

func TestSurrogateShape(t *testing.T) {
	n, _ := New(Config{In: 1, Hidden: 1, Classes: 2, T: 5, Seed: 1})
	// peak at the threshold, zero outside the width
	if n.surrogate(1) <= n.surrogate(1.4) {
		t.Fatal("surrogate must peak at threshold")
	}
	if n.surrogate(2.0) != 0 || n.surrogate(0.0) != 0 {
		t.Fatal("surrogate must vanish outside its width")
	}
	if n.surrogate(0.8) != n.surrogate(1.2) {
		t.Fatal("surrogate must be symmetric")
	}
}

func TestForwardSpikeRate(t *testing.T) {
	// a single hidden neuron with weight 1 and drive 0.5 fires every
	// other step (soft reset), so its rate over T=20 is 0.5
	n, _ := New(Config{In: 1, Hidden: 1, Classes: 1, T: 20, Seed: 1})
	n.W1.W.Data[0] = 1
	n.B1.W.Data[0] = 0
	st := n.forward([]float64{0.5})
	if st.meanS1[0] != 0.5 {
		t.Fatalf("hidden rate = %v, want 0.5", st.meanS1[0])
	}
	if st.spikes != 10 {
		t.Fatalf("spikes = %d, want 10", st.spikes)
	}
}

func TestInferDeterministic(t *testing.T) {
	n, _ := New(Config{In: 16, Hidden: 8, Classes: 2, T: 10, Seed: 2})
	x, _ := blobs(4, 3)
	p1, s1 := n.Infer(x.Data[:16])
	p2, s2 := n.Infer(x.Data[:16])
	if p1 != p2 || s1 != s2 {
		t.Fatal("inference must be deterministic")
	}
}

func TestDirectTrainingLearns(t *testing.T) {
	x, labels := blobs(200, 4)
	n, err := New(Config{In: 16, Hidden: 24, Classes: 2, T: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats := Train(n, x, labels, TrainConfig{
		Epochs: 8, BatchSize: 20,
		Optimizer: dnn.NewAdam(5e-3, 0), RNG: tensor.NewRNG(6)})
	if len(stats) != 8 {
		t.Fatalf("stats length %d", len(stats))
	}
	acc, spikes := Evaluate(n, x, labels)
	if acc < 0.9 {
		t.Fatalf("direct training failed on separable data: acc %.2f", acc)
	}
	if spikes <= 0 || spikes > float64(24*10) {
		t.Fatalf("implausible spike count %v", spikes)
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[len(stats)-1].Loss)
	}
}

func TestTrainingReducesLossWithSGD(t *testing.T) {
	// the surrogate gradient must descend with plain SGD too
	x, labels := blobs(100, 7)
	n, _ := New(Config{In: 16, Hidden: 16, Classes: 2, T: 8, Seed: 8})
	stats := Train(n, x, labels, TrainConfig{
		Epochs: 6, BatchSize: 10,
		Optimizer: dnn.NewSGD(0.5, 0.9, 0), RNG: tensor.NewRNG(9)})
	if stats[5].Loss >= stats[0].Loss {
		t.Fatalf("SGD loss did not decrease: %v -> %v", stats[0].Loss, stats[5].Loss)
	}
}

func TestGradientsAccumulateSomewhere(t *testing.T) {
	// one backward pass must touch every parameter group when the
	// sample drives hidden units near threshold
	n, _ := New(Config{In: 16, Hidden: 16, Classes: 2, T: 10, Seed: 10})
	x, labels := blobs(2, 11)
	st := n.forward(x.Data[:16])
	logits := tensor.FromSlice(st.logits, 1, 2)
	_, grad := dnn.SoftmaxCrossEntropy(logits, labels[:1])
	n.backward(x.Data[:16], st, grad.Data)
	for _, p := range []*dnn.Param{n.W2, n.B2} {
		if p.Grad.Norm2() == 0 {
			t.Fatalf("%s received no gradient", p.Name)
		}
	}
}
