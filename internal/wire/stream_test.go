package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestStreamEventRoundTrip(t *testing.T) {
	ev := StreamEvent{
		Kind: EventFrame,
		Seq:  42,
		Resp: Response{
			Pred: 7, LatencySteps: 19, TotalSpikes: 321,
			EventsSaved: 55, WallUs: 1234, EarlyExit: true,
		},
		StageSpikes: []uint32{100, 40, 30, 10},
		Timeline:    []TimedStep{{Step: 3, Pred: 1}, {Step: 9, Pred: 7}},
	}
	frame := AppendStreamEvent(nil, ev)
	var got StreamEvent
	if err := DecodeStreamEvent(frame, &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != ev.Kind || got.Seq != ev.Seq || got.Resp != ev.Resp {
		t.Fatalf("header mismatch: %+v vs %+v", got, ev)
	}
	if len(got.StageSpikes) != 4 || got.StageSpikes[0] != 100 || got.StageSpikes[3] != 10 {
		t.Fatalf("stage spikes %v", got.StageSpikes)
	}
	if len(got.Timeline) != 2 || got.Timeline[1] != (TimedStep{9, 7}) {
		t.Fatalf("timeline %v", got.Timeline)
	}
}

func TestStreamEventMessageKinds(t *testing.T) {
	for _, kind := range []uint8{EventDrain, EventRetry, EventError} {
		ev := StreamEvent{Kind: kind, Seq: 3, Msg: "backend away"}
		frame := AppendStreamEvent(nil, ev)
		var got StreamEvent
		if err := DecodeStreamEvent(frame, &got); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if got.Kind != kind || got.Msg != "backend away" || len(got.Timeline) != 0 {
			t.Fatalf("kind %d round trip: %+v", kind, got)
		}
	}
}

func TestStreamEventTruncated(t *testing.T) {
	frame := AppendStreamEvent(nil, StreamEvent{
		Kind: EventFrame, Seq: 1, StageSpikes: []uint32{1, 2},
	})
	var ev StreamEvent
	for cut := 1; cut < len(frame); cut++ {
		if err := DecodeStreamEvent(frame[:cut], &ev); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReqReaderConsecutiveFrames(t *testing.T) {
	in1 := []float64{0.1, 0.5, 0.9}
	in2 := []float64{0.9, 0.5, 0.1}
	var buf bytes.Buffer
	b := AppendRequest(nil, Request{Sample: -1, Label: 4}, in1)
	b = AppendRequest(b, Request{Lane: LaneU8, Sample: 2, Label: -1}, in2)
	buf.Write(b)

	rr := NewReqReader(&buf)
	h, got, err := rr.Next(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Label != 4 || h.Sample != -1 {
		t.Fatalf("frame 1 header %+v", h)
	}
	for i, v := range in1 {
		if math.Abs(got[i]-v) > 1e-6 {
			t.Fatalf("frame 1 input[%d] = %v, want %v", i, got[i], v)
		}
	}
	h, got, err = rr.Next(got, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lane != LaneU8 || h.Sample != 2 {
		t.Fatalf("frame 2 header %+v", h)
	}
	if math.Abs(got[0]-0.9) > 1e-2 {
		t.Fatalf("frame 2 input %v", got)
	}
	if _, _, err = rr.Next(got, 3); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestReqReaderTruncatedMidFrame(t *testing.T) {
	full := AppendRequest(nil, Request{}, []float64{0.1, 0.2, 0.3})
	// cut mid-header and mid-payload
	for _, cut := range []int{ReqHeaderLen - 4, ReqHeaderLen + 5} {
		rr := NewReqReader(bytes.NewReader(full[:cut]))
		if _, _, err := rr.Next(nil, 3); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReqReaderRejectsBadHeaderBeforePayload(t *testing.T) {
	frame := AppendRequest(nil, Request{}, []float64{0.5})
	frame[0] = 'X'
	rr := NewReqReader(bytes.NewReader(frame))
	if _, _, err := rr.Next(nil, 1); !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
	// wrong model length announced in an otherwise valid header
	frame2 := AppendRequest(nil, Request{}, []float64{0.5, 0.5})
	rr = NewReqReader(bytes.NewReader(frame2))
	if _, _, err := rr.Next(nil, 3); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want length mismatch", err)
	}
}

func TestEventReaderStream(t *testing.T) {
	var b []byte
	for i := 1; i <= 3; i++ {
		b = AppendStreamEvent(b, StreamEvent{
			Kind: EventFrame, Seq: uint32(i),
			Resp:        Response{Pred: i, LatencySteps: 10 * i},
			StageSpikes: []uint32{uint32(i), uint32(2 * i)},
			Timeline:    []TimedStep{{Step: int32(i), Pred: int32(i)}},
		})
	}
	b = AppendStreamEvent(b, StreamEvent{Kind: EventDrain, Seq: 3, Msg: "bye"})

	er := NewEventReader(bytes.NewReader(b))
	for i := 1; i <= 3; i++ {
		ev, err := er.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != uint32(i) || ev.Resp.Pred != i || len(ev.StageSpikes) != 2 {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	ev, err := er.Next()
	if err != nil || ev.Kind != EventDrain || ev.Msg != "bye" {
		t.Fatalf("terminal: %+v, %v", ev, err)
	}
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("after terminal: %v, want io.EOF", err)
	}
}
