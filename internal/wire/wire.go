// Package wire is the binary inference protocol for the serving fast
// path: a versioned, length-prefixed frame format replacing JSON on
// POST /v1/infer when the client sends Content-Type application/x-t2f.
//
// TTFS payloads are tiny and regular — one activation per input neuron
// in, one spike time plus a handful of counters out — so the frames are
// flat little-endian structs with no per-field framing. Two input lanes
// are defined: float32 (4 bytes/neuron, exact enough that predictions
// match the float64 JSON path bit-for-bit on every fixture) and uint8
// (1 byte/neuron, the LC-TTFS-style aggressively discretized lane for
// inputs already normalized to [0,1]).
//
// Request frame (little-endian, 24-byte header + payload):
//
//	offset size  field
//	0      2     magic "T2"
//	2      1     version (1)
//	3      1     lane: 0 = float32, 1 = uint8
//	4      4     sample int32   (-1 = no fault stream)
//	8      4     label  int32   (-1 = unlabeled)
//	12     4     timeout_ms uint32 (0 = server default)
//	16     1     mode: 0 = server default, 1 = latency, 2 = throughput
//	17     3     reserved (must be zero)
//	20     4     n = input neuron count uint32 (the length prefix)
//	24     4n|n  input payload (float32 LE lanes, or uint8 lanes)
//
// Response frame (little-endian, fixed 24 bytes):
//
//	offset size  field
//	0      2     magic "T2"
//	2      1     version (1)
//	3      1     flags: bit0 = early exit
//	4      4     pred int32
//	8      4     latency_steps int32 (the output spike time)
//	12     4     total_spikes uint32
//	16     4     events_saved uint32
//	20     4     wall_us uint32 (saturating)
//
// Encode and decode work against caller-supplied buffers so the serving
// hot path never allocates; GetBuf/PutBuf pool byte slices for callers
// without their own reuse story.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ContentType is the negotiated media type: a request carrying it gets
// a binary response frame; anything else stays on the JSON path.
const ContentType = "application/x-t2f"

// Negotiates reports whether a Content-Type header value selects the
// binary protocol. Parameters after the media type ("; charset=…") are
// tolerated and ignored.
func Negotiates(contentType string) bool {
	if len(contentType) < len(ContentType) || contentType[:len(ContentType)] != ContentType {
		return false
	}
	rest := contentType[len(ContentType):]
	return rest == "" || rest[0] == ';' || rest[0] == ' '
}

// Version is the protocol version this package speaks.
const Version = 1

// Lane identifies the input payload encoding.
type Lane uint8

const (
	// LaneF32 carries inputs as little-endian float32 — 4 bytes per
	// neuron, exact to ~1e-7 relative.
	LaneF32 Lane = 0
	// LaneU8 carries inputs as uint8 in [0,255] mapped linearly onto
	// [0,1] — 1 byte per neuron, for pre-normalized activations.
	LaneU8 Lane = 1
)

// Request serving modes (the wire form of serve's mode strings).
const (
	ModeDefault    = 0
	ModeLatency    = 1
	ModeThroughput = 2
)

// ReqHeaderLen and RespLen are the fixed frame sizes.
const (
	ReqHeaderLen = 24
	RespLen      = 24
)

var (
	magic0, magic1 = byte('T'), byte('2')

	// ErrMagic, ErrVersion, ErrTruncated, ErrLane, ErrMode classify
	// malformed frames; the HTTP layer maps them all to 400.
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrLane      = errors.New("wire: unknown input lane")
	ErrMode      = errors.New("wire: unknown mode")
)

// Request is a decoded request header. The input payload is returned
// separately by DecodeRequest so it can land in a reused slice.
type Request struct {
	Lane      Lane
	Sample    int // -1 = no fault stream
	Label     int // -1 = unlabeled
	TimeoutMs int
	Mode      uint8 // ModeDefault | ModeLatency | ModeThroughput
}

// Response is one inference outcome in wire form.
type Response struct {
	Pred         int
	LatencySteps int
	TotalSpikes  uint32
	EventsSaved  uint32
	WallUs       uint32
	EarlyExit    bool
}

// AppendRequest encodes h and input onto buf and returns the extended
// slice. The inverse of DecodeRequest; clients pre-encode once and
// replay the bytes.
func AppendRequest(buf []byte, h Request, input []float64) []byte {
	var hdr [ReqHeaderLen]byte
	hdr[0], hdr[1], hdr[2] = magic0, magic1, Version
	hdr[3] = byte(h.Lane)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(h.Sample)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(h.Label)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(h.TimeoutMs))
	hdr[16] = h.Mode
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(input)))
	buf = append(buf, hdr[:]...)
	switch h.Lane {
	case LaneU8:
		for _, v := range input {
			buf = append(buf, quantU8(v))
		}
	default:
		var w [4]byte
		for _, v := range input {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(float32(v)))
			buf = append(buf, w[:]...)
		}
	}
	return buf
}

// quantU8 maps [0,1] onto the uint8 grid, clamping out-of-range values.
func quantU8(v float64) byte {
	q := math.Round(v * 255)
	if q < 0 {
		return 0
	}
	if q > 255 {
		return 255
	}
	return byte(q)
}

// DecodeRequest parses one request frame. The input payload is decoded
// into dst (grown only when capacity is short) so a pooled slice makes
// the steady state allocation-free. wantLen, when positive, is the
// model's expected input length: a frame announcing a different count
// fails fast with a descriptive error before the payload is touched.
func DecodeRequest(frame []byte, dst []float64, wantLen int) (Request, []float64, error) {
	var h Request
	if len(frame) < ReqHeaderLen {
		return h, dst, fmt.Errorf("%w: %d header bytes, want %d", ErrTruncated, len(frame), ReqHeaderLen)
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return h, dst, fmt.Errorf("%w: 0x%02x%02x", ErrMagic, frame[0], frame[1])
	}
	if frame[2] != Version {
		return h, dst, fmt.Errorf("%w: %d (this server speaks %d)", ErrVersion, frame[2], Version)
	}
	h.Lane = Lane(frame[3])
	if h.Lane != LaneF32 && h.Lane != LaneU8 {
		return h, dst, fmt.Errorf("%w: %d", ErrLane, frame[3])
	}
	h.Sample = int(int32(binary.LittleEndian.Uint32(frame[4:])))
	h.Label = int(int32(binary.LittleEndian.Uint32(frame[8:])))
	h.TimeoutMs = int(binary.LittleEndian.Uint32(frame[12:]))
	h.Mode = frame[16]
	if h.Mode > ModeThroughput {
		return h, dst, fmt.Errorf("%w: %d", ErrMode, frame[16])
	}
	n := int(binary.LittleEndian.Uint32(frame[20:]))
	if wantLen > 0 && n != wantLen {
		return h, dst, fmt.Errorf("wire: input length %d, model expects %d", n, wantLen)
	}
	payload := frame[ReqHeaderLen:]
	elem := 4
	if h.Lane == LaneU8 {
		elem = 1
	}
	if len(payload) != n*elem {
		return h, dst, fmt.Errorf("%w: %d payload bytes for %d lanes of %d", ErrTruncated, len(payload), n, elem)
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if h.Lane == LaneU8 {
		for i := 0; i < n; i++ {
			dst[i] = float64(payload[i]) / 255
		}
	} else {
		for i := 0; i < n; i++ {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
		}
	}
	return h, dst, nil
}

// AppendResponse encodes r onto buf and returns the extended slice.
func AppendResponse(buf []byte, r Response) []byte {
	var f [RespLen]byte
	f[0], f[1], f[2] = magic0, magic1, Version
	if r.EarlyExit {
		f[3] = 1
	}
	binary.LittleEndian.PutUint32(f[4:], uint32(int32(r.Pred)))
	binary.LittleEndian.PutUint32(f[8:], uint32(int32(r.LatencySteps)))
	binary.LittleEndian.PutUint32(f[12:], r.TotalSpikes)
	binary.LittleEndian.PutUint32(f[16:], r.EventsSaved)
	binary.LittleEndian.PutUint32(f[20:], r.WallUs)
	return append(buf, f[:]...)
}

// DecodeResponse parses one response frame.
func DecodeResponse(frame []byte) (Response, error) {
	var r Response
	if len(frame) < RespLen {
		return r, fmt.Errorf("%w: %d response bytes, want %d", ErrTruncated, len(frame), RespLen)
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return r, fmt.Errorf("%w: 0x%02x%02x", ErrMagic, frame[0], frame[1])
	}
	if frame[2] != Version {
		return r, fmt.Errorf("%w: %d", ErrVersion, frame[2])
	}
	r.EarlyExit = frame[3]&1 != 0
	r.Pred = int(int32(binary.LittleEndian.Uint32(frame[4:])))
	r.LatencySteps = int(int32(binary.LittleEndian.Uint32(frame[8:])))
	r.TotalSpikes = binary.LittleEndian.Uint32(frame[12:])
	r.EventsSaved = binary.LittleEndian.Uint32(frame[16:])
	r.WallUs = binary.LittleEndian.Uint32(frame[20:])
	return r, nil
}

// bufPool pools encode/decode byte slices for callers without their own
// per-connection reuse (the serve handlers, the gateway).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf checks a zero-length byte slice (capacity ≥ 4 KiB) out of the
// package pool. Return it with PutBuf when the frame is written.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a GetBuf slice to the pool.
func PutBuf(b *[]byte) { bufPool.Put(b) }
