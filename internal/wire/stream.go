// Stream framing: the binary lane of /v1/stream.
//
// Ingest reuses the one-shot request frame verbatim — a session is just
// consecutive request frames on a long-lived body, each self-describing
// via its n length prefix, read off the wire by ReqReader. Emission is a
// richer per-frame event (per-stage spike counts and an optional coding
// timeline don't fit the fixed 24-byte response), length-prefixed so a
// client can scan a socket without sniffing:
//
//	Stream event frame (little-endian, 32-byte header + payload):
//
//	offset size  field
//	0      2     magic "T2"
//	2      1     version (1)
//	3      1     kind: 0 frame | 1 drain | 2 retry | 3 error
//	4      4     seq uint32 (1-based frame number within the session)
//	8      4     pred int32
//	12     4     latency_steps int32 (the output spike time)
//	16     4     total_spikes uint32
//	20     4     events_saved uint32
//	24     4     wall_us uint32 (kind retry: suggested retry-after in ms)
//	28     1     flags: bit0 = early exit
//	29     1     nstages uint8
//	30     2     aux uint16: kind frame = timeline entry count;
//	             other kinds = message byte length
//	32     ...   payload: 4·nstages stage spike counts (uint32), then
//	             8·ntimeline (step int32, pred int32) pairs, or the
//	             UTF-8 message for non-frame kinds
//
// kind=frame carries one inference outcome. kind=drain is terminal: the
// server is going away gracefully and the session is complete as acked.
// kind=retry is terminal: the backend died mid-session; reconnect and
// resend unacked frames. kind=error reports a per-frame failure (the
// session continues; seq identifies the failed frame).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream event kinds.
const (
	EventFrame uint8 = 0
	EventDrain uint8 = 1
	EventRetry uint8 = 2
	EventError uint8 = 3
)

// StreamEventHeaderLen is the fixed stream event header size.
const StreamEventHeaderLen = 32

// TimedStep is one point of an argmax trajectory: at simulation step
// Step the running prediction became Pred.
type TimedStep struct {
	Step int32
	Pred int32
}

// StreamEvent is one per-frame emission on a stream session.
type StreamEvent struct {
	Kind uint8
	Seq  uint32
	Resp Response // one-shot outcome fields (kind frame)

	// StageSpikes is the per-stage spike count vector: index 0 is the
	// input encoding, index i ≥ 1 is stage i-1's fire phase.
	StageSpikes []uint32
	// Timeline is the argmax trajectory (only when the client asked).
	Timeline []TimedStep
	// Msg carries detail for drain/retry/error kinds.
	Msg string
}

// AppendStreamEvent encodes ev onto buf and returns the extended slice.
// Oversized vectors are clamped to what the header can carry (255
// stages, 65535 timeline entries or message bytes) — far beyond any
// real model or error string.
func AppendStreamEvent(buf []byte, ev StreamEvent) []byte {
	stages := ev.StageSpikes
	if len(stages) > 255 {
		stages = stages[:255]
	}
	timeline := ev.Timeline
	if len(timeline) > 65535 {
		timeline = timeline[:65535]
	}
	msg := ev.Msg
	if len(msg) > 65535 {
		msg = msg[:65535]
	}
	var hdr [StreamEventHeaderLen]byte
	hdr[0], hdr[1], hdr[2] = magic0, magic1, Version
	hdr[3] = ev.Kind
	binary.LittleEndian.PutUint32(hdr[4:], ev.Seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(ev.Resp.Pred)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(ev.Resp.LatencySteps)))
	binary.LittleEndian.PutUint32(hdr[16:], ev.Resp.TotalSpikes)
	binary.LittleEndian.PutUint32(hdr[20:], ev.Resp.EventsSaved)
	binary.LittleEndian.PutUint32(hdr[24:], ev.Resp.WallUs)
	if ev.Resp.EarlyExit {
		hdr[28] = 1
	}
	hdr[29] = byte(len(stages))
	if ev.Kind == EventFrame {
		binary.LittleEndian.PutUint16(hdr[30:], uint16(len(timeline)))
	} else {
		binary.LittleEndian.PutUint16(hdr[30:], uint16(len(msg)))
	}
	buf = append(buf, hdr[:]...)
	var w [8]byte
	for _, s := range stages {
		binary.LittleEndian.PutUint32(w[:4], s)
		buf = append(buf, w[:4]...)
	}
	if ev.Kind == EventFrame {
		for _, tp := range timeline {
			binary.LittleEndian.PutUint32(w[:4], uint32(tp.Step))
			binary.LittleEndian.PutUint32(w[4:], uint32(tp.Pred))
			buf = append(buf, w[:]...)
		}
	} else {
		buf = append(buf, msg...)
	}
	return buf
}

// DecodeStreamEvent parses one stream event frame. Payload slices are
// decoded into ev's existing StageSpikes/Timeline capacity when
// possible, so a reused event makes the steady state allocation-free.
func DecodeStreamEvent(frame []byte, ev *StreamEvent) error {
	if len(frame) < StreamEventHeaderLen {
		return fmt.Errorf("%w: %d event bytes, want header %d", ErrTruncated, len(frame), StreamEventHeaderLen)
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return fmt.Errorf("%w: 0x%02x%02x", ErrMagic, frame[0], frame[1])
	}
	if frame[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, frame[2])
	}
	ev.Kind = frame[3]
	if ev.Kind > EventError {
		return fmt.Errorf("wire: unknown stream event kind %d", ev.Kind)
	}
	ev.Seq = binary.LittleEndian.Uint32(frame[4:])
	ev.Resp.Pred = int(int32(binary.LittleEndian.Uint32(frame[8:])))
	ev.Resp.LatencySteps = int(int32(binary.LittleEndian.Uint32(frame[12:])))
	ev.Resp.TotalSpikes = binary.LittleEndian.Uint32(frame[16:])
	ev.Resp.EventsSaved = binary.LittleEndian.Uint32(frame[20:])
	ev.Resp.WallUs = binary.LittleEndian.Uint32(frame[24:])
	ev.Resp.EarlyExit = frame[28]&1 != 0
	nstages := int(frame[29])
	aux := int(binary.LittleEndian.Uint16(frame[30:]))
	ntimeline, nmsg := 0, 0
	if ev.Kind == EventFrame {
		ntimeline = aux
	} else {
		nmsg = aux
	}
	want := StreamEventHeaderLen + 4*nstages + 8*ntimeline + nmsg
	if len(frame) != want {
		return fmt.Errorf("%w: %d event bytes, want %d", ErrTruncated, len(frame), want)
	}
	p := frame[StreamEventHeaderLen:]
	if cap(ev.StageSpikes) < nstages {
		ev.StageSpikes = make([]uint32, nstages)
	}
	ev.StageSpikes = ev.StageSpikes[:nstages]
	for i := 0; i < nstages; i++ {
		ev.StageSpikes[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	p = p[4*nstages:]
	if cap(ev.Timeline) < ntimeline {
		ev.Timeline = make([]TimedStep, ntimeline)
	}
	ev.Timeline = ev.Timeline[:ntimeline]
	for i := 0; i < ntimeline; i++ {
		ev.Timeline[i].Step = int32(binary.LittleEndian.Uint32(p[i*8:]))
		ev.Timeline[i].Pred = int32(binary.LittleEndian.Uint32(p[i*8+4:]))
	}
	ev.Msg = string(p[8*ntimeline:])
	return nil
}

// streamEventSize returns the total frame length announced by a stream
// event header.
func streamEventSize(hdr []byte) (int, error) {
	kind := hdr[3]
	if kind > EventError {
		return 0, fmt.Errorf("wire: unknown stream event kind %d", kind)
	}
	nstages := int(hdr[29])
	aux := int(binary.LittleEndian.Uint16(hdr[30:]))
	n := StreamEventHeaderLen + 4*nstages
	if kind == EventFrame {
		n += 8 * aux
	} else {
		n += aux
	}
	return n, nil
}

// ReqReader reads consecutive request frames off a stream. It owns a
// payload scratch buffer reused across frames.
type ReqReader struct {
	r   io.Reader
	buf []byte
}

// NewReqReader wraps r for frame-at-a-time reading.
func NewReqReader(r io.Reader) *ReqReader {
	return &ReqReader{r: r, buf: make([]byte, 0, 4096)}
}

// Next reads one request frame. io.EOF at a frame boundary means the
// client finished the session cleanly; a partial frame surfaces as
// ErrTruncated. Semantics otherwise match DecodeRequest.
func (rr *ReqReader) Next(dst []float64, wantLen int) (Request, []float64, error) {
	var hdr [ReqHeaderLen]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Request{}, dst, io.EOF
		}
		return Request{}, dst, fmt.Errorf("%w: mid-header: %v", ErrTruncated, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[20:]))
	// Validate the header alone first (magic, version, lane, mode,
	// length-vs-model) so a bad frame fails before any payload read; a
	// truncation complaint is expected here since the payload isn't
	// attached yet.
	if _, _, err := DecodeRequest(hdr[:], nil, wantLen); err != nil && !errors.Is(err, ErrTruncated) {
		return Request{}, dst, err
	}
	elem := 4
	if Lane(hdr[3]) == LaneU8 {
		elem = 1
	}
	need := n * elem
	if cap(rr.buf) < ReqHeaderLen+need {
		rr.buf = make([]byte, 0, ReqHeaderLen+need)
	}
	rr.buf = rr.buf[:ReqHeaderLen+need]
	copy(rr.buf, hdr[:])
	if _, err := io.ReadFull(rr.r, rr.buf[ReqHeaderLen:]); err != nil {
		return Request{}, dst, fmt.Errorf("%w: mid-payload: %v", ErrTruncated, err)
	}
	return DecodeRequest(rr.buf, dst, wantLen)
}

// EventReader reads consecutive stream event frames (the client side of
// a binary session). The returned event's slices are reused across
// calls.
type EventReader struct {
	r   io.Reader
	buf []byte
	ev  StreamEvent
}

// NewEventReader wraps r for event-at-a-time reading.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{r: r, buf: make([]byte, 0, 1024)}
}

// Next reads one stream event. io.EOF at a frame boundary means the
// server closed the session; a partial frame surfaces as ErrTruncated.
// The returned pointer is valid until the next call.
func (er *EventReader) Next() (*StreamEvent, error) {
	if cap(er.buf) < StreamEventHeaderLen {
		er.buf = make([]byte, 0, 1024)
	}
	hdr := er.buf[:StreamEventHeaderLen]
	if _, err := io.ReadFull(er.r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: mid-event-header: %v", ErrTruncated, err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, fmt.Errorf("%w: 0x%02x%02x", ErrMagic, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, hdr[2])
	}
	size, err := streamEventSize(hdr)
	if err != nil {
		return nil, err
	}
	if cap(er.buf) < size {
		buf := make([]byte, size)
		copy(buf, hdr)
		er.buf = buf
	}
	er.buf = er.buf[:size]
	if _, err := io.ReadFull(er.r, er.buf[StreamEventHeaderLen:]); err != nil {
		return nil, fmt.Errorf("%w: mid-event-payload: %v", ErrTruncated, err)
	}
	if err := DecodeStreamEvent(er.buf, &er.ev); err != nil {
		return nil, err
	}
	return &er.ev, nil
}
