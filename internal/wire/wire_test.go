package wire

import (
	"errors"
	"math"
	"testing"
)

func TestRequestRoundTripF32(t *testing.T) {
	input := []float64{0, 0.25, 0.5, 1, 0.123456}
	h := Request{Lane: LaneF32, Sample: 7, Label: 3, TimeoutMs: 250, Mode: ModeLatency}
	frame := AppendRequest(nil, h, input)
	if len(frame) != ReqHeaderLen+4*len(input) {
		t.Fatalf("frame length %d, want %d", len(frame), ReqHeaderLen+4*len(input))
	}
	got, dec, err := DecodeRequest(frame, nil, len(input))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
	for i, v := range input {
		if want := float64(float32(v)); dec[i] != want {
			t.Fatalf("input[%d] = %v, want float32 round-trip %v", i, dec[i], want)
		}
	}
}

func TestRequestRoundTripU8(t *testing.T) {
	input := []float64{0, 0.5, 1, 0.998, -0.2, 1.7}
	h := Request{Lane: LaneU8, Sample: -1, Label: -1}
	frame := AppendRequest(nil, h, input)
	if len(frame) != ReqHeaderLen+len(input) {
		t.Fatalf("frame length %d, want %d", len(frame), ReqHeaderLen+len(input))
	}
	got, dec, err := DecodeRequest(frame, nil, len(input))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sample != -1 || got.Label != -1 {
		t.Fatalf("negative sample/label did not survive: %+v", got)
	}
	for i, v := range input {
		c := math.Min(math.Max(v, 0), 1)
		if want := math.Round(c*255) / 255; math.Abs(dec[i]-want) > 1e-12 {
			t.Fatalf("input[%d] = %v, want %v", i, dec[i], want)
		}
	}
}

func TestDecodeRequestReusesDst(t *testing.T) {
	input := make([]float64, 64)
	frame := AppendRequest(nil, Request{Lane: LaneF32}, input)
	dst := make([]float64, 0, 64)
	_, out, err := DecodeRequest(frame, dst, 64)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("decode did not reuse the caller's buffer")
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	good := AppendRequest(nil, Request{Lane: LaneF32}, make([]float64, 8))
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:10], ErrTruncated},
		{"truncated payload", good[:len(good)-3], ErrTruncated},
		{"bad magic", append([]byte{'X', 'Y'}, good[2:]...), ErrMagic},
		{"bad version", func() []byte { f := append([]byte(nil), good...); f[2] = 9; return f }(), ErrVersion},
		{"bad lane", func() []byte { f := append([]byte(nil), good...); f[3] = 7; return f }(), ErrLane},
		{"bad mode", func() []byte { f := append([]byte(nil), good...); f[16] = 3; return f }(), ErrMode},
	}
	for _, tc := range cases {
		if _, _, err := DecodeRequest(tc.frame, nil, 8); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, _, err := DecodeRequest(good, nil, 16); err == nil {
		t.Error("length mismatch vs model accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := Response{Pred: 9, LatencySteps: 17, TotalSpikes: 1234, EventsSaved: 56, WallUs: 789, EarlyExit: true}
	frame := AppendResponse(nil, r)
	if len(frame) != RespLen {
		t.Fatalf("response length %d, want %d", len(frame), RespLen)
	}
	got, err := DecodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("response %+v, want %+v", got, r)
	}
	if _, err := DecodeResponse(frame[:RespLen-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated response: err = %v, want ErrTruncated", err)
	}
	frame[0] = 'Z'
	if _, err := DecodeResponse(frame); !errors.Is(err, ErrMagic) {
		t.Fatalf("bad magic response: err = %v, want ErrMagic", err)
	}
}

func TestAppendEncodeZeroAlloc(t *testing.T) {
	input := make([]float64, 256)
	buf := make([]byte, 0, ReqHeaderLen+4*len(input))
	dst := make([]float64, 0, 256)
	rbuf := make([]byte, 0, RespLen)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendRequest(buf[:0], Request{Lane: LaneF32, Sample: -1, Label: -1}, input)
		_, dst, _ = DecodeRequest(buf, dst, 256)
		rbuf = AppendResponse(rbuf[:0], Response{Pred: 1})
		_, _ = DecodeResponse(rbuf)
	})
	if allocs != 0 {
		t.Fatalf("encode/decode allocated %.0f times per run, want 0", allocs)
	}
}
