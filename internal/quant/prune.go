package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/snn"
)

// PruneNet returns a deep copy of net with the smallest-magnitude
// fraction of each stage's weights set to zero (per-stage magnitude
// pruning, Han 2015 — the compression technique the paper's
// introduction motivates SNNs against). Zero weights cost nothing in an
// event-driven fabric: the Scatter path skips them only in storage, but
// the op-count and traffic models can discount them.
func PruneNet(net *snn.Net, sparsity float64) (*snn.Net, error) {
	if sparsity < 0 || sparsity >= 1 {
		return nil, fmt.Errorf("quant: sparsity %v out of [0,1)", sparsity)
	}
	out := &snn.Net{
		Name:    fmt.Sprintf("%s-p%02.0f", net.Name, sparsity*100),
		InShape: net.InShape, InLen: net.InLen,
	}
	for i := range net.Stages {
		src := &net.Stages[i]
		st := *src
		st.W = src.W.Clone()
		st.B = src.B.Clone()
		if sparsity > 0 {
			threshold := magnitudeThreshold(st.W.Data, sparsity)
			for j, v := range st.W.Data {
				if math.Abs(v) <= threshold {
					st.W.Data[j] = 0
				}
			}
		}
		out.Stages = append(out.Stages, st)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Sparsity reports the fraction of exactly-zero weights across the net.
func Sparsity(net *snn.Net) float64 {
	zeros, total := 0, 0
	for i := range net.Stages {
		for _, v := range net.Stages[i].W.Data {
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}

// magnitudeThreshold returns the magnitude below (or at) which the
// requested fraction of values falls.
func magnitudeThreshold(weights []float64, sparsity float64) float64 {
	mags := make([]float64, len(weights))
	for i, v := range weights {
		mags[i] = math.Abs(v)
	}
	sort.Float64s(mags)
	k := int(sparsity * float64(len(mags)))
	if k <= 0 {
		return -1 // prune nothing
	}
	if k >= len(mags) {
		k = len(mags) - 1
	}
	return mags[k-1]
}
