package quant_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestFormatBasics(t *testing.T) {
	f := quant.Format{IntBits: 1, FracBits: 2}
	if f.Bits() != 4 {
		t.Fatalf("Bits = %d", f.Bits())
	}
	if got, want := f.Max(), 2-0.25; got != want {
		t.Fatalf("Max = %v, want %v", got, want)
	}
}

func TestQuantizeGridAndSaturation(t *testing.T) {
	f := quant.Format{IntBits: 0, FracBits: 2} // grid 0.25, max 0.75
	cases := map[float64]float64{
		0.3: 0.25, 0.38: 0.5, -0.3: -0.25,
		5: 0.75, -5: -0.75, 0: 0,
	}
	for in, want := range cases {
		if got := f.Quantize(in); got != want {
			t.Fatalf("Quantize(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFormatFor(t *testing.T) {
	f, err := quant.FormatFor(3.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.IntBits != 2 || f.FracBits != 5 {
		t.Fatalf("format = %+v", f)
	}
	if f.Max() < 3.5 {
		t.Fatalf("format cannot hold its own range: max %v", f.Max())
	}
	// a width that cannot cover the range saturates: all value bits
	// become integer bits
	sat, err := quant.FormatFor(100, 2)
	if err != nil || sat.IntBits != 1 || sat.FracBits != 0 {
		t.Fatalf("saturating format = %+v (%v)", sat, err)
	}
	if _, err := quant.FormatFor(1, 1); err == nil {
		t.Fatal("1-bit format accepted")
	}
	// zero magnitude: everything fractional
	z, err := quant.FormatFor(0, 8)
	if err != nil || z.IntBits != 0 || z.FracBits != 7 {
		t.Fatalf("zero-range format = %+v (%v)", z, err)
	}
}

// Property: quantization error is bounded by half a step, within range.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		fmtq := quant.Format{IntBits: r.Intn(3), FracBits: 1 + r.Intn(10)}
		v := r.Range(-fmtq.Max(), fmtq.Max())
		q := fmtq.Quantize(v)
		step := math.Exp2(-float64(fmtq.FracBits))
		return math.Abs(q-v) <= step/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeNetPreservesStructure(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	qnet, formats, err := quant.QuantizeNet(fx.Conv.Net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(formats) != len(fx.Conv.Net.Stages) {
		t.Fatalf("formats = %d", len(formats))
	}
	if err := qnet.Validate(); err != nil {
		t.Fatal(err)
	}
	// original must be untouched
	if quant.RMSError(fx.Conv.Net, qnet) == 0 {
		t.Fatal("quantization had no effect at 8 bits (suspicious)")
	}
	for i := range fx.Conv.Net.Stages {
		if &fx.Conv.Net.Stages[i].W.Data[0] == &qnet.Stages[i].W.Data[0] {
			t.Fatal("quantized net shares weight storage with original")
		}
	}
}

func TestRMSErrorDecreasesWithBits(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	prev := math.Inf(1)
	for _, bits := range []int{4, 6, 8, 12} {
		qnet, _, err := quant.QuantizeNet(fx.Conv.Net, bits)
		if err != nil {
			t.Fatal(err)
		}
		e := quant.RMSError(fx.Conv.Net, qnet)
		if e >= prev {
			t.Fatalf("RMS error not decreasing: %v bits -> %v (prev %v)", bits, e, prev)
		}
		prev = e
	}
}

// The deployment question: accuracy as a function of weight bit width.
// 8-bit dynamic fixed point must track the float model closely; very
// narrow formats must degrade.
func TestAccuracyVsBits(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	run := func(bits int) float64 {
		qnet := fx.Conv.Net
		if bits > 0 {
			var err error
			qnet, _, err = quant.QuantizeNet(fx.Conv.Net, bits)
			if err != nil {
				t.Fatal(err)
			}
		}
		m, err := core.NewModel(qnet, 40, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.FromSlice(fx.X.Data[:80*256], 80, 256)
		ev, err := core.Evaluate(m, x, fx.Labels[:80], core.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Accuracy
	}
	full := run(0)
	q8 := run(8)
	q3 := run(3)
	if q8 < full-0.1 {
		t.Fatalf("8-bit accuracy %.2f collapsed from float %.2f", q8, full)
	}
	if q3 > q8 {
		t.Fatalf("3-bit (%.2f) should not beat 8-bit (%.2f)", q3, q8)
	}
}
