package quant

import "repro/internal/tensor"

// QuantizeTensor exposes quantizeTensor to the external test package,
// so the round-trip property test can pin bit-exactness against the
// exact tensor path QuantizeNet uses.
func QuantizeTensor(t *tensor.Tensor, f Format) *tensor.Tensor {
	return quantizeTensor(t, f)
}
