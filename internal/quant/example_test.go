package quant_test

import (
	"fmt"

	"repro/internal/quant"
)

// Dynamic fixed point spends its non-sign bits covering the value
// range; narrower formats quantize coarser and saturate outliers.
func ExampleFormatFor() {
	for _, bits := range []int{8, 4} {
		f, _ := quant.FormatFor(3.2, bits)
		fmt.Printf("%d bits -> Q%d.%d, max %.4f, 0.3 -> %.4f\n",
			bits, f.IntBits, f.FracBits, f.Max(), f.Quantize(0.3))
	}
	// Output:
	// 8 bits -> Q2.5, max 3.9688, 0.3 -> 0.3125
	// 4 bits -> Q2.1, max 3.5000, 0.3 -> 0.5000
}
