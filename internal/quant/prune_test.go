package quant_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestPruneNetSparsityLevels(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	for _, target := range []float64{0, 0.3, 0.7} {
		p, err := quant.PruneNet(fx.Conv.Net, target)
		if err != nil {
			t.Fatal(err)
		}
		got := quant.Sparsity(p)
		if got < target-0.05 || got > target+0.1 {
			t.Fatalf("target sparsity %v, achieved %v", target, got)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneNetDoesNotTouchOriginal(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	before := quant.Sparsity(fx.Conv.Net)
	if _, err := quant.PruneNet(fx.Conv.Net, 0.5); err != nil {
		t.Fatal(err)
	}
	if quant.Sparsity(fx.Conv.Net) != before {
		t.Fatal("pruning mutated the source network")
	}
}

func TestPruneKeepsLargestWeights(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	p, err := quant.PruneNet(fx.Conv.Net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// surviving weights must all be at least as large as pruned ones
	for i := range p.Stages {
		minKept, maxPruned := 1e18, 0.0
		for j, v := range p.Stages[i].W.Data {
			orig := fx.Conv.Net.Stages[i].W.Data[j]
			mag := orig
			if mag < 0 {
				mag = -mag
			}
			if v == 0 && orig != 0 {
				if mag > maxPruned {
					maxPruned = mag
				}
			} else if v != 0 {
				if mag < minKept {
					minKept = mag
				}
			}
		}
		if maxPruned > minKept {
			t.Fatalf("stage %d: pruned weight %v larger than kept %v", i, maxPruned, minKept)
		}
	}
}

func TestPruneRejectsBadSparsity(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	for _, s := range []float64{-0.1, 1.0, 2} {
		if _, err := quant.PruneNet(fx.Conv.Net, s); err == nil {
			t.Fatalf("sparsity %v accepted", s)
		}
	}
}

// Moderate pruning must roughly preserve spiking accuracy; extreme
// pruning must degrade it — the classic compression trade-off curve.
func TestPruneAccuracyTradeOff(t *testing.T) {
	fx := testutil.TrainedLeNet16()
	x := tensor.FromSlice(fx.X.Data[:80*256], 80, 256)
	acc := func(sparsity float64) float64 {
		net := fx.Conv.Net
		if sparsity > 0 {
			var err error
			net, err = quant.PruneNet(fx.Conv.Net, sparsity)
			if err != nil {
				t.Fatal(err)
			}
		}
		m, err := core.NewModel(net, 40, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := core.Evaluate(m, x, fx.Labels[:80], core.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Accuracy
	}
	full := acc(0)
	mild := acc(0.3)
	extreme := acc(0.95)
	if mild < full-0.15 {
		t.Fatalf("30%% pruning collapsed accuracy: %.2f -> %.2f", full, mild)
	}
	if extreme > mild {
		t.Fatalf("95%% pruning (%.2f) should not beat 30%% (%.2f)", extreme, mild)
	}
}
