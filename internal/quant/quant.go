// Package quant models fixed-point deployment of a converted spiking
// network: neuromorphic fabrics store synaptic weights and kernel
// lookup tables in narrow fixed-point formats, not float64. The
// quantizers here use per-stage dynamic fixed point (integer bits
// chosen to cover each stage's weight range, remaining bits fractional)
// and back the bit-width ablation bench: accuracy versus weight bits.
package quant

import (
	"fmt"
	"math"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// Format is a signed fixed-point format with IntBits integer bits and
// FracBits fractional bits (plus the sign bit).
type Format struct {
	IntBits  int
	FracBits int
}

// Bits returns the total width including sign.
func (f Format) Bits() int { return 1 + f.IntBits + f.FracBits }

// Max returns the largest representable magnitude.
func (f Format) Max() float64 {
	return math.Exp2(float64(f.IntBits)) - math.Exp2(-float64(f.FracBits))
}

// Step returns the grid step 2^−FracBits: values on the grid are
// integer multiples of Step.
func (f Format) Step() float64 { return math.Exp2(-float64(f.FracBits)) }

// MaxQ returns the largest grid index: Max()/Step() = 2^(i+f) − 1. For
// an 8-bit format this is ≤ 127, so grid indices fit an int8.
func (f Format) MaxQ() int32 {
	return int32(1)<<(uint(f.IntBits)+uint(f.FracBits)) - 1
}

// Quantize rounds v to the format's grid, saturating at the range
// limits. Ties round via snn.FixedRound (half away from zero) — the one
// rounding convention shared with the fixed-point kernel, so the int8
// engine and QuantizeNet agree bit for bit on tie values.
func (f Format) Quantize(v float64) float64 {
	step := f.Step()
	q := snn.FixedRound(v/step) * step
	limit := f.Max()
	if q > limit {
		return limit
	}
	if q < -limit {
		return -limit
	}
	return q
}

// FormatFor picks the per-stage dynamic fixed-point format: enough
// integer bits to cover maxAbs, the rest of totalBits fractional. When
// the width cannot cover the range, all non-sign bits go to the integer
// part and outliers saturate — exactly what a hardware register does.
//
// Coverage is verified directly against Format.Max() rather than
// trusting a log2 estimate: ceil(log2(maxAbs)) computed in floats picks
// one integer bit too few when maxAbs lands on (or within rounding
// error of) a power of two — Max() = 2^i − 2^−f is strictly below 2^i,
// so maxAbs = 2^i needs i+1 integer bits, and the old additive epsilon
// stopped masking that once maxAbs ≥ 2^12.
func FormatFor(maxAbs float64, totalBits int) (Format, error) {
	if totalBits < 2 {
		return Format{}, fmt.Errorf("quant: need at least 2 bits (sign + 1), got %d", totalBits)
	}
	intBits := 0
	if maxAbs > 0 {
		intBits = int(math.Ceil(math.Log2(maxAbs)))
		if intBits < 0 {
			intBits = 0
		}
		// The estimate can be off by one near powers of two; widen until
		// the format actually covers maxAbs or the width runs out.
		for totalBits-1-intBits >= 0 {
			f := Format{IntBits: intBits, FracBits: totalBits - 1 - intBits}
			if f.Max() >= maxAbs {
				break
			}
			intBits++
		}
	}
	fracBits := totalBits - 1 - intBits
	if fracBits < 0 {
		return Format{IntBits: totalBits - 1, FracBits: 0}, nil
	}
	return Format{IntBits: intBits, FracBits: fracBits}, nil
}

// StageFormats reports the chosen format per stage.
type StageFormats struct {
	Stage  string
	Weight Format
	Bias   Format
}

// QuantizeNet returns a deep copy of net with every stage's weights and
// biases rounded to per-stage dynamic fixed point of the given total
// bit width, along with the chosen formats.
func QuantizeNet(net *snn.Net, totalBits int) (*snn.Net, []StageFormats, error) {
	out := &snn.Net{Name: net.Name + fmt.Sprintf("-q%d", totalBits), InShape: net.InShape, InLen: net.InLen}
	var formats []StageFormats
	for i := range net.Stages {
		src := &net.Stages[i]
		st := *src // shallow copy; replace tensors below
		wf, err := FormatFor(maxAbs(src.W.Data), totalBits)
		if err != nil {
			return nil, nil, fmt.Errorf("quant: stage %s weights: %w", src.Name, err)
		}
		bf, err := FormatFor(maxAbs(src.B.Data), totalBits)
		if err != nil {
			return nil, nil, fmt.Errorf("quant: stage %s biases: %w", src.Name, err)
		}
		st.W = quantizeTensor(src.W, wf)
		st.B = quantizeTensor(src.B, bf)
		out.Stages = append(out.Stages, st)
		formats = append(formats, StageFormats{Stage: src.Name, Weight: wf, Bias: bf})
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, formats, nil
}

// RMSError returns the root-mean-square quantization error between the
// original and quantized nets' weights.
func RMSError(a, b *snn.Net) float64 {
	sum, n := 0.0, 0
	for i := range a.Stages {
		for j, v := range a.Stages[i].W.Data {
			d := v - b.Stages[i].W.Data[j]
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

func quantizeTensor(t *tensor.Tensor, f Format) *tensor.Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = f.Quantize(v)
	}
	return out
}

func maxAbs(data []float64) float64 {
	m := 0.0
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
