package quant_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Regression (PR 8): FormatFor's integer-bit count came from
// ceil(log2(maxAbs + 1e-12)). Max() = 2^i − 2^−f is strictly below 2^i,
// so maxAbs = 2^k needs k+1 integer bits — and once 2^k grew past the
// additive epsilon (k ≥ 12) the estimate stopped being nudged over the
// boundary, silently saturating the largest weight one grid step low.
// Assert coverage for every power of two, and near-boundary neighbours,
// whenever the width can cover the range at all.
func TestFormatForCoversPowersOfTwo(t *testing.T) {
	for _, totalBits := range []int{8, 16, 24} {
		for k := 0; k <= 20; k++ {
			p := math.Exp2(float64(k))
			for _, maxAbs := range []float64{p, math.Nextafter(p, 0), math.Nextafter(p, math.Inf(1))} {
				f, err := quant.FormatFor(maxAbs, totalBits)
				if err != nil {
					t.Fatal(err)
				}
				// Coverage is only possible when k+1 integer bits fit the
				// width; otherwise saturation is the documented behavior.
				if totalBits-1 < k+1 {
					continue
				}
				if f.Max() < maxAbs {
					t.Fatalf("FormatFor(%v, %d) = %+v: Max %v < maxAbs — saturates the top weight",
						maxAbs, totalBits, f, f.Max())
				}
			}
		}
	}
}

// FormatFor must never waste an integer bit either: one fewer integer
// bit (one more fractional bit) must fail to cover the range.
func TestFormatForIsMinimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		totalBits := 4 + r.Intn(21)
		maxAbs := math.Exp2(r.Range(-6, 12))
		fm, err := quant.FormatFor(maxAbs, totalBits)
		if err != nil || fm.Max() < maxAbs && fm.FracBits > 0 {
			return false
		}
		if fm.IntBits == 0 || fm.FracBits < 0 {
			return true
		}
		tighter := quant.Format{IntBits: fm.IntBits - 1, FracBits: fm.FracBits + 1}
		return tighter.Max() < maxAbs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Satellite (PR 8): Format.Quantize and the fixed-point kernel's int
// conversion must round ties identically — both go through
// snn.FixedRound (half away from zero). Pin the convention on exact tie
// values through both paths.
func TestQuantizeTieParityWithFixedRound(t *testing.T) {
	f := quant.Format{IntBits: 2, FracBits: 1} // step 0.5
	step := f.Step()
	ties := []float64{0.25, -0.25, 0.75, -0.75, 1.25, -1.25, 2.75, -2.75}
	wantQ := []float64{0.5, -0.5, 1, -1, 1.5, -1.5, 3, -3}
	for i, v := range ties {
		if got := f.Quantize(v); got != wantQ[i] {
			t.Fatalf("Quantize(%v) = %v, want %v (half away from zero)", v, got, wantQ[i])
		}
		// The kernel-side conversion: grid index via FixedRound, then
		// dequantize — must land on the identical grid point.
		if got := snn.FixedRound(v/step) * step; got != wantQ[i] {
			t.Fatalf("FixedRound path: %v -> %v, want %v", v, got, wantQ[i])
		}
	}
}

// The int8 SoA plan's weights must be Format.Quantize in integer form:
// wq·step == Quantize(w) bit for bit, including ties and saturation.
func TestSoAPlanWeightsMatchQuantize(t *testing.T) {
	f := quant.Format{IntBits: 0, FracBits: 7}
	step, maxQ := f.Step(), f.MaxQ()
	in, out := 6, 5
	w := tensor.New(in, out)
	r := tensor.NewRNG(11)
	for i := range w.Data {
		switch i % 4 {
		case 0: // exact tie values
			w.Data[i] = (float64(i/4) + 0.5) * step
		case 1:
			w.Data[i] = -(float64(i/4) + 0.5) * step
		case 2: // out of range → saturation
			w.Data[i] = r.Range(1, 3)
		default:
			w.Data[i] = r.Range(-1, 1)
		}
	}
	st := snn.Stage{Name: "fc", Kind: snn.DenseStage, W: w, B: tensor.New(out),
		InLen: in, OutLen: out, Output: true}
	p := snn.NewSoAPlan(&st, step, maxQ)

	for key := 0; key < st.NumRowKeys(); key++ {
		full := st.AppendContribs(key, nil)
		ix, ws := p.Row(key)
		pos := 0
		for _, c := range full {
			want := f.Quantize(c.W)
			if want == 0 {
				continue // dropped from the plan
			}
			if pos >= len(ix) || ix[pos] != c.J {
				t.Fatalf("key %d: plan misses synapse -> %d", key, c.J)
			}
			if got := float64(ws[pos]) * step; got != want {
				t.Fatalf("key %d synapse %d: plan weight %v, Quantize %v", key, c.J, got, want)
			}
			pos++
		}
	}
}

// Property (PR 8): quantization is a projection — requantizing an
// already-quantized tensor is bit-exact identity, and every quantized
// value decomposes exactly as gridIndex·step with |gridIndex| ≤ MaxQ.
func TestQuantizeRoundTripIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		fm := quant.Format{IntBits: r.Intn(3), FracBits: 1 + r.Intn(7)}
		w := tensor.New(4, 5)
		for i := range w.Data {
			w.Data[i] = r.Range(-3, 3)
		}
		q := quant.QuantizeTensor(w, fm)
		q2 := quant.QuantizeTensor(q, fm)
		step, maxQ := fm.Step(), fm.MaxQ()
		for i := range q.Data {
			if q2.Data[i] != q.Data[i] {
				return false // not idempotent
			}
			g := snn.FixedRound(q.Data[i] / step)
			if g > float64(maxQ) || g < -float64(maxQ) {
				return false // off the int grid
			}
			if g*step != q.Data[i] {
				return false // not an exact multiple of step
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
