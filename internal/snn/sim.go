package snn

// TimedPred is one entry of an output-decision timeline: Pred became the
// current argmax of the output potentials at global step Step.
type TimedPred struct {
	Step int
	Pred int
}

// SimResult is the outcome of simulating one input through a spiking
// network under some neural coding scheme.
type SimResult struct {
	// Pred is the decision at the end of the simulated window.
	Pred int
	// Steps is the number of simulated time steps.
	Steps int
	// TotalSpikes counts every spike in the network including input
	// encoding spikes.
	TotalSpikes int
	// SpikesPerStage[0] counts input spikes; [i] counts stage i-1
	// output spikes.
	SpikesPerStage []int
	// Timeline records argmax changes of the output potentials over
	// time (only when requested).
	Timeline []TimedPred
	// Potentials are the final accumulated output potentials.
	Potentials []float64
}

// PredAt returns the decision that was current at the given step, or -1
// before any output activity.
func (r *SimResult) PredAt(step int) int {
	pred := -1
	for _, tp := range r.Timeline {
		if tp.Step > step {
			break
		}
		pred = tp.Pred
	}
	return pred
}

// RecordPred appends a timeline entry when the prediction changed.
func (r *SimResult) RecordPred(step int, potentials []float64) {
	pred := ArgMax(potentials)
	n := len(r.Timeline)
	if n == 0 || r.Timeline[n-1].Pred != pred {
		r.Timeline = append(r.Timeline, TimedPred{Step: step, Pred: pred})
	}
}

// ArgMax returns the index of the largest element, or -1 for an empty
// slice (callers treat -1 as "no decision", matching PredAt).
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// CountSpikes sums a per-stage spike tally into TotalSpikes.
func (r *SimResult) CountSpikes() {
	r.TotalSpikes = 0
	for _, s := range r.SpikesPerStage {
		r.TotalSpikes += s
	}
}
