package snn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// convStage builds a small conv stage for direct tests.
func convStage(output bool) Stage {
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	w := tensor.New(3, 2, 3, 3)
	r := tensor.NewRNG(1)
	r.FillNormal(w, 0, 0.5)
	b := tensor.New(3)
	r.FillNormal(b, 0, 0.1)
	return Stage{
		Name: "conv", Kind: ConvStage, Geom: g, OutC: 3,
		W: w, B: b, InLen: 2 * 4 * 4, OutLen: 3 * 4 * 4, Output: output,
	}
}

func denseStage(in, out int, output bool) Stage {
	w := tensor.New(in, out)
	r := tensor.NewRNG(2)
	r.FillNormal(w, 0, 0.5)
	b := tensor.New(out)
	r.FillNormal(b, 0, 0.1)
	return Stage{Name: "fc", Kind: DenseStage, W: w, B: b, InLen: in, OutLen: out, Output: output}
}

func TestStageKindString(t *testing.T) {
	if ConvStage.String() != "conv" || DenseStage.String() != "dense" {
		t.Fatal("StageKind strings wrong")
	}
}

func TestPoolSpecDims(t *testing.T) {
	p := PoolSpec{C: 4, InH: 8, InW: 6, K: 2}
	if p.OutH() != 4 || p.OutW() != 3 {
		t.Fatalf("pool out dims = %dx%d", p.OutH(), p.OutW())
	}
}

func TestNetValidate(t *testing.T) {
	good := &Net{Name: "g", InShape: []int{2, 4, 4}, InLen: 32,
		Stages: []Stage{convStage(false), denseStage(48, 5, true)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}

	for name, breakIt := range map[string]func(*Net){
		"no stages":       func(n *Net) { n.Stages = nil },
		"inlen mismatch":  func(n *Net) { n.Stages[0].InLen = 31 },
		"no output":       func(n *Net) { n.Stages[1].Output = false },
		"dense shape":     func(n *Net) { n.Stages[1].W = tensor.New(48, 6) },
		"pool non-tiling": func(n *Net) { n.Stages[0].PrePool = &PoolSpec{C: 2, InH: 5, InW: 4, K: 2} },
		"pool size":       func(n *Net) { n.Stages[0].PrePool = &PoolSpec{C: 1, InH: 4, InW: 4, K: 2} },
	} {
		n := &Net{Name: "g", InShape: []int{2, 4, 4}, InLen: 32,
			Stages: []Stage{convStage(false), denseStage(48, 5, true)}}
		breakIt(n)
		if err := n.Validate(); err == nil {
			t.Fatalf("%s: invalid net accepted", name)
		}
	}
}

func TestNumNeurons(t *testing.T) {
	n := &Net{InShape: []int{2, 4, 4}, InLen: 32,
		Stages: []Stage{convStage(false), denseStage(48, 5, true)}}
	if got := n.NumNeurons(); got != 48+5 {
		t.Fatalf("NumNeurons = %d, want 53", got)
	}
}

// Scatter summed over a dense input must equal Forward minus bias: the
// central equivalence between the event-driven path and the dense path.
func TestScatterEqualsForwardConv(t *testing.T) {
	st := convStage(false)
	r := tensor.NewRNG(3)
	in := make([]float64, st.InLen)
	for i := range in {
		in[i] = r.Float64()
	}
	want := st.Forward(in)
	got := make([]float64, st.OutLen)
	st.AddBias(got)
	for i, v := range in {
		st.Scatter(i, v, got)
	}
	for j := range want {
		if math.Abs(want[j]-got[j]) > 1e-9 {
			t.Fatalf("scatter sum mismatch at %d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestScatterEqualsForwardWithPool(t *testing.T) {
	st := convStage(false)
	st.PrePool = &PoolSpec{C: 2, InH: 8, InW: 8, K: 2}
	st.InLen = 2 * 8 * 8
	r := tensor.NewRNG(4)
	in := make([]float64, st.InLen)
	for i := range in {
		in[i] = r.Float64()
	}
	want := st.Forward(in)
	got := make([]float64, st.OutLen)
	st.AddBias(got)
	for i, v := range in {
		st.Scatter(i, v, got)
	}
	for j := range want {
		if math.Abs(want[j]-got[j]) > 1e-9 {
			t.Fatalf("pooled scatter mismatch at %d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestScatterEqualsForwardDense(t *testing.T) {
	st := denseStage(6, 4, false)
	in := []float64{0.1, 0, 0.5, 0.9, 0, 0.3}
	want := st.Forward(in)
	got := make([]float64, st.OutLen)
	st.AddBias(got)
	for i, v := range in {
		if v != 0 {
			st.Scatter(i, v, got)
		}
	}
	for j := range want {
		if math.Abs(want[j]-got[j]) > 1e-12 {
			t.Fatalf("dense scatter mismatch at %d", j)
		}
	}
}

// Property: FanOut equals the number of potentials actually touched by
// Scatter for any input index.
func TestFanOutMatchesScatterProperty(t *testing.T) {
	st := convStage(false)
	// make all weights 1 so touched outputs are exactly those changed
	st.W.Fill(1)
	st.B.Zero()
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		idx := r.Intn(st.InLen)
		got := make([]float64, st.OutLen)
		st.Scatter(idx, 1, got)
		touched := 0
		for _, v := range got {
			if v != 0 {
				touched++
			}
		}
		return touched == st.FanOut(idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFanOutStrideGeometry(t *testing.T) {
	// centre input of a 3x3/s1/p1 conv feeds 9 positions × OutC
	st := convStage(false)
	centre := 1*4 + 1 // channel 0, (1,1)
	if got := st.FanOut(centre); got != 9*3 {
		t.Fatalf("centre fan-out = %d, want 27", got)
	}
	// corner feeds only 4 positions × OutC
	if got := st.FanOut(0); got != 4*3 {
		t.Fatalf("corner fan-out = %d, want 12", got)
	}
}

func TestSimResultHelpers(t *testing.T) {
	r := SimResult{SpikesPerStage: []int{3, 2}}
	r.CountSpikes()
	if r.TotalSpikes != 5 {
		t.Fatalf("TotalSpikes = %d", r.TotalSpikes)
	}
	pot := []float64{0.1, 0.9, 0.5}
	r.RecordPred(3, pot)
	r.RecordPred(5, pot) // unchanged pred -> no new entry
	pot[2] = 2
	r.RecordPred(9, pot)
	if len(r.Timeline) != 2 {
		t.Fatalf("timeline length = %d, want 2", len(r.Timeline))
	}
	if r.PredAt(2) != -1 || r.PredAt(4) != 1 || r.PredAt(100) != 2 {
		t.Fatalf("PredAt wrong: %d %d %d", r.PredAt(2), r.PredAt(4), r.PredAt(100))
	}
}

func TestArgMaxFirstWins(t *testing.T) {
	if ArgMax([]float64{1, 3, 3}) != 1 {
		t.Fatal("ArgMax should return first maximum")
	}
}
