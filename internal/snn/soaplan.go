package snn

import "math"

// FixedRound is THE rounding convention for every fixed-point grid in
// this repo: round half away from zero (the math.Round convention, so
// 0.5 → 1 and −0.5 → −1). quant.Format.Quantize and the int8 kernel's
// weight/decode/threshold conversions all route through this one helper;
// if they rounded ties differently the int8 engine would diverge from
// QuantizeNet by one LSB exactly on tie values.
func FixedRound(x float64) float64 { return math.Round(x) }

// SoAPlan is a stage's full scatter table in structure-of-arrays form
// for the fixed-point engine: all rows concatenated into one contiguous
// int32 index slice and one int8 quantized-weight slice, with Off
// marking row boundaries (row of key k is Idx[Off[k]:Off[k+1]]). The
// layout replaces ScatterPlan's 16-byte Contrib pairs with 5 bytes per
// synapse, which is the real speedup lever on this memory-bound loop.
//
// Weights are quantized as wq = clamp(FixedRound(w/Step), ±MaxQ), i.e.
// w ≈ wq·Step. Synapses whose weight quantizes to zero are dropped at
// build time — they can never change an accumulator — so pruned nets
// (quant.PruneNet) shrink the plan instead of multiplying by zero.
//
// A plan is built eagerly and is immutable afterwards: safe for any
// number of concurrent readers with no atomics.
type SoAPlan struct {
	Idx []int32 // target neuron index per synapse
	Wq  []int8  // quantized weight per synapse
	Off []int32 // row boundaries, len NumRowKeys()+1

	Step float64 // grid step: real weight ≈ Wq·Step
	MaxQ int32   // saturation bound applied to Wq

	// Build-time stats: synapses kept, synapses dropped as zero, and the
	// largest in-degree any output neuron receives (bounds worst-case
	// accumulator magnitude for overflow analysis).
	Synapses    int
	Dropped     int
	MaxInDegree int
}

// NewSoAPlan builds the SoA scatter table of a stage on the fixed-point
// grid (step, maxQ). Rows appear in RowKey order and each row replays
// scatterCore's visit order, so replaying a row touches the same
// synapses in the same sequence as Stage.Scatter.
func NewSoAPlan(st *Stage, step float64, maxQ int32) *SoAPlan {
	keys := st.NumRowKeys()
	total := 0
	for k := 0; k < keys; k++ {
		total += st.RowLen(k)
	}
	p := &SoAPlan{
		Idx:  make([]int32, 0, total),
		Wq:   make([]int8, 0, total),
		Off:  make([]int32, keys+1),
		Step: step,
		MaxQ: maxQ,
	}
	inDeg := make([]int32, st.OutLen)
	for k := 0; k < keys; k++ {
		st.scatterCore(k, 1, func(j int, w float64) {
			q := FixedRound(w / step)
			if q > float64(maxQ) {
				q = float64(maxQ)
			} else if q < -float64(maxQ) {
				q = -float64(maxQ)
			}
			if q == 0 {
				p.Dropped++
				return
			}
			p.Idx = append(p.Idx, int32(j))
			p.Wq = append(p.Wq, int8(q))
			inDeg[j]++
		})
		p.Off[k+1] = int32(len(p.Idx))
	}
	p.Synapses = len(p.Idx)
	for _, d := range inDeg {
		if int(d) > p.MaxInDegree {
			p.MaxInDegree = int(d)
		}
	}
	return p
}

// Row returns the index and weight slices of one RowKey's row.
func (p *SoAPlan) Row(key int) ([]int32, []int8) {
	a, b := p.Off[key], p.Off[key+1]
	return p.Idx[a:b], p.Wq[a:b]
}
