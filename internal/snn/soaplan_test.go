package snn

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// pooledConvStage is convStage with an average pool in front, so RowKey
// compression and the pool divisor are exercised.
func pooledConvStage() Stage {
	st := convStage(false)
	st.PrePool = &PoolSpec{C: 2, InH: 8, InW: 8, K: 2}
	st.InLen = 2 * 8 * 8
	return st
}

func TestFixedRoundHalfAwayFromZero(t *testing.T) {
	cases := map[float64]float64{
		0.5: 1, -0.5: -1, 1.5: 2, -1.5: -2, 2.5: 3, -2.5: -3,
		0.49: 0, -0.49: 0, 2: 2, 0: 0,
	}
	for in, want := range cases {
		if got := FixedRound(in); got != want {
			t.Fatalf("FixedRound(%v) = %v, want %v", in, got, want)
		}
	}
}

// RowLen must predict exactly how many entries AppendContribs emits for
// every key — it is the preallocation contract of ScatterPlan.Row and
// the sizing pass of NewSoAPlan.
func TestRowLenMatchesAppendContribs(t *testing.T) {
	for name, st := range map[string]Stage{
		"conv":   convStage(false),
		"pooled": pooledConvStage(),
		"dense":  denseStage(7, 5, true),
	} {
		for key := 0; key < st.NumRowKeys(); key++ {
			row := st.AppendContribs(key, nil)
			if got := st.RowLen(key); got != len(row) {
				t.Fatalf("%s key %d: RowLen = %d, AppendContribs emits %d", name, key, got, len(row))
			}
		}
	}
}

// Regression (PR 8): ScatterPlan.Row used to build rows by appending to
// a zero-capacity slice, re-growing during plan build and leaving the
// cached row with slack capacity. The fixed build preallocates from
// Stage.RowLen, so a cached row's capacity equals its length exactly.
func TestScatterPlanRowPreallocated(t *testing.T) {
	for name, st := range map[string]Stage{
		"conv":  convStage(false),
		"dense": denseStage(6, 5, true), // 5 is not an append growth size
	} {
		st := st
		plan := NewScatterPlan(&st)
		for key := 0; key < st.NumRowKeys(); key++ {
			row := plan.Row(key)
			if len(row) == 0 {
				continue
			}
			if cap(row) != len(row) {
				t.Fatalf("%s key %d: row len %d cap %d — built without preallocation",
					name, key, len(row), cap(row))
			}
		}
	}
}

// Published rows must never mutate: concurrent readers (the serve-layer
// engines share one plan across goroutines) rely on a row being
// write-once. Run under -race this also catches unsynchronized writes.
func TestScatterPlanRowImmutableUnderRace(t *testing.T) {
	st := convStage(false)
	plan := NewScatterPlan(&st)

	// Snapshot rows from one goroutine while others race to build them.
	var wg sync.WaitGroup
	snaps := make([][][]Contrib, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			snap := make([][]Contrib, st.NumRowKeys())
			for key := 0; key < st.NumRowKeys(); key++ {
				row := plan.Row(key)
				snap[key] = append([]Contrib(nil), row...)
			}
			snaps[g] = snap
		}(g)
	}
	wg.Wait()

	// Every goroutine must have observed identical row contents, and the
	// now-cached rows must still match the snapshots.
	for key := 0; key < st.NumRowKeys(); key++ {
		want := st.AppendContribs(key, nil)
		for g := range snaps {
			got := snaps[g][key]
			if len(got) != len(want) {
				t.Fatalf("goroutine %d key %d: %d contribs, want %d", g, key, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("goroutine %d key %d[%d]: %+v, want %+v", g, key, i, got[i], want[i])
				}
			}
		}
		cached := plan.Row(key)
		for i := range want {
			if cached[i] != want[i] {
				t.Fatalf("cached row %d mutated after publication: %+v != %+v", key, cached[i], want[i])
			}
		}
	}
}

// NewSoAPlan must hold exactly the nonzero-quantized synapses of every
// row, in scatterCore visit order, with weights rounded by FixedRound
// and saturated at ±maxQ.
func TestSoAPlanMatchesScatterRows(t *testing.T) {
	const step = 1.0 / 64
	const maxQ = 127
	for name, st := range map[string]Stage{
		"conv":   convStage(false),
		"pooled": pooledConvStage(),
		"dense":  denseStage(7, 5, true),
	} {
		st := st
		// Force some zero-quantized and some saturating weights.
		st.W.Data[0] = step / 4    // rounds to 0 → dropped
		st.W.Data[1] = -step / 4   // rounds to 0 → dropped
		st.W.Data[2] = 10          // saturates at +maxQ
		st.W.Data[3] = -10         // saturates at −maxQ
		st.W.Data[4] = 1.5 * step  // tie: rounds away from zero → 2
		st.W.Data[5] = -1.5 * step // tie: rounds away from zero → −2

		p := NewSoAPlan(&st, step, maxQ)
		if len(p.Idx) != len(p.Wq) || len(p.Idx) != p.Synapses {
			t.Fatalf("%s: inconsistent SoA lengths: %d idx, %d wq, %d synapses", name, len(p.Idx), len(p.Wq), p.Synapses)
		}
		if p.Off[0] != 0 || int(p.Off[len(p.Off)-1]) != len(p.Idx) {
			t.Fatalf("%s: Off endpoints %d..%d, want 0..%d", name, p.Off[0], p.Off[len(p.Off)-1], len(p.Idx))
		}

		total, inDeg := 0, make(map[int32]int)
		for key := 0; key < st.NumRowKeys(); key++ {
			full := st.AppendContribs(key, nil)
			total += len(full)
			ix, ws := p.Row(key)
			pos := 0
			for _, c := range full {
				q := FixedRound(c.W / step)
				if q > maxQ {
					q = maxQ
				} else if q < -maxQ {
					q = -maxQ
				}
				if q == 0 {
					continue
				}
				if pos >= len(ix) {
					t.Fatalf("%s key %d: SoA row too short", name, key)
				}
				if ix[pos] != c.J || ws[pos] != int8(q) {
					t.Fatalf("%s key %d pos %d: got (%d,%d), want (%d,%d)", name, key, pos, ix[pos], ws[pos], c.J, int(q))
				}
				inDeg[c.J]++
				pos++
			}
			if pos != len(ix) {
				t.Fatalf("%s key %d: SoA row has %d extra synapses", name, key, len(ix)-pos)
			}
		}
		if p.Dropped+p.Synapses != total {
			t.Fatalf("%s: dropped %d + kept %d != total %d", name, p.Dropped, p.Synapses, total)
		}
		if p.Dropped == 0 {
			t.Fatalf("%s: expected some zero-quantized synapses to be dropped", name)
		}
		maxDeg := 0
		for _, d := range inDeg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		if p.MaxInDegree != maxDeg {
			t.Fatalf("%s: MaxInDegree = %d, want %d", name, p.MaxInDegree, maxDeg)
		}
	}
}

// A spike replayed through the SoA plan must match Scatter on the
// dequantized-weight stage: SoA is the int8 mirror of the float path.
func TestSoAPlanScatterMatchesQuantizedScatter(t *testing.T) {
	st := pooledConvStage()
	const step = 1.0 / 32
	const maxQ = 127
	p := NewSoAPlan(&st, step, maxQ)

	// Dequantized twin: same grid, float weights.
	qst := st
	qst.W = st.W.Clone()
	for i, w := range qst.W.Data {
		q := FixedRound(w / step)
		if q > maxQ {
			q = maxQ
		} else if q < -maxQ {
			q = -maxQ
		}
		qst.W.Data[i] = q * step
	}

	r := tensor.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		idx := r.Intn(st.InLen)
		want := make([]float64, st.OutLen)
		qst.Scatter(idx, 1, want)

		got := make([]float64, st.OutLen)
		key, div := st.RowKey(idx)
		ix, ws := p.Row(key)
		for i, j := range ix {
			got[j] += float64(ws[i]) * step / div
		}
		for j := range want {
			if d := got[j] - want[j]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("trial %d neuron %d: SoA %v, quantized scatter %v", trial, j, got[j], want[j])
			}
		}
	}
}
