// Package snn provides the spiking-network substrate: the converted
// network representation shared by every coding scheme, integrate-and-
// fire neuron state, a clock-driven simulator, and spike/latency
// accounting. The T2FSNN core (internal/core) and the baseline coding
// schemes (internal/coding) are built on top of it.
package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// StageKind distinguishes the two weighted stage types.
type StageKind int

// Stage kinds.
const (
	ConvStage StageKind = iota
	DenseStage
)

func (k StageKind) String() string {
	if k == DenseStage {
		return "dense"
	}
	return "conv"
}

// PoolSpec describes a non-overlapping average pooling applied to a
// stage's input spikes. Average pooling is linear, so in a spiking
// network it is a fixed 1/K² synapse fanned into the following weighted
// stage rather than a separate neuron layer — this is why the paper's
// VGG-16 latency counts 16 time windows, not 21.
type PoolSpec struct {
	C, InH, InW, K int
}

// OutH returns the pooled height.
func (p PoolSpec) OutH() int { return p.InH / p.K }

// OutW returns the pooled width.
func (p PoolSpec) OutW() int { return p.InW / p.K }

// Stage is one weighted layer of a converted spiking network: an
// optional input average-pool followed by a convolution or dense
// transform. Stage weights are already BatchNorm-folded and
// activation-normalized by internal/convert.
type Stage struct {
	Name string
	Kind StageKind

	// PrePool, when non-nil, is applied to the stage input.
	PrePool *PoolSpec

	// Geom is the convolution geometry after pooling (ConvStage only).
	Geom tensor.ConvGeom
	OutC int

	// W is [OutC, InC, KH, KW] for ConvStage and [In, Out] for
	// DenseStage; B has length OutC / Out.
	W, B *tensor.Tensor

	// InLen and OutLen are the neuron counts entering (before pooling)
	// and leaving the stage.
	InLen, OutLen int

	// Output is true for the final stage, whose membrane potentials are
	// read directly for classification instead of being encoded into
	// spikes.
	Output bool
}

// Net is a converted spiking network: an ordered list of weighted
// stages. The input image itself is "layer 0"; its pixels are encoded
// into spikes by the active coding scheme.
type Net struct {
	Name    string
	InShape []int // [C, H, W]
	InLen   int
	Stages  []Stage
}

// NumNeurons returns the total number of spiking neurons (all stage
// outputs; the output stage is included since its neurons integrate even
// though they do not fire).
func (n *Net) NumNeurons() int {
	total := 0
	for _, s := range n.Stages {
		total += s.OutLen
	}
	return total
}

// Validate checks internal consistency of the stage chain.
func (n *Net) Validate() error {
	if len(n.Stages) == 0 {
		return fmt.Errorf("snn: network has no stages")
	}
	prev := n.InLen
	for i := range n.Stages {
		s := &n.Stages[i]
		if s.InLen != prev {
			return fmt.Errorf("snn: stage %d (%s) InLen %d, previous stage emits %d", i, s.Name, s.InLen, prev)
		}
		in := s.InLen
		if s.PrePool != nil {
			p := s.PrePool
			if p.C*p.InH*p.InW != s.InLen {
				return fmt.Errorf("snn: stage %d (%s) pool covers %d neurons, input has %d", i, s.Name, p.C*p.InH*p.InW, s.InLen)
			}
			if p.InH%p.K != 0 || p.InW%p.K != 0 {
				return fmt.Errorf("snn: stage %d (%s) pool %d does not tile %dx%d", i, s.Name, p.K, p.InH, p.InW)
			}
			in = p.C * p.OutH() * p.OutW()
		}
		switch s.Kind {
		case ConvStage:
			if err := s.Geom.Validate(); err != nil {
				return fmt.Errorf("snn: stage %d (%s): %w", i, s.Name, err)
			}
			if s.Geom.InC*s.Geom.InH*s.Geom.InW != in {
				return fmt.Errorf("snn: stage %d (%s) conv expects %d inputs, has %d", i, s.Name, s.Geom.InC*s.Geom.InH*s.Geom.InW, in)
			}
			if s.OutLen != s.OutC*s.Geom.OutH()*s.Geom.OutW() {
				return fmt.Errorf("snn: stage %d (%s) OutLen %d inconsistent with geometry", i, s.Name, s.OutLen)
			}
		case DenseStage:
			if s.W.Shape[0] != in || s.W.Shape[1] != s.OutLen {
				return fmt.Errorf("snn: stage %d (%s) dense weights %v, want [%d %d]", i, s.Name, s.W.Shape, in, s.OutLen)
			}
		}
		prev = s.OutLen
	}
	if !n.Stages[len(n.Stages)-1].Output {
		return fmt.Errorf("snn: final stage is not marked Output")
	}
	return nil
}

// pool applies the stage's average pooling to a dense input vector,
// returning the input unchanged when there is no pool.
func (s *Stage) pool(in []float64) []float64 {
	p := s.PrePool
	if p == nil {
		return in
	}
	oh, ow := p.OutH(), p.OutW()
	out := make([]float64, p.C*oh*ow)
	inv := 1 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s2 := 0.0
				for ky := 0; ky < p.K; ky++ {
					row := (c*p.InH+oy*p.K+ky)*p.InW + ox*p.K
					for kx := 0; kx < p.K; kx++ {
						s2 += in[row+kx]
					}
				}
				out[(c*oh+oy)*ow+ox] = s2 * inv
			}
		}
	}
	return out
}

// Forward applies the full stage transform (pool, then conv/dense, plus
// bias) to a dense input vector of decoded values. This is the
// "guaranteed integration" path: it assumes all input spikes have been
// decoded into in.
func (s *Stage) Forward(in []float64) []float64 {
	x := s.pool(in)
	switch s.Kind {
	case ConvStage:
		t := tensor.FromSlice(x, s.Geom.InC, s.Geom.InH, s.Geom.InW)
		out := tensor.Conv2D(t, s.W, s.B, s.Geom)
		return out.Data
	default:
		out := make([]float64, s.OutLen)
		copy(out, s.B.Data)
		for i, v := range x {
			if v == 0 {
				continue
			}
			row := s.W.Data[i*s.OutLen : (i+1)*s.OutLen]
			for j, w := range row {
				out[j] += v * w
			}
		}
		return out
	}
}

// AddBias accumulates the stage bias into potentials once per
// simulation (biases inject constant charge at the start of a window).
func (s *Stage) AddBias(potentials []float64) {
	switch s.Kind {
	case ConvStage:
		oh, ow := s.Geom.OutH(), s.Geom.OutW()
		for c := 0; c < s.OutC; c++ {
			b := s.B.Data[c]
			row := potentials[c*oh*ow : (c+1)*oh*ow]
			for i := range row {
				row[i] += b
			}
		}
	default:
		for j, b := range s.B.Data {
			potentials[j] += b
		}
	}
}

// Scatter accumulates scale × (stage transform of a unit impulse at
// input neuron idx) into potentials. It is the sparse, event-driven
// propagation path used by the clocked simulators: one call per spike.
// The bias is NOT included; see AddBias.
func (s *Stage) Scatter(idx int, scale float64, potentials []float64) {
	s.ScatterVisit(idx, scale, func(j int, contrib float64) {
		potentials[j] += contrib
	})
}

// ScatterVisit is Scatter with an explicit visitor: visit(j, contrib) is
// invoked once per driven synapse with the weighted contribution. The
// event-driven engine uses it to learn which neurons an arrival touched.
func (s *Stage) ScatterVisit(idx int, scale float64, visit func(j int, contrib float64)) {
	if s.PrePool != nil {
		p := s.PrePool
		c := idx / (p.InH * p.InW)
		rem := idx % (p.InH * p.InW)
		y, x := rem/p.InW, rem%p.InW
		py, px := y/p.K, x/p.K
		pooledIdx := (c*p.OutH()+py)*p.OutW() + px
		s.scatterCore(pooledIdx, scale/float64(p.K*p.K), visit)
		return
	}
	s.scatterCore(idx, scale, visit)
}

// scatterCore scatters an impulse at the (post-pool) input index.
func (s *Stage) scatterCore(idx int, scale float64, visit func(j int, contrib float64)) {
	switch s.Kind {
	case ConvStage:
		g := s.Geom
		c := idx / (g.InH * g.InW)
		rem := idx % (g.InH * g.InW)
		y, x := rem/g.InW, rem%g.InW
		oh, ow := g.OutH(), g.OutW()
		for kh := 0; kh < g.KH; kh++ {
			oyNum := y + g.Pad - kh
			if oyNum < 0 || oyNum%g.Stride != 0 {
				continue
			}
			oy := oyNum / g.Stride
			if oy >= oh {
				continue
			}
			for kw := 0; kw < g.KW; kw++ {
				oxNum := x + g.Pad - kw
				if oxNum < 0 || oxNum%g.Stride != 0 {
					continue
				}
				ox := oxNum / g.Stride
				if ox >= ow {
					continue
				}
				for oc := 0; oc < s.OutC; oc++ {
					w := s.W.Data[((oc*g.InC+c)*g.KH+kh)*g.KW+kw]
					visit((oc*oh+oy)*ow+ox, scale*w)
				}
			}
		}
	default:
		row := s.W.Data[idx*s.OutLen : (idx+1)*s.OutLen]
		for j, w := range row {
			visit(j, scale*w)
		}
	}
}

// FanOut returns the number of synapses a spike at input neuron idx
// drives through this stage — the per-spike accumulation cost used by
// the op-count model (Table III).
func (s *Stage) FanOut(idx int) int {
	if s.PrePool != nil {
		p := s.PrePool
		c := idx / (p.InH * p.InW)
		rem := idx % (p.InH * p.InW)
		y, x := rem/p.InW, rem%p.InW
		idx = (c*p.OutH()+y/p.K)*p.OutW() + x/p.K
	}
	return s.RowLen(idx)
}

// RowLen returns the number of synapses in the scatter row of a RowKey
// (the post-pool input index): exactly how many entries AppendContribs
// emits for that key, so plan builders can preallocate rows instead of
// growing them append by append.
func (s *Stage) RowLen(key int) int {
	idx := key
	switch s.Kind {
	case ConvStage:
		g := s.Geom
		rem := idx % (g.InH * g.InW)
		y, x := rem/g.InW, rem%g.InW
		count := 0
		for kh := 0; kh < g.KH; kh++ {
			oyNum := y + g.Pad - kh
			if oyNum < 0 || oyNum%g.Stride != 0 || oyNum/g.Stride >= g.OutH() {
				continue
			}
			for kw := 0; kw < g.KW; kw++ {
				oxNum := x + g.Pad - kw
				if oxNum < 0 || oxNum%g.Stride != 0 || oxNum/g.Stride >= g.OutW() {
					continue
				}
				count += s.OutC
			}
		}
		return count
	default:
		return s.OutLen
	}
}
