package snn

import "sync/atomic"

// Contrib is one precomputed synapse of a scatter row: a spike at the
// row's input neuron accumulates Scale×W into potentials[J], where Scale
// is the per-spike kernel scale (already divided by the pool area when
// the stage pools). Rows replay the exact visit order of ScatterVisit,
// so replaying a row is bit-identical to calling Scatter.
type Contrib struct {
	J int32
	W float64
}

// RowKey maps a (pre-pool) input index to the key identifying its
// scatter row and the pool divisor applied to the per-spike scale.
// Neurons sharing a pooled cell share the same row, so a batched engine
// caches rows by key rather than by raw input index.
func (s *Stage) RowKey(idx int) (key int, scaleDiv float64) {
	if s.PrePool == nil {
		return idx, 1
	}
	p := s.PrePool
	c := idx / (p.InH * p.InW)
	rem := idx % (p.InH * p.InW)
	y, x := rem/p.InW, rem%p.InW
	return (c*p.OutH()+y/p.K)*p.OutW() + x/p.K, float64(p.K * p.K)
}

// NumRowKeys returns the size of the RowKey space (the post-pool input
// length), for sizing a row cache.
func (s *Stage) NumRowKeys() int {
	if s.PrePool == nil {
		return s.InLen
	}
	p := s.PrePool
	return p.C * p.OutH() * p.OutW()
}

// AppendContribs appends the scatter row for the given RowKey to dst and
// returns it. The entries appear in exactly the order scatterCore visits
// them (kh → kw → oc for convolutions, ascending output index for dense
// stages), so `for _, c := range row { pot[c.J] += scale * c.W }`
// reproduces Scatter(idx, scale, pot) bit for bit.
func (s *Stage) AppendContribs(key int, dst []Contrib) []Contrib {
	s.scatterCore(key, 1, func(j int, w float64) {
		dst = append(dst, Contrib{J: int32(j), W: w})
	})
	return dst
}

// ScatterPlan caches the scatter rows of one stage so repeated inference
// stops re-deriving the per-spike address arithmetic. Rows are built
// lazily — only keys that actually fire pay memory — and published with
// an atomic pointer, so a plan is safe for concurrent readers (two
// goroutines racing on an unbuilt key both build the same deterministic
// row; the losing store is identical). The plan assumes the stage's
// weights are frozen, which holds for every model in this repo: weight
// mutation paths (fault.PerturbWeights, quant.QuantizeNet) derive new
// nets instead of editing one in place.
type ScatterPlan struct {
	st   *Stage
	rows []atomic.Pointer[[]Contrib]
}

// NewScatterPlan prepares an empty plan over the stage's RowKey space.
func NewScatterPlan(st *Stage) *ScatterPlan {
	return &ScatterPlan{st: st, rows: make([]atomic.Pointer[[]Contrib], st.NumRowKeys())}
}

// Row returns the cached scatter row for a RowKey, building it on first
// use. Steady-state calls are a single atomic load. The build path
// preallocates the exact row length (Stage.RowLen), so a row is written
// once and never re-grown — published rows are immutable.
func (p *ScatterPlan) Row(key int) []Contrib {
	if r := p.rows[key].Load(); r != nil {
		return *r
	}
	row := p.st.AppendContribs(key, make([]Contrib, 0, p.st.RowLen(key)))
	p.rows[key].Store(&row)
	return row
}
