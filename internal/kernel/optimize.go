package kernel

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Losses are the three loss terms of the gradient-based optimization
// (paper Eqs. 9–11) evaluated on a batch of ground-truth activations.
type Losses struct {
	Prec float64 // L_prec: mean squared decode error over spiking values
	Min  float64 // L_min: (z̄_min − ẑ_min)²/2
	Max  float64 // L_max: (z̄_max − ẑ_max)²/2
}

// Total returns the summed loss.
func (l Losses) Total() float64 { return l.Prec + l.Min + l.Max }

// Gradients holds ∂L/∂τ and ∂L/∂t_d. Following the paper, τ receives the
// precision and minimum-representation terms (Eqs. 12, 13) and t_d the
// maximum-representation term (Eq. 14).
type Gradients struct {
	DTau float64
	DTd  float64
}

// EvalBatch computes the losses and analytic gradients of a kernel on a
// batch of ground-truth values z̄ (normalized DNN activations).
// zMin and zMax are the distribution bounds the representation losses
// target; the paper uses the dataset minimum/maximum of z̄.
func EvalBatch(k Kernel, zbar []float64, zMin, zMax float64) (Losses, Gradients) {
	var lo Losses
	var g Gradients

	// L_prec over values that actually spike (the set F of Eq. 9).
	nSpikes := 0
	for _, z := range zbar {
		t, fired := k.Encode(z)
		if !fired {
			continue
		}
		nSpikes++
		zhat := k.Decode(t)
		diff := z - zhat
		lo.Prec += 0.5 * diff * diff
		// Eq. 12: ∂L_prec/∂τ = −(t_f − t_d)/τ² · (z̄ − ẑ)·ẑ  (summed)
		g.DTau += -(float64(t) - k.Td) / (k.Tau * k.Tau) * diff * zhat
	}
	if nSpikes > 0 {
		lo.Prec /= float64(nSpikes)
		g.DTau /= float64(nSpikes)
	}

	// L_min (Eq. 10) with ẑ_min = exp(−(T−t_d)/τ); Eq. 13 gives its τ
	// gradient.
	zhatMin := k.ZMin()
	dMin := zMin - zhatMin
	lo.Min = 0.5 * dMin * dMin
	g.DTau += -(float64(k.T) - k.Td) / (k.Tau * k.Tau) * dMin * zhatMin

	// L_max (Eq. 11) with ẑ_max = exp(t_d/τ); Eq. 14 gives its t_d
	// gradient.
	zhatMax := k.ZMax()
	dMax := zMax - zhatMax
	lo.Max = 0.5 * dMax * dMax
	g.DTd = -(1 / k.Tau) * dMax * zhatMax

	return lo, g
}

// OptimizeConfig controls the per-layer kernel optimization.
type OptimizeConfig struct {
	LRTau     float64 // learning rate for τ (paper uses plain SGD)
	LRTd      float64 // learning rate for t_d
	BatchSize int
	Epochs    int
	RNG       *tensor.RNG
	// MinTau keeps τ in a numerically safe region.
	MinTau float64
}

// HistoryPoint records the loss trajectory for the Fig. 4 reproduction.
type HistoryPoint struct {
	SamplesSeen    int
	Prec, Min, Max float64
	Tau, Td        float64
}

// OptimizeResult is the outcome of optimizing one layer's kernel.
type OptimizeResult struct {
	Kernel  Kernel
	History []HistoryPoint
}

// Optimize runs the paper's mini-batch SGD over a layer's recorded
// ground-truth activations z̄, updating τ from the precision and
// minimum-representation gradients and t_d from the maximum-
// representation gradient. It returns the optimized kernel and the loss
// history (one point per batch).
func Optimize(k Kernel, zbar []float64, cfg OptimizeConfig) (OptimizeResult, error) {
	if err := k.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if len(zbar) == 0 {
		return OptimizeResult{}, fmt.Errorf("kernel: no activation samples to optimize on")
	}
	if cfg.LRTau <= 0 {
		cfg.LRTau = 1.0
	}
	if cfg.LRTd <= 0 {
		cfg.LRTd = 0.1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.RNG == nil {
		cfg.RNG = tensor.NewRNG(0)
	}
	if cfg.MinTau <= 0 {
		cfg.MinTau = 0.5
	}

	// Dataset-level bounds for the representation losses. Zero
	// activations (dead units) carry no information and are excluded
	// from the minimum, matching the spiking-set semantics of Eq. 9.
	zMin, zMax := math.Inf(1), math.Inf(-1)
	for _, z := range zbar {
		if z > 1e-12 && z < zMin {
			zMin = z
		}
		if z > zMax {
			zMax = z
		}
	}
	if math.IsInf(zMin, 1) {
		return OptimizeResult{}, fmt.Errorf("kernel: all activation samples are zero")
	}

	res := OptimizeResult{Kernel: k}
	seen := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := cfg.RNG.Perm(len(zbar))
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := make([]float64, 0, end-start)
			for _, idx := range perm[start:end] {
				batch = append(batch, zbar[idx])
			}
			lo, g := EvalBatch(res.Kernel, batch, zMin, zMax)
			res.Kernel.Tau -= cfg.LRTau * g.DTau
			res.Kernel.Td -= cfg.LRTd * g.DTd
			if res.Kernel.Tau < cfg.MinTau {
				res.Kernel.Tau = cfg.MinTau
			}
			// keep t_d within the window so ẑ bounds stay meaningful
			res.Kernel.Td = tensor.Clamp(res.Kernel.Td, -float64(k.T), float64(k.T))
			seen += end - start
			res.History = append(res.History, HistoryPoint{
				SamplesSeen: seen,
				Prec:        lo.Prec, Min: lo.Min, Max: lo.Max,
				Tau: res.Kernel.Tau, Td: res.Kernel.Td,
			})
		}
	}
	return res, nil
}
