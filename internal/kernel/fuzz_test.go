package kernel

import (
	"math"
	"testing"
)

// FuzzEncodeDecode drives the TTFS encode/decode pair with arbitrary
// kernel parameters and values, asserting the structural invariants
// that must hold for any input the type system admits: fired times lie
// in the window, decode never overestimates, and nothing NaNs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(2.0, 0.0, 20, 0.5)
	f.Add(18.0, 1.5, 80, 0.001)
	f.Add(0.5, -3.0, 10, 1.5)
	f.Fuzz(func(t *testing.T, tau, td float64, window int, u float64) {
		k, err := New(tau, td, window)
		if err != nil {
			return // invalid parameters are rejected, not mis-handled
		}
		if window > 1<<20 {
			return // keep the harness fast
		}
		ts, fired := k.Encode(u)
		if !fired {
			if u > 0 && u >= k.Threshold(float64(window-1)) && !math.IsInf(u, 0) && !math.IsNaN(u) {
				t.Fatalf("u=%v above last threshold %v did not fire", u, k.Threshold(float64(window-1)))
			}
			return
		}
		if ts < 0 || ts >= window {
			t.Fatalf("spike time %d outside [0,%d)", ts, window)
		}
		d := k.Decode(ts)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("decode produced %v", d)
		}
		// ceil on the spike time means decode cannot exceed u except via
		// the t=0 clamp for over-range values
		if ts > 0 && u > 0 && d > u*(1+1e-9) {
			t.Fatalf("decode %v overestimates %v at t=%d", d, u, ts)
		}
	})
}
