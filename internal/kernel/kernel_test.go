package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func mustKernel(t *testing.T, tau, td float64, T int) Kernel {
	t.Helper()
	k, err := New(tau, td, T)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		tau, td float64
		T       int
	}{
		{0, 0, 20}, {-1, 0, 20}, {math.Inf(1), 0, 20},
		{2, math.NaN(), 20}, {2, 0, 0}, {2, 0, -5},
	}
	for i, c := range cases {
		if _, err := New(c.tau, c.td, c.T); err == nil {
			t.Fatalf("case %d: invalid kernel accepted: %+v", i, c)
		}
	}
	if _, err := New(2, 0, 20); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
}

func TestValueEq5(t *testing.T) {
	k := mustKernel(t, 2, 1, 20)
	// ε(t) = exp(-(t - td)/τ)
	if got, want := k.Value(1), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ε(td) = %v, want 1", got)
	}
	if got, want := k.Value(3), math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ε(td+τ) = %v, want 1/e", got)
	}
}

func TestKernelMonotonicallyDecreasing(t *testing.T) {
	k := mustKernel(t, 3, 2, 30)
	prev := math.Inf(1)
	for step := 0; step < 30; step++ {
		v := k.Decode(step)
		if v >= prev {
			t.Fatalf("kernel not strictly decreasing at t=%d: %v >= %v", step, v, prev)
		}
		prev = v
	}
}

func TestThresholdEqualsTheta0TimesKernel(t *testing.T) {
	k := mustKernel(t, 2, 0.5, 20)
	for _, tt := range []float64{0, 1.5, 7, 19} {
		if got, want := k.Threshold(tt), Theta0*k.Value(tt); got != want {
			t.Fatalf("θ(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestEncodeKnownValues(t *testing.T) {
	k := mustKernel(t, 2, 0, 20)
	// u = 1 -> t = ceil(-2·ln1) = 0
	if tt, fired := k.Encode(1); !fired || tt != 0 {
		t.Fatalf("Encode(1) = (%d,%v), want (0,true)", tt, fired)
	}
	// u = exp(-1) -> t = ceil(2) = 2
	if tt, fired := k.Encode(math.Exp(-1)); !fired || tt != 2 {
		t.Fatalf("Encode(e^-1) = (%d,%v), want (2,true)", tt, fired)
	}
}

func TestEncodeNoSpikeCases(t *testing.T) {
	k := mustKernel(t, 2, 0, 20)
	for _, u := range []float64{0, -0.5, k.ZMin() * 0.5, 1e-300} {
		if _, fired := k.Encode(u); fired {
			t.Fatalf("Encode(%v) fired; should not", u)
		}
	}
}

func TestEncodeClampsLargeValues(t *testing.T) {
	k := mustKernel(t, 2, 1, 20)
	// u above ZMax encodes at the earliest time, t=0
	if tt, fired := k.Encode(k.ZMax() * 10); !fired || tt != 0 {
		t.Fatalf("Encode(large) = (%d,%v), want (0,true)", tt, fired)
	}
}

func TestEncodeEarlierForLargerValues(t *testing.T) {
	// Core TTFS property: more information -> earlier spike.
	k := mustKernel(t, 3, 0, 40)
	tBig, _ := k.Encode(0.9)
	tSmall, _ := k.Encode(0.1)
	if tBig >= tSmall {
		t.Fatalf("larger value should fire earlier: t(0.9)=%d, t(0.1)=%d", tBig, tSmall)
	}
}

func TestZMinZMax(t *testing.T) {
	k := mustKernel(t, 2, 1, 20)
	if got, want := k.ZMin(), math.Exp(-(20.0-1.0)/2.0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("ZMin = %v, want %v", got, want)
	}
	if got, want := k.ZMax(), math.Exp(0.5); math.Abs(got-want) > 1e-15 {
		t.Fatalf("ZMax = %v, want %v", got, want)
	}
	// ZMax must equal decode of the earliest spike
	if k.ZMax() != k.Decode(0) {
		t.Fatal("ZMax != Decode(0)")
	}
}

// Property: the round trip never overestimates and its relative error is
// bounded by exp(1/τ)−1 (the paper's precision-error bound), for values
// within the representable range.
func TestRoundTripPrecisionBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		tau := r.Range(1, 20)
		td := r.Range(0, 5)
		T := 20 + r.Intn(100)
		k, err := New(tau, td, T)
		if err != nil {
			return true
		}
		// draw u within (ZMin·e^{1/τ}, min(ZMax,1)): strictly representable
		lo := k.ZMin() * math.Exp(1/tau)
		hi := math.Min(k.ZMax(), 1)
		if lo >= hi {
			return true
		}
		u := r.Range(lo, hi)
		zhat := k.RoundTrip(u)
		if zhat == 0 {
			return false // must have spiked
		}
		if zhat > u+1e-12 {
			return false // ceil on time means decode ≤ original
		}
		return u-zhat <= k.PrecisionError(zhat)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode is monotone non-increasing in u (larger value, same
// or earlier spike), and fired values decode within the window bounds.
func TestEncodeMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		k, err := New(r.Range(0.5, 20), r.Range(0, 5), 20+r.Intn(60))
		if err != nil {
			return true
		}
		u1, u2 := r.Range(0, 1), r.Range(0, 1)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		t1, f1 := k.Encode(u1)
		t2, f2 := k.Encode(u2)
		if f1 && !f2 {
			return false // larger value must fire if smaller did
		}
		if f1 && f2 && t2 > t1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLUTMatchesKernel(t *testing.T) {
	k := mustKernel(t, 2.7, 1.3, 50)
	lut := NewLUT(k)
	for step := -2; step < 55; step++ {
		if got, want := lut.Decode(step), k.Decode(step); got != want {
			t.Fatalf("LUT.Decode(%d) = %v, want %v", step, got, want)
		}
	}
	if lut.Kernel() != k {
		t.Fatal("LUT.Kernel() mismatch")
	}
}

func BenchmarkDecodeExp(b *testing.B) {
	k := Kernel{Tau: 3, Td: 1, T: 80}
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += k.Decode(i % 80)
	}
	_ = s
}

func BenchmarkDecodeLUT(b *testing.B) {
	lut := NewLUT(Kernel{Tau: 3, Td: 1, T: 80})
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += lut.Decode(i % 80)
	}
	_ = s
}
