package kernel_test

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

// TTFS encoding maps larger membrane potentials to earlier spike times;
// decoding restores the value from the timing alone.
func ExampleKernel_Encode() {
	k, _ := kernel.New(4, 0, 20) // τ=4, t_d=0, T=20
	for _, u := range []float64{1.0, 0.5, 0.1} {
		t, fired := k.Encode(u)
		fmt.Printf("u=%.1f -> spike at t=%d (decodes to %.3f, fired=%v)\n",
			u, t, k.Decode(t), fired)
	}
	// Output:
	// u=1.0 -> spike at t=0 (decodes to 1.000, fired=true)
	// u=0.5 -> spike at t=3 (decodes to 0.472, fired=true)
	// u=0.1 -> spike at t=10 (decodes to 0.082, fired=true)
}

// Gradient-based optimization balances the precision loss against the
// representation losses, pulling τ toward the activation distribution's
// sweet spot from either side (paper Fig. 4).
func ExampleOptimize() {
	rng := tensor.NewRNG(1)
	zbar := make([]float64, 4000)
	for i := range zbar {
		v := rng.Float64()
		zbar[i] = v * v // skewed toward small values
	}
	res, err := kernel.Optimize(kernel.Kernel{Tau: 2, Td: 0, T: 20}, zbar,
		kernel.OptimizeConfig{LRTau: 2, BatchSize: 512, Epochs: 2, RNG: tensor.NewRNG(2)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tau grew from 2: %v\n", res.Kernel.Tau > 2)
	// Output:
	// tau grew from 2: true
}
