// Package kernel implements the exponentially decaying fire/integration
// kernels at the centre of T2FSNN (paper Eq. 5), the TTFS encoding and
// decoding they induce (Eqs. 6–8), their representable-value bounds, the
// lookup-table variant discussed in the paper's §V, and the
// gradient-based optimization of the kernel parameters τ and t_d
// (Eqs. 9–14).
package kernel

import (
	"fmt"
	"math"
)

// Theta0 is the threshold constant θ₀ of Eq. 6. The paper sets it to 1
// because data-based normalization bounds activations to [0, 1].
const Theta0 = 1.0

// Kernel is one layer's exponential kernel ε(t) = exp(−(t−t_d)/τ) over a
// fire window of T discrete time steps. The same (τ, t_d) pair serves as
// the fire kernel of layer l and the integration kernel of layer l+1
// (paper §III-A).
type Kernel struct {
	Tau float64 // time constant τ (> 0)
	Td  float64 // time delay t_d
	T   int     // time window length in steps
}

// New constructs a kernel, validating its parameters.
func New(tau, td float64, t int) (Kernel, error) {
	k := Kernel{Tau: tau, Td: td, T: t}
	if err := k.Validate(); err != nil {
		return Kernel{}, err
	}
	return k, nil
}

// Validate checks the kernel parameters.
func (k Kernel) Validate() error {
	switch {
	case !(k.Tau > 0) || math.IsInf(k.Tau, 0):
		return fmt.Errorf("kernel: time constant τ must be positive and finite, got %v", k.Tau)
	case math.IsNaN(k.Td) || math.IsInf(k.Td, 0):
		return fmt.Errorf("kernel: time delay t_d must be finite, got %v", k.Td)
	case k.T <= 0:
		return fmt.Errorf("kernel: time window T must be positive, got %d", k.T)
	}
	return nil
}

// Value evaluates ε(t) = exp(−(t−t_d)/τ) at (possibly fractional) t
// measured from the start of the fire window (Eq. 5).
func (k Kernel) Value(t float64) float64 {
	return math.Exp(-(t - k.Td) / k.Tau)
}

// Threshold returns the dynamic threshold θ(t) = θ₀·ε(t) of Eq. 6.
func (k Kernel) Threshold(t float64) float64 { return Theta0 * k.Value(t) }

// Encode converts an integrated membrane potential u into a spike time
// offset within the fire window (Eq. 7): t = ⌈−τ·ln(u/θ₀) + t_d⌉.
// Potentials too small for the window (below ZMin) — or non-positive —
// produce no spike; potentials at or above ZMax clamp to t = 0 (the
// earliest expressible time). The returned time is in [0, T).
func (k Kernel) Encode(u float64) (t int, fired bool) {
	if u <= 0 {
		return 0, false
	}
	raw := math.Ceil(-k.Tau*math.Log(u/Theta0) + k.Td)
	if raw < 0 {
		return 0, true
	}
	if raw >= float64(k.T) {
		return 0, false
	}
	return int(raw), true
}

// Decode restores the value represented by a spike at offset t (Eq. 8's
// per-spike PSP factor): ẑ = ε(t).
func (k Kernel) Decode(t int) float64 { return k.Value(float64(t)) }

// ZMin is the smallest value the kernel can express in the window:
// exp(−(T−t_d)/τ) (paper §III-B).
func (k Kernel) ZMin() float64 { return math.Exp(-(float64(k.T) - k.Td) / k.Tau) }

// ZMax is the largest value the kernel can express: exp(t_d/τ),
// the decode of a spike at t = 0.
func (k Kernel) ZMax() float64 { return math.Exp(k.Td / k.Tau) }

// PrecisionError bounds the encode→decode round-trip error for a value
// decoded as zhat: |x − x̂| ≤ x̂·(exp(1/τ) − 1) (paper §III-B).
func (k Kernel) PrecisionError(zhat float64) float64 {
	return zhat * (math.Exp(1/k.Tau) - 1)
}

// RoundTrip encodes then decodes u, returning the restored value
// (0 when no spike is produced).
func (k Kernel) RoundTrip(u float64) float64 {
	t, fired := k.Encode(u)
	if !fired {
		return 0
	}
	return k.Decode(t)
}

// LUT is the lookup-table form of a kernel discussed in the paper's §V:
// ε(t) pre-evaluated at every integer offset of the window, replacing
// the exponential with a table read in the hot decode path.
type LUT struct {
	k      Kernel
	values []float64
}

// NewLUT tabulates the kernel.
func NewLUT(k Kernel) *LUT {
	v := make([]float64, k.T)
	for t := 0; t < k.T; t++ {
		v[t] = k.Decode(t)
	}
	return &LUT{k: k, values: v}
}

// Decode returns the tabulated ε(t); offsets outside [0, T) fall back to
// the analytic kernel.
func (l *LUT) Decode(t int) float64 {
	if t >= 0 && t < len(l.values) {
		return l.values[t]
	}
	return l.k.Decode(t)
}

// Kernel returns the underlying kernel parameters.
func (l *LUT) Kernel() Kernel { return l.k }
