package kernel

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numGrad computes d(loss)/d(param) by central differences where eval
// re-evaluates the batch loss with the perturbed kernel.
func numGrad(eval func(Kernel) float64, k Kernel, wrtTau bool) float64 {
	const h = 1e-6
	kp, km := k, k
	if wrtTau {
		kp.Tau += h
		km.Tau -= h
	} else {
		kp.Td += h
		km.Td -= h
	}
	return (eval(kp) - eval(km)) / (2 * h)
}

// The analytic gradients of Eqs. 12–14 treat the spike times t_f as
// constants (the encode ceil is piecewise constant, so a.e. this is the
// exact derivative). The numeric check therefore freezes the spike
// times from the unperturbed kernel.
func TestPrecisionGradientEq12(t *testing.T) {
	k := Kernel{Tau: 4, Td: 1, T: 40}
	rng := tensor.NewRNG(1)
	zbar := make([]float64, 200)
	for i := range zbar {
		zbar[i] = rng.Range(0.01, 1)
	}
	// freeze spike times
	times := make([]int, 0, len(zbar))
	vals := make([]float64, 0, len(zbar))
	for _, z := range zbar {
		if tt, fired := k.Encode(z); fired {
			times = append(times, tt)
			vals = append(vals, z)
		}
	}
	eval := func(kk Kernel) float64 {
		s := 0.0
		for i, tt := range times {
			zhat := kk.Decode(tt)
			d := vals[i] - zhat
			s += 0.5 * d * d
		}
		return s / float64(len(times))
	}
	_, g := EvalBatch(k, zbar, 0.01, 1)
	// isolate the precision term: remove the L_min contribution to DTau
	zhatMin := k.ZMin()
	gPrec := g.DTau + (float64(k.T)-k.Td)/(k.Tau*k.Tau)*(0.01-zhatMin)*zhatMin
	num := numGrad(eval, k, true)
	if math.Abs(gPrec-num) > 1e-6*(1+math.Abs(num)) {
		t.Fatalf("Eq.12 gradient mismatch: analytic %v, numeric %v", gPrec, num)
	}
}

func TestMinGradientEq13(t *testing.T) {
	k := Kernel{Tau: 6, Td: 0.5, T: 30}
	zMin := 0.05
	eval := func(kk Kernel) float64 {
		d := zMin - kk.ZMin()
		return 0.5 * d * d
	}
	// empty batch isolates the representation losses
	_, g := EvalBatch(k, nil, zMin, 1)
	num := numGrad(eval, k, true)
	if math.Abs(g.DTau-num) > 1e-6*(1+math.Abs(num)) {
		t.Fatalf("Eq.13 gradient mismatch: analytic %v, numeric %v", g.DTau, num)
	}
}

func TestMaxGradientEq14(t *testing.T) {
	k := Kernel{Tau: 6, Td: 0.5, T: 30}
	zMax := 0.9
	eval := func(kk Kernel) float64 {
		d := zMax - kk.ZMax()
		return 0.5 * d * d
	}
	_, g := EvalBatch(k, nil, 0.1, zMax)
	num := numGrad(eval, k, false)
	if math.Abs(g.DTd-num) > 1e-6*(1+math.Abs(num)) {
		t.Fatalf("Eq.14 gradient mismatch: analytic %v, numeric %v", g.DTd, num)
	}
}

func TestEvalBatchLossValues(t *testing.T) {
	k := Kernel{Tau: 2, Td: 0, T: 20}
	// single value that round-trips exactly: u = exp(-1) encodes to t=2,
	// decodes to exp(-1)
	u := math.Exp(-1)
	lo, _ := EvalBatch(k, []float64{u}, u, u)
	if lo.Prec > 1e-20 {
		t.Fatalf("exact round trip should have zero precision loss, got %v", lo.Prec)
	}
	if lo.Max == 0 {
		t.Fatal("L_max should be positive when zMax != ZMax")
	}
}

func TestEvalBatchSkipsNonSpiking(t *testing.T) {
	k := Kernel{Tau: 2, Td: 0, T: 20}
	// all values below ZMin -> F empty -> zero precision loss
	small := k.ZMin() / 10
	lo, g := EvalBatch(k, []float64{small, small}, small, small)
	if lo.Prec != 0 {
		t.Fatalf("L_prec over empty spike set should be 0, got %v", lo.Prec)
	}
	if math.IsNaN(g.DTau) || math.IsNaN(g.DTd) {
		t.Fatal("gradients must not be NaN on empty spike set")
	}
}

// Paper Fig. 4 behaviour: starting from a small τ (=2, high min-
// representation coverage but poor precision) the optimizer should
// *increase* τ; from a large τ (=18, poor small-value coverage) it
// should *decrease* τ. T = 20 as in the paper.
func TestFig4TauTrajectories(t *testing.T) {
	rng := tensor.NewRNG(7)
	// activation distribution typical of normalized post-ReLU layers:
	// many small values, few near 1
	zbar := make([]float64, 5000)
	for i := range zbar {
		v := rng.Range(0, 1)
		zbar[i] = v * v * v // skew toward 0
	}

	small, err := Optimize(Kernel{Tau: 2, Td: 0, T: 20}, zbar, OptimizeConfig{
		LRTau: 2, LRTd: 0.2, BatchSize: 256, Epochs: 3, RNG: tensor.NewRNG(8)})
	if err != nil {
		t.Fatal(err)
	}
	if small.Kernel.Tau <= 2 {
		t.Fatalf("τ=2 should increase under optimization, got %v", small.Kernel.Tau)
	}

	large, err := Optimize(Kernel{Tau: 18, Td: 0, T: 20}, zbar, OptimizeConfig{
		LRTau: 2, LRTd: 0.2, BatchSize: 256, Epochs: 3, RNG: tensor.NewRNG(9)})
	if err != nil {
		t.Fatal(err)
	}
	if large.Kernel.Tau >= 18 {
		t.Fatalf("τ=18 should decrease under optimization, got %v", large.Kernel.Tau)
	}
}

func TestOptimizeReducesTotalLoss(t *testing.T) {
	rng := tensor.NewRNG(10)
	zbar := make([]float64, 3000)
	for i := range zbar {
		zbar[i] = rng.Range(0.001, 0.8)
	}
	start := Kernel{Tau: 2, Td: 0, T: 20}
	res, err := Optimize(start, zbar, OptimizeConfig{
		LRTau: 2, LRTd: 0.2, BatchSize: 256, Epochs: 4, RNG: tensor.NewRNG(11)})
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0]
	last := res.History[len(res.History)-1]
	if last.Prec+last.Min+last.Max >= first.Prec+first.Min+first.Max {
		t.Fatalf("total loss did not decrease: %v -> %v",
			first.Prec+first.Min+first.Max, last.Prec+last.Min+last.Max)
	}
}

func TestOptimizeHistoryMonotoneSamples(t *testing.T) {
	rng := tensor.NewRNG(12)
	zbar := make([]float64, 1000)
	for i := range zbar {
		zbar[i] = rng.Range(0.01, 1)
	}
	res, err := Optimize(Kernel{Tau: 5, Td: 0, T: 20}, zbar, OptimizeConfig{
		BatchSize: 128, Epochs: 2, RNG: tensor.NewRNG(13)})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, h := range res.History {
		if h.SamplesSeen <= prev {
			t.Fatalf("history samples not increasing: %d after %d", h.SamplesSeen, prev)
		}
		prev = h.SamplesSeen
	}
	if prev != 2000 {
		t.Fatalf("total samples seen = %d, want 2000", prev)
	}
}

func TestOptimizeErrorCases(t *testing.T) {
	if _, err := Optimize(Kernel{Tau: -1, Td: 0, T: 20}, []float64{0.5}, OptimizeConfig{}); err == nil {
		t.Fatal("invalid kernel accepted")
	}
	if _, err := Optimize(Kernel{Tau: 2, Td: 0, T: 20}, nil, OptimizeConfig{}); err == nil {
		t.Fatal("empty sample set accepted")
	}
	if _, err := Optimize(Kernel{Tau: 2, Td: 0, T: 20}, []float64{0, 0}, OptimizeConfig{}); err == nil {
		t.Fatal("all-zero samples accepted")
	}
}

func TestTauStaysAboveFloor(t *testing.T) {
	rng := tensor.NewRNG(14)
	zbar := make([]float64, 500)
	for i := range zbar {
		zbar[i] = rng.Range(0.9, 1.0) // pushes τ down hard
	}
	res, err := Optimize(Kernel{Tau: 1, Td: 0, T: 20}, zbar, OptimizeConfig{
		LRTau: 50, BatchSize: 64, Epochs: 5, RNG: tensor.NewRNG(15), MinTau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel.Tau < 0.5 {
		t.Fatalf("τ fell below floor: %v", res.Kernel.Tau)
	}
}
