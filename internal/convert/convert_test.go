package convert

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// trainedLeNet returns a small trained network on MNIST-like data plus a
// calibration batch and a test set, shared by conversion tests.
func trainedLeNet(t *testing.T) (*dnn.Network, *tensor.Tensor, *tensor.Tensor, []int) {
	t.Helper()
	rng := tensor.NewRNG(1)
	cfg := dnn.ArchConfig{InC: 1, InH: 16, InW: 16, Classes: 10, FCWidth: 32, BatchNorm: true, Pool: dnn.AvgPool}
	net := dnn.BuildLeNet(cfg, rng)

	// compact synthetic task: blobs per class rendered directly here to
	// keep this package independent of internal/dataset
	n := 300
	x := tensor.New(n, 1, 16, 16)
	labels := make([]int, n)
	r := tensor.NewRNG(2)
	for i := 0; i < n; i++ {
		cls := i % 10
		labels[i] = cls
		cx, cy := 2+(cls%5)*3, 2+(cls/5)*8
		for dy := 0; dy < 4; dy++ {
			for dx := 0; dx < 4; dx++ {
				x.Data[i*256+(cy+dy)*16+cx+dx] = tensor.Clamp(0.8+0.2*r.Norm(), 0, 1)
			}
		}
		for j := 0; j < 256; j++ {
			x.Data[i*256+j] = tensor.Clamp(x.Data[i*256+j]+0.05*r.Norm(), 0, 1)
		}
	}
	dnn.Train(net, x, labels, dnn.TrainConfig{
		Epochs: 3, BatchSize: 25, Optimizer: dnn.NewAdam(2e-3, 0), RNG: tensor.NewRNG(3)})
	return net, x.Reshape(n, 1, 16, 16), x, labels
}

func TestFoldConvBNMatchesComposition(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := dnn.NewConv2D("c", 3, g, rng)
	bn := dnn.NewBatchNorm("c.bn", 3, true)
	// non-trivial BN state
	rng.FillUniform(bn.Gamma.W, 0.5, 1.5)
	rng.FillUniform(bn.Beta.W, -0.3, 0.3)
	rng.FillUniform(bn.RunMean, -0.2, 0.2)
	rng.FillUniform(bn.RunVar, 0.5, 2)

	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	want := bn.Forward(conv.Forward(x, false), false)

	w, b := conv.Weight.W.Clone(), conv.Bias.W.Clone()
	foldConvBN(w, b, bn)
	foldedConv := dnn.NewConv2D("folded", 3, g, rng)
	copy(foldedConv.Weight.W.Data, w.Data)
	copy(foldedConv.Bias.W.Data, b.Data)
	got := foldedConv.Forward(x, false)
	if !got.AllClose(want, 1e-9) {
		t.Fatal("folded conv+BN disagrees with composition")
	}
}

func TestFoldDenseBNMatchesComposition(t *testing.T) {
	rng := tensor.NewRNG(5)
	d := dnn.NewDense("fc", 6, 4, rng)
	bn := dnn.NewBatchNorm("fc.bn", 4, false)
	rng.FillUniform(bn.Gamma.W, 0.5, 1.5)
	rng.FillUniform(bn.Beta.W, -0.3, 0.3)
	rng.FillUniform(bn.RunMean, -0.2, 0.2)
	rng.FillUniform(bn.RunVar, 0.5, 2)

	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	want := bn.Forward(d.Forward(x, false), false)

	w, b := d.Weight.W.Clone(), d.Bias.W.Clone()
	foldDenseBN(w, b, bn)
	folded := dnn.NewDense("folded", 6, 4, rng)
	copy(folded.Weight.W.Data, w.Data)
	copy(folded.Bias.W.Data, b.Data)
	if !folded.Forward(x, false).AllClose(want, 1e-9) {
		t.Fatal("folded dense+BN disagrees with composition")
	}
}

func TestConvertEmitsValidNet(t *testing.T) {
	net, calib, _, _ := trainedLeNet(t)
	res, err := Convert(net, Options{Calibration: calib.Reshape(300, 1, 16, 16), Percentile: 99.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	// LeNet: Conv1, Conv2, FC3, FC4 -> 4 stages, last Output
	if len(res.Net.Stages) != 4 {
		t.Fatalf("stage count = %d, want 4", len(res.Net.Stages))
	}
	if !res.Net.Stages[3].Output {
		t.Fatal("last stage must be Output")
	}
	// Conv2 and FC3 carry the pools
	if res.Net.Stages[1].PrePool == nil || res.Net.Stages[2].PrePool == nil {
		t.Fatal("pools not attached to following stages")
	}
	if res.Net.Stages[0].PrePool != nil {
		t.Fatal("first conv must not have a pool")
	}
}

func TestNormalizedActivationsBounded(t *testing.T) {
	net, calib, _, _ := trainedLeNet(t)
	res, err := Convert(net, Options{Calibration: calib.Reshape(300, 1, 16, 16), Percentile: 99.9})
	if err != nil {
		t.Fatal(err)
	}
	for si, act := range res.Activations {
		if si == len(res.Activations)-1 {
			continue // logits are unbounded
		}
		over := 0
		for _, v := range act {
			if v < 0 {
				t.Fatalf("stage %d has negative post-ReLU activation %v", si, v)
			}
			if v > 1 {
				over++
			}
		}
		// only the tail above the 99.9th percentile may exceed 1
		if frac := float64(over) / float64(len(act)); frac > 0.005 {
			t.Fatalf("stage %d has %.3f%% activations above 1", si, 100*frac)
		}
	}
}

func TestConversionPreservesPredictions(t *testing.T) {
	net, calib, x, labels := trainedLeNet(t)
	res, err := Convert(net, Options{Calibration: calib.Reshape(300, 1, 16, 16), Percentile: 99.9})
	if err != nil {
		t.Fatal(err)
	}
	sampleLen := 256
	agree := 0
	n := 100
	for i := 0; i < n; i++ {
		in := x.Data[i*sampleLen : (i+1)*sampleLen]
		ref := ReferenceForward(res.Net, in, true)
		refT := tensor.FromSlice(ref, 1, len(ref))
		dnnPred := net.Predict(tensor.FromSlice(in, 1, 1, 16, 16))[0]
		if dnn.ArgMaxRows(refT)[0] == dnnPred {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.9 {
		t.Fatalf("converted network agrees with DNN on only %.0f%% of samples", 100*frac)
	}
	_ = labels
}

func TestConvertRejectsMaxPool(t *testing.T) {
	rng := tensor.NewRNG(6)
	cfg := dnn.ArchConfig{InC: 1, InH: 8, InW: 8, Classes: 4, FCWidth: 8, Pool: dnn.MaxPool}
	net := dnn.BuildLeNet(cfg, rng)
	calib := tensor.New(2, 1, 8, 8)
	if _, err := Convert(net, Options{Calibration: calib}); err == nil {
		t.Fatal("Convert must reject max pooling")
	}
}

func TestConvertRejectsMissingCalibration(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := dnn.NewNetwork("x", 4).Add(dnn.NewDense("fc", 4, 2, rng))
	if _, err := Convert(net, Options{}); err == nil {
		t.Fatal("Convert must require calibration data")
	}
}

func TestConvertRejectsConvWithoutReLU(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := dnn.NewNetwork("x", 1, 4, 4).Add(
		dnn.NewConv2D("c", 2, g, rng),
		dnn.NewFlatten("f"),
		dnn.NewDense("fc", 32, 2, rng),
	)
	calib := tensor.New(2, 1, 4, 4)
	if _, err := Convert(net, Options{Calibration: calib}); err == nil {
		t.Fatal("Convert must reject conv without ReLU")
	}
}

func TestUntrainedNetworkFailsNormalization(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := dnn.NewConv2D("c", 2, g, rng)
	conv.Weight.W.Zero() // dead layer -> zero activations
	net := dnn.NewNetwork("x", 1, 4, 4).Add(
		conv, dnn.NewReLU("c.relu"), dnn.NewFlatten("f"), dnn.NewDense("fc", 32, 2, rng))
	calib := tensor.New(2, 1, 4, 4)
	if _, err := Convert(net, Options{Calibration: calib}); err == nil {
		t.Fatal("Convert must fail on dead activations")
	}
}

func TestStageScatterMatchesForward(t *testing.T) {
	// Event-driven Scatter summed over all inputs must equal Forward
	// minus bias, for conv with pooling and for dense.
	net, calib, x, _ := trainedLeNet(t)
	res, err := Convert(net, Options{Calibration: calib.Reshape(300, 1, 16, 16)})
	if err != nil {
		t.Fatal(err)
	}
	in := x.Data[0:256]
	cur := in
	for si := range res.Net.Stages {
		st := &res.Net.Stages[si]
		want := st.Forward(cur)
		got := make([]float64, st.OutLen)
		st.AddBias(got)
		for i, v := range cur {
			if v != 0 {
				st.Scatter(i, v, got)
			}
		}
		for j := range want {
			if math.Abs(want[j]-got[j]) > 1e-9 {
				t.Fatalf("stage %s: Scatter sum %v != Forward %v at %d", st.Name, got[j], want[j], j)
			}
		}
		// propagate through ReLU for next stage input
		next := make([]float64, len(want))
		for j, v := range want {
			if v > 0 {
				next[j] = v
			}
		}
		cur = next
	}
	_ = snn.ConvStage
}
