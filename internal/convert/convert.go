// Package convert implements the DNN-to-SNN conversion pipeline the
// paper builds on (Diehl 2015, Rueckauer 2017): BatchNorm folding into
// the preceding weighted layer, data-based activation normalization with
// a robust percentile, and emission of the converted spiking network
// representation consumed by every coding scheme.
package convert

import (
	"fmt"
	"math"

	"repro/internal/dnn"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Options controls the conversion.
type Options struct {
	// Percentile is the activation percentile used as the robust
	// per-layer maximum λ (the paper's references use 99.9).
	Percentile float64
	// Calibration is a [N, ...] batch of training inputs used to record
	// activation statistics.
	Calibration *tensor.Tensor
}

// Result carries the converted network together with the per-stage
// normalization scales and recorded activations, which the kernel
// optimizer (internal/kernel) reuses as ground truth z̄.
type Result struct {
	Net *snn.Net
	// Lambda[i] is the activation scale λ of stage i's output.
	Lambda []float64
	// Activations[i] holds the normalized post-ReLU activation samples
	// of stage i (values in [0,1]) recorded from the calibration batch;
	// the output stage records normalized logits instead.
	Activations [][]float64
}

// folded is an intermediate weighted layer with BN already folded in.
type folded struct {
	name    string
	kind    snn.StageKind
	geom    tensor.ConvGeom
	outC    int
	w, b    *tensor.Tensor
	prePool *snn.PoolSpec
	inLen   int
	outLen  int
	// index of the layer in the source network whose output is this
	// stage's post-ReLU activation (ReLU for hidden, the layer itself
	// for the output stage).
	actLayer int
}

// Convert folds, normalizes, and emits the spiking network for a trained
// DNN. The network must be built from Conv2D/Dense/BatchNorm/ReLU/
// AvgPool/Flatten layers (the SNN-compatible subset); MaxPool is
// rejected.
func Convert(netw *dnn.Network, opts Options) (*Result, error) {
	if opts.Percentile <= 0 {
		opts.Percentile = 99.9
	}
	if opts.Calibration == nil {
		return nil, fmt.Errorf("convert: calibration batch is required for data-based normalization")
	}
	stages, err := foldNetwork(netw)
	if err != nil {
		return nil, err
	}

	// Record activation statistics per stage from the calibration batch.
	// actSamples[si] collects the raw (pre-normalization) activations.
	actSamples := make([][]float64, len(stages))
	actIndex := map[int]int{} // source layer index -> stage index
	for si, st := range stages {
		actIndex[st.actLayer] = si
	}
	netw.ForwardCollect(opts.Calibration, func(li int, l dnn.Layer, out *tensor.Tensor) {
		if si, ok := actIndex[li]; ok {
			actSamples[si] = append(actSamples[si], out.Data...)
		}
	})

	// λ per stage: robust percentile of post-ReLU activations. The
	// output stage has no ReLU; argmax classification is scale
	// invariant, so it keeps λ = 1 (potentials are read directly).
	lambda := make([]float64, len(stages))
	for si := range stages {
		if si == len(stages)-1 {
			lambda[si] = 1
			continue
		}
		lam := tensor.Percentile(actSamples[si], opts.Percentile)
		if lam <= 1e-9 {
			return nil, fmt.Errorf("convert: stage %s has near-zero activations (λ=%g); network untrained?", stages[si].name, lam)
		}
		lambda[si] = lam
	}

	// Scale weights: W'_l = W_l·λ_{l-1}/λ_l, b'_l = b_l/λ_l, with
	// λ_0 = 1 because pixel inputs are already in [0,1].
	out := &snn.Net{Name: netw.Name, InShape: append([]int(nil), netw.InShape...)}
	out.InLen = 1
	for _, d := range netw.InShape {
		out.InLen *= d
	}
	prevLambda := 1.0
	for si, st := range stages {
		w := st.w.Clone()
		b := st.b.Clone()
		w.Scale(prevLambda / lambda[si])
		b.Scale(1 / lambda[si])
		out.Stages = append(out.Stages, snn.Stage{
			Name:    st.name,
			Kind:    st.kind,
			PrePool: st.prePool,
			Geom:    st.geom,
			OutC:    st.outC,
			W:       w,
			B:       b,
			InLen:   st.inLen,
			OutLen:  st.outLen,
			Output:  si == len(stages)-1,
		})
		prevLambda = lambda[si]
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("convert: emitted network invalid: %w", err)
	}

	// Normalize the recorded activations so downstream consumers (the
	// kernel optimizer) see the values the SNN actually transmits.
	normAct := make([][]float64, len(stages))
	for si, samples := range actSamples {
		n := make([]float64, len(samples))
		inv := 1 / lambda[si]
		for i, v := range samples {
			n[i] = v * inv
		}
		normAct[si] = n
	}
	return &Result{Net: out, Lambda: lambda, Activations: normAct}, nil
}

// foldNetwork walks the DNN layer list, folds BatchNorm layers into
// their preceding weighted layer, attaches average pools to the
// following weighted stage, and validates the layer vocabulary.
func foldNetwork(netw *dnn.Network) ([]folded, error) {
	var stages []folded
	var pending *snn.PoolSpec
	var pendingPoolLen int

	// current per-sample input length flowing into the next stage
	curShape := append([]int(nil), netw.InShape...)
	curLen := 1
	for _, d := range curShape {
		curLen *= d
	}

	for li := 0; li < len(netw.Layers); li++ {
		switch l := netw.Layers[li].(type) {
		case *dnn.Conv2D:
			w, b := l.Weight.W.Clone(), l.Bias.W.Clone()
			geom := l.Geom
			next := li
			if bn, ok := nextBatchNorm(netw, li); ok {
				foldConvBN(w, b, bn)
				next++
			}
			act, ok := nextReLU(netw, next)
			if !ok {
				return nil, fmt.Errorf("convert: conv layer %s lacks a following ReLU", l.Name())
			}
			st := folded{
				name: l.Name(), kind: snn.ConvStage, geom: geom, outC: l.OutC,
				w: w, b: b, inLen: curLen, outLen: l.OutC * geom.OutH() * geom.OutW(),
				actLayer: act,
			}
			if pending != nil {
				st.prePool = pending
				st.inLen = pendingPoolLen
				pending = nil
			}
			stages = append(stages, st)
			curLen = st.outLen
			li = act

		case *dnn.Dense:
			w, b := l.Weight.W.Clone(), l.Bias.W.Clone()
			next := li
			if bn, ok := nextBatchNorm(netw, li); ok {
				foldDenseBN(w, b, bn)
				next++
			}
			st := folded{
				name: l.Name(), kind: snn.DenseStage,
				w: w, b: b, inLen: curLen, outLen: l.Out,
			}
			if pending != nil {
				st.prePool = pending
				st.inLen = pendingPoolLen
				pending = nil
			}
			if act, ok := nextReLU(netw, next); ok {
				st.actLayer = act
				li = act
			} else {
				// output layer: activation is the layer itself (or its BN)
				st.actLayer = next
				li = next
			}
			stages = append(stages, st)
			curLen = st.outLen

		case *dnn.Pool2D:
			if l.Kind != dnn.AvgPool {
				return nil, fmt.Errorf("convert: %s: max pooling is not SNN-convertible; train with average pooling", l.Name())
			}
			if pending != nil {
				return nil, fmt.Errorf("convert: consecutive pools before %s are unsupported", l.Name())
			}
			g := l.Geom
			pending = &snn.PoolSpec{C: g.InC, InH: g.InH, InW: g.InW, K: g.KH}
			pendingPoolLen = curLen
			curLen = g.InC * g.OutH() * g.OutW()

		case *dnn.Flatten:
			// CHW layout is already flat; nothing to do.

		case *dnn.Dropout:
			// inverted dropout is the identity at inference

		case *dnn.Identity:
			// explicit no-op

		case *dnn.BatchNorm:
			return nil, fmt.Errorf("convert: BatchNorm %s is not preceded by a weighted layer", l.Name())

		case *dnn.ReLU:
			return nil, fmt.Errorf("convert: ReLU %s is not preceded by a weighted layer", l.Name())

		default:
			return nil, fmt.Errorf("convert: unsupported layer type %T (%s)", l, l.Name())
		}
	}
	if pending != nil {
		return nil, fmt.Errorf("convert: trailing pool with no following weighted layer")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("convert: network has no weighted layers")
	}
	return stages, nil
}

// nextBatchNorm returns the BatchNorm immediately following layer li.
func nextBatchNorm(netw *dnn.Network, li int) (*dnn.BatchNorm, bool) {
	if li+1 < len(netw.Layers) {
		if bn, ok := netw.Layers[li+1].(*dnn.BatchNorm); ok {
			return bn, true
		}
	}
	return nil, false
}

// nextReLU returns the index of the ReLU at position li+1 (if any).
func nextReLU(netw *dnn.Network, li int) (int, bool) {
	if li+1 < len(netw.Layers) {
		if _, ok := netw.Layers[li+1].(*dnn.ReLU); ok {
			return li + 1, true
		}
	}
	return 0, false
}

// foldConvBN folds y = gamma·(conv(x)−mean)/sqrt(var+eps)+beta into the
// convolution weights: per output channel, W *= s and b = (b−mean)·s+beta
// with s = gamma/sqrt(var+eps).
func foldConvBN(w, b *tensor.Tensor, bn *dnn.BatchNorm) {
	outC := w.Shape[0]
	per := w.Len() / outC
	for c := 0; c < outC; c++ {
		s := bn.Gamma.W.Data[c] / math.Sqrt(bn.RunVar.Data[c]+bn.Eps)
		row := w.Data[c*per : (c+1)*per]
		for i := range row {
			row[i] *= s
		}
		b.Data[c] = (b.Data[c]-bn.RunMean.Data[c])*s + bn.Beta.W.Data[c]
	}
}

// foldDenseBN is foldConvBN for dense weights of shape [In, Out]
// (scaling acts on columns).
func foldDenseBN(w, b *tensor.Tensor, bn *dnn.BatchNorm) {
	in, out := w.Shape[0], w.Shape[1]
	for j := 0; j < out; j++ {
		s := bn.Gamma.W.Data[j] / math.Sqrt(bn.RunVar.Data[j]+bn.Eps)
		for i := 0; i < in; i++ {
			w.Data[i*out+j] *= s
		}
		b.Data[j] = (b.Data[j]-bn.RunMean.Data[j])*s + bn.Beta.W.Data[j]
	}
}

// ReferenceForward runs the converted network as a plain ANN on a single
// input sample (flattened [C,H,W]), applying ReLU between stages exactly
// as the spiking semantics do (negative potentials never fire). It is
// the numerical ground truth the spiking simulators are tested against:
// clipped at 1 because normalized activations above λ saturate the
// coding range.
func ReferenceForward(n *snn.Net, input []float64, clip bool) []float64 {
	x := input
	for i := range n.Stages {
		st := &n.Stages[i]
		x = st.Forward(x)
		if !st.Output {
			for j, v := range x {
				if v < 0 {
					x[j] = 0
				} else if clip && v > 1 {
					x[j] = 1
				}
			}
		}
	}
	return x
}
