// Package energy implements the paper's neuromorphic energy estimation
// (Table II): estimated energy = spikes·E_dyn + latency·E_sta, with the
// dynamic/static energy parameters of TrueNorth and SpiNNaker taken from
// the paper, reported normalized to the rate-coding baseline.
package energy

import "fmt"

// Arch is a neuromorphic architecture energy model.
type Arch struct {
	Name string
	Edyn float64 // dynamic energy weight per spike
	Esta float64 // static energy weight per time step
}

// The two architectures the paper estimates against (§IV-B): parameter
// pairs (E_dyn, E_sta) are (0.4, 0.6) for TrueNorth and (0.64, 0.36)
// for SpiNNaker.
var (
	TrueNorth = Arch{Name: "TrueNorth", Edyn: 0.4, Esta: 0.6}
	SpiNNaker = Arch{Name: "SpiNNaker", Edyn: 0.64, Esta: 0.36}
)

// Estimate returns the architecture's estimated energy for an inference
// with the given spike count and latency (in time steps).
func (a Arch) Estimate(spikes, latency float64) float64 {
	return spikes*a.Edyn + latency*a.Esta
}

// Normalized returns the energy of (spikes, latency) relative to a
// baseline (spikesBase, latencyBase) — the paper normalizes every scheme
// to rate coding. The spike and latency terms are normalized
// independently before weighting, matching the dimensionless parameter
// pairs above.
func (a Arch) Normalized(spikes, latency, spikesBase, latencyBase float64) (float64, error) {
	if spikesBase <= 0 || latencyBase <= 0 {
		return 0, fmt.Errorf("energy: non-positive baseline (spikes=%v latency=%v)", spikesBase, latencyBase)
	}
	return a.Estimate(spikes/spikesBase, latency/latencyBase), nil
}
