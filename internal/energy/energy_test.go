package energy

import (
	"math"
	"testing"
)

func TestPaperParameters(t *testing.T) {
	if TrueNorth.Edyn != 0.4 || TrueNorth.Esta != 0.6 {
		t.Fatalf("TrueNorth params = (%v,%v)", TrueNorth.Edyn, TrueNorth.Esta)
	}
	if SpiNNaker.Edyn != 0.64 || SpiNNaker.Esta != 0.36 {
		t.Fatalf("SpiNNaker params = (%v,%v)", SpiNNaker.Edyn, SpiNNaker.Esta)
	}
	// both parameter pairs are convex weights
	if TrueNorth.Edyn+TrueNorth.Esta != 1 || SpiNNaker.Edyn+SpiNNaker.Esta != 1 {
		t.Fatal("energy weights must sum to 1")
	}
}

func TestEstimateLinear(t *testing.T) {
	got := TrueNorth.Estimate(10, 100)
	want := 10*0.4 + 100*0.6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
}

func TestNormalizedBaselineIsOne(t *testing.T) {
	// The baseline scheme normalized against itself must cost exactly 1,
	// matching the "Rate = 1.000" rows of Table II.
	for _, a := range []Arch{TrueNorth, SpiNNaker} {
		got, err := a.Normalized(123456, 10000, 123456, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Fatalf("%s self-normalized = %v, want 1", a.Name, got)
		}
	}
}

func TestNormalizedFewerSpikesCheaper(t *testing.T) {
	base, err := TrueNorth.Normalized(100, 100, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 10x fewer spikes and 10x lower latency -> 10x cheaper
	if math.Abs(base-0.1) > 1e-12 {
		t.Fatalf("Normalized = %v, want 0.1", base)
	}
}

func TestNormalizedErrors(t *testing.T) {
	if _, err := TrueNorth.Normalized(1, 1, 0, 1); err == nil {
		t.Fatal("zero spike baseline accepted")
	}
	if _, err := TrueNorth.Normalized(1, 1, 1, 0); err == nil {
		t.Fatal("zero latency baseline accepted")
	}
}

// Reproduce the paper's headline CIFAR-100 numbers: T2FSNN with ~0.1% of
// burst's spikes and 22% of its latency lands near 0.04 (TN) relative to
// rate coding, as in Table II's "Our Method" row.
func TestTableIIShape(t *testing.T) {
	// paper CIFAR-100 raw numbers (spikes in millions, latency in steps)
	rateSpikes, rateLat := 81.525, 10000.0
	ourSpikes, ourLat := 0.084, 680.0
	tn, err := TrueNorth.Normalized(ourSpikes, ourLat, rateSpikes, rateLat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tn-0.041) > 0.002 {
		t.Fatalf("TN normalized = %v, paper reports 0.041", tn)
	}
	sn, err := SpiNNaker.Normalized(ourSpikes, ourLat, rateSpikes, rateLat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sn-0.025) > 0.002 {
		t.Fatalf("SN normalized = %v, paper reports 0.025", sn)
	}
}
