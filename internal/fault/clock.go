package fault

import (
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Spike is one weighted spike event in a clock-driven simulation (rate
// coding uses weight 1; phase and burst coding carry per-spike weights).
type Spike struct {
	Idx int
	W   float64
}

// ClockGate routes one fire boundary's per-step emissions through the
// stream's transmission faults — drop and delivery delay (jitter) — for
// a clock-driven simulator. Stuck and threshold faults change neuron
// state and must be applied at emission time by the simulator itself.
//
// A nil gate (from a nil stream, or Jitter = 0 with Drop = 0) is a
// pass-through; the simulators keep their original buffers untouched.
type ClockGate struct {
	s *Stream
	b int
	// ring[i] holds spikes due i steps after the ring's current head.
	ring [][]Spike
	pos  int
}

// ClockGate returns the transmission gate for fire boundary b, or nil
// when the stream injects no transmission faults.
func (s *Stream) ClockGate(b int) *ClockGate {
	if s == nil || (s.j.cfg.Drop <= 0 && s.j.cfg.Jitter <= 0) {
		return nil
	}
	return &ClockGate{s: s, b: b, ring: make([][]Spike, s.j.cfg.Jitter+1)}
}

// Step pushes the spikes emitted at step t through the gate and returns
// the spikes due for delivery at step t (emissions delayed from earlier
// steps plus this step's zero-delay survivors). The returned slice is
// owned by the gate and valid until the next Step call. A nil gate
// returns emitted unchanged.
func (g *ClockGate) Step(t int, emitted []Spike) []Spike {
	if g == nil {
		return emitted
	}
	for _, sp := range emitted {
		if g.s.Drop(g.b, sp.Idx, t) {
			continue
		}
		d := g.s.Delay(g.b, sp.Idx, t)
		slot := (g.pos + d) % len(g.ring)
		g.ring[slot] = append(g.ring[slot], sp)
	}
	due := g.ring[g.pos]
	g.ring[g.pos] = nil
	g.pos = (g.pos + 1) % len(g.ring)
	return due
}

// PerturbWeights returns a copy of net whose stage weights carry static
// multiplicative Gaussian noise, w' = w·(1 + σ·N(0,1)) — the
// fabrication-defect model. Biases and geometry are shared with the
// original; only the weight tensors are cloned. σ ≤ 0 returns net
// unchanged.
func PerturbWeights(net *snn.Net, sigma float64, seed uint64) *snn.Net {
	if sigma <= 0 {
		return net
	}
	rng := tensor.NewRNG(mix(seed, 0x77656967687473)) // "weights"
	clone := &snn.Net{Name: net.Name, InShape: net.InShape, InLen: net.InLen}
	clone.Stages = append([]snn.Stage(nil), net.Stages...)
	for i := range clone.Stages {
		st := &clone.Stages[i]
		w := tensor.FromSlice(append([]float64(nil), st.W.Data...), st.W.Shape...)
		for j := range w.Data {
			w.Data[j] *= 1 + sigma*rng.Norm()
		}
		st.W = w
	}
	return clone
}
