package fault

import (
	"math"
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	j, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Drop: -0.1},
		{Drop: 1.5},
		{Jitter: -1},
		{StuckSilent: -0.2},
		{StuckSilent: 0.7, StuckFire: 0.6},
		{ThresholdNoise: -1},
		{WeightNoise: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := New(Config{Drop: 0.5, Jitter: 3, StuckSilent: 0.1, StuckFire: 0.1, ThresholdNoise: 0.2}); err != nil {
		t.Fatal(err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var j *Injector
	s := j.Sample(0)
	if s != nil {
		t.Fatal("nil injector produced a stream")
	}
	if s.Drop(0, 1, 2) || s.Stuck(0, 1) != Healthy {
		t.Fatal("nil stream injected a fault")
	}
	if got := s.JitterTTFS(0, 1, 7, 20); got != 7 {
		t.Fatalf("nil stream jittered: %d", got)
	}
	if got := s.Threshold(0, 3, 1.5); got != 1.5 {
		t.Fatalf("nil stream perturbed threshold: %v", got)
	}
	times := []int{3, -1, 5}
	if live := s.ApplyTTFS(1, times, 20); live != 2 {
		t.Fatalf("nil stream live count = %d, want 2", live)
	}
	if times[0] != 3 || times[1] != -1 || times[2] != 5 {
		t.Fatalf("nil stream mutated times: %v", times)
	}
	if g := s.ClockGate(0); g != nil {
		t.Fatal("nil stream produced a gate")
	}
}

func TestZeroConfigStreamIsNoOp(t *testing.T) {
	j := mustNew(t, Config{Seed: 9})
	s := j.Sample(3)
	if s == nil {
		t.Fatal("non-nil injector must produce a stream")
	}
	if s.Drop(1, 2, 3) || s.Stuck(1, 2) != Healthy {
		t.Fatal("zero config injected a fault")
	}
	if got := s.JitterTTFS(1, 2, 9, 20); got != 9 {
		t.Fatalf("zero config jittered: %d", got)
	}
	if got := s.Threshold(1, 2, 0.75); got != 0.75 {
		t.Fatalf("zero config perturbed threshold: %v", got)
	}
	times := []int{0, 19, -1}
	if live := s.ApplyTTFS(0, times, 20); live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}
	if times[0] != 0 || times[1] != 19 || times[2] != -1 {
		t.Fatalf("zero config mutated times: %v", times)
	}
}

func TestDeterminismAndOrderIndependence(t *testing.T) {
	j := mustNew(t, Config{Seed: 42, Drop: 0.3, Jitter: 2, StuckSilent: 0.1, ThresholdNoise: 0.1})
	a, b := j.Sample(7), j.Sample(7)
	// same decisions regardless of query order
	if a.Drop(1, 5, 3) != b.Drop(1, 5, 3) {
		t.Fatal("drop not deterministic")
	}
	_ = b.Drop(2, 9, 9) // interleave an unrelated query
	if a.Threshold(2, 4, 1.0) != b.Threshold(2, 4, 1.0) {
		t.Fatal("threshold noise not deterministic")
	}
	if a.JitterTTFS(0, 3, 8, 20) != b.JitterTTFS(0, 3, 8, 20) {
		t.Fatal("jitter not deterministic")
	}
	// different samples decorrelate
	c := j.Sample(8)
	same := 0
	for n := 0; n < 200; n++ {
		if a.Drop(0, n, 0) == c.Drop(0, n, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("samples 7 and 8 produced identical drop patterns")
	}
}

func TestDropRateMatchesProbability(t *testing.T) {
	j := mustNew(t, Config{Seed: 1, Drop: 0.25})
	s := j.Sample(0)
	dropped := 0
	n := 20000
	for i := 0; i < n; i++ {
		if s.Drop(1, i, 0) {
			dropped++
		}
	}
	got := float64(dropped) / float64(n)
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("drop rate %.3f, want ~0.25", got)
	}
}

func TestStuckFractionsAndStability(t *testing.T) {
	j := mustNew(t, Config{Seed: 5, StuckSilent: 0.2, StuckFire: 0.1})
	silent, fire := 0, 0
	n := 10000
	for i := 0; i < n; i++ {
		switch j.Stuck(2, i) {
		case StuckSilent:
			silent++
		case StuckFire:
			fire++
		}
	}
	if got := float64(silent) / float64(n); math.Abs(got-0.2) > 0.02 {
		t.Fatalf("stuck-silent fraction %.3f, want ~0.2", got)
	}
	if got := float64(fire) / float64(n); math.Abs(got-0.1) > 0.02 {
		t.Fatalf("stuck-fire fraction %.3f, want ~0.1", got)
	}
	// sample-independent: the same neurons are stuck through every stream
	a, b := j.Sample(0), j.Sample(99)
	for i := 0; i < 500; i++ {
		if a.Stuck(1, i) != b.Stuck(1, i) {
			t.Fatal("stuck set moved between samples")
		}
	}
}

func TestJitterTTFSBounds(t *testing.T) {
	j := mustNew(t, Config{Seed: 3, Jitter: 4})
	s := j.Sample(0)
	window := 20
	moved := false
	for n := 0; n < 500; n++ {
		for _, t0 := range []int{0, 1, 10, 19} {
			got := s.JitterTTFS(0, n, t0, window)
			if got < 0 || got >= window {
				t.Fatalf("jittered offset %d outside [0,%d)", got, window)
			}
			if d := got - t0; d < -4 || d > 4 {
				t.Fatalf("jitter moved %d -> %d, beyond ±4", t0, got)
			}
			if got != t0 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("jitter never moved any spike")
	}
}

func TestThresholdNoiseStaysPositive(t *testing.T) {
	j := mustNew(t, Config{Seed: 8, ThresholdNoise: 2}) // absurdly noisy
	s := j.Sample(0)
	for step := 0; step < 2000; step++ {
		if got := s.Threshold(1, step, 0.5); got <= 0 {
			t.Fatalf("threshold collapsed to %v at step %d", got, step)
		}
	}
}

func TestApplyTTFSSemantics(t *testing.T) {
	// Drop = 1 wipes every live spike.
	j := mustNew(t, Config{Seed: 1, Drop: 1})
	times := []int{0, 5, -1, 19}
	if live := j.Sample(0).ApplyTTFS(0, times, 20); live != 0 {
		t.Fatalf("drop=1 left %d live spikes", live)
	}
	for i, v := range times {
		if v != -1 {
			t.Fatalf("times[%d] = %d after drop=1", i, v)
		}
	}
	// StuckFire = 1 forces every neuron to fire at the window start.
	j = mustNew(t, Config{Seed: 1, StuckFire: 1})
	times = []int{-1, 7, -1}
	if live := j.Sample(0).ApplyTTFS(0, times, 20); live != 3 {
		t.Fatalf("stuck-fire=1 live = %d, want 3", live)
	}
	for i, v := range times {
		if v != 0 {
			t.Fatalf("times[%d] = %d, want 0", i, v)
		}
	}
}

func TestClockGateDelaysAndDrops(t *testing.T) {
	// pure delay of exactly Jitter steps is impossible to force (delay is
	// uniform), so check conservation instead: with no drop, every spike
	// pushed in eventually comes out, within Jitter steps.
	j := mustNew(t, Config{Seed: 11, Jitter: 3})
	g := j.Sample(0).ClockGate(1)
	if g == nil {
		t.Fatal("expected a gate")
	}
	in, out := 0, 0
	for t0 := 0; t0 < 50; t0++ {
		var emitted []Spike
		if t0 < 40 {
			emitted = []Spike{{Idx: t0, W: 1}, {Idx: 1000 + t0, W: 0.5}}
			in += len(emitted)
		}
		out += len(g.Step(t0, emitted))
	}
	if in != out {
		t.Fatalf("gate lost spikes: %d in, %d out", in, out)
	}

	// drop=1: nothing survives
	j = mustNew(t, Config{Seed: 11, Drop: 1})
	g = j.Sample(0).ClockGate(0)
	total := 0
	for t0 := 0; t0 < 10; t0++ {
		total += len(g.Step(t0, []Spike{{Idx: t0, W: 1}}))
	}
	if total != 0 {
		t.Fatalf("drop=1 gate delivered %d spikes", total)
	}

	// no transmission faults -> nil gate passes through
	j = mustNew(t, Config{Seed: 11, StuckSilent: 0.5})
	if g := j.Sample(0).ClockGate(0); g != nil {
		t.Fatal("gate allocated with no transmission faults")
	}
}

func TestPerturbWeights(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	b := tensor.FromSlice([]float64{0.1, 0.2}, 2)
	net := &snn.Net{
		Name: "t", InShape: []int{3}, InLen: 3,
		Stages: []snn.Stage{{Name: "out", Kind: snn.DenseStage, W: w, B: b, InLen: 3, OutLen: 2, Output: true}},
	}
	if got := PerturbWeights(net, 0, 1); got != net {
		t.Fatal("sigma=0 must return the original network")
	}
	p1 := PerturbWeights(net, 0.1, 7)
	p2 := PerturbWeights(net, 0.1, 7)
	p3 := PerturbWeights(net, 0.1, 8)
	if p1 == net {
		t.Fatal("perturbed network aliases the original")
	}
	changedVsOrig, changedVsSeed := false, false
	for i := range w.Data {
		if net.Stages[0].W.Data[i] != w.Data[i] {
			t.Fatal("original weights mutated")
		}
		if p1.Stages[0].W.Data[i] != p2.Stages[0].W.Data[i] {
			t.Fatal("same seed produced different perturbations")
		}
		if p1.Stages[0].W.Data[i] != w.Data[i] {
			changedVsOrig = true
		}
		if p1.Stages[0].W.Data[i] != p3.Stages[0].W.Data[i] {
			changedVsSeed = true
		}
	}
	if !changedVsOrig {
		t.Fatal("perturbation changed nothing")
	}
	if !changedVsSeed {
		t.Fatal("different seeds produced identical perturbations")
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
}
