// Package fault implements a seeded, deterministic fault-injection
// layer for the spiking simulators. TTFS coding carries each neuron's
// value in a single spike time, so neuromorphic-hardware faults — lost
// spikes, timing jitter, stuck neurons, noisy thresholds, perturbed
// weights — are maximally destructive to it; rate-like codes spread the
// same information over many spikes and degrade gracefully. This
// package provides composable fault models that apply uniformly to
// every coding scheme (internal/core and internal/coding), so their
// robustness can be compared under identical fault processes.
//
// Determinism: every fault decision is a pure function of
// (seed, fault domain, sample, boundary, neuron, step) via a
// splitmix64-style hash — no mutable RNG state. Decisions are therefore
// independent of evaluation order, worker count, and which other fault
// models are enabled, making sweeps reproducible and race-free.
package fault

import (
	"fmt"
	"math"
)

// StuckState classifies a neuron's permanent hardware defect.
type StuckState uint8

// Stuck states.
const (
	// Healthy neurons behave normally.
	Healthy StuckState = iota
	// StuckSilent neurons never emit a spike (dead circuit).
	StuckSilent
	// StuckFire neurons fire regardless of their membrane potential:
	// at the start of the fire window under TTFS, every step under
	// clock-driven codes.
	StuckFire
)

func (s StuckState) String() string {
	switch s {
	case StuckSilent:
		return "stuck-silent"
	case StuckFire:
		return "stuck-fire"
	default:
		return "healthy"
	}
}

// Config selects the fault models and their intensities. The zero value
// injects nothing.
type Config struct {
	// Seed drives every fault decision; the same seed reproduces the
	// same faults for the same workload.
	Seed uint64

	// Drop is the probability that any individual spike is lost in
	// transit between layers (transient communication fault). The
	// emitting neuron still enters refractory; the downstream layer
	// never sees the spike.
	Drop float64

	// Jitter is the maximum timing perturbation in steps. TTFS spike
	// offsets move by a uniform amount in [-Jitter, +Jitter] (clamped
	// to the fire window); clock-driven schemes delay delivery by a
	// uniform amount in [0, Jitter] (a causal simulator cannot deliver
	// into the past).
	Jitter int

	// StuckSilent and StuckFire are the fractions of neurons, per fire
	// boundary, wired to the corresponding permanent defect. Membership
	// is a fixed function of (Seed, boundary, neuron) — the same
	// neurons are broken for every sample, as on a real chip.
	StuckSilent float64
	StuckFire   float64

	// ThresholdNoise is the relative standard deviation of Gaussian
	// noise applied multiplicatively to every firing-threshold
	// comparison: θ' = θ·(1 + σ·N(0,1)), clamped to a small positive
	// floor (analog threshold drift).
	ThresholdNoise float64

	// WeightNoise is the relative standard deviation of static Gaussian
	// weight perturbation, w' = w·(1 + σ·N(0,1)). It is not applied by
	// streams; use PerturbWeights to derive a faulted network copy
	// (fabrication-defect model).
	WeightNoise float64
}

// Validate rejects out-of-range intensities.
func (c Config) Validate() error {
	switch {
	case c.Drop < 0 || c.Drop > 1:
		return fmt.Errorf("fault: drop probability %v outside [0,1]", c.Drop)
	case c.Jitter < 0:
		return fmt.Errorf("fault: negative jitter %d", c.Jitter)
	case c.StuckSilent < 0 || c.StuckFire < 0 || c.StuckSilent+c.StuckFire > 1:
		return fmt.Errorf("fault: stuck fractions (%v silent, %v fire) must be non-negative and sum to at most 1",
			c.StuckSilent, c.StuckFire)
	case c.ThresholdNoise < 0:
		return fmt.Errorf("fault: negative threshold noise %v", c.ThresholdNoise)
	case c.WeightNoise < 0:
		return fmt.Errorf("fault: negative weight noise %v", c.WeightNoise)
	}
	return nil
}

// Injector is an immutable, validated fault configuration. A nil
// *Injector means "no faults" and is accepted everywhere.
type Injector struct {
	cfg Config
}

// New builds an injector, validating the configuration.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the injector's configuration (zero value when nil).
func (j *Injector) Config() Config {
	if j == nil {
		return Config{}
	}
	return j.cfg
}

// Sample derives the per-sample fault stream for sample idx. A nil
// injector yields a nil stream, which every hook treats as "no faults"
// — the simulators' fast path.
func (j *Injector) Sample(idx int) *Stream {
	if j == nil {
		return nil
	}
	return &Stream{j: j, sample: uint64(idx)}
}

// Stuck reports the permanent defect state of neuron n at fire boundary
// b. The assignment is sample-independent: a chip's broken neurons do
// not move between inferences.
func (j *Injector) Stuck(b, n int) StuckState {
	if j == nil {
		return Healthy
	}
	silent, fire := j.cfg.StuckSilent, j.cfg.StuckFire
	if silent <= 0 && fire <= 0 {
		return Healthy
	}
	u := hashUniform(j.cfg.Seed, domStuck, 0, uint64(b), uint64(n), 0)
	if u < silent {
		return StuckSilent
	}
	if u < silent+fire {
		return StuckFire
	}
	return Healthy
}

// Stream is the fault view of one sample's inference. Methods are
// nil-safe: a nil stream injects nothing.
type Stream struct {
	j      *Injector
	sample uint64
}

// Hash domains keep the fault decisions statistically independent.
const (
	domStuck uint64 = 1 + iota
	domDrop
	domJitter
	domThreshA
	domThreshB
)

// splitmix64 finalizer: mixes one word into the running hash.
func mix(h, x uint64) uint64 {
	z := h ^ (x + 0x9e3779b97f4a7c15 + (h << 12))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashUniform maps a fault-decision key to a uniform value in [0, 1).
func hashUniform(seed, dom, sample, b, n, t uint64) float64 {
	h := mix(seed, dom)
	h = mix(h, sample)
	h = mix(h, b)
	h = mix(h, n)
	h = mix(h, t)
	return float64(h>>11) / (1 << 53)
}

// Drop reports whether the spike emitted by neuron n at fire boundary b
// at (local) time t is lost in transit.
func (s *Stream) Drop(b, n, t int) bool {
	if s == nil || s.j.cfg.Drop <= 0 {
		return false
	}
	return hashUniform(s.j.cfg.Seed, domDrop, s.sample, uint64(b), uint64(n), uint64(t)) < s.j.cfg.Drop
}

// Stuck reports neuron (b, n)'s permanent defect state.
func (s *Stream) Stuck(b, n int) StuckState {
	if s == nil {
		return Healthy
	}
	return s.j.Stuck(b, n)
}

// JitterTTFS perturbs a TTFS spike offset by a uniform amount in
// [-Jitter, +Jitter], clamped to [0, window).
func (s *Stream) JitterTTFS(b, n, t, window int) int {
	if s == nil || s.j.cfg.Jitter <= 0 {
		return t
	}
	k := s.j.cfg.Jitter
	u := hashUniform(s.j.cfg.Seed, domJitter, s.sample, uint64(b), uint64(n), uint64(t))
	t += int(u*float64(2*k+1)) - k
	if t < 0 {
		t = 0
	}
	if t >= window {
		t = window - 1
	}
	return t
}

// Delay returns the clocked-delivery delay in [0, Jitter] for the spike
// emitted by neuron n at boundary b at step t.
func (s *Stream) Delay(b, n, t int) int {
	if s == nil || s.j.cfg.Jitter <= 0 {
		return 0
	}
	u := hashUniform(s.j.cfg.Seed, domJitter, s.sample, uint64(b), uint64(n), uint64(t))
	return int(u * float64(s.j.cfg.Jitter+1))
}

// Threshold perturbs a firing threshold multiplicatively with Gaussian
// noise, θ' = θ·(1 + σ·N(0,1)), floored at a small positive fraction of
// θ so a threshold never becomes free (or negative).
func (s *Stream) Threshold(b, t int, theta float64) float64 {
	if s == nil || s.j.cfg.ThresholdNoise <= 0 {
		return theta
	}
	// Box-Muller from two independent hash draws; u1 nudged away from 0.
	u1 := hashUniform(s.j.cfg.Seed, domThreshA, s.sample, uint64(b), 0, uint64(t))
	u2 := hashUniform(s.j.cfg.Seed, domThreshB, s.sample, uint64(b), 0, uint64(t))
	norm := math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
	scaled := theta * (1 + s.j.cfg.ThresholdNoise*norm)
	if floor := 0.01 * theta; scaled < floor {
		return floor
	}
	return scaled
}

// HasThresholdNoise reports whether the stream perturbs firing-threshold
// comparisons (Config.ThresholdNoise > 0). Engines whose firing decision
// is an analytic inverse of the threshold curve (the event-driven path)
// cannot absorb per-step threshold noise and use this to fall back to a
// clocked sweep. Nil-safe: a nil stream has no noise.
func (s *Stream) HasThresholdNoise() bool {
	return s != nil && s.j.cfg.ThresholdNoise > 0
}

// ApplyTTFS applies the stream's boundary faults to per-neuron TTFS
// spike offsets in place (offset -1 = silent) and returns the number of
// live spikes. Stuck defects override everything: stuck-silent clears
// the spike, stuck-fire forces a spike at the window start. Healthy
// neurons' spikes may then be dropped or jittered within [0, window).
func (s *Stream) ApplyTTFS(b int, times []int, window int) int {
	live := 0
	if s == nil {
		for _, t := range times {
			if t >= 0 {
				live++
			}
		}
		return live
	}
	for n, t := range times {
		switch s.Stuck(b, n) {
		case StuckSilent:
			times[n] = -1
			continue
		case StuckFire:
			times[n] = 0
			live++
			continue
		}
		if t < 0 {
			continue
		}
		if s.Drop(b, n, t) {
			times[n] = -1
			continue
		}
		times[n] = s.JitterTTFS(b, n, t, window)
		live++
	}
	return live
}
