package stream

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestNegotiate(t *testing.T) {
	cases := []struct {
		ct, accept string
		want       Format
	}{
		{"application/x-t2f", "", FormatBinary},
		{"application/x-t2f; charset=x", "text/event-stream", FormatBinary},
		{"application/json", "text/event-stream", FormatSSE},
		{"", "text/event-stream, application/json", FormatSSE},
		{"application/json", "", FormatNDJSON},
		{"", "", FormatNDJSON},
	}
	for _, c := range cases {
		if got := Negotiate(c.ct, c.accept); got != c.want {
			t.Errorf("Negotiate(%q, %q) = %v, want %v", c.ct, c.accept, got, c.want)
		}
	}
}

func TestJSONDecoderFrames(t *testing.T) {
	body := `{"input":[0.1,0.2],"label":3}
{"input":[0.3,0.4],"sample":7}
{"input":[0.5,0.6]}`
	d := NewDecoder(strings.NewReader(body), "application/json")
	var f Frame
	if err := d.Next(&f, 2); err != nil {
		t.Fatal(err)
	}
	if f.Label != 3 || f.Sample != -1 || f.Input[1] != 0.2 {
		t.Fatalf("frame 1: %+v", f)
	}
	if err := d.Next(&f, 2); err != nil {
		t.Fatal(err)
	}
	if f.Sample != 7 || f.Label != -1 {
		t.Fatalf("frame 2: %+v", f)
	}
	if err := d.Next(&f, 2); err != nil {
		t.Fatal(err)
	}
	if f.Sample != -1 || f.Label != -1 || f.Input[0] != 0.5 {
		t.Fatalf("frame 3: %+v", f)
	}
	if err := d.Next(&f, 2); err != io.EOF {
		t.Fatalf("end: %v, want io.EOF", err)
	}
}

func TestJSONDecoderRejectsWrongLength(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"input":[0.1]}`), "")
	var f Frame
	if err := d.Next(&f, 3); err == nil {
		t.Fatal("want length error")
	}
}

func TestJSONDecoderRejectsGarbage(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"input":[0.1]}garbage{`), "")
	var f Frame
	if err := d.Next(&f, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Next(&f, 1); err == nil || err == io.EOF {
		t.Fatalf("garbage after frame: %v, want decode error", err)
	}
}

func TestBinaryDecoderFrames(t *testing.T) {
	var b []byte
	b = wire.AppendRequest(b, wire.Request{Sample: 2, Label: 5}, []float64{0.25, 0.75})
	b = wire.AppendRequest(b, wire.Request{Sample: -1, Label: -1}, []float64{0.5, 0.5})
	d := NewDecoder(bytes.NewReader(b), wire.ContentType)
	var f Frame
	if err := d.Next(&f, 2); err != nil {
		t.Fatal(err)
	}
	if f.Sample != 2 || f.Label != 5 || math.Abs(f.Input[1]-0.75) > 1e-6 {
		t.Fatalf("frame 1: %+v", f)
	}
	if err := d.Next(&f, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Next(&f, 2); err != io.EOF {
		t.Fatalf("end: %v, want io.EOF", err)
	}
}

func TestEncoderRoundTripNDJSONAndBinary(t *testing.T) {
	src := Event{
		Kind: KindFrame, Seq: 9, Pred: 4, LatencySteps: 17,
		TotalSpikes: 200, WallMs: 1.5, EarlyExit: true, EventsSaved: 31,
		StageSpikes: []int{80, 70, 50},
		Timeline:    []TimedPred{{Step: 2, Pred: 0}, {Step: 11, Pred: 4}},
	}
	for _, f := range []Format{FormatNDJSON, FormatBinary} {
		var buf bytes.Buffer
		if err := NewEncoder(&buf, f).Encode(&src); err != nil {
			t.Fatal(err)
		}
		dec, err := NewEventDecoder(&buf, f.ContentType())
		if err != nil {
			t.Fatal(err)
		}
		var got Event
		if err := dec.Next(&got); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		if got.Kind != KindFrame || got.Seq != 9 || got.Pred != 4 ||
			got.LatencySteps != 17 || got.TotalSpikes != 200 ||
			!got.EarlyExit || got.EventsSaved != 31 {
			t.Fatalf("format %v: %+v", f, got)
		}
		if len(got.StageSpikes) != 3 || got.StageSpikes[2] != 50 {
			t.Fatalf("format %v stages: %v", f, got.StageSpikes)
		}
		if len(got.Timeline) != 2 || got.Timeline[1] != (TimedPred{11, 4}) {
			t.Fatalf("format %v timeline: %v", f, got.Timeline)
		}
	}
}

func TestSSEEncoderShape(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, FormatSSE)
	if err := enc.Encode(&Event{Kind: KindFrame, Seq: 1, Pred: 3}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&Event{Kind: KindDrain, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"event: frame\ndata: {", `"pred":3`, "event: drain\ndata: {", "}\n\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SSE output missing %q:\n%s", want, out)
		}
	}
}

func TestRetryEventRoundTripBinary(t *testing.T) {
	var buf bytes.Buffer
	src := Event{Kind: KindRetry, Seq: 12, Msg: "backend evicted", RetryAfterMs: 500}
	if err := NewEncoder(&buf, FormatBinary).Encode(&src); err != nil {
		t.Fatal(err)
	}
	dec, err := NewEventDecoder(&buf, wire.ContentType)
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := dec.Next(&got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRetry || got.Seq != 12 || got.Msg != "backend evicted" || got.RetryAfterMs != 500 {
		t.Fatalf("retry round trip: %+v", got)
	}
}

func TestWalkDeterministicAndCorrelated(t *testing.T) {
	bases := [][]float64{
		{0.0, 0.5, 1.0, 0.25},
		{1.0, 0.0, 0.5, 0.75},
	}
	a := NewWalk(bases, 7, 0.02, 0.1)
	b := NewWalk(bases, 7, 0.02, 0.1)
	c := NewWalk(bases, 8, 0.02, 0.1)
	var prev []float64
	differs := false
	for i := 0; i < 200; i++ {
		fa, la := a.Next()
		fb, lb := b.Next()
		fc, _ := c.Next()
		if la != lb {
			t.Fatalf("frame %d: base %d vs %d under same seed", i, la, lb)
		}
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("frame %d: same seed diverged at pixel %d", i, j)
			}
			if fa[j] < 0 || fa[j] > 1 {
				t.Fatalf("frame %d pixel %d out of range: %v", i, j, fa[j])
			}
			if fa[j] != fc[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical walks")
	}
	if fa, _ := a.Next(); fa == nil {
		t.Fatal("walk went nil")
	}
	// correlation: with jumps disabled, successive frames move each
	// pixel by at most step.
	w := NewWalk(bases, 3, 0.02, 0)
	prev, _ = w.Next()
	for i := 0; i < 100; i++ {
		cur, _ := w.Next()
		for j := range cur {
			if d := math.Abs(cur[j] - prev[j]); d > 0.02+1e-12 {
				t.Fatalf("frame %d pixel %d drifted %v > step", i, j, d)
			}
		}
		prev = cur
	}
}

func TestWalkEmptyBases(t *testing.T) {
	w := NewWalk(nil, 1, 0.1, 0.1)
	if f, idx := w.Next(); f != nil || idx != -1 {
		t.Fatalf("empty walk: %v, %d", f, idx)
	}
}
