// Package stream is the frame/event layer of /v1/stream: a session
// ingests a sequence of input frames on one long-lived request body and
// emits exactly one event per frame, flushed as it is produced.
//
// Three wire encodings are negotiated from the request headers:
//
//   - binary (Content-Type application/x-t2f): frames are consecutive
//     wire request frames; events are wire stream event frames
//     (length-prefixed, internal/wire stream framing).
//   - SSE (Accept: text/event-stream): events are Server-Sent Events
//     ("event: <kind>" + "data: <json>"), for curl and browsers.
//   - NDJSON (default): frames in are a sequence of JSON objects
//     (whitespace/newline separated, the /v1/infer request shape);
//     events out are one JSON object per line.
//
// The event kinds mirror the binary framing: "frame" is one inference
// outcome; "drain" is terminal (server going away gracefully, session
// complete as acked); "retry" is terminal (backend lost mid-session —
// reconnect and resend unacked frames); "error" reports one failed
// frame without ending the session.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/wire"
)

// Event kind strings (the JSON forms of the wire event kinds).
const (
	KindFrame = "frame"
	KindDrain = "drain"
	KindRetry = "retry"
	KindError = "error"
)

// maxFrameBytes bounds one JSON frame on a session body — same
// defensive scale as the one-shot request cap.
const maxFrameBytes = 8 << 20

// ErrFrameTooLarge reports a single JSON frame exceeding maxFrameBytes.
var ErrFrameTooLarge = errors.New("stream: frame exceeds size limit")

// Frame is one decoded input frame.
type Frame struct {
	Input  []float64
	Sample int // -1 = no fault stream
	Label  int // -1 = unlabeled
}

// TimedPred is one point of the argmax trajectory: at simulation step
// Step the running prediction became Pred.
type TimedPred struct {
	Step int `json:"step"`
	Pred int `json:"pred"`
}

// Event is one per-frame emission in encoding-agnostic form.
type Event struct {
	Kind string `json:"kind"`
	// Seq is the 1-based frame number within the session. For terminal
	// kinds it is the last acked frame.
	Seq          uint32  `json:"seq"`
	Pred         int     `json:"pred"`
	LatencySteps int     `json:"latency_steps"`
	TotalSpikes  int     `json:"total_spikes"`
	WallMs       float64 `json:"wall_ms"`
	EarlyExit    bool    `json:"early_exit"`
	EventsSaved  int     `json:"events_saved"`
	// StageSpikes is the per-stage spike count vector: index 0 the
	// input encoding, index i ≥ 1 stage i-1's fire phase.
	StageSpikes []int `json:"stage_spikes,omitempty"`
	// Timeline is the argmax trajectory (only when the session asked
	// for it with ?timeline=1).
	Timeline []TimedPred `json:"timeline,omitempty"`
	// Msg carries detail for drain/retry/error kinds.
	Msg string `json:"msg,omitempty"`
	// RetryAfterMs suggests a reconnect delay on retry events.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
}

// Format is a negotiated session encoding.
type Format int

const (
	FormatNDJSON Format = iota
	FormatSSE
	FormatBinary
)

// ContentType returns the response media type for a format.
func (f Format) ContentType() string {
	switch f {
	case FormatBinary:
		return wire.ContentType
	case FormatSSE:
		return "text/event-stream"
	default:
		return "application/x-ndjson"
	}
}

// Negotiate picks the session encoding from the request headers: a
// binary Content-Type selects binary both ways; otherwise an SSE Accept
// selects SSE out (JSON frames in); otherwise NDJSON.
func Negotiate(contentType, accept string) Format {
	if wire.Negotiates(contentType) {
		return FormatBinary
	}
	if strings.Contains(accept, "text/event-stream") {
		return FormatSSE
	}
	return FormatNDJSON
}

// Decoder reads input frames off a session body. Next returns io.EOF
// when the client finished the session cleanly; any other error means
// the frame (or connection) was malformed and the session should end.
type Decoder interface {
	// Next decodes one frame into f, reusing f.Input's capacity.
	// wantLen, when positive, is the model's input length.
	Next(f *Frame, wantLen int) error
}

// NewDecoder returns the frame decoder for a session's Content-Type.
func NewDecoder(r io.Reader, contentType string) Decoder {
	if wire.Negotiates(contentType) {
		return &binaryDecoder{rr: wire.NewReqReader(r)}
	}
	mr := &meteredReader{r: r}
	return &jsonDecoder{mr: mr, dec: json.NewDecoder(mr)}
}

type binaryDecoder struct {
	rr *wire.ReqReader
}

func (d *binaryDecoder) Next(f *Frame, wantLen int) error {
	h, in, err := d.rr.Next(f.Input, wantLen)
	f.Input = in
	if err != nil {
		return err
	}
	f.Sample, f.Label = h.Sample, h.Label
	return nil
}

// meteredReader enforces a per-frame read budget: each frame decode
// resets the allowance, so a single runaway frame fails instead of
// buffering without bound. (Bytes the JSON decoder read ahead count
// against the frame that triggered the read; the bound per frame stays
// maxFrameBytes either way.)
type meteredReader struct {
	r         io.Reader
	allowance int64
}

func (m *meteredReader) Read(p []byte) (int, error) {
	if m.allowance <= 0 {
		return 0, ErrFrameTooLarge
	}
	if int64(len(p)) > m.allowance {
		p = p[:m.allowance]
	}
	n, err := m.r.Read(p)
	m.allowance -= int64(n)
	return n, err
}

// frameJSON is the JSON frame shape — the /v1/infer request body minus
// the per-request knobs that make no sense per-frame (timeout, mode are
// session-level).
type frameJSON struct {
	Input  []float64 `json:"input"`
	Sample *int      `json:"sample"`
	Label  *int      `json:"label"`
}

type jsonDecoder struct {
	mr  *meteredReader
	dec *json.Decoder
	js  frameJSON
	sv  int
	lv  int
}

func (d *jsonDecoder) Next(f *Frame, wantLen int) error {
	d.mr.allowance = maxFrameBytes
	if !d.dec.More() {
		// More() returning false either hit EOF (clean end) or
		// buffered garbage; a Decode distinguishes.
		var probe json.RawMessage
		if err := d.dec.Decode(&probe); err == io.EOF {
			return io.EOF
		} else if err != nil {
			return fmt.Errorf("stream: bad frame: %w", err)
		}
		return errors.New("stream: unexpected non-object frame")
	}
	d.sv, d.lv = -1, -1
	d.js.Input = f.Input[:0]
	d.js.Sample, d.js.Label = &d.sv, &d.lv
	if err := d.dec.Decode(&d.js); err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return ErrFrameTooLarge
		}
		return fmt.Errorf("stream: bad frame: %w", err)
	}
	if wantLen > 0 && len(d.js.Input) != wantLen {
		return fmt.Errorf("stream: input length %d, model expects %d", len(d.js.Input), wantLen)
	}
	f.Input = d.js.Input
	f.Sample, f.Label = d.sv, d.lv
	return nil
}

// Encoder writes session events. The caller flushes the HTTP response
// after each Encode; encoders only buffer within one event.
type Encoder interface {
	Encode(ev *Event) error
}

// NewEncoder returns the event encoder for a negotiated format.
func NewEncoder(w io.Writer, f Format) Encoder {
	switch f {
	case FormatBinary:
		return &binaryEncoder{w: w}
	case FormatSSE:
		return &sseEncoder{w: w}
	default:
		return &ndjsonEncoder{enc: json.NewEncoder(w)}
	}
}

type ndjsonEncoder struct {
	enc *json.Encoder
}

func (e *ndjsonEncoder) Encode(ev *Event) error { return e.enc.Encode(ev) }

type sseEncoder struct {
	w   io.Writer
	buf []byte
}

func (e *sseEncoder) Encode(ev *Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	e.buf = e.buf[:0]
	e.buf = append(e.buf, "event: "...)
	e.buf = append(e.buf, ev.Kind...)
	e.buf = append(e.buf, "\ndata: "...)
	e.buf = append(e.buf, data...)
	e.buf = append(e.buf, '\n', '\n')
	_, err = e.w.Write(e.buf)
	return err
}

type binaryEncoder struct {
	w      io.Writer
	buf    []byte
	stages []uint32
	tl     []wire.TimedStep
}

func (e *binaryEncoder) Encode(ev *Event) error {
	we := wire.StreamEvent{
		Seq: ev.Seq,
		Resp: wire.Response{
			Pred:         ev.Pred,
			LatencySteps: ev.LatencySteps,
			TotalSpikes:  satU32(ev.TotalSpikes),
			EventsSaved:  satU32(ev.EventsSaved),
			EarlyExit:    ev.EarlyExit,
		},
		Msg: ev.Msg,
	}
	switch ev.Kind {
	case KindDrain:
		we.Kind = wire.EventDrain
	case KindRetry:
		we.Kind = wire.EventRetry
		we.Resp.WallUs = satU32(ev.RetryAfterMs)
	case KindError:
		we.Kind = wire.EventError
	default:
		we.Kind = wire.EventFrame
		we.Resp.WallUs = satU32(int(ev.WallMs * 1000))
	}
	e.stages = e.stages[:0]
	for _, s := range ev.StageSpikes {
		e.stages = append(e.stages, satU32(s))
	}
	we.StageSpikes = e.stages
	e.tl = e.tl[:0]
	for _, tp := range ev.Timeline {
		e.tl = append(e.tl, wire.TimedStep{Step: int32(tp.Step), Pred: int32(tp.Pred)})
	}
	we.Timeline = e.tl
	e.buf = wire.AppendStreamEvent(e.buf[:0], we)
	_, err := e.w.Write(e.buf)
	return err
}

func satU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > int(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

// EventDecoder reads session events back (the client side). NDJSON and
// binary are supported; SSE is emit-only (meant for curl/browsers).
type EventDecoder interface {
	Next(ev *Event) error
}

// NewEventDecoder returns the event decoder for a response
// Content-Type.
func NewEventDecoder(r io.Reader, contentType string) (EventDecoder, error) {
	if wire.Negotiates(contentType) {
		return &binaryEventDecoder{er: wire.NewEventReader(r)}, nil
	}
	if strings.Contains(contentType, "text/event-stream") {
		return nil, errors.New("stream: SSE decoding not supported; use NDJSON or binary")
	}
	return &jsonEventDecoder{dec: json.NewDecoder(r)}, nil
}

type jsonEventDecoder struct {
	dec *json.Decoder
}

func (d *jsonEventDecoder) Next(ev *Event) error {
	*ev = Event{Timeline: ev.Timeline[:0], StageSpikes: ev.StageSpikes[:0]}
	return d.dec.Decode(ev)
}

type binaryEventDecoder struct {
	er *wire.EventReader
}

func (d *binaryEventDecoder) Next(ev *Event) error {
	we, err := d.er.Next()
	if err != nil {
		return err
	}
	switch we.Kind {
	case wire.EventDrain:
		ev.Kind = KindDrain
	case wire.EventRetry:
		ev.Kind = KindRetry
	case wire.EventError:
		ev.Kind = KindError
	default:
		ev.Kind = KindFrame
	}
	ev.Seq = we.Seq
	ev.Pred = we.Resp.Pred
	ev.LatencySteps = we.Resp.LatencySteps
	ev.TotalSpikes = int(we.Resp.TotalSpikes)
	ev.EventsSaved = int(we.Resp.EventsSaved)
	ev.EarlyExit = we.Resp.EarlyExit
	ev.WallMs, ev.RetryAfterMs = 0, 0
	if we.Kind == wire.EventRetry {
		ev.RetryAfterMs = int(we.Resp.WallUs)
	} else {
		ev.WallMs = float64(we.Resp.WallUs) / 1000
	}
	ev.StageSpikes = ev.StageSpikes[:0]
	for _, s := range we.StageSpikes {
		ev.StageSpikes = append(ev.StageSpikes, int(s))
	}
	ev.Timeline = ev.Timeline[:0]
	for _, tp := range we.Timeline {
		ev.Timeline = append(ev.Timeline, TimedPred{Step: int(tp.Step), Pred: int(tp.Pred)})
	}
	ev.Msg = we.Msg
	return nil
}
