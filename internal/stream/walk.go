package stream

// Walk is a seeded, deterministic correlated-frame generator: a random
// walk over input space that perturbs a base sample pixel-by-pixel each
// step, with occasional Markov-style regime jumps to a fresh base
// sample. It emulates the frame-to-frame correlation of continuous
// input (video, sensors) rather than IID dataset replay, so stream
// sessions are stressed with realistic temporal structure.
//
// The sequence is a pure function of (bases, seed, step, jump): frame i
// is identical across runs and across one-shot vs streaming replay,
// which is what lets the smoke test diff predictions bit-for-bit.
type Walk struct {
	bases [][]float64
	cur   []float64
	base  int
	rng   uint64
	step  float64
	jump  float64
	begun bool
}

// NewWalk builds a walk over bases (each a flattened input sample, all
// the same length). step is the per-pixel maximum perturbation per
// frame (uniform in [-step, step], clamped to [0,1]); jump is the
// per-frame probability of switching to a new base sample.
func NewWalk(bases [][]float64, seed uint64, step, jump float64) *Walk {
	w := &Walk{bases: bases, rng: seed, step: step, jump: jump}
	if len(bases) > 0 {
		w.cur = make([]float64, len(bases[0]))
	}
	return w
}

// splitmix64 — deterministic, allocation-free, and independent of
// math/rand's generator choices across Go versions.
func (w *Walk) next64() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand01 returns a uniform float64 in [0,1).
func (w *Walk) rand01() float64 {
	return float64(w.next64()>>11) / (1 << 53)
}

// Next advances the walk one frame and returns a fresh copy of it plus
// the index of the base sample the current regime started from (so
// callers can attach that sample's label).
func (w *Walk) Next() ([]float64, int) {
	if len(w.bases) == 0 {
		return nil, -1
	}
	if !w.begun || w.rand01() < w.jump {
		w.base = int(w.next64() % uint64(len(w.bases)))
		copy(w.cur, w.bases[w.base])
		w.begun = true
	} else {
		for j := range w.cur {
			v := w.cur[j] + (2*w.rand01()-1)*w.step
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			w.cur[j] = v
		}
	}
	out := make([]float64, len(w.cur))
	copy(out, w.cur)
	return out, w.base
}
