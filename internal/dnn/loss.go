package dnn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss of a
// [N, C] logits batch against integer labels, and the gradient of the
// loss with respect to the logits. The softmax and loss are fused for
// numerical stability (log-sum-exp with max subtraction).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("dnn: %d labels for %d samples", len(labels), n))
	}
	grad = tensor.New(n, c)
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("dnn: label %d out of range [0,%d)", y, c))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		loss += (logSum - row[y]) * invN
		g := grad.Data[i*c : (i+1)*c]
		for j, v := range row {
			g[j] = math.Exp(v-logSum) * invN
		}
		g[y] -= invN
	}
	return loss, grad
}

// Softmax returns the row-wise softmax of a [N, C] tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		o := out.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			o[j] = math.Exp(v - maxv)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("dnn: %d predictions for %d labels", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}
