package dnn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears nothing;
	// callers zero gradients between batches.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and
// decoupled L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	baseLR   float64 // remembered by setLRScale so scaling never compounds
	velocity map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, p.W.Len())
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + s.WeightDecay*p.W.Data[i]
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with optional weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	baseLR float64 // remembered by setLRScale so scaling never compounds
	t      int
	m      map[*Param][]float64
	v      map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, p.W.Len())
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, p.W.Len())
			a.v[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + a.WeightDecay*p.W.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.W.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
