package dnn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm is spatial batch normalization over [N, C, H, W] inputs
// (or per-feature over [N, D] when Spatial is false). It keeps running
// mean/variance for inference; at conversion time it is folded into the
// preceding convolution/dense weights (see internal/convert).
type BatchNorm struct {
	name     string
	C        int  // channels (or features)
	Spatial  bool // true: normalize per channel over N×H×W
	Momentum float64
	Eps      float64

	Gamma *Param
	Beta  *Param

	// running statistics used at inference and exported for folding
	RunMean *tensor.Tensor
	RunVar  *tensor.Tensor

	// caches from the last training forward pass
	lastXHat  *tensor.Tensor
	lastStd   []float64 // per-channel sqrt(var+eps) of the batch
	lastShape []int
}

// NewBatchNorm constructs a batch normalization layer over c channels.
func NewBatchNorm(name string, c int, spatial bool) *BatchNorm {
	rv := tensor.Ones(c)
	return &BatchNorm{
		name:     name,
		C:        c,
		Spatial:  spatial,
		Momentum: 0.9,
		Eps:      1e-5,
		Gamma:    newParam(name+".gamma", tensor.Ones(c)),
		Beta:     newParam(name+".beta", tensor.New(c)),
		RunMean:  tensor.New(c),
		RunVar:   rv,
	}
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) []int { return append([]int(nil), in...) }

// channelGeom returns per-channel iteration sizes for x: the number of
// (sample, position) pairs per channel and the spatial extent.
func (b *BatchNorm) channelGeom(x *tensor.Tensor) (n, spatial int) {
	if b.Spatial {
		if x.Rank() != 4 || x.Shape[1] != b.C {
			panic(fmt.Sprintf("dnn: %s expected [N,%d,H,W], got %v", b.name, b.C, x.Shape))
		}
		return x.Shape[0], x.Shape[2] * x.Shape[3]
	}
	if x.Rank() != 2 || x.Shape[1] != b.C {
		panic(fmt.Sprintf("dnn: %s expected [N,%d], got %v", b.name, b.C, x.Shape))
	}
	return x.Shape[0], 1
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, spatial := b.channelGeom(x)
	out := x.Clone()
	if !train {
		for c := 0; c < b.C; c++ {
			inv := 1 / math.Sqrt(b.RunVar.Data[c]+b.Eps)
			scale := b.Gamma.W.Data[c] * inv
			shift := b.Beta.W.Data[c] - b.RunMean.Data[c]*scale
			b.forEach(out, n, spatial, c, func(d []float64, i int) {
				d[i] = d[i]*scale + shift
			})
		}
		return out
	}

	cnt := float64(n * spatial)
	b.lastStd = make([]float64, b.C)
	b.lastShape = append([]int(nil), x.Shape...)
	xhat := x.Clone()
	for c := 0; c < b.C; c++ {
		mean, sq := 0.0, 0.0
		b.forEach(x, n, spatial, c, func(d []float64, i int) {
			mean += d[i]
			sq += d[i] * d[i]
		})
		mean /= cnt
		variance := sq/cnt - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance + b.Eps)
		b.lastStd[c] = std
		gamma, beta := b.Gamma.W.Data[c], b.Beta.W.Data[c]
		b.forEach(xhat, n, spatial, c, func(d []float64, i int) {
			d[i] = (d[i] - mean) / std
		})
		b.forEachPair(out, xhat, n, spatial, c, func(o, h []float64, i int) {
			o[i] = gamma*h[i] + beta
		})
		b.RunMean.Data[c] = b.Momentum*b.RunMean.Data[c] + (1-b.Momentum)*mean
		b.RunVar.Data[c] = b.Momentum*b.RunVar.Data[c] + (1-b.Momentum)*variance
	}
	b.lastXHat = xhat
	return out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic("dnn: BatchNorm.Backward before Forward(train=true)")
	}
	n, spatial := b.channelGeom(grad)
	cnt := float64(n * spatial)
	dx := grad.Clone()
	for c := 0; c < b.C; c++ {
		sumDy, sumDyXhat := 0.0, 0.0
		b.forEachPair(grad, b.lastXHat, n, spatial, c, func(g, h []float64, i int) {
			sumDy += g[i]
			sumDyXhat += g[i] * h[i]
		})
		b.Gamma.Grad.Data[c] += sumDyXhat
		b.Beta.Grad.Data[c] += sumDy
		gamma := b.Gamma.W.Data[c]
		std := b.lastStd[c]
		// dx = gamma/std * (dy - mean(dy) - xhat*mean(dy*xhat))
		b.forEachPair(dx, b.lastXHat, n, spatial, c, func(d, h []float64, i int) {
			g := d[i]
			d[i] = gamma / std * (g - sumDy/cnt - h[i]*sumDyXhat/cnt)
		})
	}
	return dx
}

// forEach visits every element of channel c in x.
func (b *BatchNorm) forEach(x *tensor.Tensor, n, spatial, c int, f func(d []float64, i int)) {
	for s := 0; s < n; s++ {
		base := (s*b.C + c) * spatial
		for p := 0; p < spatial; p++ {
			f(x.Data, base+p)
		}
	}
}

// forEachPair visits matching elements of channel c in a and b2.
func (b *BatchNorm) forEachPair(a, b2 *tensor.Tensor, n, spatial, c int, f func(da, db []float64, i int)) {
	for s := 0; s < n; s++ {
		base := (s*b.C + c) * spatial
		for p := 0; p < spatial; p++ {
			f(a.Data, b2.Data, base+p)
		}
	}
}
