package dnn

import "math"

// LRSchedule maps an epoch index (0-based) to a learning-rate
// multiplier applied to the optimizer's base rate.
type LRSchedule interface {
	Multiplier(epoch int) float64
}

// ConstantLR keeps the base rate.
type ConstantLR struct{}

// Multiplier implements LRSchedule.
func (ConstantLR) Multiplier(int) float64 { return 1 }

// StepLR multiplies the rate by Gamma every StepSize epochs, the
// classic VGG training schedule.
type StepLR struct {
	StepSize int
	Gamma    float64
}

// Multiplier implements LRSchedule.
func (s StepLR) Multiplier(epoch int) float64 {
	if s.StepSize <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(epoch/s.StepSize))
}

// CosineLR anneals the rate to MinFactor over Epochs.
type CosineLR struct {
	Epochs    int
	MinFactor float64
}

// Multiplier implements LRSchedule.
func (c CosineLR) Multiplier(epoch int) float64 {
	if c.Epochs <= 1 {
		return 1
	}
	t := float64(epoch) / float64(c.Epochs-1)
	if t > 1 {
		t = 1
	}
	return c.MinFactor + (1-c.MinFactor)*0.5*(1+math.Cos(math.Pi*t))
}

// scaledOptimizer wraps an optimizer with a learning-rate multiplier.
// Both built-in optimizers expose their base rate; the trainer adjusts
// it per epoch through this interface.
type lrScalable interface {
	Optimizer
	setLRScale(mult float64)
}

// baseLR memoizes the optimizer's base rate so repeated scaling does
// not compound.
func (s *SGD) setLRScale(mult float64) {
	if s.baseLR == 0 {
		s.baseLR = s.LR
	}
	s.LR = s.baseLR * mult
}

func (a *Adam) setLRScale(mult float64) {
	if a.baseLR == 0 {
		a.baseLR = a.LR
	}
	a.LR = a.baseLR * mult
}

// ClipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. maxNorm <= 0 disables
// clipping.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
	return norm
}
