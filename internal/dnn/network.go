package dnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Network is an ordered sequence of layers trained with backpropagation.
type Network struct {
	Name    string
	InShape []int // per-sample input shape, e.g. [3, 32, 32]
	Layers  []Layer
}

// NewNetwork constructs an empty network for the given per-sample input
// shape.
func NewNetwork(name string, inShape ...int) *Network {
	return &Network{Name: name, InShape: append([]int(nil), inShape...)}
}

// Add appends layers to the network and returns it for chaining.
func (n *Network) Add(layers ...Layer) *Network {
	n.Layers = append(n.Layers, layers...)
	return n
}

// OutShape returns the per-sample output shape of the whole network.
func (n *Network) OutShape() []int {
	s := n.InShape
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// Forward runs a batch through every layer.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardCollect runs a batch in inference mode and invokes visit with
// each layer's output. Conversion uses this to record activation
// statistics; kernel optimization uses it to record the ground-truth
// values z̄ of Eq. 9.
func (n *Network) ForwardCollect(x *tensor.Tensor, visit func(layerIdx int, layer Layer, out *tensor.Tensor)) *tensor.Tensor {
	for i, l := range n.Layers {
		x = l.Forward(x, false)
		if visit != nil {
			visit(i, l, x)
		}
	}
	return x
}

// Backward propagates the loss gradient through every layer in reverse,
// accumulating parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of trainable scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// Predict returns the argmax class for each sample of a logits batch
// produced by Forward.
func (n *Network) Predict(x *tensor.Tensor) []int {
	logits := n.Forward(x, false)
	return ArgMaxRows(logits)
}

// ArgMaxRows returns the per-row argmax of a [N, D] tensor.
func ArgMaxRows(logits *tensor.Tensor) []int {
	nSamples, d := logits.Shape[0], logits.Shape[1]
	out := make([]int, nSamples)
	for i := 0; i < nSamples; i++ {
		row := logits.Data[i*d : (i+1)*d]
		best, bi := row[0], 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// netState is the gob wire form of a network's trainable state.
type netState struct {
	Name    string
	Params  map[string][]float64
	RunMean map[string][]float64
	RunVar  map[string][]float64
}

// Save serializes all parameters and batch-norm running statistics.
func (n *Network) Save(w io.Writer) error {
	st := netState{
		Name:    n.Name,
		Params:  map[string][]float64{},
		RunMean: map[string][]float64{},
		RunVar:  map[string][]float64{},
	}
	for _, p := range n.Params() {
		if _, dup := st.Params[p.Name]; dup {
			return fmt.Errorf("dnn: duplicate parameter name %q", p.Name)
		}
		st.Params[p.Name] = p.W.Data
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			st.RunMean[bn.Name()] = bn.RunMean.Data
			st.RunVar[bn.Name()] = bn.RunVar.Data
		}
	}
	return gob.NewEncoder(w).Encode(st)
}

// Load restores parameters saved by Save into an identically constructed
// network. It fails if any parameter is missing or has the wrong size.
func (n *Network) Load(r io.Reader) error {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("dnn: decoding network state: %w", err)
	}
	for _, p := range n.Params() {
		data, ok := st.Params[p.Name]
		if !ok {
			return fmt.Errorf("dnn: saved state missing parameter %q", p.Name)
		}
		if len(data) != p.W.Len() {
			return fmt.Errorf("dnn: parameter %q has %d values, want %d", p.Name, len(data), p.W.Len())
		}
		copy(p.W.Data, data)
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			if m, ok := st.RunMean[bn.Name()]; ok && len(m) == bn.RunMean.Len() {
				copy(bn.RunMean.Data, m)
			}
			if v, ok := st.RunVar[bn.Name()]; ok && len(v) == bn.RunVar.Len() {
				copy(bn.RunVar.Data, v)
			}
		}
	}
	return nil
}
