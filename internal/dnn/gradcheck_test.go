package dnn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad computes dLoss/dTheta for every element of theta by
// central differences, where loss() re-runs the full forward pass.
func numericalGrad(theta *tensor.Tensor, loss func() float64) *tensor.Tensor {
	const h = 1e-5
	g := tensor.New(theta.Shape...)
	for i := range theta.Data {
		orig := theta.Data[i]
		theta.Data[i] = orig + h
		lp := loss()
		theta.Data[i] = orig - h
		lm := loss()
		theta.Data[i] = orig
		g.Data[i] = (lp - lm) / (2 * h)
	}
	return g
}

// relErr returns a scale-aware difference between analytic and numeric
// gradients.
func relErr(a, b *tensor.Tensor) float64 {
	worst := 0.0
	for i := range a.Data {
		diff := math.Abs(a.Data[i] - b.Data[i])
		scale := math.Max(1, math.Max(math.Abs(a.Data[i]), math.Abs(b.Data[i])))
		if e := diff / scale; e > worst {
			worst = e
		}
	}
	return worst
}

// checkLayerGradients verifies analytic parameter and input gradients of
// a single layer against numerical differentiation, using a quadratic
// pseudo-loss L = 0.5*||out||² whose dL/dout = out.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor) {
	t.Helper()
	loss := func() float64 {
		out := l.Forward(x, true)
		s := 0.0
		for _, v := range out.Data {
			s += 0.5 * v * v
		}
		return s
	}
	// analytic pass
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	out := l.Forward(x, true)
	dx := l.Backward(out.Clone())

	for _, p := range l.Params() {
		num := numericalGrad(p.W, loss)
		if e := relErr(p.Grad, num); e > 1e-4 {
			t.Fatalf("%s: parameter %s gradient error %.2e", l.Name(), p.Name, e)
		}
	}
	numX := numericalGrad(x, loss)
	if e := relErr(dx, numX); e > 1e-4 {
		t.Fatalf("%s: input gradient error %.2e", l.Name(), e)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewDense("fc", 5, 4, rng)
	x := tensor.New(3, 5)
	rng.FillNormal(x, 0, 1)
	checkLayerGradients(t, l, x)
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", 3, g, rng)
	x := tensor.New(2, 2, 5, 5)
	rng.FillNormal(x, 0, 1)
	checkLayerGradients(t, l, x)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 0}
	l := NewConv2D("conv-s2", 2, g, rng)
	x := tensor.New(1, 1, 6, 6)
	rng.FillNormal(x, 0, 1)
	checkLayerGradients(t, l, x)
}

func TestAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewPool2D("avgpool", AvgPool, 2, 4, 4, 2)
	x := tensor.New(2, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	checkLayerGradients(t, l, x)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewPool2D("maxpool", MaxPool, 1, 4, 4, 2)
	x := tensor.New(2, 1, 4, 4)
	// keep values well separated so the argmax does not flip under h
	rng.FillUniform(x, 0, 10)
	checkLayerGradients(t, l, x)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewReLU("relu")
	x := tensor.New(3, 7)
	rng.FillNormal(x, 0, 1)
	// keep away from the kink at 0
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, l, x)
}

func TestBatchNormSpatialGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	l := NewBatchNorm("bn", 3, true)
	// non-trivial gamma/beta
	rng.FillUniform(l.Gamma.W, 0.5, 1.5)
	rng.FillUniform(l.Beta.W, -0.5, 0.5)
	x := tensor.New(4, 3, 3, 3)
	rng.FillNormal(x, 0.3, 1.2)
	checkLayerGradients(t, l, x)
}

func TestBatchNormDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewBatchNorm("bn1d", 5, false)
	rng.FillUniform(l.Gamma.W, 0.5, 1.5)
	x := tensor.New(6, 5)
	rng.FillNormal(x, -0.2, 0.8)
	checkLayerGradients(t, l, x)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(9)
	logits := tensor.New(4, 5)
	rng.FillNormal(logits, 0, 2)
	labels := []int{1, 0, 4, 2}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	num := numericalGrad(logits, func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	})
	if e := relErr(grad, num); e > 1e-6 {
		t.Fatalf("softmax CE gradient error %.2e", e)
	}
}

func TestEndToEndNetworkGradient(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := NewNetwork("tiny", 1, 4, 4)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net.Add(
		NewConv2D("c1", 2, g, rng),
		NewReLU("r1"),
		NewPool2D("p1", AvgPool, 2, 4, 4, 2),
		NewFlatten("f"),
		NewDense("fc", 8, 3, rng),
	)
	x := tensor.New(2, 1, 4, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 2}

	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(net.Forward(x, true), labels)
		return l
	}
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	for _, p := range net.Params() {
		num := numericalGrad(p.W, loss)
		if e := relErr(p.Grad, num); e > 1e-4 {
			t.Fatalf("end-to-end gradient error %.2e on %s", e, p.Name)
		}
	}
}
