package dnn

import (
	"repro/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x). The T2FSNN
// conversion relies on ReLU networks: post-ReLU activations are
// non-negative, so after data-based normalization they live in [0, 1]
// and map directly onto TTFS spike times.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		r.mask = make([]bool, len(out.Data))
	}
	for i, v := range out.Data {
		if v > 0 {
			if train {
				r.mask[i] = true
			}
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("dnn: ReLU.Backward before Forward(train=true)")
	}
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Identity passes its input through unchanged; useful as a placeholder
// when ablating a layer out of an architecture without renumbering.
type Identity struct{ name string }

// NewIdentity constructs an identity layer.
func NewIdentity(name string) *Identity { return &Identity{name: name} }

// Name implements Layer.
func (l *Identity) Name() string { return l.name }

// Params implements Layer.
func (l *Identity) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Identity) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward implements Layer.
func (l *Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Flatten reshapes [N, ...] feature maps to [N, D] dense activations.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	d := 1
	for _, v := range in {
		d *= v
	}
	return []int{d}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.lastShape = append([]int(nil), x.Shape...)
	}
	n := x.Shape[0]
	return x.Reshape(n, -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic("dnn: Flatten.Backward before Forward(train=true)")
	}
	return grad.Reshape(f.lastShape...)
}
